(** The flow report as a first-class value.

    [Flow_report.t] is the pure-data summary of one {!Fst_core.Flow.run}
    — every number and fault name the historical [fst flow] report
    printed, detached from the live [Flow.result] (which holds the
    circuit and fault arrays and cannot travel over a wire or live in a
    cache). One value, three consumers:

    - [fst flow] renders it with {!to_text},
    - the serve daemon stores {!to_json} in the content-addressed cache
      and ships it in [result] responses,
    - [fst submit] re-renders the shipped JSON with {!of_json} +
      {!to_text}, so the client's text report is byte-identical to what
      a local run would have printed.

    {!to_text} is deterministic: rendering the same value always
    produces the same bytes, which is what makes "a cache hit returns a
    bit-identical report" a testable contract. *)

(** Per-phase abort accounting, mirroring {!Fst_core.Flow.phase_aborts}. *)
type phase_aborts = {
  phase : string;
  budget_exhausted : bool;
  atpg_aborts : int;
  cancelled_groups : int;
  failed : int;
}

type t = {
  circuit : string;
  total : int;  (** collapsed fault universe *)
  affecting : int;  (** faults affecting the chain *)
  easy : int;
  hard : int;
  untestable_static : int;
  step2_detected : int;
  step2_untestable : int;
  step2_vectors : int;
  step2_cpu_s : float;
  step3_detected : int;
  step3_untestable : int;
  step3_group_circuits : int;
  step3_final_circuits : int;
  step3_cpu_s : float;
  podem_runs : int;
  podem_backtracks : int;
  podem_decisions : int;
  podem_implications : int;
  podem_aborted_limit : int;
  podem_aborted_deadline : int;
  seq_runs : int;
  seq_backtracks : int;
  undetected : string list;  (** rendered fault names, report order *)
  failed : string list;
  aborted_faults : int;
  failed_faults : int;
  phases : phase_aborts list;
}

val of_result : Fst_core.Flow.result -> t

(** Aggregates over [phases]. *)
val budget_exhausted : t -> bool

val atpg_aborts : t -> int
val cancelled_groups : t -> int

(** The historical [fst flow] stdout rendering: the report table, the
    greppable [aborts:] lines, and one [undetected:]/[failed:] line per
    surviving fault. Ends with a newline. *)
val to_text : t -> string

val to_json : t -> Fst_obs.Json.t

(** Inverse of {!to_json}; [Error] names the missing or ill-typed
    field. *)
val of_json : Fst_obs.Json.t -> (t, string) result
