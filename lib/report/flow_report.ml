module Flow = Fst_core.Flow
module Classify = Fst_core.Classify
module Json = Fst_obs.Json

type phase_aborts = {
  phase : string;
  budget_exhausted : bool;
  atpg_aborts : int;
  cancelled_groups : int;
  failed : int;
}

type t = {
  circuit : string;
  total : int;
  affecting : int;
  easy : int;
  hard : int;
  untestable_static : int;
  step2_detected : int;
  step2_untestable : int;
  step2_vectors : int;
  step2_cpu_s : float;
  step3_detected : int;
  step3_untestable : int;
  step3_group_circuits : int;
  step3_final_circuits : int;
  step3_cpu_s : float;
  podem_runs : int;
  podem_backtracks : int;
  podem_decisions : int;
  podem_implications : int;
  podem_aborted_limit : int;
  podem_aborted_deadline : int;
  seq_runs : int;
  seq_backtracks : int;
  undetected : string list;
  failed : string list;
  aborted_faults : int;
  failed_faults : int;
  phases : phase_aborts list;
}

let of_result (r : Flow.result) =
  let fault_name f = Fst_fault.Fault.to_string r.Flow.scanned f in
  let a = r.Flow.atpg in
  {
    circuit = r.Flow.scanned.Fst_netlist.Circuit.name;
    total = Flow.total_faults r;
    affecting = Flow.affecting r;
    easy = Array.length r.Flow.classify.Classify.easy;
    hard = Array.length r.Flow.classify.Classify.hard;
    untestable_static = List.length r.Flow.untestable_static;
    step2_detected = r.Flow.step2.Flow.detected;
    step2_untestable = r.Flow.step2.Flow.untestable;
    step2_vectors = r.Flow.step2.Flow.vectors;
    step2_cpu_s =
      r.Flow.step2.Flow.atpg_seconds +. r.Flow.step2.Flow.fsim_seconds;
    step3_detected = r.Flow.step3.Flow.detected;
    step3_untestable = r.Flow.step3.Flow.untestable;
    step3_group_circuits = r.Flow.step3.Flow.group_circuits;
    step3_final_circuits = r.Flow.step3.Flow.final_circuits;
    step3_cpu_s = r.Flow.step3.Flow.seconds;
    podem_runs = a.Flow.podem_runs;
    podem_backtracks = a.Flow.podem_backtracks;
    podem_decisions = a.Flow.podem_decisions;
    podem_implications = a.Flow.podem_implications;
    podem_aborted_limit = a.Flow.podem_aborted_limit;
    podem_aborted_deadline = a.Flow.podem_aborted_deadline;
    seq_runs = a.Flow.seq_runs;
    seq_backtracks = a.Flow.seq_backtracks;
    undetected = List.map fault_name r.Flow.undetected;
    failed = List.map fault_name r.Flow.failed;
    aborted_faults = r.Flow.aborts.Flow.aborted_faults;
    failed_faults = r.Flow.aborts.Flow.failed_faults;
    phases =
      List.map
        (fun (p : Flow.phase_aborts) ->
          {
            phase = p.Flow.phase;
            budget_exhausted = p.Flow.budget_exhausted;
            atpg_aborts = p.Flow.atpg_aborts;
            cancelled_groups = p.Flow.cancelled_groups;
            failed = p.Flow.failed;
          })
        r.Flow.aborts.Flow.phases;
  }

let budget_exhausted t = List.exists (fun p -> p.budget_exhausted) t.phases
let atpg_aborts t = List.fold_left (fun n p -> n + p.atpg_aborts) 0 t.phases

let cancelled_groups t =
  List.fold_left (fun n p -> n + p.cancelled_groups) 0 t.phases

let to_text r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let t =
    Table.create ~title:"Functional scan chain testing report"
      [ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.row t [ "total collapsed faults"; Table.cell_int r.total ];
  Table.row t
    [ "affecting the chain"; Table.cell_int_pct r.affecting ~of_:r.total ];
  Table.row t [ "  category 1 (easy)"; Table.cell_int r.easy ];
  Table.row t [ "  category 2 (hard)"; Table.cell_int r.hard ];
  Table.rule t;
  Table.row t
    [ "statically untestable"; Table.cell_int r.untestable_static ];
  Table.row t [ "step 2 detected"; Table.cell_int r.step2_detected ];
  Table.row t [ "step 2 untestable"; Table.cell_int r.step2_untestable ];
  Table.row t [ "step 2 vectors"; Table.cell_int r.step2_vectors ];
  Table.row t [ "step 2 CPU"; Table.cell_seconds r.step2_cpu_s ];
  Table.rule t;
  Table.row t [ "step 3 detected"; Table.cell_int r.step3_detected ];
  Table.row t [ "step 3 untestable"; Table.cell_int r.step3_untestable ];
  Table.row t
    [
      "step 3 circuits";
      Printf.sprintf "%d+%d" r.step3_group_circuits r.step3_final_circuits;
    ];
  Table.row t [ "step 3 CPU"; Table.cell_seconds r.step3_cpu_s ];
  Table.rule t;
  Table.row t [ "PODEM runs"; Table.cell_int r.podem_runs ];
  Table.row t [ "PODEM backtracks"; Table.cell_int r.podem_backtracks ];
  Table.row t [ "PODEM decisions"; Table.cell_int r.podem_decisions ];
  Table.row t [ "PODEM implications"; Table.cell_int r.podem_implications ];
  Table.row t
    [
      "PODEM aborts (limit/deadline)";
      Printf.sprintf "%d/%d" r.podem_aborted_limit r.podem_aborted_deadline;
    ];
  Table.row t [ "seq ATPG runs"; Table.cell_int r.seq_runs ];
  Table.row t [ "seq ATPG backtracks"; Table.cell_int r.seq_backtracks ];
  Table.rule t;
  Table.row t
    [
      "undetected";
      Table.cell_int_pct (List.length r.undetected) ~of_:r.total;
    ];
  (if budget_exhausted r then begin
     Table.rule t;
     Table.row t [ "aborted (budget)"; Table.cell_int r.aborted_faults ];
     Table.row t [ "ATPG aborts"; Table.cell_int (atpg_aborts r) ];
     Table.row t [ "cancelled groups"; Table.cell_int (cancelled_groups r) ]
   end);
  (if r.failed_faults > 0 then begin
     Table.rule t;
     Table.row t [ "failed (quarantined)"; Table.cell_int r.failed_faults ]
   end);
  Buffer.add_string buf (Table.render t);
  (* One greppable line per phase for scripts and the degradation smoke. *)
  List.iter
    (fun p ->
      if p.budget_exhausted || p.atpg_aborts > 0 || p.cancelled_groups > 0
         || p.failed > 0 then
        line
          "aborts: phase=%s budget_exhausted=%b atpg_aborts=%d \
           cancelled_groups=%d failed=%d"
          p.phase p.budget_exhausted p.atpg_aborts p.cancelled_groups p.failed)
    r.phases;
  if r.aborted_faults > 0 then line "aborts: aborted_faults=%d" r.aborted_faults;
  if r.failed_faults > 0 then line "aborts: failed_faults=%d" r.failed_faults;
  List.iter (fun f -> line "undetected: %s" f) r.undetected;
  List.iter (fun f -> line "failed: %s" f) r.failed;
  Buffer.contents buf

(* --- JSON -------------------------------------------------------------- *)

let phase_to_json p =
  Json.Obj
    [
      ("phase", Json.String p.phase);
      ("budget_exhausted", Json.Bool p.budget_exhausted);
      ("atpg_aborts", Json.Int p.atpg_aborts);
      ("cancelled_groups", Json.Int p.cancelled_groups);
      ("failed", Json.Int p.failed);
    ]

let to_json r =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("circuit", Json.String r.circuit);
      ("total", Json.Int r.total);
      ("affecting", Json.Int r.affecting);
      ("easy", Json.Int r.easy);
      ("hard", Json.Int r.hard);
      ("untestable_static", Json.Int r.untestable_static);
      ("step2_detected", Json.Int r.step2_detected);
      ("step2_untestable", Json.Int r.step2_untestable);
      ("step2_vectors", Json.Int r.step2_vectors);
      ("step2_cpu_s", Json.Float r.step2_cpu_s);
      ("step3_detected", Json.Int r.step3_detected);
      ("step3_untestable", Json.Int r.step3_untestable);
      ("step3_group_circuits", Json.Int r.step3_group_circuits);
      ("step3_final_circuits", Json.Int r.step3_final_circuits);
      ("step3_cpu_s", Json.Float r.step3_cpu_s);
      ("podem_runs", Json.Int r.podem_runs);
      ("podem_backtracks", Json.Int r.podem_backtracks);
      ("podem_decisions", Json.Int r.podem_decisions);
      ("podem_implications", Json.Int r.podem_implications);
      ("podem_aborted_limit", Json.Int r.podem_aborted_limit);
      ("podem_aborted_deadline", Json.Int r.podem_aborted_deadline);
      ("seq_runs", Json.Int r.seq_runs);
      ("seq_backtracks", Json.Int r.seq_backtracks);
      ( "undetected",
        Json.List (List.map (fun f -> Json.String f) r.undetected) );
      ("failed", Json.List (List.map (fun f -> Json.String f) r.failed));
      ("aborted_faults", Json.Int r.aborted_faults);
      ("failed_faults", Json.Int r.failed_faults);
      ("phases", Json.List (List.map phase_to_json r.phases));
    ]

let ( let* ) = Result.bind

let field j k =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "report: missing field %S" k)

let f_int j k =
  let* v = field j k in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "report: %S expects an integer" k)

let f_float j k =
  let* v = field j k in
  match v with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "report: %S expects a number" k)

let f_bool j k =
  let* v = field j k in
  match v with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "report: %S expects a boolean" k)

let f_string j k =
  let* v = field j k in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "report: %S expects a string" k)

let f_string_list j k =
  let* v = field j k in
  match v with
  | Json.List l ->
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match e with
        | Json.String s -> Ok (s :: acc)
        | _ -> Error (Printf.sprintf "report: %S expects strings" k))
      (Ok []) l
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "report: %S expects a list" k)

let phase_of_json j =
  let* phase = f_string j "phase" in
  let* budget_exhausted = f_bool j "budget_exhausted" in
  let* atpg_aborts = f_int j "atpg_aborts" in
  let* cancelled_groups = f_int j "cancelled_groups" in
  let* failed = f_int j "failed" in
  Ok { phase; budget_exhausted; atpg_aborts; cancelled_groups; failed }

let of_json j =
  let* version = f_int j "version" in
  if version <> 1 then
    Error (Printf.sprintf "report: unsupported version %d" version)
  else
    let* circuit = f_string j "circuit" in
    let* total = f_int j "total" in
    let* affecting = f_int j "affecting" in
    let* easy = f_int j "easy" in
    let* hard = f_int j "hard" in
    let* untestable_static = f_int j "untestable_static" in
    let* step2_detected = f_int j "step2_detected" in
    let* step2_untestable = f_int j "step2_untestable" in
    let* step2_vectors = f_int j "step2_vectors" in
    let* step2_cpu_s = f_float j "step2_cpu_s" in
    let* step3_detected = f_int j "step3_detected" in
    let* step3_untestable = f_int j "step3_untestable" in
    let* step3_group_circuits = f_int j "step3_group_circuits" in
    let* step3_final_circuits = f_int j "step3_final_circuits" in
    let* step3_cpu_s = f_float j "step3_cpu_s" in
    let* podem_runs = f_int j "podem_runs" in
    let* podem_backtracks = f_int j "podem_backtracks" in
    let* podem_decisions = f_int j "podem_decisions" in
    let* podem_implications = f_int j "podem_implications" in
    let* podem_aborted_limit = f_int j "podem_aborted_limit" in
    let* podem_aborted_deadline = f_int j "podem_aborted_deadline" in
    let* seq_runs = f_int j "seq_runs" in
    let* seq_backtracks = f_int j "seq_backtracks" in
    let* undetected = f_string_list j "undetected" in
    let* failed = f_string_list j "failed" in
    let* aborted_faults = f_int j "aborted_faults" in
    let* failed_faults = f_int j "failed_faults" in
    let* phases_json = field j "phases" in
    let* phases =
      match phases_json with
      | Json.List l ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* p = phase_of_json e in
            Ok (p :: acc))
          (Ok []) l
        |> Result.map List.rev
      | _ -> Error "report: \"phases\" expects a list"
    in
    Ok
      {
        circuit;
        total;
        affecting;
        easy;
        hard;
        untestable_static;
        step2_detected;
        step2_untestable;
        step2_vectors;
        step2_cpu_s;
        step3_detected;
        step3_untestable;
        step3_group_circuits;
        step3_final_circuits;
        step3_cpu_s;
        podem_runs;
        podem_backtracks;
        podem_decisions;
        podem_implications;
        podem_aborted_limit;
        podem_aborted_deadline;
        seq_runs;
        seq_backtracks;
        undetected;
        failed;
        aborted_faults;
        failed_faults;
        phases;
      }
