open Fst_netlist
open Fst_tpi
module Lint = Fst_lint.Lint
module Diagnostic = Fst_lint.Diagnostic

let spec =
  Spec.make ~name:"lint"
    ~summary:"Statically analyze a netlist and its scan-DFT configuration"
    ~args:
      [
        Common.chains_arg;
        Spec.flag_arg [ "--no-scan" ]
          ~doc:"Structural and testability rules only; skip TPI insertion \
                and the scan-DFT rules.";
        Spec.flag_arg [ "--json" ]
          ~doc:"Emit the report as JSON instead of text.";
        Spec.value_arg [ "--fail-on" ] ~docv:"SEV"
          ~doc:"Exit nonzero when findings of severity SEV or worse remain \
                after waivers: error (default), warning, or none.";
        Spec.value_arg [ "--waiver" ] ~docv:"PATH"
          ~doc:"Waiver (baseline) file: one diagnostic key per line, '#' \
                comments. Matching findings are reported as waived and do \
                not gate the exit status.";
        Spec.flag_arg [ "--update-waiver" ]
          ~doc:"Rewrite the --waiver file to cover every current finding, \
                then exit 0.";
        Spec.flag_arg [ "--rules" ] ~doc:"List the rule catalogue.";
      ]
    ~pos:Common.file_pos ()

let print_report ~json report =
  if json then (
    Fst_obs.Json.to_channel stdout (Lint.to_json report);
    print_newline ())
  else print_string (Lint.render report)

let fail_on_of p =
  match Option.value ~default:"error" (Spec.string_opt p "--fail-on") with
  | "error" -> Lint.Fail_error
  | "warning" -> Lint.Fail_warning
  | "none" -> Lint.Fail_never
  | s ->
    Spec.usage_error "--fail-on expects error, warning or none, got %S" s

(* Lint a netlist file: raw-parse first so duplicate definitions and
   combinational cycles are all reported (elaboration would abort on the
   first); when the raw netlist is clean, elaborate, optionally insert the
   scan chains, and run the full rule set with the dynamic shift check
   cross-checking the static sensitization analysis. *)
let run p =
  if Spec.flag p "--rules" then begin
    List.iter
      (fun (rule, severity, desc) ->
        Printf.printf "%-18s %-8s %s\n" rule
          (Diagnostic.severity_to_string severity)
          desc)
      Lint.catalogue;
    0
  end
  else begin
    let path =
      match Spec.positional p with
      | [ f ] -> f
      | _ -> Common.or_die (Error "pass a netlist FILE (or --rules)")
    in
    let chains = Spec.int p "--chains" ~default:1 in
    let waiver_path = Spec.string_opt p "--waiver" in
    let waivers =
      match waiver_path with
      | Some w -> Lint.Waiver.load w
      | None -> Lint.Waiver.empty
    in
    let parse_diag message =
      Diagnostic.make ~rule:"E-NET-PARSE" ~severity:Diagnostic.Error
        ~loc:{ Diagnostic.no_loc with Diagnostic.file = Some path }
        message
    in
    let report =
      match
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Netfile.parse_raw
          ~name:Filename.(remove_extension (basename path))
          ~file:path text
      with
      | exception Sys_error e ->
        { Lint.circuit = path; diagnostics = [ parse_diag e ]; waived = [];
          errors = 1; warnings = 0; infos = 0 }
      | exception Netfile.Parse_error { file = _; line; message } ->
        let d =
          Diagnostic.make ~rule:"E-NET-PARSE" ~severity:Diagnostic.Error
            ~loc:{ Diagnostic.no_loc with Diagnostic.file = Some path;
                   line = Some line }
            message
        in
        { Lint.circuit = path; diagnostics = [ d ]; waived = [];
          errors = 1; warnings = 0; infos = 0 }
      | raw ->
        let pre = Lint.run_raw ~waivers raw in
        if pre.Lint.errors > 0 then pre
        else begin
          match Netfile.elaborate raw with
          | exception Circuit.Malformed message ->
            { Lint.circuit = raw.Netfile.raw_name;
              diagnostics = [ parse_diag message ]; waived = [];
              errors = 1; warnings = 0; infos = 0 }
          | circuit ->
            let lines = raw.Netfile.raw_lines in
            if Spec.flag p "--no-scan" then
              Lint.run ~lines ~file:path ~waivers circuit
            else
              let scanned, config =
                Tpi.insert
                  ~options:{ Tpi.default_options with Tpi.chains }
                  circuit
              in
              Lint.run ~lines ~file:path ~config ~dynamic:true ~waivers
                scanned
        end
    in
    match (Spec.flag p "--update-waiver", waiver_path) with
    | true, Some w ->
      Lint.Waiver.save w (report.Lint.diagnostics @ report.Lint.waived);
      Printf.printf "waiver file %s updated (%d key(s))\n" w
        (List.length report.Lint.diagnostics + List.length report.Lint.waived);
      0
    | true, None -> Common.or_die (Error "--update-waiver requires --waiver PATH")
    | false, _ ->
      print_report ~json:(Spec.flag p "--json") report;
      if Lint.gate ~fail_on:(fail_on_of p) report then 0 else 1
  end
