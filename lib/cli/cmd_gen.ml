open Fst_netlist

let spec =
  Spec.make ~name:"gen" ~summary:"Generate a benchmark circuit"
    ~args:
      [
        Common.name_arg;
        Common.scale_arg;
        Common.out_arg;
        Spec.flag_arg [ "--list" ] ~doc:"List the benchmark suite.";
        Spec.value_arg [ "--gates" ] ~docv:"N"
          ~doc:"Generate a custom circuit with N gates instead of a suite \
                entry.";
        Spec.value_arg [ "--ffs" ] ~docv:"N"
          ~doc:"Flip-flops in the custom circuit (default 16).";
        Spec.value_arg [ "--pis" ] ~docv:"N"
          ~doc:"Primary inputs in the custom circuit (default 8).";
        Spec.value_arg [ "--pos" ] ~docv:"N"
          ~doc:"Primary outputs in the custom circuit (default 4).";
        Spec.value_arg [ "--seed" ] ~docv:"N"
          ~doc:"Generator seed (default 1).";
      ]
    ()

let run p =
  let scale = Spec.float p "--scale" ~default:1.0 in
  if Spec.flag p "--list" then begin
    List.iter
      (fun e ->
        let pr = e.Fst_gen.Suite.profile in
        Printf.printf "%-8s %6d gates %5d FFs %3d PIs %3d POs %d chain(s)\n"
          pr.Fst_gen.Gen.name pr.Fst_gen.Gen.gates pr.Fst_gen.Gen.ffs
          pr.Fst_gen.Gen.pis pr.Fst_gen.Gen.pos e.Fst_gen.Suite.chains)
      (Fst_gen.Suite.suite ~scale ());
    0
  end
  else begin
    let name = Spec.string_opt p "--name" in
    let circuit =
      match Spec.int_opt p "--gates" with
      | Some g ->
        Fst_gen.Gen.generate
          {
            Fst_gen.Gen.name = Option.value ~default:"custom" name;
            gates = g;
            ffs = Spec.int p "--ffs" ~default:16;
            pis = Spec.int p "--pis" ~default:8;
            pos = Spec.int p "--pos" ~default:4;
            seed = Int64.of_int (Spec.int p "--seed" ~default:1);
          }
      | None -> Common.or_die (Common.load ~name ~scale ~file:None)
    in
    (match Spec.string_opt p "--output" with
     | Some path -> Netfile.write_file circuit path
     | None -> print_string (Netfile.to_string circuit));
    Format.eprintf "%a@." Circuit.pp_stats circuit;
    0
  end
