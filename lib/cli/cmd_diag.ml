open Fst_tpi
open Fst_core

let spec =
  Spec.make ~name:"diag"
    ~summary:"Inject a chain defect and run scan-chain diagnosis"
    ~args:
      [
        Common.name_arg;
        Common.scale_arg;
        Common.chains_arg;
        Spec.value_arg [ "--position" ] ~docv:"P"
          ~doc:"Chain position of the injected defect (default: middle).";
      ]
    ~pos:Common.file_pos ()

let run p =
  let file = match Spec.positional p with [ f ] -> Some f | _ -> None in
  let circuit =
    Common.or_die
      (Common.load ~name:(Spec.string_opt p "--name")
         ~scale:(Spec.float p "--scale" ~default:1.0)
         ~file)
  in
  let scanned, config =
    Common.or_die
      (Common.insert_chains circuit (Spec.int p "--chains" ~default:1))
  in
  let position = Spec.int p "--position" ~default:(-1) in
  let ch = config.Scan.chains.(0) in
  let len = Array.length ch.Scan.ffs in
  let pos = if position < 0 || position >= len then len / 2 else position in
  let fault =
    { Fst_fault.Fault.site = Fst_fault.Fault.Stem ch.Scan.ffs.(pos);
      stuck = true }
  in
  Printf.printf "injected %s at chain 0 position %d\n"
    (Fst_fault.Fault.to_string scanned fault)
    pos;
  (match Diagnose.diagnose_fault scanned config fault with
   | [] -> print_endline "chain test passes; nothing to diagnose"
   | verdicts ->
     List.iteri
       (fun i v ->
         if i < 5 then Format.printf "#%d %a@." (i + 1) Diagnose.pp_verdict v)
       verdicts);
  0
