open Fst_netlist
open Fst_core

let spec =
  Spec.make ~name:"flow"
    ~summary:"Run the complete functional scan chain testing flow"
    ~args:
      [
        Common.name_arg;
        Common.scale_arg;
        Common.chains_arg;
        Common.engine_arg;
        Common.jobs_arg;
        Spec.value_arg [ "--time-budget" ] ~docv:"S"
          ~doc:"Wall-clock budget for the whole flow, in seconds. When a \
                phase overruns its share the remaining work is cancelled \
                cooperatively and reported in the abort accounting.";
        Spec.flag_arg [ "--keep-going" ]
          ~doc:"Contain failures instead of dying on the first exception: \
                transient errors are retried, poison tasks are quarantined \
                into a failed bucket, and the flow always produces a \
                report. The default for budgeted runs (--time-budget).";
        Spec.flag_arg [ "--fail-fast" ]
          ~doc:"Propagate the first failure immediately (the default for \
                unbudgeted runs). Conflicts with --keep-going.";
        Spec.value_arg [ "--chaos" ] ~docv:"SEED"
          ~doc:"Arm the deterministic chaos harness with the plan derived \
                from SEED: seeded exception/delay/cancel injections at \
                pool-task, engine and checkpoint boundaries. Same seed, \
                same injections. Robustness testing only.";
        Spec.value_arg [ "--chaos-p" ] ~docv:"P"
          ~doc:"Per-site injection probability for --chaos (default 0.02).";
        Spec.value_arg [ "--checkpoint" ] ~docv:"PATH"
          ~doc:"Persist flow progress to PATH after every phase and every \
                step-3 wave (atomic rewrite, with the previous good file \
                kept as PATH.prev).";
        Spec.flag_arg [ "--resume" ]
          ~doc:"Resume from the --checkpoint file if it matches this \
                circuit, configuration and parameter set.";
        Spec.value_arg [ "--trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace-event JSON file (open in Perfetto or \
                chrome://tracing): spans for every phase, step-3 \
                wave/group, per-domain pool chunk, and each ATPG call over \
                1ms.";
        Spec.value_arg [ "--metrics" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot (counters, gauges, \
                histograms): ATPG totals, per-domain busy fractions, \
                fault-simulation counts.";
        Spec.value_arg [ "--events" ] ~docv:"FILE"
          ~doc:"Write a JSONL structured event log: phase start/end, \
                checkpoint writes, budget trips, abort records.";
        Spec.flag_arg [ "--progress" ]
          ~doc:"Print a one-line heartbeat to stderr (phase, faults \
                done/total, detected, ETA).";
        Spec.flag_arg [ "--preflight" ]
          ~doc:"Run the static scan-DFT analyzer before phase 1 and abort \
                on any error-severity finding, so a broken configuration \
                fails fast instead of consuming the ATPG budget.";
        Spec.value_arg [ "--obs-dir" ] ~docv:"DIR"
          ~doc:"Write the full run-artifact set to DIR: trace.json \
                (Perfetto), events.jsonl, metrics.prom (OpenMetrics), and \
                run.json (per-phase wall, histogram quantiles, per-domain \
                timelines, abort accounting) for fst analyze. Subsumes \
                --trace/--metrics/--events.";
        Spec.flag_arg [ "--no-sca" ]
          ~doc:"Disable phase-0 static analysis: no statically-proven \
                untestable bucket and no implication hints for PODEM. \
                Every hard fault goes through ATPG, as in the seed flow.";
      ]
    ~pos:Common.file_pos ()

(* The flow's fault accounting as JSON, appended to run.json so the
   analyzer can attribute aborts/failures per phase cohort. *)
let flow_accounting r =
  let module J = Fst_obs.Json in
  let a = r.Flow.aborts in
  J.Obj
    [
      ( "detected",
        J.Int (r.Flow.step2.Flow.detected + r.Flow.step3.Flow.detected) );
      ("undetected", J.Int (List.length r.Flow.undetected));
      ("untestable", J.Int (List.length r.Flow.untestable_faults));
      ("untestable_static", J.Int (List.length r.Flow.untestable_static));
      ("aborted_faults", J.Int a.Flow.aborted_faults);
      ("failed_faults", J.Int a.Flow.failed_faults);
      ( "phases",
        J.List
          (List.map
             (fun (ph : Flow.phase_aborts) ->
               J.Obj
                 [
                   ("phase", J.String ph.Flow.phase);
                   ("budget_exhausted", J.Bool ph.Flow.budget_exhausted);
                   ("atpg_aborts", J.Int ph.Flow.atpg_aborts);
                   ("cancelled_groups", J.Int ph.Flow.cancelled_groups);
                   ("failed", J.Int ph.Flow.failed);
                 ])
             a.Flow.phases) );
    ]

let run p =
  let scale = Spec.float p "--scale" ~default:1.0 in
  let file = match Spec.positional p with [ f ] -> Some f | _ -> None in
  let circuit =
    Common.or_die (Common.load ~name:(Spec.string_opt p "--name") ~scale ~file)
  in
  let scanned, config =
    Common.or_die
      (Common.insert_chains circuit (Spec.int p "--chains" ~default:1))
  in
  let trace = Spec.string_opt p "--trace" in
  let metrics = Spec.string_opt p "--metrics" in
  let events = Spec.string_opt p "--events" in
  let progress = Spec.flag p "--progress" in
  let obs_dir = Spec.string_opt p "--obs-dir" in
  let artifacts =
    match obs_dir with
    | Some dir ->
      if trace <> None || metrics <> None || events <> None then
        Common.or_die
          (Error
             "--obs-dir already writes trace.json/metrics.prom/events.jsonl; \
              drop --trace/--metrics/--events");
      Some (Fst_obs.Artifacts.create ~dir)
    | None -> None
  in
  let sink, finish_obs =
    match artifacts with
    | Some a ->
      let pr = if progress then Some (Fst_obs.Progress.create ()) else None in
      (Fst_obs.Artifacts.sink ?progress:pr a, fun () -> ())
    | None -> Common.make_sink ~trace ~metrics ~events ~progress
  in
  let on_error =
    match (Spec.flag p "--keep-going", Spec.flag p "--fail-fast") with
    | true, true -> Common.or_die (Error "--keep-going and --fail-fast conflict")
    | true, false -> Some `Keep_going
    | false, true -> Some `Fail_fast
    | false, false -> None
  in
  let cfg =
    Common.or_die
      (Config.of_cli ~engine:(Common.get_engine p)
         ~jobs:(Spec.int p "--jobs" ~default:0)
         ~scale
         ?time_budget:(Spec.float_opt p "--time-budget")
         ?on_error
         ~preflight:(Spec.flag p "--preflight")
         ~sink ())
  in
  let cfg =
    if Spec.flag p "--no-sca" then
      Config.(cfg |> with_sca_prune false |> with_sca_implications false)
    else cfg
  in
  let checkpoint = Spec.string_opt p "--checkpoint" in
  let resume = Spec.flag p "--resume" in
  if resume && checkpoint = None then
    Common.or_die (Error "--resume requires --checkpoint PATH");
  let chaos = Spec.int_opt p "--chaos" in
  let chaos_p = Spec.float p "--chaos-p" ~default:0.02 in
  (match chaos with
   | Some seed ->
     let plan = Fst_exec.Chaos.plan_of_seed ~p:chaos_p seed in
     Fst_exec.Chaos.install plan;
     Printf.eprintf "chaos: seed=%d p=%g injections=%d\n%!" seed chaos_p
       (List.length plan)
   | None -> ());
  let r =
    Flow.run ~config:cfg ?checkpoint ~resume ~on_resume:Common.print_resume
      scanned config
  in
  Fst_exec.Chaos.clear ();
  print_string (Fst_report.Flow_report.to_text (Fst_report.Flow_report.of_result r));
  (* Under chaos the run's one obligation is the partition invariant:
     every hard fault is accounted for exactly once. *)
  if chaos <> None then begin
    let hard = Array.length r.Flow.classify.Classify.hard in
    let accounted =
      r.Flow.step2.Flow.detected + r.Flow.step3.Flow.detected
      + List.length r.Flow.untestable_faults
      + List.length r.Flow.untestable_static
      + List.length r.Flow.undetected
      + List.length r.Flow.aborted + List.length r.Flow.failed
    in
    if accounted = hard then Printf.printf "chaos: invariant ok\n"
    else
      Common.or_die
        (Error
           (Printf.sprintf
              "chaos: invariant violated (%d accounted of %d hard faults)"
              accounted hard))
  end;
  (match (artifacts, obs_dir) with
   | Some a, Some dir ->
     let module J = Fst_obs.Json in
     let config_json =
       let head =
         [
           ("circuit", J.String scanned.Circuit.name);
           ( "jobs_effective",
             J.Int
               (Fst_exec.Pool.effective_jobs ~jobs:cfg.Config.jobs max_int) );
         ]
       in
       match Config.to_json cfg with
       | J.Obj kvs -> J.Obj (head @ kvs)
       | j -> j
     in
     Fst_obs.Artifacts.write ~config:config_json
       ~extra:[ ("flow", flow_accounting r) ]
       a;
     Printf.eprintf "obs: artifacts written to %s\n%!" dir
   | _ -> finish_obs ());
  0
