module Analyze = Fst_obs.Analyze

let spec =
  Spec.make ~name:"analyze"
    ~summary:
      "Analyze a run-artifact directory: critical path, per-domain \
       utilization, hotspots, and baseline regression gating"
    ~args:
      [
        Spec.value_arg [ "--baseline" ] ~docv:"PATH"
          ~doc:"Compare against PATH: another --obs-dir directory, a \
                run.json file, or a BENCH_flow.json (picks the circuit \
                matching the current run; see --circuit). Exits 1 when any \
                gated metric regresses past the threshold.";
        Spec.value_arg [ "--circuit" ] ~docv:"NAME"
          ~doc:"Circuit to select from a BENCH_flow.json baseline (default: \
                the current run's circuit).";
        Spec.flag_arg [ "--json" ]
          ~doc:"Emit the diff as JSON instead of the human report.";
        Spec.value_arg [ "--fail-on-regression" ] ~docv:"PCT"
          ~doc:"Relative regression threshold in percent (default 20): a \
                gated time metric more than PCT% slower than the baseline \
                is a regression and fails the exit status.";
        Spec.value_arg [ "--top" ] ~docv:"K"
          ~doc:"Rows in the hotspot and critical-path tables (default 10).";
      ]
    ~pos:
      (Spec.Pos
         { docv = "DIR";
           doc = "Artifact directory written by fst flow --obs-dir.";
           required = true; all = false })
    ()

(* A baseline argument can be an artifact directory, a run.json file, or
   a BENCH_flow.json (whose circuit is picked to match the current run's
   config, multicore variant preferred, overridable with --circuit). *)
let load_baseline path ~circuit ~(cur : Analyze.run) =
  if Sys.file_exists path && Sys.is_directory path then
    Result.map fst (Analyze.load_dir path)
  else
    match Analyze.load_run path with
    | Ok r -> Ok r
    | Error run_err -> (
      match Analyze.load_bench path with
      | Error _ -> Error run_err
      | Ok runs -> (
        let name =
          match circuit with
          | Some c -> Some c
          | None -> (
            match Fst_obs.Json.member "circuit" cur.Analyze.config with
            | Some (Fst_obs.Json.String c) -> Some c
            | _ -> None)
        in
        match name with
        | None ->
          Error
            (path
             ^ ": bench baseline needs --circuit NAME (current run.json \
                names no circuit)")
        | Some c -> (
          match
            ( List.assoc_opt (c ^ "/multicore") runs,
              List.assoc_opt (c ^ "/serial") runs )
          with
          | Some r, _ | None, Some r -> Ok r
          | None, None ->
            Error
              (Printf.sprintf "%s: no circuit %S in bench baseline (have: %s)"
                 path c
                 (String.concat ", " (List.map fst runs))))))

let run p =
  let dir = List.hd (Spec.positional p) in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Spec.usage_error "%s is not a directory" dir;
  let json_out = Spec.flag p "--json" in
  let top = Spec.int p "--top" ~default:10 in
  let threshold = Spec.float p "--fail-on-regression" ~default:20.0 in
  let cur, spans = Common.or_die (Analyze.load_dir dir) in
  match Spec.string_opt p "--baseline" with
  | None ->
    if json_out then (
      Fst_obs.Json.to_channel stdout (Analyze.diff_to_json []);
      print_newline ())
    else print_string (Analyze.render_report ~k:top cur spans);
    0
  | Some b ->
    let base =
      Common.or_die
        (load_baseline b ~circuit:(Spec.string_opt p "--circuit") ~cur)
    in
    let entries = Analyze.diff ~threshold:(threshold /. 100.0) base cur in
    if json_out then (
      Fst_obs.Json.to_channel stdout (Analyze.diff_to_json entries);
      print_newline ())
    else begin
      print_string (Analyze.render_report ~k:top cur spans);
      Printf.printf "\ndiff vs %s (threshold %g%%):\n" b threshold;
      print_string (Analyze.render_diff entries)
    end;
    if Analyze.regressions entries = [] then 0 else 1
