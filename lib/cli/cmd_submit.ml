module Protocol = Fst_serve.Protocol
module Client = Fst_serve.Client
module Json = Fst_obs.Json

let spec =
  Spec.make ~name:"submit"
    ~summary:"Submit a job to a running fst serve daemon"
    ~args:
      (Cmd_serve.addr_args
      @ [
          Common.name_arg;
          Common.scale_arg;
          Common.chains_arg;
          Common.engine_arg;
          Common.jobs_arg;
          Spec.value_arg [ "--kind" ] ~docv:"KIND"
            ~doc:"Job kind: flow (default), lint, or sca.";
          Spec.value_arg [ "--config" ] ~docv:"PATH"
            ~doc:"Flow configuration as a Config JSON file (the format \
                  printed by flow event logs); overrides \
                  --engine/-j/--time-budget/--scale.";
          Spec.value_arg [ "--time-budget" ] ~docv:"S"
            ~doc:"Wall-clock budget for the job, in seconds (the daemon \
                  may cap it further).";
          Spec.value_arg [ "--tenant" ] ~docv:"NAME"
            ~doc:"Fair-share scheduling bucket (default anon): tenants \
                  take strict round-robin turns.";
          Spec.flag_arg [ "--no-wait" ]
            ~doc:"Return after the ack instead of streaming events and \
                  waiting for the result; poll with status/result.";
          Spec.value_arg [ "--events" ] ~docv:"FILE"
            ~doc:"Write the streamed job event lines (JSONL) to FILE.";
          Spec.flag_arg [ "--json" ]
            ~doc:"Print the raw result payload as JSON instead of the \
                  rendered report.";
          Spec.flag_arg [ "--ping" ] ~doc:"Just probe the daemon and exit.";
          Spec.flag_arg [ "--stats" ]
            ~doc:"Print the daemon's cache/queue statistics and exit.";
          Spec.flag_arg [ "--shutdown" ]
            ~doc:"Ask the daemon to finish running jobs and exit.";
        ])
    ~extra_help:[ Cmd_serve.protocol_help ]
    ~pos:Common.file_pos ()

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let simple_request addr req =
  let c = Client.connect addr in
  let r = Client.request c req in
  Client.close c;
  match r with
  | Ok j ->
    Json.to_channel stdout j;
    print_newline ();
    0
  | Error e ->
    prerr_endline ("fst: " ^ e);
    1

let netlist_of p =
  match (Spec.positional p, Spec.string_opt p "--name") with
  | [ file ], _ ->
    let name = Filename.(remove_extension (basename file)) in
    (match read_all file with
     | text -> (text, name)
     | exception Sys_error e -> Common.or_die (Error e))
  | [], Some _ ->
    let circuit =
      Common.or_die
        (Common.load ~name:(Spec.string_opt p "--name")
           ~scale:(Spec.float p "--scale" ~default:1.0)
           ~file:None)
    in
    (Fst_netlist.Netfile.to_string circuit, circuit.Fst_netlist.Circuit.name)
  | _ -> Common.or_die (Error "pass a netlist FILE or --name CIRCUIT")

let config_of p =
  match Spec.string_opt p "--config" with
  | Some path -> (
    match Json.of_string (read_all path) with
    | j -> j
    | exception Sys_error e -> Common.or_die (Error e)
    | exception Json.Parse_error e ->
      Common.or_die (Error (Printf.sprintf "%s: %s" path e)))
  | None ->
    (* Build the semantic config from the same flags fst flow takes, and
       ship its canonical JSON — the server re-reads it with
       Config.of_json, the exact inverse. *)
    let cfg =
      Common.or_die
        (Fst_core.Config.of_cli ~engine:(Common.get_engine p)
           ~jobs:(Spec.int p "--jobs" ~default:0)
           ~scale:(Spec.float p "--scale" ~default:1.0)
           ?time_budget:(Spec.float_opt p "--time-budget")
           ())
    in
    Fst_core.Config.to_json cfg

let run p =
  let addr = Cmd_serve.get_addr p in
  if Spec.flag p "--ping" then simple_request addr Protocol.Ping
  else if Spec.flag p "--stats" then simple_request addr Protocol.Stats
  else if Spec.flag p "--shutdown" then simple_request addr Protocol.Shutdown
  else begin
    let kind =
      let k = Option.value ~default:"flow" (Spec.string_opt p "--kind") in
      match Protocol.job_kind_of_string k with
      | Some k -> k
      | None -> Spec.usage_error "unknown job kind %S" k
    in
    let netlist, name = netlist_of p in
    let submit =
      {
        Protocol.kind;
        netlist;
        name;
        chains = Spec.int p "--chains" ~default:1;
        config = config_of p;
        wait = not (Spec.flag p "--no-wait");
        tenant = Option.value ~default:"anon" (Spec.string_opt p "--tenant");
      }
    in
    let c = Client.connect addr in
    let outcome = Client.submit c submit in
    Client.close c;
    match outcome with
    | Error e ->
      prerr_endline ("fst: " ^ e);
      1
    | Ok o ->
      (match Spec.string_opt p "--events" with
       | Some path ->
         let oc = open_out path in
         List.iter
           (fun line ->
             output_string oc line;
             output_char oc '\n')
           o.Client.events;
         close_out oc
       | None -> ());
      if not submit.Protocol.wait then begin
        Printf.printf "submitted: %s\n" o.Client.job;
        0
      end
      else begin
        (if Spec.flag p "--json" || kind <> Protocol.Flow then begin
           Json.to_channel stdout o.Client.payload;
           print_newline ()
         end
         else
           match Fst_report.Flow_report.of_json o.Client.payload with
           | Ok report -> print_string (Fst_report.Flow_report.to_text report)
           | Error e ->
             Common.or_die (Error ("malformed report payload: " ^ e)));
        Printf.eprintf "submit: %s %s cached=%b elapsed=%.3fs events=%d\n%!"
          o.Client.job
          (Protocol.job_kind_to_string kind)
          o.Client.cached o.Client.elapsed_s
          (List.length o.Client.events);
        0
      end
  end
