open Fst_netlist
open Fst_tpi

let read_circuit path =
  try Ok (Netfile.parse_file path) with
  | Netfile.Parse_error { file; line; message } ->
    Error
      (Printf.sprintf "%s:%d: %s" (Option.value ~default:path file) line message)
  | Circuit.Malformed message | Circuit.Combinational_cycle message ->
    Error (Printf.sprintf "%s: %s" path message)
  | Sys_error e -> Error e

let load ~name ~scale ~file =
  match (file, name) with
  | Some path, _ -> read_circuit path
  | None, Some n -> (
    match Fst_gen.Suite.find ~scale n with
    | entry -> Ok (Fst_gen.Gen.generate entry.Fst_gen.Suite.profile)
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown suite circuit %S (see `fst gen --list`)" n))
  | None, None -> Error "pass a netlist FILE or --name CIRCUIT"

let insert_chains circuit chains =
  let scanned, config =
    Tpi.insert ~options:{ Tpi.default_options with Tpi.chains } circuit
  in
  match Scan.verify_shift scanned config with
  | Ok () -> Ok (scanned, config)
  | Error errs ->
    (* Render dynamic shift failures through the lint diagnostic machinery,
       one compiler-style line each, same as `fst lint` output. *)
    List.iter
      (fun e ->
        prerr_endline
          (Fst_lint.Diagnostic.to_string
             (Fst_lint.Diagnostic.of_shift_error scanned e)))
      errs;
    Error
      (Printf.sprintf "scan chain verification failed (%d position(s))"
         (List.length errs))

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("fst: " ^ e);
    exit 1

(* Builds the observability sink requested on the command line, plus the
   action that writes the collected data out once the flow is done. With
   no observability flag the null sink is installed and the run stays
   bit-identical to an uninstrumented one. *)
let make_sink ~trace ~metrics ~events ~progress =
  if trace = None && metrics = None && events = None && not progress then
    (Fst_obs.Sink.null, fun () -> ())
  else begin
    let tr =
      match trace with Some _ -> Some (Fst_obs.Trace.create ()) | None -> None
    in
    let ev_oc = Option.map (fun path -> (path, open_out path)) events in
    let ev = Option.map (fun (_, oc) -> Fst_obs.Events.to_channel oc) ev_oc in
    let pr = if progress then Some (Fst_obs.Progress.create ()) else None in
    let sink = Fst_obs.Sink.create ?trace:tr ?events:ev ?progress:pr () in
    let finish () =
      (match (trace, tr) with
       | Some path, Some tr ->
         let oc = open_out path in
         Fst_obs.Json.to_channel oc (Fst_obs.Trace.to_json tr);
         close_out oc;
         Printf.eprintf "trace: %d events written to %s\n%!"
           (Fst_obs.Trace.event_count tr)
           path
       | _ -> ());
      (match metrics with
       | Some path ->
         let oc = open_out path in
         Fst_obs.Json.to_channel oc
           (Fst_obs.Metrics.to_json sink.Fst_obs.Sink.metrics);
         close_out oc;
         Printf.eprintf "metrics: written to %s\n%!" path
       | None -> ());
      match ev_oc with
      | Some (path, oc) ->
        close_out oc;
        Printf.eprintf "events: written to %s\n%!" path
      | None -> ()
    in
    (sink, finish)
  end

(* One line on stderr saying exactly where a --resume run's state came
   from — primary checkpoint, the .prev last-good rotation, or (with the
   precise reason) nowhere. *)
let print_resume = function
  | `Loaded Fst_core.Checkpoint.Primary ->
    Printf.eprintf "resume: loaded checkpoint\n%!"
  | `Loaded Fst_core.Checkpoint.Recovered ->
    Printf.eprintf "resume: primary checkpoint unusable, recovered from \
                    .prev\n%!"
  | `Failed err ->
    Printf.eprintf "resume: starting fresh (%s)\n%!"
      (Fst_core.Checkpoint.error_to_string err)

(* --- shared flag specs -------------------------------------------------- *)

let scale_arg =
  Spec.value_arg [ "--scale" ] ~docv:"S"
    ~doc:"Scale factor for suite circuit sizes (1.0 = published sizes)."

let name_arg =
  Spec.value_arg [ "-n"; "--name" ] ~docv:"NAME"
    ~doc:"Suite circuit name (e.g. s5378)."

let chains_arg =
  Spec.value_arg [ "-c"; "--chains" ] ~docv:"N"
    ~doc:"Number of scan chains to build (default 1)."

let out_arg =
  Spec.value_arg [ "-o"; "--output" ] ~docv:"FILE" ~doc:"Output netlist file."

let jobs_arg =
  Spec.value_arg [ "-j"; "--jobs" ] ~docv:"N"
    ~doc:"Domains for fault simulation and grouped sequential ATPG (0 = one \
          per recommended core; 1 = single-core flow)."

let engine_arg =
  Spec.value_arg [ "--engine" ] ~docv:"ENGINE"
    ~doc:"Fault-simulation engine: serial (one faulty machine at a time), \
          parallel (62-way bit-parallel), event (event-driven incremental \
          on a shared good trace), or auto (per fault by static fanout-cone \
          size). Every choice computes identical results."

let file_pos =
  Spec.Pos
    { docv = "FILE"; doc = "Netlist file (ISCAS'89-like syntax).";
      required = false; all = false }

let file_pos_required =
  Spec.Pos
    { docv = "FILE"; doc = "Netlist file (ISCAS'89-like syntax).";
      required = true; all = false }

let get_engine p =
  let e = Option.value ~default:"auto" (Spec.string_opt p "--engine") in
  if List.mem e Fst_core.Config.engine_names then e
  else
    Spec.usage_error "unknown engine %S (expected one of: %s)" e
      (String.concat ", " Fst_core.Config.engine_names)
