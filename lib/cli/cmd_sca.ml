open Fst_tpi
module Table = Fst_report.Table

let spec =
  Spec.make ~name:"sca"
    ~summary:
      "Static analysis: scan-mode constants, implications, and fault \
       untestability proofs"
    ~args:
      [
        Common.name_arg;
        Common.scale_arg;
        Common.chains_arg;
        Spec.flag_arg [ "--json" ]
          ~doc:"Emit the full report (derivation traces, proof objects) as \
                JSON.";
      ]
    ~pos:Common.file_pos ()

(* The flow's phase-0 static analysis, standalone: build the scan-mode
   view, run constant propagation, the implication engine and the
   untestability prover over the collapsed fault universe, and print the
   statistics plus one greppable line per proven fault. Every shipped
   proof is re-checked; a mismatch fails the exit status, so the
   make-check smoke gates soundness too. *)
let run p =
  let file = match Spec.positional p with [ f ] -> Some f | _ -> None in
  let circuit =
    Common.or_die
      (Common.load ~name:(Spec.string_opt p "--name")
         ~scale:(Spec.float p "--scale" ~default:1.0)
         ~file)
  in
  let scanned, config =
    Common.or_die
      (Common.insert_chains circuit (Spec.int p "--chains" ~default:1))
  in
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let view =
    Fst_netlist.View.scan_mode scanned ~constraints:config.Scan.constraints ()
  in
  let t = Fst_sca.Sca.analyze view ~faults in
  let s = t.Fst_sca.Sca.stats in
  if Spec.flag p "--json" then begin
    Fst_obs.Json.to_channel stdout (Fst_sca.Sca.to_json t);
    print_newline ()
  end
  else begin
    let tbl =
      Table.create ~title:"Static circuit analysis"
        [ ("metric", Table.Left); ("value", Table.Right) ]
    in
    Table.row tbl [ "nets"; Table.cell_int s.Fst_sca.Sca.nets ];
    Table.row tbl [ "target faults"; Table.cell_int s.Fst_sca.Sca.targets ];
    Table.row tbl
      [ "constant gate nets"; Table.cell_int s.Fst_sca.Sca.constants ];
    Table.row tbl
      [ "implication edges"; Table.cell_int s.Fst_sca.Sca.implications ];
    Table.row tbl [ "  learned"; Table.cell_int s.Fst_sca.Sca.learned ];
    Table.row tbl
      [ "impossible literals"; Table.cell_int s.Fst_sca.Sca.impossible ];
    Table.row tbl
      [ "dominance edges"; Table.cell_int s.Fst_sca.Sca.dominance_edges ];
    Table.row tbl
      [
        "proven untestable";
        Table.cell_int_pct s.Fst_sca.Sca.untestable ~of_:s.Fst_sca.Sca.targets;
      ];
    Table.row tbl [ "CPU"; Table.cell_seconds s.Fst_sca.Sca.seconds ];
    Table.print tbl;
    List.iter
      (fun (u : Fst_sca.Sca.untestable) ->
        let kind =
          match u.Fst_sca.Sca.proof with
          | Fst_sca.Sca.Unexcitable -> "unexcitable"
          | Fst_sca.Sca.Unobservable _ -> "unobservable"
          | Fst_sca.Sca.Fire _ -> "fire-split"
          | Fst_sca.Sca.Requires _ -> "requires-literal"
          | Fst_sca.Sca.Dominated _ -> "dominated"
        in
        Printf.printf "untestable: %s (%s)\n"
          (Fst_fault.Fault.to_string scanned u.Fst_sca.Sca.fault)
          kind)
      t.Fst_sca.Sca.untestable
  end;
  let bad =
    List.filter (fun u -> not (Fst_sca.Sca.check t u)) t.Fst_sca.Sca.untestable
  in
  if bad = [] then 0
  else begin
    Printf.eprintf "fst: %d untestability proof(s) failed re-checking\n"
      (List.length bad);
    1
  end
