open Fst_netlist

let spec =
  Spec.make ~name:"opt"
    ~summary:"Clean up a netlist (fold, bypass, sweep, refanin)"
    ~args:[ Common.out_arg ] ~pos:Common.file_pos_required ()

let run p =
  let file = List.hd (Spec.positional p) in
  let circuit = Common.or_die (Common.read_circuit file) in
  let optimized, stats = Opt.optimize circuit in
  Format.printf "before: %a@.after:  %a@.%a@." Circuit.pp_stats circuit
    Circuit.pp_stats optimized Opt.pp_stats stats;
  (match Spec.string_opt p "--output" with
   | Some path ->
     Netfile.write_file optimized path;
     Printf.printf "optimized netlist written to %s\n" path
   | None -> ());
  0
