let spec =
  Spec.make ~name:"jsonlint"
    ~summary:"Validate JSON/JSONL files written by --trace/--metrics/--events"
    ~args:
      [
        Spec.value_arg [ "--expect" ] ~docv:"TEXT"
          ~doc:"Fail unless the file contains TEXT (repeatable).";
      ]
    ~pos:
      (Spec.Pos
         { docv = "FILE";
           doc = "JSON file (or .jsonl: one JSON object per line).";
           required = true; all = true })
    ()

(* Validation helper for the make-check smokes: parse each file as JSON
   (or, for .jsonl files, as one JSON object per line), validate the
   run-artifact formats structurally (.prom via the OpenMetrics checker,
   run.json via its schema check), and optionally require substrings,
   e.g. metric names that must be present. *)
let run p =
  let files = Spec.positional p in
  let expects = Spec.strings p "--expect" in
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let lint path =
    let text = try Ok (read_all path) with Sys_error e -> Error e in
    match text with
    | Error e -> Error e
    | Ok text ->
      let parse () =
        if Filename.check_suffix path ".prom" then
          match Fst_obs.Openmetrics.validate text with
          | Ok () -> ()
          | Error m -> failwith m
        else if Filename.check_suffix path ".jsonl" then
          String.split_on_char '\n' text
          |> List.iteri (fun i line ->
                 if String.trim line <> "" then
                   try ignore (Fst_obs.Json.of_string line)
                   with Fst_obs.Json.Parse_error m ->
                     failwith (Printf.sprintf "line %d: %s" (i + 1) m))
        else begin
          let j = Fst_obs.Json.of_string text in
          if Filename.basename path = "run.json" then
            match Fst_obs.Artifacts.validate_run j with
            | Ok () -> ()
            | Error m -> failwith m
        end
      in
      (match parse () with
       | () ->
         let missing =
           List.filter
             (fun needle ->
               (* substring search *)
               let nl = String.length needle and tl = String.length text in
               let rec at i =
                 if i + nl > tl then true
                 else if String.sub text i nl = needle then false
                 else at (i + 1)
               in
               at 0)
             expects
         in
         if missing = [] then Ok ()
         else
           Error
             (Printf.sprintf "missing expected content: %s"
                (String.concat ", " missing))
       | exception Fst_obs.Json.Parse_error m -> Error m
       | exception Failure m -> Error m)
  in
  let failures =
    List.filter_map
      (fun path ->
        match lint path with
        | Ok () ->
          Printf.printf "jsonlint: %s OK\n" path;
          None
        | Error e ->
          Printf.eprintf "jsonlint: %s: %s\n" path e;
          Some path)
      files
  in
  if failures = [] then 0 else 1
