open Fst_core

let spec =
  Spec.make ~name:"alt"
    ~summary:"Classify faults: the easy/hard split of the paper's Table 2"
    ~args:[ Common.name_arg; Common.scale_arg; Common.chains_arg ]
    ~pos:Common.file_pos ()

let run p =
  let file = match Spec.positional p with [ f ] -> Some f | _ -> None in
  let circuit =
    Common.or_die
      (Common.load ~name:(Spec.string_opt p "--name")
         ~scale:(Spec.float p "--scale" ~default:1.0)
         ~file)
  in
  let scanned, config =
    Common.or_die
      (Common.insert_chains circuit (Spec.int p "--chains" ~default:1))
  in
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let cls = Classify.run scanned config faults in
  let total = Array.length faults in
  Printf.printf
    "%d faults; %d affect the chain (%.1f%%): %d easy (alternating sequence), %d hard\n"
    total cls.Classify.affecting
    (100.0 *. float_of_int cls.Classify.affecting /. float_of_int total)
    (Array.length cls.Classify.easy)
    (Array.length cls.Classify.hard);
  0
