(** Declarative flag specifications for the [fst] subcommands.

    Each subcommand is described by one {!t}: its option table, its
    positional-argument shape, and a summary line. The same table drives
    the parser {e and} the generated [--help]/usage text, so a command's
    documentation cannot drift from what it accepts. *)

(** One option. [docv = None] is a boolean flag; [Some v] takes a value
    (spelled [--name V] or [--name=V]). Valued options are repeatable;
    the getters expose either the last occurrence or all of them. *)
type arg = {
  names : string list;  (** spellings, e.g. [["-c"; "--chains"]] *)
  docv : string option;
  doc : string;
}

type pos =
  | No_pos
  | Pos of { docv : string; doc : string; required : bool; all : bool }

type t = {
  name : string;  (** subcommand name *)
  summary : string;
  args : arg list;
  pos : pos;
  extra_help : string list;
      (** extra [--help] paragraphs (e.g. the serve protocol table) *)
}

val make :
  ?args:arg list -> ?pos:pos -> ?extra_help:string list ->
  name:string -> summary:string -> unit -> t

val flag_arg : string list -> doc:string -> arg
val value_arg : string list -> docv:string -> doc:string -> arg

(** Raised on unknown options, missing values, malformed numbers,
    missing required positionals. The dispatcher prints the message and
    the usage line, then exits nonzero. *)
exception Usage_error of string

val usage_error : ('a, unit, string, 'b) format4 -> 'a

type parsed

(** [parse spec argv] — [argv] excludes the program and subcommand
    names. [--help]/[-help] print {!help} and exit 0. A bare [--] ends
    option parsing. *)
val parse : t -> string list -> parsed

(** Getters address an option by any of its spellings. *)

val flag : parsed -> string -> bool
val string_opt : parsed -> string -> string option
val strings : parsed -> string -> string list
val int : parsed -> string -> default:int -> int
val int_opt : parsed -> string -> int option
val float : parsed -> string -> default:float -> float
val float_opt : parsed -> string -> float option
val positional : parsed -> string list

val usage_line : t -> string
val help : t -> string
