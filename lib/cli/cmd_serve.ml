module Protocol = Fst_serve.Protocol

(* The protocol half of --help is generated from Protocol.commands — the
   one table request_of_json validates against — so the documented and
   the accepted command sets are the same thing. *)
let protocol_help =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "protocol (%s): one JSON object per line over the socket; requests \
     carry {\"v\":%d,\"cmd\":...}.\ncommands:"
    Protocol.id Protocol.version;
  List.iter
    (fun (cmd, doc) -> Printf.bprintf b "\n  %-10s %s" cmd doc)
    Protocol.commands;
  Buffer.contents b

let addr_args =
  [
    Spec.value_arg [ "--socket" ] ~docv:"PATH"
      ~doc:"Listen on (or connect to) a Unix-domain socket at PATH.";
    Spec.value_arg [ "--port" ] ~docv:"N"
      ~doc:"Listen on (or connect to) TCP localhost:N instead of a Unix \
            socket.";
  ]

let get_addr p =
  match
    Protocol.addr_of_spec
      ~socket:(Spec.string_opt p "--socket")
      ~port:(Spec.int_opt p "--port")
  with
  | Ok a -> a
  | Error e -> Spec.usage_error "%s" e

let spec =
  Spec.make ~name:"serve"
    ~summary:"Run the batch flow service daemon"
    ~args:
      (addr_args
      @ [
          Spec.value_arg [ "--workers" ] ~docv:"N"
            ~doc:"Jobs executed concurrently (default 1); each job also \
                  parallelizes internally up to --jobs-cap.";
          Spec.value_arg [ "--jobs-cap" ] ~docv:"N"
            ~doc:"Clamp every job's jobs knob to N (default: the \
                  recommended core count).";
          Spec.value_arg [ "--job-budget" ] ~docv:"S"
            ~doc:"Cap every job's wall-clock budget at S seconds; clients \
                  asking for more (or for no budget) get this cap.";
          Spec.value_arg [ "--cache-dir" ] ~docv:"DIR"
            ~doc:"Persist the content-addressed artifact cache to DIR \
                  (atomic writes; a restarted daemon keeps its warm set).";
          Spec.value_arg [ "--cache-entries" ] ~docv:"N"
            ~doc:"In-memory cache capacity in artifacts, LRU-evicted \
                  (default 512).";
          Spec.value_arg [ "--hb-interval" ] ~docv:"S"
            ~doc:"Heartbeat period for waiting submits (default 1.0).";
          Spec.value_arg [ "--log" ] ~docv:"FILE"
            ~doc:"Append the daemon's own JSONL event log (job submitted/ \
                  started/done, cache hits, shutdown) to FILE.";
        ])
    ~extra_help:[ protocol_help ] ()

let run p =
  let addr = get_addr p in
  let cache =
    Fst_serve.Cache.create
      ?dir:(Spec.string_opt p "--cache-dir")
      ?max_entries:(Spec.int_opt p "--cache-entries")
      ()
  in
  let log_oc = Option.map open_out (Spec.string_opt p "--log") in
  let log = Option.map Fst_obs.Events.to_channel log_oc in
  let server =
    Fst_serve.Server.create
      ~workers:(Spec.int p "--workers" ~default:1)
      ?jobs_cap:(Spec.int_opt p "--jobs-cap")
      ?job_budget:(Spec.float_opt p "--job-budget")
      ~cache
      ~hb_interval:(Spec.float p "--hb-interval" ~default:1.0)
      ?log ~addr ()
  in
  Printf.eprintf "serve: listening on %s (%s)\n%!"
    (Protocol.addr_to_string addr)
    Protocol.id;
  Fst_serve.Server.run server;
  Option.iter close_out log_oc;
  Printf.eprintf "serve: shut down\n%!";
  0
