(** The [fst] driver: one {!Spec.t}-described module per subcommand,
    dispatched here. [bin/fst.ml] is a one-line call to {!main}. *)

(** [(spec, run)] rows, in help order. *)
val commands : (Spec.t * (Spec.parsed -> int)) list

(** Parses [Sys.argv], dispatches, maps netlist/flow exceptions to
    one-line diagnostics, and returns the exit code. *)
val main : unit -> int
