open Fst_netlist
open Fst_tpi

let spec =
  Spec.make ~name:"tpi" ~summary:"Insert functional scan chains (TPI)"
    ~args:[ Common.chains_arg; Common.out_arg ]
    ~pos:Common.file_pos_required ()

let run p =
  let file = List.hd (Spec.positional p) in
  let chains = Spec.int p "--chains" ~default:1 in
  let circuit = Common.or_die (Common.read_circuit file) in
  let scanned, config = Common.or_die (Common.insert_chains circuit chains) in
  Format.printf "%a@.%a@." Circuit.pp_stats scanned
    (Scan.pp_config scanned) config;
  let oh = Tpi.overhead scanned config ~before:circuit in
  Printf.printf
    "overhead: %d extra gates, %d dedicated routes, %d functional segments\n"
    oh.Tpi.extra_gates oh.Tpi.dedicated_routes oh.Tpi.functional_segments;
  (match Spec.string_opt p "--output" with
   | Some path ->
     Netfile.write_file scanned path;
     Printf.printf "scanned netlist written to %s\n" path
   | None -> ());
  0
