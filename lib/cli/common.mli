(** Helpers shared by the [fst] subcommands: circuit loading, scan
    insertion with shift verification, sink construction, and the flag
    specs that several commands share (so [fst flow] and [fst submit]
    spell their common options identically). *)

val read_circuit : string -> (Fst_netlist.Circuit.t, string) result

(** [load ~name ~scale ~file] — a netlist file wins over a suite name. *)
val load :
  name:string option ->
  scale:float ->
  file:string option ->
  (Fst_netlist.Circuit.t, string) result

(** TPI insertion followed by the dynamic shift check; failures are
    rendered to stderr through the lint diagnostic machinery. *)
val insert_chains :
  Fst_netlist.Circuit.t ->
  int ->
  (Fst_netlist.Circuit.t * Fst_tpi.Scan.config, string) result

val or_die : ('a, string) result -> 'a

(** Observability sink from the [--trace]/[--metrics]/[--events]/
    [--progress] flags, plus the action that writes the collected data
    out after the run. *)
val make_sink :
  trace:string option ->
  metrics:string option ->
  events:string option ->
  progress:bool ->
  Fst_obs.Sink.t * (unit -> unit)

val print_resume :
  [ `Loaded of Fst_core.Checkpoint.source | `Failed of Fst_core.Checkpoint.error ] ->
  unit

(** {2 Shared flag specs} *)

val scale_arg : Spec.arg
val name_arg : Spec.arg
val chains_arg : Spec.arg
val out_arg : Spec.arg
val jobs_arg : Spec.arg
val engine_arg : Spec.arg
val file_pos : Spec.pos
val file_pos_required : Spec.pos

(** [engine] validated against {!Fst_core.Config.engine_names}. *)
val get_engine : Spec.parsed -> string
