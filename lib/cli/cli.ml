open Fst_netlist
open Fst_core

let commands =
  [
    (Cmd_gen.spec, Cmd_gen.run);
    (Cmd_stats.spec, Cmd_stats.run);
    (Cmd_tpi.spec, Cmd_tpi.run);
    (Cmd_opt.spec, Cmd_opt.run);
    (Cmd_lint.spec, Cmd_lint.run);
    (Cmd_sca.spec, Cmd_sca.run);
    (Cmd_flow.spec, Cmd_flow.run);
    (Cmd_alt.spec, Cmd_alt.run);
    (Cmd_diag.spec, Cmd_diag.run);
    (Cmd_jsonlint.spec, Cmd_jsonlint.run);
    (Cmd_analyze.spec, Cmd_analyze.run);
    (Cmd_serve.spec, Cmd_serve.run);
    (Cmd_submit.spec, Cmd_submit.run);
  ]

let version = "1.0.0"

let usage () =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "fst — functional scan chain testing (DATE'98 reproduction)\n\n\
     usage: fst COMMAND [options]\n\ncommands:\n";
  List.iter
    (fun ((s : Spec.t), _) ->
      Printf.bprintf b "  %-10s %s\n" s.Spec.name s.Spec.summary)
    commands;
  Printf.bprintf b "\nrun fst COMMAND --help for the command's options.\n";
  Buffer.contents b

let main () =
  match Array.to_list Sys.argv with
  | _ :: name :: rest when name <> "" && name.[0] <> '-' -> (
    match
      List.find_opt (fun ((s : Spec.t), _) -> s.Spec.name = name) commands
    with
    | None ->
      Printf.eprintf "fst: unknown command %S\n\n%s" name (usage ());
      2
    | Some (spec, run) -> (
      (* Netlist errors escaping a deeper pass (TPI, generation) still
         exit with a one-line diagnostic instead of a backtrace. *)
      try run (Spec.parse spec rest) with
      | Spec.Usage_error m ->
        Printf.eprintf "fst %s: %s\n%s\n" spec.Spec.name m
          (Spec.usage_line spec);
        2
      | Flow.Preflight_failed diags ->
        List.iter
          (fun d -> prerr_endline (Fst_lint.Diagnostic.to_string d))
          diags;
        prerr_endline
          (Printf.sprintf "fst: preflight failed with %d error(s)"
             (List.length diags));
        1
      | Netfile.Parse_error { file; line; message } ->
        let where =
          match file with
          | Some f -> Printf.sprintf "%s:%d" f line
          | None -> Printf.sprintf "line %d" line
        in
        prerr_endline (Printf.sprintf "fst: %s: %s" where message);
        1
      | Circuit.Malformed message | Circuit.Combinational_cycle message ->
        prerr_endline ("fst: " ^ message);
        1
      | Unix.Unix_error (err, fn, arg) ->
        let what = if arg = "" then fn else fn ^ " " ^ arg in
        prerr_endline
          (Printf.sprintf "fst: %s: %s" what (Unix.error_message err));
        1))
  | _ :: arg :: _ when arg = "--version" || arg = "-version" ->
    print_endline version;
    0
  | _ :: arg :: _ when arg = "--help" || arg = "-help" || arg = "-h" ->
    print_string (usage ());
    0
  | _ ->
    print_string (usage ());
    2
