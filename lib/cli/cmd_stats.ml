open Fst_netlist

let spec =
  Spec.make ~name:"stats" ~summary:"Print circuit statistics"
    ~pos:Common.file_pos_required ()

let run p =
  let file = List.hd (Spec.positional p) in
  let circuit = Common.or_die (Common.read_circuit file) in
  Format.printf "%a@." Circuit.pp_stats circuit;
  Printf.printf "collapsed faults: %d\n"
    (Array.length
       (Fst_fault.Fault.collapse circuit (Fst_fault.Fault.universe circuit)));
  0
