type arg = { names : string list; docv : string option; doc : string }

type pos =
  | No_pos
  | Pos of { docv : string; doc : string; required : bool; all : bool }

type t = {
  name : string;
  summary : string;
  args : arg list;
  pos : pos;
  extra_help : string list;
}

let make ?(args = []) ?(pos = No_pos) ?(extra_help = []) ~name ~summary () =
  { name; summary; args; pos; extra_help }

let flag_arg names ~doc = { names; docv = None; doc }
let value_arg names ~docv ~doc = { names; docv = Some docv; doc }

exception Usage_error of string

let usage_error fmt = Printf.ksprintf (fun m -> raise (Usage_error m)) fmt

type parsed = {
  spec : t;
  values : (string, string list) Hashtbl.t;  (* canonical name -> values,
                                                 reverse arrival order *)
  flags : (string, int) Hashtbl.t;
  pos_args : string list;
}

let canonical a = List.hd a.names

let find_arg spec name =
  List.find_opt (fun a -> List.mem name a.names) spec.args

(* --- help text ---------------------------------------------------------- *)

let arg_label a =
  let names = String.concat ", " a.names in
  match a.docv with None -> names | Some v -> names ^ " " ^ v

let usage_line spec =
  let pos =
    match spec.pos with
    | No_pos -> ""
    | Pos { docv; required; all; _ } ->
      let one = if required then " " ^ docv else " [" ^ docv ^ "]" in
      if all then one ^ "..." else one
  in
  Printf.sprintf "usage: fst %s [options]%s" spec.name pos

(* Wrap [doc] to 78 columns with a hanging indent under the flag column. *)
let wrap ~indent text =
  let words = String.split_on_char ' ' text in
  let buf = Buffer.create 256 in
  let col = ref indent in
  List.iter
    (fun w ->
      if w <> "" then begin
        let wl = String.length w in
        if !col > indent && !col + 1 + wl > 78 then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make indent ' ');
          col := indent
        end
        else if !col > indent then begin
          Buffer.add_char buf ' ';
          incr col
        end;
        Buffer.add_string buf w;
        col := !col + wl
      end)
    words;
  Buffer.contents buf

let help spec =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "fst %s — %s\n\n%s\n" spec.name spec.summary
    (usage_line spec);
  (match spec.pos with
   | Pos { docv; doc; _ } when doc <> "" ->
     Printf.bprintf buf "\n  %-24s %s\n" docv (wrap ~indent:27 doc)
   | _ -> ());
  if spec.args <> [] then begin
    Buffer.add_string buf "\noptions:\n";
    List.iter
      (fun a ->
        let label = arg_label a in
        if String.length label <= 24 then
          Printf.bprintf buf "  %-24s %s\n" label (wrap ~indent:27 a.doc)
        else
          Printf.bprintf buf "  %s\n  %-24s %s\n" label ""
            (wrap ~indent:27 a.doc))
      spec.args
  end;
  List.iter (fun p -> Printf.bprintf buf "\n%s\n" p) spec.extra_help;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

let split_eq tok =
  match String.index_opt tok '=' with
  | Some i when String.length tok > 1 && tok.[0] = '-' ->
    Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | _ -> None

let parse spec argv =
  let values = Hashtbl.create 16 in
  let flags = Hashtbl.create 8 in
  let pos_args = ref [] in
  let add_value key v =
    Hashtbl.replace values key
      (v :: (Option.value ~default:[] (Hashtbl.find_opt values key)))
  in
  let add_pos v = pos_args := v :: !pos_args in
  let rec go = function
    | [] -> ()
    | "--help" :: _ | "-help" :: _ ->
      print_string (help spec);
      exit 0
    | "--" :: rest -> List.iter add_pos rest
    | tok :: rest when String.length tok > 1 && tok.[0] = '-' -> (
      let name, inline =
        match split_eq tok with
        | Some (n, v) -> (n, Some v)
        | None -> (tok, None)
      in
      match find_arg spec name with
      | None -> usage_error "unknown option %s (see fst %s --help)" tok spec.name
      | Some a -> (
        match (a.docv, inline) with
        | None, Some _ -> usage_error "%s takes no value" name
        | None, None ->
          Hashtbl.replace flags (canonical a)
            (1 + Option.value ~default:0 (Hashtbl.find_opt flags (canonical a)));
          go rest
        | Some _, Some v ->
          add_value (canonical a) v;
          go rest
        | Some docv, None -> (
          match rest with
          | v :: rest' ->
            add_value (canonical a) v;
            go rest'
          | [] -> usage_error "%s requires a value %s" name docv)))
    | tok :: rest ->
      add_pos tok;
      go rest
  in
  go argv;
  let pos_args = List.rev !pos_args in
  (match (spec.pos, pos_args) with
   | No_pos, p :: _ ->
     usage_error "unexpected argument %S (fst %s takes no positional \
                  arguments)" p spec.name
   | Pos { required = true; docv; _ }, [] ->
     usage_error "missing required argument %s" docv
   | Pos { all = false; docv; _ }, _ :: _ :: _ ->
     usage_error "at most one %s argument expected" docv
   | _ -> ());
  { spec; values; flags; pos_args }

(* --- getters ------------------------------------------------------------ *)

let resolve p name =
  match find_arg p.spec name with
  | Some a -> canonical a
  | None ->
    invalid_arg
      (Printf.sprintf "Spec.%s: %S is not in fst %s's spec" "get" name
         p.spec.name)

let flag p name = Hashtbl.mem p.flags (resolve p name)

let strings p name =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt p.values (resolve p name)))

let string_opt p name =
  match Hashtbl.find_opt p.values (resolve p name) with
  | Some (v :: _) -> Some v
  | _ -> None

let conv name of_string kind v =
  match of_string v with
  | Some x -> x
  | None -> usage_error "%s expects %s, got %S" name kind v

let int_opt p name =
  Option.map (conv name int_of_string_opt "an integer") (string_opt p name)

let int p name ~default = Option.value ~default (int_opt p name)

let float_opt p name =
  Option.map (conv name float_of_string_opt "a number") (string_opt p name)

let float p name ~default = Option.value ~default (float_opt p name)
let positional p = p.pos_args
