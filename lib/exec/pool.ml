let default_jobs () = Domain.recommended_domain_count ()

(* --- cooperative cancellation ------------------------------------------ *)

type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

type 'a outcome = Done of 'a | Cancelled

module Sink = Fst_obs.Sink
module Metrics = Fst_obs.Metrics

(* Per-worker accounting, folded into the shared registry once when the
   worker retires: cumulative busy / wall seconds per domain slot plus a
   derived busy fraction gauge. Only touched when the sink is live. *)
let retire_worker (obs : Sink.t) k ~busy ~wall =
  let m = obs.Sink.metrics in
  let b = Metrics.fcounter m (Printf.sprintf "pool.domain%d.busy_s" k) in
  let w = Metrics.fcounter m (Printf.sprintf "pool.domain%d.wall_s" k) in
  Metrics.Fcounter.add b busy;
  Metrics.Fcounter.add w wall;
  let bt = Metrics.Fcounter.value b and wt = Metrics.Fcounter.value w in
  Metrics.Gauge.set
    (Metrics.gauge m (Printf.sprintf "pool.domain%d.busy_frac" k))
    (if wt > 0.0 then bt /. wt else 0.0)

(* Claims [chunk] consecutive task indices at a time from a shared atomic
   cursor. Each slot of [results] is written by exactly one domain;
   [Domain.join] publishes those writes to the caller. [stop] is polled
   before every chunk claim (and between tasks on the sequential path), so
   a tripped deadline or a cancelled token drains the queue instead of
   running it to completion; tasks already claimed run to the end of their
   chunk. *)
let run_tasks ~obs ~label ~jobs ~chunk ~stop n (run_one : int -> unit) =
  if n > 0 then begin
    let live = obs.Sink.enabled in
    if jobs <= 1 then begin
      let t0 = if live then Clock.now () else 0.0 in
      let i = ref 0 in
      while !i < n && not (stop ()) do
        run_one !i;
        incr i
      done;
      if live then begin
        let dt = Clock.now () -. t0 in
        retire_worker obs 0 ~busy:dt ~wall:dt
      end
    end
    else begin
      let next = Atomic.make 0 in
      let chunks_c =
        if live then
          Some (Metrics.counter obs.Sink.metrics ("pool." ^ label ^ ".chunks"))
        else None
      in
      let chunk_h =
        if live then
          Some
            (Metrics.histogram obs.Sink.metrics ("pool." ^ label ^ ".chunk_s"))
        else None
      in
      let worker k =
        let wall0 = if live then Clock.now () else 0.0 in
        let busy = ref 0.0 in
        let rec loop () =
          if not (stop ()) then begin
            let lo = Atomic.fetch_and_add next chunk in
            if lo < n then begin
              let hi = min (lo + chunk) n - 1 in
              let t0 = if live then Clock.now () else 0.0 in
              let sp =
                match obs.Sink.trace with
                | Some tr when live ->
                  Some
                    ( tr,
                      Fst_obs.Trace.begin_span tr
                        ~name:(Printf.sprintf "%s[%d..%d]" label lo hi)
                        ~cat:"pool" )
                | _ -> None
              in
              for i = lo to hi do
                run_one i
              done;
              (match sp with
               | Some (tr, sp) -> ignore (Fst_obs.Trace.end_span tr sp)
               | None -> ());
              if live then begin
                let dt = Clock.now () -. t0 in
                busy := !busy +. dt;
                (match chunks_c with
                 | Some c -> Metrics.Counter.incr c
                 | None -> ());
                match chunk_h with
                | Some h -> Metrics.Histogram.observe h dt
                | None -> ()
              end;
              loop ()
            end
          end
        in
        loop ();
        if live then retire_worker obs k ~busy:!busy ~wall:(Clock.now () -. wall0)
      in
      let helpers =
        Array.init (min jobs n - 1) (fun i ->
            Domain.spawn (fun () -> worker (i + 1)))
      in
      worker 0;
      Array.iter Domain.join helpers
    end
  end

let never_stop () = false

let chunk_of ?chunk ~jobs n =
  match chunk with
  | Some c when c > 0 -> c
  | Some _ | None ->
    (* Small chunks keep the queue balanced when task costs vary; four
       chunks per domain is enough to amortize the atomic claim. *)
    if jobs <= 1 then n else max 1 (n / (jobs * 4))

let reraise_first n (slots : ('b, exn * Printexc.raw_backtrace) result option array) =
  for i = 0 to n - 1 do
    match slots.(i) with
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some (Ok _) | None -> ()
  done

let map_array ?(obs = Sink.null) ?(label = "map") ?chunk ~jobs f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 && not obs.Sink.enabled then Array.map f xs
  else begin
    let slots = Array.make n None in
    let run_one i =
      slots.(i) <-
        Some
          (match f xs.(i) with
           | y -> Ok y
           | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    run_tasks ~obs ~label ~jobs ~chunk:(chunk_of ?chunk ~jobs n)
      ~stop:never_stop n run_one;
    reraise_first n slots;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error _) | None -> assert false)
      slots
  end

let mapi_array ?obs ?label ?chunk ~jobs f xs =
  let indexed = Array.mapi (fun i x -> (i, x)) xs in
  map_array ?obs ?label ?chunk ~jobs (fun (i, x) -> f i x) indexed

let map_list ?obs ?label ?chunk ~jobs f xs =
  Array.to_list (map_array ?obs ?label ?chunk ~jobs f (Array.of_list xs))

let map_cancellable ?(obs = Sink.null) ?(label = "map") ?chunk ?token:tok
    ?(deadline = Clock.never) ~jobs f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  let tok = match tok with Some t -> t | None -> token () in
  let slots = Array.make n None in
  let run_one i =
    slots.(i) <-
      Some
        (match f xs.(i) with
         | y -> Ok y
         | exception e ->
           (* A failing task drains the queue: unclaimed work stays
              [Cancelled] and the first failure (in input order) is
              re-raised after the join. *)
           cancel tok;
           Error (e, Printexc.get_raw_backtrace ()))
  in
  let stop () = cancelled tok || Clock.expired deadline in
  run_tasks ~obs ~label ~jobs ~chunk:(chunk_of ?chunk ~jobs n) ~stop n run_one;
  reraise_first n slots;
  Array.map
    (function
      | Some (Ok y) -> Done y
      | None -> Cancelled
      | Some (Error _) -> assert false)
    slots
