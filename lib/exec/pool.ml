let default_jobs () = Domain.recommended_domain_count ()

(* --- cooperative cancellation ------------------------------------------ *)

type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

type 'a outcome = Done of 'a | Cancelled

module Sink = Fst_obs.Sink
module Metrics = Fst_obs.Metrics
module Timeline = Fst_obs.Timeline

(* Below this much estimated work (caller-scaled cost units; the fault
   simulator passes gate-evaluations), spawning domains costs more than
   the parallelism returns: fall back to in-caller execution. *)
let min_work = 200_000

(* Per-worker accounting, folded into the shared registry once when the
   worker retires: cumulative busy / wall seconds per domain slot plus a
   derived busy fraction gauge. Only touched when the sink is live. *)
let retire_worker (obs : Sink.t) k ~busy ~wall =
  let m = obs.Sink.metrics in
  let b = Metrics.fcounter m (Printf.sprintf "pool.domain%d.busy_s" k) in
  let w = Metrics.fcounter m (Printf.sprintf "pool.domain%d.wall_s" k) in
  Metrics.Fcounter.add b busy;
  Metrics.Fcounter.add w wall;
  let bt = Metrics.Fcounter.value b and wt = Metrics.Fcounter.value w in
  Metrics.Gauge.set
    (Metrics.gauge m (Printf.sprintf "pool.domain%d.busy_frac" k))
    (if wt > 0.0 then bt /. wt else 0.0)

(* Work-stealing task loop. The index space is split into one contiguous
   range per worker, each with its own atomic claim cursor: a worker
   claims [chunk] indices at a time from its own cursor (uncontended in
   the common case), and when its range runs dry it scans the other
   workers' cursors and steals chunks from whichever still has work. A
   cursor may overshoot its range end under concurrent steals; the claim
   is simply empty then, so overshoot is harmless. Each slot of [results]
   is written by exactly one domain; [Domain.join] publishes those writes
   to the caller. [stop] is polled before every claim (own or stolen, and
   between tasks on the sequential path), so a tripped deadline or a
   cancelled token drains the queue instead of running it to completion;
   tasks already claimed run to the end of their chunk. *)
let run_tasks ~obs ~label ~jobs ~chunk ~stop n
    (run_one : wid:int -> int -> unit) =
  if n > 0 then begin
    let live = obs.Sink.enabled in
    if jobs <= 1 then begin
      let t0 = if live then Clock.now () else 0.0 in
      let i = ref 0 in
      while !i < n && not (stop ()) do
        run_one ~wid:0 !i;
        incr i
      done;
      if live then begin
        let t1 = Clock.now () in
        let dt = t1 -. t0 in
        (match obs.Sink.timeline with
         | Some tl -> Timeline.record tl ~wid:0 ~label ~t0 ~t1 ~stolen:false
         | None -> ());
        retire_worker obs 0 ~busy:dt ~wall:dt
      end
    end
    else begin
      let w = jobs in
      let range_lo = Array.init (w + 1) (fun k -> k * n / w) in
      let cursor = Array.init w (fun k -> Atomic.make range_lo.(k)) in
      let chunks_c =
        if live then
          Some (Metrics.counter obs.Sink.metrics ("pool." ^ label ^ ".chunks"))
        else None
      in
      let steals_c =
        if live then
          Some (Metrics.counter obs.Sink.metrics ("pool." ^ label ^ ".steals"))
        else None
      in
      let chunk_h =
        if live then
          Some
            (Metrics.histogram obs.Sink.metrics ("pool." ^ label ^ ".chunk_s"))
        else None
      in
      let worker k =
        let wall0 = if live then Clock.now () else 0.0 in
        let busy = ref 0.0 in
        (* Claims one chunk from [victim]'s range; [None] when dry. *)
        let try_claim victim =
          let hi = range_lo.(victim + 1) in
          if Atomic.get cursor.(victim) >= hi then None
          else
            let lo = Atomic.fetch_and_add cursor.(victim) chunk in
            if lo < hi then Some (lo, min (lo + chunk) hi - 1) else None
        in
        let run_chunk ~stolen lo hi =
          let t0 = if live then Clock.now () else 0.0 in
          let sp =
            match obs.Sink.trace with
            | Some tr when live ->
              Some
                ( tr,
                  Fst_obs.Trace.begin_span tr
                    ~name:(Printf.sprintf "%s[%d..%d]" label lo hi)
                    ~cat:"pool" )
            | _ -> None
          in
          for i = lo to hi do
            run_one ~wid:k i
          done;
          (match sp with
           | Some (tr, sp) -> ignore (Fst_obs.Trace.end_span tr sp)
           | None -> ());
          if live then begin
            let t1 = Clock.now () in
            let dt = t1 -. t0 in
            busy := !busy +. dt;
            (match obs.Sink.timeline with
             | Some tl -> Timeline.record tl ~wid:k ~label ~t0 ~t1 ~stolen
             | None -> ());
            (match chunks_c with
             | Some c -> Metrics.Counter.incr c
             | None -> ());
            match chunk_h with
            | Some h -> Metrics.Histogram.observe h dt
            | None -> ()
          end
        in
        let rec loop () =
          if not (stop ()) then begin
            let claimed = ref false in
            let v = ref 0 in
            while (not !claimed) && !v < w do
              let victim = (k + !v) mod w in
              (match try_claim victim with
               | Some (lo, hi) ->
                 claimed := true;
                 let stolen = victim <> k in
                 if stolen then begin
                   match steals_c with
                   | Some c -> Metrics.Counter.incr c
                   | None -> ()
                 end;
                 run_chunk ~stolen lo hi
               | None -> ());
              incr v
            done;
            if !claimed then loop ()
          end
        in
        loop ();
        if live then retire_worker obs k ~busy:!busy ~wall:(Clock.now () -. wall0)
      in
      let helpers =
        Array.init (w - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
      in
      worker 0;
      Array.iter Domain.join helpers
    end
  end

let never_stop () = false

let chunk_of ?chunk ~jobs n =
  match chunk with
  | Some c when c > 0 -> c
  | Some _ | None ->
    (* Small chunks keep the queue balanced when task costs vary; four
       chunks per domain is enough to amortize the atomic claim. *)
    if jobs <= 1 then n else max 1 (n / (jobs * 4))

(* The effective worker count: never more than tasks, never more than
   hardware cores (extra domains only add minor-GC barrier thrash), and
   in-caller when the estimated total work is below the chunking
   overhead. *)
let effective_jobs ?work ~jobs n =
  let jobs = max 1 (min jobs (min n (default_jobs ()))) in
  match work with Some u when u < min_work -> 1 | Some _ | None -> jobs

let reraise_first n (slots : ('b, exn * Printexc.raw_backtrace) result option array) =
  for i = 0 to n - 1 do
    match slots.(i) with
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some (Ok _) | None -> ()
  done

let map_array_init ?(obs = Sink.null) ?(label = "map") ?chunk ?work ~jobs
    ~init f xs =
  let n = Array.length xs in
  let jobs = effective_jobs ?work ~jobs n in
  if jobs = 1 && not obs.Sink.enabled then begin
    if n = 0 then [||]
    else begin
      let ctx = init () in
      Array.map (f ctx) xs
    end
  end
  else begin
    let slots = Array.make n None in
    (* One context per domain slot, created on the worker that uses it
       (so domain-local scratch is allocated on the owning domain's
       heap); each slot is only ever touched by its own worker. *)
    let contexts = Array.make jobs None in
    let run_one ~wid i =
      let ctx =
        match contexts.(wid) with
        | Some c -> c
        | None ->
          let c = init () in
          contexts.(wid) <- Some c;
          c
      in
      slots.(i) <-
        Some
          (match f ctx xs.(i) with
           | y -> Ok y
           | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    run_tasks ~obs ~label ~jobs ~chunk:(chunk_of ?chunk ~jobs n)
      ~stop:never_stop n run_one;
    reraise_first n slots;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error _) | None -> assert false)
      slots
  end

let map_array ?obs ?label ?chunk ?work ~jobs f xs =
  map_array_init ?obs ?label ?chunk ?work ~jobs
    ~init:(fun () -> ())
    (fun () x -> f x)
    xs

let mapi_array ?obs ?label ?chunk ?work ~jobs f xs =
  let indexed = Array.mapi (fun i x -> (i, x)) xs in
  map_array ?obs ?label ?chunk ?work ~jobs (fun (i, x) -> f i x) indexed

let map_list ?obs ?label ?chunk ?work ~jobs f xs =
  Array.to_list (map_array ?obs ?label ?chunk ?work ~jobs f (Array.of_list xs))

exception Task_failed of int * exn

let () =
  Printexc.register_printer (function
    | Task_failed (i, e) ->
      Some (Printf.sprintf "Task_failed(%d, %s)" i (Printexc.to_string e))
    | _ -> None)

let map_cancellable ?(obs = Sink.null) ?(label = "map") ?chunk ?work
    ?token:tok ?(deadline = Clock.never) ~jobs f xs =
  let n = Array.length xs in
  let jobs = effective_jobs ?work ~jobs n in
  let tok = match tok with Some t -> t | None -> token () in
  let slots = Array.make n None in
  let run_one ~wid:_ i =
    slots.(i) <-
      Some
        (match f xs.(i) with
         | y -> Ok y
         | exception e ->
           (* A failing task drains the queue: unclaimed work stays
              [Cancelled] and the first failure (in input order) is
              re-raised after the join. *)
           cancel tok;
           Error (e, Printexc.get_raw_backtrace ()))
  in
  let stop () = cancelled tok || Clock.expired deadline in
  run_tasks ~obs ~label ~jobs ~chunk:(chunk_of ?chunk ~jobs n) ~stop n run_one;
  (* Wrapped in [Task_failed] so callers learn which input failed
     without string-matching backtraces; the original backtrace is
     preserved on the re-raise. *)
  for i = 0 to n - 1 do
    match slots.(i) with
    | Some (Error (e, bt)) ->
      Printexc.raise_with_backtrace (Task_failed (i, e)) bt
    | Some (Ok _) | None -> ()
  done;
  Array.map
    (function
      | Some (Ok y) -> Done y
      | None -> Cancelled
      | Some (Error _) -> assert false)
    slots

(* --- fault-isolated maps ------------------------------------------------ *)

(* Namespaced so [Ok]/[Cancelled] never shadow stdlib [Ok] or
   [outcome]'s [Cancelled] at use sites. *)
module Task = struct
  type 'a outcome =
    | Ok of 'a
    | Failed of exn * Printexc.raw_backtrace
    | Cancelled
end

let map_cancellable_isolated ?(obs = Sink.null) ?(label = "map") ?chunk
    ?work ?retry ?token:tok ?(deadline = Clock.never) ~jobs f xs =
  let n = Array.length xs in
  let jobs = effective_jobs ?work ~jobs n in
  let tok = match tok with Some t -> t | None -> token () in
  let policy = match retry with Some p -> p | None -> Retry.default in
  let live = obs.Sink.enabled in
  let retries_c =
    if live then
      Some (Metrics.counter obs.Sink.metrics ("pool." ^ label ^ ".retries"))
    else None
  in
  let quarantined_c =
    if live then
      Some
        (Metrics.counter obs.Sink.metrics ("pool." ^ label ^ ".quarantined"))
    else None
  in
  let slots = Array.make n None in
  let run_one ~wid:_ i =
    (* The chaos hook sits inside the retried thunk, so a one-shot
       injection is absorbed by the retry and only a plan that keeps
       firing produces a permanent failure. [Cancel] trips the shared
       token: the rest of the queue drains, already-claimed tasks (this
       one included) run to completion. *)
    let result, attempts =
      Retry.run_count ~policy (fun () ->
          (match Chaos.point Chaos.Pool_task with
           | `Cancel -> cancel tok
           | `Ok -> ());
          f xs.(i))
    in
    let retries = attempts - 1 in
    if retries > 0 then begin
      match retries_c with
      | Some c -> Metrics.Counter.add c retries
      | None -> ()
    end;
    (match result with
     | Result.Ok y ->
       slots.(i) <- Some (Task.Ok y);
       (* Rate-limited retry reporting: one summarizing event per task
          that needed retries, never one per attempt. *)
       if retries > 0 && live then
         Sink.event obs ~kind:"pool.task_retried"
           [
             ("label", Fst_obs.Json.String label);
             ("index", Fst_obs.Json.Int i);
             ("attempts", Fst_obs.Json.Int attempts);
             ("outcome", Fst_obs.Json.String "ok");
           ]
     | Result.Error (e, bt) ->
       (* Quarantine: the failure is recorded in the task's own slot and
          the queue keeps going — a poison task never drains its
          siblings. *)
       slots.(i) <- Some (Task.Failed (e, bt));
       (match quarantined_c with
        | Some c -> Metrics.Counter.incr c
        | None -> ());
       if live then
         Sink.event obs ~kind:"pool.task_quarantined"
           [
             ("label", Fst_obs.Json.String label);
             ("index", Fst_obs.Json.Int i);
             ("attempts", Fst_obs.Json.Int attempts);
             ("error", Fst_obs.Json.String (Printexc.to_string e));
           ])
  in
  let stop () = cancelled tok || Clock.expired deadline in
  run_tasks ~obs ~label ~jobs ~chunk:(chunk_of ?chunk ~jobs n) ~stop n run_one;
  Array.map (function Some o -> o | None -> Task.Cancelled) slots

let map_isolated ?obs ?label ?chunk ?work ?retry ~jobs f xs =
  map_cancellable_isolated ?obs ?label ?chunk ?work ?retry ~jobs f xs
