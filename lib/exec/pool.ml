let default_jobs () = Domain.recommended_domain_count ()

(* --- cooperative cancellation ------------------------------------------ *)

type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

type 'a outcome = Done of 'a | Cancelled

(* Claims [chunk] consecutive task indices at a time from a shared atomic
   cursor. Each slot of [results] is written by exactly one domain;
   [Domain.join] publishes those writes to the caller. [stop] is polled
   before every chunk claim (and between tasks on the sequential path), so
   a tripped deadline or a cancelled token drains the queue instead of
   running it to completion; tasks already claimed run to the end of their
   chunk. *)
let run_tasks ~jobs ~chunk ~stop n (run_one : int -> unit) =
  if n > 0 then begin
    if jobs <= 1 then begin
      let i = ref 0 in
      while !i < n && not (stop ()) do
        run_one !i;
        incr i
      done
    end
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          if not (stop ()) then begin
            let lo = Atomic.fetch_and_add next chunk in
            if lo < n then begin
              for i = lo to min (lo + chunk) n - 1 do
                run_one i
              done;
              loop ()
            end
          end
        in
        loop ()
      in
      let helpers =
        Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join helpers
    end
  end

let never_stop () = false

let chunk_of ?chunk ~jobs n =
  match chunk with
  | Some c when c > 0 -> c
  | Some _ | None ->
    (* Small chunks keep the queue balanced when task costs vary; four
       chunks per domain is enough to amortize the atomic claim. *)
    if jobs <= 1 then n else max 1 (n / (jobs * 4))

let reraise_first n (slots : ('b, exn * Printexc.raw_backtrace) result option array) =
  for i = 0 to n - 1 do
    match slots.(i) with
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some (Ok _) | None -> ()
  done

let map_array ?chunk ~jobs f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.map f xs
  else begin
    let slots = Array.make n None in
    let run_one i =
      slots.(i) <-
        Some
          (match f xs.(i) with
           | y -> Ok y
           | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    run_tasks ~jobs ~chunk:(chunk_of ?chunk ~jobs n) ~stop:never_stop n run_one;
    reraise_first n slots;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error _) | None -> assert false)
      slots
  end

let mapi_array ?chunk ~jobs f xs =
  let indexed = Array.mapi (fun i x -> (i, x)) xs in
  map_array ?chunk ~jobs (fun (i, x) -> f i x) indexed

let map_list ?chunk ~jobs f xs =
  Array.to_list (map_array ?chunk ~jobs f (Array.of_list xs))

let map_cancellable ?chunk ?token:tok ?(deadline = Clock.never) ~jobs f xs =
  let n = Array.length xs in
  let jobs = max 1 (min jobs n) in
  let tok = match tok with Some t -> t | None -> token () in
  let slots = Array.make n None in
  let run_one i =
    slots.(i) <-
      Some
        (match f xs.(i) with
         | y -> Ok y
         | exception e ->
           (* A failing task drains the queue: unclaimed work stays
              [Cancelled] and the first failure (in input order) is
              re-raised after the join. *)
           cancel tok;
           Error (e, Printexc.get_raw_backtrace ()))
  in
  let stop () = cancelled tok || Clock.expired deadline in
  run_tasks ~jobs ~chunk:(chunk_of ?chunk ~jobs n) ~stop n run_one;
  reraise_first n slots;
  Array.map
    (function
      | Some (Ok y) -> Done y
      | None -> Cancelled
      | Some (Error _) -> assert false)
    slots
