(* Bounded deterministic retry for transient failures.

   The policy is explicit and injectable end to end — attempt count,
   transient classifier, backoff schedule, and the sleep function itself
   — so tests drive retries with a fake clock and production gets a
   short capped exponential backoff. Classification is deliberately
   conservative: only failures that plausibly resolve on their own
   (injected chaos, OS-level I/O errors) are transient; everything else
   is a poison failure and surfaces immediately, because re-running a
   deterministic logic error just burns time. *)

type policy = {
  attempts : int;
  transient : exn -> bool;
  backoff : int -> float;
  sleep : float -> unit;
}

let default_transient = function
  | Chaos.Injected _ -> true
  | Sys_error _ -> true
  | Unix.Unix_error _ -> true
  | _ -> false

(* 1ms, 2ms, 4ms, ... capped at 50ms: enough to step over a transient
   I/O hiccup without stalling a drained pool worker for long. *)
let default_backoff k = Float.min 0.05 (0.001 *. (2.0 ** float_of_int (k - 1)))

let default =
  {
    attempts = 3;
    transient = default_transient;
    backoff = default_backoff;
    sleep = Unix.sleepf;
  }

let no_retry = { default with attempts = 1 }

let run_count ?(policy = default) f =
  let attempts = max 1 policy.attempts in
  let rec go k =
    match f () with
    | y -> (Ok y, k)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if k < attempts && policy.transient e then begin
        policy.sleep (policy.backoff k);
        go (k + 1)
      end
      else ((Error (e, bt) : (_, exn * Printexc.raw_backtrace) result), k)
  in
  go 1

let run ?policy f = fst (run_count ?policy f)
