(** Wall-clock budgets for the phases of a long-running flow.

    A budget is a single total wall-clock allowance split across the
    flow's phases as {e cumulative} deadlines: each phase must be finished
    by [start + total * cumulative_share(phase)]. A phase that finishes
    early automatically donates its slack to every later phase, and a
    phase that overruns eats into the later phases' windows — the total is
    what the operator asked for, not the per-phase split.

    The shares (classify 5%, step-2 ATPG 30%, step-2 fault simulation
    30%, step-3 grouped sequential ATPG 25%, final targeting 10%) mirror
    the paper's observed cost profile, where step 2 dominates. *)

type phase = Classify | Step2_atpg | Step2_fsim | Step3 | Finals

type t

(** The budget that never expires. *)
val unlimited : t

(** [of_seconds s] starts the clock now with a total allowance of [s]
    wall-clock seconds. *)
val of_seconds : float -> t

(** [cancellable ?seconds ()] starts a budget that can additionally be
    tripped from another thread with {!cancel}: [seconds] bounds the run
    like {!of_seconds} ([None] = unbounded until cancelled). This is how
    a long-running service cancels an in-flight job cooperatively — once
    cancelled, every subsequently captured deadline is already expired,
    so the flow winds down through exactly the budget-exhaustion path
    (partial results kept, denied work reported as aborted). *)
val cancellable : ?seconds:float -> unit -> t

(** [cancel b] trips a {!cancellable} budget immediately (no-op on plain
    budgets). Thread-safe; idempotent. *)
val cancel : t -> unit

(** [cancelled b] is true once {!cancel} has been called on [b]. *)
val cancelled : t -> bool

val is_limited : t -> bool

(** [deadline b phase] is the instant by which [phase] must be finished
    ({!Clock.never} for {!unlimited}). *)
val deadline : t -> phase -> Clock.deadline

(** [fault_deadline b phase s] is the instant [s] seconds from now,
    clamped to [phase]'s deadline — the per-fault allowance used by the
    ATPG drivers so one stuck target cannot overrun its phase. *)
val fault_deadline : t -> phase -> float -> Clock.deadline

(** [exhausted b] is true once the whole allowance is spent. *)
val exhausted : t -> bool

val phase_name : phase -> string
