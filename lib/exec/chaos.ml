(* Deterministic, seeded fault injection at named hook points.

   Injection is driven by an explicit plan: a list of (site, sequence
   number, action) triples. Every hook point belongs to one of a small
   fixed set of sites; each site keeps a private atomic hit counter, and
   a hook fires the planned action exactly when its site's counter
   reaches the planned sequence number. Because sites tick on the caller
   domain at deterministic program points (pool task bodies run their
   hook inside the task, engine entry points and checkpoint I/O run on
   the main domain), the same plan against the same workload injects at
   the same places every run.

   The whole harness hides behind a single [state option Atomic.t]:
   when no plan is installed, a hook is one atomic load and a compare —
   cheap enough to leave compiled into production paths. *)

type site = Pool_task | Engine | Ckpt_save | Ckpt_load
type action = Raise | Delay of float | Cancel
type injection = { site : site; at : int; action : action }
type plan = injection list

exception Injected of string

let n_sites = 4
let site_index = function
  | Pool_task -> 0
  | Engine -> 1
  | Ckpt_save -> 2
  | Ckpt_load -> 3

let site_name = function
  | Pool_task -> "pool-task"
  | Engine -> "engine"
  | Ckpt_save -> "ckpt-save"
  | Ckpt_load -> "ckpt-load"

let action_name = function
  | Raise -> "raise"
  | Delay d -> Printf.sprintf "delay:%g" d
  | Cancel -> "cancel"

(* Delays exist to shake out timing-dependent paths (deadline checks,
   heartbeats), not to slow test suites down; cap them hard. *)
let max_delay = 0.002

type state = {
  (* (site index, sequence number) -> action *)
  tbl : (int * int, action) Hashtbl.t;
  counters : int Atomic.t array;
}

let state : state option Atomic.t = Atomic.make None

let install plan =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun { site; at; action } ->
      Hashtbl.replace tbl (site_index site, at) action)
    plan;
  Atomic.set state
    (Some { tbl; counters = Array.init n_sites (fun _ -> Atomic.make 0) })

let clear () = Atomic.set state None
let active () = Atomic.get state <> None

let point site =
  match Atomic.get state with
  | None -> `Ok
  | Some st ->
    let k = site_index site in
    let at = Atomic.fetch_and_add st.counters.(k) 1 in
    (match Hashtbl.find_opt st.tbl (k, at) with
     | None -> `Ok
     | Some Raise ->
       raise (Injected (Printf.sprintf "%s#%d" (site_name site) at))
     | Some (Delay d) ->
       Unix.sleepf (Float.min (Float.max 0.0 d) max_delay);
       `Ok
     | Some Cancel -> `Cancel)

let is_injected = function Injected _ -> true | _ -> false

(* Counter snapshots ride inside flow checkpoints so a killed-and-resumed
   run replays the remainder of the plan from the same sequence numbers
   as the uninterrupted run would have. *)
let snapshot () =
  match Atomic.get state with
  | None -> [||]
  | Some st -> Array.map Atomic.get st.counters

let restore counters =
  match Atomic.get state with
  | None -> ()
  | Some st ->
    Array.iteri
      (fun i v -> if i < n_sites then Atomic.set st.counters.(i) v)
      counters

(* --- seeded plan generation -------------------------------------------- *)

(* splitmix64, inlined so the exec layer needs no dependency on the
   generator library. Deterministic across platforms for a given seed. *)
let splitmix st =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float st =
  (* 53 high bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (splitmix st) 11)
  *. (1.0 /. 9007199254740992.0)

let plan_of_seed ?(p = 0.02) ?(span = 200) seed =
  let st = ref (Int64.of_int seed) in
  let sites = [| Pool_task; Engine; Ckpt_save; Ckpt_load |] in
  let plan = ref [] in
  for at = 0 to span - 1 do
    Array.iter
      (fun site ->
        if unit_float st < p then begin
          let u = unit_float st in
          let action =
            if u < 0.6 then Raise
            else if u < 0.85 then Delay (unit_float st *. max_delay)
            else Cancel
          in
          plan := { site; at; action } :: !plan
        end)
      sites
  done;
  List.rev !plan

let pp_plan plan =
  String.concat ", "
    (List.map
       (fun { site; at; action } ->
         Printf.sprintf "%s#%d=%s" (site_name site) at (action_name action))
       plan)
