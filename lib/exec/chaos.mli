(** Deterministic, seeded fault injection for robustness testing.

    A chaos {e plan} is an explicit list of injections, each naming a
    {!site} (a class of hook points threaded through the execution
    layer), a sequence number [at] (which hit of that site fires), and
    an {!action}. Each site keeps a private atomic hit counter; a hook
    point calls {!point} and receives the planned action exactly when
    its site's counter reaches a planned sequence number. Against a
    deterministic workload the same plan therefore injects at the same
    program points every run — the substrate for qcheck properties over
    random plans, and plans being plain lists, QCheck shrinks a failing
    plan to a minimal set of injections for free.

    Off by default and near-zero-cost when disabled: with no plan
    installed, {!point} is a single atomic load and compare. The
    installed plan is global (one harness per process); tests that
    install a plan must {!clear} it afterwards. *)

(** Injection sites, i.e. classes of hook points:
    [Pool_task] fires inside each isolated pool task body (see
    {!Pool.map_isolated}); [Engine] at each fault-simulation engine
    entry call ({!Fst_fsim.Fsim.Engine}); [Ckpt_save] / [Ckpt_load]
    around checkpoint writes and reads. *)
type site = Pool_task | Engine | Ckpt_save | Ckpt_load

(** What a firing hook does: [Raise] raises {!Injected}; [Delay s]
    sleeps for [s] seconds (clamped to {!max_delay}); [Cancel] asks the
    surrounding machinery to trip its cancellation token — hook points
    without a token treat it as a no-op. *)
type action = Raise | Delay of float | Cancel

type injection = { site : site; at : int; action : action }
type plan = injection list

(** Raised by a [Raise] injection; the payload names the site and
    sequence number (e.g. ["engine#3"]). Classified transient by
    {!Retry}, so retries absorb one-shot injections and only repeated
    plans produce permanent failures. *)
exception Injected of string

(** [is_injected e] is true iff [e] is {!Injected}. *)
val is_injected : exn -> bool

(** Hard cap applied to every [Delay] action, in seconds. *)
val max_delay : float

(** [install plan] arms the harness with [plan] and resets every site
    counter to zero. Replaces any previously installed plan. *)
val install : plan -> unit

(** [clear ()] disarms the harness; subsequent {!point} calls are
    no-ops. *)
val clear : unit -> unit

(** [active ()] is true iff a plan is installed. *)
val active : unit -> bool

(** [point site] advances [site]'s hit counter and performs the planned
    action for that sequence number, if any: raises {!Injected} on
    [Raise], sleeps then returns [`Ok] on [Delay], and returns [`Cancel]
    on [Cancel] (the caller decides what cancellation means locally).
    Returns [`Ok] without side effects when no plan is installed or no
    injection matches. *)
val point : site -> [ `Ok | `Cancel ]

(** [snapshot ()] is the current per-site hit counters (empty when
    disarmed). Flows persist this inside checkpoints so a resumed run
    replays the remaining plan from the same sequence numbers. *)
val snapshot : unit -> int array

(** [restore counters] overwrites the installed plan's hit counters with
    a {!snapshot}. No-op when disarmed. *)
val restore : int array -> unit

(** [plan_of_seed ?p ?span seed] is a reproducible pseudo-random plan:
    for each site and each sequence number in [0, span), an injection
    is planned with probability [p] (default 0.02), choosing raise /
    delay / cancel at 60/25/15%. Same seed, same plan — used by the
    [--chaos SEED] CLI flag and the chaos smoke. *)
val plan_of_seed : ?p:float -> ?span:int -> int -> plan

(** [site_name s] is a stable lowercase name (["pool-task"], ["engine"],
    ["ckpt-save"], ["ckpt-load"]). *)
val site_name : site -> string

(** [pp_plan plan] renders a plan as ["site#at=action, ..."] for logs
    and counterexample printing. *)
val pp_plan : plan -> string
