type phase = Classify | Step2_atpg | Step2_fsim | Step3 | Finals

type t = { start : float; total : float option }

let unlimited = { start = 0.0; total = None }
let of_seconds s = { start = Clock.now (); total = Some (Float.max 0.0 s) }
let is_limited b = b.total <> None

(* Cumulative share of the total allowance by which each phase must be
   done; the last entry is 1.0 by construction so the flow deadline and
   the finals deadline coincide. *)
let cumulative = function
  | Classify -> 0.05
  | Step2_atpg -> 0.35
  | Step2_fsim -> 0.65
  | Step3 -> 0.90
  | Finals -> 1.0

let deadline b phase =
  match b.total with
  | None -> Clock.never
  | Some total -> Clock.at (b.start +. (total *. cumulative phase))

let fault_deadline b phase s = Clock.earliest (Clock.after s) (deadline b phase)
let exhausted b = Clock.expired (deadline b Finals)

let phase_name = function
  | Classify -> "classify"
  | Step2_atpg -> "step2-atpg"
  | Step2_fsim -> "step2-fsim"
  | Step3 -> "step3"
  | Finals -> "finals"
