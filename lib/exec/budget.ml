type phase = Classify | Step2_atpg | Step2_fsim | Step3 | Finals

(* [cap] is an absolute instant that overrides every phase deadline once
   set; [None] (the plain budgets) means the budget can never be
   cancelled externally. The cell is written by [cancel] on whatever
   thread asks for the cancellation and read on the flow's domains at
   every deadline capture, so it must be an [Atomic]. *)
type t = { start : float; total : float option; cap : float Atomic.t option }

let unlimited = { start = 0.0; total = None; cap = None }

let of_seconds s =
  { start = Clock.now (); total = Some (Float.max 0.0 s); cap = None }

let cancellable ?seconds () =
  {
    start = Clock.now ();
    total = Option.map (Float.max 0.0) seconds;
    cap = Some (Atomic.make infinity);
  }

let cancel t =
  match t.cap with
  | Some c -> Atomic.set c (Clock.now () -. 1.0)
  | None -> ()

let cancelled t =
  match t.cap with Some c -> Atomic.get c < infinity | None -> false

let is_limited b = b.total <> None || b.cap <> None

(* Cumulative share of the total allowance by which each phase must be
   done; the last entry is 1.0 by construction so the flow deadline and
   the finals deadline coincide. *)
let cumulative = function
  | Classify -> 0.05
  | Step2_atpg -> 0.35
  | Step2_fsim -> 0.65
  | Step3 -> 0.90
  | Finals -> 1.0

let deadline b phase =
  let base =
    match b.total with
    | None -> Clock.never
    | Some total -> Clock.at (b.start +. (total *. cumulative phase))
  in
  match b.cap with
  | None -> base
  | Some c -> Clock.earliest base (Clock.at (Atomic.get c))

let fault_deadline b phase s = Clock.earliest (Clock.after s) (deadline b phase)
let exhausted b = Clock.expired (deadline b Finals)

let phase_name = function
  | Classify -> "classify"
  | Step2_atpg -> "step2-atpg"
  | Step2_fsim -> "step2-fsim"
  | Step3 -> "step3"
  | Finals -> "finals"
