(** A stdlib-only domain pool (OCaml 5 [Domain], no domainslib).

    Work items are claimed in chunks from a shared atomic cursor and run on
    up to [jobs] domains (the calling domain participates, so [jobs = 2]
    spawns one helper). Results are merged back in input order regardless of
    completion order, so output is deterministic for any [jobs] value. If
    any task raises, every claimed task still runs to completion and the
    exception of the lowest-index failing task is re-raised (with its
    backtrace) on the calling domain.

    [jobs <= 1] runs everything sequentially on the calling domain — no
    domains are spawned and behavior is exactly that of [Array.map]. Tasks
    must not share mutable state unless they synchronize themselves; the
    intended use is read-only shared inputs (e.g. an immutable circuit) with
    task-private machine state. *)

(** [default_jobs ()] is [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map_array ~jobs f xs] is [Array.map f xs], computed on up to [jobs]
    domains. [chunk] overrides the work-queue claim granularity (default:
    about four chunks per domain). *)
val map_array : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi_array] is {!map_array} with the input index. *)
val mapi_array : ?chunk:int -> jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_list ~jobs f xs] is [List.map f xs] via {!map_array}. *)
val map_list : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
