(** A stdlib-only work-stealing domain pool (OCaml 5 [Domain], no
    domainslib).

    The task index space is split into one contiguous range per worker,
    each with a private atomic claim cursor: workers claim chunks from
    their own range (uncontended) and steal chunks from other workers'
    ranges once theirs runs dry, so a domain that finishes early keeps
    the others' backlog moving instead of idling. Results are merged back
    in input order regardless of completion order, so output is
    deterministic for any [jobs] value. If any task raises, the exception
    of the lowest-index failing task is re-raised (with its backtrace) on
    the calling domain.

    [jobs <= 1] runs everything sequentially on the calling domain — no
    domains are spawned and behavior is exactly that of [Array.map]. The
    same in-caller fallback triggers when the caller's total estimated
    [work] is below {!min_work}: spawning domains for a few milliseconds
    of simulation costs more than it returns. [jobs] above
    {!default_jobs} (the hardware core count) is clamped down to it:
    OCaml 5 domains beyond the core count do no extra work and only
    multiply the stop-the-world minor-GC barrier cost, so [jobs:8] on a
    single-core machine runs in-caller rather than 5x slower. Tasks must not share
    mutable state unless they synchronize themselves; the intended use is
    read-only shared inputs (e.g. an immutable circuit) with task-private
    machine state. *)

(** [default_jobs ()] is [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** Minimum estimated total [work] (caller-scaled cost units — the fault
    simulator passes gate-evaluations) below which every map runs
    in-caller regardless of [jobs]. *)
val min_work : int

(** [effective_jobs ?work ~jobs n] is the worker count a map with [n]
    tasks actually uses after the pool's clamps: never more than [n],
    never more than {!default_jobs} (hardware cores), [1] when the
    estimated [work] is below {!min_work}. Exposed so benchmarks and
    reports can record requested vs effective parallelism — on a
    single-core machine [jobs:8] runs with one worker, and domain slots
    [1..7] never exist (the [busy_frac [1,0,...,0]] shape). *)
val effective_jobs : ?work:int -> jobs:int -> int -> int

(** {1 Cooperative cancellation}

    A {!token} is a shared stop flag. Workers poll it before every chunk
    claim, so cancelling drains the remaining queue promptly while letting
    already-claimed tasks finish — no task is ever interrupted midway, and
    the results that exist are trustworthy. *)

type token

val token : unit -> token
val cancel : token -> unit
val cancelled : token -> bool

(** Outcome of one task under cancellation: either its result, or
    [Cancelled] because the queue was drained (token tripped, deadline
    expired, or an earlier task failed) before the task was claimed. *)
type 'a outcome = Done of 'a | Cancelled

(** {1 Observability}

    Every map takes an optional [obs] sink ({!Fst_obs.Sink}, default
    {!Fst_obs.Sink.null}) and a [label] naming the parallel region.
    With a live sink the pool records, per domain slot [k], cumulative
    [pool.domain<k>.busy_s] / [wall_s] float counters and a derived
    [pool.domain<k>.busy_frac] gauge; per region it counts
    [pool.<label>.chunks] and [pool.<label>.steals] (chunks claimed from
    another worker's range) and fills a [pool.<label>.chunk_s] duration
    histogram; and when the sink carries a trace buffer, each claimed
    chunk becomes a span on its worker's tid. When the sink carries a
    {!Fst_obs.Timeline}, every executed chunk is additionally recorded
    as a [{wid; label; t0; t1; stolen}] segment (the jobs ≤ 1 path
    records one segment for the whole run), which is what feeds
    per-domain utilization and idle-gap analysis in [run.json]. With
    the null sink the only cost is one branch per chunk claim. *)

(** [map_array ~jobs f xs] is [Array.map f xs], computed on up to [jobs]
    domains. [chunk] overrides the work-queue claim granularity (default:
    about four chunks per domain); [work] is the caller's estimate of the
    total cost (see {!min_work}). If any task raises, every claimed task
    still runs to completion and the lowest-index failure is re-raised. *)
val map_array :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** [map_array_init ~jobs ~init f xs] is {!map_array} with a per-domain
    context: [init ()] runs at most once on each participating domain
    (lazily, on first claim) and its result is passed to every task that
    domain runs. Use it to reuse expensive domain-local scratch — e.g. a
    fault simulator's good-trace buffers — across the tasks of one
    domain without sharing mutable state between domains. *)
val map_array_init :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  jobs:int ->
  init:(unit -> 'c) ->
  ('c -> 'a -> 'b) ->
  'a array ->
  'b array

(** [mapi_array] is {!map_array} with the input index. *)
val mapi_array :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  jobs:int ->
  (int -> 'a -> 'b) ->
  'a array ->
  'b array

(** [map_list ~jobs f xs] is [List.map f xs] via {!map_array}. *)
val map_list :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** Raised by {!map_cancellable} in place of a task's own exception: the
    [int] is the input index of the lowest-index failing task, so callers
    can attribute the failure without string-matching backtraces. The
    original exception is the payload and its backtrace is preserved on
    the re-raise. *)
exception Task_failed of int * exn

(** [map_cancellable ~jobs f xs] is {!map_array} with cooperative
    cancellation: the queue stops being claimed once [token] is cancelled
    or [deadline] expires, and every unclaimed slot comes back
    [Cancelled], in input order. A raising task cancels the token (so the
    rest of the queue drains) and the lowest-index recorded failure is
    re-raised after the join, wrapped in {!Task_failed} with its input
    index. With [jobs <= 1] the stop condition is checked between
    consecutive tasks, so the [Done] prefix is exactly the tasks that ran
    — fully deterministic. *)
val map_cancellable :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  ?token:token ->
  ?deadline:Clock.deadline ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array

(** {1 Fault-isolated maps}

    The isolated variants never let one task's failure touch its
    siblings: instead of the fail-fast drain-and-re-raise contract, each
    task gets its own {!task_outcome} slot. Failures classified
    transient by the {!Retry} policy are retried in place (bounded,
    deterministic backoff through the policy's injectable sleep);
    failures that survive the attempt budget are {e quarantined} — the
    exception and backtrace land in the task's own [Failed] slot and the
    queue keeps going. Results merge in input order, so [jobs <= 1] with
    no failures is bit-identical to {!map_array}.

    With a live sink, each region additionally counts
    [pool.<label>.retries] (total extra attempts) and
    [pool.<label>.quarantined] (tasks that exhausted the budget), and
    emits one summarizing event per retried or quarantined task
    ([pool.task_retried] / [pool.task_quarantined]) — never one per
    attempt, so retry storms cannot flood the event log.

    Each task body also runs a {!Chaos.point}[ Pool_task] hook (inside
    the retried thunk, so one-shot injections are absorbed by the
    retry); a [Cancel] action trips the map's own token. *)

(** Per-task outcome of an isolated map, in input order: the task's
    result, its final failure after retries (quarantined), or
    [Cancelled] because the queue was drained before it was claimed.
    Namespaced in a submodule so the constructors never shadow stdlib
    [Ok] or {!outcome}'s [Cancelled]. *)
module Task : sig
  type 'a outcome =
    | Ok of 'a
    | Failed of exn * Printexc.raw_backtrace
    | Cancelled
end

(** [map_isolated ~jobs f xs] maps with per-task fault isolation and no
    external cancellation: slots are only [Cancelled] if a chaos [Cancel]
    injection trips the internal token. [retry] defaults to
    {!Retry.default}. *)
val map_isolated :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  ?retry:Retry.policy ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b Task.outcome array

(** [map_cancellable_isolated] is {!map_isolated} with the cooperative
    cancellation of {!map_cancellable}: unclaimed slots come back
    [Cancelled] once [token] trips or [deadline] expires, but a failing
    task is quarantined in its own slot instead of draining the queue. *)
val map_cancellable_isolated :
  ?obs:Fst_obs.Sink.t ->
  ?label:string ->
  ?chunk:int ->
  ?work:int ->
  ?retry:Retry.policy ->
  ?token:token ->
  ?deadline:Clock.deadline ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b Task.outcome array
