(** Bounded, deterministic retry for transient failures.

    Wraps a thunk with a retry {!policy}: failures the policy classifies
    as {e transient} are retried up to [attempts] total attempts with a
    backoff sleep between them; the first non-transient ({e poison})
    failure — or transient failure past the attempt budget — comes back
    as [Error] with its backtrace, never re-raised behind the caller's
    back. The sleep function is part of the policy, so tests inject a
    fake clock and stay wall-clock free. *)

type policy = {
  attempts : int;  (** total attempts, [>= 1] (1 = no retry) *)
  transient : exn -> bool;  (** retry this failure? *)
  backoff : int -> float;
      (** seconds to sleep after failing attempt [k] (1-based) *)
  sleep : float -> unit;  (** injectable; [Unix.sleepf] in production *)
}

(** Transient: {!Chaos.Injected}, [Sys_error], [Unix.Unix_error] —
    failures that plausibly resolve on their own. Everything else
    (logic errors) is poison: retrying a deterministic failure only
    burns time. *)
val default_transient : exn -> bool

(** Capped exponential: 1ms, 2ms, 4ms, ... at most 50ms. *)
val default_backoff : int -> float

(** 3 attempts, {!default_transient}, {!default_backoff},
    [Unix.sleepf]. *)
val default : policy

(** {!default} with [attempts = 1]: classify-and-capture only. *)
val no_retry : policy

(** [run ?policy f] runs [f] under the policy (default {!default}). *)
val run :
  ?policy:policy ->
  (unit -> 'a) ->
  ('a, exn * Printexc.raw_backtrace) result

(** [run_count] is {!run} paired with the number of attempts made —
    callers use [attempts - 1] as the retry count for metrics. *)
val run_count :
  ?policy:policy ->
  (unit -> 'a) ->
  ('a, exn * Printexc.raw_backtrace) result * int
