(** Wall-clock time and deadlines for long-running work.

    Every deadline in the code base goes through this module instead of
    [Sys.time ()]: process CPU time accrues across all running domains, so
    a CPU-time deadline silently tightens as [jobs] grows. Wall clock is
    what an operator's budget means.

    A [deadline] is an absolute instant; {!never} compares later than every
    instant, so unlimited work needs no special-casing at check sites. *)

(** [now ()] is the current wall-clock time in seconds. Monotonic for the
    purposes of budget checks (large backwards system-clock jumps can only
    make deadlines more generous, never fire them early and lose work). *)
val now : unit -> float

type deadline

(** The deadline that never expires. *)
val never : deadline

(** [after s] is the instant [s] seconds from now. *)
val after : float -> deadline

(** [at t] is the absolute instant [t] (a {!now} value). *)
val at : float -> deadline

(** [expired d] is true once [now () > d]. [expired never] is always
    false. *)
val expired : deadline -> bool

(** [earliest a b] is whichever deadline fires first. *)
val earliest : deadline -> deadline -> deadline

(** [remaining d] is the seconds left until [d] (negative once expired,
    [infinity] for {!never}). *)
val remaining : deadline -> float

val is_never : deadline -> bool
