let now () = Unix.gettimeofday ()

type deadline = float

let never = infinity
let after s = now () +. s
let at t = t
let expired d = now () > d
let earliest a b = Float.min a b
let remaining d = d -. now ()
let is_never d = d = infinity
