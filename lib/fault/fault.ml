open Fst_logic
open Fst_netlist

type site = Stem of int | Branch of { node : int; pin : int }
type t = { site : site; stuck : bool }

let equal a b =
  a.stuck = b.stuck
  &&
  match a.site, b.site with
  | Stem m, Stem n -> m = n
  | Branch a, Branch b -> a.node = b.node && a.pin = b.pin
  | Stem _, Branch _ | Branch _, Stem _ -> false

let site_key = function
  | Stem n -> (0, n, 0)
  | Branch { node; pin } -> (1, node, pin)

let compare a b =
  match Stdlib.compare (site_key a.site) (site_key b.site) with
  | 0 -> Bool.compare a.stuck b.stuck
  | c -> c

let hash f = Hashtbl.hash (site_key f.site, f.stuck)

let site_net (c : Circuit.t) f =
  match f.site with
  | Stem n -> n
  | Branch { node; pin } -> (Circuit.fanins c node).(pin)

let observers (c : Circuit.t) f =
  match f.site with
  | Stem n -> Array.to_list c.Circuit.fanout.(n)
  | Branch { node; _ } -> [ node ]

let to_string c f =
  let value = if f.stuck then 1 else 0 in
  match f.site with
  | Stem n -> Printf.sprintf "%s s-a-%d" (Circuit.net_name c n) value
  | Branch { node; pin } ->
    Printf.sprintf "%s.%d(<-%s) s-a-%d" (Circuit.net_name c node) pin
      (Circuit.net_name c (site_net c f))
      value

let pp c ppf f = Fmt.string ppf (to_string c f)

let universe (c : Circuit.t) =
  let acc = ref [] in
  let n = Circuit.num_nets c in
  (* Branch faults, enumerated per consumer pin, high ids first so the final
     list is ordered. *)
  for i = n - 1 downto 0 do
    let fi = Circuit.fanins c i in
    for pin = Array.length fi - 1 downto 0 do
      let src = fi.(pin) in
      if Array.length c.Circuit.fanout.(src) > 1 then begin
        acc := { site = Branch { node = i; pin }; stuck = true } :: !acc;
        acc := { site = Branch { node = i; pin }; stuck = false } :: !acc
      end
    done
  done;
  for i = n - 1 downto 0 do
    acc := { site = Stem i; stuck = true } :: !acc;
    acc := { site = Stem i; stuck = false } :: !acc
  done;
  Array.of_list !acc

module Union_find = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

  let rec find u i =
    if u.parent.(i) = i then i
    else begin
      let r = find u u.parent.(i) in
      u.parent.(i) <- r;
      r
    end

  let union u a b =
    let ra = find u a and rb = find u b in
    if ra <> rb then
      if u.rank.(ra) < u.rank.(rb) then u.parent.(ra) <- rb
      else if u.rank.(ra) > u.rank.(rb) then u.parent.(rb) <- ra
      else begin
        u.parent.(rb) <- ra;
        u.rank.(ra) <- u.rank.(ra) + 1
      end
end

(* The fault on a fanin pin: the stem fault of the source when the source
   has a single consumer, otherwise the branch fault on that pin. *)
let pin_fault (c : Circuit.t) ~node ~pin ~stuck =
  let src = (Circuit.fanins c node).(pin) in
  if Array.length c.Circuit.fanout.(src) > 1 then
    { site = Branch { node; pin }; stuck }
  else { site = Stem src; stuck }

(* Structural equivalences: a controlling value at a gate input is
   indistinguishable from the corresponding output fault; inverters,
   buffers and flip-flops propagate both faults. *)
let equivalences (c : Circuit.t) =
  let pairs = ref [] in
  let add a b = pairs := (a, b) :: !pairs in
  let n = Circuit.num_nets c in
  for i = 0 to n - 1 do
    match Circuit.node c i with
    | Circuit.Input | Circuit.Const _ -> ()
    | Circuit.Dff _ ->
      add (pin_fault c ~node:i ~pin:0 ~stuck:false) { site = Stem i; stuck = false };
      add (pin_fault c ~node:i ~pin:0 ~stuck:true) { site = Stem i; stuck = true }
    | Circuit.Gate (g, fi) -> (
      match g with
      | Gate.Not | Gate.Buf ->
        let invert = Gate.inverting g in
        let out_for v = if invert then not v else v in
        add (pin_fault c ~node:i ~pin:0 ~stuck:false)
          { site = Stem i; stuck = out_for false };
        add (pin_fault c ~node:i ~pin:0 ~stuck:true)
          { site = Stem i; stuck = out_for true }
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        let ctrl =
          match Gate.controlling g with
          | Some V3.Zero -> false
          | Some V3.One -> true
          | Some V3.X | None -> assert false
        in
        let out =
          match Gate.controlled_output g with
          | V3.Zero -> false
          | V3.One -> true
          | V3.X -> assert false
        in
        Array.iteri
          (fun pin _ ->
            add (pin_fault c ~node:i ~pin ~stuck:ctrl)
              { site = Stem i; stuck = out })
          fi
      | Gate.Xor | Gate.Xnor -> ())
  done;
  !pairs

let collapse_classes (c : Circuit.t) faults =
  let nf = Array.length faults in
  let index = Hashtbl.create (2 * nf) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) faults;
  let uf = Union_find.create nf in
  List.iter
    (fun (a, b) ->
      match Hashtbl.find_opt index a, Hashtbl.find_opt index b with
      | Some ia, Some ib -> Union_find.union uf ia ib
      | _, _ -> ())
    (equivalences c);
  (* Representative = the class member lowest in [compare] order, so the
     choice is deterministic under permutations of the input. For
     [universe] input (sorted by [compare]) this coincides with the lowest
     original index. *)
  let best = Array.make nf (-1) in
  Array.iteri
    (fun i f ->
      let r = Union_find.find uf i in
      if best.(r) < 0 || compare f faults.(best.(r)) < 0 then best.(r) <- i)
    faults;
  let reps = ref [] in
  let rep_index_of = Array.make nf (-1) in
  let count = ref 0 in
  for i = 0 to nf - 1 do
    let r = Union_find.find uf i in
    if best.(r) = i then begin
      reps := faults.(i) :: !reps;
      rep_index_of.(r) <- !count;
      incr count
    end
  done;
  let class_of = Array.init nf (fun i -> rep_index_of.(Union_find.find uf i)) in
  (Array.of_list (List.rev !reps), class_of)

let collapse c faults = fst (collapse_classes c faults)

(* Static fanout cones.

   The seed of a fault's influence is the stem net for a stem fault and the
   faulted consumer node (whose output net shares the node's id) for a
   branch fault: a branch override is only visible through that node's
   evaluation. Everything reachable from the seed through [Circuit.fanout]
   — crossing flip-flops, which re-emit divergence on the next cycle — is
   the complete set of nets the faulty machine can ever differ on. *)

let cone_seed f =
  match f.site with Stem n -> n | Branch { node; _ } -> node

let seed = cone_seed

let cone (c : Circuit.t) f =
  let seen = Array.make (Circuit.num_nets c) false in
  let seed = cone_seed f in
  let q = Queue.create () in
  seen.(seed) <- true;
  Queue.add seed q;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    acc := i :: !acc;
    Array.iter
      (fun j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.add j q
        end)
      c.Circuit.fanout.(i)
  done;
  let a = Array.of_list !acc in
  Array.sort Stdlib.compare a;
  a

let cone_sizes ?cap (c : Circuit.t) (faults : t array) =
  let seen = Array.make (Circuit.num_nets c) false in
  let cache = Hashtbl.create 64 in
  let size_of seed =
    (* Reuse one [seen] array across seeds: undo the marks afterwards. *)
    let touched = ref [] in
    let stack = ref [] in
    let push i =
      if not seen.(i) then begin
        seen.(i) <- true;
        touched := i :: !touched;
        stack := i :: !stack
      end
    in
    push seed;
    let count = ref 0 in
    (try
       let continue = ref true in
       while !continue do
         match !stack with
         | [] -> continue := false
         | i :: rest ->
           stack := rest;
           incr count;
           (match cap with Some k when !count > k -> raise Exit | _ -> ());
           Array.iter push c.Circuit.fanout.(i)
       done
     with Exit -> stack := []);
    List.iter (fun i -> seen.(i) <- false) !touched;
    !count
  in
  Array.map
    (fun f ->
      let seed = cone_seed f in
      match Hashtbl.find_opt cache seed with
      | Some s -> s
      | None ->
        let s = size_of seed in
        Hashtbl.add cache seed s;
        s)
    faults
