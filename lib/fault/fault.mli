(** Single stuck-at faults.

    A fault site is either a {e stem} (the output net of a driver) or a
    {e branch} (one fanin pin of one consumer node). Branch sites are only
    meaningful on nets with fanout greater than one; on fanout-one nets the
    branch fault is identical to the stem fault and is not enumerated. *)

open Fst_netlist

type site =
  | Stem of int  (** net id *)
  | Branch of { node : int; pin : int }
      (** fanin pin [pin] of node [node] *)

type t = { site : site; stuck : bool }  (** stuck at 1 when [stuck] *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [site_net c f] is the net carrying the faulted signal (the source net of
    a branch site, the net itself for a stem). *)
val site_net : Circuit.t -> t -> int

(** [observers c f] is the list of node ids whose input is directly altered
    by [f]: every consumer of the net for a stem, the single consumer pin's
    node for a branch. *)
val observers : Circuit.t -> t -> int list

val pp : Circuit.t -> t Fmt.t
val to_string : Circuit.t -> t -> string

(** [pin_fault c ~node ~pin ~stuck] is the fault on a fanin pin: the branch
    fault on that pin when the source net has fanout > 1, otherwise the
    stem fault of the source net (the two are the same fault). *)
val pin_fault : Circuit.t -> node:int -> pin:int -> stuck:bool -> t

(** [universe c] enumerates the full uncollapsed fault list: two stem faults
    per net plus two branch faults per fanin pin whose source net has
    fanout > 1. The order is deterministic and coincides with {!compare}
    order (stems ascending, then branches ascending). *)
val universe : Circuit.t -> t array

(** [collapse c faults] partitions [faults] into structural equivalence
    classes (gate-input-to-output equivalences through and/or/nand/nor/
    not/buf, chained through fanout-free regions) and returns one
    representative per class, preserving the input order of
    representatives. *)
val collapse : Circuit.t -> t array -> t array

(** [collapse_classes c faults] is the underlying partition: for each fault
    its representative's index in the returned representative array.

    Invariant: the representative of each class is its lowest member in
    {!compare} order, independent of the order of [faults] — two calls
    over permutations of the same fault set pick the same representatives.
    Representatives are emitted in the input order of their positions; for
    {!universe} input (already sorted by {!compare}) they are therefore
    sorted. *)
val collapse_classes : Circuit.t -> t array -> t array * int array

(** [seed f] is the net id at which the fault's influence enters the
    circuit: the stem net, or the faulted consumer node for a branch
    fault. The compiled simulation kernels map it through their net→slot
    permutation to clip evaluation to the fault's cone. *)
val seed : t -> int

(** [cone c f] is the static fanout cone of [f]: every net reachable through
    [Circuit.fanout] (crossing flip-flops) from the fault's seed — the stem
    net, or the faulted consumer node for a branch fault — seed included,
    sorted ascending. Nets outside the cone can never diverge from the
    fault-free machine under [f]; this is the soundness envelope of the
    event-driven fault-simulation back-end and the cost model behind
    automatic engine selection. *)
val cone : Circuit.t -> t -> int array

(** [cone_sizes ?cap c faults] is [Array.length (cone c f)] per fault,
    computed with a per-seed cache (faults sharing a seed share the BFS).
    With [~cap] the traversal stops as soon as the cone exceeds [cap]
    nets and reports [cap + 1] — cheap when only a threshold comparison
    is needed. *)
val cone_sizes : ?cap:int -> Circuit.t -> t array -> int array
