module Json = Fst_obs.Json

let version = 1
let id = Printf.sprintf "fst-serve/%d" version

type addr = Unix_sock of string | Tcp of int

let addr_to_string = function
  | Unix_sock p -> p
  | Tcp p -> Printf.sprintf "127.0.0.1:%d" p

let addr_of_spec ~socket ~port =
  match (socket, port) with
  | Some p, None -> Ok (Unix_sock p)
  | None, Some p ->
    if p > 0 && p < 65536 then Ok (Tcp p)
    else Error (Printf.sprintf "port %d out of range" p)
  | Some _, Some _ -> Error "--socket and --port conflict; pick one"
  | None, None -> Error "pass --socket PATH or --port N"

type job_kind = Flow | Lint | Sca

let job_kind_to_string = function Flow -> "flow" | Lint -> "lint" | Sca -> "sca"

let job_kind_of_string = function
  | "flow" -> Some Flow
  | "lint" -> Some Lint
  | "sca" -> Some Sca
  | _ -> None

type submit = {
  kind : job_kind;
  netlist : string;
  name : string;
  chains : int;
  config : Json.t;
  wait : bool;
  tenant : string;
}

type request =
  | Submit of submit
  | Status of string
  | Cancel of string
  | Result of string
  | Stats
  | Ping
  | Shutdown

let commands =
  [
    ( "submit",
      "run a job: {netlist, name?, chains?, kind? (flow|lint|sca), config? \
       (Config JSON), wait? (default true), tenant?}; replies ack, then \
       (waiting) streamed event/heartbeat frames and the final result" );
    ("status", "{job}: current state and queue position");
    ("cancel", "{job}: drop a queued job, or cancel a running one \
                cooperatively through its budget");
    ("result", "{job}: block until the job finishes, then reply its result");
    ("stats", "cache hits/misses/entries and queue/job counters");
    ("ping", "liveness probe; replies pong with the protocol id");
    ("shutdown", "stop accepting work, finish running jobs, exit");
  ]

(* --- encoding ---------------------------------------------------------- *)

let submit_to_json s =
  Json.Obj
    [
      ("v", Json.Int version);
      ("cmd", Json.String "submit");
      ("kind", Json.String (job_kind_to_string s.kind));
      ("netlist", Json.String s.netlist);
      ("name", Json.String s.name);
      ("chains", Json.Int s.chains);
      ("config", s.config);
      ("wait", Json.Bool s.wait);
      ("tenant", Json.String s.tenant);
    ]

let job_req cmd job =
  Json.Obj
    [ ("v", Json.Int version); ("cmd", Json.String cmd);
      ("job", Json.String job) ]

let bare_req cmd =
  Json.Obj [ ("v", Json.Int version); ("cmd", Json.String cmd) ]

let request_to_json = function
  | Submit s -> submit_to_json s
  | Status j -> job_req "status" j
  | Cancel j -> job_req "cancel" j
  | Result j -> job_req "result" j
  | Stats -> bare_req "stats"
  | Ping -> bare_req "ping"
  | Shutdown -> bare_req "shutdown"

(* --- decoding ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let opt_string j k ~default =
  match Json.member k j with
  | None -> Ok default
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S expects a string" k)

let opt_int j k ~default =
  match Json.member k j with
  | None -> Ok default
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "%S expects an integer" k)

let opt_bool j k ~default =
  match Json.member k j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "%S expects a boolean" k)

let req_job j =
  match Json.member "job" j with
  | Some (Json.String s) -> Ok s
  | _ -> Error "\"job\" (string) required"

let submit_of_json j =
  let* kind_s = opt_string j "kind" ~default:"flow" in
  let* kind =
    match job_kind_of_string kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown job kind %S" kind_s)
  in
  let* netlist =
    match Json.member "netlist" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "\"netlist\" (string) required"
  in
  let* name = opt_string j "name" ~default:"netlist" in
  let* chains = opt_int j "chains" ~default:1 in
  let config =
    match Json.member "config" j with Some c -> c | None -> Json.Obj []
  in
  let* wait = opt_bool j "wait" ~default:true in
  let* tenant = opt_string j "tenant" ~default:"anon" in
  Ok (Submit { kind; netlist; name; chains; config; wait; tenant })

let request_of_json j =
  let* v =
    match Json.member "v" j with
    | Some (Json.Int v) -> Ok v
    | _ -> Error "\"v\" (protocol version) required"
  in
  if v <> version then
    Error (Printf.sprintf "protocol version %d unsupported (this is %s)" v id)
  else
    let* cmd =
      match Json.member "cmd" j with
      | Some (Json.String c) -> Ok c
      | _ -> Error "\"cmd\" (string) required"
    in
    if not (List.mem_assoc cmd commands) then
      Error
        (Printf.sprintf "unknown cmd %S (expected one of: %s)" cmd
           (String.concat ", " (List.map fst commands)))
    else
      match cmd with
      | "submit" -> submit_of_json j
      | "status" -> Result.map (fun j -> Status j) (req_job j)
      | "cancel" -> Result.map (fun j -> Cancel j) (req_job j)
      | "result" -> Result.map (fun j -> Result j) (req_job j)
      | "stats" -> Ok Stats
      | "ping" -> Ok Ping
      | "shutdown" -> Ok Shutdown
      | _ -> assert false (* the commands table gate above is exhaustive *)

(* --- responses --------------------------------------------------------- *)

type state = Queued | Running | Done | Failed | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let ack ~job ~queued =
  Json.Obj
    [ ("kind", Json.String "ack"); ("job", Json.String job);
      ("queued", Json.Int queued) ]

let event_frame ~job ~line =
  Printf.sprintf "{\"kind\":\"event\",\"job\":%s,\"event\":%s}"
    (Json.to_string (Json.String job))
    line

let heartbeat ~job ~state ~elapsed_s =
  Json.Obj
    [
      ("kind", Json.String "heartbeat");
      ("job", Json.String job);
      ("state", Json.String (state_to_string state));
      ("elapsed_s", Json.Float elapsed_s);
    ]

let result ~job ~job_kind ~cached ~elapsed_s ~payload =
  Json.Obj
    [
      ("kind", Json.String "result");
      ("job", Json.String job);
      ("job_kind", Json.String (job_kind_to_string job_kind));
      ("cached", Json.Bool cached);
      ("elapsed_s", Json.Float elapsed_s);
      ("payload", payload);
    ]

let status ~job ~state ~position =
  Json.Obj
    ([
       ("kind", Json.String "status");
       ("job", Json.String job);
       ("state", Json.String (state_to_string state));
     ]
    @ match position with None -> [] | Some p -> [ ("position", Json.Int p) ])

let error ?job message =
  Json.Obj
    (("kind", Json.String "error")
    :: (match job with None -> [] | Some j -> [ ("job", Json.String j) ])
    @ [ ("message", Json.String message) ])

let pong () =
  Json.Obj
    [ ("kind", Json.String "pong"); ("protocol", Json.String id);
      ("version", Json.Int version) ]

let bye () = Json.Obj [ ("kind", Json.String "bye") ]
