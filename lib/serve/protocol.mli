(** The versioned JSONL wire protocol of [fst serve].

    One JSON object per line in both directions. Requests carry
    [{"v": 1, "cmd": ...}]; the server answers every request with at
    least one response object carrying a ["kind"] tag, and a waiting
    [submit] additionally streams [event] / [heartbeat] frames between
    the [ack] and the final [result].

    The {!commands} table is the single source of truth for what the
    protocol accepts: {!request_of_json} rejects any [cmd] not listed
    there, and the [fst serve]/[fst submit] [--help] text renders the
    same table — the CLI documentation and the dispatcher cannot
    drift. *)

(** Protocol identifier, ["fst-serve/1"]. The integer {!version} is what
    requests carry as ["v"]. *)
val id : string

val version : int

(** Where the daemon listens: a Unix-domain socket path, or TCP on
    localhost. *)
type addr = Unix_sock of string | Tcp of int

val addr_to_string : addr -> string

(** [addr_of_spec ~socket ~port] resolves the CLI's [--socket]/[--port]
    pair (exactly one must be given). *)
val addr_of_spec :
  socket:string option -> port:int option -> (addr, string) result

(** What a submitted job runs: the full flow, the static analyzer, or
    the netlist/scan-DFT linter. Each caches its own artifact kind. *)
type job_kind = Flow | Lint | Sca

val job_kind_to_string : job_kind -> string
val job_kind_of_string : string -> job_kind option

type submit = {
  kind : job_kind;
  netlist : string;  (** netlist text, ISCAS'89-like syntax *)
  name : string;  (** circuit name for reports *)
  chains : int;  (** scan chains to insert *)
  config : Fst_obs.Json.t;
      (** semantic flow configuration ({!Fst_core.Config.of_json});
          [Obj []] means all defaults *)
  wait : bool;  (** stream events and the final result on this
                    connection ([true]), or return just the [ack] and
                    poll with [status]/[result] ([false]) *)
  tenant : string;  (** fair-share scheduling bucket *)
}

type request =
  | Submit of submit
  | Status of string  (** job id *)
  | Cancel of string
  | Result of string  (** block until the job finishes, then reply *)
  | Stats
  | Ping
  | Shutdown

(** [(cmd, doc)] rows, one per accepted request. *)
val commands : (string * string) list

val request_to_json : request -> Fst_obs.Json.t

(** Validates ["v"] and ["cmd"] against {!version} / {!commands}. *)
val request_of_json : Fst_obs.Json.t -> (request, string) result

(** Job lifecycle as reported by [status] responses. *)
type state = Queued | Running | Done | Failed | Cancelled

val state_to_string : state -> string

(** {2 Response builders} — the server's side of the wire. Every frame
    carries a ["kind"] tag; clients dispatch on it. *)

val ack : job:string -> queued:int -> Fst_obs.Json.t

val event_frame : job:string -> line:string -> string
(** [event_frame ~job ~line] wraps an already-serialized event line
    (from {!Fst_obs.Events.to_callback}) into an [event] frame {e as a
    string}, avoiding a parse/re-print of the inner object. *)

val heartbeat : job:string -> state:state -> elapsed_s:float -> Fst_obs.Json.t

val result :
  job:string ->
  job_kind:job_kind ->
  cached:bool ->
  elapsed_s:float ->
  payload:Fst_obs.Json.t ->
  Fst_obs.Json.t

val status :
  job:string -> state:state -> position:int option -> Fst_obs.Json.t

val error : ?job:string -> string -> Fst_obs.Json.t
val pong : unit -> Fst_obs.Json.t
val bye : unit -> Fst_obs.Json.t
