module Json = Fst_obs.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  let domain, sockaddr =
    match addr with
    | Protocol.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Protocol.Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd sockaddr;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  output_string t.oc (Json.to_string (Protocol.request_to_json req));
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception (End_of_file | Sys_error _) ->
    Error "connection closed by server"

let recv t =
  match recv_line t with
  | Error _ as e -> e
  | Ok line -> (
    match Json.of_string line with
    | j -> Ok j
    | exception Json.Parse_error e ->
      Error (Printf.sprintf "bad frame from server (%s): %s" e line))

let request t req =
  send t req;
  recv t

let frame_kind j =
  match Json.member "kind" j with Some (Json.String k) -> k | _ -> ""

let str j k = match Json.member k j with Some (Json.String s) -> s | _ -> ""

let num j k =
  match Json.member k j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.0

type outcome = {
  job : string;
  cached : bool;
  elapsed_s : float;
  payload : Json.t;
  events : string list;
  heartbeats : int;
}

let submit ?(on_frame = fun _ -> ()) t (s : Protocol.submit) =
  let ( let* ) = Result.bind in
  send t (Protocol.Submit s);
  let* ack = recv t in
  match frame_kind ack with
  | "error" -> Error (str ack "message")
  | "ack" ->
    let job = str ack "job" in
    if not s.Protocol.wait then
      Ok
        { job; cached = false; elapsed_s = 0.0; payload = Json.Obj [];
          events = []; heartbeats = 0 }
    else
      let rec drain events heartbeats =
        let* line = recv_line t in
        on_frame line;
        let* j =
          match Json.of_string line with
          | j -> Ok j
          | exception Json.Parse_error e ->
            Error (Printf.sprintf "bad frame from server (%s): %s" e line)
        in
        match frame_kind j with
        | "event" ->
          let ev =
            match Json.member "event" j with
            | Some inner -> Json.to_string inner
            | None -> line
          in
          drain (ev :: events) heartbeats
        | "heartbeat" -> drain events (heartbeats + 1)
        | "result" ->
          Ok
            {
              job = str j "job";
              cached =
                (match Json.member "cached" j with
                 | Some (Json.Bool b) -> b
                 | _ -> false);
              elapsed_s = num j "elapsed_s";
              payload =
                (match Json.member "payload" j with
                 | Some p -> p
                 | None -> Json.Obj []);
              events = List.rev events;
              heartbeats;
            }
        | "error" -> Error (str j "message")
        | other ->
          Error (Printf.sprintf "unexpected %S frame during submit" other)
      in
      drain [] 0
  | other -> Error (Printf.sprintf "expected ack, got %S frame" other)
