module Json = Fst_obs.Json

type entry = { value : Json.t; mutable used : int }

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  dir : string option;
  max_entries : int;
  mutable tick : int;  (* LRU clock: bumped on every hit and insert *)
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
}

let create ?dir ?(max_entries = 512) () =
  (match dir with
   | Some d when not (Sys.file_exists d) -> (
     try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
   | _ -> ());
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    dir;
    max_entries = max 1 max_entries;
    tick = 0;
    hits = 0;
    misses = 0;
    inserts = 0;
    evictions = 0;
  }

let netlist_hash circuit =
  Digest.to_hex (Digest.string (Fst_netlist.Netfile.to_string circuit))

let key ~kind ~netlist ~chains ~config_fp =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s\n%s\n%d\n%s" kind netlist chains config_fp))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let disk_path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

(* Evict the least-recently-used entries until the map fits. O(n) scan
   per eviction; the map is small (hundreds of reports). *)
let evict_to_fit t =
  while Hashtbl.length t.table > t.max_entries do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, used) when used <= e.used -> acc
          | _ -> Some (k, e.used))
        t.table None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
    | None -> ()
  done

let read_disk path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match Json.of_string text with
     | j -> Some j
     | exception Json.Parse_error _ -> None)

let write_disk path v =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Json.to_channel oc v);
  Sys.rename tmp path

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
        t.tick <- t.tick + 1;
        e.used <- t.tick;
        t.hits <- t.hits + 1;
        Some e.value
      | None -> (
        (* Memory miss: the disk copy (when a directory is attached)
           still counts as a hit — that is the whole point of
           persistence across restarts. *)
        match Option.map read_disk (disk_path t k) with
        | Some (Some v) ->
          t.tick <- t.tick + 1;
          Hashtbl.replace t.table k { value = v; used = t.tick };
          evict_to_fit t;
          t.hits <- t.hits + 1;
          Some v
        | _ ->
          t.misses <- t.misses + 1;
          None))

let add t k v =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      Hashtbl.replace t.table k { value = v; used = t.tick };
      t.inserts <- t.inserts + 1;
      evict_to_fit t;
      match disk_path t k with
      | Some path -> ( try write_disk path v with Sys_error _ -> ())
      | None -> ())

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.table;
        hits = t.hits;
        misses = t.misses;
        inserts = t.inserts;
        evictions = t.evictions;
      })

let stats_to_json s =
  Json.Obj
    [
      ("entries", Json.Int s.entries);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("inserts", Json.Int s.inserts);
      ("evictions", Json.Int s.evictions);
    ]
