(** Content-addressed artifact cache for the flow service.

    Artifacts (whole flow reports, lint reports, sca proof sets — any
    JSON value) are stored under a key derived from {e content}, never
    from identity: the MD5 of the submitted circuit's canonical netlist
    rendering, the scan-chain count, the {!Fst_core.Config.fingerprint}
    of the semantic configuration, and the artifact kind. Two users
    submitting the same circuit with configs that differ only in
    engine/jobs/sink/budget knobs hash to the same key, so the second
    submit is served without re-running anything; any semantic config
    edit or any netlist edit (beyond comments/whitespace, which the
    canonical rendering strips) changes the key.

    The cache is an in-memory LRU map, optionally backed by a directory:
    with [dir], every insert is also written to
    [<dir>/<key>.json] (atomic tmp+rename), and a memory miss falls
    back to disk before being counted a miss — a restarted daemon keeps
    its warm set. All operations are thread-safe. *)

type t

type stats = {
  entries : int;  (** currently resident in memory *)
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
}

(** [create ?dir ?max_entries ()] — [max_entries] (default 512) bounds
    the in-memory map; the least-recently-used entry is evicted first
    (disk copies, when [dir] is given, are never evicted). *)
val create : ?dir:string -> ?max_entries:int -> unit -> t

(** [netlist_hash circuit] is the MD5 hex of the circuit's canonical
    {!Fst_netlist.Netfile.to_string} rendering — comments, whitespace
    and definition order do not affect it. *)
val netlist_hash : Fst_netlist.Circuit.t -> string

(** [key ~kind ~netlist ~chains ~config_fp] builds the content address;
    [netlist] is a {!netlist_hash}, [config_fp] a
    {!Fst_core.Config.fingerprint} (or ["-"] for kinds that ignore the
    flow configuration, e.g. lint). *)
val key : kind:string -> netlist:string -> chains:int -> config_fp:string -> string

val find : t -> string -> Fst_obs.Json.t option
val add : t -> string -> Fst_obs.Json.t -> unit
val stats : t -> stats
val stats_to_json : stats -> Fst_obs.Json.t
