(** Minimal blocking client for the [fst serve] protocol — what
    [fst submit] and the service benchmark are built on. *)

type t

(** [connect addr] opens one protocol connection. @raise Unix.Unix_error
    when nothing listens there. *)
val connect : Protocol.addr -> t

val close : t -> unit

(** [request t req] sends one request and returns the next response
    frame (skipping nothing) — for [status]/[cancel]/[stats]/[ping]/
    [shutdown], whose answer is a single frame. *)
val request : t -> Protocol.request -> (Fst_obs.Json.t, string) result

(** What a waiting submit produced. [events] are the streamed inner
    event lines in arrival order (serialized JSON, one per event);
    [heartbeats] counts heartbeat frames. *)
type outcome = {
  job : string;
  cached : bool;
  elapsed_s : float;
  payload : Fst_obs.Json.t;
  events : string list;
  heartbeats : int;
}

(** [submit t s] drives a full submit exchange: sends the request, reads
    the [ack], then (when [s.wait]) consumes [event]/[heartbeat] frames
    — forwarding each raw frame line to [on_frame] as it arrives — until
    the final [result] or [error]. With [s.wait = false] it returns
    after the [ack] with an empty payload and the job id. *)
val submit :
  ?on_frame:(string -> unit) ->
  t ->
  Protocol.submit ->
  (outcome, string) result
