(** The [fst serve] daemon: a multi-tenant batch flow service.

    One process listens on a Unix-domain or localhost-TCP socket
    speaking the {!Protocol} JSONL protocol. Submitted jobs are queued
    {e fair-share}: tenants take strict turns (round-robin over tenants
    with pending work), so one user bulk-submitting a thousand circuits
    cannot starve another's single job. [workers] worker threads drain
    the queue; each job runs the existing flow machinery — the Domain
    pool underneath honors the job's (capped) [jobs] knob — under a
    {e cancellable} per-job wall-clock budget
    ({!Fst_exec.Budget.cancellable}), so [cancel] on a running job winds
    it down cooperatively through the ordinary budget-exhaustion path
    and still produces a partial report.

    Results come from the content-addressed {!Cache} whenever the
    submitted netlist + semantic config have been seen before; only
    clean, complete runs (no budget exhaustion, no quarantined or
    aborted faults, not cancelled) are inserted, so a cache hit is
    always bit-identical to what a fresh full run would report.

    A waiting submit streams the job's flow events (phase boundaries,
    checkpoints, abort records — the {!Fst_obs.Sink} event channel) plus
    rate-limited heartbeats back over its connection. *)

type t

(** [create ~addr ()] builds a server (not yet listening).

    [workers] (default 1) is the number of jobs executed concurrently —
    each job additionally parallelizes internally via its [jobs] knob,
    which is clamped to [jobs_cap] (default
    {!Fst_exec.Pool.default_jobs}[ ()]). [job_budget] caps every job's
    wall-clock budget in seconds (a client asking for more, or for no
    budget at all, gets this cap). [hb_interval] (default 1s) paces the
    heartbeat frames of waiting submits. [log], when given, receives
    one server-side event per job transition ([job_submitted],
    [job_started], [job_done], [cache_hit], ...) — the daemon's own
    observability channel, reusing the flow's event-log machinery. *)
val create :
  ?workers:int ->
  ?jobs_cap:int ->
  ?job_budget:float ->
  ?cache:Cache.t ->
  ?hb_interval:float ->
  ?log:Fst_obs.Events.t ->
  addr:Protocol.addr ->
  unit ->
  t

(** [run t] binds, listens, and serves until a [shutdown] request (or
    {!shutdown}) arrives; running jobs finish first. Returns after the
    listener and every worker have stopped. Installs a [SIGPIPE] ignore
    handler (a client hanging up mid-stream must not kill the daemon). *)
val run : t -> unit

(** [start t] is {!run} on a fresh thread (for tests and benchmarks
    embedding the daemon in-process). *)
val start : t -> Thread.t

(** Programmatic {!Protocol.Shutdown}: stop accepting, drain, return. *)
val shutdown : t -> unit

val cache : t -> Cache.t
