module Json = Fst_obs.Json
module Events = Fst_obs.Events
module Config = Fst_core.Config
module Flow = Fst_core.Flow
module Budget = Fst_exec.Budget
module Clock = Fst_exec.Clock
module Netfile = Fst_netlist.Netfile
module Circuit = Fst_netlist.Circuit
module Scan = Fst_tpi.Scan
module Tpi = Fst_tpi.Tpi

(* --- connections ------------------------------------------------------- *)

type conn = {
  oc : out_channel;
  wlock : Mutex.t;  (* frames from reader, worker and heartbeat threads
                       interleave on this socket *)
  mutable alive : bool;
}

let send_line conn line =
  Mutex.lock conn.wlock;
  (if conn.alive then
     try
       output_string conn.oc line;
       output_char conn.oc '\n';
       flush conn.oc
     with Sys_error _ | Unix.Unix_error _ -> conn.alive <- false);
  Mutex.unlock conn.wlock

let send conn json = send_line conn (Json.to_string json)

(* --- jobs -------------------------------------------------------------- *)

type job = {
  id : string;
  submit : Protocol.submit;
  mutable state : Protocol.state;
  mutable response : Json.t option;  (* the final frame, once finished *)
  mutable budget : Budget.t option;  (* set while running; cancellable *)
  mutable cancel_requested : bool;
  mutable subscriber : conn option;  (* streams events when [wait] *)
  mutable started_at : float;
}

type t = {
  addr : Protocol.addr;
  workers : int;
  jobs_cap : int;
  job_budget : float option;
  served_cache : Cache.t;
  hb_interval : float;
  log : Events.t option;
  lock : Mutex.t;
  wake : Condition.t;  (* new work, or shutdown *)
  done_c : Condition.t;  (* some job reached a terminal state *)
  jobs : (string, job) Hashtbl.t;
  tenants : (string, job Queue.t) Hashtbl.t;
  (* Fair share: tenants take strict turns. [rr] holds every tenant ever
     seen, in first-submit order; the scheduler rotates it one step per
     dequeue, so a tenant with one job waits behind at most one job per
     other active tenant, however deep anyone's queue is. *)
  mutable rr : string list;
  mutable next_id : int;
  mutable submitted : int;
  mutable completed : int;
  mutable running : int;
  mutable stop : bool;
}

let create ?(workers = 1) ?jobs_cap ?job_budget ?cache ?(hb_interval = 1.0)
    ?log ~addr () =
  {
    addr;
    workers = max 1 workers;
    jobs_cap =
      (match jobs_cap with
       | Some j -> max 1 j
       | None -> Fst_exec.Pool.default_jobs ());
    job_budget;
    served_cache = (match cache with Some c -> c | None -> Cache.create ());
    hb_interval = Float.max 0.05 hb_interval;
    log;
    lock = Mutex.create ();
    wake = Condition.create ();
    done_c = Condition.create ();
    jobs = Hashtbl.create 64;
    tenants = Hashtbl.create 8;
    rr = [];
    next_id = 0;
    submitted = 0;
    completed = 0;
    running = 0;
    stop = false;
  }

let cache t = t.served_cache

let log_event t kind fields =
  match t.log with
  | None -> ()
  | Some log -> Events.emit log ~kind fields

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- scheduling -------------------------------------------------------- *)

let queued_count t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.tenants 0

(* One rotation step per probe: the head tenant moves to the back whether
   or not it had work, so service order is independent of queue depths. *)
let pick_job t =
  let n = List.length t.rr in
  let rec go i =
    if i >= n then None
    else
      match t.rr with
      | [] -> None
      | tenant :: rest -> (
        t.rr <- rest @ [ tenant ];
        match Hashtbl.find_opt t.tenants tenant with
        | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
        | _ -> go (i + 1))
  in
  go 0

let queue_position t job =
  match Hashtbl.find_opt t.tenants job.submit.Protocol.tenant with
  | None -> None
  | Some q ->
    let pos = ref None and i = ref 0 in
    Queue.iter
      (fun j ->
        if j.id = job.id && !pos = None then pos := Some !i;
        incr i)
      q;
    !pos

(* --- job execution ----------------------------------------------------- *)

let insert_chains circuit chains =
  let scanned, config =
    Tpi.insert ~options:{ Tpi.default_options with Tpi.chains } circuit
  in
  match Scan.verify_shift scanned config with
  | Ok () -> Ok (scanned, config)
  | Error errs ->
    Error
      (String.concat "; "
         (List.map (fun e -> Scan.shift_error_message scanned e) errs))

type outcome = Succeeded | Errored

let job_failure exn =
  match exn with
  | Failure m -> m
  | Netfile.Parse_error { line; message; _ } ->
    Printf.sprintf "netlist parse error, line %d: %s" line message
  | Circuit.Malformed m -> "malformed circuit: " ^ m
  | Circuit.Combinational_cycle n -> "combinational cycle through " ^ n
  | Flow.Preflight_failed diags ->
    Printf.sprintf "preflight failed: %s"
      (String.concat "; "
         (List.map Fst_lint.Diagnostic.to_string diags))
  | e -> Printexc.to_string e

(* Effective budget: the tighter of what the client asked for and the
   server-wide per-job cap. Always cancellable, so [cancel] can trip it. *)
let job_budget_seconds t (cfg : Config.t) =
  match (cfg.Config.time_budget, t.job_budget) with
  | Some a, Some b -> Some (Float.min a b)
  | Some a, None -> Some a
  | None, Some b -> Some b
  | None, None -> None

let run_flow t job sink (cfg : Config.t) scanned scancfg =
  let budget = Budget.cancellable ?seconds:(job_budget_seconds t cfg) () in
  locked t (fun () -> job.budget <- Some budget);
  let cfg =
    cfg
    |> Config.with_jobs (min (max 1 cfg.Config.jobs) t.jobs_cap)
    |> Config.with_sink sink
  in
  let res = Flow.run ~config:cfg ~budget scanned scancfg in
  let report = Fst_report.Flow_report.of_result res in
  let clean =
    (not (Flow.budget_exhausted res.Flow.aborts))
    && res.Flow.aborts.Flow.aborted_faults = 0
    && res.Flow.aborts.Flow.failed_faults = 0
    && not job.cancel_requested
  in
  (Fst_report.Flow_report.to_json report, clean)

let run_lint scanned scancfg =
  let report = Fst_lint.Lint.run ~config:scancfg ~dynamic:true scanned in
  (Fst_lint.Lint.to_json report, true)

let run_sca scanned (scancfg : Scan.config) =
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let view =
    Fst_netlist.View.scan_mode scanned
      ~constraints:scancfg.Scan.constraints ()
  in
  let a = Fst_sca.Sca.analyze view ~faults in
  (Fst_sca.Sca.to_json a, true)

(* Runs on a worker thread. Parses, consults the cache, executes on a
   miss, caches clean results, and builds the final response frame. *)
let execute t job =
  let s = job.submit in
  let chains = max 1 s.Protocol.chains in
  match
    let circuit = Netfile.parse_string ~name:s.Protocol.name s.Protocol.netlist in
    let cfg =
      match Config.of_json s.Protocol.config with
      | Ok c -> c
      | Error e -> failwith e
    in
    (circuit, cfg)
  with
  | exception exn -> (Protocol.error ~job:job.id (job_failure exn), Errored)
  | circuit, cfg -> (
    let kind_s = Protocol.job_kind_to_string s.Protocol.kind in
    let config_fp =
      match s.Protocol.kind with
      | Protocol.Flow -> Config.fingerprint cfg
      | Protocol.Lint | Protocol.Sca -> "-"
    in
    let key =
      Cache.key ~kind:kind_s
        ~netlist:(Cache.netlist_hash circuit)
        ~chains ~config_fp
    in
    match Cache.find t.served_cache key with
    | Some payload ->
      log_event t "cache_hit" [ ("job", Json.String job.id); ("key", Json.String key) ];
      let elapsed_s = Clock.now () -. job.started_at in
      ( Protocol.result ~job:job.id ~job_kind:s.Protocol.kind ~cached:true
          ~elapsed_s ~payload,
        Succeeded )
    | None -> (
      match
        match insert_chains circuit chains with
        | Error e -> failwith e
        | Ok (scanned, scancfg) -> (
          match s.Protocol.kind with
          | Protocol.Lint -> run_lint scanned scancfg
          | Protocol.Sca -> run_sca scanned scancfg
          | Protocol.Flow ->
            let sink =
              match job.subscriber with
              | Some conn when s.Protocol.wait ->
                Fst_obs.Sink.create
                  ~events:
                    (Events.to_callback (fun line ->
                         send_line conn
                           (Protocol.event_frame ~job:job.id ~line)))
                  ()
              | _ -> Fst_obs.Sink.null
            in
            run_flow t job sink cfg scanned scancfg)
      with
      | exception exn -> (Protocol.error ~job:job.id (job_failure exn), Errored)
      | payload, clean ->
        if clean && not job.cancel_requested then
          Cache.add t.served_cache key payload;
        let elapsed_s = Clock.now () -. job.started_at in
        ( Protocol.result ~job:job.id ~job_kind:s.Protocol.kind ~cached:false
            ~elapsed_s ~payload,
          Succeeded )))

let finish t job response terminal =
  let subscriber =
    locked t (fun () ->
        job.response <- Some response;
        job.state <- terminal;
        job.budget <- None;
        t.completed <- t.completed + 1;
        t.running <- t.running - 1;
        Condition.broadcast t.done_c;
        job.subscriber)
  in
  log_event t "job_done"
    [
      ("job", Json.String job.id);
      ("state", Json.String (Protocol.state_to_string job.state));
    ];
  match subscriber with
  | Some conn when job.submit.Protocol.wait -> send conn response
  | _ -> ()

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec await () =
    match pick_job t with
    | Some job -> Some job
    | None ->
      if t.stop then None
      else begin
        Condition.wait t.wake t.lock;
        await ()
      end
  in
  match await () with
  | None -> Mutex.unlock t.lock
  | Some job ->
    if job.cancel_requested || job.state <> Protocol.Queued then begin
      (* Cancelled while queued: terminal state was already set by the
         cancel handler; just account and notify. *)
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      finish t job (Protocol.error ~job:job.id "cancelled") Protocol.Cancelled;
      worker_loop t
    end
    else begin
      job.state <- Protocol.Running;
      job.started_at <- Clock.now ();
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      log_event t "job_started" [ ("job", Json.String job.id) ];
      let response, outcome = execute t job in
      let terminal =
        if job.cancel_requested then Protocol.Cancelled
        else
          match outcome with
          | Succeeded -> Protocol.Done
          | Errored -> Protocol.Failed
      in
      finish t job response terminal;
      worker_loop t
    end

(* --- request handling --------------------------------------------------- *)

let handle_submit t conn (s : Protocol.submit) =
  let rejected =
    locked t (fun () ->
        if t.stop then None
        else begin
          t.next_id <- t.next_id + 1;
          let id = Printf.sprintf "job-%d" t.next_id in
          let job =
            {
              id;
              submit = s;
              state = Protocol.Queued;
              response = None;
              budget = None;
              cancel_requested = false;
              subscriber = (if s.Protocol.wait then Some conn else None);
              started_at = Clock.now ();
            }
          in
          Hashtbl.replace t.jobs id job;
          t.submitted <- t.submitted + 1;
          Some (job, queued_count t + 1)
        end)
  in
  match rejected with
  | None -> send conn (Protocol.error "server is shutting down")
  | Some (job, depth) ->
    log_event t "job_submitted"
      [
        ("job", Json.String job.id);
        ("tenant", Json.String s.Protocol.tenant);
        ("job_kind", Json.String (Protocol.job_kind_to_string s.Protocol.kind));
        ("queued", Json.Int depth);
      ];
    (* Ack before the job becomes runnable: a cache-hit job can finish in
       microseconds, and its result frame must not beat the ack onto the
       connection. *)
    send conn (Protocol.ack ~job:job.id ~queued:depth);
    locked t (fun () ->
        let tenant = s.Protocol.tenant in
        let q =
          match Hashtbl.find_opt t.tenants tenant with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace t.tenants tenant q;
            t.rr <- t.rr @ [ tenant ];
            q
        in
        Queue.push job q;
        Condition.broadcast t.wake)

let find_job t id = locked t (fun () -> Hashtbl.find_opt t.jobs id)

let handle_status t conn id =
  match find_job t id with
  | None -> send conn (Protocol.error ~job:id "unknown job")
  | Some job ->
    let state, position =
      locked t (fun () ->
          ( job.state,
            if job.state = Protocol.Queued then queue_position t job else None ))
    in
    send conn (Protocol.status ~job:id ~state ~position)

let handle_cancel t conn id =
  match find_job t id with
  | None -> send conn (Protocol.error ~job:id "unknown job")
  | Some job ->
    let state =
      locked t (fun () ->
          (match job.state with
           | Protocol.Queued | Protocol.Running ->
             job.cancel_requested <- true;
             (* A running flow is cancelled cooperatively: tripping the
                budget cap makes every deadline the flow captures from
                here on report expiry, and it winds down through the
                ordinary budget-exhaustion accounting. *)
             (match job.budget with Some b -> Budget.cancel b | None -> ())
           | _ -> ());
          job.state)
    in
    send conn (Protocol.status ~job:id ~state ~position:None)

let handle_result t conn id =
  match find_job t id with
  | None -> send conn (Protocol.error ~job:id "unknown job")
  | Some job ->
    let response =
      locked t (fun () ->
          while
            match job.state with
            | Protocol.Queued | Protocol.Running -> true
            | _ -> false
          do
            Condition.wait t.done_c t.lock
          done;
          job.response)
    in
    (match response with
     | Some r -> send conn r
     | None -> send conn (Protocol.error ~job:id "cancelled"))

let handle_stats t conn =
  let submitted, completed, running, queued =
    locked t (fun () -> (t.submitted, t.completed, t.running, queued_count t))
  in
  let cache_stats = Cache.stats t.served_cache in
  send conn
    (Json.Obj
       [
         ("kind", Json.String "stats");
         ("protocol", Json.String Protocol.id);
         ("submitted", Json.Int submitted);
         ("completed", Json.Int completed);
         ("running", Json.Int running);
         ("queued", Json.Int queued);
         ("cache", Cache.stats_to_json cache_stats);
       ])

let sockaddr_of = function
  | Protocol.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Protocol.Tcp port ->
    (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

(* Closing a listening fd from another thread does NOT wake a blocked
   accept(2); a throwaway self-connection does, portably. The accept loop
   re-checks [stop] after every accept. *)
let poke t =
  let domain, sockaddr = sockaddr_of t.addr in
  match Unix.socket domain Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
    try
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.connect fd sockaddr)
    with Unix.Unix_error _ -> ())

let initiate_shutdown t =
  let fresh =
    locked t (fun () ->
        if t.stop then false
        else begin
          t.stop <- true;
          Condition.broadcast t.wake;
          Condition.broadcast t.done_c;
          true
        end)
  in
  if fresh then poke t

let shutdown t = initiate_shutdown t

let handle t conn line =
  match Json.of_string line with
  | exception Json.Parse_error e ->
    send conn (Protocol.error ("request is not JSON: " ^ e))
  | j -> (
    match Protocol.request_of_json j with
    | Error e -> send conn (Protocol.error e)
    | Ok (Protocol.Submit s) -> handle_submit t conn s
    | Ok (Protocol.Status id) -> handle_status t conn id
    | Ok (Protocol.Cancel id) -> handle_cancel t conn id
    | Ok (Protocol.Result id) -> handle_result t conn id
    | Ok Protocol.Stats -> handle_stats t conn
    | Ok Protocol.Ping -> send conn (Protocol.pong ())
    | Ok Protocol.Shutdown ->
      send conn (Protocol.bye ());
      log_event t "shutdown" [];
      initiate_shutdown t)

let drop_subscriber t conn =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ job ->
          match job.subscriber with
          | Some c when c == conn -> job.subscriber <- None
          | _ -> ())
        t.jobs)

let serve_conn t fd =
  let conn =
    { oc = Unix.out_channel_of_descr fd; wlock = Mutex.create ();
      alive = true }
  in
  let ic = Unix.in_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line ->
      if String.trim line <> "" then handle t conn line;
      if conn.alive then loop ()
  in
  loop ();
  drop_subscriber t conn;
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* --- heartbeats --------------------------------------------------------- *)

let rec heartbeat_loop t =
  Thread.delay t.hb_interval;
  let stop =
    let running =
      locked t (fun () ->
          if t.stop then None
          else
            Some
              (Hashtbl.fold
                 (fun _ job acc ->
                   match (job.state, job.subscriber) with
                   | Protocol.Running, Some conn when job.submit.Protocol.wait
                     ->
                     (job.id, job.started_at, conn) :: acc
                   | _ -> acc)
                 t.jobs []))
    in
    match running with
    | None -> true
    | Some jobs ->
      List.iter
        (fun (id, started, conn) ->
          send conn
            (Protocol.heartbeat ~job:id ~state:Protocol.Running
               ~elapsed_s:(Clock.now () -. started)))
        jobs;
      false
  in
  if not stop then heartbeat_loop t

(* --- listener ----------------------------------------------------------- *)

let bind_listen t =
  (* A stale socket file from a killed daemon blocks bind; remove it. An
     fst-serve socket is ours to reclaim by construction of the path the
     CLI passes. *)
  (match t.addr with
   | Protocol.Unix_sock path when Sys.file_exists path -> (
     try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
   | _ -> ());
  let domain, sockaddr = sockaddr_of t.addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match t.addr with
   | Protocol.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
   | Protocol.Unix_sock _ -> ());
  Unix.bind fd sockaddr;
  Unix.listen fd 64;
  fd

let run t =
  (match Sys.os_type with
   | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   | _ -> ());
  let listen = bind_listen t in
  log_event t "listening"
    [ ("addr", Json.String (Protocol.addr_to_string t.addr));
      ("protocol", Json.String Protocol.id) ];
  let workers =
    List.init t.workers (fun _ -> Thread.create worker_loop t)
  in
  let hb = Thread.create heartbeat_loop t in
  let rec accept_loop () =
    if not (locked t (fun () -> t.stop)) then
      match Unix.accept listen with
      | fd, _ ->
        if locked t (fun () -> t.stop) then
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (fun () -> serve_conn t fd) ());
        accept_loop ()
      | exception Unix.Unix_error _ ->
        (* accept failed hard; stop accepting (and wake the workers). *)
        initiate_shutdown t
  in
  accept_loop ();
  (try Unix.close listen with Unix.Unix_error _ -> ());
  (* Drain the queue and running jobs; reader threads are not joined —
     a client that keeps its connection open must not wedge shutdown,
     and every job outcome is already published under [lock]. *)
  List.iter Thread.join workers;
  Thread.join hb;
  match t.addr with
  | Protocol.Unix_sock path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | _ -> ()

let start t = Thread.create run t
