(** Deterministic pseudo-random numbers (splitmix64).

    Self-contained so that generated benchmark circuits are bit-identical
    across OCaml versions and platforms. *)

type t

val create : int64 -> t

(** [state t] is the generator's cursor; [of_state (state t)] resumes the
    stream exactly where [t] left it (used by flow checkpointing). *)
val state : t -> int64

val of_state : int64 -> t

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [pick t arr] is a uniform element of [arr]. *)
val pick : t -> 'a array -> 'a

(** [weighted t choices] picks among [(weight, value)] pairs with
    probability proportional to weight. Weights must be positive. *)
val weighted : t -> (int * 'a) list -> 'a
