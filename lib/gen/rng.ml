type t = { mutable state : int64 }

let create seed = { state = seed }
let state t = t.state
let of_state s = { state = s }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Shift by 2 so the result fits OCaml's 63-bit int as a non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int r /. 9007199254740992.0 (* 2^53 *)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: weights must be positive";
  let r = int t total in
  let rec walk acc = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | (w, v) :: rest -> if r < acc + w then v else walk (acc + w) rest
  in
  walk 0 choices
