open Fst_logic

exception Parse_error of { file : string option; line : int; message : string }

let fail ?file line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { file; line; message })) fmt

type raw = {
  raw_name : string;
  raw_file : string option;
  raw_nodes : Circuit.node array;
  raw_net_names : string array;
  raw_outputs : int array;
  raw_lines : int array;
  raw_dups : (string * int * int) list;
}

type statement =
  | St_input of string
  | St_output of string
  | St_def of string * string * string list  (* lhs, op, args *)

let strip s = String.trim s

let split_args s =
  String.split_on_char ',' s |> List.map strip
  |> List.filter (fun a -> a <> "")

(* Accepts "INPUT(g)" / "OUTPUT(g)" / "lhs = OP(a, b)" / "lhs = CONST0". *)
let parse_line ?file ~line s =
  let s = strip s in
  if s = "" || s.[0] = '#' then None
  else
    let paren name =
      match String.index_opt s '(' with
      | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
        let inner = String.sub s (i + 1) (String.length s - i - 2) in
        String.sub s 0 i = name && String.length inner > 0, strip inner
      | Some _ | None -> (false, "")
    in
    match paren "INPUT" with
    | true, arg -> Some (St_input arg)
    | false, _ -> (
      match paren "OUTPUT" with
      | true, arg -> Some (St_output arg)
      | false, _ -> (
        match String.index_opt s '=' with
        | None -> fail ?file line "expected INPUT(..), OUTPUT(..) or an assignment"
        | Some eq ->
          let lhs = strip (String.sub s 0 eq) in
          let rhs = strip (String.sub s (eq + 1) (String.length s - eq - 1)) in
          if lhs = "" then fail ?file line "empty left-hand side";
          (match String.index_opt rhs '(' with
           | None -> Some (St_def (lhs, rhs, []))
           | Some i ->
             if rhs.[String.length rhs - 1] <> ')' then
               fail ?file line "missing closing parenthesis";
             let op = strip (String.sub rhs 0 i) in
             let args =
               split_args (String.sub rhs (i + 1) (String.length rhs - i - 2))
             in
             Some (St_def (lhs, op, args)))))

let const_of_op op =
  match String.uppercase_ascii op with
  | "CONST0" -> Some V3.Zero
  | "CONST1" -> Some V3.One
  | "CONSTX" -> Some V3.X
  | _ -> None

let parse_raw ?(name = "netlist") ?file text =
  let statements = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i raw ->
         match parse_line ?file ~line:(i + 1) raw with
         | None -> ()
         | Some st -> statements := (i + 1, st) :: !statements);
  let statements = List.rev !statements in
  (* First pass: allocate ids for every defined net (inputs and lhs). A
     redefinition is recorded — with the first definition's line, so both
     can be reported — and otherwise dropped in favour of the first. *)
  let ids = Hashtbl.create 256 in
  let order = ref [] in
  let def_lines = ref [] in
  let dups = ref [] in
  let declare line nm =
    match Hashtbl.find_opt ids nm with
    | Some (_, first_line) -> dups := (nm, first_line, line) :: !dups
    | None ->
      Hashtbl.add ids nm (Hashtbl.length ids, line);
      order := nm :: !order;
      def_lines := line :: !def_lines
  in
  List.iter
    (fun (line, st) ->
      match st with
      | St_input nm | St_def (nm, _, _) -> declare line nm
      | St_output _ -> ())
    statements;
  let names = Array.of_list (List.rev !order) in
  let lines = Array.of_list (List.rev !def_lines) in
  let lookup line nm =
    match Hashtbl.find_opt ids nm with
    | Some (id, _) -> id
    | None -> fail ?file line "undefined net %S" nm
  in
  let nodes = Array.make (Array.length names) Circuit.Input in
  let outputs = ref [] in
  List.iter
    (fun (line, st) ->
      match st with
      | St_input _ -> ()
      | St_output nm -> outputs := lookup line nm :: !outputs
      | St_def (lhs, op, args) ->
        let id = lookup line lhs in
        (* A redefinition keeps the first driver: only the statement on the
           declaring line elaborates (one statement per line). *)
        if lines.(id) = line then begin
          let arg_ids () = List.map (lookup line) args in
          let node =
            match const_of_op op with
            | Some v ->
              if args <> [] then fail ?file line "constant with arguments";
              Circuit.Const v
            | None -> (
              if String.uppercase_ascii op = "DFF" then
                match arg_ids () with
                | [ d ] -> Circuit.Dff d
                | _ -> fail ?file line "DFF takes exactly one argument"
              else
                match Gate.of_string op with
                | None -> fail ?file line "unknown operator %S" op
                | Some g ->
                  let fi = Array.of_list (arg_ids ()) in
                  if not (Gate.arity_ok g (Array.length fi)) then
                    fail ?file line "%s cannot take %d arguments"
                      (Gate.to_string g) (Array.length fi);
                  Circuit.Gate (g, fi))
          in
          nodes.(id) <- node
        end)
    statements;
  {
    raw_name = name;
    raw_file = file;
    raw_nodes = nodes;
    raw_net_names = names;
    raw_outputs = Array.of_list (List.rev !outputs);
    raw_lines = lines;
    raw_dups = List.rev !dups;
  }

let elaborate raw =
  (match raw.raw_dups with
   | (nm, first, dup) :: _ ->
     fail ?file:raw.raw_file dup "net %S defined twice (first defined at line %d)"
       nm first
   | [] -> ());
  Circuit.make ~name:raw.raw_name ~nodes:raw.raw_nodes
    ~net_names:raw.raw_net_names ~outputs:raw.raw_outputs

let parse_string_loc ?name ?file text =
  let raw = parse_raw ?name ?file text in
  (elaborate raw, raw.raw_lines)

let parse_string ?name text = fst (parse_string_loc ?name text)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let parse_file_loc path =
  parse_string_loc
    ~name:(Filename.remove_extension (Filename.basename path))
    ~file:path (read_file path)

let parse_file path = fst (parse_file_loc path)

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.Circuit.name);
  Array.iter
    (fun i ->
      Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.net_name c i)))
    c.Circuit.inputs;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Circuit.net_name c o)))
    c.Circuit.outputs;
  let n = Circuit.num_nets c in
  for i = 0 to n - 1 do
    let nm = Circuit.net_name c i in
    match Circuit.node c i with
    | Circuit.Input -> ()
    | Circuit.Const v ->
      Buffer.add_string buf
        (Printf.sprintf "%s = CONST%c\n" nm (V3.to_char v))
    | Circuit.Dff d ->
      Buffer.add_string buf
        (Printf.sprintf "%s = DFF(%s)\n" nm (Circuit.net_name c d))
    | Circuit.Gate (g, fi) ->
      let args =
        Array.to_list fi |> List.map (Circuit.net_name c) |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" nm (Gate.to_string g) args)
  done;
  Buffer.contents buf

let write_file c path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
