(** Gate-level sequential circuits.

    A circuit is a flat array of nodes; node [i] drives net [i] (single
    driver per net, net ids and node ids coincide). D flip-flops share one
    implicit clock, as in the ISCAS'89 benchmarks. Combinational loops are
    rejected at construction; loops through flip-flops are allowed. *)

open Fst_logic

type node =
  | Input  (** primary input *)
  | Const of V3.t  (** tie cell (0, 1, or an explicit unknown source) *)
  | Gate of Gate.t * int array  (** logic gate with fanin net ids *)
  | Dff of int  (** flip-flop; the argument is the data-input net *)

type t = private {
  name : string;
  nodes : node array;
  net_names : string array;
  outputs : int array;  (** primary-output net ids *)
  inputs : int array;  (** net ids driven by [Input], in creation order *)
  dffs : int array;  (** net ids driven by [Dff], in creation order *)
  fanout : int array array;  (** node ids reading each net *)
  topo : int array;
      (** every node id in evaluation order: sources (inputs, constants,
          flip-flop outputs) first, then gates such that fanins precede *)
  level : int array;  (** combinational depth per net; sources are level 0 *)
}

exception Combinational_cycle of string
exception Malformed of string

(** [make ~name ~nodes ~net_names ~outputs] validates the node table
    (arities, fanin ranges, name uniqueness), computes fanout, a topological
    order and levels.
    @raise Combinational_cycle if the gate subgraph is cyclic.
    @raise Malformed on arity or range errors. *)
val make :
  name:string ->
  nodes:node array ->
  net_names:string array ->
  outputs:int array ->
  t

(** [combinational_cycles nodes] enumerates the cyclic strongly-connected
    components of the gate subgraph of a raw node table (which [make] would
    reject). One representative cycle is returned per cyclic SCC — the
    shortest loop through the component's smallest net id — as net ids in
    signal-flow order (each net drives the next; the last drives the
    first). Sorted by first net id; [[]] iff the gate subgraph is acyclic.
    Usable before [make], so a linter can report {e every} cycle instead of
    aborting on the first. *)
val combinational_cycles : node array -> int list list

val num_nets : t -> int

(** [gate_count c] counts logic gates (all [Gate] nodes). *)
val gate_count : t -> int

val dff_count : t -> int
val input_count : t -> int

(** [node c n] is the driver of net [n]. *)
val node : t -> int -> node

(** [fanins c n] are the fanin nets of node [n] ([||] for sources). *)
val fanins : t -> int -> int array

val net_name : t -> int -> string

(** [find_net c name] is the net with the given name.
    @raise Not_found if absent. *)
val find_net : t -> string -> int

val is_input : t -> int -> bool
val is_dff : t -> int -> bool
val is_output : t -> int -> bool

(** [max_fanin c] is the largest gate fanin arity. *)
val max_fanin : t -> int

(** [depth c] is the largest combinational level. *)
val depth : t -> int

(** [pp_stats ppf c] prints a one-line summary (nets, gates, FFs, PIs, POs,
    depth). *)
val pp_stats : t Fmt.t
