open Fst_logic

type node =
  | Input
  | Const of V3.t
  | Gate of Gate.t * int array
  | Dff of int

type t = {
  name : string;
  nodes : node array;
  net_names : string array;
  outputs : int array;
  inputs : int array;
  dffs : int array;
  fanout : int array array;
  topo : int array;
  level : int array;
}

exception Combinational_cycle of string
exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let fanins_of = function
  | Input | Const _ -> [||]
  | Gate (_, fi) -> fi
  | Dff d -> [| d |]

let validate ~nodes ~net_names ~outputs =
  let n = Array.length nodes in
  if Array.length net_names <> n then
    malformed "%d nodes but %d net names" n (Array.length net_names);
  let seen = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem seen name then malformed "duplicate net name %S" name;
      Hashtbl.add seen name i)
    net_names;
  let check_net ctx id =
    if id < 0 || id >= n then malformed "%s references bad net %d" ctx id
  in
  Array.iteri
    (fun i nd ->
      match nd with
      | Input | Const _ -> ()
      | Gate (g, fi) ->
        if not (Gate.arity_ok g (Array.length fi)) then
          malformed "gate %s at net %d has %d fanins" (Gate.to_string g) i
            (Array.length fi);
        Array.iter (check_net (Printf.sprintf "gate at net %d" i)) fi
      | Dff d -> check_net (Printf.sprintf "dff at net %d" i) d)
    nodes;
  Array.iter (check_net "output list") outputs

(* Strongly-connected components of the gate subgraph (iterative Tarjan;
   sources break cycles, a gate reading itself is a one-node cycle). Each
   cyclic SCC is reported as one representative cycle: the shortest loop
   through its smallest net id, in signal-flow order. *)
let combinational_cycles nodes =
  let n = Array.length nodes in
  let is_gate i = match nodes.(i) with Gate _ -> true | _ -> false in
  let gate_fanins i =
    match nodes.(i) with
    | Gate (_, fi) -> fi
    | Input | Const _ | Dff _ -> [||]
  in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let frames = Stack.create () in
  let push_node v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Stack.push (v, ref 0) frames
  in
  for root = 0 to n - 1 do
    if is_gate root && index.(root) = -1 then begin
      push_node root;
      while not (Stack.is_empty frames) do
        let v, pi = Stack.top frames in
        let fi = gate_fanins v in
        if !pi < Array.length fi then begin
          let w = fi.(!pi) in
          incr pi;
          if is_gate w then
            if index.(w) = -1 then push_node w
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          (match Stack.top_opt frames with
           | Some (u, _) -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
           | None -> ());
          if lowlink.(v) = index.(v) then begin
            let comp = ref [] in
            let stop = ref false in
            while not !stop do
              match !stack with
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp := w :: !comp;
                if w = v then stop := true
              | [] -> stop := true
            done;
            let cyclic =
              match !comp with
              | [ w ] -> Array.exists (fun f -> f = w) (gate_fanins w)
              | _ :: _ :: _ -> true
              | [] -> false
            in
            if cyclic then sccs := !comp :: !sccs
          end
        end
      done
    end
  done;
  (* Representative cycle per SCC: BFS over dependency edges restricted to
     the component, from its smallest member back to itself. *)
  let cycle_of comp =
    let members = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace members i ()) comp;
    let s = List.fold_left min (List.hd comp) comp in
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add s queue;
    let found = ref false in
    while not (!found || Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if not !found && Hashtbl.mem members w then
            if w = s then begin
              found := true;
              Hashtbl.replace parent s v
            end
            else if not (Hashtbl.mem parent w) then begin
              Hashtbl.replace parent w v;
              Queue.add w queue
            end)
        (gate_fanins v)
    done;
    (* [parent.(w)] is a consumer of [w], so following parents from [s]
       walks the cycle in signal-flow order until it closes back at [s]. *)
    let rec walk acc v =
      let p = Hashtbl.find parent v in
      if p = s then List.rev (v :: acc) else walk (v :: acc) p
    in
    if !found then walk [] s else comp
  in
  List.map cycle_of !sccs
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let compute_fanout nodes =
  let n = Array.length nodes in
  let counts = Array.make n 0 in
  let count_fanins i =
    Array.iter (fun f -> counts.(f) <- counts.(f) + 1) (fanins_of nodes.(i))
  in
  for i = 0 to n - 1 do
    count_fanins i
  done;
  let fanout = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun f ->
        fanout.(f).(fill.(f)) <- i;
        fill.(f) <- fill.(f) + 1)
      (fanins_of nodes.(i))
  done;
  fanout

(* Kahn's algorithm over the combinational subgraph: inputs, constants and
   flip-flop outputs are sources; a Dff node consumes its data net but its
   own output breaks the cycle. *)
let compute_topo ~name ~net_names nodes fanout =
  let n = Array.length nodes in
  let pending = Array.make n 0 in
  let order = Array.make n (-1) in
  let pos = ref 0 in
  let queue = Queue.create () in
  let emit i =
    order.(!pos) <- i;
    incr pos
  in
  for i = 0 to n - 1 do
    match nodes.(i) with
    | Input | Const _ | Dff _ -> Queue.add i queue
    | Gate (_, fi) -> pending.(i) <- Array.length fi
  done;
  (* Dff nodes are emitted as sources (their output is available at the start
     of a cycle) even though their data fanin is combinational; the data net
     is read only when the clock ticks. *)
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    emit i;
    Array.iter
      (fun consumer ->
        match nodes.(consumer) with
        | Gate _ ->
          pending.(consumer) <- pending.(consumer) - 1;
          if pending.(consumer) = 0 then Queue.add consumer queue
        | Input | Const _ | Dff _ -> ())
      fanout.(i)
  done;
  if !pos <> n then begin
    let detail =
      match combinational_cycles nodes with
      | cycle :: _ ->
        let path = List.map (fun i -> net_names.(i)) cycle in
        Printf.sprintf "%s: combinational cycle %s"
          name
          (String.concat " -> " (path @ [ List.hd path ]))
      | [] -> name
    in
    raise (Combinational_cycle detail)
  end;
  order

let compute_levels nodes topo =
  let n = Array.length nodes in
  let level = Array.make n 0 in
  Array.iter
    (fun i ->
      match nodes.(i) with
      | Input | Const _ | Dff _ -> level.(i) <- 0
      | Gate (_, fi) ->
        let m = ref 0 in
        Array.iter (fun f -> if level.(f) > !m then m := level.(f)) fi;
        level.(i) <- !m + 1)
    topo;
  level

let collect_kind nodes pred =
  let acc = ref [] in
  for i = Array.length nodes - 1 downto 0 do
    if pred nodes.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let make ~name ~nodes ~net_names ~outputs =
  validate ~nodes ~net_names ~outputs;
  let fanout = compute_fanout nodes in
  let topo = compute_topo ~name ~net_names nodes fanout in
  let level = compute_levels nodes topo in
  let inputs = collect_kind nodes (function Input -> true | _ -> false) in
  let dffs = collect_kind nodes (function Dff _ -> true | _ -> false) in
  { name; nodes; net_names; outputs; inputs; dffs; fanout; topo; level }

let num_nets c = Array.length c.nodes

let gate_count c =
  Array.fold_left
    (fun acc nd -> match nd with Gate _ -> acc + 1 | _ -> acc)
    0 c.nodes

let dff_count c = Array.length c.dffs
let input_count c = Array.length c.inputs
let node c n = c.nodes.(n)
let fanins c n = fanins_of c.nodes.(n)
let net_name c n = c.net_names.(n)

let find_net c name =
  let n = num_nets c in
  let rec loop i =
    if i >= n then raise Not_found
    else if String.equal c.net_names.(i) name then i
    else loop (i + 1)
  in
  loop 0

let is_input c n = match c.nodes.(n) with Input -> true | _ -> false
let is_dff c n = match c.nodes.(n) with Dff _ -> true | _ -> false
let is_output c n = Array.exists (fun o -> o = n) c.outputs

let max_fanin c =
  Array.fold_left
    (fun acc nd ->
      match nd with
      | Gate (_, fi) -> max acc (Array.length fi)
      | Input | Const _ | Dff _ -> acc)
    0 c.nodes

let depth c = Array.fold_left max 0 c.level

let pp_stats ppf c =
  Fmt.pf ppf "%s: %d nets, %d gates, %d FFs, %d PIs, %d POs, depth %d" c.name
    (num_nets c) (gate_count c) (dff_count c) (input_count c)
    (Array.length c.outputs) (depth c)
