(** Textual netlist format, modeled on the ISCAS'89 bench syntax:

    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G3)
    G5  = DFF(G10)
    G7  = CONST0        # also CONST1, CONSTX
    v}

    Definitions may appear in any order; forward references are resolved in
    a second pass. *)

exception Parse_error of { file : string option; line : int; message : string }
(** [file] is set when the text came from [parse_file]/[parse_file_loc] (or
    an explicit [?file]); duplicate-definition errors cite both lines in
    [message]. *)

(** The result of the syntactic pass alone: a validated-for-syntax node
    table that has {e not} been through {!Circuit.make}. A linter can run
    graph checks (e.g. {!Circuit.combinational_cycles}) on circuits that
    elaboration would reject, and report every duplicate definition instead
    of failing on the first. *)
type raw = {
  raw_name : string;
  raw_file : string option;
  raw_nodes : Circuit.node array;
  raw_net_names : string array;
  raw_outputs : int array;
  raw_lines : int array;
      (** per net: the 1-based source line of its definition *)
  raw_dups : (string * int * int) list;
      (** redefined nets as [(name, first line, duplicate line)], in source
          order; the first definition wins in [raw_nodes] *)
}

(** [parse_raw ?name ?file text] runs the syntactic pass only.
    @raise Parse_error on malformed statements or undefined nets. *)
val parse_raw : ?name:string -> ?file:string -> string -> raw

(** [elaborate raw] validates and builds the circuit.
    @raise Parse_error if [raw] recorded duplicate definitions (the message
    cites both lines).
    @raise Circuit.Combinational_cycle or {!Circuit.Malformed} as
    {!Circuit.make} does. *)
val elaborate : raw -> Circuit.t

val parse_string : ?name:string -> string -> Circuit.t

(** [parse_string_loc ?name ?file text] additionally returns the per-net
    source-line table ([table.(net)] is the 1-based line of the net's
    definition), for source-located diagnostics. *)
val parse_string_loc : ?name:string -> ?file:string -> string -> Circuit.t * int array

val parse_file : string -> Circuit.t

val parse_file_loc : string -> Circuit.t * int array

val to_string : Circuit.t -> string
val write_file : Circuit.t -> string -> unit
