module Pool = Fst_exec.Pool
module Budget = Fst_exec.Budget
module Sink = Fst_obs.Sink
module Json = Fst_obs.Json

type engine = Fst_fsim.Fsim.selector
type on_error = [ `Fail_fast | `Keep_going ]

type t = {
  engine : engine;
  jobs : int;
  dist_floor_scale : float;
  comb_backtrack : int;
  seq_backtrack : int;
  final_backtrack : int;
  frames : int list;
  final_frames : int list;
  truncate_blocks : float option;
  capture_curve : bool;
  random_blocks : int;
  random_seed : int64;
  weighted_random : bool;
  seq_fault_seconds : float;
  final_fault_seconds : float;
  scan_backtrack : int;
  scan_random_blocks : int;
  scan_random_seed : int64;
  sca_prune : bool;
  sca_implications : bool;
  time_budget : float option;
  on_error : on_error;
  sink : Sink.t;
  preflight : bool;
}

let default =
  {
    engine = `Auto;
    jobs = Pool.default_jobs ();
    dist_floor_scale = 1.0;
    comb_backtrack = 200;
    seq_backtrack = 400;
    final_backtrack = 2000;
    frames = [ 1; 2; 4 ];
    final_frames = [ 1; 2; 4; 8 ];
    truncate_blocks = None;
    capture_curve = true;
    random_blocks = 32;
    random_seed = 0x5EEDL;
    weighted_random = false;
    seq_fault_seconds = 0.5;
    final_fault_seconds = 2.0;
    scan_backtrack = 200;
    scan_random_blocks = 32;
    scan_random_seed = 0xCAFEL;
    sca_prune = true;
    sca_implications = false;
    time_budget = None;
    on_error = `Fail_fast;
    sink = Sink.null;
    preflight = false;
  }

let with_engine engine t = { t with engine }
let with_jobs jobs t = { t with jobs = max 1 jobs }
let with_dist_floor_scale dist_floor_scale t = { t with dist_floor_scale }
let with_comb_backtrack comb_backtrack t = { t with comb_backtrack }
let with_seq_backtrack seq_backtrack t = { t with seq_backtrack }
let with_final_backtrack final_backtrack t = { t with final_backtrack }
let with_frames frames t = { t with frames }
let with_final_frames final_frames t = { t with final_frames }
let with_truncate_blocks truncate_blocks t = { t with truncate_blocks }
let with_capture_curve capture_curve t = { t with capture_curve }
let with_random_blocks random_blocks t = { t with random_blocks }
let with_random_seed random_seed t = { t with random_seed }
let with_weighted_random weighted_random t = { t with weighted_random }
let with_seq_fault_seconds seq_fault_seconds t = { t with seq_fault_seconds }

let with_final_fault_seconds final_fault_seconds t =
  { t with final_fault_seconds }

let with_scan_backtrack scan_backtrack t = { t with scan_backtrack }

let with_scan_random_blocks scan_random_blocks t =
  { t with scan_random_blocks }

let with_scan_random_seed scan_random_seed t = { t with scan_random_seed }
let with_sca_prune sca_prune t = { t with sca_prune }
let with_sca_implications sca_implications t = { t with sca_implications }
let with_time_budget time_budget t = { t with time_budget }
let with_on_error on_error t = { t with on_error }
let with_sink sink t = { t with sink }
let with_preflight preflight t = { t with preflight }

let engine_to_string : engine -> string = function
  | `Serial -> "serial"
  | `Parallel -> "parallel"
  | `Event -> "event"
  | `Auto -> "auto"

let engine_of_string = function
  | "serial" -> Some `Serial
  | "parallel" -> Some `Parallel
  | "event" -> Some `Event
  | "auto" -> Some `Auto
  | _ -> None

let engine_names = [ "serial"; "parallel"; "event"; "auto" ]

let on_error_to_string : on_error -> string = function
  | `Fail_fast -> "fail-fast"
  | `Keep_going -> "keep-going"

let on_error_of_string = function
  | "fail-fast" -> Some `Fail_fast
  | "keep-going" -> Some `Keep_going
  | _ -> None

(* The semantic fingerprint covers exactly the knobs that change what a
   flow computes. Engine (every back-end is result-identical), jobs
   (step-2 identical, step-3 totals identical), sink/preflight (pure
   observers) and time_budget/on_error (degradation policy) are all
   excluded, so a cached artifact produced by any engine at any
   parallelism satisfies a lookup from any other. *)
let fingerprint t =
  let key =
    ( t.dist_floor_scale,
      t.comb_backtrack,
      t.seq_backtrack,
      t.final_backtrack,
      t.frames,
      t.final_frames,
      t.truncate_blocks,
      (t.capture_curve, t.random_blocks, t.random_seed, t.weighted_random),
      ( t.seq_fault_seconds,
        t.final_fault_seconds,
        t.scan_backtrack,
        t.scan_random_blocks,
        t.scan_random_seed ),
      (t.sca_prune, t.sca_implications) )
  in
  Digest.to_hex (Digest.string (Marshal.to_string key []))

let budget t =
  match t.time_budget with
  | None -> Budget.unlimited
  | Some s -> Budget.of_seconds s

let of_cli ?(engine = "auto") ?(jobs = 0) ?(scale = 1.0) ?time_budget
    ?on_error ?(preflight = false) ?(sink = Sink.null) () =
  match engine_of_string engine with
  | None ->
    Error
      (Printf.sprintf "unknown engine %S (expected one of: %s)" engine
         (String.concat ", " engine_names))
  | Some e ->
    let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
    (* Budgeted runs default to keep-going: a run that is already
       prepared to ship partial coverage under a deadline should not
       throw the partial result away over one poison fault group. An
       explicit flag always wins. *)
    let on_error =
      match on_error with
      | Some p -> p
      | None -> if time_budget <> None then `Keep_going else `Fail_fast
    in
    Ok
      {
        default with
        engine = e;
        jobs;
        dist_floor_scale = scale;
        time_budget;
        on_error;
        preflight;
        sink;
      }

let to_json t =
  Json.Obj
    [
      ("engine", Json.String (engine_to_string t.engine));
      ("jobs", Json.Int t.jobs);
      ("dist_floor_scale", Json.Float t.dist_floor_scale);
      ("comb_backtrack", Json.Int t.comb_backtrack);
      ("seq_backtrack", Json.Int t.seq_backtrack);
      ("final_backtrack", Json.Int t.final_backtrack);
      ("frames", Json.List (List.map (fun f -> Json.Int f) t.frames));
      ( "final_frames",
        Json.List (List.map (fun f -> Json.Int f) t.final_frames) );
      ( "truncate_blocks",
        match t.truncate_blocks with
        | None -> Json.Null
        | Some f -> Json.Float f );
      ("capture_curve", Json.Bool t.capture_curve);
      ("random_blocks", Json.Int t.random_blocks);
      ("random_seed", Json.String (Printf.sprintf "0x%Lx" t.random_seed));
      ("weighted_random", Json.Bool t.weighted_random);
      ("seq_fault_seconds", Json.Float t.seq_fault_seconds);
      ("final_fault_seconds", Json.Float t.final_fault_seconds);
      ("scan_backtrack", Json.Int t.scan_backtrack);
      ("scan_random_blocks", Json.Int t.scan_random_blocks);
      ( "scan_random_seed",
        Json.String (Printf.sprintf "0x%Lx" t.scan_random_seed) );
      ("sca_prune", Json.Bool t.sca_prune);
      ("sca_implications", Json.Bool t.sca_implications);
      ( "time_budget",
        match t.time_budget with None -> Json.Null | Some s -> Json.Float s
      );
      ("on_error", Json.String (on_error_to_string t.on_error));
      ("preflight", Json.Bool t.preflight);
    ]

(* --- of_json: the exact inverse of to_json ----------------------------- *)

(* Typed field decoders. [to_json] emits Float for every float field, but
   hand-written payloads (the serve protocol's submit bodies) naturally
   spell whole numbers as ints, so float fields accept both. *)
let d_int k = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "config: %S expects an integer" k)

let d_float k = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "config: %S expects a number" k)

let d_bool k = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "config: %S expects a boolean" k)

let d_int_list k = function
  | Json.List l ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Int i :: rest -> go (i :: acc) rest
      | _ :: _ ->
        Error (Printf.sprintf "config: %S expects a list of integers" k)
    in
    go [] l
  | _ -> Error (Printf.sprintf "config: %S expects a list of integers" k)

let d_float_opt k = function
  | Json.Null -> Ok None
  | j -> Result.map Option.some (d_float k j)

let d_int64 k = function
  | Json.String s -> (
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "config: %S expects an integer string" k))
  | Json.Int i -> Ok (Int64.of_int i)
  | _ -> Error (Printf.sprintf "config: %S expects an integer string" k)

let ( let* ) = Result.bind

let set_field t k v =
  match k with
  | "engine" -> (
    match v with
    | Json.String s -> (
      match engine_of_string s with
      | Some e -> Ok { t with engine = e }
      | None ->
        Error
          (Printf.sprintf "config: unknown engine %S (expected one of: %s)" s
             (String.concat ", " engine_names)))
    | _ -> Error "config: \"engine\" expects a string")
  | "jobs" ->
    let* i = d_int k v in
    Ok (with_jobs i t)
  | "dist_floor_scale" ->
    let* f = d_float k v in
    Ok { t with dist_floor_scale = f }
  | "comb_backtrack" ->
    let* i = d_int k v in
    Ok { t with comb_backtrack = i }
  | "seq_backtrack" ->
    let* i = d_int k v in
    Ok { t with seq_backtrack = i }
  | "final_backtrack" ->
    let* i = d_int k v in
    Ok { t with final_backtrack = i }
  | "frames" ->
    let* l = d_int_list k v in
    Ok { t with frames = l }
  | "final_frames" ->
    let* l = d_int_list k v in
    Ok { t with final_frames = l }
  | "truncate_blocks" ->
    let* o = d_float_opt k v in
    Ok { t with truncate_blocks = o }
  | "capture_curve" ->
    let* b = d_bool k v in
    Ok { t with capture_curve = b }
  | "random_blocks" ->
    let* i = d_int k v in
    Ok { t with random_blocks = i }
  | "random_seed" ->
    let* s = d_int64 k v in
    Ok { t with random_seed = s }
  | "weighted_random" ->
    let* b = d_bool k v in
    Ok { t with weighted_random = b }
  | "seq_fault_seconds" ->
    let* f = d_float k v in
    Ok { t with seq_fault_seconds = f }
  | "final_fault_seconds" ->
    let* f = d_float k v in
    Ok { t with final_fault_seconds = f }
  | "scan_backtrack" ->
    let* i = d_int k v in
    Ok { t with scan_backtrack = i }
  | "scan_random_blocks" ->
    let* i = d_int k v in
    Ok { t with scan_random_blocks = i }
  | "scan_random_seed" ->
    let* s = d_int64 k v in
    Ok { t with scan_random_seed = s }
  | "sca_prune" ->
    let* b = d_bool k v in
    Ok { t with sca_prune = b }
  | "sca_implications" ->
    let* b = d_bool k v in
    Ok { t with sca_implications = b }
  | "time_budget" ->
    let* o = d_float_opt k v in
    Ok { t with time_budget = o }
  | "on_error" -> (
    match v with
    | Json.String s -> (
      match on_error_of_string s with
      | Some p -> Ok { t with on_error = p }
      | None ->
        Error
          (Printf.sprintf
             "config: unknown on_error %S (expected \"fail-fast\" or \
              \"keep-going\")"
             s))
    | _ -> Error "config: \"on_error\" expects a string")
  | "preflight" ->
    let* b = d_bool k v in
    Ok { t with preflight = b }
  | _ -> Error (Printf.sprintf "config: unknown key %S" k)

let of_json = function
  | Json.Obj kvs ->
    List.fold_left
      (fun acc (k, v) ->
        let* t = acc in
        set_field t k v)
      (Ok default) kvs
  | _ -> Error "config: expected a JSON object"

let equal_semantic a b =
  a.engine = b.engine && a.jobs = b.jobs
  && a.dist_floor_scale = b.dist_floor_scale
  && a.comb_backtrack = b.comb_backtrack
  && a.seq_backtrack = b.seq_backtrack
  && a.final_backtrack = b.final_backtrack
  && a.frames = b.frames
  && a.final_frames = b.final_frames
  && a.truncate_blocks = b.truncate_blocks
  && a.capture_curve = b.capture_curve
  && a.random_blocks = b.random_blocks
  && a.random_seed = b.random_seed
  && a.weighted_random = b.weighted_random
  && a.seq_fault_seconds = b.seq_fault_seconds
  && a.final_fault_seconds = b.final_fault_seconds
  && a.scan_backtrack = b.scan_backtrack
  && a.scan_random_blocks = b.scan_random_blocks
  && a.scan_random_seed = b.scan_random_seed
  && a.sca_prune = b.sca_prune
  && a.sca_implications = b.sca_implications
  && a.time_budget = b.time_budget
  && a.on_error = b.on_error
  && a.preflight = b.preflight
