module Pool = Fst_exec.Pool
module Budget = Fst_exec.Budget
module Sink = Fst_obs.Sink
module Json = Fst_obs.Json

type engine = Fst_fsim.Fsim.selector
type on_error = [ `Fail_fast | `Keep_going ]

type t = {
  engine : engine;
  jobs : int;
  dist_floor_scale : float;
  comb_backtrack : int;
  seq_backtrack : int;
  final_backtrack : int;
  frames : int list;
  final_frames : int list;
  truncate_blocks : float option;
  capture_curve : bool;
  random_blocks : int;
  random_seed : int64;
  weighted_random : bool;
  seq_fault_seconds : float;
  final_fault_seconds : float;
  scan_backtrack : int;
  scan_random_blocks : int;
  scan_random_seed : int64;
  sca_prune : bool;
  sca_implications : bool;
  time_budget : float option;
  on_error : on_error;
  sink : Sink.t;
  preflight : bool;
}

let default =
  {
    engine = `Auto;
    jobs = Pool.default_jobs ();
    dist_floor_scale = 1.0;
    comb_backtrack = 200;
    seq_backtrack = 400;
    final_backtrack = 2000;
    frames = [ 1; 2; 4 ];
    final_frames = [ 1; 2; 4; 8 ];
    truncate_blocks = None;
    capture_curve = true;
    random_blocks = 32;
    random_seed = 0x5EEDL;
    weighted_random = false;
    seq_fault_seconds = 0.5;
    final_fault_seconds = 2.0;
    scan_backtrack = 200;
    scan_random_blocks = 32;
    scan_random_seed = 0xCAFEL;
    sca_prune = true;
    sca_implications = false;
    time_budget = None;
    on_error = `Fail_fast;
    sink = Sink.null;
    preflight = false;
  }

let with_engine engine t = { t with engine }
let with_jobs jobs t = { t with jobs = max 1 jobs }
let with_dist_floor_scale dist_floor_scale t = { t with dist_floor_scale }
let with_comb_backtrack comb_backtrack t = { t with comb_backtrack }
let with_seq_backtrack seq_backtrack t = { t with seq_backtrack }
let with_final_backtrack final_backtrack t = { t with final_backtrack }
let with_frames frames t = { t with frames }
let with_final_frames final_frames t = { t with final_frames }
let with_truncate_blocks truncate_blocks t = { t with truncate_blocks }
let with_capture_curve capture_curve t = { t with capture_curve }
let with_random_blocks random_blocks t = { t with random_blocks }
let with_random_seed random_seed t = { t with random_seed }
let with_weighted_random weighted_random t = { t with weighted_random }
let with_seq_fault_seconds seq_fault_seconds t = { t with seq_fault_seconds }

let with_final_fault_seconds final_fault_seconds t =
  { t with final_fault_seconds }

let with_scan_backtrack scan_backtrack t = { t with scan_backtrack }

let with_scan_random_blocks scan_random_blocks t =
  { t with scan_random_blocks }

let with_scan_random_seed scan_random_seed t = { t with scan_random_seed }
let with_sca_prune sca_prune t = { t with sca_prune }
let with_sca_implications sca_implications t = { t with sca_implications }
let with_time_budget time_budget t = { t with time_budget }
let with_on_error on_error t = { t with on_error }
let with_sink sink t = { t with sink }
let with_preflight preflight t = { t with preflight }

let engine_to_string : engine -> string = function
  | `Serial -> "serial"
  | `Parallel -> "parallel"
  | `Event -> "event"
  | `Auto -> "auto"

let engine_of_string = function
  | "serial" -> Some `Serial
  | "parallel" -> Some `Parallel
  | "event" -> Some `Event
  | "auto" -> Some `Auto
  | _ -> None

let engine_names = [ "serial"; "parallel"; "event"; "auto" ]

let on_error_to_string : on_error -> string = function
  | `Fail_fast -> "fail-fast"
  | `Keep_going -> "keep-going"

let budget t =
  match t.time_budget with
  | None -> Budget.unlimited
  | Some s -> Budget.of_seconds s

let of_cli ?(engine = "auto") ?(jobs = 0) ?(scale = 1.0) ?time_budget
    ?on_error ?(preflight = false) ?(sink = Sink.null) () =
  match engine_of_string engine with
  | None ->
    Error
      (Printf.sprintf "unknown engine %S (expected one of: %s)" engine
         (String.concat ", " engine_names))
  | Some e ->
    let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
    (* Budgeted runs default to keep-going: a run that is already
       prepared to ship partial coverage under a deadline should not
       throw the partial result away over one poison fault group. An
       explicit flag always wins. *)
    let on_error =
      match on_error with
      | Some p -> p
      | None -> if time_budget <> None then `Keep_going else `Fail_fast
    in
    Ok
      {
        default with
        engine = e;
        jobs;
        dist_floor_scale = scale;
        time_budget;
        on_error;
        preflight;
        sink;
      }

let to_json t =
  Json.Obj
    [
      ("engine", Json.String (engine_to_string t.engine));
      ("jobs", Json.Int t.jobs);
      ("dist_floor_scale", Json.Float t.dist_floor_scale);
      ("comb_backtrack", Json.Int t.comb_backtrack);
      ("seq_backtrack", Json.Int t.seq_backtrack);
      ("final_backtrack", Json.Int t.final_backtrack);
      ("frames", Json.List (List.map (fun f -> Json.Int f) t.frames));
      ( "final_frames",
        Json.List (List.map (fun f -> Json.Int f) t.final_frames) );
      ( "truncate_blocks",
        match t.truncate_blocks with
        | None -> Json.Null
        | Some f -> Json.Float f );
      ("capture_curve", Json.Bool t.capture_curve);
      ("random_blocks", Json.Int t.random_blocks);
      ("random_seed", Json.String (Printf.sprintf "0x%Lx" t.random_seed));
      ("weighted_random", Json.Bool t.weighted_random);
      ("seq_fault_seconds", Json.Float t.seq_fault_seconds);
      ("final_fault_seconds", Json.Float t.final_fault_seconds);
      ("scan_backtrack", Json.Int t.scan_backtrack);
      ("scan_random_blocks", Json.Int t.scan_random_blocks);
      ( "scan_random_seed",
        Json.String (Printf.sprintf "0x%Lx" t.scan_random_seed) );
      ("sca_prune", Json.Bool t.sca_prune);
      ("sca_implications", Json.Bool t.sca_implications);
      ( "time_budget",
        match t.time_budget with None -> Json.Null | Some s -> Json.Float s
      );
      ("on_error", Json.String (on_error_to_string t.on_error));
      ("preflight", Json.Bool t.preflight);
    ]
