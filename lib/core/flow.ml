open Fst_netlist
open Fst_fault
open Fst_fsim
open Fst_atpg
open Fst_tpi
module Pool = Fst_exec.Pool

type params = {
  jobs : int;
  dist_floor_scale : float;
  comb_backtrack : int;
  seq_backtrack : int;
  final_backtrack : int;
  frames : int list;
  final_frames : int list;
  truncate_blocks : float option;
  capture_curve : bool;
  random_blocks : int;
  random_seed : int64;
  weighted_random : bool;
  seq_fault_seconds : float;
  final_fault_seconds : float;
}

let default_params =
  {
    jobs = Pool.default_jobs ();
    dist_floor_scale = 1.0;
    comb_backtrack = 200;
    seq_backtrack = 400;
    final_backtrack = 2000;
    frames = [ 1; 2; 4 ];
    final_frames = [ 1; 2; 4; 8 ];
    truncate_blocks = None;
    capture_curve = true;
    random_blocks = 32;
    random_seed = 0x5EEDL;
    weighted_random = false;
    seq_fault_seconds = 0.5;
    final_fault_seconds = 2.0;
  }

type step2 = {
  detected : int;
  untestable : int;
  undetected : int;
  vectors : int;
  atpg_seconds : float;
  fsim_seconds : float;
  curve : (int * int) array;
}

type step3 = {
  detected : int;
  untestable : int;
  undetected : int;
  group_circuits : int;
  final_circuits : int;
  seconds : float;
}

type result = {
  scanned : Circuit.t;
  config : Scan.config;
  faults : Fault.t array;
  classify : Classify.t;
  classify_seconds : float;
  step2 : step2;
  step3 : step3;
  undetected : Fault.t list;
  untestable_faults : Fault.t list;
}

let total_faults r = Array.length r.faults
let affecting r = r.classify.Classify.affecting

(* Everything the chain-testing phase credits as detected: the category-1
   faults (alternating sequence) plus the hard faults that neither stayed
   undetected nor were proven untestable. *)
let chain_detected_faults r =
  let open_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.undetected;
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.untestable_faults;
  let easy =
    Array.to_list r.classify.Classify.easy
    |> List.map (fun i -> r.faults.(i))
  in
  let hard_detected =
    Array.to_list r.classify.Classify.hard
    |> List.filter_map (fun i ->
           let f = r.faults.(i) in
           if Hashtbl.mem open_set f then None else Some f)
  in
  easy @ hard_detected

(* Splits a combinational-model assignment into flip-flop state and
   primary-input parts. *)
let split_assignment c assignment =
  List.partition (fun (net, _) -> Circuit.is_dff c net) assignment

(* --- Step 2: combinational ATPG + sequential fault simulation ---------- *)

let run_step2 ~params scanned config ~hard_faults =
  let t0 = Sys.time () in
  let view = View.scan_mode scanned ~constraints:config.Scan.constraints () in
  let scoap = Fst_testability.Scoap.compute view in
  let blocks = ref [] and untestable = ref [] and no_test = ref [] in
  Array.iteri
    (fun i fault ->
      match
        Podem.run ~backtrack_limit:params.comb_backtrack ~scoap view
          ~faults:[ fault ]
      with
      | Podem.Test assignment, _ ->
        let ff_values, pi_values = split_assignment scanned assignment in
        blocks :=
          Sequences.of_comb_test scanned config ~ff_values ~pi_values
          :: !blocks
      | Podem.Untestable, _ -> untestable := i :: !untestable
      | Podem.Aborted, _ -> no_test := i :: !no_test)
    hard_faults;
  let atpg_seconds = Sys.time () -. t0 in
  (* Deterministic random scan-mode tests appended after the ATPG set (the
     paper's random-vector option): they mop up aborted-ATPG faults during
     the same fault-simulation pass. The free inputs of the scan-mode view
     are exactly the loadable state plus the usable pins. *)
  let random_block rng =
    let vector =
      if params.weighted_random then Rtpg.weighted rng view
      else Rtpg.uniform rng view
    in
    let ff_values, pi_values = split_assignment scanned vector in
    Sequences.of_comb_test scanned config ~ff_values ~pi_values
  in
  let rng = Fst_gen.Rng.create params.random_seed in
  let blocks =
    List.rev !blocks @ List.init params.random_blocks (fun _ -> random_block rng)
  in
  let blocks =
    match params.truncate_blocks with
    | None -> blocks
    | Some frac ->
      let keep =
        max 1 (int_of_float (frac *. float_of_int (List.length blocks)))
      in
      List.filteri (fun i _ -> i < keep) blocks
  in
  let t1 = Sys.time () in
  let untestable_set = List.fold_left (fun s i -> i :: s) [] !untestable in
  let simulate =
    (* Untestable faults are excluded from simulation: they cannot be
       detected and would waste machine slots. *)
    Array.of_list
      (List.filter
         (fun i -> not (List.mem i untestable_set))
         (List.init (Array.length hard_faults) (fun i -> i)))
  in
  let sim_faults = Array.map (fun i -> hard_faults.(i)) simulate in
  let outcome =
    Fsim.Engine.detect_dropping ~jobs:params.jobs scanned ~faults:sim_faults
      ~observe:scanned.Circuit.outputs ~stimuli:blocks
  in
  let fsim_seconds = Sys.time () -. t1 in
  let detected = Array.make (Array.length hard_faults) false in
  Array.iteri
    (fun k i -> match outcome.(k) with
       | Some _ -> detected.(i) <- true
       | None -> ())
    simulate;
  let curve =
    if not params.capture_curve then [||]
    else begin
      let n_blocks = List.length blocks in
      let per_block = Array.make (n_blocks + 1) 0 in
      Array.iter
        (function
          | Some (block, _) -> per_block.(block + 1) <- per_block.(block + 1) + 1
          | None -> ())
        outcome;
      let acc = ref 0 in
      Array.mapi
        (fun i d ->
          acc := !acc + d;
          (i, !acc))
        per_block
    end
  in
  let n_detected = Array.fold_left (fun a b -> if b then a + 1 else a) 0 detected in
  let n_untestable = List.length !untestable in
  let remaining = ref [] in
  Array.iteri
    (fun i _ ->
      if (not detected.(i)) && not (List.mem i untestable_set) then
        remaining := i :: !remaining)
    hard_faults;
  ( {
      detected = n_detected;
      untestable = n_untestable;
      undetected = Array.length hard_faults - n_detected - n_untestable;
      vectors = List.length blocks;
      atpg_seconds;
      fsim_seconds;
      curve;
    },
    List.rev !remaining,
    List.map (fun i -> hard_faults.(i)) (List.rev !untestable),
    view,
    scoap )

(* --- Step 3: grouped sequential ATPG ------------------------------------ *)

(* Chain position lookup: flip-flop net -> (chain, position). *)
let positions_of config =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun pos ff -> Hashtbl.replace tbl ff (ch.Scan.index, pos))
        ch.Scan.ffs)
    config.Scan.chains;
  tbl

let predicates_of_bounds positions bounds =
  let controllable ff =
    match Hashtbl.find_opt positions ff with
    | None -> false (* every flip-flop lies on a chain after TPI *)
    | Some (chain, pos) -> (
      match List.assoc_opt chain bounds with
      | None -> true (* unaffected chain: fully controllable *)
      | Some (m, _) -> pos < m)
  in
  let observable ff =
    match Hashtbl.find_opt positions ff with
    | None -> false
    | Some (chain, pos) -> (
      match List.assoc_opt chain bounds with
      | None -> true
      | Some (_, o) -> pos >= o)
  in
  (controllable, observable)

type step3_state = {
  mutable detected3 : int;
  mutable untestable3 : int;
  mutable group_circuits : int;
  mutable final_circuits : int;
  alive : (int, unit) Hashtbl.t; (* remaining-fault index -> alive *)
}

(* Fault-simulates a realized sequence against every still-alive remaining
   fault and retires the detections; returns the detected indices. *)
let retire_detections ~jobs st scanned ~remaining_faults ~stim =
  let alive_ids =
    Hashtbl.fold (fun i () acc -> i :: acc) st.alive [] |> List.sort Int.compare
  in
  let faults_arr =
    Array.of_list (List.map (fun i -> remaining_faults.(i)) alive_ids)
  in
  let outcome =
    Fsim.Engine.detect_all ~jobs scanned ~faults:faults_arr
      ~observe:scanned.Circuit.outputs stim
  in
  let hits = ref [] in
  List.iteri
    (fun k i ->
      match outcome.(k) with
      | Some _ ->
        Hashtbl.remove st.alive i;
        st.detected3 <- st.detected3 + 1;
        hits := i :: !hits
      | None -> ())
    alive_ids;
  !hits

(* Runs sequential ATPG for one fault on the given model; on success,
   fault-simulates the realized sequence against every still-alive fault
   and retires the detections. *)
(* Sequential-ATPG planning for one fault: realize a detecting sequence on
   the bounded model, without touching any shared state (safe to run on a
   pool domain). *)
let plan_sequence scanned config ~remaining_faults ~bounds ~positions ~frames
    ~backtrack ~seconds target_idx =
  let controllable, observable = predicates_of_bounds positions bounds in
  let fault = remaining_faults.(target_idx) in
  match
    Seq.run ~deadline:(Sys.time () +. seconds) scanned
      ~constraints:config.Scan.constraints
      ~controllable_ff:controllable ~observable_ff:observable ~fault
      ~frames_list:frames ~backtrack_limit:backtrack
  with
  | Seq.Seq_aborted, _ -> None
  | Seq.Seq_test test, _ -> Some (Sequences.of_seq_test scanned config test)

let attack ~jobs st scanned config ~remaining_faults ~bounds ~positions
    ~frames ~backtrack ~seconds target_idx =
  if not (Hashtbl.mem st.alive target_idx) then false
  else
    match
      plan_sequence scanned config ~remaining_faults ~bounds ~positions
        ~frames ~backtrack ~seconds target_idx
    with
    | None -> false
    | Some stim ->
      let hits = retire_detections ~jobs st scanned ~remaining_faults ~stim in
      List.mem target_idx hits

let run_step3 ~params scanned config ~classify ~hard_index ~remaining ~view
    ~scoap =
  let t0 = Sys.time () in
  let remaining_faults =
    Array.of_list
      (List.map (fun i -> classify.Classify.infos.(hard_index.(i)).Classify.fault) remaining)
  in
  let footprints =
    List.mapi
      (fun k i ->
        let info = classify.Classify.infos.(hard_index.(i)) in
        let locations =
          List.map (fun (chain, seg, _) -> (chain, seg)) info.Classify.locations
        in
        Group.footprint_of ~index:k ~locations)
      remaining
  in
  let maxsize = Sequences.max_chain_length config in
  let dist =
    Group.paper_params ~maxsize ~floor_scale:params.dist_floor_scale
  in
  let groups = Group.make dist footprints in
  let positions = positions_of config in
  let st =
    {
      detected3 = 0;
      untestable3 = 0;
      group_circuits = 0;
      final_circuits = 0;
      alive = Hashtbl.create 64;
    }
  in
  let untestable_faults3 = ref [] in
  List.iteri (fun k _ -> Hashtbl.replace st.alive k ()) remaining;
  let any_alive fps = List.exists (fun fp -> Hashtbl.mem st.alive fp.Group.index) fps in
  let targets_of group =
    match group with
    | Group.Solo fp -> [ fp ]
    | Group.Shared { leader; members } -> leader :: members
    | Group.Cluster { members; _ } -> members
  in
  if params.jobs <= 1 then
    (* One core: the original fully-dropped order — every realized sequence
       retires faults before the next target is even attacked. *)
    List.iter
      (fun group ->
        let bounds = Group.bounds_of_group group in
        let targets = targets_of group in
        if any_alive targets then begin
          st.group_circuits <- st.group_circuits + 1;
          List.iter
            (fun fp ->
              ignore
                (attack ~jobs:1 st scanned config ~remaining_faults ~bounds
                   ~positions ~frames:params.frames
                   ~backtrack:params.seq_backtrack
                   ~seconds:params.seq_fault_seconds fp.Group.index))
            targets
        end)
      groups
  else begin
    (* Multicore: waves of up to [jobs] groups. Planning (sequential ATPG on
       the group's bounded model) runs on the pool against a snapshot of the
       alive set; realized sequences are then committed in group order on
       the main domain, so the merge order — and hence the result for a
       fixed [jobs] — is deterministic. Fault dropping still happens between
       waves and at commit time, only not between the groups of one wave. *)
    let jobs = params.jobs in
    let groups_arr = Array.of_list groups in
    let n_groups = Array.length groups_arr in
    let pos = ref 0 in
    while !pos < n_groups do
      let wave = ref [] in
      while List.length !wave < jobs && !pos < n_groups do
        let group = groups_arr.(!pos) in
        incr pos;
        let targets = targets_of group in
        if any_alive targets then begin
          st.group_circuits <- st.group_circuits + 1;
          wave := (Group.bounds_of_group group, targets) :: !wave
        end
      done;
      let snapshot = Hashtbl.copy st.alive in
      let plans =
        Pool.map_array ~jobs ~chunk:1
          (fun (bounds, targets) ->
            List.filter_map
              (fun fp ->
                let i = fp.Group.index in
                if not (Hashtbl.mem snapshot i) then None
                else
                  plan_sequence scanned config ~remaining_faults ~bounds
                    ~positions ~frames:params.frames
                    ~backtrack:params.seq_backtrack
                    ~seconds:params.seq_fault_seconds i
                  |> Option.map (fun stim -> (i, stim)))
              targets)
          (Array.of_list (List.rev !wave))
      in
      Array.iter
        (List.iter (fun (i, stim) ->
             if Hashtbl.mem st.alive i then
               ignore
                 (retire_detections ~jobs st scanned ~remaining_faults ~stim)))
        plans
    done
  end;
  (* Final faults: prove undetectable through the relaxed combinational
     model where possible, otherwise target individually with a larger
     budget (the paper's "additional time"). *)
  let finals = Hashtbl.fold (fun i () acc -> i :: acc) st.alive [] |> List.sort Int.compare in
  List.iter
    (fun i ->
      if Hashtbl.mem st.alive i then begin
        let fault = remaining_faults.(i) in
        match
          Podem.run ~backtrack_limit:params.final_backtrack ~scoap view
            ~faults:[ fault ]
        with
        | Podem.Untestable, _ ->
          Hashtbl.remove st.alive i;
          st.untestable3 <- st.untestable3 + 1;
          untestable_faults3 := fault :: !untestable_faults3
        | Podem.Test assignment, _ ->
          (* The larger budget found a combinational test that step 2
             missed; realize and confirm it sequentially before falling
             back to the restricted sequential model. *)
          let ff_values, pi_values = split_assignment scanned assignment in
          let stim =
            Sequences.of_comb_test scanned config ~ff_values ~pi_values
          in
          ignore
            (retire_detections ~jobs:params.jobs st scanned ~remaining_faults
               ~stim);
          if Hashtbl.mem st.alive i then begin
            let fp = List.nth footprints i in
            st.final_circuits <- st.final_circuits + 1;
            ignore
              (attack ~jobs:params.jobs st scanned config ~remaining_faults
                 ~bounds:fp.Group.spans ~positions ~frames:params.final_frames
                 ~backtrack:params.final_backtrack
                 ~seconds:params.final_fault_seconds i)
          end
        | Podem.Aborted, _ ->
          let fp = List.nth footprints i in
          st.final_circuits <- st.final_circuits + 1;
          ignore
            (attack ~jobs:params.jobs st scanned config ~remaining_faults
               ~bounds:fp.Group.spans ~positions ~frames:params.final_frames
               ~backtrack:params.final_backtrack
               ~seconds:params.final_fault_seconds i)
      end)
    finals;
  let undetected_idx =
    Hashtbl.fold (fun i () acc -> i :: acc) st.alive [] |> List.sort Int.compare
  in
  ( {
      detected = st.detected3;
      untestable = st.untestable3;
      undetected = List.length undetected_idx;
      group_circuits = st.group_circuits;
      final_circuits = st.final_circuits;
      seconds = Sys.time () -. t0;
    },
    List.map (fun i -> remaining_faults.(i)) undetected_idx,
    List.rev !untestable_faults3 )

let run ?(params = default_params) scanned config =
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let t0 = Sys.time () in
  let classify = Classify.run scanned config faults in
  let classify_seconds = Sys.time () -. t0 in
  let hard_index = classify.Classify.hard in
  let hard_faults =
    Array.map (fun i -> classify.Classify.infos.(i).Classify.fault) hard_index
  in
  let step2, remaining, untestable2, view, scoap =
    run_step2 ~params scanned config ~hard_faults
  in
  let step3, undetected, untestable3 =
    run_step3 ~params scanned config ~classify ~hard_index ~remaining ~view
      ~scoap
  in
  {
    scanned;
    config;
    faults;
    classify;
    classify_seconds;
    step2;
    step3;
    undetected;
    untestable_faults = untestable2 @ untestable3;
  }
