open Fst_netlist
open Fst_fault
open Fst_fsim
open Fst_atpg
open Fst_tpi
module Pool = Fst_exec.Pool
module Clock = Fst_exec.Clock
module Budget = Fst_exec.Budget
module Retry = Fst_exec.Retry
module Chaos = Fst_exec.Chaos
module Sink = Fst_obs.Sink
module Metrics = Fst_obs.Metrics
module Trace = Fst_obs.Trace
module Json = Fst_obs.Json

exception Preflight_failed of Fst_lint.Diagnostic.t list

type step2 = {
  detected : int;
  untestable : int;
  undetected : int;
  vectors : int;
  atpg_seconds : float;
  fsim_seconds : float;
  curve : (int * int) array;
}

type step3 = {
  detected : int;
  untestable : int;
  undetected : int;
  group_circuits : int;
  final_circuits : int;
  seconds : float;
}

type phase_aborts = {
  phase : string;
  budget_exhausted : bool;
  atpg_aborts : int;
  cancelled_groups : int;
  failed : int;
}

type aborts = {
  phases : phase_aborts list;
  aborted_faults : int;
  failed_faults : int;
}

let budget_exhausted a = List.exists (fun p -> p.budget_exhausted) a.phases
let atpg_aborts a = List.fold_left (fun n p -> n + p.atpg_aborts) 0 a.phases

let cancelled_groups a =
  List.fold_left (fun n p -> n + p.cancelled_groups) 0 a.phases

let failed_tasks a = List.fold_left (fun n p -> n + p.failed) 0 a.phases

type atpg_stats = {
  podem_runs : int;
  podem_backtracks : int;
  podem_decisions : int;
  podem_implications : int;
  podem_aborted_limit : int;
  podem_aborted_deadline : int;
  seq_runs : int;
  seq_backtracks : int;
}

type result = {
  scanned : Circuit.t;
  config : Scan.config;
  faults : Fault.t array;
  classify : Classify.t;
  classify_seconds : float;
  step2 : step2;
  step3 : step3;
  undetected : Fault.t list;
  untestable_faults : Fault.t list;
  untestable_static : Fault.t list;
  aborted : Fault.t list;
  failed : Fault.t list;
  aborts : aborts;
  atpg : atpg_stats;
}

let total_faults r = Array.length r.faults
let affecting r = r.classify.Classify.affecting

(* Everything the chain-testing phase credits as detected: the category-1
   faults (alternating sequence) plus the hard faults that neither stayed
   undetected (or budget-aborted) nor were proven untestable. *)
let chain_detected_faults r =
  let open_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.undetected;
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.aborted;
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.failed;
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.untestable_faults;
  List.iter (fun f -> Hashtbl.replace open_set f ()) r.untestable_static;
  let easy =
    Array.to_list r.classify.Classify.easy
    |> List.map (fun i -> r.faults.(i))
  in
  let hard_detected =
    Array.to_list r.classify.Classify.hard
    |> List.filter_map (fun i ->
           let f = r.faults.(i) in
           if Hashtbl.mem open_set f then None else Some f)
  in
  easy @ hard_detected

(* Splits a combinational-model assignment into flip-flop state and
   primary-input parts. *)
let split_assignment c assignment =
  List.partition (fun (net, _) -> Circuit.is_dff c net) assignment

(* --- abort accounting --------------------------------------------------- *)

(* Mutable per-phase accounting, threaded through the phases and stored in
   every checkpoint so a resumed run keeps what the interrupted one already
   spent or skipped. *)
type acct = {
  mutable cl_late : bool;
  mutable s2a_late : bool;
  mutable s2a_aborts : int;
  mutable s2a_failed : int;
  mutable s2f_late : bool;
  mutable s2f_failed : int;
  mutable s3_late : bool;
  mutable s3_aborts : int;
  mutable s3_cancelled : int;
  mutable s3_failed : int;
  mutable s3_failed_groups : int;
  mutable fin_late : bool;
  mutable fin_aborts : int;
  mutable fin_cancelled : int;
  mutable fin_failed : int;
  (* Aggregate ATPG engine statistics (satellite: they used to be computed
     and thrown away). PODEM/Seq stats from pool domains are committed
     here on the main domain in deterministic wave order, and the record
     rides inside every checkpoint so a resumed run keeps the totals. *)
  mutable p_runs : int;
  mutable p_backtracks : int;
  mutable p_decisions : int;
  mutable p_implications : int;
  mutable p_ab_limit : int;
  mutable p_ab_deadline : int;
  mutable s_runs : int;
  mutable s_backtracks : int;
}

let fresh_acct () =
  {
    cl_late = false;
    s2a_late = false;
    s2a_aborts = 0;
    s2a_failed = 0;
    s2f_late = false;
    s2f_failed = 0;
    s3_late = false;
    s3_aborts = 0;
    s3_cancelled = 0;
    s3_failed = 0;
    s3_failed_groups = 0;
    fin_late = false;
    fin_aborts = 0;
    fin_cancelled = 0;
    fin_failed = 0;
    p_runs = 0;
    p_backtracks = 0;
    p_decisions = 0;
    p_implications = 0;
    p_ab_limit = 0;
    p_ab_deadline = 0;
    s_runs = 0;
    s_backtracks = 0;
  }

let add_podem_stats acct (s : Podem.stats) =
  acct.p_runs <- acct.p_runs + 1;
  acct.p_backtracks <- acct.p_backtracks + s.Podem.backtracks;
  acct.p_decisions <- acct.p_decisions + s.Podem.decisions;
  acct.p_implications <- acct.p_implications + s.Podem.implications

let add_seq_stats acct (s : Seq.stats) =
  acct.s_runs <- acct.s_runs + s.Seq.runs;
  acct.s_backtracks <- acct.s_backtracks + s.Seq.backtracks

let atpg_stats_of acct =
  {
    podem_runs = acct.p_runs;
    podem_backtracks = acct.p_backtracks;
    podem_decisions = acct.p_decisions;
    podem_implications = acct.p_implications;
    podem_aborted_limit = acct.p_ab_limit;
    podem_aborted_deadline = acct.p_ab_deadline;
    seq_runs = acct.s_runs;
    seq_backtracks = acct.s_backtracks;
  }

let aborts_of acct ~aborted_faults ~failed_faults =
  {
    phases =
      [
        { phase = "classify"; budget_exhausted = acct.cl_late;
          atpg_aborts = 0; cancelled_groups = 0; failed = 0 };
        { phase = "step2-atpg"; budget_exhausted = acct.s2a_late;
          atpg_aborts = acct.s2a_aborts; cancelled_groups = 0;
          failed = acct.s2a_failed };
        { phase = "step2-fsim"; budget_exhausted = acct.s2f_late;
          atpg_aborts = 0; cancelled_groups = 0;
          failed = acct.s2f_failed };
        { phase = "step3"; budget_exhausted = acct.s3_late;
          atpg_aborts = acct.s3_aborts;
          cancelled_groups = acct.s3_cancelled;
          failed = acct.s3_failed };
        { phase = "finals"; budget_exhausted = acct.fin_late;
          atpg_aborts = acct.fin_aborts;
          cancelled_groups = acct.fin_cancelled;
          failed = acct.fin_failed };
      ];
    aborted_faults;
    failed_faults;
  }

(* --- checkpoint state --------------------------------------------------- *)

(* Bump whenever the marshalled layout below (or anything it embeds)
   changes; [Checkpoint.load] rejects other versions.
   v3: failed_flag + chaos counters + acct failed fields.
   v4: phase-0 static-analysis summary ([c_sca]). *)
let ckpt_version = 4

(* What the flow keeps of the phase-0 static analysis: the per-hard-fault
   untestability verdicts (everything later phases consult) and the
   analysis statistics for the end-of-run metrics. The implication graph
   itself is not persisted — the analysis is pure and deterministic, so a
   resumed run that still needs the PODEM hints just recomputes it. *)
type sca_summary = {
  static_flag : bool array;  (* per hard fault: statically proven untestable *)
  sca_stats : Fst_sca.Sca.stats;
}

type plan = {
  blocks : Fsim.stimulus list;
  untestable2 : int list;  (* indices into the hard-fault array, ascending *)
  attempted : int;  (* hard faults that actually got their PODEM attempt *)
  plan_atpg_seconds : float;
  rng_state : int64;
}

type s2_state = {
  s2_step2 : step2;
  s2_remaining : int list;  (* indices into the hard-fault array, ascending *)
}

type s3_progress = {
  cursor : int;  (* groups already committed *)
  alive_idx : int list;  (* step-3 indices still alive *)
  p_detected3 : int;
  p_group_circuits : int;
  seconds_before : float;  (* step-3 wall clock spent before this resume *)
}

type finish = {
  f_step3 : step3;
  undetected_idx : int list;  (* indices into the remaining-fault array *)
  aborted_idx : int list;
  untestable3_idx : int list;
}

type ckpt = {
  mutable c_classify : (Classify.t * float) option;
  mutable c_sca : sca_summary option;
  mutable c_plan : plan option;
  mutable c_s2 : s2_state option;
  mutable c_s3 : s3_progress option;
  mutable c_fin : finish option;
  mutable aborted_flag : bool array;  (* per hard fault: denied an attempt *)
  mutable failed_flag : bool array;  (* per hard fault: quarantined *)
  (* Chaos hit counters at save time: restoring them on resume makes a
     killed-and-resumed run replay the rest of an injection plan from
     the same sequence numbers as the uninterrupted run ([Chaos]).
     Empty when the harness is disarmed. *)
  mutable c_chaos : int array;
  acct : acct;
}

let fresh_ckpt () =
  {
    c_classify = None;
    c_sca = None;
    c_plan = None;
    c_s2 = None;
    c_s3 = None;
    c_fin = None;
    aborted_flag = [||];
    failed_flag = [||];
    c_chaos = [||];
    acct = fresh_acct ();
  }

(* A checkpoint is only valid against the exact circuit, scan configuration
   and parameters that produced it. The sink is excluded: it holds mutexes
   and closures (unmarshalable), and attaching observability must not
   invalidate a checkpoint taken without it. [preflight] is excluded for
   the same reason: the lint pass is a pure observer, so toggling it must
   not invalidate a checkpoint either. *)
let fingerprint scanned config (cfg : Config.t) =
  (* The semantic knobs come pre-digested from [Config.fingerprint]
     (shared with the serve cache's content address); the checkpoint
     additionally ties in [jobs] — step-3 wave planning depends on it —
     and the exact circuit and scan configuration. *)
  let key = (cfg.Config.jobs, Config.fingerprint cfg) in
  Digest.to_hex (Digest.string (Marshal.to_string (scanned, config, key) []))

(* --- instrumentation helpers ------------------------------------------- *)

(* Times an individual ATPG call and records a trace span when it clears
   the sink's threshold; a single branch when observability is off. Safe
   on pool domains (the trace buffer is mutex-protected and the span
   lands on the recording domain's tid). *)
let timed_atpg (sink : Sink.t) name f =
  if not sink.Sink.enabled then f ()
  else
    match sink.Sink.trace with
    | None -> f ()
    | Some tr ->
      let t0 = Clock.now () in
      let r = f () in
      let dt = Clock.now () -. t0 in
      if dt >= sink.Sink.atpg_span_s then
        Trace.complete tr ~name ~cat:"atpg" ~start_s:t0 ~dur_s:dt;
      r

(* Wraps one phase body: start/end events, a phase span, a wall-clock
   gauge, and Gc gauges sampled at the phase boundary. *)
let phase_obs (sink : Sink.t) name f =
  if not sink.Sink.enabled then f ()
  else begin
    Sink.event sink ~kind:"phase_start" [ ("phase", Json.String name) ];
    let t0 = Clock.now () in
    let r = Sink.span sink ~name ~cat:"phase" f in
    let dt = Clock.now () -. t0 in
    let m = sink.Sink.metrics in
    Metrics.Gauge.set (Metrics.gauge m ("flow." ^ name ^ ".wall_s")) dt;
    let g = Gc.quick_stat () in
    Metrics.Gauge.set
      (Metrics.gauge m "flow.gc.heap_words")
      (float_of_int g.Gc.heap_words);
    Metrics.Gauge.set
      (Metrics.gauge m "flow.gc.minor_collections")
      (float_of_int g.Gc.minor_collections);
    Metrics.Gauge.set
      (Metrics.gauge m "flow.gc.major_collections")
      (float_of_int g.Gc.major_collections);
    Sink.event sink ~kind:"phase_end"
      [ ("phase", Json.String name); ("wall_s", Json.Float dt) ];
    r
  end

(* --- Step 2: combinational ATPG + sequential fault simulation ---------- *)

let plan_step2 ~(cfg : Config.t) ~budget ~acct ~aborted_flag ~failed_flag
    ~static_flag ~impossible view scoap scanned config ~hard_faults =
  let sink = cfg.Config.sink in
  let keep_going = cfg.Config.on_error = `Keep_going in
  let dl = Budget.deadline budget Budget.Step2_atpg in
  let t0 = Clock.now () in
  let n = Array.length hard_faults in
  let blocks = ref [] and untestable = ref [] in
  let n_tests = ref 0 in
  let i = ref 0 in
  while !i < n && not (Clock.expired dl) do
    if static_flag.(!i) then
      (* Statically proven untestable (phase 0): no attempt is owed, so the
         fault is neither attempted here nor abortable below. *)
      incr i
    else begin
      (* Per-fault isolation under [`Keep_going]: a raising ATPG attempt
         quarantines this fault (failed bucket, excluded from step 3) and
         the loop moves on; under [`Fail_fast] the exception propagates as
         it always did. *)
      (try
         match
           timed_atpg sink
             (Printf.sprintf "podem[%d]" !i)
             (fun () ->
               Podem.run ~backtrack_limit:cfg.Config.comb_backtrack
                 ~should_abort:(fun () -> Clock.expired dl)
                 ~scoap ~impossible view ~faults:[ hard_faults.(!i) ])
         with
         | Podem.Test assignment, stats ->
           add_podem_stats acct stats;
           incr n_tests;
           let ff_values, pi_values = split_assignment scanned assignment in
           blocks :=
             Sequences.of_comb_test scanned config ~ff_values ~pi_values
             :: !blocks
         | Podem.Untestable, stats ->
           add_podem_stats acct stats;
           untestable := !i :: !untestable
         | Podem.Aborted, stats ->
           add_podem_stats acct stats;
           acct.s2a_aborts <- acct.s2a_aborts + 1;
           (* A deadline-tripped abort (as opposed to a backtrack-limit one)
              means the fault was denied its full attempt. *)
           if Clock.expired dl then begin
             acct.p_ab_deadline <- acct.p_ab_deadline + 1;
             aborted_flag.(!i) <- true
           end
           else acct.p_ab_limit <- acct.p_ab_limit + 1
       with e when keep_going ->
         failed_flag.(!i) <- true;
         acct.s2a_failed <- acct.s2a_failed + 1;
         Sink.event sink ~kind:"fault_failed"
           [
             ("phase", Json.String "step2-atpg");
             ("index", Json.Int !i);
             ("error", Json.String (Printexc.to_string e));
           ]);
      if sink.Sink.enabled then
        Sink.tick sink ~phase:"step2-atpg" ~done_:(!i + 1) ~total:n
          ~detected:!n_tests ~failed:acct.s2a_failed
          ~budget_left:(Clock.remaining dl) ();
      incr i
    end
  done;
  let attempted = !i in
  if attempted < n then begin
    acct.s2a_late <- true;
    for k = attempted to n - 1 do
      if not static_flag.(k) then aborted_flag.(k) <- true
    done
  end;
  (* Deterministic random scan-mode tests appended after the ATPG set (the
     paper's random-vector option): they mop up aborted-ATPG faults during
     the same fault-simulation pass. The free inputs of the scan-mode view
     are exactly the loadable state plus the usable pins. *)
  let random_block rng =
    let vector =
      if cfg.Config.weighted_random then Rtpg.weighted rng view
      else Rtpg.uniform rng view
    in
    let ff_values, pi_values = split_assignment scanned vector in
    Sequences.of_comb_test scanned config ~ff_values ~pi_values
  in
  let rng = Fst_gen.Rng.create cfg.Config.random_seed in
  let blocks =
    List.rev !blocks
    @ List.init cfg.Config.random_blocks (fun _ -> random_block rng)
  in
  let blocks =
    match cfg.Config.truncate_blocks with
    | None -> blocks
    | Some frac ->
      let keep =
        max 1 (int_of_float (frac *. float_of_int (List.length blocks)))
      in
      List.filteri (fun i _ -> i < keep) blocks
  in
  {
    blocks;
    untestable2 = List.rev !untestable;
    attempted;
    plan_atpg_seconds = Clock.now () -. t0;
    rng_state = Fst_gen.Rng.state rng;
  }

let fsim_step2 ~(cfg : Config.t) ~engine ~budget ~acct ~failed_flag
    ~static_flag scanned ~hard_faults ~(plan : plan) =
  let sink = cfg.Config.sink in
  let keep_going = cfg.Config.on_error = `Keep_going in
  let dl = Budget.deadline budget Budget.Step2_fsim in
  let t1 = Clock.now () in
  let n_hit = ref 0 in
  let n = Array.length hard_faults in
  let untestable_set = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace untestable_set i ()) plan.untestable2;
  (* Untestable faults — PODEM-proven and statically proven alike — are
     excluded from simulation: they cannot be detected and would waste
     machine slots. *)
  let simulate =
    Array.of_list
      (List.filter
         (fun i -> (not (Hashtbl.mem untestable_set i)) && not static_flag.(i))
         (List.init n (fun i -> i)))
  in
  let sim_faults = Array.map (fun i -> hard_faults.(i)) simulate in
  let ns = Array.length simulate in
  let outcome = Array.make ns None in
  (* Block-at-a-time fault simulation with cross-block dropping — the same
     results as a single [detect_dropping] pass, but the budget is checked
     between blocks so a tripped deadline keeps every detection made so
     far. *)
  let blocks_arr = Array.of_list plan.blocks in
  let nb = Array.length blocks_arr in
  (* Undetected faults are kept as a prefix of [pending], compacted in
     place after each block — no per-block rescans of the whole list. *)
  let pending = Array.init ns (fun k -> k) in
  let n_pending = ref ns in
  let b = ref 0 and stopped = ref false in
  while !b < nb && not !stopped do
    if Clock.expired dl then begin
      stopped := true;
      acct.s2f_late <- true
    end
    else begin
      if !n_pending = 0 then stopped := true
      else begin
        let alive = Array.sub pending 0 !n_pending in
        let faults = Array.map (fun k -> sim_faults.(k)) alive in
        let simulate_block () =
          Fsim.Engine.detect_all ~obs:sink ~engine ~jobs:cfg.Config.jobs
            scanned ~faults ~observe:scanned.Circuit.outputs blocks_arr.(!b)
        in
        match
          if keep_going then Retry.run simulate_block
          else Stdlib.Ok (simulate_block ())
        with
        | Stdlib.Error (e, _bt) ->
          (* Cohort containment: cross-block fault dropping means a lost
             block could have changed every still-pending fault's
             downstream outcome, so a permanently failing engine call
             quarantines the whole pending cohort and ends the phase —
             detections already made stay trustworthy. *)
          for j = 0 to !n_pending - 1 do
            failed_flag.(simulate.(pending.(j))) <- true
          done;
          acct.s2f_failed <- acct.s2f_failed + !n_pending;
          n_pending := 0;
          stopped := true;
          Sink.event sink ~kind:"cohort_failed"
            [
              ("phase", Json.String "step2-fsim");
              ("faults", Json.Int acct.s2f_failed);
              ("error", Json.String (Printexc.to_string e));
            ]
        | Stdlib.Ok res ->
          Array.iteri
            (fun j k ->
              match res.(j) with
              | Some t ->
                outcome.(k) <- Some (!b, t);
                (* A detection supersedes an earlier step-2 quarantine:
                   the fault is provably covered. *)
                failed_flag.(simulate.(k)) <- false;
                incr n_hit
              | None -> ())
            alive;
          let kept = ref 0 in
          for j = 0 to !n_pending - 1 do
            let k = pending.(j) in
            if outcome.(k) = None then begin
              pending.(!kept) <- k;
              incr kept
            end
          done;
          n_pending := !kept;
          incr b;
          if sink.Sink.enabled then begin
            Metrics.Counter.incr
              (Metrics.counter sink.Sink.metrics "flow.step2.blocks");
            Sink.tick sink ~phase:"step2-fsim" ~done_:!b ~total:nb
              ~detected:!n_hit
              ~failed:(acct.s2a_failed + acct.s2f_failed)
              ~budget_left:(Clock.remaining dl) ()
          end
      end
    end
  done;
  let fsim_seconds = Clock.now () -. t1 in
  let detected = Array.make n false in
  Array.iteri
    (fun k i -> match outcome.(k) with
       | Some _ -> detected.(i) <- true
       | None -> ())
    simulate;
  let curve =
    if not cfg.Config.capture_curve then [||]
    else begin
      let per_block = Array.make (nb + 1) 0 in
      Array.iter
        (function
          | Some (block, _) -> per_block.(block + 1) <- per_block.(block + 1) + 1
          | None -> ())
        outcome;
      let acc = ref 0 in
      Array.mapi
        (fun i d ->
          acc := !acc + d;
          (i, !acc))
        per_block
    end
  in
  let n_detected =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 detected
  in
  let n_untestable = List.length plan.untestable2 in
  let n_static =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 static_flag
  in
  let remaining = ref [] in
  (* Quarantined faults are excluded from step 3: a fault whose ATPG
     crashed, or that sat in a failed simulation cohort, stays in the
     failed bucket rather than getting further (possibly poisoned)
     attention. Statically proven faults are settled and take no further
     part either. *)
  for i = n - 1 downto 0 do
    if
      (not detected.(i))
      && (not (Hashtbl.mem untestable_set i))
      && (not static_flag.(i))
      && not failed_flag.(i)
    then remaining := i :: !remaining
  done;
  ( {
      detected = n_detected;
      untestable = n_untestable;
      undetected = n - n_detected - n_untestable - n_static;
      vectors = nb;
      atpg_seconds = plan.plan_atpg_seconds;
      fsim_seconds;
      curve;
    },
    !remaining )

(* --- Step 3: grouped sequential ATPG ------------------------------------ *)

(* Chain position lookup: flip-flop net -> (chain, position). *)
let positions_of config =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun pos ff -> Hashtbl.replace tbl ff (ch.Scan.index, pos))
        ch.Scan.ffs)
    config.Scan.chains;
  tbl

let predicates_of_bounds positions bounds =
  let controllable ff =
    match Hashtbl.find_opt positions ff with
    | None -> false (* every flip-flop lies on a chain after TPI *)
    | Some (chain, pos) -> (
      match List.assoc_opt chain bounds with
      | None -> true (* unaffected chain: fully controllable *)
      | Some (m, _) -> pos < m)
  in
  let observable ff =
    match Hashtbl.find_opt positions ff with
    | None -> false
    | Some (chain, pos) -> (
      match List.assoc_opt chain bounds with
      | None -> true
      | Some (_, o) -> pos >= o)
  in
  (controllable, observable)

type step3_state = {
  mutable detected3 : int;
  mutable untestable3 : int;
  mutable group_circuits : int;
  mutable final_circuits : int;
  alive : (int, unit) Hashtbl.t; (* remaining-fault index -> alive *)
}

(* Fault-simulates a realized sequence against every still-alive remaining
   fault and retires the detections; returns the detected indices. *)
let retire_detections ~sink ~engine ~jobs st scanned ~remaining_faults ~stim =
  let alive_ids =
    Hashtbl.fold (fun i () acc -> i :: acc) st.alive [] |> List.sort Int.compare
  in
  let faults_arr =
    Array.of_list (List.map (fun i -> remaining_faults.(i)) alive_ids)
  in
  let outcome =
    Fsim.Engine.detect_all ~obs:sink ~engine ~jobs scanned ~faults:faults_arr
      ~observe:scanned.Circuit.outputs stim
  in
  let hits = ref [] in
  List.iteri
    (fun k i ->
      match outcome.(k) with
      | Some _ ->
        Hashtbl.remove st.alive i;
        st.detected3 <- st.detected3 + 1;
        hits := i :: !hits
      | None -> ())
    alive_ids;
  !hits

(* Sequential-ATPG planning for one fault: realize a detecting sequence on
   the bounded model, without touching any shared state (safe to run on a
   pool domain). [should_abort] folds the per-fault wall-clock deadline
   with the wave's cancellation token, so one stuck target cannot pin a
   domain past its budget. *)
let plan_sequence ~sink scanned config ~remaining_faults ~bounds ~positions
    ~frames ~backtrack ~should_abort target_idx =
  let controllable, observable = predicates_of_bounds positions bounds in
  let fault = remaining_faults.(target_idx) in
  match
    timed_atpg sink
      (Printf.sprintf "seq[%d]" target_idx)
      (fun () ->
        Seq.run ~should_abort scanned ~constraints:config.Scan.constraints
          ~controllable_ff:controllable ~observable_ff:observable ~fault
          ~frames_list:frames ~backtrack_limit:backtrack)
  with
  | Seq.Seq_aborted, stats -> (None, stats)
  | Seq.Seq_test test, stats ->
    (Some (Sequences.of_seq_test scanned config test), stats)

let run_step3 ~(cfg : Config.t) ~engine ~budget ~acct ~aborted_flag
    ~failed_flag ~impossible ~progress ~save_progress scanned config ~classify
    ~hard_index ~remaining ~view ~scoap =
  let sink = cfg.Config.sink in
  let keep_going = cfg.Config.on_error = `Keep_going in
  let dl3 = Budget.deadline budget Budget.Step3 in
  let t0 = Clock.now () in
  let remaining_arr = Array.of_list remaining in
  let remaining_faults =
    Array.map
      (fun i -> classify.Classify.infos.(hard_index.(i)).Classify.fault)
      remaining_arr
  in
  let footprints =
    Array.of_list
      (List.mapi
         (fun k i ->
           let info = classify.Classify.infos.(hard_index.(i)) in
           let locations =
             List.map
               (fun (chain, seg, _) -> (chain, seg))
               info.Classify.locations
           in
           Group.footprint_of ~index:k ~locations)
         remaining)
  in
  let maxsize = Sequences.max_chain_length config in
  let dist =
    Group.paper_params ~maxsize ~floor_scale:cfg.Config.dist_floor_scale
  in
  let groups = Array.of_list (Group.make dist (Array.to_list footprints)) in
  let n_groups = Array.length groups in
  let positions = positions_of config in
  let st =
    {
      detected3 = 0;
      untestable3 = 0;
      group_circuits = 0;
      final_circuits = 0;
      alive = Hashtbl.create 64;
    }
  in
  let cursor = ref 0 and seconds_before = ref 0.0 in
  (match progress with
   | None -> List.iteri (fun k _ -> Hashtbl.replace st.alive k ()) remaining
   | Some p ->
     (* Resume mid-step-3: the groups are recomputed deterministically from
        the classification, so only the cursor, the alive set and the
        counters need restoring. *)
     List.iter (fun k -> Hashtbl.replace st.alive k ()) p.alive_idx;
     cursor := p.cursor;
     st.detected3 <- p.p_detected3;
     st.group_circuits <- p.p_group_circuits;
     seconds_before := p.seconds_before);
  let untestable_idx3 = ref [] in
  let any_alive fps =
    List.exists (fun fp -> Hashtbl.mem st.alive fp.Group.index) fps
  in
  let targets_of group =
    match group with
    | Group.Solo fp -> [ fp ]
    | Group.Shared { leader; members } -> leader :: members
    | Group.Cluster { members; _ } -> members
  in
  let flag_idx i = aborted_flag.(remaining_arr.(i)) <- true in
  let fail_idx i = failed_flag.(remaining_arr.(i)) <- true in
  let token = Pool.token () in
  (* Set when an engine call inside a commit (retirement fault-sim)
     permanently fails under [`Keep_going]. *)
  let engine_poisoned = ref false in
  (* Retirement with the failure policy applied: under [`Fail_fast] the
     engine call propagates exceptions exactly as before; under
     [`Keep_going] it is retried, and a permanent failure poisons the
     surrounding cohort instead of raising. *)
  let retire ~jobs stim =
    if not keep_going then
      ignore
        (retire_detections ~sink ~engine ~jobs st scanned ~remaining_faults
           ~stim)
    else
      match
        Retry.run (fun () ->
            retire_detections ~sink ~engine ~jobs st scanned
              ~remaining_faults ~stim)
      with
      | Stdlib.Ok _ -> ()
      | Stdlib.Error (e, _bt) ->
        engine_poisoned := true;
        Sink.event sink ~kind:"engine_failed"
          [
            ("phase", Json.String "step3");
            ("error", Json.String (Printexc.to_string e));
          ]
  in
  (* Cohort containment: once a group's planning task or a retirement
     engine call permanently fails, every still-alive fault's downstream
     outcome is suspect (the missing stimuli would have retired an
     unknowable subset of them), so the whole remaining cohort moves to
     the failed bucket. Retries make this a last resort, and the
     already-committed detections stay trustworthy. *)
  let cohort_fail phase =
    let alive_ids =
      Hashtbl.fold (fun i () acc -> i :: acc) st.alive []
      |> List.sort Int.compare
    in
    let count = List.length alive_ids in
    List.iter
      (fun i ->
        fail_idx i;
        Hashtbl.remove st.alive i)
      alive_ids;
    (match phase with
     | `Step3 -> acct.s3_failed <- acct.s3_failed + count
     | `Finals -> acct.fin_failed <- acct.fin_failed + count);
    Sink.event sink ~kind:"cohort_failed"
      [
        ( "phase",
          Json.String (match phase with `Step3 -> "step3" | `Finals -> "finals")
        );
        ("faults", Json.Int count);
      ]
  in
  let checkpoint_wave () =
    save_progress
      {
        cursor = !cursor;
        alive_idx =
          Hashtbl.fold (fun i () acc -> i :: acc) st.alive []
          |> List.sort Int.compare;
        p_detected3 = st.detected3;
        p_group_circuits = st.group_circuits;
        seconds_before = !seconds_before +. (Clock.now () -. t0);
      }
  in
  (* Accounts every group from the cursor onward as cancelled (with its
     alive members denied) when the phase budget trips. *)
  let drain_cancelled () =
    acct.s3_late <- true;
    for g = !cursor to n_groups - 1 do
      let alive_targets =
        List.filter
          (fun fp -> Hashtbl.mem st.alive fp.Group.index)
          (targets_of groups.(g))
      in
      if alive_targets <> [] then begin
        acct.s3_cancelled <- acct.s3_cancelled + 1;
        List.iter (fun fp -> flag_idx fp.Group.index) alive_targets
      end
    done;
    cursor := n_groups
  in
  while !cursor < n_groups do
    if Clock.expired dl3 || Pool.cancelled token then drain_cancelled ()
    else if cfg.Config.jobs <= 1 && not keep_going then begin
      (* One core, fail-fast: the original fully-dropped order — every
         realized sequence retires faults before the next target is even
         attacked. One group per wave, checkpointed after commit.
         [`Keep_going] always takes the wave path below (even on one
         core) so that failed groups are isolated per task; the planned
         stimuli are identical, only intra-group dropping is coarser. *)
      let group = groups.(!cursor) in
      let group_no = !cursor in
      incr cursor;
      let bounds = Group.bounds_of_group group in
      let targets = targets_of group in
      if any_alive targets then begin
        st.group_circuits <- st.group_circuits + 1;
        Sink.span sink
          ~name:(Printf.sprintf "step3.group%d" group_no)
          ~cat:"step3"
          (fun () ->
            List.iter
              (fun fp ->
                let i = fp.Group.index in
                if Hashtbl.mem st.alive i then begin
                  let dlf =
                    Budget.fault_deadline budget Budget.Step3
                      cfg.Config.seq_fault_seconds
                  in
                  match
                    plan_sequence ~sink scanned config ~remaining_faults
                      ~bounds ~positions ~frames:cfg.Config.frames
                      ~backtrack:cfg.Config.seq_backtrack
                      ~should_abort:(fun () -> Clock.expired dlf)
                      i
                  with
                  | None, stats ->
                    add_seq_stats acct stats;
                    acct.s3_aborts <- acct.s3_aborts + 1;
                    if Clock.expired dl3 then flag_idx i
                  | Some stim, stats ->
                    add_seq_stats acct stats;
                    ignore
                      (retire_detections ~sink ~engine ~jobs:1 st scanned
                         ~remaining_faults ~stim)
                end)
              targets);
        checkpoint_wave ();
        if sink.Sink.enabled then
          Sink.tick sink ~phase:"step3" ~done_:!cursor ~total:n_groups
            ~detected:st.detected3 ~budget_left:(Clock.remaining dl3) ()
      end
    end
    else begin
      (* Multicore: waves of up to [jobs] groups. Planning (sequential ATPG
         on the group's bounded model) runs on the pool against a snapshot
         of the alive set; realized sequences are then committed in group
         order on the main domain, so the merge order — and hence the
         result for a fixed [jobs] — is deterministic. Fault dropping still
         happens between waves and at commit time, only not between the
         groups of one wave. A tripped budget cancels the wave's unclaimed
         groups cooperatively. *)
      let jobs = cfg.Config.jobs in
      let wave_no = !cursor in
      let wave = ref [] in
      while List.length !wave < jobs && !cursor < n_groups do
        let group = groups.(!cursor) in
        incr cursor;
        let targets = targets_of group in
        if any_alive targets then
          wave := (Group.bounds_of_group group, targets) :: !wave
      done;
      let wave_arr = Array.of_list (List.rev !wave) in
      let snapshot = Hashtbl.copy st.alive in
      let plan_group (bounds, targets) =
        List.map
          (fun fp ->
            let i = fp.Group.index in
            if not (Hashtbl.mem snapshot i) then (i, None, false, None)
            else begin
              let dlf =
                Budget.fault_deadline budget Budget.Step3
                  cfg.Config.seq_fault_seconds
              in
              match
                plan_sequence ~sink scanned config ~remaining_faults
                  ~bounds ~positions ~frames:cfg.Config.frames
                  ~backtrack:cfg.Config.seq_backtrack
                  ~should_abort:(fun () ->
                    Clock.expired dlf || Pool.cancelled token)
                  i
              with
              | None, stats -> (i, None, true, Some stats)
              | Some stim, stats -> (i, Some stim, false, Some stats)
            end)
          targets
      in
      (* The group's model was never built: its alive members were
         denied their attempt. *)
      let commit_cancelled w =
        let _, targets = wave_arr.(w) in
        let alive_targets =
          List.filter
            (fun fp -> Hashtbl.mem st.alive fp.Group.index)
            targets
        in
        acct.s3_late <- true;
        if alive_targets <> [] then begin
          acct.s3_cancelled <- acct.s3_cancelled + 1;
          List.iter (fun fp -> flag_idx fp.Group.index) alive_targets
        end
      in
      let commit_done results =
        st.group_circuits <- st.group_circuits + 1;
        List.iter
          (fun (i, stim_opt, atpg_aborted, stats_opt) ->
            (match stats_opt with
             | Some stats -> add_seq_stats acct stats
             | None -> ());
            match stim_opt with
            | Some stim -> if Hashtbl.mem st.alive i then retire ~jobs stim
            | None ->
              if atpg_aborted then begin
                acct.s3_aborts <- acct.s3_aborts + 1;
                if Clock.expired dl3 && Hashtbl.mem st.alive i then
                  flag_idx i
              end)
          results
      in
      let wave_poisoned = ref false in
      (* Results — including the ATPG statistics gathered on the pool
         domains — are committed on the main domain, in wave order, so
         the totals in [acct] are deterministic for a fixed [jobs]. *)
      Sink.span sink
        ~name:(Printf.sprintf "step3.wave@%d" wave_no)
        ~cat:"step3"
        (fun () ->
          if not keep_going then
            let plans =
              Pool.map_cancellable ~obs:sink ~label:"step3" ~jobs ~chunk:1
                ~token ~deadline:dl3 plan_group wave_arr
            in
            Array.iteri
              (fun w outcome ->
                match outcome with
                | Pool.Cancelled -> commit_cancelled w
                | Pool.Done results -> commit_done results)
              plans
          else
            let plans =
              Pool.map_cancellable_isolated ~obs:sink ~label:"step3" ~jobs
                ~chunk:1 ~token ~deadline:dl3 plan_group wave_arr
            in
            Array.iteri
              (fun w outcome ->
                match outcome with
                | Pool.Task.Cancelled ->
                  (* With budget left, cancellation can only come from an
                     injected [Cancel]: that is a failure, not an abort. *)
                  if Clock.expired dl3 then commit_cancelled w
                  else wave_poisoned := true
                | Pool.Task.Failed (e, _bt) ->
                  acct.s3_failed_groups <- acct.s3_failed_groups + 1;
                  wave_poisoned := true;
                  Sink.event sink ~kind:"group_failed"
                    [
                      ("phase", Json.String "step3");
                      ("wave", Json.Int wave_no);
                      ("error", Json.String (Printexc.to_string e));
                    ]
                | Pool.Task.Ok results -> commit_done results)
              plans);
      if !wave_poisoned || !engine_poisoned then begin
        cohort_fail `Step3;
        cursor := n_groups
      end;
      checkpoint_wave ();
      if sink.Sink.enabled then
        Sink.tick sink ~phase:"step3" ~done_:!cursor ~total:n_groups
          ~detected:st.detected3 ~failed:acct.s3_failed
          ~quarantined:acct.s3_failed_groups
          ~budget_left:(Clock.remaining dl3) ()
    end
  done;
  (* Final faults: prove undetectable through the relaxed combinational
     model where possible, otherwise target individually with a larger
     budget (the paper's "additional time"). *)
  let dl_fin = Budget.deadline budget Budget.Finals in
  let finals =
    Hashtbl.fold (fun i () acc -> i :: acc) st.alive [] |> List.sort Int.compare
  in
  let attack_final i fp =
    let dlf =
      Budget.fault_deadline budget Budget.Finals
        cfg.Config.final_fault_seconds
    in
    st.final_circuits <- st.final_circuits + 1;
    match
      plan_sequence ~sink scanned config ~remaining_faults
        ~bounds:fp.Group.spans ~positions ~frames:cfg.Config.final_frames
        ~backtrack:cfg.Config.final_backtrack
        ~should_abort:(fun () -> Clock.expired dlf)
        i
    with
    | None, stats ->
      add_seq_stats acct stats;
      acct.fin_aborts <- acct.fin_aborts + 1;
      if Clock.expired dl_fin then flag_idx i
    | Some stim, stats ->
      add_seq_stats acct stats;
      retire ~jobs:cfg.Config.jobs stim
  in
  List.iter
    (fun i ->
      if Hashtbl.mem st.alive i then begin
        (try
           if Clock.expired dl_fin then begin
             acct.fin_late <- true;
             acct.fin_cancelled <- acct.fin_cancelled + 1;
             flag_idx i
           end
           else begin
             let fault = remaining_faults.(i) in
             match
               timed_atpg sink
                 (Printf.sprintf "podem.final[%d]" i)
                 (fun () ->
                   Podem.run ~backtrack_limit:cfg.Config.final_backtrack
                     ~should_abort:(fun () -> Clock.expired dl_fin)
                     ~scoap ~impossible view ~faults:[ fault ])
             with
             | Podem.Untestable, stats ->
               add_podem_stats acct stats;
               Hashtbl.remove st.alive i;
               st.untestable3 <- st.untestable3 + 1;
               untestable_idx3 := i :: !untestable_idx3
             | Podem.Test assignment, stats ->
               add_podem_stats acct stats;
               (* The larger budget found a combinational test that step 2
                  missed; realize and confirm it sequentially before falling
                  back to the restricted sequential model. *)
               let ff_values, pi_values =
                 split_assignment scanned assignment
               in
               let stim =
                 Sequences.of_comb_test scanned config ~ff_values ~pi_values
               in
               retire ~jobs:cfg.Config.jobs stim;
               if Hashtbl.mem st.alive i && not !engine_poisoned then
                 attack_final i footprints.(i)
             | Podem.Aborted, stats ->
               add_podem_stats acct stats;
               if Clock.expired dl_fin then
                 acct.p_ab_deadline <- acct.p_ab_deadline + 1
               else acct.p_ab_limit <- acct.p_ab_limit + 1;
               acct.fin_aborts <- acct.fin_aborts + 1;
               attack_final i footprints.(i)
           end
         with e when keep_going ->
           Sink.event sink ~kind:"fault_failed"
             [
               ("phase", Json.String "finals");
               ("fault", Json.Int i);
               ("error", Json.String (Printexc.to_string e));
             ];
           cohort_fail `Finals);
        if keep_going && !engine_poisoned && Hashtbl.length st.alive > 0 then
          cohort_fail `Finals
      end)
    finals;
  let alive_idx =
    Hashtbl.fold (fun i () acc -> i :: acc) st.alive [] |> List.sort Int.compare
  in
  let undetected_idx, aborted_idx =
    List.partition (fun i -> not aborted_flag.(remaining_arr.(i))) alive_idx
  in
  ( {
      detected = st.detected3;
      untestable = st.untestable3;
      undetected = List.length undetected_idx;
      group_circuits = st.group_circuits;
      final_circuits = st.final_circuits;
      seconds = !seconds_before +. (Clock.now () -. t0);
    },
    undetected_idx,
    aborted_idx,
    List.rev !untestable_idx3 )

(* --- orchestration ------------------------------------------------------ *)

let run ?config:(cfg : Config.t option) ?budget ?checkpoint ?(resume = false)
    ?on_checkpoint ?on_resume scanned config =
  let cfg = match cfg with Some c -> c | None -> Config.default in
  let engine = cfg.Config.engine in
  let budget =
    match budget with Some b -> b | None -> Config.budget cfg
  in
  let sink = cfg.Config.sink in
  if sink.Sink.enabled then
    Sink.event sink ~kind:"config" [ ("config", Config.to_json cfg) ];
  (* Optional lint pre-flight: catch a broken scan configuration (shape,
     sensitization, parity) before spending the ATPG budget on it. Static
     rules only — a pure observer of the inputs. *)
  if cfg.Config.preflight then begin
    let report = Fst_lint.Lint.run ~config scanned in
    if report.Fst_lint.Lint.errors > 0 then
      raise
        (Preflight_failed
           (List.filter
              (fun d ->
                d.Fst_lint.Diagnostic.severity = Fst_lint.Diagnostic.Error)
              report.Fst_lint.Lint.diagnostics))
  end;
  let keep_going = cfg.Config.on_error = `Keep_going in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let fp = fingerprint scanned config cfg in
  let notify_resume outcome =
    match on_resume with Some f -> f outcome | None -> ()
  in
  let ck =
    let loaded =
      if resume then
        match checkpoint with
        | Some path -> (
          match
            Checkpoint.load ~path ~fingerprint:fp ~version:ckpt_version
          with
          | Stdlib.Ok (ck, src) ->
            notify_resume (`Loaded src);
            Sink.event sink ~kind:"resume"
              [
                ("path", Json.String path);
                ( "source",
                  Json.String
                    (match src with
                     | Checkpoint.Primary -> "primary"
                     | Checkpoint.Recovered -> "recovered") );
              ];
            Some ck
          | Stdlib.Error err ->
            notify_resume (`Failed err);
            Sink.event sink ~kind:"resume"
              [
                ("path", Json.String path);
                ("error", Json.String (Checkpoint.error_to_string err));
              ];
            None)
        | None -> None
      else None
    in
    match loaded with Some ck -> ck | None -> fresh_ckpt ()
  in
  (* A resumed chaos run replays the plan from the persisted sequence
     numbers, so the interrupted and uninterrupted runs see the same
     injections. The [Ckpt_save] hook in [save] below ticks {e before}
     the snapshot is taken, keeping save-site numbering aligned across
     the kill/resume boundary. *)
  if Chaos.active () && ck.c_chaos <> [||] then Chaos.restore ck.c_chaos;
  let save stage =
    (match checkpoint with
     | Some path ->
       let write () =
         (match Chaos.point Chaos.Ckpt_save with `Ok | `Cancel -> ());
         ck.c_chaos <- (if Chaos.active () then Chaos.snapshot () else [||]);
         Checkpoint.save ~path ~fingerprint:fp ~version:ckpt_version ck
       in
       let res =
         if keep_going then Retry.run write else Stdlib.Ok (write ())
       in
       (match res with
        | Stdlib.Ok () ->
          Sink.event sink ~kind:"checkpoint"
            [ ("stage", Json.String stage); ("path", Json.String path) ]
        | Stdlib.Error (e, bt) ->
          (* Keep-going: a checkpoint that cannot be written is skipped —
             the run still completes, it just resumes from an older
             wave. *)
          if keep_going then
            Sink.event sink ~kind:"checkpoint_failed"
              [
                ("stage", Json.String stage);
                ("path", Json.String path);
                ("error", Json.String (Printexc.to_string e));
              ]
          else Printexc.raise_with_backtrace e bt)
     | None -> ());
    match on_checkpoint with Some f -> f stage | None -> ()
  in
  (* Phase 1: classification. Runs to completion even under a tiny budget —
     every later phase's accounting is defined in terms of the hard-fault
     set, so there is no meaningful way to truncate it. *)
  let classify, classify_seconds =
    match ck.c_classify with
    | Some (c, s) -> (c, s)
    | None ->
      phase_obs sink "classify" (fun () ->
          let t0 = Clock.now () in
          let c = Classify.run scanned config faults in
          let s = Clock.now () -. t0 in
          if Clock.expired (Budget.deadline budget Budget.Classify) then
            ck.acct.cl_late <- true;
          ck.c_classify <- Some (c, s);
          ck.aborted_flag <- Array.make (Array.length c.Classify.hard) false;
          ck.failed_flag <- Array.make (Array.length c.Classify.hard) false;
          save "classify";
          (c, s))
  in
  let hard_index = classify.Classify.hard in
  let hard_faults =
    Array.map (fun i -> classify.Classify.infos.(i).Classify.fault) hard_index
  in
  let n_hard = Array.length hard_faults in
  let view = View.scan_mode scanned ~constraints:config.Scan.constraints () in
  let scoap = Fst_testability.Scoap.compute view in
  (* Phase 0 (static): ternary constant propagation, the implication graph
     and the fault-independent untestability proofs ({!Fst_sca.Sca}) over
     the scan-mode model. Pure and deterministic, so the checkpointed
     summary and a fresh recomputation always agree; the analysis object
     itself is rebuilt only when the PODEM hints are wanted. *)
  let sca_enabled = cfg.Config.sca_prune || cfg.Config.sca_implications in
  let sca =
    if not sca_enabled then None
    else
      match ck.c_sca with
      | Some s when not cfg.Config.sca_implications -> Some (None, s)
      | cached ->
        phase_obs sink "sca" (fun () ->
            let t = Fst_sca.Sca.analyze view ~faults:hard_faults in
            let static_flag = Array.make n_hard false in
            if cfg.Config.sca_prune then begin
              let tbl = Hashtbl.create 64 in
              List.iter
                (fun (u : Fst_sca.Sca.untestable) ->
                  Hashtbl.replace tbl u.Fst_sca.Sca.fault ())
                t.Fst_sca.Sca.untestable;
              Array.iteri
                (fun i f -> if Hashtbl.mem tbl f then static_flag.(i) <- true)
                hard_faults
            end;
            let s = { static_flag; sca_stats = t.Fst_sca.Sca.stats } in
            if cached = None then begin
              ck.c_sca <- Some s;
              save "sca"
            end;
            Some (Some t, s))
  in
  let static_flag =
    match sca with
    | Some (_, s) -> s.static_flag
    | None -> Array.make n_hard false
  in
  let impossible =
    match sca with
    | Some (Some t, _) when cfg.Config.sca_implications ->
      Fst_sca.Sca.impossible t
    | _ -> fun _ _ -> false
  in
  (* Phase 2a: combinational ATPG over the hard faults. *)
  let plan =
    match ck.c_plan with
    | Some p -> p
    | None ->
      phase_obs sink "step2-atpg" (fun () ->
          let p =
            plan_step2 ~cfg ~budget ~acct:ck.acct
              ~aborted_flag:ck.aborted_flag ~failed_flag:ck.failed_flag
              ~static_flag ~impossible view scoap scanned config ~hard_faults
          in
          ck.c_plan <- Some p;
          save "step2-atpg";
          p)
  in
  (* Phase 2b: sequential fault simulation of the realized sequences. *)
  let step2, remaining =
    match ck.c_s2 with
    | Some s -> (s.s2_step2, s.s2_remaining)
    | None ->
      phase_obs sink "step2-fsim" (fun () ->
          let step2, remaining =
            fsim_step2 ~cfg ~engine ~budget ~acct:ck.acct
              ~failed_flag:ck.failed_flag ~static_flag scanned ~hard_faults
              ~plan
          in
          ck.c_s2 <- Some { s2_step2 = step2; s2_remaining = remaining };
          save "step2-fsim";
          (step2, remaining))
  in
  let untestable2 = List.map (fun i -> hard_faults.(i)) plan.untestable2 in
  (* Phases 3 and 4: grouped sequential ATPG waves, then final targeting. *)
  let remaining_faults =
    Array.of_list
      (List.map
         (fun i -> classify.Classify.infos.(hard_index.(i)).Classify.fault)
         remaining)
  in
  let step3, undetected_idx, aborted_idx, untestable3_idx =
    match ck.c_fin with
    | Some f -> (f.f_step3, f.undetected_idx, f.aborted_idx, f.untestable3_idx)
    | None ->
      phase_obs sink "step3" (fun () ->
          let step3, undetected_idx, aborted_idx, untestable3_idx =
            run_step3 ~cfg ~engine ~budget ~acct:ck.acct
              ~aborted_flag:ck.aborted_flag ~failed_flag:ck.failed_flag
              ~impossible ~progress:ck.c_s3
              ~save_progress:(fun p ->
                ck.c_s3 <- Some p;
                save "step3-wave")
              scanned config ~classify ~hard_index ~remaining ~view ~scoap
          in
          ck.c_fin <-
            Some
              { f_step3 = step3; undetected_idx; aborted_idx; untestable3_idx };
          save "finished";
          (step3, undetected_idx, aborted_idx, untestable3_idx))
  in
  (* Every hard fault the containment machinery quarantined, across all
     phases: [failed_flag] is indexed by position in the hard set. *)
  let failed_faults =
    let acc = ref [] in
    Array.iteri
      (fun i f -> if ck.failed_flag.(i) then acc := f :: !acc)
      hard_faults;
    List.rev !acc
  in
  let aborts =
    aborts_of ck.acct
      ~aborted_faults:(List.length aborted_idx)
      ~failed_faults:(List.length failed_faults)
  in
  if sink.Sink.enabled then begin
    (* The machine-readable counterpart of the report's [aborts:] lines. *)
    List.iter
      (fun p ->
        if
          p.budget_exhausted || p.atpg_aborts > 0 || p.cancelled_groups > 0
          || p.failed > 0
        then
          Sink.event sink ~kind:"aborts"
            [
              ("phase", Json.String p.phase);
              ("budget_exhausted", Json.Bool p.budget_exhausted);
              ("atpg_aborts", Json.Int p.atpg_aborts);
              ("cancelled_groups", Json.Int p.cancelled_groups);
              ("failed", Json.Int p.failed);
            ])
      aborts.phases;
    let m = sink.Sink.metrics in
    let set_c name v = Metrics.Counter.add (Metrics.counter m name) v in
    set_c "atpg.podem.runs" ck.acct.p_runs;
    set_c "atpg.podem.backtracks" ck.acct.p_backtracks;
    set_c "atpg.podem.decisions" ck.acct.p_decisions;
    set_c "atpg.podem.implications" ck.acct.p_implications;
    set_c "atpg.podem.aborted_limit" ck.acct.p_ab_limit;
    set_c "atpg.podem.aborted_deadline" ck.acct.p_ab_deadline;
    set_c "atpg.seq.runs" ck.acct.s_runs;
    set_c "atpg.seq.backtracks" ck.acct.s_backtracks;
    set_c "flow.failed_groups" ck.acct.s3_failed_groups;
    set_c "flow.failed_faults" (List.length failed_faults);
    match sca with
    | None -> ()
    | Some (_, s) ->
      set_c "sca.constants" s.sca_stats.Fst_sca.Sca.constants;
      set_c "sca.implications" s.sca_stats.Fst_sca.Sca.implications;
      set_c "sca.learned" s.sca_stats.Fst_sca.Sca.learned;
      set_c "sca.impossible" s.sca_stats.Fst_sca.Sca.impossible;
      set_c "sca.untestable" s.sca_stats.Fst_sca.Sca.untestable;
      set_c "sca.untestable_static"
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0 static_flag)
  end;
  let untestable_static =
    let acc = ref [] in
    for i = n_hard - 1 downto 0 do
      if static_flag.(i) then acc := hard_faults.(i) :: !acc
    done;
    !acc
  in
  {
    scanned;
    config;
    faults;
    classify;
    classify_seconds;
    step2;
    step3;
    undetected = List.map (fun i -> remaining_faults.(i)) undetected_idx;
    untestable_faults =
      untestable2 @ List.map (fun i -> remaining_faults.(i)) untestable3_idx;
    untestable_static;
    aborted = List.map (fun i -> remaining_faults.(i)) aborted_idx;
    failed = failed_faults;
    aborts;
    atpg = atpg_stats_of ck.acct;
  }
