(** One configuration record for the whole flow.

    [Config.t] collapses every knob — the flow and scan-ATPG parameters,
    the fault-sim engine choice, the wall-clock budget and the
    observability sink — into a single value built from {!default} with
    functional [with_*] setters:

    {[
      let cfg =
        Config.(
          default |> with_jobs 8 |> with_engine `Event
          |> with_time_budget (Some 120.0))
      in
      Flow.run ~config:cfg scanned scan_config
    ]}

    Everything in the record except [sink], [preflight] and [time_budget]
    is {e semantic}: it changes what the flow computes, and is part of the
    checkpoint fingerprint ({!Flow.run}). The engine selector is also
    non-semantic — every engine returns bit-identical results
    ({!Fst_fsim.Fsim.selector}) — so checkpoints stay valid across engine
    changes. *)

(** The fault-simulation engine selector ({!Fst_fsim.Fsim.selector}):
    [`Serial], [`Parallel], [`Event], or [`Auto] (per-fault choice by
    static cone size). *)
type engine = Fst_fsim.Fsim.selector

(** Failure policy for fault groups and engine calls during a flow:
    [`Fail_fast] (the default) re-raises the first failure after the
    queue drains — exactly the historical contract; [`Keep_going]
    quarantines failed work into the {e failed} bucket of the abort
    accounting and completes everything else, so a poison fault group
    costs its own coverage and nothing more. Like [engine], this is a
    policy knob, not a semantic one: it is excluded from the checkpoint
    fingerprint. *)
type on_error = [ `Fail_fast | `Keep_going ]

type t = {
  engine : engine;  (** fault-sim back-end selector (default [`Auto]) *)
  jobs : int;  (** worker domains for fsim/ATPG pools *)
  dist_floor_scale : float;
      (** scales the paper's [LARGE_DIST]/[MED_DIST]/[DIST] floors *)
  comb_backtrack : int;  (** PODEM backtrack limit, step-2 comb model *)
  seq_backtrack : int;  (** backtrack limit, step-3 grouped seq ATPG *)
  final_backtrack : int;  (** backtrack limit, step-3 final retries *)
  frames : int list;  (** time-frame ladder, step-3 groups *)
  final_frames : int list;  (** time-frame ladder, step-3 finals *)
  truncate_blocks : float option;
      (** keep only this fraction of step-2 scan blocks *)
  capture_curve : bool;  (** record the fault-coverage curve *)
  random_blocks : int;  (** random scan blocks appended in step 2 *)
  random_seed : int64;  (** seed for those blocks *)
  weighted_random : bool;  (** bias random blocks by SCOAP *)
  seq_fault_seconds : float;  (** per-fault deadline, step-3 groups *)
  final_fault_seconds : float;  (** per-fault deadline, step-3 finals *)
  scan_backtrack : int;  (** PODEM backtrack limit, {!Scan_atpg} *)
  scan_random_blocks : int;  (** random capture blocks, {!Scan_atpg} *)
  scan_random_seed : int64;  (** seed for those blocks *)
  sca_prune : bool;
      (** phase-0 static analysis ({!Fst_sca.Sca}): prune statically
          proven untestable faults before step-2 ATPG (default [true];
          the proven faults land in [Flow.result.untestable_static]) *)
  sca_implications : bool;
      (** feed the static implication graph to PODEM as pruning hints
          (default [false]: hints preserve completeness but can steer
          PODEM to a different — equally valid — test, so runs are no
          longer bit-identical to hint-free ones) *)
  time_budget : float option;
      (** whole-flow wall-clock budget in seconds ([None] = unlimited) *)
  on_error : on_error;  (** failure policy (default [`Fail_fast]) *)
  sink : Fst_obs.Sink.t;  (** observability sink (default null) *)
  preflight : bool;  (** lint gate before phase 1 *)
}

(** The defaults every knob documents; identical to the historical
    flow and scan-ATPG parameter defaults, with [engine = `Auto]. *)
val default : t

val with_engine : engine -> t -> t

(** Clamped to at least 1. *)
val with_jobs : int -> t -> t

val with_dist_floor_scale : float -> t -> t
val with_comb_backtrack : int -> t -> t
val with_seq_backtrack : int -> t -> t
val with_final_backtrack : int -> t -> t
val with_frames : int list -> t -> t
val with_final_frames : int list -> t -> t
val with_truncate_blocks : float option -> t -> t
val with_capture_curve : bool -> t -> t
val with_random_blocks : int -> t -> t
val with_random_seed : int64 -> t -> t
val with_weighted_random : bool -> t -> t
val with_seq_fault_seconds : float -> t -> t
val with_final_fault_seconds : float -> t -> t
val with_scan_backtrack : int -> t -> t
val with_scan_random_blocks : int -> t -> t
val with_scan_random_seed : int64 -> t -> t
val with_sca_prune : bool -> t -> t
val with_sca_implications : bool -> t -> t
val with_time_budget : float option -> t -> t
val with_on_error : on_error -> t -> t
val with_sink : Fst_obs.Sink.t -> t -> t
val with_preflight : bool -> t -> t

(** CLI spellings of the engine selector: ["serial"], ["parallel"],
    ["event"], ["auto"]. *)
val engine_to_string : engine -> string

val engine_of_string : string -> engine option
val engine_names : string list

(** ["fail-fast"] / ["keep-going"] — the CLI spellings. *)
val on_error_to_string : on_error -> string

val on_error_of_string : string -> on_error option

(** [fingerprint t] is a stable hex digest of the {e semantic} knobs
    only — everything that changes what the flow computes. [engine]
    (result-identical back-ends), [jobs] (result-identical parallelism),
    [sink]/[preflight] (pure observers) and [time_budget]/[on_error]
    (degradation policy) are excluded, so two configurations that must
    produce bit-identical reports share a fingerprint. This is the
    Config half of the {!Fst_serve.Cache} content address, and the
    Config contribution to the {!Flow} checkpoint fingerprint (which
    additionally ties in [jobs] and the circuit). *)
val fingerprint : t -> string

(** [equal_semantic a b] compares every field except [sink] (which holds
    closures and mutexes). The equality the [of_json]/[to_json]
    round-trip property is stated in. *)
val equal_semantic : t -> t -> bool

(** [budget t] is the {!Fst_exec.Budget.t} for [t.time_budget]
    ({!Fst_exec.Budget.unlimited} when [None]). The clock starts when this
    is called. *)
val budget : t -> Fst_exec.Budget.t

(** [of_cli ()] builds a configuration from the command-line surface:
    engine by name, [jobs <= 0] meaning "all cores", the distance-floor
    [scale], optional time budget, failure policy, preflight flag and
    sink. When [on_error] is not given it defaults to [`Keep_going] for
    budgeted runs (a deadline-bound run should ship its partial
    coverage, not die on one poison group) and [`Fail_fast] otherwise.
    [Error] on an unknown engine name. *)
val of_cli :
  ?engine:string ->
  ?jobs:int ->
  ?scale:float ->
  ?time_budget:float ->
  ?on_error:on_error ->
  ?preflight:bool ->
  ?sink:Fst_obs.Sink.t ->
  unit ->
  (t, string) result

(** Every semantic field (plus [engine], [jobs], [time_budget] and
    [preflight]) as JSON — echoed into flow event logs so a result is
    attributable to its configuration. The [sink] itself is not
    serializable and is omitted. *)
val to_json : t -> Fst_obs.Json.t

(** [of_json j] is the exact inverse of {!to_json}: every key {!to_json}
    emits is accepted (with the same spelling and type), absent keys
    take their {!default}, and an unknown key is rejected with an
    [Error] naming it — a mistyped knob in a [submit] payload must fail
    loudly, not silently run with defaults. Numeric fields additionally
    accept JSON integers where {!to_json} emits floats. The returned
    config always carries the null sink; round-trip:
    [of_json (to_json c)] equals [c] up to [sink]
    ({!equal_semantic}). *)
val of_json : Fst_obs.Json.t -> (t, string) result
