(** Versioned, checksummed on-disk checkpoints for long-running flows,
    with last-good rotation and recovery.

    A checkpoint file is a small self-describing header — magic string,
    format version, a caller-supplied fingerprint of the inputs, and an
    MD5 checksum of the payload bytes — followed by the marshalled
    payload. Writes go through a temporary file and an atomic rename, so
    a crash mid-write can never corrupt an existing checkpoint; on every
    save the previous good file is first rotated to [<path>.prev], so
    even a checkpoint that is damaged {e after} being written (torn
    write on a dying disk, stray truncation) leaves one older good file
    behind. {!load} verifies the checksum before unmarshalling and falls
    back to [.prev] whenever the primary fails validation for any
    reason.

    The fingerprint ties a checkpoint to the exact circuit, scan
    configuration and parameters that produced it: {!load} refuses a
    file whose fingerprint differs, so a resumed run can never silently
    mix state from a different workload. The payload type is the
    caller's responsibility — always load with the same type (and the
    same binary) that saved; the version field is bumped whenever the
    flow's payload layout changes.

    Reads run a {!Fst_exec.Chaos.Ckpt_load} hook, so injected read
    failures exercise the same recovery path as real I/O errors. *)

(** Why a checkpoint file could not be used, in decreasing order of
    "something is actually wrong": [Corrupt] (unreadable header,
    checksum mismatch, truncated payload — the recovery trigger),
    [Version_mismatch] (written by an older flow layout, including the
    pre-checksum format), [Fingerprint_mismatch] (a valid file for
    different inputs), [Missing] (no file at all). *)
type error =
  | Missing
  | Corrupt of string
  | Fingerprint_mismatch
  | Version_mismatch of { expected : int; found : int }

(** Where a successful load came from: the checkpoint itself, or the
    [.prev] last-good rotation after the primary failed validation. *)
type source = Primary | Recovered

(** One-line human-readable rendering for CLI diagnostics. *)
val error_to_string : error -> string

(** [prev_path path] is the last-good rotation sibling, [path ^ ".prev"]. *)
val prev_path : string -> string

(** [save ~path ~fingerprint ~version payload] atomically (re)writes the
    checkpoint at [path], rotating any existing file to
    [prev_path path] first. *)
val save : path:string -> fingerprint:string -> version:int -> 'a -> unit

(** [load ~path ~fingerprint ~version] is the validated payload stored
    at [path] — or, when that file is missing or fails any validation,
    the payload recovered from [prev_path path] ([Recovered]). [Error]
    reports the {e primary} file's failure and distinguishes missing
    from corrupt from fingerprint/version mismatch so callers can say
    which one happened. *)
val load :
  path:string ->
  fingerprint:string ->
  version:int ->
  ('a * source, error) result
