(** Versioned on-disk checkpoints for long-running flows.

    A checkpoint file is a small self-describing header (magic string,
    format version, and a caller-supplied fingerprint of the inputs)
    followed by a marshalled payload. Writes go through a temporary file
    and an atomic rename, so a crash mid-write can never corrupt an
    existing checkpoint — the previous one simply survives.

    The fingerprint ties a checkpoint to the exact circuit, scan
    configuration and parameters that produced it: {!load} refuses (by
    returning [None]) a file whose fingerprint differs, so a resumed run
    can never silently mix state from a different workload. The payload
    type is the caller's responsibility — always load with the same type
    (and the same binary) that saved; the version field is bumped whenever
    the flow's payload layout changes. *)

(** [save ~path ~fingerprint ~version payload] atomically (re)writes the
    checkpoint at [path]. *)
val save : path:string -> fingerprint:string -> version:int -> 'a -> unit

(** [load ~path ~fingerprint ~version] is the payload stored at [path],
    or [None] when the file is missing, unreadable, truncated, of a
    different format version, or was written for different inputs. *)
val load : path:string -> fingerprint:string -> version:int -> 'a option
