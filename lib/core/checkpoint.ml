let magic = "FST-CHECKPOINT"

let save ~path ~fingerprint ~version payload =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d %s\n" magic version fingerprint;
      Marshal.to_channel oc payload []);
  Sys.rename tmp path

let load ~path ~fingerprint ~version =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | header ->
          if header = Printf.sprintf "%s %d %s" magic version fingerprint
          then
            match Marshal.from_channel ic with
            | payload -> Some payload
            | exception (End_of_file | Failure _) -> None
          else None)
