module Chaos = Fst_exec.Chaos

let magic = "FST-CHECKPOINT"
let prev_path path = path ^ ".prev"

type error =
  | Missing
  | Corrupt of string
  | Fingerprint_mismatch
  | Version_mismatch of { expected : int; found : int }

type source = Primary | Recovered

let error_to_string = function
  | Missing -> "missing"
  | Corrupt why -> Printf.sprintf "corrupt (%s)" why
  | Fingerprint_mismatch ->
    "fingerprint mismatch (written for different inputs)"
  | Version_mismatch { expected; found } ->
    Printf.sprintf "version mismatch (expected %d, found %d)" expected found

let save ~path ~fingerprint ~version payload =
  (* The payload is marshalled to a string first so its checksum can go
     in the header: load verifies the bytes before unmarshalling, which
     turns a truncated or bit-flipped file into a clean [Corrupt]
     instead of a Marshal segfault hazard. *)
  let body = Marshal.to_string payload [] in
  let sum = Digest.to_hex (Digest.string body) in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d %s %s\n" magic version fingerprint sum;
      output_string oc body);
  (* Rotate the last good checkpoint to [.prev] before publishing the
     new one: if the new file is later found corrupt (torn write, disk
     fault, injected failure), load falls back to [.prev]. Both renames
     are atomic; a crash between them leaves no primary but a good
     [.prev], which load also recovers from. *)
  if Sys.file_exists path then Sys.rename path (prev_path path);
  Sys.rename tmp path

(* Reads and fully validates one file. The [Ckpt_load] chaos hook sits
   inside the read, so an injected failure exercises the same recovery
   path as a real I/O error. *)
let read_one ~path ~fingerprint ~version =
  match open_in_bin path with
  | exception Sys_error _ -> Error Missing
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          (match Chaos.point Chaos.Ckpt_load with `Ok | `Cancel -> ());
          input_line ic
        with
        | exception End_of_file -> Error (Corrupt "empty file")
        | exception Chaos.Injected why -> Error (Corrupt ("injected: " ^ why))
        | header ->
          (match String.split_on_char ' ' header with
           | [ m; v; fp; sum ] when m = magic ->
             (match int_of_string_opt v with
              | None -> Error (Corrupt "unparseable version")
              | Some found when found <> version ->
                Error (Version_mismatch { expected = version; found })
              | Some _ ->
                if fp <> fingerprint then Error Fingerprint_mismatch
                else begin
                  let len = in_channel_length ic - pos_in ic in
                  match really_input_string ic len with
                  | exception End_of_file ->
                    Error (Corrupt "truncated payload")
                  | body ->
                    if Digest.to_hex (Digest.string body) <> sum then
                      Error (Corrupt "checksum mismatch")
                    else
                      (match Marshal.from_string body 0 with
                       | payload -> Ok payload
                       | exception (Failure _ | Invalid_argument _) ->
                         Error (Corrupt "unmarshalling failed"))
                end)
           | [ m; v; _fp ] when m = magic ->
             (* Pre-checksum header layout (format versions <= 2). *)
             Error
               (Version_mismatch
                  {
                    expected = version;
                    found = Option.value (int_of_string_opt v) ~default:(-1);
                  })
           | _ -> Error (Corrupt "bad header")))

let load ~path ~fingerprint ~version =
  match read_one ~path ~fingerprint ~version with
  | Ok payload -> Ok (payload, Primary)
  | Error primary_err ->
    (* Whatever is wrong with the primary, a [.prev] that passes the
       full validation (magic, version, fingerprint, checksum) is safe
       to resume from — it is simply one checkpoint older. When both
       fail, report the primary's error: that is the file the user
       asked about. *)
    (match read_one ~path:(prev_path path) ~fingerprint ~version with
     | Ok payload -> Ok (payload, Recovered)
     | Error _ -> Error primary_err)
