open Fst_logic
open Fst_netlist
open Fst_fault
open Fst_fsim
open Fst_atpg
open Fst_tpi
module Clock = Fst_exec.Clock
module Retry = Fst_exec.Retry
module Sink = Fst_obs.Sink
module Json = Fst_obs.Json

type result = {
  targeted : int;
  detected : int;
  untestable : int;
  undetected : int;
  aborted : int;
  failed : int;
  vectors : int;
  seconds : float;
}

(* Functional-mode view: scan-enable pinned low, every other input and the
   loadable state free, primary outputs plus flip-flop data pins (the
   captured response) observable. *)
let functional_view (scanned : Circuit.t) (config : Scan.config) =
  View.scan_mode scanned ~constraints:[ (config.Scan.scan_mode, V3.Zero) ] ()

let run ?(config = Config.default) ?(deadline = Clock.never) scanned
    scan_config ~already_detected =
  let engine = config.Config.engine in
  let backtrack = config.Config.scan_backtrack in
  let random_blocks = config.Config.scan_random_blocks in
  let random_seed = config.Config.scan_random_seed in
  let jobs = config.Config.jobs in
  let on_error = config.Config.on_error in
  let sink = config.Config.sink in
  let config = scan_config in
  Sink.span sink ~name:"scan-atpg" ~cat:"phase" @@ fun () ->
  let t0 = Clock.now () in
  let universe = Fault.collapse scanned (Fault.universe scanned) in
  let done_set = Hashtbl.create (2 * List.length already_detected) in
  List.iter (fun f -> Hashtbl.replace done_set f ()) already_detected;
  let targets =
    Array.to_list universe
    |> List.filter (fun f -> not (Hashtbl.mem done_set f))
    |> Array.of_list
  in
  let n = Array.length targets in
  let view = functional_view scanned config in
  let scoap = Fst_testability.Scoap.compute view in
  let keep_going = on_error = `Keep_going in
  let blocks = ref [] in
  let proven = Array.make n false in
  let denied = Array.make n false in
  let failed = Array.make n false in
  let n_failed = ref 0 in
  let i = ref 0 in
  while !i < n && not (Clock.expired deadline) do
    (try
       match
         Podem.run ~backtrack_limit:backtrack
           ~should_abort:(fun () -> Clock.expired deadline)
           ~scoap view ~faults:[ targets.(!i) ]
       with
       | Podem.Test assignment, _ ->
         let ff_values, pi_values =
           List.partition
             (fun (net, _) -> Circuit.is_dff scanned net)
             assignment
         in
         blocks :=
           Sequences.of_capture_test scanned config ~ff_values ~pi_values
           :: !blocks
       | Podem.Untestable, _ -> proven.(!i) <- true
       | Podem.Aborted, _ -> if Clock.expired deadline then denied.(!i) <- true
     with e when keep_going ->
       (* Isolated: the fault keeps its chance at detection through the
          other sequences; only a still-undetected fault lands in the
          failed bucket. *)
       failed.(!i) <- true;
       incr n_failed;
       Sink.event sink ~kind:"fault_failed"
         [
           ("phase", Json.String "scan-atpg");
           ("fault", Json.Int !i);
           ("error", Json.String (Printexc.to_string e));
         ]);
    if sink.Sink.enabled then
      Sink.tick sink ~phase:"scan-atpg" ~done_:(!i + 1) ~total:n
        ~detected:(List.length !blocks) ~failed:!n_failed
        ~budget_left:(Clock.remaining deadline) ();
    incr i
  done;
  for k = !i to n - 1 do
    denied.(k) <- true
  done;
  let rng = Fst_gen.Rng.create random_seed in
  let random_block () =
    let ff_values, pi_values =
      List.partition
        (fun (net, _) -> Circuit.is_dff scanned net)
        (Rtpg.uniform rng view)
    in
    Sequences.of_capture_test scanned config ~ff_values ~pi_values
  in
  let blocks =
    List.rev !blocks @ List.init random_blocks (fun _ -> random_block ())
  in
  let engine_failed = ref false in
  let outcome =
    let simulate () =
      Fsim.Engine.detect_dropping ~obs:sink ~engine ~jobs scanned
        ~faults:targets ~observe:scanned.Circuit.outputs ~stimuli:blocks
    in
    if not keep_going then simulate ()
    else
      match Retry.run simulate with
      | Stdlib.Ok o -> o
      | Stdlib.Error (e, _bt) ->
        (* The simulator is the sole witness of detection, so its permanent
           failure makes every unproven fault's outcome unknowable: the
           whole cohort moves to the failed bucket. *)
        engine_failed := true;
        Sink.event sink ~kind:"engine_failed"
          [
            ("phase", Json.String "scan-atpg");
            ("error", Json.String (Printexc.to_string e));
          ];
        Array.make n None
  in
  let detected = ref 0
  and untestable = ref 0
  and aborted = ref 0
  and n_failed = ref 0 in
  Array.iteri
    (fun i o ->
      (* A capture-model-untestable fault can still fall to the load or
         unload portion of another sequence; simulation wins. A fault whose
         attempt the deadline denied counts as aborted only if nothing
         detected it anyway. *)
      match o with
      | Some _ -> incr detected
      | None ->
        if proven.(i) then incr untestable
        else if failed.(i) || !engine_failed then incr n_failed
        else if denied.(i) then incr aborted)
    outcome;
  {
    targeted = n;
    detected = !detected;
    untestable = !untestable;
    undetected = n - !detected - !untestable - !aborted - !n_failed;
    aborted = !aborted;
    failed = !n_failed;
    vectors = List.length blocks;
    seconds = Clock.now () -. t0;
  }

let coverage ~chain_detected ~result ~total =
  if total = 0 then 1.0
  else float_of_int (chain_detected + result.detected) /. float_of_int total

let testable_coverage ~chain_detected ~result ~total =
  let testable = total - result.untestable in
  if testable <= 0 then 1.0
  else float_of_int (chain_detected + result.detected) /. float_of_int testable
