(** The subsequent testing phase the paper's flow enables.

    Once the functional scan chain itself has been verified ({!Flow}), the
    rest of the circuit is tested the standard scan way: load a state
    through the chain, apply one functional capture cycle, unload the
    response. This module runs combinational ATPG over the functional-mode
    model (only the scan-enable is pinned low; everything else — including
    the inputs TPI constrains during scan mode — is usable), realizes each
    test as a load/capture/unload sequence, fault-simulates the set with
    dropping, and reports chip-level coverage.

    Faults already detected during chain testing are passed in and dropped
    from the target list, exactly as the paper prescribes ("these detected
    faults can be dropped from the fault list for the subsequent phase"). *)

open Fst_netlist
open Fst_fault
open Fst_tpi

type result = {
  targeted : int;  (** faults attacked in this phase *)
  detected : int;
  untestable : int;
  undetected : int;
  aborted : int;
      (** faults whose ATPG attempt was denied by [deadline] and that no
          other sequence detected *)
  failed : int;
      (** faults quarantined under [`Keep_going] (0 under [`Fail_fast]);
          [targeted = detected + untestable + undetected + aborted +
          failed] *)
  vectors : int;
  seconds : float;  (** wall-clock time ({!Fst_exec.Clock}) *)
}

(** [run ?config ?deadline scanned config ~already_detected] tests the
    functional logic through the scan chain. [config] is the unified
    {!Config.t} (default {!Config.default}); this phase reads its
    [scan_backtrack] / [scan_random_blocks] / [scan_random_seed] knobs plus
    [engine], [jobs], [on_error] ([`Keep_going] isolates per-fault ATPG
    failures — the fault lands in [failed] unless another sequence detects
    it — and retries the fault-simulation pass, quarantining every
    unproven fault when it permanently fails) and [sink] (a phase span, a
    progress heartbeat during ATPG, and fault-simulation metrics).
    [already_detected] lists faults credited to the chain-testing phase
    (dropped from the target list and counted as covered in {!coverage}).
    A tripped [deadline] (default {!Fst_exec.Clock.never}) skips the
    remaining ATPG attempts; the skipped faults still ride through fault
    simulation and any left undetected are reported as [aborted]. *)
val run :
  ?config:Config.t ->
  ?deadline:Fst_exec.Clock.deadline ->
  Circuit.t ->
  Scan.config ->
  already_detected:Fault.t list ->
  result

(** [coverage ~chain_detected ~result ~total] is the overall fault
    coverage fraction over the whole universe. *)
val coverage : chain_detected:int -> result:result -> total:int -> float

(** [testable_coverage ~chain_detected ~result ~total] excludes the faults
    proven untestable in the functional model (the number a production
    tool quotes). *)
val testable_coverage :
  chain_detected:int -> result:result -> total:int -> float
