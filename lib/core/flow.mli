(** The complete functional scan chain testing flow (sections 2–5).

    Starting from a circuit that already carries functional scan chains
    (see {!Fst_tpi.Tpi.insert}), the flow:

    + classifies every collapsed fault ({!Classify}),
    + statically proves hard faults untestable where possible
      ({!Fst_sca.Sca}: constant propagation, the implication graph,
      FIRE-style single-net conflicts and dominance) and prunes them from
      every subsequent phase — the [untestable_static] bucket
      ([Config.sca_prune], on by default),
    + screens the remaining hard (category-2) faults with combinational
      ATPG on the scan-mode model followed by sequential fault simulation
      of the realized scan sequences,
    + targets the remainder with grouped sequential ATPG on models with
      enhanced chain controllability/observability ({!Group}), retrying the
      survivors individually with a larger budget, and proving
      undetectability through the relaxed combinational model where
      possible.

    Long runs are governed by an optional monotonic wall-clock budget
    ({!Fst_exec.Budget}): each phase receives a cumulative share of the
    total, a tripped deadline cancels the remaining work cooperatively
    (partial results are kept, denied faults are reported as aborted), and
    the flow can persist its progress to a versioned checkpoint file and
    resume from it after a crash or kill. *)

open Fst_netlist
open Fst_fault
open Fst_tpi

(** Raised by {!run} when [Config.preflight] is on and the static analyzer
    found error-severity diagnostics (the list, in
    {!Fst_lint.Diagnostic.compare} order). *)
exception Preflight_failed of Fst_lint.Diagnostic.t list

type step2 = {
  detected : int;
  untestable : int;
  undetected : int;
  vectors : int;  (** test sequences generated (after truncation) *)
  atpg_seconds : float;
  fsim_seconds : float;
  curve : (int * int) array;
      (** (vectors simulated, cumulative detected) when captured *)
}

type step3 = {
  detected : int;
  untestable : int;
  undetected : int;
  group_circuits : int;  (** models built for groups 1–3 *)
  final_circuits : int;  (** models built for the final faults *)
  seconds : float;
}

(** Per-phase abort accounting under a wall-clock budget. *)
type phase_aborts = {
  phase : string;  (** {!Fst_exec.Budget.phase_name} of the phase *)
  budget_exhausted : bool;
      (** the phase's deadline tripped before its work was complete *)
  atpg_aborts : int;
      (** ATPG attempts that ended in an abort (backtrack limit, per-fault
          deadline, or phase deadline) during this phase *)
  cancelled_groups : int;
      (** step-3 groups (or final-targeting faults) whose attempt was
          denied outright by the tripped deadline *)
  failed : int;
      (** hard faults quarantined during this phase under [`Keep_going]:
          their attempt raised (directly, or through a cohort-failed
          group or engine call) rather than being denied by the budget *)
}

type aborts = {
  phases : phase_aborts list;  (** one entry per phase, in flow order *)
  aborted_faults : int;
      (** hard faults left alive at the end of the flow whose attempt was
          denied by the budget — reported separately from [undetected] so
          that detected + untestable + untestable_static + undetected +
          aborted + failed always equals the number of hard faults *)
  failed_faults : int;
      (** hard faults in the [failed] bucket (0 under [`Fail_fast]) *)
}

val budget_exhausted : aborts -> bool
val atpg_aborts : aborts -> int
val cancelled_groups : aborts -> int

val failed_tasks : aborts -> int
(** Sum of the per-phase [failed] counts. *)

(** Aggregate ATPG engine statistics over the whole flow (previously
    computed by {!Fst_atpg.Podem}/{!Fst_atpg.Seq} and discarded).
    Accumulated deterministically: statistics produced on pool domains
    are committed on the main domain in wave order, and the totals ride
    inside checkpoints, so a resumed run reports the same numbers as an
    uninterrupted one. *)
type atpg_stats = {
  podem_runs : int;  (** individual PODEM invocations *)
  podem_backtracks : int;
  podem_decisions : int;
  podem_implications : int;
  podem_aborted_limit : int;  (** aborts caused by the backtrack limit *)
  podem_aborted_deadline : int;  (** aborts caused by a tripped deadline *)
  seq_runs : int;  (** PODEM runs inside sequential (unrolled) ATPG *)
  seq_backtracks : int;
}

type result = {
  scanned : Circuit.t;
  config : Scan.config;
  faults : Fault.t array;  (** collapsed fault universe *)
  classify : Classify.t;
  classify_seconds : float;
  step2 : step2;
  step3 : step3;
  undetected : Fault.t list;
      (** survivors of the whole flow that received their full attempt *)
  untestable_faults : Fault.t list;
      (** faults proven untestable by ATPG (step-2 combinational proofs
          plus the relaxed-model proofs of step 3); disjoint from
          [untestable_static] *)
  untestable_static : Fault.t list;
      (** hard faults proven untestable by the phase-0 static analysis
          ({!Fst_sca.Sca}) and pruned before any ATPG was spent on them.
          Empty when [Config.sca_prune] is off. Each has a
          machine-checkable proof ({!Fst_sca.Sca.check}); rerun
          [Fst_sca.Sca.analyze] on the scan-mode view to retrieve them. *)
  aborted : Fault.t list;
      (** survivors whose attempt was denied by the wall-clock budget *)
  failed : Fault.t list;
      (** faults quarantined by the [`Keep_going] containment machinery:
          the flow could not complete their attempt because something
          raised, and the partition invariant counts them separately from
          [undetected] (which received a full, clean attempt). Always []
          under [`Fail_fast]. *)
  aborts : aborts;
  atpg : atpg_stats;
}

(** [run ?config ?budget ?checkpoint ?resume ?on_checkpoint scanned config]
    executes the flow on an already-scanned circuit.

    [config] is the unified {!Config.t} (default {!Config.default}): every
    flow knob, the fault-simulation engine selector, the wall-clock budget
    and the observability sink in one value; with a live sink the effective
    configuration is echoed as a ["config"] event. [jobs = 1] reproduces
    the single-core flow exactly; step-2 results are identical for every
    [jobs] value, and in step 3 [jobs > 1] plans the sequential-ATPG groups
    in deterministic waves, which can change (only) how detections are
    credited between groups. The default {!Fst_obs.Sink.null} sink compiles
    instrumentation down to a branch, so unobserved [jobs = 1] runs are
    bit-identical to the seed; neither the sink nor [preflight] (both pure
    observers) is part of the checkpoint fingerprint.

    [budget] (default: [config.time_budget], else
    {!Fst_exec.Budget.unlimited}) bounds the whole run in
    monotonic wall-clock time; when a phase overruns its cumulative share,
    the remaining work of that phase is cancelled cooperatively and
    accounted in {!type-aborts}.

    [checkpoint] names a file to which the flow atomically persists its
    progress after every phase and every step-3 wave. With [resume = true]
    the flow first tries to load that file — a checkpoint written for a
    different circuit, configuration, parameter set, or format version is
    ignored — and continues from the last completed stage; a resumed
    [jobs = 1] run produces results identical to an uninterrupted one.
    [on_checkpoint] is called with a stage label ("classify", "sca",
    "step2-atpg", "step2-fsim", "step3-wave", "finished") after each save.

    [on_resume] is called once when [resume = true] and a checkpoint path
    was given: [`Loaded src] says which file the state came from
    ({!Checkpoint.Primary} or the [.prev] last-good rotation), [`Failed
    err] says exactly why no state could be loaded
    ({!Checkpoint.error}: missing, corrupt, fingerprint or version
    mismatch) before the flow starts fresh. *)
val run :
  ?config:Config.t ->
  ?budget:Fst_exec.Budget.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?on_checkpoint:(string -> unit) ->
  ?on_resume:
    ([ `Loaded of Checkpoint.source | `Failed of Checkpoint.error ] -> unit) ->
  Circuit.t ->
  Scan.config ->
  result

(** [total_faults r], [affecting r]: Table-2/3 denominators. *)
val total_faults : result -> int

val affecting : result -> int

(** [chain_detected_faults r] is every fault the chain-testing phase
    credits as detected (category 1 via the alternating sequence, plus the
    hard faults detected in steps 2–3) — the list to drop before the
    subsequent logic-test phase ({!Scan_atpg}). *)
val chain_detected_faults : result -> Fault.t list
