(** Static test-set compaction.

    The paper observes (Figure 5) that most faults fall to the beginning of
    the step-2 test set and suggests shrinking it. Beyond plain truncation
    (the [Config.t] [truncate_blocks] option), this module implements
    classic {e reverse-order restoration}: simulate the sequences from last
    to first with fault dropping and keep only the ones that detect a fault
    not covered by a later sequence. Coverage is preserved exactly; the
    kept set is typically much smaller because early ATPG patterns are
    subsumed by later ones. *)

open Fst_netlist
open Fst_fault
open Fst_fsim

(** [reverse_order c ~faults ~observe ~blocks] returns the indices (into
    [blocks], ascending) of the sequences to keep, and the number of faults
    the kept set detects. Each block is an independent scan sequence (the
    machine state does not carry over between blocks, matching how
    {!Flow} simulates them). *)
val reverse_order :
  Circuit.t ->
  faults:Fault.t array ->
  observe:int array ->
  blocks:Fsim.stimulus list ->
  int list * int

(** [coverage c ~faults ~observe ~blocks] is the number of faults detected
    by the block set (with dropping). *)
val coverage :
  Circuit.t ->
  faults:Fault.t array ->
  observe:int array ->
  blocks:Fsim.stimulus list ->
  int
