open Fst_logic
open Fst_netlist
open Fst_fault
module J = Fst_obs.Json

type reason =
  | Tied
  | Forward of int
  | Backward of { node : int; pin : int }
  | Assumed
  | Learned of int

type graph = { off : int array; dst : int array }

let lit ~net ~value = (2 * net) + if value then 1 else 0

type blocker = { node : int; pin : int; side : int; ctrl : V3.t }

type branch_evidence = Conflict | Excitation of V3.t | Cut of blocker list

(* How a single literal [net = value] is refuted. [Direct]: assuming it
   propagates to a contradiction. [Via]: the literal forces [via = value],
   which in turn forces the literal's negation — two deduction steps
   composing to a contradiction. [Cases on]: [on] is definitely binary and
   both of its values force the literal's negation. *)
type refutation = Direct | Via of { via : int; value : V3.t } | Cases of int

type proof =
  | Unexcitable
  | Unobservable of blocker list
  | Fire of { m : int; if0 : branch_evidence; if1 : branch_evidence }
  | Requires of {
      pin : int option;
      net : int;
      value : V3.t;
      refutation : refutation;
    }
  | Dominated of Fault.t

type untestable = { fault : Fault.t; proof : proof }

type stats = {
  nets : int;
  targets : int;
  constants : int;
  implications : int;
  learned : int;
  impossible : int;
  untestable : int;
  dominance_edges : int;
  seconds : float;
}

type t = {
  view : View.t;
  base : V3.t array;
  base_reason : reason option array;
  def_binary : bool array;
  impossible : bool array;
  graph : graph;
  untestable : untestable list;
  dominance : (Fault.t * Fault.t) list;
  stats : stats;
}

module FH = Hashtbl.Make (struct
  type t = Fault.t

  let equal = Fault.equal
  let hash = Fault.hash
end)

(* ------------------------------------------------------------------ *)
(* Propagation engine                                                  *)
(* ------------------------------------------------------------------ *)

exception Contradiction

(* Shared mutable propagation state. [work] refines [base] between
   [undo_to] calls; the trail records every assignment made after the base
   fixpoint. Each net appears at most once on the trail (values only go
   X -> binary), which is what makes [undo_to] restoring base values
   correct. *)
type prop = {
  c : Circuit.t;
  base : V3.t array;
  work : V3.t array;
  uncontrollable : bool array;
      (* source reads as permanent X: a binary value there is absurd *)
  mutable trail : (int * V3.t * reason) list;
  q : int Queue.t;
}

let assign p n v reason =
  if V3.is_binary v then begin
    let cur = p.work.(n) in
    if V3.equal cur v then ()
    else if V3.is_binary cur || p.uncontrollable.(n) then raise Contradiction
    else begin
      p.work.(n) <- v;
      p.trail <- (n, v, reason) :: p.trail;
      Queue.add n p.q
    end
  end

let eval_fanins p fan = Array.map (fun k -> p.work.(k)) fan

(* Forward: the gate's output follows from its fanins (a conflict with an
   already-known output surfaces inside [assign]). *)
let forward p j g fan = assign p j (Gate.eval g (eval_fanins p fan)) (Forward j)

(* Backward: the gate's output is known; justify what must hold at its
   fanins. Unit-solves the last unknown input for every gate type, and
   forces all inputs non-controlling when the output is at the
   non-controlled value. *)
let backward p j g fan =
  let v = p.work.(j) in
  if V3.is_binary v then begin
    let unknown = ref (-1) and n_unknown = ref 0 in
    Array.iteri
      (fun q k ->
        if not (V3.is_binary p.work.(k)) then begin
          unknown := q;
          incr n_unknown
        end)
      fan;
    if !n_unknown = 0 then begin
      if not (V3.equal (Gate.eval g (eval_fanins p fan)) v) then
        raise Contradiction
    end
    else if !n_unknown = 1 then begin
      let q = !unknown in
      let vals = eval_fanins p fan in
      vals.(q) <- V3.Zero;
      let ok0 = V3.equal (Gate.eval g vals) v in
      vals.(q) <- V3.One;
      let ok1 = V3.equal (Gate.eval g vals) v in
      match ok0, ok1 with
      | true, true -> ()
      | true, false -> assign p fan.(q) V3.Zero (Backward { node = j; pin = q })
      | false, true -> assign p fan.(q) V3.One (Backward { node = j; pin = q })
      | false, false -> raise Contradiction
    end
    else
      match Gate.controlling g with
      | Some ctrl when V3.equal v (V3.bnot (Gate.controlled_output g)) ->
        Array.iteri
          (fun q k ->
            if not (V3.is_binary p.work.(k)) then
              assign p k (V3.bnot ctrl) (Backward { node = j; pin = q }))
          fan
      | _ -> ()
  end

let settle p =
  while not (Queue.is_empty p.q) do
    let n = Queue.pop p.q in
    (match Circuit.node p.c n with
    | Circuit.Gate (g, fan) -> backward p n g fan
    | _ -> ());
    Array.iter
      (fun j ->
        match Circuit.node p.c j with
        | Circuit.Gate (g, fan) ->
          forward p j g fan;
          backward p j g fan
        | _ -> ())
      p.c.Circuit.fanout.(n)
  done

(* Undo trail entries down to (physical) [mark], restoring base values. *)
let undo_to p mark =
  let rec go l =
    if l != mark then
      match l with
      | (n, _, _) :: tl ->
        p.work.(n) <- p.base.(n);
        go tl
      | [] -> assert false
  in
  go p.trail;
  p.trail <- mark;
  Queue.clear p.q

(* Run [assumptions] on top of the current state; on conflict the partial
   trail is left for the caller to undo. *)
let try_assume p assumptions =
  match
    List.iter (fun (n, v, r) -> assign p n v r) assumptions;
    settle p
  with
  | () -> true
  | exception Contradiction -> false

(* ------------------------------------------------------------------ *)
(* Base fixpoint and static net classes                                *)
(* ------------------------------------------------------------------ *)

let make_prop (view : View.t) =
  let c = view.View.circuit in
  let n = Circuit.num_nets c in
  let uncontrollable = Array.make n false in
  let seeds = ref [] in
  for i = 0 to n - 1 do
    match Circuit.node c i with
    | Circuit.Const v ->
      if V3.is_binary v then seeds := (i, v, Tied) :: !seeds
      else uncontrollable.(i) <- true
    | Circuit.Input | Circuit.Dff _ -> (
      match view.View.fixed.(i) with
      | Some v when V3.is_binary v -> seeds := (i, v, Tied) :: !seeds
      | Some _ -> uncontrollable.(i) <- true
      | None -> if not view.View.free.(i) then uncontrollable.(i) <- true)
    | Circuit.Gate _ -> ()
  done;
  let p =
    {
      c;
      base = Array.make n V3.X;
      work = Array.make n V3.X;
      uncontrollable;
      trail = [];
      q = Queue.create ();
    }
  in
  (* cannot conflict: values are only derived forward from the (single
     driver per net) seeds *)
  let ok = try_assume p !seeds in
  assert ok;
  let reasons = Array.make n None in
  List.iter (fun (i, _, r) -> reasons.(i) <- Some r) p.trail;
  (* promote the fixpoint to the permanent base *)
  Array.blit p.work 0 p.base 0 n;
  p.trail <- [];
  (p, reasons)

let compute_def_binary (view : View.t) base =
  let c = view.View.circuit in
  let n = Circuit.num_nets c in
  let def = Array.make n false in
  Array.iter
    (fun i ->
      def.(i) <-
        V3.is_binary base.(i)
        ||
        match Circuit.node c i with
        | Circuit.Const v -> V3.is_binary v
        | Circuit.Input | Circuit.Dff _ -> view.View.free.(i)
        | Circuit.Gate (_, fan) -> Array.for_all (fun k -> def.(k)) fan)
    c.Circuit.topo;
  def

let compute_obs_src (view : View.t) =
  let n = Circuit.num_nets view.View.circuit in
  let obs = Array.make n false in
  Array.iter
    (fun op -> obs.(View.obs_source_net view op) <- true)
    view.View.observe;
  obs

(* ------------------------------------------------------------------ *)
(* Fault-effect blocking                                               *)
(* ------------------------------------------------------------------ *)

exception Observable

type entry = Net of int | Blocked of blocker | Obs

(* A pin of gate [j] blocks every fault effect entering [j] when its side
   net is forced to the controlling value and lies outside the fault's
   cone (an in-cone side could carry the effect itself and re-open the
   path). *)
let blocker_of p in_cone j g fan =
  match Gate.controlling g with
  | None -> None
  | Some ctrl ->
    let found = ref None in
    Array.iteri
      (fun q k ->
        if !found = None && V3.equal p.work.(k) ctrl && not (in_cone k) then
          found := Some { node = j; pin = q; side = k; ctrl })
      fan;
    !found

(* Where the fault effect enters the net graph under the current
   assignment. A branch fault must first pass its own gate; [Obs] is the
   conservative "might be directly observed" answer. *)
let entry_of p in_cone (f : Fault.t) =
  match f.Fault.site with
  | Fault.Stem s -> Net s
  | Fault.Branch { node; pin } -> (
    match Circuit.node p.c node with
    | Circuit.Gate (g, fan) -> (
      match Gate.controlling g with
      | None -> Net node
      | Some ctrl ->
        let found = ref None in
        Array.iteri
          (fun q k ->
            if
              !found = None && q <> pin
              && V3.equal p.work.(k) ctrl
              && not (in_cone k)
            then found := Some { node; pin = q; side = k; ctrl })
          fan;
        (match !found with Some b -> Blocked b | None -> Net node))
    | Circuit.Dff _ | Circuit.Input | Circuit.Const _ -> Obs)

(* Sound, cone-aware cut search: explore every net the effect could
   reach; collect the blocked gates on the frontier. [None] when an
   observation point is reachable. *)
let blocked_cut p obs_src in_cone seen entry =
  let cut = ref [] in
  let cleanup = ref [] in
  let rec go w =
    if not seen.(w) then begin
      seen.(w) <- true;
      cleanup := w :: !cleanup;
      if obs_src.(w) then raise Observable;
      Array.iter
        (fun j ->
          match Circuit.node p.c j with
          | Circuit.Gate (g, fan) ->
            if not seen.(j) then (
              match blocker_of p in_cone j g fan with
              | None -> go j
              | Some b -> cut := b :: !cut)
          | _ -> ())
        p.c.Circuit.fanout.(w)
    end
  in
  let result =
    match entry with
    | Obs -> None
    | Blocked b -> Some [ b ]
    | Net e -> (
      match go e with
      | () ->
        Some
          (List.sort_uniq
             (fun a b -> Stdlib.compare (a.node, a.pin) (b.node, b.pin))
             !cut)
      | exception Observable -> None)
  in
  List.iter (fun w -> seen.(w) <- false) !cleanup;
  result

(* Fault-independent observability marker under the current assignment:
   [scratch.(w)] = an effect at [w] might reach an observation point,
   ignoring cones. Only used to filter FIRE candidates; the sound
   per-fault check is [blocked_cut]. *)
let cheap_obs_ok p obs_src scratch =
  let c = p.c in
  Array.fill scratch 0 (Array.length scratch) false;
  let topo = c.Circuit.topo in
  for k = Array.length topo - 1 downto 0 do
    let i = topo.(k) in
    match Circuit.node c i with
    | Circuit.Gate (g, fan) when scratch.(i) || obs_src.(i) ->
      let forced_ctrl q =
        match Gate.controlling g with
        | None -> false
        | Some ctrl -> V3.equal p.work.(fan.(q)) ctrl
      in
      Array.iteri
        (fun q k ->
          if not scratch.(k) then begin
            let blocked = ref false in
            Array.iteri
              (fun q' _ -> if q' <> q && forced_ctrl q' then blocked := true)
              fan;
            if not !blocked then scratch.(k) <- true
          end)
        fan
    | _ -> ()
  done;
  scratch

(* ------------------------------------------------------------------ *)
(* Depth-1 recursive learning                                          *)
(* ------------------------------------------------------------------ *)

let stuck_value (f : Fault.t) = V3.of_bool f.Fault.stuck
let max_learn_gates = 2

(* Pick up to [max_learn_gates] unjustified gates (output at the
   controlled value, no input at the controlling value, >= 2 unknown
   inputs). Every way to justify one is tried; assignments common to all
   consistent justifications are learned into the current state. No
   consistent justification at all means the state is contradictory.
   Returns the number of learned assignments. *)
let recursive_learn p =
  let c = p.c in
  let learned = ref 0 in
  let picked = ref 0 in
  let topo = c.Circuit.topo in
  let n_topo = Array.length topo in
  let k = ref 0 in
  while !picked < max_learn_gates && !k < n_topo do
    let j = topo.(!k) in
    incr k;
    match Circuit.node c j with
    | Circuit.Gate (g, fan) -> (
      match Gate.controlling g with
      | Some ctrl
        when V3.equal p.work.(j) (Gate.controlled_output g)
             && (not (Array.exists (fun i -> V3.equal p.work.(i) ctrl) fan))
             && Array.fold_left
                  (fun acc i ->
                    if V3.is_binary p.work.(i) then acc else acc + 1)
                  0 fan
                >= 2 ->
        incr picked;
        let common = ref None in
        Array.iter
          (fun i ->
            if not (V3.is_binary p.work.(i)) then begin
              let mark = p.trail in
              if try_assume p [ (i, ctrl, Assumed) ] then begin
                let branch = ref [] in
                let rec collect l =
                  if l != mark then
                    match l with
                    | (n, v, _) :: tl ->
                      branch := (n, v) :: !branch;
                      collect tl
                    | [] -> assert false
                in
                collect p.trail;
                undo_to p mark;
                common :=
                  Some
                    (match !common with
                    | None -> !branch
                    | Some prev ->
                      List.filter
                        (fun (n, v) ->
                          List.exists
                            (fun (n', v') -> n = n' && V3.equal v v')
                            prev)
                        !branch)
              end
              else undo_to p mark
            end)
          fan;
        (match !common with
        | None ->
          (* no input can supply the controlling value *)
          raise Contradiction
        | Some fixes ->
          List.iter
            (fun (n, v) ->
              if not (V3.is_binary p.work.(n)) then begin
                assign p n v (Learned j);
                incr learned
              end)
            fixes;
          settle p)
      | _ -> ())
    | _ -> ()
  done;
  !learned

(* One deterministic deduction step: propagation plus depth-1 learning;
   [false] when the assumptions are contradictory. The refutations found
   by [analyze] and their re-derivation in [check] both go through this
   single entry point, so a shipped refutation always replays. *)
let deduce p assumptions =
  try_assume p assumptions
  &&
  match recursive_learn p with
  | _ -> true
  | exception Contradiction -> false

(* ------------------------------------------------------------------ *)
(* Dominance                                                           *)
(* ------------------------------------------------------------------ *)

(* For an and/or-family gate, every test for the [stuck-at not-c] fault
   on an input pin excites and propagates the [stuck-at not-o] fault on
   the output stem: the output fault dominates the pin fault, so a proven
   untestable output fault drags its pin faults along. *)
let dominance_pairs (c : Circuit.t) index =
  let pairs = ref [] in
  let n = Circuit.num_nets c in
  for i = 0 to n - 1 do
    match Circuit.node c i with
    | Circuit.Gate (g, fan) -> (
      match Gate.controlling g with
      | Some ctrl ->
        let out = Gate.controlled_output g in
        let dom = { Fault.site = Fault.Stem i; stuck = V3.equal out V3.Zero } in
        if FH.mem index dom then
          Array.iteri
            (fun pin _ ->
              let sub =
                Fault.pin_fault c ~node:i ~pin ~stuck:(V3.equal ctrl V3.Zero)
              in
              if (not (Fault.equal sub dom)) && FH.mem index sub then
                pairs := (dom, sub) :: !pairs)
            fan
      | None -> ())
    | _ -> ()
  done;
  List.rev !pairs

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                     *)
(* ------------------------------------------------------------------ *)

let analyze ?(learn = true) (view : View.t) ~(faults : Fault.t array) =
  let t0 = Sys.time () in
  let c = view.View.circuit in
  let n = Circuit.num_nets c in
  let p, base_reason = make_prop view in
  let base = p.base in
  let def_binary = compute_def_binary view base in
  let obs_src = compute_obs_src view in
  let nf = Array.length faults in
  let index = FH.create (2 * nf) in
  Array.iteri (fun i f -> FH.replace index f i) faults;
  let impossible = Array.make (2 * n) false in
  for i = 0 to n - 1 do
    if V3.is_binary base.(i) then
      impossible.(lit ~net:i ~value:(V3.equal base.(i) V3.Zero)) <- true
    else if p.uncontrollable.(i) then begin
      impossible.(lit ~net:i ~value:false) <- true;
      impossible.(lit ~net:i ~value:true) <- true
    end
  done;
  let seen = Array.make n false in
  let obs_scratch = Array.make n false in
  let proofs = Array.make nf None in
  let n_proven = ref 0 in
  let prove i pr =
    if proofs.(i) = None then begin
      proofs.(i) <- Some pr;
      incr n_proven
    end
  in
  (* cone membership, cached per fault seed *)
  let cone_cache = Hashtbl.create 64 in
  let with_cone f k =
    let key = Fault.seed f in
    let cone =
      match Hashtbl.find_opt cone_cache key with
      | Some cone -> cone
      | None ->
        let cone = Fault.cone c f in
        Hashtbl.replace cone_cache key cone;
        cone
    in
    let in_cone = Array.make n false in
    Array.iter (fun w -> in_cone.(w) <- true) cone;
    k (fun w -> in_cone.(w))
  in
  (* --- pass 1: base constants alone -------------------------------- *)
  Array.iteri
    (fun i f ->
      let s = Fault.site_net c f in
      if V3.equal base.(s) (stuck_value f) then prove i Unexcitable
      else
        with_cone f (fun in_cone ->
            match blocked_cut p obs_src in_cone seen (entry_of p in_cone f) with
            | Some cut -> prove i (Unobservable cut)
            | None -> ()))
    faults;
  (* --- pass 2: one propagation per literal -------------------------- *)
  let succ = Array.make (2 * n) [] in
  let learned_total = ref 0 in
  let blocked0 = Bytes.make (max nf 1) '\000' in
  let fire_candidates = ref [] in
  (* cheap, cone-unaware "is detection blocked" filter under the current
     branch assignment *)
  let no_cone _ = false in
  let cheap_blocked obs_ok f =
    let s = Fault.site_net c f in
    V3.equal p.work.(s) (stuck_value f)
    ||
    match entry_of p no_cone f with
    | Obs -> false
    | Blocked _ -> true
    | Net e -> not obs_ok.(e)
  in
  for m = 0 to n - 1 do
    if (not (V3.is_binary base.(m))) && not p.uncontrollable.(m) then begin
      let branch value =
        let mark = p.trail in
        let applied = try_assume p [ (m, V3.of_bool value, Assumed) ] in
        let applied =
          applied
          && ((not learn)
             ||
             match recursive_learn p with
             | k ->
               learned_total := !learned_total + k;
               true
             | exception Contradiction -> false)
        in
        let l = lit ~net:m ~value in
        if not applied then begin
          impossible.(l) <- true;
          undo_to p mark;
          false
        end
        else begin
          (* record the closure as CSR successors + contrapositives *)
          let rec edges tl =
            if tl != mark then
              match tl with
              | (net, v', _) :: rest ->
                if net <> m then begin
                  let l' = lit ~net ~value:(V3.equal v' V3.One) in
                  succ.(l) <- l' :: succ.(l);
                  (* contraposition of a ternary implication only holds
                     when the branch net cannot settle at X in a completed
                     test: [m = b] forcing [x] excludes [m = b] under
                     [not x], which pins [m] only if [m] must be binary *)
                  if def_binary.(m) then
                    succ.(l' lxor 1) <- (l lxor 1) :: succ.(l' lxor 1)
                end;
                edges rest
              | [] -> assert false
          in
          edges p.trail;
          (* FIRE filter under this branch (state still applied) *)
          if def_binary.(m) && !n_proven < nf then begin
            let obs_ok = cheap_obs_ok p obs_src obs_scratch in
            Array.iteri
              (fun i f ->
                if proofs.(i) = None && cheap_blocked obs_ok f then
                  if value then begin
                    if Bytes.get blocked0 i = '\001' then
                      fire_candidates := (m, i) :: !fire_candidates
                  end
                  else Bytes.set blocked0 i '\001')
              faults
          end;
          undo_to p mark;
          true
        end
      in
      if nf > 0 then Bytes.fill blocked0 0 nf '\000';
      let ok0 = branch false in
      (* a conflicting 0-branch blocks every fault vacuously: candidates
         are whatever the 1-branch blocks *)
      if (not ok0) && def_binary.(m) then Bytes.fill blocked0 0 nf '\001';
      ignore (branch true : bool)
    end
  done;
  (* A literal whose accumulated implication set (its own closure plus
     contrapositives contributed by other branches) contains both values
     of some net is itself impossible: every edge is a theorem about
     completed tests (the contrapositives are def-binary-gated above), so
     the literal implies a contradiction. One sweep after the graph is
     complete keeps the published graph conflict-free on its possible
     literals. For each such literal the sweep also tries to extract a
     {!refutation} that {!check} can replay from scratch; composed edges
     need not re-derive by one deduction, which is why the provers below
     treat the pre-sweep snapshot [impossible_direct] and the verified
     [refutations] separately. *)
  let impossible_direct = Array.copy impossible in
  let refutations = Hashtbl.create 16 in
  (* assuming [m = mv] either conflicts or forces the negation of [l] *)
  let derives_not l m mv =
    let mark = p.trail in
    let ok = deduce p [ (m, mv, Assumed) ] in
    let r =
      (not ok) || V3.equal p.work.(l / 2) (V3.of_bool (l land 1 = 0))
    in
    undo_to p mark;
    r
  in
  let refute l candidates =
    let net = l / 2 in
    let v = V3.of_bool (l land 1 = 1) in
    let mark = p.trail in
    let ok = deduce p [ (net, v, Assumed) ] in
    if not ok then begin
      undo_to p mark;
      Some Direct
    end
    else begin
      (* the literal's own deduction closure, for the [Via] first leg *)
      let own = Hashtbl.create 32 in
      let rec walk tl =
        if tl != mark then
          match tl with
          | (m, mv, _) :: rest ->
            if m <> net then Hashtbl.replace own m mv;
            walk rest
          | [] -> assert false
      in
      walk p.trail;
      undo_to p mark;
      let rec pick = function
        | [] -> None
        | m :: rest -> (
          match Hashtbl.find_opt own m with
          | Some mv when derives_not l m mv -> Some (Via { via = m; value = mv })
          | Some _ -> pick rest
          | None ->
            if
              def_binary.(m)
              && derives_not l m V3.Zero
              && derives_not l m V3.One
            then Some (Cases m)
            else pick rest)
      in
      pick candidates
    end
  in
  for l = 0 to (2 * n) - 1 do
    if not impossible.(l) then begin
      let rec conflict_nets acc = function
        | a :: (b :: _ as rest) ->
          conflict_nets (if a lxor 1 = b then (a / 2) :: acc else acc) rest
        | [ _ ] | [] -> acc
      in
      match conflict_nets [] (List.sort_uniq Int.compare succ.(l)) with
      | [] -> ()
      | candidates -> (
        impossible.(l) <- true;
        match refute l candidates with
        | Some r -> Hashtbl.replace refutations l r
        | None -> ())
    end
  done;
  (* --- pass 3: verify FIRE candidates soundly ----------------------- *)
  let verify_branch m value f in_cone =
    let mark = p.trail in
    let ev =
      if not (try_assume p [ (m, V3.of_bool value, Assumed) ]) then
        Some Conflict
      else begin
        let s = Fault.site_net c f in
        if V3.equal p.work.(s) (stuck_value f) then
          Some (Excitation (stuck_value f))
        else
          match blocked_cut p obs_src in_cone seen (entry_of p in_cone f) with
          | Some cut -> Some (Cut cut)
          | None -> None
      end
    in
    undo_to p mark;
    ev
  in
  List.iter
    (fun (m, i) ->
      if proofs.(i) = None then
        let f = faults.(i) in
        with_cone f (fun in_cone ->
            match verify_branch m false f in_cone with
            | None -> ()
            | Some if0 -> (
              match verify_branch m true f in_cone with
              | None -> ()
              | Some if1 -> prove i (Fire { m; if0; if1 }))))
    (List.rev !fire_candidates);
  (* --- pass 4: detection-necessary literals ------------------------- *)
  (* Every test must set the site net opposite to the stuck value, and a
     branch fault's effect passes its own gate only when every other pin
     sits at the non-controlling value (any side at the controlling value
     forces the output in both machines, and an X side leaves the faulty
     output X — never a definite detection). A refuted literal among
     these requirements closes the fault. *)
  let refutation_of l =
    if impossible_direct.(l) then begin
      (* replay so the shipped proof stands on its own even when the
         pass-2 conflict came out of learning *)
      let mark = p.trail in
      let ok = deduce p [ (l / 2, V3.of_bool (l land 1 = 1), Assumed) ] in
      undo_to p mark;
      if ok then None else Some Direct
    end
    else if impossible.(l) then Hashtbl.find_opt refutations l
    else None
  in
  Array.iteri
    (fun i f ->
      if proofs.(i) = None then begin
        let s = Fault.site_net c f in
        let need = V3.bnot (stuck_value f) in
        (match refutation_of (lit ~net:s ~value:(V3.equal need V3.One)) with
        | Some Direct -> prove i Unexcitable
        | Some refutation ->
          prove i (Requires { pin = None; net = s; value = need; refutation })
        | None -> ());
        if proofs.(i) = None then
          match f.Fault.site with
          | Fault.Branch { node; pin } -> (
            match Circuit.node c node with
            | Circuit.Gate (g, fan) -> (
              match Gate.controlling g with
              | Some ctrl ->
                let nctrl = V3.bnot ctrl in
                Array.iteri
                  (fun q k ->
                    if proofs.(i) = None && q <> pin then
                      match
                        refutation_of
                          (lit ~net:k ~value:(V3.equal nctrl V3.One))
                      with
                      | Some refutation ->
                        prove i
                          (Requires
                             { pin = Some q; net = k; value = nctrl; refutation })
                      | None -> ())
                  fan
              | None -> ())
            | _ -> ())
          | Fault.Stem _ -> ()
      end)
    faults;
  (* --- pass 5: dominance -------------------------------------------- *)
  let dominance = dominance_pairs c index in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (dom, sub) ->
        let di = FH.find index dom and si = FH.find index sub in
        if proofs.(di) <> None && proofs.(si) = None then begin
          prove si (Dominated dom);
          changed := true
        end)
      dominance
  done;
  (* --- results ------------------------------------------------------ *)
  let untestable = ref [] in
  for i = nf - 1 downto 0 do
    match proofs.(i) with
    | Some proof -> untestable := { fault = faults.(i); proof } :: !untestable
    | None -> ()
  done;
  let untestable = !untestable in
  let off = Array.make ((2 * n) + 1) 0 in
  let lists = Array.map (fun l -> List.sort_uniq Int.compare l) succ in
  for l = 0 to (2 * n) - 1 do
    off.(l + 1) <- off.(l) + List.length lists.(l)
  done;
  let dst = Array.make (max off.(2 * n) 1) 0 in
  for l = 0 to (2 * n) - 1 do
    List.iteri (fun k d -> dst.(off.(l) + k) <- d) lists.(l)
  done;
  let n_constants =
    Array.fold_left
      (fun acc r ->
        match r with Some (Forward _ | Backward _) -> acc + 1 | _ -> acc)
      0 base_reason
  in
  let n_impossible =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 impossible
  in
  {
    view;
    base;
    base_reason;
    def_binary;
    impossible;
    graph = { off; dst };
    untestable;
    dominance;
    stats =
      {
        nets = n;
        targets = nf;
        constants = n_constants;
        implications = off.(2 * n);
        learned = !learned_total;
        impossible = n_impossible;
        untestable = List.length untestable;
        dominance_edges = List.length dominance;
        seconds = Sys.time () -. t0;
      };
  }

let impossible t net v =
  match v with
  | V3.X -> false
  | v -> t.impossible.(lit ~net ~value:(V3.equal v V3.One))

let implied t ~net ~value =
  let l = lit ~net ~value in
  let res = ref [] in
  for k = t.graph.off.(l + 1) - 1 downto t.graph.off.(l) do
    let d = t.graph.dst.(k) in
    res := (d / 2, d land 1 = 1) :: !res
  done;
  !res

(* ------------------------------------------------------------------ *)
(* Proof checking                                                      *)
(* ------------------------------------------------------------------ *)

let check t (u : untestable) =
  let view = t.view in
  let c = view.View.circuit in
  let p, _ = make_prop view in
  let obs_src = compute_obs_src view in
  let n = Circuit.num_nets c in
  let seen = Array.make n false in
  let f = u.fault in
  let s = Fault.site_net c f in
  let sv = stuck_value f in
  let in_cone_of f =
    let cone = Fault.cone c f in
    let mem = Array.make n false in
    Array.iter (fun w -> mem.(w) <- true) cone;
    fun w -> mem.(w)
  in
  let conflicts assumptions =
    let mark = p.trail in
    let ok = deduce p assumptions in
    undo_to p mark;
    not ok
  in
  let valid_cut in_cone cut =
    List.for_all
      (fun b ->
        match Circuit.node c b.node with
        | Circuit.Gate (g, fan) ->
          b.pin >= 0
          && b.pin < Array.length fan
          && fan.(b.pin) = b.side
          && Gate.controlling g = Some b.ctrl
          && V3.equal p.work.(b.side) b.ctrl
          && not (in_cone b.side)
        | _ -> false)
      cut
  in
  let blocked_now in_cone =
    blocked_cut p obs_src in_cone seen (entry_of p in_cone f) <> None
  in
  match u.proof with
  | Unexcitable ->
    V3.equal p.base.(s) sv || conflicts [ (s, V3.bnot sv, Assumed) ]
  | Unobservable cut ->
    let in_cone = in_cone_of f in
    valid_cut in_cone cut && blocked_now in_cone
  | Fire { m; if0; if1 } ->
    t.def_binary.(m)
    && (not (V3.is_binary p.base.(m)))
    &&
    let branch value ev =
      let mark = p.trail in
      let applied = try_assume p [ (m, V3.of_bool value, Assumed) ] in
      let ok =
        match ev with
        | Conflict -> not applied
        | Excitation v -> applied && V3.equal v sv && V3.equal p.work.(s) sv
        | Cut cut ->
          applied
          &&
          let in_cone = in_cone_of f in
          valid_cut in_cone cut && blocked_now in_cone
      in
      undo_to p mark;
      ok
    in
    branch false if0 && branch true if1
  | Requires { pin; net; value; refutation } ->
    (* the literal really is necessary for detection *)
    let requirement_ok =
      V3.is_binary value
      &&
      match pin with
      | None -> net = s && V3.equal value (V3.bnot sv)
      | Some q -> (
        match f.Fault.site with
        | Fault.Branch { node; pin = fp } when q <> fp -> (
          match Circuit.node c node with
          | Circuit.Gate (g, fan) -> (
            match Gate.controlling g with
            | Some ctrl ->
              q >= 0
              && q < Array.length fan
              && fan.(q) = net
              && V3.equal value (V3.bnot ctrl)
            | None -> false)
          | _ -> false)
        | _ -> false)
    in
    (* ... and really is refuted: re-derive each deduction leg *)
    let derives_neg m mv =
      let mark = p.trail in
      let ok = deduce p [ (m, mv, Assumed) ] in
      let r = (not ok) || V3.equal p.work.(net) (V3.bnot value) in
      undo_to p mark;
      r
    in
    requirement_ok
    && (match refutation with
       | Direct -> conflicts [ (net, value, Assumed) ]
       | Via { via; value = vv } ->
         let fwd =
           let mark = p.trail in
           let ok = deduce p [ (net, value, Assumed) ] in
           let r = (not ok) || V3.equal p.work.(via) vv in
           undo_to p mark;
           r
         in
         V3.is_binary vv && fwd && derives_neg via vv
       | Cases on ->
         t.def_binary.(on) && derives_neg on V3.Zero && derives_neg on V3.One)
  | Dominated dom -> (
    (* the dominator must be a proven output fault whose gate reads the
       dominated fault's pin at the matching polarities *)
    match dom.Fault.site with
    | Fault.Stem j -> (
      match Circuit.node c j with
      | Circuit.Gate (g, fan) -> (
        match Gate.controlling g with
        | Some ctrl ->
          dom.Fault.stuck = V3.equal (Gate.controlled_output g) V3.Zero
          && Array.exists
               (fun pin ->
                 Fault.equal f
                   (Fault.pin_fault c ~node:j ~pin
                      ~stuck:(V3.equal ctrl V3.Zero)))
               (Array.init (Array.length fan) (fun i -> i))
          && List.exists (fun u' -> Fault.equal u'.fault dom) t.untestable
        | None -> false)
      | _ -> false)
    | Fault.Branch _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_net c n = J.String (Circuit.net_name c n)
let json_v3 v = J.String (String.make 1 (V3.to_char v))

let reason_to_json c = function
  | Tied -> J.Obj [ ("kind", J.String "tied") ]
  | Forward node ->
    J.Obj [ ("kind", J.String "forward"); ("node", json_net c node) ]
  | Backward { node; pin } ->
    J.Obj
      [
        ("kind", J.String "backward");
        ("node", json_net c node);
        ("pin", J.Int pin);
      ]
  | Assumed -> J.Obj [ ("kind", J.String "assumed") ]
  | Learned node ->
    J.Obj [ ("kind", J.String "learned"); ("node", json_net c node) ]

let blocker_to_json c b =
  J.Obj
    [
      ("node", json_net c b.node);
      ("pin", J.Int b.pin);
      ("side", json_net c b.side);
      ("ctrl", json_v3 b.ctrl);
    ]

let evidence_to_json c = function
  | Conflict -> J.Obj [ ("kind", J.String "conflict") ]
  | Excitation v ->
    J.Obj [ ("kind", J.String "excitation"); ("value", json_v3 v) ]
  | Cut cut ->
    J.Obj
      [
        ("kind", J.String "cut");
        ("blocked", J.List (List.map (blocker_to_json c) cut));
      ]

let refutation_to_json c = function
  | Direct -> J.Obj [ ("kind", J.String "direct") ]
  | Via { via; value } ->
    J.Obj
      [
        ("kind", J.String "via");
        ("net", json_net c via);
        ("value", json_v3 value);
      ]
  | Cases on -> J.Obj [ ("kind", J.String "cases"); ("net", json_net c on) ]

let proof_to_json c = function
  | Unexcitable -> J.Obj [ ("kind", J.String "unexcitable") ]
  | Unobservable cut ->
    J.Obj
      [
        ("kind", J.String "unobservable");
        ("blocked", J.List (List.map (blocker_to_json c) cut));
      ]
  | Fire { m; if0; if1 } ->
    J.Obj
      [
        ("kind", J.String "fire");
        ("net", json_net c m);
        ("if0", evidence_to_json c if0);
        ("if1", evidence_to_json c if1);
      ]
  | Requires { pin; net; value; refutation } ->
    J.Obj
      ((("kind", J.String "requires")
       :: (match pin with None -> [] | Some q -> [ ("pin", J.Int q) ]))
      @ [
          ("net", json_net c net);
          ("value", json_v3 value);
          ("refutation", refutation_to_json c refutation);
        ])
  | Dominated dom ->
    J.Obj
      [ ("kind", J.String "dominated"); ("by", J.String (Fault.to_string c dom)) ]

let to_json t =
  let c = t.view.View.circuit in
  let n = t.stats.nets in
  let constants = ref [] in
  for i = n - 1 downto 0 do
    match t.base_reason.(i) with
    | Some ((Forward _ | Backward _) as r) ->
      constants :=
        J.Obj
          [
            ("net", json_net c i);
            ("value", json_v3 t.base.(i));
            ("reason", reason_to_json c r);
          ]
        :: !constants
    | _ -> ()
  done;
  J.Obj
    [
      ("version", J.Int 1);
      ("circuit", J.String c.Circuit.name);
      ("nets", J.Int n);
      ("targets", J.Int t.stats.targets);
      ("constants", J.List !constants);
      ( "stats",
        J.Obj
          [
            ("constants", J.Int t.stats.constants);
            ("implications", J.Int t.stats.implications);
            ("learned", J.Int t.stats.learned);
            ("impossible", J.Int t.stats.impossible);
            ("untestable", J.Int t.stats.untestable);
            ("dominance_edges", J.Int t.stats.dominance_edges);
            ("seconds", J.Float t.stats.seconds);
          ] );
      ( "untestable",
        J.List
          (List.map
             (fun u ->
               J.Obj
                 [
                   ("fault", J.String (Fault.to_string c u.fault));
                   ("site", json_net c (Fault.site_net c u.fault));
                   ("stuck", J.Int (if u.fault.Fault.stuck then 1 else 0));
                   ("proof", proof_to_json c u.proof);
                 ])
             t.untestable) );
      ( "dominance",
        J.List
          (List.map
             (fun (dom, sub) ->
               J.Obj
                 [
                   ("dominator", J.String (Fault.to_string c dom));
                   ("dominated", J.String (Fault.to_string c sub));
                 ])
             t.dominance) );
    ]
