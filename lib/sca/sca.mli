(** Static circuit analysis: constant propagation, a static implication
    engine, and fault-independent untestability proofs.

    Everything here is search-free: one ternary constant-propagation
    fixpoint over the scan-mode model ({!View.t}), one implication
    propagation per net literal (SOCRATES-style static learning, stored as
    a flat CSR graph), and a FIRE-style pass that finds faults whose
    detection would require conflicting values on a single net. Each
    untestability claim carries a machine-checkable proof ({!check}
    re-derives it from scratch), and the soundness contract is that every
    statically proven fault is also {!Fst_atpg.Podem}-untestable on the
    same view — the flow may therefore drop them without running ATPG.

    The analysis is deliberately conservative: it only ever {e proves}
    untestability; failing to prove a fault says nothing. All reasoning is
    on the fault-free (good) machine except propagation blocking, which is
    made fault-aware through {!Fst_fault.Fault.cone}: a side input forced
    to a controlling value only blocks the fault effect when that side net
    lies outside the fault's cone (a reconvergent side could otherwise
    carry the effect itself and re-open the path). *)

open Fst_logic
open Fst_netlist
open Fst_fault

(** {1 Derivations} *)

(** Why a net holds a constant under the scan-mode model. *)
type reason =
  | Tied  (** view-fixed source or tie cell *)
  | Forward of int  (** output of gate node [n] implied by its fanins *)
  | Backward of { node : int; pin : int }
      (** fanin [pin] of node [node] justified from the node's output *)
  | Assumed  (** the assumption literal of an implication query *)
  | Learned of int
      (** depth-1 recursive learning: common consequence of every way to
          justify unjustified gate [n] *)

(** Implication graph in flat CSR form over literals. Literal
    [2*net + 1] is [net = 1], literal [2*net] is [net = 0]. Edges of
    literal [l] are [dst.(off.(l)) .. dst.(off.(l+1) - 1)]; the edge set
    is the propagation closure of the single assumption [l] over the base
    constants (direct implications, transitive consequences, learned
    implications, plus contrapositives — recorded only when the branch
    net is definitely binary in a completed test, the condition under
    which contraposition of a ternary implication is valid). Every edge
    is a theorem about completed tests; a literal whose edge set names
    both values of one net is marked {!impossible}. *)
type graph = private { off : int array; dst : int array }

val lit : net:int -> value:bool -> int
(** [lit ~net ~value] is the literal id used by {!graph} and
    {!impossible}. *)

(** {1 Proofs} *)

(** One element of a propagation-blocking cut: gate [node]'s side input
    [pin] (reading [side]) is forced to the gate's controlling value
    [ctrl], and [side] is outside the fault's cone, so no fault effect
    passes [node]. *)
type blocker = { node : int; pin : int; side : int; ctrl : V3.t }

(** What blocks detection under one branch of a FIRE split. *)
type branch_evidence =
  | Conflict  (** the branch assumption contradicts the base constants *)
  | Excitation of V3.t
      (** the site net is implied to the stuck value, so the fault cannot
          be excited *)
  | Cut of blocker list
      (** every path from the fault site to an observation point crosses
          one of these blocked gates *)

(** Machine-checkable refutation of a single literal [net = value]. Each
    variant replays in {!check} as at most three deduction runs
    (propagation plus depth-1 recursive learning). *)
type refutation =
  | Direct  (** assuming the literal deduces a contradiction *)
  | Via of { via : int; value : V3.t }
      (** the literal forces [via = value], which in turn forces the
          literal's negation — two deductions composing to a
          contradiction that neither exhibits alone *)
  | Cases of int
      (** the named net is binary under every completed input assignment
          and both of its values force the literal's negation *)

type proof =
  | Unexcitable
      (** setting the site net opposite to the stuck value is impossible
          (base constant, or the assumption deduces a conflict) *)
  | Unobservable of blocker list
      (** cut under the base constants alone *)
  | Fire of { m : int; if0 : branch_evidence; if1 : branch_evidence }
      (** detection is blocked both when net [m] = 0 and when [m] = 1;
          [m] is binary under every completed input assignment, so no
          test escapes the split *)
  | Requires of {
      pin : int option;
      net : int;
      value : V3.t;
      refutation : refutation;
    }
      (** detection requires the literal [net = value], which is refuted.
          [pin = None]: the excitation requirement (the site net opposite
          to the stuck value). [pin = Some q]: the fault is a branch
          fault, [net] feeds side pin [q] of its node, and the fault
          effect passes the node only when that side holds the
          non-controlling value [value] — a side at the controlling value
          forces the output in both machines. This is what closes the
          scan-mode test-point transparency faults: the forced pin fault
          makes the test point transparent, and the signal pin can be
          shown never to take the one value that would expose it. *)
  | Dominated of Fault.t
      (** every test for this fault also detects the named fault, which
          is itself proven untestable *)

type untestable = { fault : Fault.t; proof : proof }

(** {1 Results} *)

type stats = {
  nets : int;
  targets : int;  (** faults given to {!analyze} *)
  constants : int;  (** gate nets proven constant (tied sources excluded) *)
  implications : int;  (** edges in {!graph}, learned edges included *)
  learned : int;  (** implications found only by recursive learning *)
  impossible : int;  (** literals proven unreachable *)
  untestable : int;
  dominance_edges : int;
      (** dominator/dominated pairs present in the target set *)
  seconds : float;
}

type t = private {
  view : View.t;
  base : V3.t array;  (** constant-propagation fixpoint; [X] = unknown *)
  base_reason : reason option array;
  def_binary : bool array;
      (** net is binary under every completed input assignment *)
  impossible : bool array;  (** indexed by {!lit} *)
  graph : graph;
  untestable : untestable list;  (** subset of the [faults] argument *)
  dominance : (Fault.t * Fault.t) list;
      (** (dominator, dominated) pairs, both members of the target set *)
  stats : stats;
}

val analyze : ?learn:bool -> View.t -> faults:Fault.t array -> t
(** [analyze view ~faults] runs the full static analysis over the given
    fault targets (normally the collapsed hard-fault set). [learn]
    (default [true]) enables depth-1 recursive learning. Deterministic:
    depends only on the view and the fault array. *)

val impossible : t -> int -> V3.t -> bool
(** [impossible t net v] is [true] when the good machine can never hold
    [net = v]; [false] for [X] or non-proven literals. Sound: a [true]
    answer is a theorem about every reachable assignment. *)

val implied : t -> net:int -> value:bool -> (int * bool) list
(** Successors of a literal in {!graph}, decoded back to (net, value). *)

val check : t -> untestable -> bool
(** [check t u] re-derives the proof of [u] from the base constants —
    independent propagation runs, cut re-verification, cone membership —
    and returns [false] on any mismatch. *)

val to_json : t -> Fst_obs.Json.t
(** Versioned JSON report: constants with derivation traces, implication
    and impossible-literal counts, dominance pairs, and one proof object
    per untestable fault ([{"fault"; "site"; "stuck"; "proof": ...}]). *)
