(** Sequential ATPG by iterated time-frame expansion.

    Given a fault, controllability/observability assumptions on the
    flip-flops (derived by the caller from the fault-free portions of the
    scan chain) and the scan-mode input constraints, the driver unrolls the
    circuit for increasing frame counts and runs {!Podem} on each model
    until a test is found or the frame budget is exhausted.

    A returned test prescribes the initial state of the controllable
    flip-flops and per-frame values for the free primary inputs; the caller
    realizes it as a scan sequence and confirms it by fault simulation. *)

open Fst_logic
open Fst_netlist
open Fst_fault

type test = {
  frames : int;
  init_state : (int * V3.t) list;  (** (flip-flop net, initial value) *)
  pi_frames : (int * V3.t) list array;  (** per frame: (input net, value) *)
}

type result = Seq_test of test | Seq_aborted

type stats = { runs : int; backtracks : int }

(** @param should_abort cooperative abort hook: polled before each frame
    count and between PODEM backtracks, so a tripped wall-clock deadline
    or a cancellation token ({!Fst_exec.Pool.token}) stops the search
    promptly instead of letting one target pin a domain. *)
val run :
  ?should_abort:(unit -> bool) ->
  Circuit.t ->
  constraints:(int * V3.t) list ->
  controllable_ff:(int -> bool) ->
  observable_ff:(int -> bool) ->
  fault:Fault.t ->
  frames_list:int list ->
  backtrack_limit:int ->
  result * stats
