(** PODEM test-pattern generation over a combinational
    {!Fst_netlist.View.t}.

    Values are composite good/faulty pairs ({!Fst_logic.Dval.t}); decisions
    are made only at free inputs, guided by SCOAP backtrace; implication is
    three-valued resimulation, so it never conflicts and backtracking is
    driven by objective failure (fault unexcitable, empty D-frontier, no
    X-path). The search is complete unless a rare multi-site frontier case
    forces a heuristic prune, in which case exhaustion reports {!Aborted}
    rather than {!Untestable}. *)

open Fst_logic
open Fst_netlist
open Fst_fault

type result =
  | Test of (int * V3.t) list
      (** assignments (free-input net, binary value); unlisted inputs are
          don't-care *)
  | Untestable  (** proven: no input assignment detects the fault *)
  | Aborted  (** backtrack limit exceeded or completeness lost *)

type stats = { backtracks : int; decisions : int; implications : int }

(** [run view ~faults] searches for a test detecting the fault injected at
    all the given sites simultaneously (a multi-site list models the same
    physical fault replicated across time frames; pass a singleton for an
    ordinary fault).

    @param backtrack_limit default 1000.
    @param should_abort cooperative abort hook, polled between backtracks;
    once it returns true the search reports {!Aborted} at the next
    backtrack. Callers derive it from a wall-clock deadline and/or a
    {!Fst_exec.Pool.token}, so one stuck target cannot pin a domain past
    its budget.
    @param scoap computed from [view] when not supplied (pass it when
    running many faults on one view).
    @param impossible static-implication hints ([impossible net v] = the
    good machine provably never holds [net = v], e.g.
    [Fst_sca.Sca.impossible]). Used to discard excitation sites, backtrace
    candidates and propagation objectives early; when every excitation
    literal is impossible the fault is reported {!Untestable} with no
    search. Because a [true] answer must be a theorem, pruning preserves
    completeness — but it can steer the search to a {e different} test, so
    flows that require bit-identical results leave it off. *)
val run :
  ?backtrack_limit:int ->
  ?should_abort:(unit -> bool) ->
  ?scoap:Fst_testability.Scoap.t ->
  ?impossible:(int -> V3.t -> bool) ->
  View.t ->
  faults:Fault.t list ->
  result * stats
