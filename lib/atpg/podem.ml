open Fst_logic
open Fst_netlist
open Fst_fault
module Scoap = Fst_testability.Scoap

type result = Test of (int * V3.t) list | Untestable | Aborted
type stats = { backtracks : int; decisions : int; implications : int }

(* Values are kept as two flat planes (good machine, faulty machine); the
   faulty plane embeds stem-fault injections, while branch faults are
   applied at the consumer pin on read. *)
type engine = {
  view : View.t;
  c : Circuit.t;
  m : Scoap.t;
  vgood : V3.t array;
  vfault : V3.t array;
  assigned : V3.t array; (* per net; meaningful for free nets only *)
  stem_stuck : V3.t array; (* X = no stem fault on this net *)
  branch_stuck : (int * V3.t) list array; (* per node: (pin, stuck) *)
  mutable branch_pins : (int * int) list; (* all branch-fault (node, pin) *)
  sites : (int * V3.t) list; (* (source net, stuck) for excitation *)
  impossible : int -> V3.t -> bool;
      (* statically proven unreachable literals (Fst_sca hints); pruning
         them keeps the search exhaustive because a [true] answer is a
         theorem about every assignment *)
  obs_target : bool array; (* per net: source of an observation point *)
  visit_stamp : int array;
  mutable stamp : int;
  mutable exhaustive : bool;
  mutable backtracks : int;
  mutable decisions : int;
  mutable implications : int;
}

let make_engine ?(impossible = fun _ _ -> false) view ~scoap ~faults =
  let c = view.View.circuit in
  let n = Circuit.num_nets c in
  let e =
    {
      view;
      c;
      m = scoap;
      vgood = Array.make n V3.X;
      vfault = Array.make n V3.X;
      assigned = Array.make n V3.X;
      stem_stuck = Array.make n V3.X;
      branch_stuck = Array.make n [];
      branch_pins = [];
      sites = [];
      impossible;
      obs_target = Array.make n false;
      visit_stamp = Array.make n (-1);
      stamp = 0;
      exhaustive = true;
      backtracks = 0;
      decisions = 0;
      implications = 0;
    }
  in
  let sites = ref [] in
  List.iter
    (fun (f : Fault.t) ->
      let stuck = V3.of_bool f.Fault.stuck in
      (match f.Fault.site with
       | Fault.Stem net -> e.stem_stuck.(net) <- stuck
       | Fault.Branch { node; pin } ->
         e.branch_stuck.(node) <- (pin, stuck) :: e.branch_stuck.(node);
         e.branch_pins <- (node, pin) :: e.branch_pins);
      sites := (Fault.site_net c f, stuck) :: !sites)
    faults;
  let e = { e with sites = !sites } in
  Array.iter
    (fun op -> e.obs_target.(View.obs_source_net view op) <- true)
    view.View.observe;
  e

let good e n = e.vgood.(n)

(* Faulty value seen by pin [pin] of node [node] whose source is [net]. *)
let pin_fault e node pin net =
  match e.branch_stuck.(node) with
  | [] -> e.vfault.(net)
  | overrides -> (
    match List.find_opt (fun (p, _) -> p = pin) overrides with
    | Some (_, stuck) -> stuck
    | None -> e.vfault.(net))

let is_effect_at_pin e node pin net =
  let g = e.vgood.(net) and f = pin_fault e node pin net in
  V3.is_binary g && V3.is_binary f && not (V3.equal g f)

let net_effect e n =
  let g = e.vgood.(n) and f = e.vfault.(n) in
  V3.is_binary g && V3.is_binary f && not (V3.equal g f)

let net_has_x e n = not (V3.is_binary e.vgood.(n)) || not (V3.is_binary e.vfault.(n))

let source_value e i =
  match e.view.View.fixed.(i) with
  | Some v -> v
  | None -> if e.view.View.free.(i) then e.assigned.(i) else V3.X

(* Allocation-free n-ary gate evaluation over one plane. *)
let eval_plane g fi read =
  let n = Array.length fi in
  match g with
  | Gate.And | Gate.Nand ->
    let acc = ref V3.One in
    for k = 0 to n - 1 do
      acc := V3.band !acc (read k fi.(k))
    done;
    if Gate.inverting g then V3.bnot !acc else !acc
  | Gate.Or | Gate.Nor ->
    let acc = ref V3.Zero in
    for k = 0 to n - 1 do
      acc := V3.bor !acc (read k fi.(k))
    done;
    if Gate.inverting g then V3.bnot !acc else !acc
  | Gate.Xor | Gate.Xnor ->
    let acc = ref V3.Zero in
    for k = 0 to n - 1 do
      acc := V3.bxor !acc (read k fi.(k))
    done;
    if Gate.inverting g then V3.bnot !acc else !acc
  | Gate.Not -> V3.bnot (read 0 fi.(0))
  | Gate.Buf -> read 0 fi.(0)

let imply e =
  e.implications <- e.implications + 1;
  let read_good _ net = e.vgood.(net) in
  Array.iter
    (fun i ->
      (match e.c.Circuit.nodes.(i) with
       | Circuit.Input | Circuit.Dff _ ->
         let v = source_value e i in
         e.vgood.(i) <- v;
         e.vfault.(i) <- v
       | Circuit.Const v ->
         e.vgood.(i) <- v;
         e.vfault.(i) <- v
       | Circuit.Gate (g, fi) ->
         e.vgood.(i) <- eval_plane g fi read_good;
         let fault =
           match e.branch_stuck.(i) with
           | [] -> eval_plane g fi (fun _ net -> e.vfault.(net))
           | _ -> eval_plane g fi (fun pin net -> pin_fault e i pin net)
         in
         e.vfault.(i) <- fault);
      match e.stem_stuck.(i) with
      | V3.X -> ()
      | stuck -> e.vfault.(i) <- stuck)
    e.c.Circuit.topo

let obs_effect e = function
  | View.Onet n -> net_effect e n
  | View.Opin { node; pin } ->
    is_effect_at_pin e node pin (Circuit.fanins e.c node).(pin)

let detected e = Array.exists (fun op -> obs_effect e op) e.view.View.observe

(* A fault effect can live on a net (stem faults, propagated effects) or
   only on a consumer pin (an excited branch fault that has not yet passed
   its gate). *)
let effect_somewhere e =
  let n = Array.length e.vgood in
  let rec loop i = if i >= n then false else net_effect e i || loop (i + 1) in
  loop 0
  || List.exists
       (fun (node, pin) ->
         is_effect_at_pin e node pin (Circuit.fanins e.c node).(pin))
       e.branch_pins

(* Gates whose output is still undetermined but which see a fault effect on
   some input: the classic D-frontier. *)
let frontier e =
  let acc = ref [] in
  Array.iteri
    (fun i nd ->
      match nd with
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
      | Circuit.Gate (_, fi) ->
        if net_has_x e i then begin
          let feeds_effect = ref false in
          Array.iteri
            (fun pin f ->
              if is_effect_at_pin e i pin f then feeds_effect := true)
            fi;
          if !feeds_effect then acc := i :: !acc
        end)
    e.c.Circuit.nodes;
  !acc

(* Is there a path of not-yet-determined nets from [start] (a frontier gate
   output) to an observation source? Necessary condition for the fault
   effect ever reaching an observation point. *)
let x_path e start =
  e.stamp <- e.stamp + 1;
  let stamp = e.stamp in
  let rec dfs n =
    if e.visit_stamp.(n) = stamp then false
    else begin
      e.visit_stamp.(n) <- stamp;
      if e.obs_target.(n) then true
      else
        Array.exists
          (fun consumer ->
            match e.c.Circuit.nodes.(consumer) with
            | Circuit.Gate _ -> net_has_x e consumer && dfs consumer
            | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> false)
          e.c.Circuit.fanout.(n)
    end
  in
  dfs start

let noncontrolling g =
  match Gate.controlling g with
  | Some V3.Zero -> V3.One
  | Some V3.One -> V3.Zero
  | Some V3.X -> assert false
  | None -> V3.X

(* Objective for propagating through frontier gate [i]: one still-unknown
   side input set to its non-controlling value (for xor-family, the cheaper
   binary value). Picks the hardest candidate first so impossible
   propagations fail early. *)
let propagation_objective e i =
  match e.c.Circuit.nodes.(i) with
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> None
  | Circuit.Gate (g, fi) ->
    let best = ref None in
    Array.iter
      (fun f ->
        if V3.equal (good e f) V3.X then begin
          let v =
            match noncontrolling g with
            | V3.X ->
              let cheap =
                if e.m.Scoap.cc0.(f) <= e.m.Scoap.cc1.(f) then V3.Zero
                else V3.One
              in
              if e.impossible f cheap then V3.bnot cheap else cheap
            | v -> v
          in
          let cost = Scoap.cc e.m f v in
          if cost < Scoap.infinite && not (e.impossible f v) then
            match !best with
            | Some (_, _, c0) when c0 >= cost -> ()
            | Some _ | None -> best := Some (f, v, cost)
        end)
      fi;
    (match !best with Some (f, v, _) -> Some (f, v) | None -> None)

let objective e =
  if not (effect_somewhere e) then
    (* Fault not excited anywhere: drive some site to the opposite value. *)
    let unexcited =
      List.filter (fun (net, _) -> V3.equal (good e net) V3.X) e.sites
    in
    let viable =
      List.filter
        (fun (net, stuck) ->
          Scoap.cc e.m net (V3.bnot stuck) < Scoap.infinite
          && not (e.impossible net (V3.bnot stuck)))
        unexcited
    in
    match viable with
    | (net, stuck) :: _ -> Some (net, V3.bnot stuck)
    | [] -> None
  else begin
    let gates = frontier e in
    let reachable = List.filter (fun i -> x_path e i) gates in
    let ordered =
      List.sort
        (fun a b -> Int.compare e.m.Scoap.obs.(a) e.m.Scoap.obs.(b))
        reachable
    in
    let rec first_objective = function
      | [] ->
        if gates <> [] && reachable <> [] then e.exhaustive <- false;
        None
      | i :: rest -> (
        match propagation_objective e i with
        | Some o -> Some o
        | None -> first_objective rest)
    in
    first_objective ordered
  end

(* Walk an objective back to a free input along still-unknown nets, guided
   by controllability. Only pins whose needed value has finite cost are
   considered, which keeps the walk inside justifiable logic. *)
let rec backtrace e net v =
  if e.view.View.free.(net) then Some (net, v)
  else
    match e.c.Circuit.nodes.(net) with
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> None
    | Circuit.Gate (g, fi) -> (
      match g with
      | Gate.Not -> backtrace e fi.(0) (V3.bnot v)
      | Gate.Buf -> backtrace e fi.(0) v
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> (
        let base_v = if Gate.inverting g then V3.bnot v else v in
        let ctrl =
          match Gate.controlling g with
          | Some c -> c
          | None -> assert false
        in
        let base_ctrl_out =
          match g with
          | Gate.And | Gate.Nand -> V3.Zero
          | Gate.Or | Gate.Nor -> V3.One
          | Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buf -> assert false
        in
        let single = V3.equal base_v base_ctrl_out in
        let needed = if single then ctrl else V3.bnot ctrl in
        let candidates =
          Array.to_list fi
          |> List.filter (fun f ->
                 V3.equal (good e f) V3.X
                 && Scoap.cc e.m f needed < Scoap.infinite
                 && not (e.impossible f needed))
        in
        let pick cmp =
          List.fold_left
            (fun acc f ->
              match acc with
              | None -> Some f
              | Some b ->
                if cmp (Scoap.cc e.m f needed) (Scoap.cc e.m b needed) then
                  Some f
                else acc)
            None candidates
        in
        let choice = if single then pick ( < ) else pick ( > ) in
        match choice with
        | Some f -> backtrace e f needed
        | None -> None)
      | Gate.Xor | Gate.Xnor -> (
        let xs, binaries =
          Array.to_list fi
          |> List.partition (fun f -> V3.equal (good e f) V3.X)
        in
        match xs with
        | [] -> None
        | _ ->
          let viable =
            List.filter
              (fun f ->
                min e.m.Scoap.cc0.(f) e.m.Scoap.cc1.(f) < Scoap.infinite)
              xs
          in
          (match viable with
           | [] -> None
           | f :: _ ->
             let needed =
               if List.length xs = 1 then begin
                 let parity =
                   List.fold_left
                     (fun acc b -> V3.bxor acc (good e b))
                     V3.Zero binaries
                 in
                 let target = if Gate.inverting g then V3.bnot v else v in
                 V3.bxor target parity
               end
               else if e.m.Scoap.cc0.(f) <= e.m.Scoap.cc1.(f) then V3.Zero
               else V3.One
             in
             if V3.equal needed V3.X then None
             else if Scoap.cc e.m f needed >= Scoap.infinite then None
             else if e.impossible f needed then None
             else backtrace e f needed)))

type decision = { pi : int; mutable flipped : bool }

let extract_test e =
  let acc = ref [] in
  for i = Array.length e.assigned - 1 downto 0 do
    if e.view.View.free.(i) && V3.is_binary e.assigned.(i) then
      acc := (i, e.assigned.(i)) :: !acc
  done;
  !acc

let run ?(backtrack_limit = 1000) ?should_abort ?scoap ?impossible view
    ~faults =
  let scoap =
    match scoap with Some s -> s | None -> Fst_testability.Scoap.compute view
  in
  let e = make_engine ?impossible view ~scoap ~faults in
  let stack = ref [] in
  let rec step () =
    imply e;
    if detected e then Test (extract_test e)
    else
      match objective e with
      | Some (net, v) -> (
        match backtrace e net v with
        | Some (pi, pv) ->
          e.assigned.(pi) <- pv;
          e.decisions <- e.decisions + 1;
          stack := { pi; flipped = false } :: !stack;
          step ()
        | None ->
          (* A backtrace dead-end only shows that this particular objective
             cannot be justified, not that the subtree is test-free:
             abandoning it costs completeness. *)
          e.exhaustive <- false;
          backtrack ())
      | None -> backtrack ()
  and backtrack () =
    if e.backtracks >= backtrack_limit then Aborted
    else if
      (match should_abort with Some f -> f () | None -> false)
    then Aborted
    else
      match !stack with
      | [] -> if e.exhaustive then Untestable else Aborted
      | d :: rest ->
        if d.flipped then begin
          e.assigned.(d.pi) <- V3.X;
          stack := rest;
          backtrack ()
        end
        else begin
          d.flipped <- true;
          e.backtracks <- e.backtracks + 1;
          e.assigned.(d.pi) <- V3.bnot e.assigned.(d.pi);
          step ()
        end
  in
  let result =
    (* every excitation literal statically impossible: untestable with no
       search at all *)
    if
      e.sites <> []
      && List.for_all
           (fun (net, stuck) -> e.impossible net (V3.bnot stuck))
           e.sites
    then Untestable
    else step ()
  in
  ( result,
    {
      backtracks = e.backtracks;
      decisions = e.decisions;
      implications = e.implications;
    } )
