open Fst_logic

type test = {
  frames : int;
  init_state : (int * V3.t) list;
  pi_frames : (int * V3.t) list array;
}

type result = Seq_test of test | Seq_aborted
type stats = { runs : int; backtracks : int }

let test_of_assignment u frames assignment =
  let init_state = ref [] in
  let pi_frames = Array.make frames [] in
  List.iter
    (fun (net, v) ->
      match Unroll.origin u net with
      | Unroll.Pi { frame; net } -> pi_frames.(frame) <- (net, v) :: pi_frames.(frame)
      | Unroll.State ff -> init_state := (ff, v) :: !init_state)
    assignment;
  { frames; init_state = !init_state; pi_frames }

let run ?should_abort c ~constraints ~controllable_ff ~observable_ff ~fault
    ~frames_list ~backtrack_limit =
  let runs = ref 0 and backtracks = ref 0 in
  let aborting () =
    match should_abort with None -> false | Some f -> f ()
  in
  let rec try_frames = function
    | [] -> (Seq_aborted, { runs = !runs; backtracks = !backtracks })
    | _ :: _ when aborting () ->
      (Seq_aborted, { runs = !runs; backtracks = !backtracks })
    | frames :: rest -> (
      let u =
        Unroll.build c ~frames ~constraints ~controllable_ff ~observable_ff
      in
      let faults = Unroll.map_fault u fault in
      incr runs;
      match Podem.run ~backtrack_limit ?should_abort u.Unroll.view ~faults with
      | Podem.Test assignment, st ->
        backtracks := !backtracks + st.Podem.backtracks;
        ( Seq_test (test_of_assignment u frames assignment),
          { runs = !runs; backtracks = !backtracks } )
      | (Podem.Untestable | Podem.Aborted), st ->
        backtracks := !backtracks + st.Podem.backtracks;
        try_frames rest)
  in
  try_frames frames_list
