open Fst_logic
open Fst_netlist
open Fst_sim
open Fst_fault

type stimulus = Sim.stimulus

module type ENGINE = sig
  val detect_all :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  val detect_dropping :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

(* Every back-end below runs on the compiled form of the circuit
   ([Fst_sim.Compiled]): flat levelized arrays, byte-coded values, no
   per-node dispatch. Compilation is cheap but not free, so the last
   compiled circuit is cached (keyed by physical equality — circuits are
   immutable once frozen). The mutex makes the cache safe to hit from
   pool domains; the compiled form itself is immutable and shared
   read-only. *)
module Cc = struct
  let lock = Mutex.create ()
  let cache : (Circuit.t * Compiled.t) option ref = ref None

  let get c =
    Mutex.lock lock;
    let cc =
      match !cache with
      | Some (c', cc) when c' == c -> cc
      | Some _ | None ->
        let cc = Compiled.of_circuit c in
        cache := Some (c, cc);
        cc
    in
    Mutex.unlock lock;
    cc
end

let obs_slots (cc : Compiled.t) observe =
  Array.map (fun o -> cc.Compiled.perm.(o)) observe

module Serial = struct
  (* One faulty machine at a time over the scalar kernel. The good
     machine is not re-simulated per fault: detection compares the faulty
     vector against the shared good-trace rows. *)

  (* Scratch reused across faults; [fanin] is a private copy of the
     compiled fanin pool so a branch fault can redirect one entry to the
     spare constant slot (and restore it afterwards). *)
  type ctx = {
    cc : Compiled.t;
    vec : Bytes.t;
    latch : Bytes.t;
    fanin : int array;
  }

  let ctx cc =
    {
      cc;
      vec = Compiled.make_vec cc;
      latch = Bytes.make (max 1 cc.Compiled.n_ffs) '\000';
      fanin = Array.copy cc.Compiled.fanin;
    }

  (* A fault lowered to slot space. *)
  type prep = {
    stem_slot : int; (* clamped slot, or -1 *)
    stem_code : int;
    stem_gate : int; (* gate index of the stem slot, or -1 *)
    redirect : int; (* fanin pool index redirected to the spare slot *)
    spare_code : int;
    ff_ov : int; (* flip-flop whose latch is overridden, or -1 *)
    ff_code : int;
  }

  let no_fault =
    { stem_slot = -1; stem_code = 0; stem_gate = -1; redirect = -1;
      spare_code = 0; ff_ov = -1; ff_code = 0 }

  let prep (cc : Compiled.t) (fault : Fault.t) =
    let code = if fault.Fault.stuck then V3b.one else V3b.zero in
    match fault.Fault.site with
    | Fault.Stem n ->
      let s = cc.Compiled.perm.(n) in
      { no_fault with stem_slot = s; stem_code = code;
        stem_gate = Compiled.slot_gate cc s }
    | Fault.Branch { node; pin } ->
      let s = cc.Compiled.perm.(node) in
      let k = Compiled.slot_gate cc s in
      if k >= 0 then
        { no_fault with redirect = cc.Compiled.fanin_off.(k) + pin;
          spare_code = code }
      else
        (* The only non-gate consumer is a flip-flop's data pin: the
           override applies at the clock edge. *)
        { no_fault with ff_ov = cc.Compiled.ff_of_slot.(s); ff_code = code }

  let install ctx p =
    Compiled.reset_vec ctx.cc ctx.vec;
    if p.redirect >= 0 then begin
      ctx.fanin.(p.redirect) <- ctx.cc.Compiled.n_slots;
      Compiled.set ctx.vec ctx.cc.Compiled.n_slots p.spare_code
    end

  let uninstall ctx p =
    if p.redirect >= 0 then
      ctx.fanin.(p.redirect) <- ctx.cc.Compiled.fanin.(p.redirect)

  (* One cycle's apply + stem clamp + levelized settle. A gate stem
     splits the sweep at its gate index: its consumers are all at
     strictly higher levels, so clamping between the two half-sweeps is
     equivalent to the interpreted machine's clamp-at-topo-position. *)
  let step ctx p (cstim : Compiled.cstim) t =
    let cc = ctx.cc in
    Compiled.apply ctx.vec cstim.(t);
    if p.stem_gate >= 0 then begin
      Compiled.eval_range cc ~fanin:ctx.fanin ctx.vec ~lo:0 ~hi:p.stem_gate;
      Compiled.set ctx.vec p.stem_slot p.stem_code;
      Compiled.eval_range cc ~fanin:ctx.fanin ctx.vec ~lo:(p.stem_gate + 1)
        ~hi:cc.Compiled.n_gates
    end
    else begin
      if p.stem_slot >= 0 then Compiled.set ctx.vec p.stem_slot p.stem_code;
      Compiled.eval cc ~fanin:ctx.fanin ctx.vec
    end

  let tick ctx p =
    let cc = ctx.cc in
    let data = cc.Compiled.ff_data and slot = cc.Compiled.ff_slot in
    for k = 0 to cc.Compiled.n_ffs - 1 do
      Bytes.unsafe_set ctx.latch k
        (Bytes.unsafe_get ctx.vec (Array.unsafe_get data k))
    done;
    if p.ff_ov >= 0 then Bytes.set ctx.latch p.ff_ov (Char.chr p.ff_code);
    for k = 0 to cc.Compiled.n_ffs - 1 do
      Bytes.unsafe_set ctx.vec (Array.unsafe_get slot k)
        (Bytes.unsafe_get ctx.latch k)
    done

  (* First detection cycle of one fault against the shared good rows. *)
  let detect_rows ctx p ~obs rows cstim =
    install ctx p;
    let n_cycles = Array.length cstim in
    let result = ref (-1) in
    let t = ref 0 in
    while !result < 0 && !t < n_cycles do
      step ctx p cstim !t;
      let row = rows.(!t) in
      let no = Array.length obs in
      let k = ref 0 in
      while !result < 0 && !k < no do
        let o = Array.unsafe_get obs !k in
        if
          V3b.detects ~good:(Compiled.get row o)
            ~faulty:(Compiled.get ctx.vec o)
        then result := !t;
        incr k
      done;
      if !result < 0 then begin
        tick ctx p;
        incr t
      end
    done;
    uninstall ctx p;
    if !result < 0 then None else Some !result

  let run_all ctx ~faults ~obs rows cstim =
    Array.map
      (fun fault -> detect_rows ctx (prep ctx.cc fault) ~obs rows cstim)
      faults

  (* [blocks] pairs each stimulus block with its good rows. *)
  let run_dropping ctx ~faults ~obs blocks =
    Array.map
      (fun fault ->
        let p = prep ctx.cc fault in
        let nb = Array.length blocks in
        let rec scan b =
          if b >= nb then None
          else
            let cstim, rows = blocks.(b) in
            match detect_rows ctx p ~obs rows cstim with
            | Some t -> Some (b, t)
            | None -> scan (b + 1)
        in
        scan 0)
      faults

  let detect c ~fault ~observe stim =
    let cc = Cc.get c in
    let cstim = Compiled.compile_stim cc stim in
    detect_rows (ctx cc) (prep cc fault) ~obs:(obs_slots cc observe)
      (Compiled.trace cc cstim) cstim

  let trace c ~fault ~observe stim =
    let cc = Cc.get c in
    let cstim = Compiled.compile_stim cc stim in
    let p = match fault with None -> no_fault | Some f -> prep cc f in
    let ctx = ctx cc in
    install ctx p;
    let obs = obs_slots cc observe in
    let rows = Array.make (Array.length cstim) [||] in
    for t = 0 to Array.length cstim - 1 do
      step ctx p cstim t;
      rows.(t) <-
        Array.map (fun o -> V3b.to_v3 (Compiled.get ctx.vec o)) obs;
      tick ctx p
    done;
    uninstall ctx p;
    rows

  let detect_all c ~faults ~observe stim =
    let cc = Cc.get c in
    let cstim = Compiled.compile_stim cc stim in
    run_all (ctx cc) ~faults ~obs:(obs_slots cc observe)
      (Compiled.trace cc cstim) cstim

  let detect_dropping c ~faults ~observe ~stimuli =
    let cc = Cc.get c in
    let blocks =
      Array.of_list
        (List.map
           (fun stim ->
             let cstim = Compiled.compile_stim cc stim in
             (cstim, Compiled.trace cc cstim))
           stimuli)
    in
    run_dropping (ctx cc) ~faults ~obs:(obs_slots cc observe) blocks
end

module Parallel = struct
  let max_group = 62

  (* Cone-clipped bit-parallel simulation. A group of up to [max_group]
     faulty machines shares one plane pair per slot; only slots inside
     the group's union fanout cone are ever evaluated — everything else
     is read straight off the shared good trace, broadcast to all lanes,
     which is sound because out-of-cone slots never diverge. Faults are
     grouped in cone-seed slot order so the cones of one group overlap as
     much as possible. *)

  (* Per-gate overrides of one group: output stem-injection masks and
     branch-fault pin overrides (pool index, one-mask, zero-mask). *)
  type ov = { stem_m1 : int; stem_m0 : int; branch : (int * int * int) list }

  type ctx = {
    cc : Compiled.t;
    ones : int array;
    zeros : int array;
    lat1 : int array;
    lat0 : int array;
    flag : Bytes.t; (* slot has maintained (possibly divergent) planes *)
    mark : Bytes.t; (* scratch for boundary dedup in [make_group] *)
    ov : ov option array; (* per gate; populated per group, then cleared *)
  }

  let ctx (cc : Compiled.t) =
    {
      cc;
      ones = Array.make (cc.Compiled.n_slots + 1) 0;
      zeros = Array.make (cc.Compiled.n_slots + 1) 0;
      lat1 = Array.make (max 1 cc.Compiled.n_ffs) 0;
      lat0 = Array.make (max 1 cc.Compiled.n_ffs) 0;
      flag = Bytes.make (cc.Compiled.n_slots + 1) '\000';
      mark = Bytes.make (cc.Compiled.n_slots + 1) '\000';
      ov = Array.make (max 1 cc.Compiled.n_gates) None;
    }

  type group = {
    w : int;
    full : int;
    stems0 : (int * int * int) array; (* level-0 stem slot, m1, m0 *)
    ff_ov : (int * int * int) list; (* position in cone_ffs, m1, m0 *)
    cone_gates : int array; (* ascending = levelized *)
    cone_ffs : int array;
    boundary : int array; (* out-of-cone slots the sweep/tick read *)
    obs : int array; (* observed slots with maintained planes *)
  }

  let make_group ctx ~obs_all faults =
    let cc = ctx.cc in
    let w = Array.length faults in
    assert (w > 0 && w <= max_group);
    let full = (1 lsl w) - 1 in
    let seeds = Array.map (fun f -> cc.Compiled.perm.(Fault.seed f)) faults in
    let cone = Compiled.cone_slots cc ~seeds in
    let gl = ref [] and fl = ref [] in
    Array.iter
      (fun s ->
        let k = Compiled.slot_gate cc s in
        if k >= 0 then gl := k :: !gl
        else if cc.Compiled.ff_of_slot.(s) >= 0 then
          fl := cc.Compiled.ff_of_slot.(s) :: !fl)
      cone;
    let cone_gates = Array.of_list (List.rev !gl) in
    let cone_ffs = Array.of_list (List.rev !fl) in
    let ff_pos k =
      let p = ref (-1) in
      Array.iteri (fun j f -> if f = k then p := j) cone_ffs;
      assert (!p >= 0);
      !p
    in
    let stems0 = Hashtbl.create 8 in
    let set_ov k f =
      let cur =
        match ctx.ov.(k) with
        | Some o -> o
        | None -> { stem_m1 = 0; stem_m0 = 0; branch = [] }
      in
      ctx.ov.(k) <- Some (f cur)
    in
    let ff_ov = ref [] in
    Array.iteri
      (fun lane (fault : Fault.t) ->
        let bit = 1 lsl lane in
        let m1 = if fault.Fault.stuck then bit else 0 in
        let m0 = if fault.Fault.stuck then 0 else bit in
        match fault.Fault.site with
        | Fault.Stem n ->
          let s = cc.Compiled.perm.(n) in
          let k = Compiled.slot_gate cc s in
          if k >= 0 then
            set_ov k (fun o ->
                { o with stem_m1 = o.stem_m1 lor m1;
                  stem_m0 = o.stem_m0 lor m0 })
          else begin
            let a1, a0 =
              match Hashtbl.find_opt stems0 s with
              | Some x -> x
              | None -> (0, 0)
            in
            Hashtbl.replace stems0 s (a1 lor m1, a0 lor m0)
          end
        | Fault.Branch { node; pin } ->
          let s = cc.Compiled.perm.(node) in
          let k = Compiled.slot_gate cc s in
          if k >= 0 then
            set_ov k (fun o ->
                { o with
                  branch =
                    (cc.Compiled.fanin_off.(k) + pin, m1, m0) :: o.branch })
          else ff_ov := (ff_pos cc.Compiled.ff_of_slot.(s), m1, m0) :: !ff_ov)
      faults;
    (* Maintained planes: cone gates (written by the sweep), cone
       flip-flops (latched; reset to all-X now) and level-0 stem slots
       (injected every cycle). *)
    Array.iter
      (fun k -> Bytes.set ctx.flag (Compiled.gate_slot cc k) '\001')
      cone_gates;
    Array.iter
      (fun f ->
        let s = cc.Compiled.ff_slot.(f) in
        Bytes.set ctx.flag s '\001';
        ctx.ones.(s) <- 0;
        ctx.zeros.(s) <- 0)
      cone_ffs;
    let stems0_l = ref [] in
    Hashtbl.iter
      (fun s (m1, m0) ->
        Bytes.set ctx.flag s '\001';
        if cc.Compiled.ff_of_slot.(s) < 0 then begin
          ctx.ones.(s) <- 0;
          ctx.zeros.(s) <- 0
        end;
        stems0_l := (s, m1, m0) :: !stems0_l)
      stems0;
    (* The read boundary: slots without maintained planes that the gate
       loop (side fanins of cone gates) or [tick] (unmaintained
       flip-flop data) will read. [sweep] materializes their broadcast
       good planes once per cycle so the hot loop runs on direct array
       indexing with no reader closure per fanin. *)
    let bl = ref [] in
    let add s =
      if Bytes.get ctx.flag s = '\000' && Bytes.get ctx.mark s = '\000'
      then begin
        Bytes.set ctx.mark s '\001';
        bl := s :: !bl
      end
    in
    Array.iter
      (fun k ->
        for i = cc.Compiled.fanin_off.(k) to cc.Compiled.fanin_off.(k + 1) - 1
        do
          add cc.Compiled.fanin.(i)
        done)
      cone_gates;
    Array.iter (fun k -> add cc.Compiled.ff_data.(k)) cone_ffs;
    let boundary = Array.of_list !bl in
    Array.iter (fun s -> Bytes.set ctx.mark s '\000') boundary;
    let obs =
      Array.of_list
        (List.filter
           (fun o -> Bytes.get ctx.flag o <> '\000')
           (Array.to_list obs_all))
    in
    { w; full; stems0 = Array.of_list !stems0_l; ff_ov = !ff_ov;
      cone_gates; cone_ffs; boundary; obs }

  let drop_group ctx g =
    Array.iter
      (fun k ->
        Bytes.set ctx.flag (Compiled.gate_slot ctx.cc k) '\000';
        ctx.ov.(k) <- None)
      g.cone_gates;
    Array.iter
      (fun f -> Bytes.set ctx.flag ctx.cc.Compiled.ff_slot.(f) '\000')
      g.cone_ffs;
    Array.iter (fun (s, _, _) -> Bytes.set ctx.flag s '\000') g.stems0

  let merge ~m1 ~m0 (b1, b0) =
    let keep = lnot (m1 lor m0) in
    ((b1 land keep) lor m1, (b0 land keep) lor m0)

  (* One cycle's cone sweep. [g1 slot]/[g0 slot] supply the broadcast
     ones/zeros planes of a slot with no maintained planes — the shared
     good trace row here, the packed good planes in the pattern path.
     They are only called on the precomputed read boundary, materialized
     into the plane arrays up front; the gate loop itself runs on direct
     array indexing with no closure call per fanin. *)
  let sweep ctx g ~g1 ~g0 =
    let cc = ctx.cc in
    let ones = ctx.ones and zeros = ctx.zeros in
    let full = g.full in
    Array.iter
      (fun s ->
        ones.(s) <- g1 s;
        zeros.(s) <- g0 s)
      g.boundary;
    Array.iter
      (fun (s, m1, m0) ->
        (* A flip-flop stem keeps its latched planes as the base; any
           other level-0 stem reads the good value. *)
        let b1, b0 =
          if cc.Compiled.ff_of_slot.(s) >= 0 then (ones.(s), zeros.(s))
          else (g1 s, g0 s)
        in
        let keep = lnot (m1 lor m0) in
        ones.(s) <- (b1 land keep) lor m1;
        zeros.(s) <- (b0 land keep) lor m0)
      g.stems0;
    let res1 = ref 0 and res0 = ref 0 in
    let ng = Array.length g.cone_gates in
    for j = 0 to ng - 1 do
      let k = Array.unsafe_get g.cone_gates j in
      (match Array.unsafe_get ctx.ov k with
       | None ->
         Compiled.Planes.eval_gate_into cc ~full ~ones ~zeros k ~res1 ~res0
       | Some o ->
         (* Rare: a gate carrying stem/branch overrides takes the boxed
            path. *)
         let fanin = cc.Compiled.fanin in
         let read i =
           let f = Array.unsafe_get fanin i in
           List.fold_left
             (fun acc (idx, m1, m0) ->
               if idx = i then merge ~m1 ~m0 acc else acc)
             (Array.unsafe_get ones f, Array.unsafe_get zeros f)
             o.branch
         in
         let v = Compiled.Planes.eval_gate_via cc ~full ~read k in
         let v1, v0 = merge ~m1:o.stem_m1 ~m0:o.stem_m0 v in
         res1 := v1;
         res0 := v0);
      let s = cc.Compiled.n_level0 + k in
      Array.unsafe_set ones s !res1;
      Array.unsafe_set zeros s !res0
    done

  (* Clock the cone flip-flops: latch all, apply branch overrides, then
     publish simultaneously. Unmaintained data slots are in the read
     boundary, so this cycle's [sweep] already materialized their good
     planes — every read is a direct load. *)
  let tick ctx g =
    let cc = ctx.cc in
    let nf = Array.length g.cone_ffs in
    for j = 0 to nf - 1 do
      let k = g.cone_ffs.(j) in
      let d = cc.Compiled.ff_data.(k) in
      ctx.lat1.(j) <- ctx.ones.(d);
      ctx.lat0.(j) <- ctx.zeros.(d)
    done;
    List.iter
      (fun (j, m1, m0) ->
        let b1, b0 = merge ~m1 ~m0 (ctx.lat1.(j), ctx.lat0.(j)) in
        ctx.lat1.(j) <- b1;
        ctx.lat0.(j) <- b0)
      g.ff_ov;
    for j = 0 to nf - 1 do
      let s = cc.Compiled.ff_slot.(g.cone_ffs.(j)) in
      ctx.ones.(s) <- ctx.lat1.(j);
      ctx.zeros.(s) <- ctx.lat0.(j)
    done

  (* Lanes detected this cycle: good value binary and the lane's plane
     carries the complement. *)
  let observe_hits ctx g row ~alive =
    let hits = ref 0 in
    Array.iter
      (fun o ->
        let gcode = Compiled.get row o in
        if gcode = V3b.one then hits := !hits lor (ctx.zeros.(o) land alive)
        else if gcode = V3b.zero then
          hits := !hits lor (ctx.ones.(o) land alive))
      g.obs;
    !hits

  (* One group against one stimulus block; [record lane t] fires on the
     first detection of each lane. A group none of whose cone reaches an
     observed net is skipped outright. *)
  let run_group ctx ~obs_all faults rows record =
    let g = make_group ctx ~obs_all faults in
    if Array.length g.obs > 0 then begin
      let alive = ref g.full in
      let n = Array.length rows in
      let t = ref 0 in
      while !alive <> 0 && !t < n do
        let row = rows.(!t) in
        let full = g.full in
        let g1 s = if Compiled.get row s = V3b.one then full else 0
        and g0 s = if Compiled.get row s = V3b.zero then full else 0 in
        sweep ctx g ~g1 ~g0;
        let hits = observe_hits ctx g row ~alive:!alive in
        if hits <> 0 then begin
          for lane = 0 to g.w - 1 do
            if hits land (1 lsl lane) <> 0 then record lane !t
          done;
          alive := !alive land lnot hits
        end;
        if !alive <> 0 then tick ctx g;
        incr t
      done
    end;
    drop_group ctx g

  (* Fault order for grouping: by cone-seed slot (cone overlap within a
     group), ties by input index (determinism). *)
  let group_order (cc : Compiled.t) faults idxs =
    let key i = cc.Compiled.perm.(Fault.seed faults.(i)) in
    let a = Array.copy idxs in
    Array.sort
      (fun x y ->
        match Int.compare (key x) (key y) with
        | 0 -> Int.compare x y
        | d -> d)
      a;
    a

  let run_all ctx ~faults ~obs rows =
    let nf = Array.length faults in
    let result = Array.make nf None in
    if nf > 0 then begin
      let order = group_order ctx.cc faults (Array.init nf (fun i -> i)) in
      let pos = ref 0 in
      while !pos < nf do
        let w = min max_group (nf - !pos) in
        let chunk_ids = Array.sub order !pos w in
        let chunk = Array.map (fun i -> faults.(i)) chunk_ids in
        run_group ctx ~obs_all:obs chunk rows (fun lane t ->
            let i = chunk_ids.(lane) in
            if result.(i) = None then result.(i) <- Some t);
        pos := !pos + w
      done
    end;
    result

  let run_dropping ctx ~faults ~obs blocks =
    let nf = Array.length faults in
    let result = Array.make nf None in
    let pending =
      ref (group_order ctx.cc faults (Array.init nf (fun i -> i)))
    in
    Array.iteri
      (fun block (_cstim, rows) ->
        let np = Array.length !pending in
        if np > 0 then begin
          let pos = ref 0 in
          while !pos < np do
            let w = min max_group (np - !pos) in
            let chunk_ids = Array.sub !pending !pos w in
            let chunk = Array.map (fun i -> faults.(i)) chunk_ids in
            run_group ctx ~obs_all:obs chunk rows (fun lane t ->
                let i = chunk_ids.(lane) in
                if result.(i) = None then result.(i) <- Some (block, t));
            pos := !pos + w
          done;
          pending :=
            Array.of_seq
              (Seq.filter (fun i -> result.(i) = None) (Array.to_seq !pending))
        end)
      blocks;
    result

  (* --- pattern-parallel packing ---------------------------------------- *)

  (* For the alternating/converted sequence sets the lanes are stimulus
     blocks instead of faults: the good machine is packed once
     ([Compiled.Planes.trace_packed]) and each fault replays its cone
     over all blocks simultaneously. The dropping result is the
     lowest-index lane that detects, with its first cycle — identical to
     the serial block scan. *)

  let run_fault_packed ctx (packed : Compiled.Planes.packed) ~obs_all fault =
    let lanes = packed.Compiled.Planes.lanes in
    let faults = Array.make lanes fault in
    let g = make_group ctx ~obs_all faults in
    let result = ref None in
    if Array.length g.obs > 0 then begin
      let alive = ref g.full in
      let t = ref 0 in
      while !alive <> 0 && !t < packed.Compiled.Planes.cycles do
        (* Lanes whose block ended can no longer detect. *)
        for b = 0 to lanes - 1 do
          if packed.Compiled.Planes.lane_len.(b) <= !t then
            alive := !alive land lnot (1 lsl b)
        done;
        if !alive <> 0 then begin
          let r1 = packed.Compiled.Planes.rows1.(!t) in
          let r0 = packed.Compiled.Planes.rows0.(!t) in
          let g1 s = Array.unsafe_get r1 s
          and g0 s = Array.unsafe_get r0 s in
          sweep ctx g ~g1 ~g0;
          (* Per-lane detection against the per-lane good planes. *)
          let hits = ref 0 in
          Array.iter
            (fun o ->
              let g1 = r1.(o) and g0 = r0.(o) in
              hits :=
                !hits
                lor ((g1 land ctx.zeros.(o)) lor (g0 land ctx.ones.(o)))
                    land !alive)
            g.obs;
          if !hits <> 0 then begin
            (* The lowest detecting lane bounds the answer; only lower
               lanes can still improve it. *)
            let rec low b = if !hits land (1 lsl b) <> 0 then b else low (b + 1) in
            let b = low 0 in
            (match !result with
             | Some (b', _) when b' <= b -> ()
             | Some _ | None -> result := Some (b, !t));
            let below = (1 lsl b) - 1 in
            alive := !alive land below
          end;
          if !alive <> 0 then tick ctx g
        end;
        incr t
      done
    end;
    drop_group ctx g;
    !result

  let run_dropping_packed ctx ~faults ~obs
      (chunks : (int * Compiled.Planes.packed) list) =
    let nf = Array.length faults in
    let result = Array.make nf None in
    let remaining = ref nf in
    List.iter
      (fun (base, packed) ->
        if !remaining > 0 then
          Array.iteri
            (fun i fault ->
              if result.(i) = None then
                match run_fault_packed ctx packed ~obs_all:obs fault with
                | Some (lane, t) ->
                  result.(i) <- Some (base + lane, t);
                  decr remaining
                | None -> ())
            faults)
      chunks;
    result

  (* Packed good traces per chunk of at most [max_group] blocks. *)
  let pack_chunks (cc : Compiled.t) (stims : stimulus array) =
    let nb = Array.length stims in
    let chunks = ref [] in
    let base = ref 0 in
    while !base < nb do
      let w = min max_group (nb - !base) in
      chunks :=
        (!base, Compiled.Planes.trace_packed cc (Array.sub stims !base w))
        :: !chunks;
      base := !base + w
    done;
    List.rev !chunks

  (* The packed path pays one plane trace of every block up front and
     then replays every fault's own cone over [max_cycles] packed
     cycles; the fault-grouped path sweeps each ≤62-wide group's union
     cone over every block's cycles. Packing wins when the faults are
     too few to fill groups or their cones are small — with wide cones
     (a 62-fault group unioning to the whole netlist) the per-fault
     replay costs an order of magnitude more, so the choice is made on
     the modeled plane-eval counts, not on fault count alone. The plane
     snapshots also cost 16 bytes per slot per cycle — past a memory
     bound the fault-grouped path is used regardless. *)
  let packed_worthwhile (cc : Compiled.t) ~faults ~stims =
    let nf = Array.length faults in
    let nb = Array.length stims in
    nb > 1
    && nf > 0
    && nf <= 2 * max_group
    &&
    let max_cycles =
      Array.fold_left (fun m s -> max m (Array.length s)) 0 stims
    in
    16 * (cc.Compiled.n_slots + 1) * max_cycles < 256_000_000
    &&
    let total_cycles =
      Array.fold_left (fun a s -> a + Array.length s) 0 stims
    in
    (* Count-only cone sizes ([Fault.cone_sizes] reuses one visit buffer
       and caches by seed): materializing each fault's sorted slot array
       here would cost more than the simulation the choice governs. *)
    let sum_cones =
      Array.fold_left ( + ) 0
        (Fault.cone_sizes cc.Compiled.circuit faults)
    in
    let groups = (nf + max_group - 1) / max_group in
    (* The union of a seed-sorted group's cones stays within a small
       multiple of a member cone (same inflation factor as the Auto cost
       model), capped by the netlist itself. *)
    let union = min cc.Compiled.n_slots (8 * (sum_cones / nf)) in
    sum_cones * max_cycles < groups * union * total_cycles

  let detect_all c ~faults ~observe stim =
    let cc = Cc.get c in
    let cstim = Compiled.compile_stim cc stim in
    run_all (ctx cc) ~faults ~obs:(obs_slots cc observe)
      (Compiled.trace cc cstim)

  let detect_dropping_packed c ~faults ~observe ~stimuli =
    let cc = Cc.get c in
    let stims = Array.of_list stimuli in
    run_dropping_packed (ctx cc) ~faults ~obs:(obs_slots cc observe)
      (pack_chunks cc stims)

  let detect_dropping c ~faults ~observe ~stimuli =
    let cc = Cc.get c in
    let stims = Array.of_list stimuli in
    if packed_worthwhile cc ~faults ~stims then
      run_dropping_packed (ctx cc) ~faults ~obs:(obs_slots cc observe)
        (pack_chunks cc stims)
    else
      let blocks =
        Array.map
          (fun stim ->
            let cstim = Compiled.compile_stim cc stim in
            (cstim, Compiled.trace cc cstim))
          stims
      in
      run_dropping (ctx cc) ~faults ~obs:(obs_slots cc observe) blocks
end

module Event = struct
  (* Event-driven single-fault simulation as a sparse overlay on the
     shared good trace: only slots whose value diverges from the good
     machine are stored, and only gates reached by a divergence event are
     evaluated. Cost is proportional to the fault's active cone, not the
     netlist. *)

  type ctx = {
    cc : Compiled.t;
    div : Bytes.t; (* per slot: value currently diverges from the row *)
    bad : Bytes.t; (* faulty code where [div] is set *)
    queued : Bytes.t; (* per gate: scheduled this cycle *)
    pending : int list array; (* scheduled gate indices, by level *)
    ff_queued : Bytes.t; (* per flip-flop: clock candidate *)
  }

  let create_ctx (cc : Compiled.t) =
    {
      cc;
      div = Bytes.make (cc.Compiled.n_slots + 1) '\000';
      bad = Bytes.make (cc.Compiled.n_slots + 1) '\000';
      queued = Bytes.make (max 1 cc.Compiled.n_gates) '\000';
      pending = Array.make (cc.Compiled.depth + 2) [];
      ff_queued = Bytes.make (max 1 cc.Compiled.n_ffs) '\000';
    }

  type stats = { mutable events : int; mutable active : int;
                 mutable reconv : int }

  (* Runs one fault over the good trace [rows]; returns its first
     detection cycle and accumulates event/activity counts into [st]. *)
  let detect_rows ctx ~fault ~obs rows st =
    let cc = ctx.cc in
    let stem_slot, stem_code, bgate, bpool, bff, bcode =
      match (fault : Fault.t) with
      | { Fault.site = Fault.Stem n; stuck } ->
        ( cc.Compiled.perm.(n),
          (if stuck then V3b.one else V3b.zero), -1, -1, -1, 0 )
      | { Fault.site = Fault.Branch { node; pin }; stuck } ->
        let s = cc.Compiled.perm.(node) in
        let code = if stuck then V3b.one else V3b.zero in
        let k = Compiled.slot_gate cc s in
        if k >= 0 then (-1, 0, k, cc.Compiled.fanin_off.(k) + pin, -1, code)
        else (-1, 0, -1, -1, cc.Compiled.ff_of_slot.(s), code)
    in
    let { div; bad; queued; pending; ff_queued; _ } = ctx in
    let fanin = cc.Compiled.fanin in
    let n_cycles = Array.length rows in
    let row = ref rows.(0) in
    (* The faulty value of slot [o] (no pin override). *)
    let raw o =
      if o = stem_slot then stem_code
      else if Bytes.unsafe_get div o <> '\000' then
        Char.code (Bytes.unsafe_get bad o)
      else Compiled.get !row o
    in
    (* Fanin reader; pool indices are gate-unique, so the single branch
       override test covers the one faulted pin. *)
    let read i =
      if i = bpool then bcode else raw (Array.unsafe_get fanin i)
    in
    let touched = ref [] in (* combinational slots marked [div] this cycle *)
    let div_ffs = ref [] in (* FF output slots divergent entering this cycle *)
    let ff_cand = ref [] in (* flip-flop indices whose data may diverge *)
    let max_lev = ref 0 in
    let schedule s' =
      let k = Compiled.slot_gate cc s' in
      if k >= 0 then begin
        if Bytes.get queued k = '\000' && s' <> stem_slot then begin
          Bytes.set queued k '\001';
          let l = cc.Compiled.slot_level.(s') in
          pending.(l) <- k :: pending.(l);
          if l > !max_lev then max_lev := l
        end
      end
      else
        let f = cc.Compiled.ff_of_slot.(s') in
        if f >= 0 && Bytes.get ff_queued f = '\000' then begin
          Bytes.set ff_queued f '\001';
          ff_cand := f :: !ff_cand
        end
    in
    let announce s =
      for i = cc.Compiled.fanout_off.(s) to cc.Compiled.fanout_off.(s + 1) - 1
      do
        schedule cc.Compiled.fanout.(i)
      done
    in
    let result = ref None in
    let t = ref 0 in
    while !result = None && !t < n_cycles do
      row := rows.(!t);
      let stem_live =
        stem_slot >= 0 && stem_code <> Compiled.get !row stem_slot
      in
      List.iter announce !div_ffs;
      if stem_live then announce stem_slot;
      if bgate >= 0 then schedule (Compiled.gate_slot cc bgate);
      (if bff >= 0 && Bytes.get ff_queued bff = '\000' then begin
         Bytes.set ff_queued bff '\001';
         ff_cand := bff :: !ff_cand
       end);
      (* Settle: levels strictly ascend (every gate fanin is lower-level),
         so one pass evaluates each scheduled gate exactly once. *)
      let lev = ref 1 in
      while !lev <= !max_lev do
        let rec drain = function
          | [] -> ()
          | k :: rest ->
            Bytes.set queued k '\000';
            st.events <- st.events + 1;
            let nv = Compiled.eval_gate_via cc ~read k in
            let s = Compiled.gate_slot cc k in
            if nv <> Compiled.get !row s then begin
              Bytes.set bad s (Char.chr nv);
              if Bytes.get div s = '\000' then begin
                Bytes.set div s '\001';
                touched := s :: !touched
              end;
              announce s
            end;
            drain rest
        in
        let l = pending.(!lev) in
        pending.(!lev) <- [];
        drain l;
        incr lev
      done;
      max_lev := 0;
      (* Observation: only a divergent slot can complement-detect. *)
      if stem_live || !touched <> [] || !div_ffs <> [] then begin
        st.active <- st.active + 1;
        let no = Array.length obs in
        let k = ref 0 in
        while !result = None && !k < no do
          let o = Array.unsafe_get obs !k in
          if V3b.detects ~good:(Compiled.get !row o) ~faulty:(raw o) then
            result := Some !t;
          incr k
        done
      end;
      if !result = None then begin
        (* Clock: recompute flip-flop divergence for the next cycle. The
           candidates are every currently divergent flip-flop, every
           flip-flop whose data slot was announced during settle, and the
           branch-faulted flip-flop (its data pin is permanently
           overridden). A clamped stem flip-flop carries no state. *)
        List.iter
          (fun s ->
            let f = cc.Compiled.ff_of_slot.(s) in
            if Bytes.get ff_queued f = '\000' then begin
              Bytes.set ff_queued f '\001';
              ff_cand := f :: !ff_cand
            end)
          !div_ffs;
        (if bff >= 0 && Bytes.get ff_queued bff = '\000' then begin
           Bytes.set ff_queued bff '\001';
           ff_cand := bff :: !ff_cand
         end);
        let next = ref [] in
        List.iter
          (fun f ->
            Bytes.set ff_queued f '\000';
            let s = cc.Compiled.ff_slot.(f) in
            if s <> stem_slot then begin
              let d = cc.Compiled.ff_data.(f) in
              let bv = if f = bff then bcode else raw d in
              if bv = Compiled.get !row d then Bytes.set div s '\000'
              else begin
                Bytes.set div s '\001';
                Bytes.set bad s (Char.chr bv);
                next := s :: !next
              end
            end)
          !ff_cand;
        ff_cand := [];
        (if (stem_live || !touched <> [] || !div_ffs <> []) && !next = []
         then st.reconv <- st.reconv + 1);
        div_ffs := !next;
        List.iter (fun s -> Bytes.set div s '\000') !touched;
        touched := [];
        incr t
      end
    done;
    (* Scrub scratch state for the next fault (pending/queued are already
       clean: settle always completes before observation). *)
    List.iter (fun s -> Bytes.set div s '\000') !touched;
    List.iter (fun s -> Bytes.set div s '\000') !div_ffs;
    List.iter (fun f -> Bytes.set ff_queued f '\000') !ff_cand;
    !result

  let run_all ?on_fault ctx ~faults ~obs rows =
    Array.map
      (fun fault ->
        let st = { events = 0; active = 0; reconv = 0 } in
        let r = detect_rows ctx ~fault ~obs rows st in
        (match on_fault with
         | Some f -> f ~events:st.events ~active:st.active ~reconv:st.reconv
         | None -> ());
        r)
      faults

  let run_dropping ?on_fault ctx ~faults ~obs blocks =
    let nf = Array.length faults in
    let result = Array.make nf None in
    let pending = Array.init nf (fun i -> i) in
    let n_pending = ref nf in
    Array.iteri
      (fun block (_cstim, rows) ->
        if !n_pending > 0 then begin
          let kept = ref 0 in
          for k = 0 to !n_pending - 1 do
            let i = pending.(k) in
            let st = { events = 0; active = 0; reconv = 0 } in
            (match detect_rows ctx ~fault:faults.(i) ~obs rows st with
             | Some t -> result.(i) <- Some (block, t)
             | None ->
               pending.(!kept) <- i;
               incr kept);
            match on_fault with
            | Some f ->
              f ~events:st.events ~active:st.active ~reconv:st.reconv
            | None -> ()
          done;
          n_pending := !kept
        end)
      blocks;
    result

  (* [on_fault] reports per-(fault, block) event and cycle-activity counts
     — the hook {!Engine} feeds into the [fsim.event.*] histograms. *)
  let detect_all_stats ?on_fault c ~faults ~observe stim =
    let cc = Cc.get c in
    let cstim = Compiled.compile_stim cc stim in
    run_all ?on_fault (create_ctx cc) ~faults ~obs:(obs_slots cc observe)
      (Compiled.trace cc cstim)

  let detect_dropping_stats ?on_fault c ~faults ~observe ~stimuli =
    let cc = Cc.get c in
    let blocks =
      Array.of_list
        (List.map
           (fun stim ->
             let cstim = Compiled.compile_stim cc stim in
             (cstim, Compiled.trace cc cstim))
           stimuli)
    in
    run_dropping ?on_fault (create_ctx cc) ~faults
      ~obs:(obs_slots cc observe) blocks

  let detect_all c ~faults ~observe stim =
    detect_all_stats ?on_fault:None c ~faults ~observe stim

  let detect_dropping c ~faults ~observe ~stimuli =
    detect_dropping_stats ?on_fault:None c ~faults ~observe ~stimuli
end

type backend = [ `Serial | `Parallel | `Event ]
type selector = [ backend | `Auto ]

let engine : backend -> (module ENGINE) = function
  | `Serial -> (module Serial)
  | `Parallel -> (module Parallel)
  | `Event -> (module Event)

module Engine = struct
  module Pool = Fst_exec.Pool
  module Sink = Fst_obs.Sink
  module Metrics = Fst_obs.Metrics

  (* One branch when the sink is off; handle resolution and the clock
     read only happen on live sinks. The inner simulation loops in
     [Serial]/[Parallel]/[Event] are never touched. *)
  let observe_call (obs : Sink.t) name ~faults f =
    if not obs.Sink.enabled then f ()
    else begin
      let m = obs.Sink.metrics in
      Metrics.Counter.incr (Metrics.counter m ("fsim." ^ name ^ ".calls"));
      Metrics.Counter.add
        (Metrics.counter m ("fsim." ^ name ^ ".faults"))
        (Array.length faults);
      let t0 = Fst_exec.Clock.now () in
      let r = Sink.span obs ~name:("fsim." ^ name) ~cat:"fsim" f in
      Metrics.Histogram.observe
        (Metrics.histogram m ("fsim." ^ name ^ ".call_s"))
        (Fst_exec.Clock.now () -. t0);
      r
    end

  (* Per-(fault, block) event counts and reconvergence rates (reconverged /
     active cycles), observed only on live sinks. The histograms are
     domain-safe, so the hook may run inside pool tasks. *)
  let event_stats (obs : Sink.t) =
    if not obs.Sink.enabled then None
    else begin
      let m = obs.Sink.metrics in
      let h_events = Metrics.histogram m "fsim.event.events" in
      let h_reconv = Metrics.histogram m "fsim.event.reconv_rate" in
      Some
        (fun ~events ~active ~reconv ->
          Metrics.Histogram.observe h_events (float_of_int events);
          if active > 0 then
            Metrics.Histogram.observe h_reconv
              (float_of_int reconv /. float_of_int active))
    end

  (* {2 The [`Auto] cost model}

     All costs are in {e units} of one scalar compiled gate evaluation.
     Per fault over [cycles] simulated cycles:

     - serial: the whole netlist settles every cycle against the shared
       good rows — [n_gates * cycles].
     - event: only the active cone is evaluated; the static cone
       over-approximates it and events are cheaper than a full sweep's
       amortized gate (no stores outside the overlay), hence the [<1]
       constant — but every cycle a fault stays live also pays a fixed
       bookkeeping floor (observation scan, queue upkeep) that dominates
       for tiny cones — [(c_event_cycle + c_event * cone) * cycles].
     - parallel: a 62-lane group sweeps the {e union} cone of its
       members once per cycle; a plane gate eval costs several scalar
       ones (override lookups, flag checks, two-rail ops), and grouping
       by seed slot keeps the union within a small multiple of a member
       cone — per group
       [c_plane * min (n_gates, union_inflation * cone) * cycles].

     The constants were calibrated against [bench/main.exe fsim] runs on
     the ISCAS'89 suite (on s38417: parallel measured ~5x serial per
     fault => c_plane ~ 62/5; event ~9x => the per-cycle floor): they
     only need to be right within a factor of ~2 for the partition (and
     the serial guard) to pick the winner. *)

  let c_event = 0.35
  let c_event_cycle = 30.0
  let c_plane = 12.0
  let union_inflation = 8.0

  (* A fault whose static cone is at most this many nets goes to the
     event back-end; larger cones amortize better in a 62-wide group. *)
  let auto_cone_cap (c : Circuit.t) = max 8 (Circuit.num_nets c / 16)

  type decision = {
    backend : backend;
    indices : int array; (* positions in the input fault array *)
    units : int; (* modeled cost of running [indices] on [backend] *)
  }

  let serial_units (cc : Compiled.t) ~cycles n =
    n * max 1 cc.Compiled.n_gates * cycles

  let event_units ~cycles sizes indices =
    let u = ref 0.0 in
    Array.iter
      (fun i ->
        u :=
          !u
          +. ((c_event_cycle +. (c_event *. float_of_int sizes.(i)))
              *. float_of_int cycles))
      indices;
    int_of_float !u

  (* Group-based: a group sweeps its union cone once per cycle whether it
     carries 2 lanes or 62, so the cost is per group, not per fault —
     that is exactly what makes underfilled groups lose to serial. *)
  let parallel_units (cc : Compiled.t) ~cycles sizes indices =
    let n = Array.length indices in
    if n = 0 then 0
    else begin
      let ng = max 1 cc.Compiled.n_gates in
      let groups = (n + Parallel.max_group - 1) / Parallel.max_group in
      let mean =
        Array.fold_left (fun a i -> a +. float_of_int sizes.(i)) 0.0 indices
        /. float_of_int n
      in
      let union = Float.min (float_of_int ng) (union_inflation *. mean) in
      int_of_float
        (c_plane *. union *. float_of_int cycles *. float_of_int groups)
    end

  (* [plan c ~faults ~cycles] is the [`Auto] decision list: faults are
     split by capped cone size (small cones -> event-driven, large ->
     bit-parallel), then each partition is guarded — if its modeled cost
     exceeds running the same faults serially, it falls back to [`Serial].
     The union of [indices] over all decisions is exactly the input
     index range, and every decision's [units] is by construction at most
     the serial cost of its faults. *)
  let plan c ~faults ~cycles =
    let cc = Cc.get c in
    let cap = auto_cone_cap c in
    let sizes = Fault.cone_sizes ~cap c faults in
    let small = ref [] and large = ref [] in
    Array.iteri
      (fun i s -> if s <= cap then small := i :: !small
        else large := i :: !large)
      sizes;
    let small = Array.of_list (List.rev !small) in
    let large = Array.of_list (List.rev !large) in
    let guard backend units indices =
      if Array.length indices = 0 then None
      else
        let s = serial_units cc ~cycles (Array.length indices) in
        if units > s then Some { backend = `Serial; indices; units = s }
        else Some { backend; indices; units }
    in
    List.filter_map Fun.id
      [
        guard `Event (event_units ~cycles sizes small) small;
        guard `Parallel (parallel_units cc ~cycles sizes large) large;
      ]

  (* Shard size per pool task: whole 62-wide groups for the bit-parallel
     back-end (so sharding never splits a group), single faults grouped
     for the per-fault back-ends; about four shards per domain feeds the
     work-stealing queue without shrinking groups. Sized for the workers
     that will actually run (the pool clamps [jobs] to the core count) —
     over-sharding for phantom domains only multiplies underfilled tail
     groups and per-shard setup. *)
  let shard_size ~backend ~jobs nf =
    let target = max 1 (min jobs (Pool.default_jobs ()) * 4) in
    match backend with
    | `Serial | `Event -> max 1 ((nf + target - 1) / target)
    | `Parallel ->
      let groups = (nf + Parallel.max_group - 1) / Parallel.max_group in
      Parallel.max_group * max 1 ((groups + target - 1) / target)

  let shards ~backend ~jobs faults =
    let nf = Array.length faults in
    let size = shard_size ~backend ~jobs nf in
    let n = (nf + size - 1) / size in
    Array.init n (fun k ->
        Array.sub faults (k * size) (min size (nf - (k * size))))

  (* Modeled cost of running [faults] on an explicitly selected backend —
     feeds the pool's minimum-work threshold. *)
  let backend_units c ~backend ~cycles faults =
    let cc = Cc.get c in
    match backend with
    | `Serial -> serial_units cc ~cycles (Array.length faults)
    | `Event | `Parallel ->
      let cap = auto_cone_cap c in
      let sizes = Fault.cone_sizes ~cap c faults in
      let indices = Array.init (Array.length faults) (fun i -> i) in
      (match backend with
       | `Event -> event_units ~cycles sizes indices
       | `Parallel | `Serial -> parallel_units cc ~cycles sizes indices)

  let total_cycles_all stim = Array.length stim

  let total_cycles_dropping stimuli =
    List.fold_left (fun acc s -> acc + Array.length s) 0 stimuli

  (* Dispatch [faults] to [backend] across the pool: good trace computed
     once on the caller and shared read-only; per-domain engine contexts
     created lazily and reused across that domain's shards. *)
  let run_detect_all ~obs ~backend ~jobs ~work c ~faults ~observe stim =
    let cc = Cc.get c in
    let cstim = Compiled.compile_stim cc stim in
    let rows = Compiled.trace cc cstim in
    let obs_s = obs_slots cc observe in
    let parts = shards ~backend ~jobs faults in
    let run =
      match backend with
      | `Serial ->
        Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
          ~init:(fun () -> Serial.ctx cc)
          (fun ctx fs -> Serial.run_all ctx ~faults:fs ~obs:obs_s rows cstim)
      | `Parallel ->
        Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
          ~init:(fun () -> Parallel.ctx cc)
          (fun ctx fs -> Parallel.run_all ctx ~faults:fs ~obs:obs_s rows)
      | `Event ->
        let on_fault = event_stats obs in
        Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
          ~init:(fun () -> Event.create_ctx cc)
          (fun ctx fs -> Event.run_all ?on_fault ctx ~faults:fs ~obs:obs_s
              rows)
    in
    run parts |> Array.to_list |> Array.concat

  let run_detect_dropping ~obs ~backend ~jobs ~work c ~faults ~observe
      ~stimuli =
    let cc = Cc.get c in
    let obs_s = obs_slots cc observe in
    let stims = Array.of_list stimuli in
    let parts = shards ~backend ~jobs faults in
    let blocks () =
      Array.map
        (fun stim ->
          let cstim = Compiled.compile_stim cc stim in
          (cstim, Compiled.trace cc cstim))
        stims
    in
    let run =
      match backend with
      | `Serial ->
        let blocks = blocks () in
        Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
          ~init:(fun () -> Serial.ctx cc)
          (fun ctx fs -> Serial.run_dropping ctx ~faults:fs ~obs:obs_s blocks)
      | `Parallel ->
        if Parallel.packed_worthwhile cc ~faults ~stims then begin
          let chunks = Parallel.pack_chunks cc stims in
          Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
            ~init:(fun () -> Parallel.ctx cc)
            (fun ctx fs ->
              Parallel.run_dropping_packed ctx ~faults:fs ~obs:obs_s chunks)
        end
        else begin
          let blocks = blocks () in
          Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
            ~init:(fun () -> Parallel.ctx cc)
            (fun ctx fs ->
              Parallel.run_dropping ctx ~faults:fs ~obs:obs_s blocks)
        end
      | `Event ->
        let blocks = blocks () in
        let on_fault = event_stats obs in
        Pool.map_array_init ~obs ~label:"fsim" ~chunk:1 ~work ~jobs
          ~init:(fun () -> Event.create_ctx cc)
          (fun ctx fs ->
            Event.run_dropping ?on_fault ctx ~faults:fs ~obs:obs_s blocks)
    in
    run parts |> Array.to_list |> Array.concat

  (* Runs [`Auto]'s planned decisions through [run] and merges the
     results back into input order. *)
  let run_plan run c ~faults ~cycles =
    match plan c ~faults ~cycles with
    | [ d ] -> run d.backend d.units faults
    | ds ->
      let out = Array.make (Array.length faults) None in
      List.iter
        (fun d ->
          let fs = Array.map (fun i -> faults.(i)) d.indices in
          let rs = run d.backend d.units fs in
          Array.iteri (fun k i -> out.(i) <- rs.(k)) d.indices)
        ds;
      out

  (* Chaos hook at every engine entry: a [Raise] injection here exercises
     the callers' retry/containment paths; [Cancel] has no local meaning
     (detection has no token) and is ignored per the {!Fst_exec.Chaos}
     contract. A single atomic load when disarmed. *)
  let chaos_entry () =
    match Fst_exec.Chaos.point Fst_exec.Chaos.Engine with
    | `Ok | `Cancel -> ()

  let detect_all ?(obs = Sink.null) ?(engine = `Auto) ?(jobs = 1) c ~faults
      ~observe stim =
    chaos_entry ();
    let jobs = max 1 jobs in
    observe_call obs "detect_all" ~faults (fun () ->
        if Array.length faults = 0 then [||]
        else
          let cycles = total_cycles_all stim in
          match (engine : selector) with
          | #backend as backend ->
            let work = backend_units c ~backend ~cycles faults in
            run_detect_all ~obs ~backend ~jobs ~work c ~faults ~observe stim
          | `Auto ->
            run_plan
              (fun backend work fs ->
                run_detect_all ~obs ~backend ~jobs ~work c ~faults:fs
                  ~observe stim)
              c ~faults ~cycles)

  let detect_dropping ?(obs = Sink.null) ?(engine = `Auto) ?(jobs = 1) c
      ~faults ~observe ~stimuli =
    chaos_entry ();
    let jobs = max 1 jobs in
    observe_call obs "detect_dropping" ~faults (fun () ->
        if Array.length faults = 0 then [||]
        else
          let cycles = total_cycles_dropping stimuli in
          match (engine : selector) with
          | #backend as backend ->
            let work = backend_units c ~backend ~cycles faults in
            run_detect_dropping ~obs ~backend ~jobs ~work c ~faults
              ~observe ~stimuli
          | `Auto ->
            run_plan
              (fun backend work fs ->
                run_detect_dropping ~obs ~backend ~jobs ~work c ~faults:fs
                  ~observe ~stimuli)
              c ~faults ~cycles)
end
