open Fst_logic
open Fst_netlist
open Fst_sim
open Fst_fault

type stimulus = Sim.stimulus

let complement_detect ~good ~faulty =
  match good, faulty with
  | V3.One, V3.Zero | V3.Zero, V3.One -> true
  | (V3.Zero | V3.One | V3.X), _ -> false

module type ENGINE = sig
  val detect_all :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  val detect_dropping :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

module Serial = struct
  type machine = {
    v : V3.t array;
    latch : V3.t array;
    stem_net : int; (* -1 when the fault is a branch fault *)
    stem_val : V3.t;
    branch_node : int;
    branch_pin : int;
    branch_val : V3.t;
  }

  let machine (c : Circuit.t) (fault : Fault.t option) =
    let v = Array.make (Circuit.num_nets c) V3.X in
    Array.iteri
      (fun i nd -> match nd with Circuit.Const k -> v.(i) <- k | _ -> ())
      c.Circuit.nodes;
    let stem_net, stem_val, branch_node, branch_pin, branch_val =
      match fault with
      | None -> (-1, V3.X, -1, -1, V3.X)
      | Some { Fault.site = Fault.Stem n; stuck } ->
        (n, V3.of_bool stuck, -1, -1, V3.X)
      | Some { Fault.site = Fault.Branch { node; pin }; stuck } ->
        (-1, V3.X, node, pin, V3.of_bool stuck)
    in
    { v = v; latch = Array.make (Circuit.dff_count c) V3.X;
      stem_net; stem_val; branch_node; branch_pin; branch_val }

  let fanin_value m node pin net =
    if node = m.branch_node && pin = m.branch_pin then m.branch_val
    else m.v.(net)

  let eval_comb (c : Circuit.t) m =
    Array.iter
      (fun i ->
        (match c.Circuit.nodes.(i) with
         | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
         | Circuit.Gate (g, fi) ->
           let vals = Array.mapi (fun pin f -> fanin_value m i pin f) fi in
           m.v.(i) <- Gate.eval g vals);
        if i = m.stem_net then m.v.(i) <- m.stem_val)
      c.Circuit.topo

  let clock (c : Circuit.t) m =
    Array.iteri
      (fun k ff ->
        match c.Circuit.nodes.(ff) with
        | Circuit.Dff data -> m.latch.(k) <- fanin_value m ff 0 data
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
      c.Circuit.dffs;
    Array.iteri (fun k ff -> m.v.(ff) <- m.latch.(k)) c.Circuit.dffs

  module Machine = struct
    type t = machine

    let set_input _c m n v = m.v.(n) <- v
    let eval_comb = eval_comb
    let clock = clock
  end

  (* The good and faulty machines driven in lock-step, as one machine. *)
  module Pair = struct
    type t = { good : machine; bad : machine }

    let set_input c p n v =
      Machine.set_input c p.good n v;
      Machine.set_input c p.bad n v

    let eval_comb c p =
      eval_comb c p.good;
      eval_comb c p.bad

    let clock c p =
      clock c p.good;
      clock c p.bad
  end

  module Drive_one = Sim.Drive (Machine)
  module Drive_pair = Sim.Drive (Pair)

  let trace c ~fault ~observe stim =
    let m = machine c fault in
    let rows = Array.make (Array.length stim) [||] in
    Drive_one.run c m stim ~observe:(fun t ->
        rows.(t) <- Array.map (fun o -> m.v.(o)) observe);
    rows

  let detect c ~fault ~observe stim =
    let p = { Pair.good = machine c None; bad = machine c (Some fault) } in
    Drive_pair.run_until c p stim ~observe:(fun _t ->
        Array.exists
          (fun o ->
            complement_detect ~good:p.Pair.good.v.(o) ~faulty:p.Pair.bad.v.(o))
          observe)

  let detect_all c ~faults ~observe stim =
    Array.map (fun fault -> detect c ~fault ~observe stim) faults

  let detect_dropping c ~faults ~observe ~stimuli =
    Array.map
      (fun fault ->
        let rec scan block = function
          | [] -> None
          | stim :: rest -> (
            match detect c ~fault ~observe stim with
            | Some t -> Some (block, t)
            | None -> scan (block + 1) rest)
        in
        scan 0 stimuli)
      faults
end

module Parallel = struct
  let max_group = 62

  type group = {
    w : int; (* number of machines *)
    full : int; (* mask of active machine bits *)
    ones : int array; (* per net: bit k set = value 1 in machine k *)
    zeros : int array; (* per net: bit k set = value 0 in machine k *)
    latch1 : int array;
    latch0 : int array;
    (* stem injection planes, indexed by net *)
    f1 : int array;
    f0 : int array;
    (* branch injections, indexed by node: (pin, one-mask, zero-mask) *)
    branch : (int * int * int) list array;
  }

  let group_of (c : Circuit.t) faults =
    let n = Circuit.num_nets c in
    let w = Array.length faults in
    assert (w <= max_group);
    let g =
      {
        w;
        full = (1 lsl w) - 1;
        ones = Array.make n 0;
        zeros = Array.make n 0;
        latch1 = Array.make (Circuit.dff_count c) 0;
        latch0 = Array.make (Circuit.dff_count c) 0;
        f1 = Array.make n 0;
        f0 = Array.make n 0;
        branch = Array.make n [];
      }
    in
    Array.iteri
      (fun k (fault : Fault.t) ->
        let bit = 1 lsl k in
        match fault.Fault.site with
        | Fault.Stem net ->
          if fault.Fault.stuck then g.f1.(net) <- g.f1.(net) lor bit
          else g.f0.(net) <- g.f0.(net) lor bit
        | Fault.Branch { node; pin } ->
          let one = if fault.Fault.stuck then bit else 0 in
          let zero = if fault.Fault.stuck then 0 else bit in
          g.branch.(node) <- (pin, one, zero) :: g.branch.(node))
      faults;
    Array.iteri
      (fun i nd ->
        match nd with
        | Circuit.Const V3.One -> g.ones.(i) <- g.full
        | Circuit.Const V3.Zero -> g.zeros.(i) <- g.full
        | Circuit.Const V3.X | Circuit.Input | Circuit.Gate _ | Circuit.Dff _
          -> ())
      c.Circuit.nodes;
    g

  let inject g net =
    let m1 = g.f1.(net) and m0 = g.f0.(net) in
    if m1 lor m0 <> 0 then begin
      let mask = lnot (m1 lor m0) in
      g.ones.(net) <- g.ones.(net) land mask lor m1;
      g.zeros.(net) <- g.zeros.(net) land mask lor m0
    end

  (* Reads fanin [pin] of [node], applying any branch-fault override. *)
  let fanin_planes g node pin net =
    let one = ref g.ones.(net) and zero = ref g.zeros.(net) in
    List.iter
      (fun (p, fo, fz) ->
        if p = pin then begin
          let m = lnot (fo lor fz) in
          one := (!one land m) lor fo;
          zero := (!zero land m) lor fz
        end)
      g.branch.(node);
    (!one, !zero)

  let eval_gate g kind node fi =
    let n = Array.length fi in
    match kind with
    | Gate.And | Gate.Nand ->
      let one = ref g.full and zero = ref 0 in
      for pin = 0 to n - 1 do
        let po, pz = fanin_planes g node pin fi.(pin) in
        one := !one land po;
        zero := !zero lor pz
      done;
      if kind = Gate.And then (!one, !zero) else (!zero, !one)
    | Gate.Or | Gate.Nor ->
      let one = ref 0 and zero = ref g.full in
      for pin = 0 to n - 1 do
        let po, pz = fanin_planes g node pin fi.(pin) in
        one := !one lor po;
        zero := !zero land pz
      done;
      if kind = Gate.Or then (!one, !zero) else (!zero, !one)
    | Gate.Xor | Gate.Xnor ->
      let one = ref 0 and zero = ref g.full in
      for pin = 0 to n - 1 do
        let po, pz = fanin_planes g node pin fi.(pin) in
        let o = (!one land pz) lor (!zero land po) in
        let z = (!one land po) lor (!zero land pz) in
        one := o;
        zero := z
      done;
      if kind = Gate.Xor then (!one, !zero) else (!zero, !one)
    | Gate.Not ->
      let po, pz = fanin_planes g node 0 fi.(0) in
      (pz, po)
    | Gate.Buf -> fanin_planes g node 0 fi.(0)

  let eval_comb (c : Circuit.t) g =
    Array.iter
      (fun i ->
        (match c.Circuit.nodes.(i) with
         | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
         | Circuit.Gate (kind, fi) ->
           let one, zero = eval_gate g kind i fi in
           g.ones.(i) <- one;
           g.zeros.(i) <- zero);
        inject g i)
      c.Circuit.topo

  let set_input g net v =
    (match v with
     | V3.One ->
       g.ones.(net) <- g.full;
       g.zeros.(net) <- 0
     | V3.Zero ->
       g.ones.(net) <- 0;
       g.zeros.(net) <- g.full
     | V3.X ->
       g.ones.(net) <- 0;
       g.zeros.(net) <- 0);
    inject g net

  let clock (c : Circuit.t) g =
    Array.iteri
      (fun k ff ->
        match c.Circuit.nodes.(ff) with
        | Circuit.Dff data ->
          let one, zero = fanin_planes g ff 0 data in
          g.latch1.(k) <- one;
          g.latch0.(k) <- zero
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
      c.Circuit.dffs;
    Array.iteri
      (fun k ff ->
        g.ones.(ff) <- g.latch1.(k);
        g.zeros.(ff) <- g.latch0.(k);
        inject g ff)
      c.Circuit.dffs

  (* The fault-free sweep machine and the 62-wide faulty group driven in
     lock-step, as one machine. *)
  module Duo = struct
    type t = { good : Sim.state; g : group }

    let set_input c d n v =
      Sim.set_input c d.good n v;
      set_input d.g n v

    let eval_comb c d =
      Sim.eval_comb c d.good;
      eval_comb c d.g

    let clock c d =
      Sim.clock c d.good;
      clock c d.g
  end

  module Driver = Sim.Drive (Duo)

  (* Simulates one group of faults against [stim]; [record k t] is called on
     the first detection of machine [k]. Stops as soon as every machine in
     the group has been detected (fault dropping within the group). *)
  let run_group (c : Circuit.t) faults ~observe stim record =
    let d = { Duo.good = Sim.create c; g = group_of c faults } in
    let g = d.Duo.g in
    let alive = ref g.full in
    ignore
      (Driver.run_until c d stim ~observe:(fun t ->
           Array.iter
             (fun o ->
               let detect_mask =
                 match Sim.value d.Duo.good o with
                 | V3.One -> g.zeros.(o)
                 | V3.Zero -> g.ones.(o)
                 | V3.X -> 0
               in
               let hits = detect_mask land !alive in
               if hits <> 0 then
                 for k = 0 to g.w - 1 do
                   if hits land (1 lsl k) <> 0 then begin
                     record k t;
                     alive := !alive land lnot (1 lsl k)
                   end
                 done)
             observe;
           !alive = 0))

  let detect_all c ~faults ~observe stim =
    let nf = Array.length faults in
    let result = Array.make nf None in
    let pos = ref 0 in
    while !pos < nf do
      let w = min max_group (nf - !pos) in
      let chunk = Array.sub faults !pos w in
      let base = !pos in
      run_group c chunk ~observe stim (fun k t ->
          if result.(base + k) = None then result.(base + k) <- Some t);
      pos := !pos + w
    done;
    result

  let detect_dropping c ~faults ~observe ~stimuli =
    let nf = Array.length faults in
    let result = Array.make nf None in
    (* The surviving fault set is kept as a prefix of [pending], compacted
       in place after each block — no per-block rescans of the whole list. *)
    let pending = Array.init nf (fun i -> i) in
    let n_pending = ref nf in
    List.iteri
      (fun block stim ->
        if !n_pending > 0 then begin
          let np = !n_pending in
          let pos = ref 0 in
          while !pos < np do
            let w = min max_group (np - !pos) in
            let chunk_ids = Array.sub pending !pos w in
            let chunk = Array.map (fun i -> faults.(i)) chunk_ids in
            run_group c chunk ~observe stim (fun k t ->
                let i = chunk_ids.(k) in
                if result.(i) = None then result.(i) <- Some (block, t));
            pos := !pos + w
          done;
          let kept = ref 0 in
          for k = 0 to np - 1 do
            let i = pending.(k) in
            if result.(i) = None then begin
              pending.(!kept) <- i;
              incr kept
            end
          done;
          n_pending := !kept
        end)
      stimuli;
    result
end

module Event = struct
  (* Single-fault event-driven incremental simulation.

     The fault-free machine is simulated once per stimulus block and its
     post-[eval_comb] net values recorded per cycle (the good trace); every
     fault is then simulated as a sparse divergence overlay on those rows.
     Per cycle, events are seeded only where the fault can first act — the
     stem (when the good value differs from the stuck value), the branch
     consumer node (whose overridden pin must be re-read), and flip-flops
     still carrying divergent state — and propagated through gates in
     ascending combinational level, so each gate is evaluated at most once
     per cycle and only inside the fault's active region. A cycle in which
     nothing diverges costs O(seeds); a fault whose state divergence dies
     out reconverges with the good machine and pays nothing until the stem
     value differs again.

     Detection and dropping semantics are exactly [Serial]'s: the observed
     value of a net is its computed value (branch overrides apply to pin
     reads only), and detection needs complementary binary values. *)

  (* Scratch state sized once per circuit and scrubbed after each fault;
     [bad] is meaningful only where [div] is set. *)
  type ctx = {
    div : bool array; (* net currently diverges from the good trace *)
    bad : V3.t array; (* its faulty value when [div] *)
    queued : bool array; (* gate already scheduled this cycle *)
    pending : int list array; (* scheduled gates, by combinational level *)
    ff_queued : bool array; (* flip-flop already a latch candidate *)
  }

  let create_ctx (c : Circuit.t) =
    let n = Circuit.num_nets c in
    {
      div = Array.make n false;
      bad = Array.make n V3.X;
      queued = Array.make n false;
      pending = Array.make (Circuit.depth c + 1) [];
      ff_queued = Array.make n false;
    }

  (* The good machine's net values after every cycle's [eval_comb]; row [t]
     is the reference the overlay diverges from at cycle [t]. *)
  let good_trace (c : Circuit.t) (stim : stimulus) =
    let m = Serial.machine c None in
    let rows = Array.make (Array.length stim) [||] in
    Serial.Drive_one.run c m stim ~observe:(fun t ->
        rows.(t) <- Array.copy m.Serial.v);
    rows

  type stats = { mutable events : int; mutable active : int;
                 mutable reconv : int }

  (* Runs one fault over the good trace [rows]; returns its first detection
     cycle and accumulates event/activity counts into [st]. *)
  let detect_rows ctx (c : Circuit.t) ~fault ~observe rows st =
    let stem_net, stem_val, branch_node, branch_pin, branch_val =
      match (fault : Fault.t) with
      | { Fault.site = Fault.Stem n; stuck } ->
        (n, V3.of_bool stuck, -1, -1, V3.X)
      | { Fault.site = Fault.Branch { node; pin }; stuck } ->
        (-1, V3.X, node, pin, V3.of_bool stuck)
    in
    let { div; bad; queued; pending; ff_queued } = ctx in
    let nodes = c.Circuit.nodes in
    let level = c.Circuit.level in
    let n_cycles = Array.length rows in
    let row = ref [||] in
    (* The faulty value of net [o] (no pin override). *)
    let raw o =
      if o = stem_net then stem_val
      else if div.(o) then bad.(o)
      else !row.(o)
    in
    let fanin_val node pin net =
      if node = branch_node && pin = branch_pin then branch_val else raw net
    in
    let touched = ref [] in (* combinational nets marked [div] this cycle *)
    let div_ffs = ref [] in (* flip-flops divergent entering this cycle *)
    let ff_cand = ref [] in (* flip-flops whose data may diverge *)
    let max_lev = ref 0 in
    let schedule i =
      match nodes.(i) with
      | Circuit.Gate _ ->
        if (not queued.(i)) && i <> stem_net then begin
          queued.(i) <- true;
          let l = level.(i) in
          pending.(l) <- i :: pending.(l);
          if l > !max_lev then max_lev := l
        end
      | Circuit.Dff _ ->
        if not ff_queued.(i) then begin
          ff_queued.(i) <- true;
          ff_cand := i :: !ff_cand
        end
      | Circuit.Input | Circuit.Const _ -> ()
    in
    let announce net = Array.iter schedule c.Circuit.fanout.(net) in
    let result = ref None in
    let t = ref 0 in
    while !result = None && !t < n_cycles do
      row := rows.(!t);
      let stem_live =
        stem_net >= 0 && not (V3.equal stem_val !row.(stem_net))
      in
      List.iter announce !div_ffs;
      if stem_live then announce stem_net;
      if branch_node >= 0 then schedule branch_node;
      (* Settle: levels strictly ascend (every gate fanin is lower-level),
         so one pass evaluates each scheduled gate exactly once. *)
      let lev = ref 1 in
      while !lev <= !max_lev do
        let rec drain = function
          | [] -> ()
          | i :: rest ->
            queued.(i) <- false;
            (match nodes.(i) with
             | Circuit.Gate (g, fi) ->
               st.events <- st.events + 1;
               let vals = Array.mapi (fun pin f -> fanin_val i pin f) fi in
               let nv = Gate.eval g vals in
               if not (V3.equal nv !row.(i)) then begin
                 bad.(i) <- nv;
                 if not div.(i) then begin
                   div.(i) <- true;
                   touched := i :: !touched
                 end;
                 announce i
               end
             | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ());
            drain rest
        in
        let l = pending.(!lev) in
        pending.(!lev) <- [];
        drain l;
        incr lev
      done;
      max_lev := 0;
      (* Observation: only a divergent net can complement-detect. *)
      if stem_live || !touched <> [] || !div_ffs <> [] then begin
        st.active <- st.active + 1;
        let no = Array.length observe in
        let k = ref 0 in
        while !result = None && !k < no do
          let o = observe.(!k) in
          if complement_detect ~good:!row.(o) ~faulty:(raw o) then
            result := Some !t;
          incr k
        done
      end;
      if !result = None then begin
        (* Clock: recompute flip-flop divergence for the next cycle. The
           candidates are every currently divergent flip-flop, every
           flip-flop whose data net was announced during settle, and the
           branch-faulted flip-flop (its data pin is permanently
           overridden). A clamped stem flip-flop carries no state. *)
        List.iter
          (fun ff ->
            if not ff_queued.(ff) then begin
              ff_queued.(ff) <- true;
              ff_cand := ff :: !ff_cand
            end)
          !div_ffs;
        (if branch_node >= 0 then
           match nodes.(branch_node) with
           | Circuit.Dff _ ->
             if not ff_queued.(branch_node) then begin
               ff_queued.(branch_node) <- true;
               ff_cand := branch_node :: !ff_cand
             end
           | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> ());
        let next = ref [] in
        List.iter
          (fun ff ->
            ff_queued.(ff) <- false;
            if ff <> stem_net then
              match nodes.(ff) with
              | Circuit.Dff data ->
                let bv = fanin_val ff 0 data in
                if V3.equal bv !row.(data) then div.(ff) <- false
                else begin
                  div.(ff) <- true;
                  bad.(ff) <- bv;
                  next := ff :: !next
                end
              | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> ())
          !ff_cand;
        ff_cand := [];
        (if (stem_live || !touched <> [] || !div_ffs <> []) && !next = []
         then st.reconv <- st.reconv + 1);
        div_ffs := !next;
        List.iter (fun i -> div.(i) <- false) !touched;
        touched := [];
        incr t
      end
    done;
    (* Scrub scratch state for the next fault (pending/queued are already
       clean: settle always completes before observation). *)
    List.iter (fun i -> div.(i) <- false) !touched;
    List.iter (fun ff -> div.(ff) <- false) !div_ffs;
    List.iter (fun ff -> ff_queued.(ff) <- false) !ff_cand;
    !result

  (* [on_fault] reports per-(fault, block) event and cycle-activity counts
     — the hook {!Engine} feeds into the [fsim.event.*] histograms. *)
  let detect_all_stats ?on_fault c ~faults ~observe stim =
    let ctx = create_ctx c in
    let rows = good_trace c stim in
    Array.map
      (fun fault ->
        let st = { events = 0; active = 0; reconv = 0 } in
        let r = detect_rows ctx c ~fault ~observe rows st in
        (match on_fault with
         | Some f -> f ~events:st.events ~active:st.active ~reconv:st.reconv
         | None -> ());
        r)
      faults

  let detect_dropping_stats ?on_fault c ~faults ~observe ~stimuli =
    let nf = Array.length faults in
    let result = Array.make nf None in
    let ctx = create_ctx c in
    let pending = Array.init nf (fun i -> i) in
    let n_pending = ref nf in
    List.iteri
      (fun block stim ->
        if !n_pending > 0 then begin
          let rows = good_trace c stim in
          let kept = ref 0 in
          for k = 0 to !n_pending - 1 do
            let i = pending.(k) in
            let st = { events = 0; active = 0; reconv = 0 } in
            (match detect_rows ctx c ~fault:faults.(i) ~observe rows st with
             | Some t -> result.(i) <- Some (block, t)
             | None ->
               pending.(!kept) <- i;
               incr kept);
            match on_fault with
            | Some f ->
              f ~events:st.events ~active:st.active ~reconv:st.reconv
            | None -> ()
          done;
          n_pending := !kept
        end)
      stimuli;
    result

  let detect_all c ~faults ~observe stim =
    detect_all_stats ?on_fault:None c ~faults ~observe stim

  let detect_dropping c ~faults ~observe ~stimuli =
    detect_dropping_stats ?on_fault:None c ~faults ~observe ~stimuli
end

type backend = [ `Serial | `Parallel | `Event ]
type selector = [ backend | `Auto ]

let engine : backend -> (module ENGINE) = function
  | `Serial -> (module Serial)
  | `Parallel -> (module Parallel)
  | `Event -> (module Event)

module Engine = struct
  module Pool = Fst_exec.Pool
  module Sink = Fst_obs.Sink
  module Metrics = Fst_obs.Metrics

  (* Shard size per pool task: whole 62-wide groups for the bit-parallel
     back-end (so sharding never splits a group), single faults grouped
     for the per-fault back-ends; about two shards per domain keeps the
     queue balanced without shrinking groups. *)
  let shard_size ~backend ~jobs nf =
    let target = max 1 (jobs * 2) in
    match backend with
    | `Serial | `Event -> max 1 ((nf + target - 1) / target)
    | `Parallel ->
      let groups = (nf + Parallel.max_group - 1) / Parallel.max_group in
      Parallel.max_group * max 1 ((groups + target - 1) / target)

  let shards ~backend ~jobs faults =
    let nf = Array.length faults in
    let size = shard_size ~backend ~jobs nf in
    let n = (nf + size - 1) / size in
    Array.init n (fun k ->
        Array.sub faults (k * size) (min size (nf - (k * size))))

  (* One branch when the sink is off; handle resolution and the clock
     read only happen on live sinks. The inner simulation loops in
     [Serial]/[Parallel]/[Event] are never touched. *)
  let observe_call (obs : Sink.t) name ~faults f =
    if not obs.Sink.enabled then f ()
    else begin
      let m = obs.Sink.metrics in
      Metrics.Counter.incr (Metrics.counter m ("fsim." ^ name ^ ".calls"));
      Metrics.Counter.add
        (Metrics.counter m ("fsim." ^ name ^ ".faults"))
        (Array.length faults);
      let t0 = Fst_exec.Clock.now () in
      let r = Sink.span obs ~name:("fsim." ^ name) ~cat:"fsim" f in
      Metrics.Histogram.observe
        (Metrics.histogram m ("fsim." ^ name ^ ".call_s"))
        (Fst_exec.Clock.now () -. t0);
      r
    end

  (* Per-(fault, block) event counts and reconvergence rates (reconverged /
     active cycles), observed only on live sinks. The histograms are
     domain-safe, so the hook may run inside pool tasks. *)
  let event_stats (obs : Sink.t) =
    if not obs.Sink.enabled then None
    else begin
      let m = obs.Sink.metrics in
      let h_events = Metrics.histogram m "fsim.event.events" in
      let h_reconv = Metrics.histogram m "fsim.event.reconv_rate" in
      Some
        (fun ~events ~active ~reconv ->
          Metrics.Histogram.observe h_events (float_of_int events);
          if active > 0 then
            Metrics.Histogram.observe h_reconv
              (float_of_int reconv /. float_of_int active))
    end

  (* [`Auto]: a fault whose static cone is at most this many nets is
     cheaper event-driven than amortized over a 62-wide bit-parallel
     group (whose per-fault sweep cost is ~num_nets/62 gate evaluations
     per cycle, against cone-bounded events). *)
  let auto_cone_cap (c : Circuit.t) = max 8 (Circuit.num_nets c / 16)

  (* Splits fault indices into (event-sized, parallel-sized) by capped
     cone size; order inside each part preserves the input order. *)
  let auto_split c faults =
    let cap = auto_cone_cap c in
    let sizes = Fault.cone_sizes ~cap c faults in
    let small = ref [] and large = ref [] in
    Array.iteri
      (fun i s -> if s <= cap then small := i :: !small
        else large := i :: !large)
      sizes;
    ( Array.of_list (List.rev !small),
      Array.of_list (List.rev !large) )

  let run_detect_all ~obs ~backend ~jobs c ~faults ~observe stim =
    let direct () =
      match backend with
      | `Event ->
        Event.detect_all_stats ?on_fault:(event_stats obs) c ~faults
          ~observe stim
      | (`Serial | `Parallel) as b ->
        let module E = (val engine b) in
        E.detect_all c ~faults ~observe stim
    in
    if jobs = 1 || Array.length faults = 0 then direct ()
    else
      let task =
        match backend with
        | `Event ->
          let on_fault = event_stats obs in
          fun fs -> Event.detect_all_stats ?on_fault c ~faults:fs
              ~observe stim
        | (`Serial | `Parallel) as b ->
          let module E = (val engine b) in
          fun fs -> E.detect_all c ~faults:fs ~observe stim
      in
      Pool.map_array ~obs ~label:"fsim" ~jobs ~chunk:1 task
        (shards ~backend ~jobs faults)
      |> Array.to_list |> Array.concat

  let run_detect_dropping ~obs ~backend ~jobs c ~faults ~observe ~stimuli =
    let direct () =
      match backend with
      | `Event ->
        Event.detect_dropping_stats ?on_fault:(event_stats obs) c ~faults
          ~observe ~stimuli
      | (`Serial | `Parallel) as b ->
        let module E = (val engine b) in
        E.detect_dropping c ~faults ~observe ~stimuli
    in
    if jobs = 1 || Array.length faults = 0 then direct ()
    else
      let task =
        match backend with
        | `Event ->
          let on_fault = event_stats obs in
          fun fs -> Event.detect_dropping_stats ?on_fault c ~faults:fs
              ~observe ~stimuli
        | (`Serial | `Parallel) as b ->
          let module E = (val engine b) in
          fun fs -> E.detect_dropping c ~faults:fs ~observe ~stimuli
      in
      Pool.map_array ~obs ~label:"fsim" ~jobs ~chunk:1 task
        (shards ~backend ~jobs faults)
      |> Array.to_list |> Array.concat

  (* Runs [`Auto]'s two partitions through [run] and merges the results
     back into input order. *)
  let run_auto run c faults =
    let small, large = auto_split c faults in
    if Array.length large = 0 then run `Event faults
    else if Array.length small = 0 then run `Parallel faults
    else begin
      let rs = run `Event (Array.map (fun i -> faults.(i)) small) in
      let rl = run `Parallel (Array.map (fun i -> faults.(i)) large) in
      let out = Array.make (Array.length faults) rs.(0) in
      Array.iteri (fun k i -> out.(i) <- rs.(k)) small;
      Array.iteri (fun k i -> out.(i) <- rl.(k)) large;
      out
    end

  let detect_all ?(obs = Sink.null) ?(engine = `Auto) ?(jobs = 1) c ~faults
      ~observe stim =
    let jobs = max 1 jobs in
    observe_call obs "detect_all" ~faults (fun () ->
        if Array.length faults = 0 then [||]
        else
          match (engine : selector) with
          | #backend as backend ->
            run_detect_all ~obs ~backend ~jobs c ~faults ~observe stim
          | `Auto ->
            run_auto
              (fun backend fs ->
                run_detect_all ~obs ~backend ~jobs c ~faults:fs ~observe
                  stim)
              c faults)

  let detect_dropping ?(obs = Sink.null) ?(engine = `Auto) ?(jobs = 1) c
      ~faults ~observe ~stimuli =
    let jobs = max 1 jobs in
    observe_call obs "detect_dropping" ~faults (fun () ->
        if Array.length faults = 0 then [||]
        else
          match (engine : selector) with
          | #backend as backend ->
            run_detect_dropping ~obs ~backend ~jobs c ~faults ~observe
              ~stimuli
          | `Auto ->
            run_auto
              (fun backend fs ->
                run_detect_dropping ~obs ~backend ~jobs c ~faults:fs
                  ~observe ~stimuli)
              c faults)
end
