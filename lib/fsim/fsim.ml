open Fst_logic
open Fst_netlist
open Fst_sim
open Fst_fault

type stimulus = Sim.stimulus

let complement_detect ~good ~faulty =
  match good, faulty with
  | V3.One, V3.Zero | V3.Zero, V3.One -> true
  | (V3.Zero | V3.One | V3.X), _ -> false

module type ENGINE = sig
  val detect_all :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  val detect_dropping :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

module Serial = struct
  type machine = {
    v : V3.t array;
    latch : V3.t array;
    stem_net : int; (* -1 when the fault is a branch fault *)
    stem_val : V3.t;
    branch_node : int;
    branch_pin : int;
    branch_val : V3.t;
  }

  let machine (c : Circuit.t) (fault : Fault.t option) =
    let v = Array.make (Circuit.num_nets c) V3.X in
    Array.iteri
      (fun i nd -> match nd with Circuit.Const k -> v.(i) <- k | _ -> ())
      c.Circuit.nodes;
    let stem_net, stem_val, branch_node, branch_pin, branch_val =
      match fault with
      | None -> (-1, V3.X, -1, -1, V3.X)
      | Some { Fault.site = Fault.Stem n; stuck } ->
        (n, V3.of_bool stuck, -1, -1, V3.X)
      | Some { Fault.site = Fault.Branch { node; pin }; stuck } ->
        (-1, V3.X, node, pin, V3.of_bool stuck)
    in
    { v = v; latch = Array.make (Circuit.dff_count c) V3.X;
      stem_net; stem_val; branch_node; branch_pin; branch_val }

  let fanin_value m node pin net =
    if node = m.branch_node && pin = m.branch_pin then m.branch_val
    else m.v.(net)

  let eval_comb (c : Circuit.t) m =
    Array.iter
      (fun i ->
        (match c.Circuit.nodes.(i) with
         | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
         | Circuit.Gate (g, fi) ->
           let vals = Array.mapi (fun pin f -> fanin_value m i pin f) fi in
           m.v.(i) <- Gate.eval g vals);
        if i = m.stem_net then m.v.(i) <- m.stem_val)
      c.Circuit.topo

  let clock (c : Circuit.t) m =
    Array.iteri
      (fun k ff ->
        match c.Circuit.nodes.(ff) with
        | Circuit.Dff data -> m.latch.(k) <- fanin_value m ff 0 data
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
      c.Circuit.dffs;
    Array.iteri (fun k ff -> m.v.(ff) <- m.latch.(k)) c.Circuit.dffs

  module Machine = struct
    type t = machine

    let set_input _c m n v = m.v.(n) <- v
    let eval_comb = eval_comb
    let clock = clock
  end

  (* The good and faulty machines driven in lock-step, as one machine. *)
  module Pair = struct
    type t = { good : machine; bad : machine }

    let set_input c p n v =
      Machine.set_input c p.good n v;
      Machine.set_input c p.bad n v

    let eval_comb c p =
      eval_comb c p.good;
      eval_comb c p.bad

    let clock c p =
      clock c p.good;
      clock c p.bad
  end

  module Drive_one = Sim.Drive (Machine)
  module Drive_pair = Sim.Drive (Pair)

  let trace c ~fault ~observe stim =
    let m = machine c fault in
    let rows = Array.make (Array.length stim) [||] in
    Drive_one.run c m stim ~observe:(fun t ->
        rows.(t) <- Array.map (fun o -> m.v.(o)) observe);
    rows

  let detect c ~fault ~observe stim =
    let p = { Pair.good = machine c None; bad = machine c (Some fault) } in
    Drive_pair.run_until c p stim ~observe:(fun _t ->
        Array.exists
          (fun o ->
            complement_detect ~good:p.Pair.good.v.(o) ~faulty:p.Pair.bad.v.(o))
          observe)

  let detect_all c ~faults ~observe stim =
    Array.map (fun fault -> detect c ~fault ~observe stim) faults

  let detect_dropping c ~faults ~observe ~stimuli =
    Array.map
      (fun fault ->
        let rec scan block = function
          | [] -> None
          | stim :: rest -> (
            match detect c ~fault ~observe stim with
            | Some t -> Some (block, t)
            | None -> scan (block + 1) rest)
        in
        scan 0 stimuli)
      faults
end

module Parallel = struct
  let max_group = 62

  type group = {
    w : int; (* number of machines *)
    full : int; (* mask of active machine bits *)
    ones : int array; (* per net: bit k set = value 1 in machine k *)
    zeros : int array; (* per net: bit k set = value 0 in machine k *)
    latch1 : int array;
    latch0 : int array;
    (* stem injection planes, indexed by net *)
    f1 : int array;
    f0 : int array;
    (* branch injections, indexed by node: (pin, one-mask, zero-mask) *)
    branch : (int * int * int) list array;
  }

  let group_of (c : Circuit.t) faults =
    let n = Circuit.num_nets c in
    let w = Array.length faults in
    assert (w <= max_group);
    let g =
      {
        w;
        full = (1 lsl w) - 1;
        ones = Array.make n 0;
        zeros = Array.make n 0;
        latch1 = Array.make (Circuit.dff_count c) 0;
        latch0 = Array.make (Circuit.dff_count c) 0;
        f1 = Array.make n 0;
        f0 = Array.make n 0;
        branch = Array.make n [];
      }
    in
    Array.iteri
      (fun k (fault : Fault.t) ->
        let bit = 1 lsl k in
        match fault.Fault.site with
        | Fault.Stem net ->
          if fault.Fault.stuck then g.f1.(net) <- g.f1.(net) lor bit
          else g.f0.(net) <- g.f0.(net) lor bit
        | Fault.Branch { node; pin } ->
          let one = if fault.Fault.stuck then bit else 0 in
          let zero = if fault.Fault.stuck then 0 else bit in
          g.branch.(node) <- (pin, one, zero) :: g.branch.(node))
      faults;
    Array.iteri
      (fun i nd ->
        match nd with
        | Circuit.Const V3.One -> g.ones.(i) <- g.full
        | Circuit.Const V3.Zero -> g.zeros.(i) <- g.full
        | Circuit.Const V3.X | Circuit.Input | Circuit.Gate _ | Circuit.Dff _
          -> ())
      c.Circuit.nodes;
    g

  let inject g net =
    let m1 = g.f1.(net) and m0 = g.f0.(net) in
    if m1 lor m0 <> 0 then begin
      let mask = lnot (m1 lor m0) in
      g.ones.(net) <- g.ones.(net) land mask lor m1;
      g.zeros.(net) <- g.zeros.(net) land mask lor m0
    end

  (* Reads fanin [pin] of [node], applying any branch-fault override. *)
  let fanin_planes g node pin net =
    let one = ref g.ones.(net) and zero = ref g.zeros.(net) in
    List.iter
      (fun (p, fo, fz) ->
        if p = pin then begin
          let m = lnot (fo lor fz) in
          one := (!one land m) lor fo;
          zero := (!zero land m) lor fz
        end)
      g.branch.(node);
    (!one, !zero)

  let eval_gate g kind node fi =
    let n = Array.length fi in
    match kind with
    | Gate.And | Gate.Nand ->
      let one = ref g.full and zero = ref 0 in
      for pin = 0 to n - 1 do
        let po, pz = fanin_planes g node pin fi.(pin) in
        one := !one land po;
        zero := !zero lor pz
      done;
      if kind = Gate.And then (!one, !zero) else (!zero, !one)
    | Gate.Or | Gate.Nor ->
      let one = ref 0 and zero = ref g.full in
      for pin = 0 to n - 1 do
        let po, pz = fanin_planes g node pin fi.(pin) in
        one := !one lor po;
        zero := !zero land pz
      done;
      if kind = Gate.Or then (!one, !zero) else (!zero, !one)
    | Gate.Xor | Gate.Xnor ->
      let one = ref 0 and zero = ref g.full in
      for pin = 0 to n - 1 do
        let po, pz = fanin_planes g node pin fi.(pin) in
        let o = (!one land pz) lor (!zero land po) in
        let z = (!one land po) lor (!zero land pz) in
        one := o;
        zero := z
      done;
      if kind = Gate.Xor then (!one, !zero) else (!zero, !one)
    | Gate.Not ->
      let po, pz = fanin_planes g node 0 fi.(0) in
      (pz, po)
    | Gate.Buf -> fanin_planes g node 0 fi.(0)

  let eval_comb (c : Circuit.t) g =
    Array.iter
      (fun i ->
        (match c.Circuit.nodes.(i) with
         | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
         | Circuit.Gate (kind, fi) ->
           let one, zero = eval_gate g kind i fi in
           g.ones.(i) <- one;
           g.zeros.(i) <- zero);
        inject g i)
      c.Circuit.topo

  let set_input g net v =
    (match v with
     | V3.One ->
       g.ones.(net) <- g.full;
       g.zeros.(net) <- 0
     | V3.Zero ->
       g.ones.(net) <- 0;
       g.zeros.(net) <- g.full
     | V3.X ->
       g.ones.(net) <- 0;
       g.zeros.(net) <- 0);
    inject g net

  let clock (c : Circuit.t) g =
    Array.iteri
      (fun k ff ->
        match c.Circuit.nodes.(ff) with
        | Circuit.Dff data ->
          let one, zero = fanin_planes g ff 0 data in
          g.latch1.(k) <- one;
          g.latch0.(k) <- zero
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
      c.Circuit.dffs;
    Array.iteri
      (fun k ff ->
        g.ones.(ff) <- g.latch1.(k);
        g.zeros.(ff) <- g.latch0.(k);
        inject g ff)
      c.Circuit.dffs

  (* The fault-free sweep machine and the 62-wide faulty group driven in
     lock-step, as one machine. *)
  module Duo = struct
    type t = { good : Sim.state; g : group }

    let set_input c d n v =
      Sim.set_input c d.good n v;
      set_input d.g n v

    let eval_comb c d =
      Sim.eval_comb c d.good;
      eval_comb c d.g

    let clock c d =
      Sim.clock c d.good;
      clock c d.g
  end

  module Driver = Sim.Drive (Duo)

  (* Simulates one group of faults against [stim]; [record k t] is called on
     the first detection of machine [k]. Stops as soon as every machine in
     the group has been detected (fault dropping within the group). *)
  let run_group (c : Circuit.t) faults ~observe stim record =
    let d = { Duo.good = Sim.create c; g = group_of c faults } in
    let g = d.Duo.g in
    let alive = ref g.full in
    ignore
      (Driver.run_until c d stim ~observe:(fun t ->
           Array.iter
             (fun o ->
               let detect_mask =
                 match Sim.value d.Duo.good o with
                 | V3.One -> g.zeros.(o)
                 | V3.Zero -> g.ones.(o)
                 | V3.X -> 0
               in
               let hits = detect_mask land !alive in
               if hits <> 0 then
                 for k = 0 to g.w - 1 do
                   if hits land (1 lsl k) <> 0 then begin
                     record k t;
                     alive := !alive land lnot (1 lsl k)
                   end
                 done)
             observe;
           !alive = 0))

  let detect_all c ~faults ~observe stim =
    let nf = Array.length faults in
    let result = Array.make nf None in
    let pos = ref 0 in
    while !pos < nf do
      let w = min max_group (nf - !pos) in
      let chunk = Array.sub faults !pos w in
      let base = !pos in
      run_group c chunk ~observe stim (fun k t ->
          if result.(base + k) = None then result.(base + k) <- Some t);
      pos := !pos + w
    done;
    result

  let detect_dropping c ~faults ~observe ~stimuli =
    let nf = Array.length faults in
    let result = Array.make nf None in
    List.iteri
      (fun block stim ->
        let pending =
          Array.of_list
            (List.filter
               (fun i -> result.(i) = None)
               (List.init nf (fun i -> i)))
        in
        let n_pending = Array.length pending in
        let pos = ref 0 in
        while !pos < n_pending do
          let w = min max_group (n_pending - !pos) in
          let chunk_ids = Array.sub pending !pos w in
          let chunk = Array.map (fun i -> faults.(i)) chunk_ids in
          run_group c chunk ~observe stim (fun k t ->
              let i = chunk_ids.(k) in
              if result.(i) = None then result.(i) <- Some (block, t));
          pos := !pos + w
        done)
      stimuli;
    result
end

type backend = [ `Serial | `Bit_parallel ]

let engine : backend -> (module ENGINE) = function
  | `Serial -> (module Serial)
  | `Bit_parallel -> (module Parallel)

module Engine = struct
  module Pool = Fst_exec.Pool
  module Sink = Fst_obs.Sink
  module Metrics = Fst_obs.Metrics

  (* Shard size per pool task: whole 62-wide groups for the bit-parallel
     back-end (so sharding never splits a group), single faults grouped for
     the serial one; about two shards per domain keeps the queue balanced
     without shrinking groups. *)
  let shard_size ~backend ~jobs nf =
    let target = max 1 (jobs * 2) in
    match backend with
    | `Serial -> max 1 ((nf + target - 1) / target)
    | `Bit_parallel ->
      let groups = (nf + Parallel.max_group - 1) / Parallel.max_group in
      Parallel.max_group * max 1 ((groups + target - 1) / target)

  let shards ~backend ~jobs faults =
    let nf = Array.length faults in
    let size = shard_size ~backend ~jobs nf in
    let n = (nf + size - 1) / size in
    Array.init n (fun k ->
        Array.sub faults (k * size) (min size (nf - (k * size))))

  (* One branch when the sink is off; handle resolution and the clock
     read only happen on live sinks. The inner simulation loops in
     [Serial]/[Parallel] are never touched. *)
  let observe_call (obs : Sink.t) name ~faults f =
    if not obs.Sink.enabled then f ()
    else begin
      let m = obs.Sink.metrics in
      Metrics.Counter.incr (Metrics.counter m ("fsim." ^ name ^ ".calls"));
      Metrics.Counter.add
        (Metrics.counter m ("fsim." ^ name ^ ".faults"))
        (Array.length faults);
      let t0 = Fst_exec.Clock.now () in
      let r = Sink.span obs ~name:("fsim." ^ name) ~cat:"fsim" f in
      Metrics.Histogram.observe
        (Metrics.histogram m ("fsim." ^ name ^ ".call_s"))
        (Fst_exec.Clock.now () -. t0);
      r
    end

  let detect_all ?(obs = Sink.null) ?(backend = `Bit_parallel) ?(jobs = 1) c
      ~faults ~observe stim =
    let module E = (val engine backend) in
    let jobs = max 1 jobs in
    observe_call obs "detect_all" ~faults (fun () ->
        if jobs = 1 || Array.length faults = 0 then
          E.detect_all c ~faults ~observe stim
        else
          Pool.map_array ~obs ~label:"fsim" ~jobs ~chunk:1
            (fun fs -> E.detect_all c ~faults:fs ~observe stim)
            (shards ~backend ~jobs faults)
          |> Array.to_list |> Array.concat)

  let detect_dropping ?(obs = Sink.null) ?(backend = `Bit_parallel)
      ?(jobs = 1) c ~faults ~observe ~stimuli =
    let module E = (val engine backend) in
    let jobs = max 1 jobs in
    observe_call obs "detect_dropping" ~faults (fun () ->
        if jobs = 1 || Array.length faults = 0 then
          E.detect_dropping c ~faults ~observe ~stimuli
        else
          Pool.map_array ~obs ~label:"fsim" ~jobs ~chunk:1
            (fun fs -> E.detect_dropping c ~faults:fs ~observe ~stimuli)
            (shards ~backend ~jobs faults)
          |> Array.to_list |> Array.concat)
end
