(** Sequential stuck-at fault simulation.

    A test is a {!stimulus}: per clock cycle, assignments to primary inputs
    (unassigned inputs hold their previous value, starting from [X]).
    Detection is conservative: a fault is detected at cycle [t] when some
    observed net carries a binary value in the good machine and the
    complementary binary value in the faulty machine. A potential detection
    (faulty value [X]) does not count, as in the paper.

    Three interchangeable back-ends implement the common {!ENGINE}
    interface: {!Serial} (one faulty machine at a time, the reference),
    {!Parallel} (62 faulty machines per pass, bit-parallel) and {!Event}
    (one fault at a time as a sparse divergence overlay on a shared
    fault-free trace, event-driven). {!Engine} dispatches on a first-class
    {!selector} — including [`Auto], which picks a back-end per fault by
    static cone size — and shards the fault list across a domain pool
    ({!Fst_exec.Pool}) when [jobs > 1]. *)

open Fst_logic
open Fst_netlist
open Fst_fault

type stimulus = Fst_sim.Sim.stimulus

(** The whole-workload interface every fault-simulation back-end provides.
    Results are per input fault, in input order, independent of back-end
    grouping. *)
module type ENGINE = sig
  (** [detect_all c ~faults ~observe stim] maps each fault to its first
      detection cycle. *)
  val detect_all :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  (** [detect_dropping c ~faults ~observe ~stimuli] simulates a list of
      stimulus blocks in order with cross-block fault dropping: faults
      detected in an earlier block are not simulated in later ones.
      Returns, per fault, [Some (block, cycle)] or [None]. *)
  val detect_dropping :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

(** Reference implementation: one faulty machine at a time. *)
module Serial : sig
  (** [detect c ~fault ~observe stim] is [Some t] for the first cycle at
      which [fault] is detected on one of the [observe] nets, else [None]. *)
  val detect :
    Circuit.t -> fault:Fault.t -> observe:int array -> stimulus -> int option

  (** [trace c ~fault ~observe stim] runs the whole stimulus on the
      (faulty, or fault-free when [fault] is [None]) machine and records
      the [observe] net values at every cycle. *)
  val trace :
    Circuit.t ->
    fault:Fault.t option ->
    observe:int array ->
    stimulus ->
    V3.t array array

  include ENGINE
end

(** Cone-clipped bit-parallel simulation: up to 62 faulty machines per
    pass, three-valued (two bit-planes per net). A group only maintains
    planes for the slots inside its members' union fanout cone (faults
    are grouped in cone-seed order to maximize overlap); everything
    outside the cone is read off the shared fault-free trace, broadcast
    to all lanes. *)
module Parallel : sig
  (** Machines per bit-parallel pass. *)
  val max_group : int

  include ENGINE

  (** Pattern-parallel variant of [detect_dropping]: the {e lanes} are
      stimulus blocks instead of faults — the fault-free machine is
      packed once over up to {!max_group} blocks and each fault replays
      its cone against all blocks simultaneously, returning the
      lowest-index detecting block and its first cycle, exactly like the
      serial block scan. Wins when there are few faults and many blocks
      (the tail of a drop-simulation run); [detect_dropping] switches to
      it automatically in that regime. *)
  val detect_dropping_packed :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

(** Event-driven incremental simulation: the fault-free machine runs once
    per stimulus block and every fault is replayed as a sparse divergence
    overlay on that shared trace. Events are seeded only at the fault site
    (and at flip-flops still holding divergent state) and propagate through
    gates in ascending combinational level, so work per cycle is bounded by
    the fault's active region inside its static fanout cone
    ({!Fst_fault.Fault.cone}) — a quiescent or reconverged cycle is O(1).
    Detection and dropping semantics are bit-identical to {!Serial}. *)
module Event : sig
  include ENGINE

  (** Like {!val:detect_all} / {!val:detect_dropping}, additionally calling
      [on_fault] once per simulated (fault, block) with the number of gate
      evaluations ([events]), cycles with any divergence ([active]) and
      active cycles whose state divergence died out ([reconv]). *)

  val detect_all_stats :
    ?on_fault:(events:int -> active:int -> reconv:int -> unit) ->
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  val detect_dropping_stats :
    ?on_fault:(events:int -> active:int -> reconv:int -> unit) ->
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

(** A concrete back-end. [`Parallel] was called [`Bit_parallel] before the
    engine selector became first-class. *)
type backend = [ `Serial | `Parallel | `Event ]

(** What callers select: a concrete back-end, or [`Auto] — faults are
    partitioned by static cone size ([`Event] for small cones,
    [`Parallel] for large), and each partition falls back to [`Serial]
    if its modeled cost would exceed the serial cost of the same faults
    (see {!Engine.plan}). Every choice returns identical results; the
    selector only moves wall-clock time. *)
type selector = [ backend | `Auto ]

(** [engine b] is the back-end as a first-class {!ENGINE}. *)
val engine : backend -> (module ENGINE)

(** Engine selection plus multicore dispatch. With [jobs = 1] (the
    default) these call the chosen back-end(s) directly and behave exactly
    like them; with [jobs > 1] the fault list is sharded into back-end-sized
    chunks (whole 62-wide groups for [`Parallel]) that run on a domain
    pool, and the per-shard results are merged back in input order — the
    result is identical for every [jobs] value and every {!selector}
    because faulty machines never interact. *)
module Engine : sig
  (** With a live [obs] sink each call counts
      [fsim.<entry>.calls] / [.faults], fills a [.call_s] duration
      histogram, emits a trace span, and threads the sink into the pool
      (per-domain busy accounting); the event back-end additionally fills
      [fsim.event.events] (gate evaluations per fault-block) and
      [fsim.event.reconv_rate] (reconverged / active cycles) histograms.
      With the default {!Fst_obs.Sink.null} the instrumentation is a
      single branch per call — the inner simulation loops are never
      touched. *)

  (** One [`Auto] scheduling decision: run the faults at [indices] (into
      the caller's fault array) on [backend], at a modeled cost of
      [units] scalar gate evaluations. *)
  type decision = {
    backend : backend;
    indices : int array;
    units : int;
  }

  (** [plan c ~faults ~cycles] is the [`Auto] cost model made
      inspectable: the decision list partitions the fault indices, and
      every decision's modeled [units] is guaranteed not to exceed the
      modeled serial cost of the same faults — a partition whose
      preferred back-end models worse than serial is demoted to
      [`Serial]. [cycles] is the total stimulus length the workload will
      simulate. The [units] also feed {!Fst_exec.Pool}'s minimum-work
      threshold, so tiny workloads run in-caller instead of spawning
      domains. *)
  val plan :
    Circuit.t -> faults:Fault.t array -> cycles:int -> decision list

  val detect_all :
    ?obs:Fst_obs.Sink.t ->
    ?engine:selector ->
    ?jobs:int ->
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  val detect_dropping :
    ?obs:Fst_obs.Sink.t ->
    ?engine:selector ->
    ?jobs:int ->
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end
