(** Sequential stuck-at fault simulation.

    A test is a {!stimulus}: per clock cycle, assignments to primary inputs
    (unassigned inputs hold their previous value, starting from [X]).
    Detection is conservative: a fault is detected at cycle [t] when some
    observed net carries a binary value in the good machine and the
    complementary binary value in the faulty machine. A potential detection
    (faulty value [X]) does not count, as in the paper.

    Two interchangeable back-ends implement the common {!ENGINE} interface:
    {!Serial} (one faulty machine at a time, the reference) and {!Parallel}
    (62 faulty machines per pass, bit-parallel). {!Engine} selects a
    back-end per workload and shards the fault list across a domain pool
    ({!Fst_exec.Pool}) when [jobs > 1]. *)

open Fst_logic
open Fst_netlist
open Fst_fault

type stimulus = Fst_sim.Sim.stimulus

(** The whole-workload interface every fault-simulation back-end provides.
    Results are per input fault, in input order, independent of back-end
    grouping. *)
module type ENGINE = sig
  (** [detect_all c ~faults ~observe stim] maps each fault to its first
      detection cycle. *)
  val detect_all :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  (** [detect_dropping c ~faults ~observe ~stimuli] simulates a list of
      stimulus blocks in order with cross-block fault dropping: faults
      detected in an earlier block are not simulated in later ones.
      Returns, per fault, [Some (block, cycle)] or [None]. *)
  val detect_dropping :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end

(** Reference implementation: one faulty machine at a time. *)
module Serial : sig
  (** [detect c ~fault ~observe stim] is [Some t] for the first cycle at
      which [fault] is detected on one of the [observe] nets, else [None]. *)
  val detect :
    Circuit.t -> fault:Fault.t -> observe:int array -> stimulus -> int option

  (** [trace c ~fault ~observe stim] runs the whole stimulus on the
      (faulty, or fault-free when [fault] is [None]) machine and records
      the [observe] net values at every cycle. *)
  val trace :
    Circuit.t ->
    fault:Fault.t option ->
    observe:int array ->
    stimulus ->
    V3.t array array

  include ENGINE
end

(** 62 faulty machines per pass, three-valued (two bit-planes per net). *)
module Parallel : sig
  (** Machines per bit-parallel pass. *)
  val max_group : int

  include ENGINE
end

type backend = [ `Serial | `Bit_parallel ]

(** [engine b] is the back-end as a first-class {!ENGINE}. *)
val engine : backend -> (module ENGINE)

(** Back-end selection plus multicore dispatch. With [jobs = 1] (the
    default) these call the chosen back-end directly and behave exactly
    like it; with [jobs > 1] the fault list is sharded into back-end-sized
    chunks (whole 62-wide groups for [`Bit_parallel]) that run on a domain
    pool, and the per-shard results are merged back in input order — the
    result is identical for every [jobs] value because faulty machines
    never interact. *)
module Engine : sig
  (** With a live [obs] sink each call counts
      [fsim.<entry>.calls] / [.faults], fills a [.call_s] duration
      histogram, emits a trace span, and threads the sink into the pool
      (per-domain busy accounting). With the default
      {!Fst_obs.Sink.null} the instrumentation is a single branch per
      call — the inner simulation loops are never touched. *)

  val detect_all :
    ?obs:Fst_obs.Sink.t ->
    ?backend:backend ->
    ?jobs:int ->
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  val detect_dropping :
    ?obs:Fst_obs.Sink.t ->
    ?backend:backend ->
    ?jobs:int ->
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end
