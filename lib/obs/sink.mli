(** The observability sink threaded through the flow.

    A sink bundles the four channels (metrics, trace, events, progress)
    behind one record whose [enabled] flag is the single branch hot
    paths test. The contract for instrumented code:

    - check [sink.enabled] first; when false, do {e nothing} — no clock
      reads, no allocation, no atomic ops. {!null} is the default
      everywhere, which is how observability-off runs stay bit-identical
      to the uninstrumented seed.
    - when true, resolve metric handles {e once} outside the loop
      ([Metrics.counter sink.metrics "..."]) and update the handles
      inside it.

    The sink contains mutexes and closures, so it must never be
    marshaled: {!Flow} excludes it from the checkpoint fingerprint. *)

type t = {
  enabled : bool;
  metrics : Metrics.t;
  trace : Trace.t option;
  events : Events.t option;
  progress : Progress.t option;
  timeline : Timeline.t option;
      (** per-worker chunk attribution from {!Fst_exec.Pool}; feeds the
          per-domain utilization section of [run.json] *)
  atpg_span_s : float;
      (** individual ATPG calls shorter than this are not traced
          (default 1 ms) *)
}

val null : t
(** [enabled = false]; its registry exists but stays empty because
    instrumented code never touches a disabled sink. *)

val create :
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?events:Events.t ->
  ?progress:Progress.t ->
  ?timeline:Timeline.t ->
  ?atpg_span_s:float ->
  unit ->
  t

val span : t -> name:string -> cat:string -> (unit -> 'a) -> 'a
(** Trace a span when a trace buffer is attached; otherwise just run. *)

val event : t -> kind:string -> (string * Json.t) list -> unit
(** Emit a structured event when an event log is attached. *)

val tick :
  t ->
  ?failed:int ->
  ?quarantined:int ->
  phase:string ->
  done_:int ->
  total:int ->
  detected:int ->
  budget_left:float ->
  unit ->
  unit
(** Heartbeat when progress is attached. [failed] / [quarantined]
    surface failure-containment counts on the line when nonzero
    ({!Progress.tick}). *)
