(* Pure post-run analysis over the Artifacts set: no clocks, no I/O
   beyond the loaders — everything operates on parsed values so the
   qcheck properties can drive it with synthetic runs. *)

(* ---- parsed run.json ----------------------------------------------- *)

type hist = { count : int; sum : float; p50 : float; p90 : float; p99 : float }

type dom = {
  wid : int;
  busy_s : float;
  chunks : int;
  steals : int;
  busy_frac : float;
}

type run = {
  wall_s : float;
  phases : (string * float) list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
  domains : dom list;
  segs : Timeline.seg list;
  config : Json.t;
}

let num = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | Json.Null -> Some Float.nan (* non-finite floats render as null *)
  | _ -> None

let obj_nums j =
  match j with
  | Some (Json.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (num v)) kvs
  | _ -> []

let obj_ints j =
  match j with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with Json.Int i -> Some (k, i) | _ -> None)
        kvs
  | _ -> []

let hist_of_json j =
  let f k = Option.bind (Json.member k j) num in
  let i k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  match (i "count", f "sum", f "p50", f "p90", f "p99") with
  | Some count, Some sum, Some p50, Some p90, Some p99 ->
      Some { count; sum; p50; p90; p99 }
  | _ -> None

let dom_of_json j =
  let f k = Option.bind (Json.member k j) num in
  let i k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  match (i "wid", f "busy_s", f "busy_frac") with
  | Some wid, Some busy_s, Some busy_frac ->
      Some
        {
          wid;
          busy_s;
          chunks = Option.value ~default:0 (i "chunks");
          steals = Option.value ~default:0 (i "steals");
          busy_frac;
        }
  | _ -> None

let run_of_json j =
  match Artifacts.validate_run j with
  | Error e -> Error e
  | Ok () ->
      let wall_s =
        Option.value ~default:Float.nan (Option.bind (Json.member "wall_s" j) num)
      in
      let histograms =
        match Json.member "histograms" j with
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun h -> (k, h)) (hist_of_json v))
              kvs
        | _ -> []
      in
      let domains =
        match Json.member "domains" j with
        | Some (Json.List l) -> List.filter_map dom_of_json l
        | _ -> []
      in
      let segs =
        match Json.member "timeline" j with
        | Some tl -> Timeline.of_json tl
        | None -> []
      in
      Ok
        {
          wall_s;
          phases = obj_nums (Json.member "phases" j);
          counters = obj_ints (Json.member "counters" j);
          gauges = obj_nums (Json.member "gauges" j);
          histograms;
          domains;
          segs;
          config = Option.value ~default:Json.Null (Json.member "config" j);
        }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_run path =
  match Json.of_string (read_file path) with
  | exception Sys_error e -> Error e
  | exception Json.Parse_error e -> Error (path ^ ": " ^ e)
  | j -> Result.map_error (fun e -> path ^ ": " ^ e) (run_of_json j)

(* ---- spans (trace.json) -------------------------------------------- *)

type span = { name : string; cat : string; tid : int; t0 : float; t1 : float }

let spans_of_trace j =
  (* Complete events only; ts/dur are microseconds relative to trace
     start — converted to seconds. *)
  match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      List.filter_map
        (fun e ->
          let s k =
            match Json.member k e with Some (Json.String v) -> Some v | _ -> None
          in
          let f k = Option.bind (Json.member k e) num in
          match (s "ph", s "name", f "ts", f "dur") with
          | Some "X", Some name, Some ts, Some dur ->
              let tid =
                match Json.member "tid" e with Some (Json.Int t) -> t | _ -> 0
              in
              let t0 = ts /. 1e6 in
              Some
                {
                  name;
                  cat = Option.value ~default:"" (s "cat");
                  tid;
                  t0;
                  t1 = t0 +. (dur /. 1e6);
                }
          | _ -> None)
        evs
  | _ -> []

let load_spans path =
  match Json.of_string (read_file path) with
  | exception Sys_error _ -> []
  | exception Json.Parse_error _ -> []
  | j -> spans_of_trace j

let load_dir dir =
  match load_run (Filename.concat dir "run.json") with
  | Error e -> Error e
  | Ok run -> Ok (run, load_spans (Filename.concat dir "trace.json"))

(* ---- critical path -------------------------------------------------- *)

type critical_path = {
  cp_length_s : float;  (** longest chain of non-overlapping spans *)
  cp_total_s : float;  (** sum of all span durations (total work) *)
  cp_window_s : float;  (** max end - min start over all spans *)
  cp_chain : span list;  (** the chain itself, chronological *)
  cp_amdahl : float;  (** total / length: parallel speedup ceiling *)
}

(* Longest chain of pairwise non-overlapping spans, by DP over spans
   sorted by end time: cp(i) = dur(i) + max { cp(j) | end(j) <= start(i) }.
   The max over earlier spans is a prefix maximum over the end-sorted
   order, found by binary search — O(n log n) overall. *)
let critical_path spans =
  match spans with
  | [] ->
      {
        cp_length_s = 0.0;
        cp_total_s = 0.0;
        cp_window_s = 0.0;
        cp_chain = [];
        cp_amdahl = 1.0;
      }
  | _ ->
      let arr = Array.of_list spans in
      Array.sort (fun a b -> Float.compare a.t1 b.t1) arr;
      let n = Array.length arr in
      let cp = Array.make n 0.0 in
      let pred = Array.make n (-1) in
      (* best.(i) = max cp over arr.(0..i); best_idx the argmax *)
      let best = Array.make n 0.0 in
      let best_idx = Array.make n (-1) in
      for i = 0 to n - 1 do
        let s = arr.(i) in
        let dur = s.t1 -. s.t0 in
        (* largest j < i with arr.(j).t1 <= s.t0 *)
        let j =
          let lo = ref 0 and hi = ref (i - 1) and found = ref (-1) in
          while !lo <= !hi do
            let mid = (!lo + !hi) / 2 in
            if arr.(mid).t1 <= s.t0 then begin
              found := mid;
              lo := mid + 1
            end
            else hi := mid - 1
          done;
          !found
        in
        let prefix, pidx =
          if j < 0 then (0.0, -1) else (best.(j), best_idx.(j))
        in
        cp.(i) <- dur +. prefix;
        pred.(i) <- pidx;
        if i = 0 then begin
          best.(i) <- cp.(i);
          best_idx.(i) <- i
        end
        else if cp.(i) > best.(i - 1) then begin
          best.(i) <- cp.(i);
          best_idx.(i) <- i
        end
        else begin
          best.(i) <- best.(i - 1);
          best_idx.(i) <- best_idx.(i - 1)
        end
      done;
      let total = Array.fold_left (fun a s -> a +. (s.t1 -. s.t0)) 0.0 arr in
      let lo_t =
        Array.fold_left (fun a s -> Float.min a s.t0) infinity arr
      in
      let hi_t = arr.(n - 1).t1 in
      let chain =
        let rec walk i acc =
          if i < 0 then acc else walk pred.(i) (arr.(i) :: acc)
        in
        walk best_idx.(n - 1) []
      in
      let length = best.(n - 1) in
      {
        cp_length_s = length;
        cp_total_s = total;
        cp_window_s = hi_t -. lo_t;
        cp_chain = chain;
        cp_amdahl = (if length > 0.0 then total /. length else 1.0);
      }

(* ---- self vs child time & hotspots ---------------------------------- *)

type node_stat = {
  ns_name : string;
  ns_count : int;
  ns_total_s : float;
  ns_self_s : float;  (** total minus time covered by nested spans *)
}

(* Per-tid stack nesting: spans sorted by (t0, -t1); a span is a child
   of the innermost enclosing span on the same tid. Self time = own
   duration minus the sum of direct children's durations. *)
let self_times spans =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_tid s.tid) in
      Hashtbl.replace by_tid s.tid (s :: l))
    spans;
  let acc : (string, int * float * float) Hashtbl.t = Hashtbl.create 32 in
  let bump name ~total ~self =
    let c, t, sf = Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt acc name) in
    Hashtbl.replace acc name (c + 1, t +. total, sf +. self)
  in
  Hashtbl.iter
    (fun _tid l ->
      let arr = Array.of_list l in
      Array.sort
        (fun a b ->
          match Float.compare a.t0 b.t0 with
          | 0 -> Float.compare b.t1 a.t1 (* wider first: parent before child *)
          | c -> c)
        arr;
      (* stack of (span, child_time ref) *)
      let stack = ref [] in
      let close_until t0 =
        let rec go () =
          match !stack with
          | (sp, child) :: rest when sp.t1 <= t0 ->
              bump sp.name ~total:(sp.t1 -. sp.t0)
                ~self:(Float.max 0.0 (sp.t1 -. sp.t0 -. !child));
              (match rest with
              | (_, pchild) :: _ -> pchild := !pchild +. (sp.t1 -. sp.t0)
              | [] -> ());
              stack := rest;
              go ()
          | _ -> ()
        in
        go ()
      in
      Array.iter
        (fun sp ->
          close_until sp.t0;
          stack := (sp, ref 0.0) :: !stack)
        arr;
      close_until infinity)
    by_tid;
  Hashtbl.fold
    (fun name (c, t, sf) l ->
      { ns_name = name; ns_count = c; ns_total_s = t; ns_self_s = sf } :: l)
    acc []
  |> List.sort (fun a b -> Float.compare b.ns_self_s a.ns_self_s)

let hotspots ?(k = 10) spans =
  let l = self_times spans in
  List.filteri (fun i _ -> i < k) l

(* ---- per-domain utilization ------------------------------------------ *)

type util = {
  u_wid : int;
  u_busy_s : float;
  u_busy_frac : float;
  u_chunks : int;
  u_steals : int;
  u_gaps : (float * float) list;  (** idle gaps above the threshold *)
}

let utilization ?(gap_s = 0.001) (segs : Timeline.seg list) =
  if segs = [] then []
  else begin
    let window_lo =
      List.fold_left (fun a (s : Timeline.seg) -> Float.min a s.t0) infinity segs
    in
    let window_hi =
      List.fold_left (fun a (s : Timeline.seg) -> Float.max a s.t1) neg_infinity
        segs
    in
    let window = window_hi -. window_lo in
    let by_wid = Hashtbl.create 8 in
    List.iter
      (fun (s : Timeline.seg) ->
        let l = Option.value ~default:[] (Hashtbl.find_opt by_wid s.wid) in
        Hashtbl.replace by_wid s.wid (s :: l))
      segs;
    Hashtbl.fold (fun wid l acc -> (wid, l) :: acc) by_wid []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (wid, l) ->
           let l =
             List.sort
               (fun (a : Timeline.seg) (b : Timeline.seg) ->
                 Float.compare a.t0 b.t0)
               l
           in
           let busy =
             List.fold_left
               (fun a (s : Timeline.seg) -> a +. (s.t1 -. s.t0))
               0.0 l
           in
           let steals =
             List.fold_left
               (fun a (s : Timeline.seg) -> a + if s.stolen then 1 else 0)
               0 l
           in
           (* idle gaps: before first seg, between segs, after last —
              relative to the shared observation window *)
           let gaps = ref [] in
           let cursor = ref window_lo in
           List.iter
             (fun (s : Timeline.seg) ->
               if s.t0 -. !cursor > gap_s then
                 gaps := (!cursor, s.t0) :: !gaps;
               cursor := Float.max !cursor s.t1)
             l;
           if window_hi -. !cursor > gap_s then
             gaps := (!cursor, window_hi) :: !gaps;
           {
             u_wid = wid;
             u_busy_s = busy;
             u_busy_frac = (if window > 0.0 then busy /. window else 0.0);
             u_chunks = List.length l;
             u_steals = steals;
             u_gaps = List.rev !gaps;
           })
  end

(* ---- diff ------------------------------------------------------------ *)

type verdict = Regression | Improvement | Unchanged

type diff_entry = {
  d_key : string;
  d_base : float;
  d_cur : float;
  d_delta_frac : float;  (** (cur - base) / base; 0 when base = 0 *)
  d_verdict : verdict;
  d_gated : bool;  (** time-like metric that participates in gating *)
}

(* Time-like keys gate; counters are informational. [min_s] keeps
   microsecond-scale phases from producing noise verdicts: a pair where
   both sides are below the floor is Unchanged by definition. *)
let diff ?(threshold = 0.20) ?(min_s = 0.001) (base : run) (cur : run) =
  let entry ~gated key b c ~floor =
    let delta = if b = 0.0 then 0.0 else (c -. b) /. b in
    let verdict =
      if (not gated) || (b < floor && c < floor) then Unchanged
      else if delta > threshold then Regression
      else if delta < -.threshold then Improvement
      else Unchanged
    in
    { d_key = key; d_base = b; d_cur = c; d_delta_frac = delta;
      d_verdict = verdict; d_gated = gated }
  in
  let wall = entry ~gated:true "wall_s" base.wall_s cur.wall_s ~floor:min_s in
  let keys l l' = List.sort_uniq String.compare (List.map fst l @ List.map fst l') in
  let phases =
    List.map
      (fun k ->
        let get l = Option.value ~default:0.0 (List.assoc_opt k l) in
        entry ~gated:true ("phase:" ^ k) (get base.phases) (get cur.phases)
          ~floor:min_s)
      (keys base.phases cur.phases)
  in
  let counters =
    List.map
      (fun k ->
        let get l = float_of_int (Option.value ~default:0 (List.assoc_opt k l)) in
        entry ~gated:false ("counter:" ^ k) (get base.counters)
          (get cur.counters) ~floor:0.0)
      (keys base.counters cur.counters)
  in
  let hists =
    List.map
      (fun k ->
        let get l =
          match List.assoc_opt k l with
          | Some h when Float.is_finite h.p99 -> h.p99
          | _ -> 0.0
        in
        entry ~gated:true ("p99:" ^ k) (get base.histograms)
          (get cur.histograms) ~floor:min_s)
      (keys base.histograms cur.histograms)
  in
  (wall :: phases) @ hists @ counters

let regressions entries =
  List.filter (fun e -> e.d_gated && e.d_verdict = Regression) entries

(* ---- BENCH_flow.json baselines --------------------------------------- *)

(* A pseudo-run from one circuit variant of bench/main.ml's
   BENCH_flow.json, so `fst analyze --baseline BENCH_flow.json` can gate
   against the committed numbers. Keys are "<circuit>/<serial|multicore>". *)

(* Pre-PR-8 bench files used bare counter names; map them to the
   canonical registry names so diffs line up either way. *)
let bench_counter_aliases =
  [
    ("podem_runs", "atpg.podem.runs");
    ("podem_backtracks", "atpg.podem.backtracks");
    ("podem_decisions", "atpg.podem.decisions");
    ("podem_implications", "atpg.podem.implications");
    ("seq_runs", "atpg.seq.runs");
    ("seq_backtracks", "atpg.seq.backtracks");
    ("fsim_calls", "fsim.detect_all.calls");
    ("fsim_faults", "fsim.detect_all.faults");
    ("step2_blocks", "flow.step2.blocks");
  ]

let canonical_counters kvs =
  List.map
    (fun (k, v) ->
      (Option.value ~default:k (List.assoc_opt k bench_counter_aliases), v))
    kvs

let runs_of_bench j =
  match Json.member "circuits" j with
  | Some (Json.List cs) ->
      List.concat_map
        (fun c ->
          let name =
            match Json.member "name" c with
            | Some (Json.String s) -> s
            | _ -> "?"
          in
          List.filter_map
            (fun variant ->
              match Json.member variant c with
              | Some v ->
                  let wall =
                    Option.value ~default:Float.nan
                      (Option.bind (Json.member "wall_s" v) num)
                  in
                  Some
                    ( name ^ "/" ^ variant,
                      {
                        wall_s = wall;
                        phases = obj_nums (Json.member "phases" v);
                        counters =
                          canonical_counters
                            (obj_ints (Json.member "counters" v));
                        gauges = [];
                        histograms = [];
                        domains = [];
                        segs = [];
                        config = Json.Null;
                      } )
              | None -> None)
            [ "serial"; "multicore" ])
        cs
  | _ -> []

let load_bench path =
  match Json.of_string (read_file path) with
  | exception Sys_error e -> Error e
  | exception Json.Parse_error e -> Error (path ^ ": " ^ e)
  | j -> (
      match runs_of_bench j with
      | [] -> Error (path ^ ": no circuits found (not a BENCH_flow.json?)")
      | rs -> Ok rs)

(* ---- rendering ------------------------------------------------------- *)

let pf = Printf.sprintf

let fmt_s v =
  if Float.is_nan v then "-"
  else if v >= 1.0 then pf "%.2fs" v
  else if v >= 0.001 then pf "%.2fms" (v *. 1e3)
  else pf "%.0fµs" (v *. 1e6)

let fmt_pct v = pf "%+.1f%%" (v *. 100.0)

let render_report ?(k = 10) (run : run) (spans : span list) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "run: wall %s" (fmt_s run.wall_s);
  (match Json.member "circuit" run.config with
  | Some (Json.String c) -> add "  circuit %s" c
  | _ -> ());
  (match Json.member "jobs" run.config with
  | Some (Json.Int j) -> add "  jobs %d" j
  | _ -> ());
  add "\n\nphases:\n";
  let ptot = List.fold_left (fun a (_, v) -> a +. v) 0.0 run.phases in
  List.iter
    (fun (name, v) ->
      add "  %-14s %10s  %5.1f%%\n" name (fmt_s v)
        (if ptot > 0.0 then v /. ptot *. 100.0 else 0.0))
    run.phases;
  let utils = utilization run.segs in
  if utils <> [] then begin
    add "\ndomains:\n";
    List.iter
      (fun u ->
        add "  d%-2d busy %10s  frac %5.1f%%  chunks %5d  steals %4d  gaps %d\n"
          u.u_wid (fmt_s u.u_busy_s)
          (u.u_busy_frac *. 100.0)
          u.u_chunks u.u_steals (List.length u.u_gaps))
      utils
  end;
  if spans <> [] then begin
    let cp = critical_path spans in
    add "\ncritical path: %s of %s total span time (window %s)\n"
      (fmt_s cp.cp_length_s) (fmt_s cp.cp_total_s) (fmt_s cp.cp_window_s);
    add "  parallel speedup ceiling (Amdahl): %.2fx\n" cp.cp_amdahl;
    List.iter
      (fun s -> add "    %-30s %10s  (tid %d)\n" s.name (fmt_s (s.t1 -. s.t0)) s.tid)
      (List.filteri (fun i _ -> i < k) cp.cp_chain);
    if List.length cp.cp_chain > k then
      add "    ... %d more\n" (List.length cp.cp_chain - k);
    add "\nhotspots (self time):\n";
    List.iter
      (fun ns ->
        add "  %-30s self %10s  total %10s  n %d\n" ns.ns_name
          (fmt_s ns.ns_self_s) (fmt_s ns.ns_total_s) ns.ns_count)
      (hotspots ~k spans)
  end;
  Buffer.contents buf

let render_diff entries =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let mark e =
    match e.d_verdict with
    | Regression -> "REGRESSION"
    | Improvement -> "improved"
    | Unchanged -> ""
  in
  List.iter
    (fun e ->
      if e.d_gated || e.d_delta_frac <> 0.0 then
        add "  %-28s %10s -> %10s  %8s  %s\n" e.d_key
          (if e.d_gated then fmt_s e.d_base else pf "%g" e.d_base)
          (if e.d_gated then fmt_s e.d_cur else pf "%g" e.d_cur)
          (fmt_pct e.d_delta_frac) (mark e))
    entries;
  let r = regressions entries in
  add "%d regression%s\n" (List.length r) (if List.length r = 1 then "" else "s");
  Buffer.contents buf

let diff_to_json entries =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("key", Json.String e.d_key);
             ("base", if Float.is_finite e.d_base then Json.Float e.d_base else Json.Null);
             ("cur", if Float.is_finite e.d_cur then Json.Float e.d_cur else Json.Null);
             ("delta_frac", Json.Float e.d_delta_frac);
             ( "verdict",
               Json.String
                 (match e.d_verdict with
                 | Regression -> "regression"
                 | Improvement -> "improvement"
                 | Unchanged -> "unchanged") );
             ("gated", Json.Bool e.d_gated);
           ])
       entries)
