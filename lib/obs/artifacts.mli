(** Run-artifact directory: the [--obs-dir] convention.

    One handle owns every observability channel of one run and writes a
    coherent artifact set on {!write}:

    - [trace.json] — Chrome trace_event JSON (Perfetto-loadable)
    - [events.jsonl] — structured event log, flushed per line
    - [metrics.prom] — OpenMetrics text exposition ({!Openmetrics})
    - [run.json] — the summary {!Analyze} consumes: schema tag, total
      wall, caller-supplied config blob, per-phase wall seconds (from
      the flow's [flow.<phase>.wall_s] gauges), counter/gauge/fcounter
      snapshots, histograms with p50/p90/p99 log-bucket quantiles, and
      per-domain busy/steal attribution from the pool {!Timeline}.

    The sink handed out by {!sink} is an ordinary {!Sink.t}; the flow
    result is bit-identical with or without it (pure-observer contract,
    pinned by a qcheck property). *)

val schema_version : string
(** ["fst-run/1"], stored under the ["schema"] key. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) and opens [events.jsonl]. *)

val sink : ?progress:Progress.t -> ?atpg_span_s:float -> t -> Sink.t
(** A live sink wired to this handle's metrics/trace/events/timeline. *)

val run_json : ?config:Json.t -> ?extra:(string * Json.t) list -> t -> Json.t
(** The [run.json] document as of now; [extra] appends caller fields
    (e.g. the flow's abort/failed/quarantine accounting). *)

val write : ?config:Json.t -> ?extra:(string * Json.t) list -> t -> unit
(** Write all four artifacts and close the event channel. Call once,
    after the run. *)

val quantile_of_buckets : (float * int) list -> int -> float -> float
(** Quantile estimate over [(upper_bound, count)] buckets with total
    count [n] — same estimator as {!Metrics.Histogram.quantile}. *)

val validate_run : Json.t -> (unit, string) result
(** Structural check used by [fst jsonlint]: object, schema tag matches
    {!schema_version}, all top-level keys present. *)
