(** Per-worker busy-segment recorder for {!Fst_exec.Pool} attribution.

    Each chunk a pool worker executes is recorded as one segment
    [{wid; label; t0; t1; stolen}] with times relative to the timeline's
    creation epoch. Recording takes a mutex per chunk — chunks are
    hundreds of microseconds and up, so the cost is noise — and only
    happens when a sink carries a timeline, keeping obs-off runs
    untouched. *)

type seg = {
  wid : int;  (** pool worker slot (0 = caller) *)
  label : string;  (** pool task label, e.g. ["fsim"] *)
  t0 : float;  (** seconds since epoch start *)
  t1 : float;
  stolen : bool;  (** chunk claimed from another worker's range *)
}

type t

val create : unit -> t
(** Epoch = time of creation. *)

val epoch : t -> float
(** Absolute [Unix.gettimeofday] of the epoch. *)

val record :
  t -> wid:int -> label:string -> t0:float -> t1:float -> stolen:bool -> unit
(** [t0]/[t1] are absolute [Unix.gettimeofday] stamps; stored relative
    to the epoch. Thread-safe. *)

val count : t -> int
val segments : t -> seg list
(** Chronological by start time (ties broken by worker id). *)

val to_json : t -> Json.t
val of_json : Json.t -> seg list
(** Lenient: skips malformed entries, [[]] on a non-list. *)
