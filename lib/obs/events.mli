(** Structured JSONL event log.

    One JSON object per line: [{"ts": <unix seconds>, "kind": "...",
    ...fields}]. This is the machine-readable channel for what the
    greppable [aborts:] report lines say in prose — phase start/end,
    checkpoint writes, budget trips, abort records. Writes are
    mutex-serialized and flushed per line so a killed run keeps every
    event already emitted. *)

type t

val to_channel : out_channel -> t
val to_buffer : Buffer.t -> t

val emit : t -> kind:string -> (string * Json.t) list -> unit
