(** Structured JSONL event log.

    One JSON object per line: [{"ts": <unix seconds>, "kind": "...",
    ...fields}]. This is the machine-readable channel for what the
    greppable [aborts:] report lines say in prose — phase start/end,
    checkpoint writes, budget trips, abort records. Writes are
    mutex-serialized and flushed per line so a killed run keeps every
    event already emitted. *)

type t

val to_channel : out_channel -> t
val to_buffer : Buffer.t -> t

val to_callback : (string -> unit) -> t
(** [to_callback f] calls [f] with each serialized event line (no
    trailing newline), under the log's mutex. This is how {!Fst_serve}
    forwards a running job's events to its submitting client: the
    callback wraps the line in a protocol frame and writes it to the
    client socket. [f] must not re-enter the event log. *)

val emit : t -> kind:string -> (string * Json.t) list -> unit
