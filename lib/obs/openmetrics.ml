(* OpenMetrics text exposition of a Metrics registry, plus a validator
   the jsonlint CLI uses on .prom artifacts. Buckets are exposed
   cumulatively with an explicit +Inf bucket per the format. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let fmt_bound ub =
  if ub = infinity then "+Inf" else fmt_float ub

let expose metrics =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      match v with
      | Metrics.Counter_v c ->
          line "# TYPE %s counter\n" n;
          line "%s_total %d\n" n c
      | Metrics.Gauge_v g ->
          line "# TYPE %s gauge\n" n;
          line "%s %s\n" n (fmt_float g)
      | Metrics.Fcounter_v f ->
          line "# TYPE %s counter\n" n;
          line "%s_total %s\n" n (fmt_float f)
      | Metrics.Histogram_v h ->
          line "# TYPE %s histogram\n" n;
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              line "%s_bucket{le=\"%s\"} %d\n" n (fmt_bound ub) !cum)
            h.Metrics.h_buckets;
          line "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.h_count;
          line "%s_count %d\n" n h.Metrics.h_count;
          line "%s_sum %s\n" n (fmt_float h.Metrics.h_sum))
    (Metrics.snapshot metrics);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ---- validation ---------------------------------------------------- *)

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all is_name_char s

let parse_sample line =
  (* "name value" or "name{labels} value"; returns (name, labels, value). *)
  let name_end =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    !i
  in
  if name_end = 0 then Error "sample line does not start with a metric name"
  else
    let name = String.sub line 0 name_end in
    let rest = String.sub line name_end (String.length line - name_end) in
    let labels, rest =
      if rest <> "" && rest.[0] = '{' then
        match String.index_opt rest '}' with
        | None -> (None, rest)
        | Some j ->
            ( Some (String.sub rest 1 (j - 1)),
              String.sub rest (j + 1) (String.length rest - j - 1) )
      else (None, rest)
    in
    let rest = String.trim rest in
    match float_of_string_opt rest with
    | Some v -> Ok (name, labels, v)
    | None -> Error (Printf.sprintf "unparsable sample value %S" rest)

let le_of_labels labels =
  (* Extract le="..." from a label set, if present. *)
  match labels with
  | None -> None
  | Some ls ->
      let parts = String.split_on_char ',' ls in
      List.find_map
        (fun p ->
          match String.index_opt p '=' with
          | Some i when String.sub p 0 i = "le" ->
              let v = String.sub p (i + 1) (String.length p - i - 1) in
              let v =
                if String.length v >= 2 && v.[0] = '"' then
                  String.sub v 1 (String.length v - 2)
                else v
              in
              if v = "+Inf" then Some infinity else float_of_string_opt v
          | _ -> None)
        parts

let validate text =
  let lines = String.split_on_char '\n' text in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* last cumulative bucket count per histogram, for monotonicity *)
  let buckets : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let saw_eof = ref false in
  let rec go lineno = function
    | [] -> if !saw_eof then Ok () else Error "missing # EOF terminator"
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest ->
        if !saw_eof then err "line %d: content after # EOF" lineno
        else if line = "# EOF" then begin
          saw_eof := true;
          go (lineno + 1) rest
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' line with
          | [ "#"; "TYPE"; name; kind ] ->
              if not (valid_name name) then
                err "line %d: invalid metric name %S" lineno name
              else if
                not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary" ])
              then err "line %d: unknown metric type %S" lineno kind
              else go (lineno + 1) rest
          | _ -> err "line %d: malformed # TYPE line" lineno
        end
        else if String.length line >= 1 && line.[0] = '#' then
          (* other comment lines (HELP, UNIT) pass through *)
          go (lineno + 1) rest
        else begin
          match parse_sample line with
          | Error e -> err "line %d: %s" lineno e
          | Ok (name, labels, v) -> (
              match le_of_labels labels with
              | None -> go (lineno + 1) rest
              | Some _le -> (
                  let base =
                    if Filename.check_suffix name "_bucket" then
                      Filename.chop_suffix name "_bucket"
                    else name
                  in
                  match Hashtbl.find_opt buckets base with
                  | Some prev_cum when v < prev_cum ->
                      err
                        "line %d: histogram %s bucket counts not monotone \
                         (%g < %g)"
                        lineno base v prev_cum
                  | _ ->
                      Hashtbl.replace buckets base v;
                      go (lineno + 1) rest))
        end
  in
  go 1 lines
