type t = {
  enabled : bool;
  metrics : Metrics.t;
  trace : Trace.t option;
  events : Events.t option;
  progress : Progress.t option;
  timeline : Timeline.t option;
  atpg_span_s : float;
}

let null =
  {
    enabled = false;
    metrics = Metrics.create ();
    trace = None;
    events = None;
    progress = None;
    timeline = None;
    atpg_span_s = infinity;
  }

let create ?metrics ?trace ?events ?progress ?timeline
    ?(atpg_span_s = 0.001) () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  { enabled = true; metrics; trace; events; progress; timeline; atpg_span_s }

let span t ~name ~cat f =
  match t.trace with
  | Some tr when t.enabled -> Trace.with_span tr ~name ~cat f
  | _ -> f ()

let event t ~kind fields =
  match t.events with
  | Some ev when t.enabled -> Events.emit ev ~kind fields
  | _ -> ()

let tick t ?failed ?quarantined ~phase ~done_ ~total ~detected ~budget_left
    () =
  match t.progress with
  | Some p when t.enabled ->
    Progress.tick p ?failed ?quarantined ~phase ~done_ ~total ~detected
      ~budget_left ()
  | _ -> ()
