(** Pure post-run analysis over the {!Artifacts} set.

    Everything here operates on parsed values — the only I/O is in the
    [load_*] helpers — so tests drive the analyses with synthetic runs
    and spans. Consumed by [fst analyze] and by the bench's perf gate. *)

(** {1 Parsed run.json} *)

type hist = { count : int; sum : float; p50 : float; p90 : float; p99 : float }

type dom = {
  wid : int;
  busy_s : float;
  chunks : int;
  steals : int;
  busy_frac : float;
}

type run = {
  wall_s : float;
  phases : (string * float) list;  (** bare phase name → wall seconds *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
  domains : dom list;
  segs : Timeline.seg list;
  config : Json.t;
}

type span = { name : string; cat : string; tid : int; t0 : float; t1 : float }
(** One complete trace event ([trace.json]), times in seconds relative
    to trace start. *)

val run_of_json : Json.t -> (run, string) result
(** Validates with {!Artifacts.validate_run} first. *)

val load_run : string -> (run, string) result
(** Read and parse one [run.json] file. *)

val load_dir : string -> (run * span list, string) result
(** Read an artifact directory: [run.json] (required) plus the spans of
    [trace.json] (missing/unparsable trace → no spans, not an error). *)

(** {1 Spans & critical path} *)

val spans_of_trace : Json.t -> span list
val load_spans : string -> span list

type critical_path = {
  cp_length_s : float;  (** longest chain of non-overlapping spans *)
  cp_total_s : float;  (** sum of all span durations (total work) *)
  cp_window_s : float;  (** max end − min start over all spans *)
  cp_chain : span list;  (** the chain, chronological *)
  cp_amdahl : float;  (** total / length — parallel speedup ceiling *)
}

val critical_path : span list -> critical_path
(** DP over spans sorted by end time: [cp(i) = dur(i) + max { cp(j) |
    end(j) <= start(i) }], prefix-max + binary search, O(n log n). The
    chain is a set of pairwise non-overlapping spans, so [cp_length_s <=
    cp_window_s] and [cp_length_s <= cp_total_s] always hold (the qcheck
    properties in [test_analyze.ml]). *)

(** {1 Self-vs-child time & hotspots} *)

type node_stat = {
  ns_name : string;
  ns_count : int;
  ns_total_s : float;
  ns_self_s : float;  (** total minus time covered by nested child spans *)
}

val self_times : span list -> node_stat list
(** Aggregated per span name, sorted by self time descending. Nesting is
    computed per tid with a containment stack. *)

val hotspots : ?k:int -> span list -> node_stat list
(** Top-[k] (default 10) of {!self_times}. *)

(** {1 Per-domain utilization} *)

type util = {
  u_wid : int;
  u_busy_s : float;
  u_busy_frac : float;  (** busy over the shared observation window *)
  u_chunks : int;
  u_steals : int;
  u_gaps : (float * float) list;  (** idle gaps longer than [gap_s] *)
}

val utilization : ?gap_s:float -> Timeline.seg list -> util list
(** Per-worker busy time, fraction of the run-wide window, and idle-gap
    detection ([gap_s] default 1 ms), sorted by worker id. *)

(** {1 Structured diff & regression gate} *)

type verdict = Regression | Improvement | Unchanged

type diff_entry = {
  d_key : string;  (** ["wall_s"], ["phase:<name>"], ["p99:<hist>"],
                       ["counter:<name>"] *)
  d_base : float;
  d_cur : float;
  d_delta_frac : float;  (** [(cur − base) / base]; [0] when base = 0 *)
  d_verdict : verdict;
  d_gated : bool;  (** time-like metrics gate; counters are informational *)
}

val diff : ?threshold:float -> ?min_s:float -> run -> run -> diff_entry list
(** Relative-threshold comparison (default 20%). Pairs where both sides
    sit under the [min_s] floor (default 1 ms) are [Unchanged] by
    definition — microsecond phases never produce noise verdicts.
    [diff r r] yields zero deltas and no regressions (symmetric-zero,
    pinned by a qcheck property). *)

val regressions : diff_entry list -> diff_entry list
(** The gated [Regression] entries; nonempty ⇒ [fst analyze] exits 1. *)

(** {1 BENCH_flow.json baselines} *)

val runs_of_bench : Json.t -> (string * run) list
(** Pseudo-runs from a [BENCH_flow.json], keyed
    ["<circuit>/<serial|multicore>"]. *)

val load_bench : string -> ((string * run) list, string) result

(** {1 Rendering} *)

val render_report : ?k:int -> run -> span list -> string
(** The human report: summary line, phase table, per-domain utilization,
    critical path + Amdahl ceiling, top-[k] hotspots. *)

val render_diff : diff_entry list -> string
val diff_to_json : diff_entry list -> Json.t

val fmt_s : float -> string
(** Human-scaled seconds: ["1.20s"], ["3.4ms"], ["250µs"]. *)
