(* One flow run → one coherent artifact directory:

     trace.json    Chrome trace_event (Perfetto-loadable)
     events.jsonl  structured event log, flushed per line
     metrics.prom  OpenMetrics text exposition
     run.json      the summary Analyze consumes (schema "fst-run/1")

   The handle owns every channel of the sink it hands out, so the flow
   stays a pure observer: the caller threads [sink h] through the run
   and calls [write] once at the end. *)

let schema_version = "fst-run/1"

type t = {
  dir : string;
  metrics : Metrics.t;
  trace : Trace.t;
  events : Events.t;
  events_oc : out_channel;
  timeline : Timeline.t;
  t_start : float;
}

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let ( / ) = Filename.concat

let create ~dir =
  mkdir_p dir;
  let events_oc = open_out (dir / "events.jsonl") in
  {
    dir;
    metrics = Metrics.create ();
    trace = Trace.create ();
    events = Events.to_channel events_oc;
    events_oc;
    timeline = Timeline.create ();
    t_start = Unix.gettimeofday ();
  }

let sink ?progress ?atpg_span_s t =
  Sink.create ~metrics:t.metrics ~trace:t.trace ~events:t.events
    ?progress ~timeline:t.timeline ?atpg_span_s ()

(* ---- run.json ------------------------------------------------------ *)

let json_float f = if Float.is_finite f then Json.Float f else Json.Null

(* Quantile over a bucket list, same estimate Metrics.quantile gives:
   the upper bound of the bucket where the cumulative count reaches
   ceil (q * n). *)
let quantile_of_buckets buckets n q =
  if n = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let rec go acc = function
      | [] -> Float.nan
      | (ub, c) :: rest -> if acc + c >= rank then ub else go (acc + c) rest
    in
    go 0 buckets
  end

let hist_json (h : Metrics.hist_snapshot) =
  let q p = json_float (quantile_of_buckets h.Metrics.h_buckets h.Metrics.h_count p) in
  Json.Obj
    [
      ("count", Json.Int h.Metrics.h_count);
      ("sum", json_float h.Metrics.h_sum);
      ("min", json_float h.Metrics.h_min);
      ("max", json_float h.Metrics.h_max);
      ("p50", q 0.50);
      ("p90", q 0.90);
      ("p99", q 0.99);
      ( "buckets",
        Json.List
          (List.map
             (fun (ub, c) -> Json.List [ json_float ub; Json.Int c ])
             h.Metrics.h_buckets) );
    ]

(* Per-phase wall seconds from the "flow.<phase>.wall_s" gauges the flow
   emits, keyed by the bare phase name. *)
let phases_of_snapshot snap =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Gauge_v g
        when String.length name > 12
             && String.sub name 0 5 = "flow."
             && Filename.check_suffix name ".wall_s" ->
          let phase = String.sub name 5 (String.length name - 12) in
          Some (phase, json_float g)
      | _ -> None)
    snap

(* Per-worker attribution from the timeline: busy = sum of segment
   durations, wall = the run's whole observation window (shared by all
   workers, so fractions are comparable), steals counted per worker. *)
let domains_of_timeline segs ~window =
  let tbl : (int, float * int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Timeline.seg) ->
      let busy, chunks, steals =
        Option.value ~default:(0.0, 0, 0) (Hashtbl.find_opt tbl s.wid)
      in
      Hashtbl.replace tbl s.wid
        ( busy +. (s.t1 -. s.t0),
          chunks + 1,
          steals + if s.stolen then 1 else 0 ))
    segs;
  Hashtbl.fold (fun wid v acc -> (wid, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (wid, (busy, chunks, steals)) ->
         Json.Obj
           [
             ("wid", Json.Int wid);
             ("busy_s", json_float busy);
             ("chunks", Json.Int chunks);
             ("steals", Json.Int steals);
             ( "busy_frac",
               json_float (if window > 0.0 then busy /. window else 0.0) );
           ])

let run_json ?(config = Json.Null) ?(extra = []) t =
  let wall = Unix.gettimeofday () -. t.t_start in
  let snap = Metrics.snapshot t.metrics in
  let counters =
    List.filter_map
      (function n, Metrics.Counter_v c -> Some (n, Json.Int c) | _ -> None)
      snap
  in
  let gauges =
    List.filter_map
      (function n, Metrics.Gauge_v g -> Some (n, json_float g) | _ -> None)
      snap
  in
  let fcounters =
    List.filter_map
      (function n, Metrics.Fcounter_v f -> Some (n, json_float f) | _ -> None)
      snap
  in
  let histograms =
    List.filter_map
      (function n, Metrics.Histogram_v h -> Some (n, hist_json h) | _ -> None)
      snap
  in
  let segs = Timeline.segments t.timeline in
  let window =
    List.fold_left (fun acc (s : Timeline.seg) -> Float.max acc s.t1) 0.0 segs
  in
  Json.Obj
    ([
       ("schema", Json.String schema_version);
       ("wall_s", json_float wall);
       ("config", config);
       ("phases", Json.Obj (phases_of_snapshot snap));
       ("counters", Json.Obj counters);
       ("gauges", Json.Obj gauges);
       ("fcounters", Json.Obj fcounters);
       ("histograms", Json.Obj histograms);
       ("domains", Json.List (domains_of_timeline segs ~window));
       ("timeline", Timeline.to_json t.timeline);
     ]
    @ extra)

let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let write ?config ?extra t =
  write_file (t.dir / "trace.json") (Json.to_string (Trace.to_json t.trace));
  write_file (t.dir / "metrics.prom") (Openmetrics.expose t.metrics);
  write_file (t.dir / "run.json")
    (Json.to_string (run_json ?config ?extra t) ^ "\n");
  close_out t.events_oc

let run_json_keys =
  [
    "schema"; "wall_s"; "config"; "phases"; "counters"; "gauges";
    "fcounters"; "histograms"; "domains"; "timeline";
  ]

let validate_run json =
  match json with
  | Json.Obj _ -> (
      let missing =
        List.filter (fun k -> Json.member k json = None) run_json_keys
      in
      match missing with
      | [] -> (
          match Json.member "schema" json with
          | Some (Json.String s) when s = schema_version -> Ok ()
          | Some (Json.String s) ->
              Error (Printf.sprintf "unknown run.json schema %S" s)
          | _ -> Error "run.json schema field is not a string")
      | ks -> Error ("run.json missing keys: " ^ String.concat ", " ks))
  | _ -> Error "run.json is not an object"
