(** Domain-safe metrics registry.

    All mutation paths are lock-free ([Atomic]); only metric
    registration takes a mutex (it happens a handful of times per run).
    Counters and histogram buckets are integers, so concurrent updates
    from Pool domains commute exactly — a snapshot taken after a
    parallel region is identical to the serial one regardless of
    interleaving (see the qcheck property in [test/test_obs.ml]). *)

type t
(** A registry. *)

val create : unit -> t

(** {1 Counters} — monotonically increasing integers. *)

module Counter : sig
  type c

  val incr : c -> unit
  val add : c -> int -> unit
  val value : c -> int
end

val counter : t -> string -> Counter.c
(** Get-or-create; the same name always yields the same counter. *)

(** {1 Gauges} — last-write-wins floats (Gc live words, busy fraction…). *)

module Gauge : sig
  type g

  val set : g -> float -> unit
  val value : g -> float
end

val gauge : t -> string -> Gauge.g

(** {1 Float accumulators} — CAS-looped float sums (seconds of busy
    time per domain). Not bit-deterministic under contention (float
    addition does not commute exactly); use for durations, never for
    anything a test compares bit-for-bit. *)

module Fcounter : sig
  type f

  val add : f -> float -> unit
  val value : f -> float
end

val fcounter : t -> string -> Fcounter.f

(** {1 Log-scale histograms} — power-of-two buckets over non-negative
    values. Bucket counts, total count, and min/max merge exactly and
    order-independently; the float [sum] (kept for OpenMetrics [_sum])
    is CAS-accumulated like {!Fcounter} and is {e not} bit-deterministic
    under contention — never compare it bit-for-bit. *)

module Histogram : sig
  type h

  val create : unit -> h
  (** A free-standing histogram (per-domain local accumulation). *)

  val observe : h -> float -> unit

  val merge_into : dst:h -> src:h -> unit
  (** Commutative, associative bucket-wise add; min/max combine. *)

  val count : h -> int

  val sum : h -> float
  (** Sum of observed values ([0.0] when empty); see the caveat above. *)

  val buckets : h -> (float * int) list
  (** [(upper_bound, count)] for each non-empty bucket, ascending. *)

  val min_value : h -> float
  (** [infinity] when empty. *)

  val max_value : h -> float
  (** [neg_infinity] when empty. *)

  val quantile : h -> float -> float
  (** [quantile h q] (with [q] in [0..1]) estimates the [q]-quantile as
      the upper bound of the bucket where the cumulative count reaches
      [ceil (q * count)]. The estimate sits within one power-of-two
      bucket above the exact sample quantile: [exact < estimate <= 2 *
      exact] for positive samples. [nan] when empty. *)
end

val histogram : t -> string -> Histogram.h

(** {1 Snapshots} *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;  (** [(upper_bound, count)], ascending *)
}

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Fcounter_v of float
  | Histogram_v of hist_snapshot

val snapshot : t -> (string * snapshot_value) list
(** A typed point-in-time view of every registered metric, name-sorted —
    the single structure the exporters (JSON, OpenMetrics text
    exposition, run.json) consume. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "fcounters": {...},
     "histograms": {name: {count, min, max, buckets: [[ub, n], ...]}}}],
    keys sorted for determinism. *)

val to_text : t -> string
(** One ["name value"] line per metric, sorted; histograms render as
    [name{count,min,max}]. *)
