(** Domain-safe metrics registry.

    All mutation paths are lock-free ([Atomic]); only metric
    registration takes a mutex (it happens a handful of times per run).
    Counters and histogram buckets are integers, so concurrent updates
    from Pool domains commute exactly — a snapshot taken after a
    parallel region is identical to the serial one regardless of
    interleaving (see the qcheck property in [test/test_obs.ml]). *)

type t
(** A registry. *)

val create : unit -> t

(** {1 Counters} — monotonically increasing integers. *)

module Counter : sig
  type c

  val incr : c -> unit
  val add : c -> int -> unit
  val value : c -> int
end

val counter : t -> string -> Counter.c
(** Get-or-create; the same name always yields the same counter. *)

(** {1 Gauges} — last-write-wins floats (Gc live words, busy fraction…). *)

module Gauge : sig
  type g

  val set : g -> float -> unit
  val value : g -> float
end

val gauge : t -> string -> Gauge.g

(** {1 Float accumulators} — CAS-looped float sums (seconds of busy
    time per domain). Not bit-deterministic under contention (float
    addition does not commute exactly); use for durations, never for
    anything a test compares bit-for-bit. *)

module Fcounter : sig
  type f

  val add : f -> float -> unit
  val value : f -> float
end

val fcounter : t -> string -> Fcounter.f

(** {1 Log-scale histograms} — power-of-two buckets over non-negative
    values. Bucket counts, total count, and min/max only (no float sum),
    so merging is exact and order-independent. *)

module Histogram : sig
  type h

  val create : unit -> h
  (** A free-standing histogram (per-domain local accumulation). *)

  val observe : h -> float -> unit

  val merge_into : dst:h -> src:h -> unit
  (** Commutative, associative bucket-wise add; min/max combine. *)

  val count : h -> int

  val buckets : h -> (float * int) list
  (** [(upper_bound, count)] for each non-empty bucket, ascending. *)

  val min_value : h -> float
  (** [infinity] when empty. *)

  val max_value : h -> float
  (** [neg_infinity] when empty. *)
end

val histogram : t -> string -> Histogram.h

(** {1 Snapshots} *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "fcounters": {...},
     "histograms": {name: {count, min, max, buckets: [[ub, n], ...]}}}],
    keys sorted for determinism. *)

val to_text : t -> string
(** One ["name value"] line per metric, sorted; histograms render as
    [name{count,min,max}]. *)
