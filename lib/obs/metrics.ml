module Counter = struct
  type c = int Atomic.t

  let incr c = Atomic.incr c
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c
end

module Gauge = struct
  (* A boxed float behind an Atomic: the load/store is a pointer, so
     reads are torn-free. (Not float bits in an Atomic int: OCaml ints
     are 63-bit, which silently drops the float's sign bit.) *)
  type g = float Atomic.t

  let set g v = Atomic.set g v
  let value g = Atomic.get g
end

module Fcounter = struct
  type f = float Atomic.t

  (* The CAS hands back the exact box it read, so physical-equality
     compare_and_set implements the retry loop correctly. *)
  let add f v =
    let rec go () =
      let old = Atomic.get f in
      if not (Atomic.compare_and_set f old (old +. v)) then go ()
    in
    go ()

  let value f = Atomic.get f
end

module Histogram = struct
  (* Power-of-two buckets: bucket [i] holds values whose frexp exponent
     is [i + offset], clamped. Bucket upper bound = 2^(i + lo). Only
     integer counts and min/max are kept, so merges commute exactly. *)
  let lo = -20 (* ~1e-6 *)
  let hi = 31 (* ~2e9 *)
  let nbuckets = hi - lo + 1

  type h = {
    buckets : int Atomic.t array;
    count : int Atomic.t;
    minb : float Atomic.t;
    maxb : float Atomic.t;
    sumb : float Atomic.t;
        (* CAS-looped float sum, like Fcounter: not bit-deterministic
           under contention — exposed for OpenMetrics _sum, never for
           anything a test compares bit-for-bit. *)
  }

  let create () =
    {
      buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      minb = Atomic.make infinity;
      maxb = Atomic.make neg_infinity;
      sumb = Atomic.make 0.0;
    }

  let bucket_of v =
    if v <= 0.0 then 0
    else
      let _, e = Float.frexp v in
      let i = e - lo in
      if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  let cas_extreme cell better v =
    let rec go () =
      let old = Atomic.get cell in
      if better v old then
        if Atomic.compare_and_set cell old v then () else go ()
    in
    go ()

  let cas_add cell v =
    let rec go () =
      let old = Atomic.get cell in
      if not (Atomic.compare_and_set cell old (old +. v)) then go ()
    in
    go ()

  let observe h v =
    Atomic.incr h.buckets.(bucket_of v);
    Atomic.incr h.count;
    cas_add h.sumb v;
    cas_extreme h.minb (fun a b -> a < b) v;
    cas_extreme h.maxb (fun a b -> a > b) v

  let merge_into ~dst ~src =
    Array.iteri
      (fun i b ->
        let n = Atomic.get b in
        if n > 0 then ignore (Atomic.fetch_and_add dst.buckets.(i) n))
      src.buckets;
    let n = Atomic.get src.count in
    if n > 0 then ignore (Atomic.fetch_and_add dst.count n);
    cas_add dst.sumb (Atomic.get src.sumb);
    cas_extreme dst.minb (fun a b -> a < b) (Atomic.get src.minb);
    cas_extreme dst.maxb (fun a b -> a > b) (Atomic.get src.maxb)

  let count h = Atomic.get h.count
  let sum h = Atomic.get h.sumb

  let buckets h =
    let out = ref [] in
    for i = nbuckets - 1 downto 0 do
      let n = Atomic.get h.buckets.(i) in
      if n > 0 then out := (Float.ldexp 1.0 (i + lo), n) :: !out
    done;
    !out

  let min_value h = Atomic.get h.minb
  let max_value h = Atomic.get h.maxb

  (* Quantile estimate from the log-scale buckets: the upper bound of
     the bucket where the cumulative count first reaches [ceil (q * n)].
     Since bucket [i] covers (2^(i+lo-1), 2^(i+lo)], the estimate is
     within one power-of-two bucket above the exact sample quantile
     (the qcheck property in test_analyze.ml pins this down). *)
  let quantile h q =
    let n = Atomic.get h.count in
    if n = 0 then Float.nan
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let acc = ref 0 and found = ref Float.nan in
      (try
         for i = 0 to nbuckets - 1 do
           acc := !acc + Atomic.get h.buckets.(i);
           if !acc >= rank then begin
             found := Float.ldexp 1.0 (i + lo);
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end
end

type metric =
  | C of Counter.c
  | G of Gauge.g
  | F of Fcounter.f
  | H of Histogram.h

type t = { mutable items : (string * metric) list; lock : Mutex.t }

let create () = { items = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_or_make t name make unpack =
  with_lock t (fun () ->
      match List.assoc_opt name t.items with
      | Some m -> unpack m
      | None ->
          let m = make () in
          t.items <- (name, m) :: t.items;
          unpack m)

let wrong name = invalid_arg ("Fst_obs.Metrics: " ^ name ^ " has another type")

let counter t name =
  get_or_make t name
    (fun () -> C (Atomic.make 0))
    (function C c -> c | _ -> wrong name)

let gauge t name =
  get_or_make t name
    (fun () -> G (Atomic.make 0.0))
    (function G g -> g | _ -> wrong name)

let fcounter t name =
  get_or_make t name
    (fun () -> F (Atomic.make 0.0))
    (function F f -> f | _ -> wrong name)

let histogram t name =
  get_or_make t name
    (fun () -> H (Histogram.create ()))
    (function H h -> h | _ -> wrong name)

let sorted_items t =
  let items = with_lock t (fun () -> t.items) in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

(* A typed point-in-time view of the registry, name-sorted: the one
   structure the exporters (JSON, OpenMetrics, run.json) all consume. *)
type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Fcounter_v of float
  | Histogram_v of hist_snapshot

let snapshot t =
  List.map
    (fun (n, m) ->
      let v =
        match m with
        | C c -> Counter_v (Counter.value c)
        | G g -> Gauge_v (Gauge.value g)
        | F f -> Fcounter_v (Fcounter.value f)
        | H h ->
            Histogram_v
              {
                h_count = Histogram.count h;
                h_sum = Histogram.sum h;
                h_min = Histogram.min_value h;
                h_max = Histogram.max_value h;
                h_buckets = Histogram.buckets h;
              }
      in
      (n, v))
    (sorted_items t)

let json_float f = if Float.is_finite f then Json.Float f else Json.Null

let to_json t =
  let items = sorted_items t in
  let pick f = List.filter_map f items in
  let counters =
    pick (function n, C c -> Some (n, Json.Int (Counter.value c)) | _ -> None)
  in
  let gauges =
    pick (function
      | n, G g -> Some (n, json_float (Gauge.value g))
      | _ -> None)
  in
  let fcounters =
    pick (function
      | n, F f -> Some (n, json_float (Fcounter.value f))
      | _ -> None)
  in
  let histograms =
    pick (function
      | n, H h ->
          let buckets =
            List.map
              (fun (ub, c) -> Json.List [ json_float ub; Json.Int c ])
              (Histogram.buckets h)
          in
          Some
            ( n,
              Json.Obj
                [
                  ("count", Json.Int (Histogram.count h));
                  ("min", json_float (Histogram.min_value h));
                  ("max", json_float (Histogram.max_value h));
                  ("buckets", Json.List buckets);
                ] )
      | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("fcounters", Json.Obj fcounters);
      ("histograms", Json.Obj histograms);
    ]

let to_text t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (n, m) ->
      match m with
      | C c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Counter.value c))
      | G g -> Buffer.add_string buf (Printf.sprintf "%s %g\n" n (Gauge.value g))
      | F f ->
          Buffer.add_string buf (Printf.sprintf "%s %g\n" n (Fcounter.value f))
      | H h ->
          Buffer.add_string buf
            (Printf.sprintf "%s{count=%d,min=%g,max=%g}\n" n
               (Histogram.count h) (Histogram.min_value h)
               (Histogram.max_value h)))
    (sorted_items t);
  Buffer.contents buf
