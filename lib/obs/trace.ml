type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float; (* microseconds since trace creation *)
  dur : float; (* microseconds; 0 for instants *)
  tid : int;
  args : (string * Json.t) list;
}

type t = {
  epoch : float;
  lock : Mutex.t;
  mutable events : event list; (* reverse chronological by append order *)
  mutable n : int;
}

let create () =
  { epoch = Unix.gettimeofday (); lock = Mutex.create (); events = []; n = 0 }

let us_since t = (Unix.gettimeofday () -. t.epoch) *. 1e6

let push t ev =
  Mutex.lock t.lock;
  t.events <- ev :: t.events;
  t.n <- t.n + 1;
  Mutex.unlock t.lock

type span = { s_name : string; s_cat : string; s_ts : float; s_tid : int }

let begin_span t ~name ~cat =
  { s_name = name; s_cat = cat; s_ts = us_since t; s_tid = (Domain.self () :> int) }

let end_span ?(args = []) t sp =
  let dur = us_since t -. sp.s_ts in
  push t
    {
      name = sp.s_name;
      cat = sp.s_cat;
      ph = "X";
      ts = sp.s_ts;
      dur;
      tid = sp.s_tid;
      args;
    };
  dur *. 1e-6

let with_span ?args t ~name ~cat f =
  let sp = begin_span t ~name ~cat in
  Fun.protect ~finally:(fun () -> ignore (end_span ?args t sp)) f

let complete ?(args = []) t ~name ~cat ~start_s ~dur_s =
  push t
    {
      name;
      cat;
      ph = "X";
      ts = (start_s -. t.epoch) *. 1e6;
      dur = dur_s *. 1e6;
      tid = (Domain.self () :> int);
      args;
    }

let instant ?(args = []) t ~name ~cat =
  push t
    {
      name;
      cat;
      ph = "i";
      ts = us_since t;
      dur = 0.0;
      tid = (Domain.self () :> int);
      args;
    }

let event_count t =
  Mutex.lock t.lock;
  let n = t.n in
  Mutex.unlock t.lock;
  n

let to_json t =
  Mutex.lock t.lock;
  let events = t.events in
  Mutex.unlock t.lock;
  let event_json e =
    let base =
      [
        ("name", Json.String e.name);
        ("cat", Json.String e.cat);
        ("ph", Json.String e.ph);
        ("ts", Json.Float e.ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int e.tid);
      ]
    in
    let base = if e.ph = "X" then base @ [ ("dur", Json.Float e.dur) ] else base in
    let base =
      if e.args = [] then base else base @ [ ("args", Json.Obj e.args) ]
    in
    Json.Obj base
  in
  (* Restore append order; Perfetto sorts by ts anyway, but stable files
     make golden tests simpler. *)
  let events = List.rev_map event_json events in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]
