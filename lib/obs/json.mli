(** Minimal JSON tree: enough to build metric snapshots and trace files,
    and to re-parse them in tests and the [fst jsonlint] smoke. Stdlib
    only; no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Floats use ["%.17g"] so round-trips
    are exact; NaN/inf are rendered as [null] (JSON has no spelling for
    them). *)

val to_channel : out_channel -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Strict parser for the subset we emit (no unicode escapes beyond
    [\uXXXX], which is decoded to UTF-8). Raises {!Parse_error}. *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on absence or
    non-object. *)
