(** OpenMetrics text exposition for a {!Metrics} registry.

    Counters expose as [name_total], gauges as [name], float
    accumulators as [name_total] counters, histograms as cumulative
    [name_bucket{le="..."}] series (explicit [+Inf] bucket) plus
    [name_count] / [name_sum]. Names are sanitized ([.] → [_]); the
    exposition ends with the mandatory [# EOF] line. *)

val sanitize : string -> string
(** Map characters outside [[a-zA-Z0-9_:]] to [_]. *)

val expose : Metrics.t -> string

val validate : string -> (unit, string) result
(** Structural check used by [fst jsonlint] on [.prom] artifacts:
    every non-comment line parses as [name{labels} value], [# TYPE]
    lines are well-formed with a known type, cumulative bucket counts
    per histogram are monotone non-decreasing, and the text ends with
    [# EOF]. *)
