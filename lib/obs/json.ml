type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

exception Parse_error of string

(* A small recursive-descent parser over the string, tracking position. *)
type state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then (
    st.pos <- st.pos + n;
    value)
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* Encode a Unicode scalar value as UTF-8 bytes. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' ->
            advance st;
            Buffer.add_char buf '"';
            go ()
        | Some '\\' ->
            advance st;
            Buffer.add_char buf '\\';
            go ()
        | Some '/' ->
            advance st;
            Buffer.add_char buf '/';
            go ()
        | Some 'n' ->
            advance st;
            Buffer.add_char buf '\n';
            go ()
        | Some 'r' ->
            advance st;
            Buffer.add_char buf '\r';
            go ()
        | Some 't' ->
            advance st;
            Buffer.add_char buf '\t';
            go ()
        | Some 'b' ->
            advance st;
            Buffer.add_char buf '\b';
            go ()
        | Some 'f' ->
            advance st;
            Buffer.add_char buf '\012';
            go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.s then fail st "truncated \\u"
            else begin
              let hex = String.sub st.s st.pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail st "bad \\u escape"
              in
              st.pos <- st.pos + 4;
              utf8_of_code buf code;
              go ()
            end
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.s start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (
        advance st;
        List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (
        advance st;
        Obj [])
      else
        let rec pairs acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              pairs ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (pairs [])
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
