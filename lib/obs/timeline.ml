type seg = {
  wid : int;
  label : string;
  t0 : float;
  t1 : float;
  stolen : bool;
}

type t = {
  epoch : float;
  lock : Mutex.t;
  mutable segs : seg list; (* reverse chronological by append order *)
  mutable n : int;
}

let create () =
  { epoch = Unix.gettimeofday (); lock = Mutex.create (); segs = []; n = 0 }

let epoch t = t.epoch

let record t ~wid ~label ~t0 ~t1 ~stolen =
  let seg = { wid; label; t0 = t0 -. t.epoch; t1 = t1 -. t.epoch; stolen } in
  Mutex.lock t.lock;
  t.segs <- seg :: t.segs;
  t.n <- t.n + 1;
  Mutex.unlock t.lock

let count t =
  Mutex.lock t.lock;
  let n = t.n in
  Mutex.unlock t.lock;
  n

let segments t =
  Mutex.lock t.lock;
  let segs = t.segs in
  Mutex.unlock t.lock;
  (* Sort by start time (ties by worker id) so consumers see one
     chronological sequence regardless of recording interleaving. *)
  List.sort
    (fun a b ->
      match Float.compare a.t0 b.t0 with 0 -> Int.compare a.wid b.wid | c -> c)
    segs

let to_json t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("wid", Json.Int s.wid);
             ("label", Json.String s.label);
             ("t0", Json.Float s.t0);
             ("t1", Json.Float s.t1);
             ("stolen", Json.Bool s.stolen);
           ])
       (segments t))

let seg_of_json j =
  let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
  let num k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let bool k =
    match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
  in
  match (int "wid", str "label", num "t0", num "t1") with
  | Some wid, Some label, Some t0, Some t1 ->
      Some
        { wid; label; t0; t1; stolen = Option.value ~default:false (bool "stolen") }
  | _ -> None

let of_json = function
  | Json.List l -> List.filter_map seg_of_json l
  | _ -> []
