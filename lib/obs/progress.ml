type t = {
  interval : float;
  lock : Mutex.t;
  mutable last : float; (* 0.0 = never printed *)
  mutable phase_start : float;
  mutable phase : string;
}

let create ?(interval = 1.0) () =
  { interval; lock = Mutex.create (); last = 0.0; phase_start = 0.0; phase = "" }

let tick t ?(failed = 0) ?(quarantined = 0) ~phase ~done_ ~total ~detected
    ~budget_left () =
  let now = Unix.gettimeofday () in
  Mutex.lock t.lock;
  if t.phase <> phase then begin
    t.phase <- phase;
    t.phase_start <- now;
    (* force a print on phase entry *)
    t.last <- 0.0
  end;
  let due = t.last = 0.0 || now -. t.last >= t.interval in
  if due then t.last <- now;
  let phase_start = t.phase_start in
  Mutex.unlock t.lock;
  if due then begin
    let pct = if total > 0 then 100 * done_ / total else 0 in
    let eta =
      let rate =
        let dt = now -. phase_start in
        if dt > 0.0 && done_ > 0 then float_of_int done_ /. dt else 0.0
      in
      let by_rate =
        if rate > 0.0 then float_of_int (total - done_) /. rate else infinity
      in
      Float.min by_rate budget_left
    in
    let eta_txt =
      if Float.is_finite eta && eta >= 0.0 then Printf.sprintf " | eta %.1fs" eta
      else ""
    in
    (* Failure counts only appear once something actually failed, so the
       happy-path heartbeat stays exactly as it always was. *)
    let fail_txt =
      if failed > 0 || quarantined > 0 then
        Printf.sprintf ", %d failed/%d quarantined" failed quarantined
      else ""
    in
    Printf.eprintf "[flow] %s %d/%d done, %d detected%s, %d%%%s\n%!" phase
      done_ total detected fail_txt pct eta_txt
  end
