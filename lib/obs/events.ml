type t = { write : string -> unit; lock : Mutex.t }

let to_channel oc =
  {
    write =
      (fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc);
    lock = Mutex.create ();
  }

let to_callback f = { write = f; lock = Mutex.create () }

let to_buffer buf =
  {
    write =
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n');
    lock = Mutex.create ();
  }

let emit t ~kind fields =
  let line =
    Json.to_string
      (Json.Obj
         (("ts", Json.Float (Unix.gettimeofday ()))
         :: ("kind", Json.String kind)
         :: fields))
  in
  Mutex.lock t.lock;
  t.write line;
  Mutex.unlock t.lock
