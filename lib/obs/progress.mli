(** Progress heartbeat: a rate-limited one-line status printer.

    [tick] is cheap to call from inner loops — it reads the clock and
    returns unless [interval] seconds have passed since the last line
    (the very first tick always prints, so short runs still show a
    heartbeat). Lines go to [stderr] and look like:

    {v [flow] step2-atpg 412/1204 done, 287 detected, 34% | eta 12.3s v} *)

type t

val create : ?interval:float -> unit -> t
(** [interval] defaults to 1 second. *)

val tick :
  t ->
  ?failed:int ->
  ?quarantined:int ->
  phase:string ->
  done_:int ->
  total:int ->
  detected:int ->
  budget_left:float ->
  unit ->
  unit
(** [budget_left] is the seconds remaining in the phase's budget
    ([infinity] when unbudgeted); the ETA printed is the smaller of the
    rate-extrapolated finish and the budget left. [failed] /
    [quarantined] (both default 0) are appended to the line only when
    nonzero, so a clean run's heartbeat is unchanged. *)
