(** Span tracing with Chrome [trace_event] export.

    Spans are recorded as complete ("ph":"X") events with microsecond
    timestamps relative to the trace's creation, so the resulting JSON
    loads directly into Perfetto / chrome://tracing. The buffer is
    mutex-protected; a span is measured on the recording domain and
    appended once at its end, so tracing adds two clock reads and one
    short critical section per span. *)

type t

val create : unit -> t

type span
(** An open span: start timestamp + identity. Pure data — end it on the
    same domain that began it so the tid is honest. *)

val begin_span : t -> name:string -> cat:string -> span

val end_span : ?args:(string * Json.t) list -> t -> span -> float
(** Records the complete event; returns the span duration in seconds. *)

val with_span :
  ?args:(string * Json.t) list ->
  t ->
  name:string ->
  cat:string ->
  (unit -> 'a) ->
  'a
(** Bracket [f] in a span; the span is recorded even if [f] raises. *)

val instant : ?args:(string * Json.t) list -> t -> name:string -> cat:string -> unit
(** A zero-duration marker ("ph":"i"). *)

val complete :
  ?args:(string * Json.t) list ->
  t ->
  name:string ->
  cat:string ->
  start_s:float ->
  dur_s:float ->
  unit
(** Record a span measured externally: [start_s] is an absolute
    {!Unix.gettimeofday} time, [dur_s] a duration in seconds. Lets
    callers time first and decide afterwards whether the span clears a
    reporting threshold. *)

val event_count : t -> int

val to_json : t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Events carry
    [pid] 1 and [tid] = the recording domain's id. *)
