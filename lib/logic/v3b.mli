(** Branch-free three-valued logic on 2-bit integer codes.

    The compiled simulation kernels ({!Fst_sim.Compiled}) store one net
    value per byte using this encoding instead of the boxed-free-but-
    branchy {!V3.t} variant: bit 0 of a code means "can be 0", bit 1 means
    "can be 1", so [Zero] = [0b01], [One] = [0b10] and [X] = [0b11]. Every
    gate function is then a handful of word operations with no branches,
    and a value vector is a [Bytes.t] (one byte per net — 8x less memory
    traffic than a pointer-sized array). *)

type code = int

val zero : code
val one : code
val x : code

val of_v3 : V3.t -> code
val to_v3 : code -> V3.t

(** Raises [Invalid_argument] on a character outside [01xX]. *)
val of_char : char -> code

val to_char : code -> char

(** [is_code c] is true for the three valid codes [1..3]. *)
val is_code : code -> bool

(** Branch-free connectives; each agrees with the corresponding {!V3}
    operation through {!of_v3}/{!to_v3} (checked exhaustively in
    [test/test_logic.ml]). *)

val band : code -> code -> code
val bor : code -> code -> code
val bnot : code -> code
val bxor : code -> code -> code

(** [detects ~good ~faulty] is complementary binary detection: true exactly
    when one code is [zero] and the other [one]. *)
val detects : good:code -> faulty:code -> bool

(** Fold identities for variadic gates: AND of nothing is [one], OR / XOR
    of nothing is [zero]. *)

val and_unit : code
val or_unit : code
val xor_unit : code
