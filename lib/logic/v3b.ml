(* Branch-free three-valued logic on 2-bit integer codes.

   A code is a "possible binary values" bit set: bit 0 means the signal can
   be 0, bit 1 means it can be 1. [Zero] = 0b01, [One] = 0b10, [X] = 0b11
   (either). 0b00 is unused and never produced by the operations below.
   Under this encoding every gate function is a couple of word-level
   and/or/shift operations — no matching, no branches — which is what the
   compiled simulation kernels in [Fst_sim.Compiled] execute per gate. *)

type code = int

let zero = 0b01
let one = 0b10
let x = 0b11

let of_v3 = function V3.Zero -> zero | V3.One -> one | V3.X -> x

let to_v3 = function
  | 0b01 -> V3.Zero
  | 0b10 -> V3.One
  | 0b11 -> V3.X
  | c -> invalid_arg (Printf.sprintf "V3b.to_v3: bad code %d" c)

let of_char c = of_v3 (V3.of_char c)
let to_char c = V3.to_char (to_v3 c)
let is_code c = c >= 1 && c <= 3

(* AND: the result can be 0 if either side can be 0; it can be 1 only if
   both sides can be 1. *)
let band a b = ((a lor b) land 1) lor (a land b land 2)

(* OR: dual of AND. *)
let bor a b = (a land b land 1) lor ((a lor b) land 2)

(* NOT: swap the two possibility bits. *)
let bnot a = ((a land 1) lsl 1) lor ((a lsr 1) land 1)

(* XOR: the result can be 0 when the sides can agree, 1 when they can
   differ. *)
let bxor a b =
  let agree = a land b in
  let r0 = (agree lor (agree lsr 1)) land 1 in
  let r1 = ((a land (b lsr 1)) lor ((a lsr 1) land b)) land 1 in
  r0 lor (r1 lsl 1)

(* Complementary binary detection: the observed pair (good, faulty) is a
   detection exactly when one side is [Zero] and the other [One]. Among the
   codes {1, 2, 3}, [g lxor f = 0b11] holds only for (1, 2) and (2, 1), so
   the xor alone decides. *)
let detects ~good ~faulty = good lxor faulty = 0b11

(* The per-gate identity elements for the fold in the compiled kernel:
   AND over the empty set is [One], OR and XOR are [Zero]. *)
let and_unit = one
let or_unit = zero
let xor_unit = zero
