(** Three-valued good-machine simulation.

    A {!state} holds one value per net. Primary inputs and flip-flop outputs
    are set explicitly (or by {!clock}); [eval_comb] sweeps gates in
    topological order. All values start at [X], matching an unknown
    power-on state. *)

open Fst_logic
open Fst_netlist

(** A test stimulus: per clock cycle, assignments to nets (usually primary
    inputs). Unassigned nets hold their previous value, starting from [X]. *)
type stimulus = (int * V3.t) list array

(** The minimal machine interface shared by every simulator in the project:
    the good-machine sweep simulator below, and the serial and bit-parallel
    faulty machines of [Fst_fsim]. A machine can have inputs applied, its
    combinational logic settled, and its clock ticked. *)
module type MACHINE = sig
  type t

  val set_input : Circuit.t -> t -> int -> V3.t -> unit
  val eval_comb : Circuit.t -> t -> unit
  val clock : Circuit.t -> t -> unit
end

(** The one stimulus/observe/clock driver loop shared by all machines. *)
module Drive (M : MACHINE) : sig
  (** [apply c m assigns] applies one cycle's input assignments. *)
  val apply : Circuit.t -> M.t -> (int * V3.t) list -> unit

  (** [run_until c m stim ~observe] drives [m] cycle by cycle: apply
      [stim.(t)], settle combinational logic, call [observe t]. If the
      observer returns [true] the loop stops (before clocking) and returns
      [Some t]; otherwise the clock ticks and the next cycle runs. Returns
      [None] when the stimulus is exhausted. *)
  val run_until : Circuit.t -> M.t -> stimulus -> observe:(int -> bool) -> int option

  (** [run c m stim ~observe] drives the whole stimulus, observing every
      cycle. *)
  val run : Circuit.t -> M.t -> stimulus -> observe:(int -> unit) -> unit
end

type state

val create : Circuit.t -> state

(** [value st n] is the current value of net [n]. *)
val value : state -> int -> V3.t

(** [values st] is the underlying array (indexed by net id); callers must
    not mutate it. *)
val values : state -> V3.t array

val set_input : Circuit.t -> state -> int -> V3.t -> unit

(** [set_ff c st ff v] forces the output of flip-flop [ff] (for test setup
    and for modelling a scanned-in state). *)
val set_ff : Circuit.t -> state -> int -> V3.t -> unit

(** [eval_comb c st] recomputes every gate net from the current input,
    constant and flip-flop values. *)
val eval_comb : Circuit.t -> state -> unit

(** [clock c st] latches each flip-flop's data value into its output
    (simultaneously across all flip-flops) and re-evaluates the
    combinational logic. *)
val clock : Circuit.t -> state -> unit

(** [outputs c st] reads the primary-output values. *)
val outputs : Circuit.t -> state -> V3.t array

(** [run c ~cycles ~stimulus ~observe] drives a fresh state for [cycles]
    clock periods. Each cycle [t]: [stimulus t] assignments are applied to
    primary inputs (by net id), combinational logic settles, [observe t st]
    is called, then the clock ticks. *)
val run :
  Circuit.t ->
  cycles:int ->
  stimulus:(int -> (int * V3.t) list) ->
  observe:(int -> state -> unit) ->
  unit
