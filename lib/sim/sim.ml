open Fst_logic
open Fst_netlist

type stimulus = (int * V3.t) list array

module type MACHINE = sig
  type t

  val set_input : Circuit.t -> t -> int -> V3.t -> unit
  val eval_comb : Circuit.t -> t -> unit
  val clock : Circuit.t -> t -> unit
end

module Drive (M : MACHINE) = struct
  let apply c m assigns = List.iter (fun (n, v) -> M.set_input c m n v) assigns

  let run_until c m (stim : stimulus) ~observe =
    let cycles = Array.length stim in
    let rec loop t =
      if t >= cycles then None
      else begin
        apply c m stim.(t);
        M.eval_comb c m;
        if observe t then Some t
        else begin
          M.clock c m;
          loop (t + 1)
        end
      end
    in
    loop 0

  let run c m stim ~observe =
    ignore
      (run_until c m stim ~observe:(fun t ->
           observe t;
           false))
end

type state = { v : V3.t array; latch_buf : V3.t array }

let create (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let st = { v = Array.make n V3.X; latch_buf = Array.make (Circuit.dff_count c) V3.X } in
  Array.iteri
    (fun i nd ->
      match nd with Circuit.Const k -> st.v.(i) <- k | _ -> ())
    c.Circuit.nodes;
  st

let value st n = st.v.(n)
let values st = st.v

let set_input (c : Circuit.t) st n v =
  if not (Circuit.is_input c n) then
    invalid_arg (Printf.sprintf "Sim.set_input: net %d is not an input" n);
  st.v.(n) <- v

let set_ff (c : Circuit.t) st n v =
  if not (Circuit.is_dff c n) then
    invalid_arg (Printf.sprintf "Sim.set_ff: net %d is not a flip-flop" n);
  st.v.(n) <- v

let eval_node (c : Circuit.t) st i =
  match c.Circuit.nodes.(i) with
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
  | Circuit.Gate (g, fi) ->
    let values = Array.map (fun f -> st.v.(f)) fi in
    st.v.(i) <- Gate.eval g values

let eval_comb (c : Circuit.t) st =
  Array.iter (fun i -> eval_node c st i) c.Circuit.topo

let clock (c : Circuit.t) st =
  let dffs = c.Circuit.dffs in
  Array.iteri
    (fun k ff ->
      match c.Circuit.nodes.(ff) with
      | Circuit.Dff data -> st.latch_buf.(k) <- st.v.(data)
      | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
    dffs;
  Array.iteri (fun k ff -> st.v.(ff) <- st.latch_buf.(k)) dffs;
  eval_comb c st

let outputs (c : Circuit.t) st = Array.map (fun o -> st.v.(o)) c.Circuit.outputs

module Machine = struct
  type t = state

  let set_input = set_input
  let eval_comb = eval_comb
  let clock = clock
end

module Driver = Drive (Machine)

let run c ~cycles ~stimulus ~observe =
  let st = create c in
  let stim = Array.init cycles stimulus in
  Driver.run c st stim ~observe:(fun t -> observe t st)
