(* One-time compilation of a [Circuit.t] into a flat, levelized,
   cache-friendly representation shared by every simulation kernel.

   The interpreted machines ([Sim], the pre-refactor fault simulators)
   dispatch on a per-node variant and chase per-gate fanin arrays; on big
   circuits that costs a branchy match plus two pointer loads per gate per
   cycle. The compiled form replaces all of it with contiguous int arrays:

     slot space     a stable permutation of net ids: level-0 nodes (inputs,
                    constants, flip-flops) first in net order, then gates
                    level by level in net order. Gate [k]'s output slot is
                    [n_level0 + k], so a levelized sweep writes slots
                    strictly left to right.
     gate_op        one opcode byte per gate (AND/OR/XOR base + invert bit)
     fanin_off/     the fanin lists of all gates, flattened into one pool
     fanin          of slot ids (CSR layout)
     level_off      gates of combinational level [l] are the gate index
                    range [level_off.(l), level_off.(l+1))
     ff_slot/       the flip-flop next-state map: ff [k] latches the value
     ff_data        of slot [ff_data.(k)] into slot [ff_slot.(k)]
     fanout_off/    the consumer lists of all slots (CSR), for event-driven
     fanout         scheduling and static cone walks

   Net values are stored one byte per slot ([Bytes.t]) using the branch-free
   [V3b] 2-bit codes, so a full value vector of a 10k-net circuit is 10kB —
   it stays in L1/L2 across cycles. Every vector has one spare slot at index
   [n_slots] that the fault simulator uses as a constant cell for redirected
   (branch-faulted) fanin reads. *)

open Fst_logic
open Fst_netlist

type t = {
  circuit : Circuit.t;
  n_slots : int;
  n_level0 : int;
  n_gates : int;
  depth : int;
  perm : int array;
  net_of : int array;
  gate_op : int array;
  fanin_off : int array;
  fanin : int array;
  level_off : int array;
  slot_level : int array;
  n_ffs : int;
  ff_slot : int array;
  ff_data : int array;
  ff_of_slot : int array;
  fanout_off : int array;
  fanout : int array;
  init : Bytes.t;
}

let opcode = function
  | Gate.And -> 0
  | Gate.Nand -> 1
  | Gate.Or -> 2
  | Gate.Nor -> 3
  | Gate.Xor -> 4
  | Gate.Xnor -> 5
  | Gate.Buf -> 6
  | Gate.Not -> 7

let gate_slot cc k = cc.n_level0 + k
let slot_gate cc s = if s >= cc.n_level0 then s - cc.n_level0 else -1

let of_circuit (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let nodes = c.Circuit.nodes in
  let is_gate i = match nodes.(i) with Circuit.Gate _ -> true | _ -> false in
  (* Stable net -> slot permutation: level-0 nodes first (net order), then
     gates sorted by (level, net id). *)
  let gates = ref [] in
  for i = n - 1 downto 0 do
    if is_gate i then gates := i :: !gates
  done;
  let gates = Array.of_list !gates in
  Array.sort
    (fun a b ->
      match Int.compare c.Circuit.level.(a) c.Circuit.level.(b) with
      | 0 -> Int.compare a b
      | d -> d)
    gates;
  let n_gates = Array.length gates in
  let n_level0 = n - n_gates in
  let perm = Array.make n (-1) in
  let net_of = Array.make n (-1) in
  let next0 = ref 0 in
  for i = 0 to n - 1 do
    if not (is_gate i) then begin
      perm.(i) <- !next0;
      net_of.(!next0) <- i;
      incr next0
    end
  done;
  Array.iteri
    (fun k i ->
      perm.(i) <- n_level0 + k;
      net_of.(n_level0 + k) <- i)
    gates;
  let gate_op = Array.make n_gates 0 in
  let fanin_off = Array.make (n_gates + 1) 0 in
  let total_fanins = ref 0 in
  Array.iteri
    (fun k i ->
      match nodes.(i) with
      | Circuit.Gate (g, fi) ->
        gate_op.(k) <- opcode g;
        fanin_off.(k) <- !total_fanins;
        total_fanins := !total_fanins + Array.length fi
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false)
    gates;
  fanin_off.(n_gates) <- !total_fanins;
  let fanin = Array.make (max 1 !total_fanins) 0 in
  Array.iteri
    (fun k i ->
      match nodes.(i) with
      | Circuit.Gate (_, fi) ->
        let o = fanin_off.(k) in
        Array.iteri (fun p f -> fanin.(o + p) <- perm.(f)) fi
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false)
    gates;
  let depth = Circuit.depth c in
  let level_off = Array.make (depth + 2) n_gates in
  (* Gates are sorted by level; record the first gate index of each level. *)
  let prev = ref 0 in
  Array.iteri
    (fun k i ->
      let l = c.Circuit.level.(i) in
      while !prev <= l do
        level_off.(!prev) <- k;
        incr prev
      done)
    gates;
  (* Levels past the last gate's keep the default [n_gates]. *)
  let slot_level = Array.make n 0 in
  Array.iteri (fun k i -> slot_level.(n_level0 + k) <- c.Circuit.level.(i)) gates;
  let dffs = c.Circuit.dffs in
  let n_ffs = Array.length dffs in
  let ff_slot = Array.map (fun ff -> perm.(ff)) dffs in
  let ff_data =
    Array.map
      (fun ff ->
        match nodes.(ff) with
        | Circuit.Dff d -> perm.(d)
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
      dffs
  in
  let ff_of_slot = Array.make n (-1) in
  Array.iteri (fun k s -> ff_of_slot.(s) <- k) ff_slot;
  (* Consumer lists in slot space (CSR). *)
  let fanout_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let s = perm.(i) in
    fanout_off.(s + 1) <- Array.length c.Circuit.fanout.(i)
  done;
  for s = 0 to n - 1 do
    fanout_off.(s + 1) <- fanout_off.(s) + fanout_off.(s + 1)
  done;
  let fanout = Array.make (max 1 fanout_off.(n)) 0 in
  for i = 0 to n - 1 do
    let s = perm.(i) in
    let o = ref fanout_off.(s) in
    Array.iter
      (fun consumer ->
        fanout.(!o) <- perm.(consumer);
        incr o)
      c.Circuit.fanout.(i)
  done;
  let init = Bytes.make (n + 1) (Char.chr V3b.x) in
  Array.iteri
    (fun i nd ->
      match nd with
      | Circuit.Const v -> Bytes.set init perm.(i) (Char.chr (V3b.of_v3 v))
      | Circuit.Input | Circuit.Gate _ | Circuit.Dff _ -> ())
    nodes;
  {
    circuit = c;
    n_slots = n;
    n_level0;
    n_gates;
    depth;
    perm;
    net_of;
    gate_op;
    fanin_off;
    fanin;
    level_off;
    slot_level;
    n_ffs;
    ff_slot;
    ff_data;
    ff_of_slot;
    fanout_off;
    fanout;
    init;
  }

(* ---- compiled stimuli -------------------------------------------------- *)

(* One packed int per assignment: [(slot lsl 2) lor code]. *)
type cstim = int array array

let compile_stim cc (stim : Sim.stimulus) : cstim =
  Array.map
    (fun assigns ->
      Array.of_list
        (List.map
           (fun (net, v) -> (cc.perm.(net) lsl 2) lor V3b.of_v3 v)
           assigns))
    stim

(* ---- scalar kernel ----------------------------------------------------- *)

let make_vec cc = Bytes.copy cc.init
let reset_vec cc v = Bytes.blit cc.init 0 v 0 (Bytes.length cc.init)
let get (v : Bytes.t) s = Char.code (Bytes.unsafe_get v s)
let set (v : Bytes.t) s code = Bytes.unsafe_set v s (Char.unsafe_chr code)

let apply (v : Bytes.t) (assigns : int array) =
  for i = 0 to Array.length assigns - 1 do
    let a = Array.unsafe_get assigns i in
    set v (a lsr 2) (a land 3)
  done

(* The tight opcode-switch sweep over the gate index range [lo, hi).
   [fanin] defaults to the circuit's pool; the fault simulator passes a
   copy with one entry redirected to the spare constant slot to model a
   branch fault. Levelized slot order guarantees every fanin of gate [k]
   is already settled when [k] evaluates. *)
let eval_range cc ?(fanin = cc.fanin) (v : Bytes.t) ~lo ~hi =
  let op = cc.gate_op and off = cc.fanin_off in
  let base = cc.n_level0 in
  for k = lo to hi - 1 do
    let o = Array.unsafe_get off k in
    let o_hi = Array.unsafe_get off (k + 1) in
    let code =
      match Array.unsafe_get op k with
      | 0 | 1 ->
        let acc = ref V3b.and_unit in
        for i = o to o_hi - 1 do
          acc := V3b.band !acc (get v (Array.unsafe_get fanin i))
        done;
        if Array.unsafe_get op k = 0 then !acc else V3b.bnot !acc
      | 2 | 3 ->
        let acc = ref V3b.or_unit in
        for i = o to o_hi - 1 do
          acc := V3b.bor !acc (get v (Array.unsafe_get fanin i))
        done;
        if Array.unsafe_get op k = 2 then !acc else V3b.bnot !acc
      | 4 | 5 ->
        let acc = ref V3b.xor_unit in
        for i = o to o_hi - 1 do
          acc := V3b.bxor !acc (get v (Array.unsafe_get fanin i))
        done;
        if Array.unsafe_get op k = 4 then !acc else V3b.bnot !acc
      | 6 -> get v (Array.unsafe_get fanin o)
      | _ -> V3b.bnot (get v (Array.unsafe_get fanin o))
    in
    set v (base + k) code
  done

let eval cc ?fanin v = eval_range cc ?fanin v ~lo:0 ~hi:cc.n_gates

(* Evaluate one gate (by gate index) and return its code; used by the
   event-driven overlay, which reads fanins through its own divergence
   view. [read] maps a fanin position in the pool to a code. *)
let eval_gate_via cc ~read k =
  let o = cc.fanin_off.(k) and o_hi = cc.fanin_off.(k + 1) in
  match cc.gate_op.(k) with
  | 0 | 1 ->
    let acc = ref V3b.and_unit in
    for i = o to o_hi - 1 do
      acc := V3b.band !acc (read i)
    done;
    if cc.gate_op.(k) = 0 then !acc else V3b.bnot !acc
  | 2 | 3 ->
    let acc = ref V3b.or_unit in
    for i = o to o_hi - 1 do
      acc := V3b.bor !acc (read i)
    done;
    if cc.gate_op.(k) = 2 then !acc else V3b.bnot !acc
  | 4 | 5 ->
    let acc = ref V3b.xor_unit in
    for i = o to o_hi - 1 do
      acc := V3b.bxor !acc (read i)
    done;
    if cc.gate_op.(k) = 4 then !acc else V3b.bnot !acc
  | 6 -> read o
  | _ -> V3b.bnot (read o)

(* Latch every flip-flop's data value, then publish simultaneously. The
   two passes keep FF-to-FF chains (scan paths) correct. *)
let clock cc (v : Bytes.t) (latch : Bytes.t) =
  let data = cc.ff_data and slot = cc.ff_slot in
  for k = 0 to cc.n_ffs - 1 do
    Bytes.unsafe_set latch k (Bytes.unsafe_get v (Array.unsafe_get data k))
  done;
  for k = 0 to cc.n_ffs - 1 do
    Bytes.unsafe_set v (Array.unsafe_get slot k) (Bytes.unsafe_get latch k)
  done

(* ---- the good-trace recorder ------------------------------------------- *)

(* One fault-free sweep of the whole stimulus, recording the post-eval
   value vector of every cycle. Row [t] is what every overlay engine
   diverges from at cycle [t]; rows are immutable once recorded and safe
   to share read-only across domains. *)
let trace cc (stim : cstim) =
  let v = make_vec cc in
  let latch = Bytes.make (max 1 cc.n_ffs) '\000' in
  let cycles = Array.length stim in
  let rows = Array.make cycles Bytes.empty in
  for t = 0 to cycles - 1 do
    apply v stim.(t);
    eval cc v;
    rows.(t) <- Bytes.copy v;
    clock cc v latch
  done;
  rows

(* ---- static cones in slot space ---------------------------------------- *)

(* Everything reachable from [seeds] through the fanout CSR — crossing
   flip-flop boundaries — sorted ascending (i.e. levelized). This is the
   union soundness envelope of a packed fault group: slots outside it can
   never diverge from the good trace. *)
let cone_slots cc ~seeds =
  let seen = Bytes.make cc.n_slots '\000' in
  let stack = ref [] in
  let count = ref 0 in
  Array.iter
    (fun s ->
      if Bytes.get seen s = '\000' then begin
        Bytes.set seen s '\001';
        incr count;
        stack := s :: !stack
      end)
    seeds;
  let acc = ref [] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      acc := s :: !acc;
      let lo = cc.fanout_off.(s) and hi = cc.fanout_off.(s + 1) in
      for i = lo to hi - 1 do
        let d = cc.fanout.(i) in
        if Bytes.get seen d = '\000' then begin
          Bytes.set seen d '\001';
          incr count;
          stack := d :: !stack
        end
      done
  done;
  let a = Array.of_list !acc in
  Array.sort Int.compare a;
  a

(* ---- bit-plane kernel (pattern- and fault-parallel packing) ------------ *)

module Planes = struct
  (* Word-level three-valued planes: per slot, bit [b] of [ones] means
     lane [b] carries 1, of [zeros] lane [b] carries 0; neither bit set
     means X. Lanes are whatever the caller packs — faulty machines in the
     fault-parallel engine, stimulus blocks in the pattern-parallel good
     trace below. *)
  type vec = { full : int; ones : int array; zeros : int array }

  let make cc ~lanes =
    let full = (1 lsl lanes) - 1 in
    let n = cc.n_slots + 1 in
    let ones = Array.make n 0 and zeros = Array.make n 0 in
    for s = 0 to cc.n_slots - 1 do
      match get cc.init s with
      | c when c = V3b.one -> ones.(s) <- full
      | c when c = V3b.zero -> zeros.(s) <- full
      | _ -> ()
    done;
    { full; ones; zeros }

  let set_lane pv s code ~bit =
    let keep = lnot bit in
    pv.ones.(s) <- pv.ones.(s) land keep;
    pv.zeros.(s) <- pv.zeros.(s) land keep;
    if code = V3b.one then pv.ones.(s) <- pv.ones.(s) lor bit
    else if code = V3b.zero then pv.zeros.(s) <- pv.zeros.(s) lor bit

  let broadcast pv code =
    if code = V3b.one then (pv.full, 0)
    else if code = V3b.zero then (0, pv.full)
    else (0, 0)

  (* Plane evaluation of gate [k] reading fanins through [read]
     (pool index -> (ones, zeros)); shared by the full sweep here and the
     cone-clipped group kernel in [Fst_fsim]. *)
  let eval_gate_via cc ~full ~read k =
    let o = cc.fanin_off.(k) and o_hi = cc.fanin_off.(k + 1) in
    match cc.gate_op.(k) with
    | 0 | 1 ->
      let one = ref full and zero = ref 0 in
      for i = o to o_hi - 1 do
        let po, pz = read i in
        one := !one land po;
        zero := !zero lor pz
      done;
      if cc.gate_op.(k) = 0 then (!one, !zero) else (!zero, !one)
    | 2 | 3 ->
      let one = ref 0 and zero = ref full in
      for i = o to o_hi - 1 do
        let po, pz = read i in
        one := !one lor po;
        zero := !zero land pz
      done;
      if cc.gate_op.(k) = 2 then (!one, !zero) else (!zero, !one)
    | 4 | 5 ->
      let one = ref 0 and zero = ref full in
      for i = o to o_hi - 1 do
        let po, pz = read i in
        let o' = (!one land pz) lor (!zero land po) in
        let z' = (!one land po) lor (!zero land pz) in
        one := o';
        zero := z'
      done;
      if cc.gate_op.(k) = 4 then (!one, !zero) else (!zero, !one)
    | 6 -> read o
    | _ ->
      let po, pz = read o in
      (pz, po)

  (* Allocation-free direct variant of [eval_gate_via] for hot sweeps:
     fanin planes are read straight out of the full-length [ones]/[zeros]
     slot arrays — no reader closure per fanin (an indirect call the
     compiler cannot inline) and no tuple per read (a minor-heap block
     each). Cone-clipped callers materialize the cone's out-of-cone
     boundary slots into the arrays once per cycle first, which is what
     lets every fanin read collapse to two array loads. *)
  let eval_gate_into cc ~full ~ones ~zeros k ~res1 ~res0 =
    let fanin = cc.fanin in
    let o = cc.fanin_off.(k) and o_hi = cc.fanin_off.(k + 1) in
    match cc.gate_op.(k) with
    | 0 | 1 ->
      let one = ref full and zero = ref 0 in
      for i = o to o_hi - 1 do
        let f = Array.unsafe_get fanin i in
        one := !one land Array.unsafe_get ones f;
        zero := !zero lor Array.unsafe_get zeros f
      done;
      if cc.gate_op.(k) = 0 then begin
        res1 := !one;
        res0 := !zero
      end
      else begin
        res1 := !zero;
        res0 := !one
      end
    | 2 | 3 ->
      let one = ref 0 and zero = ref full in
      for i = o to o_hi - 1 do
        let f = Array.unsafe_get fanin i in
        one := !one lor Array.unsafe_get ones f;
        zero := !zero land Array.unsafe_get zeros f
      done;
      if cc.gate_op.(k) = 2 then begin
        res1 := !one;
        res0 := !zero
      end
      else begin
        res1 := !zero;
        res0 := !one
      end
    | 4 | 5 ->
      let one = ref 0 and zero = ref full in
      for i = o to o_hi - 1 do
        let f = Array.unsafe_get fanin i in
        let po = Array.unsafe_get ones f
        and pz = Array.unsafe_get zeros f in
        let o' = (!one land pz) lor (!zero land po) in
        let z' = (!one land po) lor (!zero land pz) in
        one := o';
        zero := z'
      done;
      if cc.gate_op.(k) = 4 then begin
        res1 := !one;
        res0 := !zero
      end
      else begin
        res1 := !zero;
        res0 := !one
      end
    | 6 ->
      let f = Array.unsafe_get fanin o in
      res1 := Array.unsafe_get ones f;
      res0 := Array.unsafe_get zeros f
    | _ ->
      let f = Array.unsafe_get fanin o in
      res1 := Array.unsafe_get zeros f;
      res0 := Array.unsafe_get ones f

  let eval cc pv =
    let ones = pv.ones and zeros = pv.zeros in
    let res1 = ref 0 and res0 = ref 0 in
    for k = 0 to cc.n_gates - 1 do
      eval_gate_into cc ~full:pv.full ~ones ~zeros k ~res1 ~res0;
      let s = cc.n_level0 + k in
      Array.unsafe_set ones s !res1;
      Array.unsafe_set zeros s !res0
    done

  let clock cc pv ~l1 ~l0 =
    let data = cc.ff_data and slot = cc.ff_slot in
    for k = 0 to cc.n_ffs - 1 do
      let d = Array.unsafe_get data k in
      Array.unsafe_set l1 k pv.ones.(d);
      Array.unsafe_set l0 k pv.zeros.(d)
    done;
    for k = 0 to cc.n_ffs - 1 do
      let s = Array.unsafe_get slot k in
      pv.ones.(s) <- Array.unsafe_get l1 k;
      pv.zeros.(s) <- Array.unsafe_get l0 k
    done

  (* Pattern-parallel good trace: lane [b] simulates stimulus block [b]
     (up to word width lanes per sweep), and row [t] snapshots the planes
     after cycle [t]'s evaluation. A lane whose block is shorter than the
     longest one keeps ticking harmlessly; readers mask it with
     [lane_len]. One full-netlist plane sweep replaces [lanes] scalar
     sweeps when recording the good machine over the alternating /
     converted sequence sets. *)
  type packed = {
    lanes : int;
    cycles : int;
    lane_len : int array;
    rows1 : int array array;
    rows0 : int array array;
  }

  let max_lanes = Sys.int_size - 1

  let trace_packed cc (stims : Sim.stimulus array) =
    let lanes = Array.length stims in
    if lanes = 0 || lanes > max_lanes then
      invalid_arg "Compiled.Planes.trace_packed: bad lane count";
    let lane_len = Array.map Array.length stims in
    let cycles = Array.fold_left max 0 lane_len in
    let pv = make cc ~lanes in
    let l1 = Array.make (max 1 cc.n_ffs) 0 in
    let l0 = Array.make (max 1 cc.n_ffs) 0 in
    let rows1 = Array.make cycles [||] and rows0 = Array.make cycles [||] in
    for t = 0 to cycles - 1 do
      Array.iteri
        (fun b stim ->
          if t < Array.length stim then
            List.iter
              (fun (net, v) ->
                set_lane pv cc.perm.(net) (V3b.of_v3 v) ~bit:(1 lsl b))
              stim.(t))
        stims;
      eval cc pv;
      rows1.(t) <- Array.copy pv.ones;
      rows0.(t) <- Array.copy pv.zeros;
      clock cc pv ~l1 ~l0
    done;
    { lanes; cycles; lane_len; rows1; rows0 }
end
