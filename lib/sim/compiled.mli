(** One-time compilation of a {!Circuit.t} into a flat, levelized,
    cache-friendly representation shared by every simulation kernel.

    Nets are renumbered into {e slot space}: level-0 nodes (inputs,
    constants, flip-flop outputs) occupy slots [0 .. n_level0-1] in net
    order, then gates follow level by level (ties broken by net id), so
    gate [k]'s output lives at slot [n_level0 + k] and a left-to-right
    sweep of the gate arrays is automatically levelized. Gate structure is
    stored as contiguous int arrays (opcode per gate, fanin CSR, per-level
    gate ranges, FF next-state map, fanout CSR), and net values as one
    {!V3b} code byte per slot in a [Bytes.t].

    Every value vector has length [n_slots + 1]: the spare slot [n_slots]
    is caller-owned scratch (the fault simulator stores a stuck constant
    there and redirects one fanin pool entry at it to model a branch
    fault). *)

open Fst_logic
open Fst_netlist

type t = private {
  circuit : Circuit.t;
  n_slots : int;  (** number of nets *)
  n_level0 : int;  (** slots [0 .. n_level0-1] are inputs/consts/FFs *)
  n_gates : int;
  depth : int;  (** deepest combinational level *)
  perm : int array;  (** net id -> slot *)
  net_of : int array;  (** slot -> net id *)
  gate_op : int array;
      (** opcode per gate: And=0 Nand=1 Or=2 Nor=3 Xor=4 Xnor=5 Buf=6
          Not=7; [op land 1] is the output inversion, [op lsr 1] the base
          function. *)
  fanin_off : int array;  (** length [n_gates+1]; CSR offsets into fanin *)
  fanin : int array;  (** flattened fanin slots of all gates *)
  level_off : int array;
      (** length [depth+2]; gates of level [l] are gate indices
          [level_off.(l) .. level_off.(l+1) - 1] *)
  slot_level : int array;  (** combinational level per slot (0 for level-0) *)
  n_ffs : int;
  ff_slot : int array;  (** flip-flop k's output slot *)
  ff_data : int array;  (** flip-flop k's data (next-state) slot *)
  ff_of_slot : int array;  (** slot -> flip-flop index, or -1 *)
  fanout_off : int array;  (** length [n_slots+1]; CSR offsets into fanout *)
  fanout : int array;  (** flattened consumer slots of all slots *)
  init : Bytes.t;
      (** power-on vector: constants set, everything else [V3b.x] *)
}

val of_circuit : Circuit.t -> t

(** [gate_slot cc k] is gate [k]'s output slot, [n_level0 + k]. *)
val gate_slot : t -> int -> int

(** [slot_gate cc s] is the gate index of slot [s], or [-1] for level-0
    slots. *)
val slot_gate : t -> int -> int

(** {2 Compiled stimuli} *)

(** Per cycle, packed assignments [(slot lsl 2) lor code]. *)
type cstim = int array array

val compile_stim : t -> Sim.stimulus -> cstim

(** {2 Scalar kernel}

    A machine state is just a [Bytes.t] of length [n_slots + 1]. *)

val make_vec : t -> Bytes.t
val reset_vec : t -> Bytes.t -> unit
val get : Bytes.t -> int -> V3b.code
val set : Bytes.t -> int -> V3b.code -> unit
val apply : Bytes.t -> int array -> unit

(** [eval_range cc ?fanin v ~lo ~hi] runs the opcode-switch kernel over
    gate indices [lo .. hi-1] (levelized by construction). [fanin]
    defaults to [cc.fanin]; pass a modified copy to redirect individual
    fanin reads (branch faults). *)
val eval_range : t -> ?fanin:int array -> Bytes.t -> lo:int -> hi:int -> unit

(** Full combinational settle: [eval_range ~lo:0 ~hi:n_gates]. *)
val eval : t -> ?fanin:int array -> Bytes.t -> unit

(** [eval_gate_via cc ~read k] evaluates gate [k] alone, reading each
    fanin through [read : pool_index -> code] — the event-driven overlay
    supplies a divergence-aware reader. *)
val eval_gate_via : t -> read:(int -> V3b.code) -> int -> V3b.code

(** [clock cc v latch] latches every flip-flop's data value then publishes
    simultaneously ([latch] is caller scratch of length >= [n_ffs]). Does
    {e not} re-evaluate combinational logic. *)
val clock : t -> Bytes.t -> Bytes.t -> unit

(** {2 Good-trace recorder}

    [trace cc stim] runs the fault-free machine over the whole stimulus
    and returns one row per cycle: a copy of the value vector after that
    cycle's combinational settle (before the clock edge). Rows are fresh
    and safe to share read-only across domains. *)
val trace : t -> cstim -> Bytes.t array

(** {2 Static cones}

    [cone_slots cc ~seeds] is every slot reachable from [seeds] through
    the fanout CSR (crossing flip-flop boundaries), sorted ascending —
    i.e. levelized. Slots outside it can never diverge from the good
    machine under a fault whose effect enters at [seeds]. *)
val cone_slots : t -> seeds:int array -> int array

(** {2 Bit-plane kernel}

    Word-level three-valued planes for packed simulation: per slot, bit
    [b] of [ones] means lane [b] carries 1, of [zeros] that it carries 0;
    neither means X. Lanes are whatever the caller packs: faulty machines
    (fault-parallel) or stimulus blocks (pattern-parallel). *)
module Planes : sig
  type vec = { full : int; ones : int array; zeros : int array }

  val make : t -> lanes:int -> vec
  val set_lane : vec -> int -> V3b.code -> bit:int -> unit

  (** [broadcast pv code] is the [(ones, zeros)] word pair of [code]
      replicated across all lanes. *)
  val broadcast : vec -> V3b.code -> int * int

  (** [eval_gate_via cc ~full ~read k] evaluates gate [k] on planes,
      reading fanin pool index [i] through [read i = (ones, zeros)].
      Used on the rare override-carrying gates of the cone-clipped
      fault-group kernel in [Fst_fsim]. *)
  val eval_gate_via :
    t -> full:int -> read:(int -> int * int) -> int -> int * int

  (** Allocation-free direct variant for hot sweeps: gate [k]'s fanin
      planes are read straight out of the full-length (>= [n_slots + 1])
      [ones]/[zeros] slot arrays and the result planes land in
      [res1]/[res0]. The reader closure above costs an uninlinable
      indirect call plus a boxed pair per fanin read; this one is two
      array loads. Cone-clipped callers must materialize every
      out-of-cone slot the gate reads into the arrays first. *)
  val eval_gate_into :
    t ->
    full:int ->
    ones:int array ->
    zeros:int array ->
    int ->
    res1:int ref ->
    res0:int ref ->
    unit

  (** Full-netlist plane settle (no faults). *)
  val eval : t -> vec -> unit

  (** Plane clock; [l1]/[l0] are caller scratch of length >= [n_ffs]. *)
  val clock : t -> vec -> l1:int array -> l0:int array -> unit

  (** Pattern-parallel good trace: lane [b] simulates stimulus block [b].
      Row [t] of [rows1]/[rows0] is the plane snapshot after cycle [t]'s
      settle; lanes past their own block length keep ticking and must be
      masked by the reader using [lane_len]. *)
  type packed = {
    lanes : int;
    cycles : int;  (** max block length *)
    lane_len : int array;
    rows1 : int array array;
    rows0 : int array array;
  }

  val max_lanes : int

  (** Raises [Invalid_argument] on 0 or more than [max_lanes] blocks. *)
  val trace_packed : t -> Sim.stimulus array -> packed
end
