open Fst_logic
open Fst_netlist
open Fst_sim

type segment = {
  src : int;
  dst_ff : int;
  path : int array;
  invert : bool;
  via_mux : bool;
}

type chain = {
  index : int;
  scan_in : int;
  scan_out : int;
  ffs : int array;
  segments : segment array;
}

type config = {
  scan_mode : int;
  constraints : (int * V3.t) list;
  chains : chain array;
  test_points : int;
  mux_segments : int;
}

let scan_mode_values c config =
  let st = Sim.create c in
  List.iter (fun (n, v) -> Sim.set_input c st n v) config.constraints;
  Sim.eval_comb c st;
  Array.copy (Sim.values st)

let chain_locations c config =
  let locs = Array.make (Circuit.num_nets c) [] in
  let add net loc = locs.(net) <- loc :: locs.(net) in
  Array.iter
    (fun ch ->
      add ch.scan_in (ch.index, 0);
      Array.iteri (fun p ff -> add ff (ch.index, p + 1)) ch.ffs;
      Array.iteri
        (fun s seg -> Array.iter (fun net -> add net (ch.index, s)) seg.path)
        ch.segments)
    config.chains;
  Array.map List.rev locs

let side_pins c config ~chain ~segment =
  let ch = config.chains.(chain) in
  let seg = ch.segments.(segment) in
  let sides = ref [] in
  let entering = ref seg.src in
  Array.iter
    (fun gate_net ->
      let fi = Circuit.fanins c gate_net in
      Array.iteri
        (fun pin f ->
          if f <> !entering then sides := (gate_net, pin, f) :: !sides)
        fi;
      entering := gate_net)
    seg.path;
  List.rev !sides

let parity ch ~position =
  let p = ref false in
  for s = 0 to position do
    if ch.segments.(s).invert then p := not !p
  done;
  !p

let apply_parity v inv = if inv then V3.bnot v else v

let scan_in_stream ch ~values =
  let len = Array.length ch.ffs in
  assert (Array.length values = len);
  let stream = Array.make len V3.X in
  for p = 0 to len - 1 do
    stream.(len - 1 - p) <- apply_parity values.(p) (parity ch ~position:p)
  done;
  stream

type shift_error = {
  se_chain : int;
  se_position : int;
  se_net : int;
  se_expected : V3.t;
  se_got : V3.t;
}

let shift_error_message c e =
  Printf.sprintf "chain %d position %d (%s): expected %c, got %c" e.se_chain
    e.se_position
    (Circuit.net_name c e.se_net)
    (V3.to_char e.se_expected) (V3.to_char e.se_got)

(* A small deterministic bit generator for the self-check pattern. *)
let check_bit k = (k * 7 / 3) land 1 = 1

let verify_shift c config =
  let st = Sim.create c in
  List.iter (fun (n, v) -> Sim.set_input c st n v) config.constraints;
  let streams =
    Array.map
      (fun ch ->
        let len = Array.length ch.ffs in
        let desired =
          Array.init len (fun p -> V3.of_bool (check_bit (p + ch.index)))
        in
        (ch, desired, scan_in_stream ch ~values:desired))
      config.chains
  in
  let max_len =
    Array.fold_left (fun m ch -> max m (Array.length ch.ffs)) 0 config.chains
  in
  for t = 0 to max_len - 1 do
    Array.iter
      (fun (ch, _, stream) ->
        let len = Array.length ch.ffs in
        (* Align streams so every chain finishes loading at [max_len]. *)
        let v = if t < max_len - len then V3.X else stream.(t - (max_len - len)) in
        Sim.set_input c st ch.scan_in v)
      streams;
    Sim.eval_comb c st;
    Sim.clock c st
  done;
  let errors = ref [] in
  Array.iter
    (fun (ch, desired, _) ->
      Array.iteri
        (fun p ff ->
          let got = Sim.value st ff in
          if not (V3.equal got desired.(p)) then
            errors :=
              {
                se_chain = ch.index;
                se_position = p;
                se_net = ff;
                se_expected = desired.(p);
                se_got = got;
              }
              :: !errors)
        ch.ffs)
    streams;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let verify_shift_msg c config =
  match verify_shift c config with
  | Ok () -> Ok ()
  | Error es ->
    Error (String.concat "; " (List.map (shift_error_message c) es))

let pp_config c ppf config =
  Fmt.pf ppf "scan: %d chain(s), %d test point(s), %d mux segment(s), %d constrained PI(s)"
    (Array.length config.chains)
    config.test_points config.mux_segments
    (List.length config.constraints);
  Array.iter
    (fun ch ->
      Fmt.pf ppf "@.  chain %d: %d FFs, scan_in=%s scan_out=%s" ch.index
        (Array.length ch.ffs)
        (Circuit.net_name c ch.scan_in)
        (Circuit.net_name c ch.scan_out))
    config.chains
