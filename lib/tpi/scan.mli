(** Scan-chain description and scan-mode utilities.

    A functional scan chain is an ordered list of flip-flops where each
    consecutive pair is connected by a {e sensitized} combinational path:
    in scan mode (fixed primary-input constraints) every side input along
    the path holds a non-controlling value, so the chain behaves as a shift
    register, possibly inverting per segment. *)

open Fst_logic
open Fst_netlist

type segment = {
  src : int;  (** driving net: previous flip-flop output, or the scan-in *)
  dst_ff : int;  (** the flip-flop this segment loads *)
  path : int array;
      (** gate-output nets along the route, in order, ending with the data
          net of [dst_ff]; empty when [src] directly feeds the data pin *)
  invert : bool;  (** parity of the segment *)
  via_mux : bool;  (** realized by an inserted scan multiplexer *)
}

type chain = {
  index : int;
  scan_in : int;  (** primary-input net *)
  scan_out : int;  (** net observed as scan output (last flip-flop) *)
  ffs : int array;  (** flip-flop output nets in scan order *)
  segments : segment array;  (** [segments.(i)] loads [ffs.(i)] *)
}

type config = {
  scan_mode : int;  (** the scan-enable primary input *)
  constraints : (int * V3.t) list;
      (** scan-mode primary-input assignments, including [scan_mode = 1] *)
  chains : chain array;
  test_points : int;  (** control points inserted by TPI *)
  mux_segments : int;  (** segments that fell back to a scan multiplexer *)
}

(** [scan_mode_values c config] propagates the scan-mode constants: the
    constrained inputs take their values, free inputs and flip-flop outputs
    are [X]. *)
val scan_mode_values : Circuit.t -> config -> V3.t array

(** [chain_net_of c config] maps each net to the chain locations where it
    lies on a scan path: [(chain index, segment index)] pairs. Flip-flop
    output nets are on the segment they feed (their own chain position + 1)
    and, for the last flip-flop, position [length]. *)
val chain_locations : Circuit.t -> config -> (int * int) list array

(** [side_pins c config] enumerates, per chain and segment, the side-input
    pins of the gates along the path: [(node, pin, side net)] triples. *)
val side_pins :
  Circuit.t -> config -> chain:int -> segment:int -> (int * int * int) list

(** [parity chain ~position] is the cumulative inversion from the scan-in
    to flip-flop [position] (inclusive). *)
val parity : chain -> position:int -> bool

(** [scan_in_stream chain ~values] computes the scan-in sequence (length =
    chain length) that loads [values.(p)] into chain position [p]; slots
    corresponding to [X] targets are [X]. The first element is applied
    first. *)
val scan_in_stream : chain -> values:V3.t array -> V3.t array

(** One shift-check failure: what flip-flop [se_net] of chain [se_chain]
    (scan position [se_position]) held after the load versus what the
    scan-in stream was built to put there. Structured so the CLI can render
    failures through the {!Fst_lint} diagnostic machinery. *)
type shift_error = {
  se_chain : int;
  se_position : int;
  se_net : int;  (** the flip-flop's output net *)
  se_expected : V3.t;
  se_got : V3.t;
}

val shift_error_message : Circuit.t -> shift_error -> string

(** [verify_shift c config] simulates each chain with a random-looking
    pattern and checks the shift-register behaviour; returns every position
    that failed to load. *)
val verify_shift : Circuit.t -> config -> (unit, shift_error list) Stdlib.result

(** [verify_shift_msg c config] is {!verify_shift} with the failures joined
    into one message. *)
val verify_shift_msg : Circuit.t -> config -> (unit, string) Stdlib.result

val pp_config : Circuit.t -> config Fmt.t
