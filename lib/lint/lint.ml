module D = Diagnostic
module Json = Fst_obs.Json

module Waiver = struct
  type t = string list

  let empty = []

  let of_lines lines =
    List.filter_map
      (fun l ->
        let l =
          match String.index_opt l '#' with
          | Some i -> String.sub l 0 i
          | None -> l
        in
        let l = String.trim l in
        if l = "" then None else Some l)
      lines

  let of_string s = of_lines (String.split_on_char '\n' s)

  let load path =
    if Sys.file_exists path then
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | l -> go (l :: acc)
            | exception End_of_file -> List.rev acc
          in
          of_lines (go []))
    else []

  let covers t d = List.mem (D.key d) t

  let render diags =
    let b = Buffer.create 256 in
    Buffer.add_string b "# fst lint waiver file: one diagnostic key per line.\n";
    Buffer.add_string b "# Keys are RULE@net-name[@chain.segment]; '#' starts a comment.\n";
    List.iter
      (fun d ->
        Buffer.add_string b (D.key d);
        Buffer.add_string b "  # ";
        Buffer.add_string b d.D.message;
        Buffer.add_char b '\n')
      diags;
    Buffer.contents b

  let save path diags =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (render diags))
end

type report = {
  circuit : string;
  diagnostics : D.t list;
  waived : D.t list;
  errors : int;
  warnings : int;
  infos : int;
}

let count sev diags =
  List.length (List.filter (fun d -> d.D.severity = sev) diags)

let finish ~circuit ~waivers diags =
  let diags = List.sort_uniq D.compare diags in
  let waived, diagnostics =
    List.partition (Waiver.covers waivers) diags
  in
  {
    circuit;
    diagnostics;
    waived;
    errors = count D.Error diagnostics;
    warnings = count D.Warning diagnostics;
    infos = count D.Info diagnostics;
  }

let run ?(limits = Rules.default_limits) ?lines ?file ?config ?dynamic
    ?(waivers = Waiver.empty) c =
  let ctx = Rules.ctx ?lines ?file c in
  let diags = ref (Rules.structural ctx) in
  let add ds = diags := ds @ !diags in
  (match config with
   | Some config ->
     add (Rules.scan ctx ~limits config);
     add (Rules.sca ctx ~limits config);
     (match dynamic with
      | Some true ->
        (match Fst_tpi.Scan.verify_shift c config with
         | Ok () -> ()
         | Error errs ->
           add (List.map (D.of_shift_error ?lines ?file c) errs))
      | Some false | None -> ())
   | None -> ());
  add (Rules.testability ctx ~limits);
  finish ~circuit:c.Fst_netlist.Circuit.name ~waivers !diags

let run_raw ?limits ?(waivers = Waiver.empty) (raw : Fst_netlist.Netfile.raw) =
  ignore limits;
  finish ~circuit:raw.Fst_netlist.Netfile.raw_name ~waivers
    (Rules.raw_structural raw)

type fail_on = Fail_error | Fail_warning | Fail_never

let gate ~fail_on report =
  match fail_on with
  | Fail_never -> true
  | Fail_error -> report.errors = 0
  | Fail_warning -> report.errors = 0 && report.warnings = 0

let render report =
  let b = Buffer.create 512 in
  List.iter
    (fun d ->
      Buffer.add_string b (D.to_string d);
      Buffer.add_char b '\n')
    report.diagnostics;
  Buffer.add_string b
    (Printf.sprintf "%s: %d error(s), %d warning(s)%s%s\n" report.circuit
       report.errors report.warnings
       (if report.infos = 0 then ""
        else Printf.sprintf ", %d info(s)" report.infos)
       (if report.waived = [] then ""
        else Printf.sprintf ", %d waived" (List.length report.waived)));
  Buffer.contents b

let to_json report =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("circuit", Json.String report.circuit);
      ("errors", Json.Int report.errors);
      ("warnings", Json.Int report.warnings);
      ("infos", Json.Int report.infos);
      ("waived", Json.Int (List.length report.waived));
      ("diagnostics", Json.List (List.map D.to_json report.diagnostics));
    ]

let catalogue =
  [
    ("E-NET-PARSE", D.Error, "netlist file does not parse");
    ("E-NET-DUP", D.Error, "net defined more than once");
    ("E-NET-CYCLE", D.Error, "combinational cycle (full loop path reported)");
    ("W-NET-CONSTX", D.Warning, "net tied to an explicit unknown (CONSTX)");
    ("W-NET-DEAD", D.Warning, "node drives nothing and is not an output");
    ("W-NET-UNUSED-PI", D.Warning, "primary input is never read");
    ( "W-NET-FF-SELFLOOP",
      D.Warning,
      "flip-flop feeds its own data pin with no logic in between" );
    ("E-SCAN-MODE", D.Error, "scan-enable missing, non-input, or not pinned to 1");
    ("E-SCAN-SI", D.Error, "scan-in not a free primary input");
    ("E-SCAN-SO", D.Error, "scan-out not the last flip-flop or not observable");
    ( "E-SCAN-SHAPE",
      D.Error,
      "chain bookkeeping broken (ff/segment counts, sources, destinations)" );
    ("E-SCAN-PATH", D.Error, "segment route is not a connected gate path");
    ( "E-SCAN-SENS",
      D.Error,
      "side input not provably non-controlling under scan-mode constants \
       (static complement of the dynamic shift check)" );
    ( "E-SCAN-PARITY",
      D.Error,
      "recorded segment inversion disagrees with the re-derived parity" );
    ("E-SCAN-DUP-FF", D.Error, "flip-flop on more than one chain position");
    ( "E-SCAN-SHIFT",
      D.Error,
      "dynamic shift simulation failed to load a chain position" );
    ("W-SCAN-NOCHAIN", D.Warning, "flip-flop on no scan chain");
    ( "W-SCAN-SE-DATA",
      D.Warning,
      "scan-enable reaches a side pin through >= 3 logic levels" );
    ( "W-SCAN-X",
      D.Warning,
      "X-source cone reaches a segment's side inputs (category-2 hotspot)" );
    ("W-SCAN-DEPTH", D.Warning, "segment path delay exceeds the limit");
    ("W-TEST-CC", D.Warning, "net hard to control (SCOAP threshold)");
    ("W-TEST-OBS", D.Warning, "net hard to observe (SCOAP threshold)");
    ( "W-TEST-REDUNDANT",
      D.Warning,
      "fault statically proven untestable (machine-checked proof): \
       patterns targeting it are redundant" );
    ( "I-CONST-NET",
      D.Info,
      "gate net proven constant under the scan-mode constants" );
  ]
