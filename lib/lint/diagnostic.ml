open Fst_netlist
module Json = Fst_obs.Json

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type location = {
  file : string option;
  line : int option;
  net : int option;
  net_name : string option;
  chain : int option;
  segment : int option;
}

let no_loc =
  { file = None; line = None; net = None; net_name = None; chain = None;
    segment = None }

let at ?lines ?file c net =
  let line =
    match lines with
    | Some table when net < Array.length table && table.(net) > 0 ->
      Some table.(net)
    | Some _ | None -> None
  in
  { file; line; net = Some net; net_name = Some (Circuit.net_name c net);
    chain = None; segment = None }

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
}

let make ~rule ~severity ?(loc = no_loc) message =
  { rule; severity; loc; message }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let opt_cmp cmp a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  Stdlib.compare (severity_rank a.severity) (severity_rank b.severity)
  <?> fun () ->
  String.compare a.rule b.rule
  <?> fun () ->
  opt_cmp Stdlib.compare a.loc.chain b.loc.chain
  <?> fun () ->
  opt_cmp Stdlib.compare a.loc.segment b.loc.segment
  <?> fun () ->
  opt_cmp Stdlib.compare a.loc.net b.loc.net
  <?> fun () ->
  opt_cmp Stdlib.compare a.loc.line b.loc.line
  <?> fun () -> String.compare a.message b.message

let key d =
  let b = Buffer.create 32 in
  Buffer.add_string b d.rule;
  Buffer.add_char b '@';
  Buffer.add_string b (Option.value ~default:"-" d.loc.net_name);
  (match d.loc.chain, d.loc.segment with
   | Some c, Some s -> Buffer.add_string b (Printf.sprintf "@%d.%d" c s)
   | Some c, None -> Buffer.add_string b (Printf.sprintf "@%d" c)
   | None, _ -> ());
  Buffer.contents b

let to_string d =
  let b = Buffer.create 80 in
  (match d.loc.file, d.loc.line with
   | Some f, Some l -> Buffer.add_string b (Printf.sprintf "%s:%d: " f l)
   | Some f, None -> Buffer.add_string b (Printf.sprintf "%s: " f)
   | None, Some l -> Buffer.add_string b (Printf.sprintf "line %d: " l)
   | None, None -> ());
  Buffer.add_string b (severity_to_string d.severity);
  Buffer.add_char b ' ';
  Buffer.add_string b d.rule;
  Buffer.add_string b ": ";
  Buffer.add_string b d.message;
  Buffer.contents b

let to_json d =
  let opt k f v fields =
    match v with Some v -> (k, f v) :: fields | None -> fields
  in
  let fields =
    []
    |> opt "segment" (fun s -> Json.Int s) d.loc.segment
    |> opt "chain" (fun c -> Json.Int c) d.loc.chain
    |> opt "line" (fun l -> Json.Int l) d.loc.line
    |> opt "file" (fun f -> Json.String f) d.loc.file
    |> opt "net_name" (fun n -> Json.String n) d.loc.net_name
    |> opt "net" (fun n -> Json.Int n) d.loc.net
  in
  Json.Obj
    (("rule", Json.String d.rule)
     :: ("severity", Json.String (severity_to_string d.severity))
     :: ("message", Json.String d.message)
     :: ("key", Json.String (key d))
     :: fields)

let of_shift_error ?lines ?file c (e : Fst_tpi.Scan.shift_error) =
  let loc =
    { (at ?lines ?file c e.Fst_tpi.Scan.se_net) with
      chain = Some e.Fst_tpi.Scan.se_chain }
  in
  make ~rule:"E-SCAN-SHIFT" ~severity:Error ~loc
    (Fst_tpi.Scan.shift_error_message c e)
