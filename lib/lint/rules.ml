open Fst_logic
open Fst_netlist
open Fst_tpi
module D = Diagnostic

type limits = {
  max_segment_delay : int;
  delay_model : Timing.model;
  cc_limit : int;
  obs_limit : int;
  max_testability_reports : int;
}

let default_limits =
  {
    max_segment_delay = 24;
    delay_model = Timing.unit_model;
    cc_limit = Fst_testability.Scoap.infinite;
    obs_limit = Fst_testability.Scoap.infinite;
    max_testability_reports = 10;
  }

(* Shared context: the circuit plus the optional source-location table
   threaded from [Netfile.parse_*_loc]. *)
type ctx = { c : Circuit.t; lines : int array option; file : string option }

let ctx ?lines ?file c = { c; lines; file }

let at ctx net = D.at ?lines:ctx.lines ?file:ctx.file ctx.c net

let error ctx ~rule ?chain ?segment net fmt =
  Printf.ksprintf
    (fun message ->
      let loc = { (at ctx net) with D.chain; D.segment } in
      D.make ~rule ~severity:D.Error ~loc message)
    fmt

let warning ctx ~rule ?chain ?segment net fmt =
  Printf.ksprintf
    (fun message ->
      let loc = { (at ctx net) with D.chain; D.segment } in
      D.make ~rule ~severity:D.Warning ~loc message)
    fmt

let info ctx ~rule ?chain ?segment net fmt =
  Printf.ksprintf
    (fun message ->
      let loc = { (at ctx net) with D.chain; D.segment } in
      D.make ~rule ~severity:D.Info ~loc message)
    fmt

let name ctx n = Circuit.net_name ctx.c n

(* --- structural DRC ----------------------------------------------------- *)

(* Rules on the elaborated circuit: explicit X sources, dead logic, unused
   primary inputs, flip-flops latched onto themselves. Duplicate
   definitions and combinational cycles can only exist pre-elaboration and
   are covered by [raw_structural]. *)
let structural ctx =
  let c = ctx.c in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = Circuit.num_nets c in
  for i = 0 to n - 1 do
    let dead = Array.length c.Circuit.fanout.(i) = 0 && not (Circuit.is_output c i) in
    match Circuit.node c i with
    | Circuit.Const V3.X ->
      add
        (warning ctx ~rule:"W-NET-CONSTX" i
           "net %S is tied to an explicit unknown (CONSTX): every reader \
            sees X in scan mode"
           (name ctx i))
    | Circuit.Const _ when dead ->
      add
        (warning ctx ~rule:"W-NET-DEAD" i
           "constant %S drives nothing and is not a primary output"
           (name ctx i))
    | Circuit.Gate _ when dead ->
      add
        (warning ctx ~rule:"W-NET-DEAD" i
           "gate %S drives nothing and is not a primary output" (name ctx i))
    | Circuit.Dff d ->
      if dead then
        add
          (warning ctx ~rule:"W-NET-DEAD" i
             "flip-flop %S drives nothing and is not a primary output"
             (name ctx i));
      if d = i then
        add
          (warning ctx ~rule:"W-NET-FF-SELFLOOP" i
             "flip-flop %S feeds back onto its own data pin with no logic \
              in between: it can never change state"
             (name ctx i))
    | Circuit.Input ->
      if dead then
        add
          (warning ctx ~rule:"W-NET-UNUSED-PI" i
             "primary input %S is never read" (name ctx i))
    | Circuit.Const _ | Circuit.Gate _ -> ()
  done;
  !diags

(* Rules only expressible on a raw (pre-elaboration) node table: every
   duplicate definition with both source lines, and every combinational
   cycle with its path — where [Circuit.make] aborts on the first. *)
let raw_structural (raw : Netfile.raw) =
  let nm i = raw.Netfile.raw_net_names.(i) in
  let line_of i =
    if raw.Netfile.raw_lines.(i) > 0 then Some raw.Netfile.raw_lines.(i)
    else None
  in
  let dups =
    List.map
      (fun (net, first, dup) ->
        let loc =
          { D.no_loc with D.file = raw.Netfile.raw_file; line = Some dup }
        in
        D.make ~rule:"E-NET-DUP" ~severity:D.Error ~loc
          (Printf.sprintf "net %S defined twice (first defined at line %d)"
             net first))
      raw.Netfile.raw_dups
  in
  let cycles =
    List.map
      (fun cycle ->
        let head = List.hd cycle in
        let loc =
          {
            D.no_loc with
            D.file = raw.Netfile.raw_file;
            line = line_of head;
            net = Some head;
            net_name = Some (nm head);
          }
        in
        let path = List.map nm cycle in
        D.make ~rule:"E-NET-CYCLE" ~severity:D.Error ~loc
          (Printf.sprintf "combinational cycle: %s"
             (String.concat " -> " (path @ [ List.hd path ]))))
      (Circuit.combinational_cycles raw.Netfile.raw_nodes)
  in
  dups @ cycles

(* --- scan-DFT rules ------------------------------------------------------ *)

let non_controlling g =
  match Gate.controlling g with
  | Some ctrl -> Some (V3.bnot ctrl)
  | None -> None

(* Static re-derivation of a segment's inversion parity from the gate types
   and the binary xor-family side values; [None] when an X side value (or a
   non-gate path net) makes the parity underivable. *)
let static_parity c vals (seg : Scan.segment) =
  let inv = ref false in
  let derivable = ref true in
  let entering = ref seg.Scan.src in
  Array.iter
    (fun gnet ->
      (match Circuit.node c gnet with
       | Circuit.Gate (g, fi) ->
         if Gate.inverting g then inv := not !inv;
         (match g with
          | Gate.Xor | Gate.Xnor ->
            Array.iter
              (fun f ->
                if f <> !entering then
                  match vals.(f) with
                  | V3.One -> inv := not !inv
                  | V3.Zero -> ()
                  | V3.X -> derivable := false)
              fi
          | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
            Array.iter
              (fun f ->
                if f <> !entering then
                  match non_controlling g with
                  | Some nc when not (V3.equal vals.(f) nc) ->
                    derivable := false
                  | Some _ | None -> ())
              fi
          | Gate.Not | Gate.Buf -> ())
       | Circuit.Input | Circuit.Const _ | Circuit.Dff _ ->
         derivable := false);
      entering := gnet)
    seg.Scan.path;
  if !derivable then Some !inv else None

(* Structural validity of one segment: the recorded path must be a
   connected combinational route from [src] to the data pin of [dst_ff].
   Returns [false] when broken, so dependent rules can skip the segment. *)
let check_path ctx ~chain ~segment (seg : Scan.segment) add =
  let c = ctx.c in
  match Circuit.node c seg.Scan.dst_ff with
  | Circuit.Input | Circuit.Const _ | Circuit.Gate _ ->
    add
      (error ctx ~rule:"E-SCAN-SHAPE" ~chain ~segment seg.Scan.dst_ff
         "segment destination %S is not a flip-flop" (name ctx seg.Scan.dst_ff));
    false
  | Circuit.Dff data ->
    let ok = ref true in
    let entering = ref seg.Scan.src in
    Array.iter
      (fun gnet ->
        if !ok then begin
          (match Circuit.node c gnet with
           | Circuit.Gate (_, fi) when Array.exists (fun f -> f = !entering) fi ->
             ()
           | Circuit.Gate _ ->
             add
               (error ctx ~rule:"E-SCAN-PATH" ~chain ~segment gnet
                  "path net %S does not read the previous path net %S"
                  (name ctx gnet) (name ctx !entering));
             ok := false
           | Circuit.Input | Circuit.Const _ | Circuit.Dff _ ->
             add
               (error ctx ~rule:"E-SCAN-PATH" ~chain ~segment gnet
                  "path net %S is not a logic gate" (name ctx gnet));
             ok := false);
          entering := gnet
        end)
      seg.Scan.path;
    if !ok && !entering <> data then begin
      add
        (error ctx ~rule:"E-SCAN-PATH" ~chain ~segment seg.Scan.dst_ff
           "segment route ends at %S but the data pin of flip-flop %S reads \
            %S"
           (name ctx !entering)
           (name ctx seg.Scan.dst_ff)
           (name ctx data));
      ok := false
    end;
    !ok

(* Forward structural cone of a net: every net a change could reach,
   crossing gates and flip-flops (the steady-state view that classification
   uses). *)
let forward_cone c start =
  let n = Circuit.num_nets c in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun consumer ->
        if not seen.(consumer) then begin
          seen.(consumer) <- true;
          Queue.add consumer queue
        end)
      c.Circuit.fanout.(v)
  done;
  seen

(* Combinational depth (in logic levels) of every net in the scan-enable's
   fanout cone; [-1] outside. Propagation stops at flip-flops: past a
   register the signal is state, not combinational scan control. The
   inserted idioms put the scan-enable at most two levels from a side pin
   (test point through the scan-enable inverter, the hold leg of a scan
   multiplexer); anything deeper means mission logic mixes scan control
   into the chain data path. *)
let se_depths c se =
  let n = Circuit.num_nets c in
  let depth = Array.make n (-1) in
  depth.(se) <- 0;
  let queue = Queue.create () in
  Queue.add se queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun consumer ->
        if depth.(consumer) = -1 then
          match Circuit.node c consumer with
          | Circuit.Gate _ ->
            depth.(consumer) <- depth.(v) + 1;
            Queue.add consumer queue
          | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
      c.Circuit.fanout.(v)
  done;
  depth

let scan ctx ~limits (config : Scan.config) =
  let c = ctx.c in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let constrained n = List.mem_assoc n config.Scan.constraints in
  (* Scan-enable must exist as a primary input held at 1. *)
  (match Circuit.node c config.Scan.scan_mode with
   | Circuit.Input -> ()
   | _ ->
     add
       (error ctx ~rule:"E-SCAN-MODE" config.Scan.scan_mode
          "scan-enable %S is not a primary input"
          (name ctx config.Scan.scan_mode)));
  (match List.assoc_opt config.Scan.scan_mode config.Scan.constraints with
   | Some V3.One -> ()
   | Some v ->
     add
       (error ctx ~rule:"E-SCAN-MODE" config.Scan.scan_mode
          "scan-enable %S is constrained to %c, not 1, in scan mode"
          (name ctx config.Scan.scan_mode) (V3.to_char v))
   | None ->
     add
       (error ctx ~rule:"E-SCAN-MODE" config.Scan.scan_mode
          "scan-mode constraints do not pin scan-enable %S to 1"
          (name ctx config.Scan.scan_mode)));
  let vals = Scan.scan_mode_values c config in
  (* Chain membership: every flip-flop on at most one chain position; the
     ones on none are invisible to the chain test. *)
  let membership = Hashtbl.create 64 in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun p ff ->
          Hashtbl.replace membership ff
            ((ch.Scan.index, p)
             :: (try Hashtbl.find membership ff with Not_found -> [])))
        ch.Scan.ffs)
    config.Scan.chains;
  Hashtbl.fold (fun ff locs acc -> (ff, List.rev locs) :: acc) membership []
  |> List.sort Stdlib.compare
  |> List.iter (fun (ff, locs) ->
         match locs with
         | _ :: _ :: _ ->
           let render (ci, p) = Printf.sprintf "chain %d position %d" ci p in
           add
             (error ctx ~rule:"E-SCAN-DUP-FF" ff
                "flip-flop %S sits on %d chain positions (%s)" (name ctx ff)
                (List.length locs)
                (String.concat ", " (List.map render locs)))
         | [] | [ _ ] -> ());
  Array.iter
    (fun ff ->
      if not (Hashtbl.mem membership ff) then
        add
          (warning ctx ~rule:"W-SCAN-NOCHAIN" ff
             "flip-flop %S is on no scan chain: it is neither loadable nor \
              observable through the chain test"
             (name ctx ff)))
    c.Circuit.dffs;
  (* Per-chain shape, then per-segment rules. *)
  Array.iter
    (fun ch ->
      let chain = ch.Scan.index in
      let len = Array.length ch.Scan.ffs in
      (match Circuit.node c ch.Scan.scan_in with
       | Circuit.Input ->
         if constrained ch.Scan.scan_in then
           add
             (error ctx ~rule:"E-SCAN-SI" ~chain ch.Scan.scan_in
                "scan-in %S is constrained to a constant in scan mode: the \
                 chain cannot be loaded"
                (name ctx ch.Scan.scan_in))
       | _ ->
         add
           (error ctx ~rule:"E-SCAN-SI" ~chain ch.Scan.scan_in
              "scan-in %S is not a primary input" (name ctx ch.Scan.scan_in)));
      if len = 0 then
        add
          (error ctx ~rule:"E-SCAN-SHAPE" ~chain ch.Scan.scan_in
             "chain %d has no flip-flops" chain)
      else begin
        if ch.Scan.scan_out <> ch.Scan.ffs.(len - 1) then
          add
            (error ctx ~rule:"E-SCAN-SO" ~chain ch.Scan.scan_out
               "scan-out %S is not the last flip-flop of chain %d (%S)"
               (name ctx ch.Scan.scan_out)
               chain
               (name ctx ch.Scan.ffs.(len - 1)));
        if not (Circuit.is_output c ch.Scan.scan_out) then
          add
            (error ctx ~rule:"E-SCAN-SO" ~chain ch.Scan.scan_out
               "scan-out %S of chain %d is not a primary output: the loaded \
                response cannot be observed"
               (name ctx ch.Scan.scan_out)
               chain)
      end;
      if Array.length ch.Scan.segments <> len then
        add
          (error ctx ~rule:"E-SCAN-SHAPE" ~chain ch.Scan.scan_in
             "chain %d has %d flip-flops but %d segments" chain len
             (Array.length ch.Scan.segments))
      else
        Array.iteri
          (fun s (seg : Scan.segment) ->
            let segment = s in
            let expected_src =
              if s = 0 then ch.Scan.scan_in else ch.Scan.ffs.(s - 1)
            in
            if seg.Scan.src <> expected_src then
              add
                (error ctx ~rule:"E-SCAN-SHAPE" ~chain ~segment seg.Scan.src
                   "segment %d of chain %d starts at %S, expected %S" s chain
                   (name ctx seg.Scan.src) (name ctx expected_src));
            if seg.Scan.dst_ff <> ch.Scan.ffs.(s) then
              add
                (error ctx ~rule:"E-SCAN-SHAPE" ~chain ~segment seg.Scan.dst_ff
                   "segment %d of chain %d loads %S, expected %S" s chain
                   (name ctx seg.Scan.dst_ff)
                   (name ctx ch.Scan.ffs.(s)))
            else if check_path ctx ~chain ~segment seg add then begin
              (* The static complement of [Scan.verify_shift]: every side
                 input along the route must be provably non-controlling
                 under the scan-mode constants. *)
              let sens_ok = ref true in
              List.iter
                (fun (node, pin, side) ->
                  match Circuit.node c node with
                  | Circuit.Gate (g, _) ->
                    let v = vals.(side) in
                    let bad_req =
                      match non_controlling g with
                      | Some nc ->
                        if V3.equal v nc then None
                        else Some (Printf.sprintf "%c" (V3.to_char nc))
                      | None ->
                        (match g with
                         | Gate.Xor | Gate.Xnor ->
                           if V3.is_binary v then None
                           else Some "a binary value"
                         | _ -> None)
                    in
                    (match bad_req with
                     | None -> ()
                     | Some need ->
                       sens_ok := false;
                       add
                         (error ctx ~rule:"E-SCAN-SENS" ~chain ~segment side
                            "side input %S (pin %d of %s %S) is %c under \
                             scan-mode constants; a sensitized shift path \
                             needs %s"
                            (name ctx side) pin
                            (Gate.to_string g) (name ctx node)
                            (V3.to_char v) need))
                  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
                (Scan.side_pins c config ~chain ~segment);
              (* Parity: the recorded inversion flag must match the one
                 re-derived from gate types and xor side constants —
                 [Scan.scan_in_stream] and classification both trust it. *)
              (if !sens_ok then
                 match static_parity c vals seg with
                 | Some inv when inv <> seg.Scan.invert ->
                   add
                     (error ctx ~rule:"E-SCAN-PARITY" ~chain ~segment
                        seg.Scan.dst_ff
                        "segment %d of chain %d records invert=%b but the \
                         path re-derives invert=%b"
                        s chain seg.Scan.invert inv)
                 | Some _ | None -> ());
              (* Shift-speed lint: a long combinational route between two
                 chain flip-flops limits scan clocking. *)
              let delay =
                Array.fold_left
                  (fun acc gnet ->
                    match Circuit.node c gnet with
                    | Circuit.Gate (g, _) ->
                      acc + limits.delay_model.Timing.gate_delay g
                    | _ -> acc)
                  0 seg.Scan.path
              in
              if delay > limits.max_segment_delay then
                add
                  (warning ctx ~rule:"W-SCAN-DEPTH" ~chain ~segment
                     seg.Scan.dst_ff
                     "segment %d of chain %d crosses %d gates (delay %d > \
                      limit %d): the shift path limits scan clock speed"
                     s chain
                     (Array.length seg.Scan.path)
                     delay limits.max_segment_delay)
            end)
          ch.Scan.segments)
    config.Scan.chains;
  (* Scan-enable mixed into chain data: a side pin fed by the scan-enable
     through two or more logic levels is mission logic, not an inserted
     test point. *)
  let depth = se_depths c config.Scan.scan_mode in
  (* X sources with a structural cone reaching a segment's side pins: the
     category-2 hotspot prediction. A fault in such a cone can re-open the
     blocked X path, which is exactly how classification finds hard
     faults. *)
  let scan_ins =
    Array.fold_left
      (fun acc ch -> ch.Scan.scan_in :: acc)
      [ config.Scan.scan_mode ] config.Scan.chains
  in
  let x_sources =
    let acc = ref [] in
    for i = Circuit.num_nets c - 1 downto 0 do
      (match Circuit.node c i with
       | Circuit.Const V3.X -> acc := (i, "CONSTX") :: !acc
       | Circuit.Input
         when (not (constrained i)) && not (List.mem i scan_ins) ->
         acc := (i, "free input") :: !acc
       | Circuit.Dff _ when not (Hashtbl.mem membership i) ->
         acc := (i, "unscanned flip-flop") :: !acc
       | _ -> ())
    done;
    !acc
  in
  let seg_hits = Hashtbl.create 64 in
  List.iter
    (fun (src, kind) ->
      let cone = forward_cone c src in
      Array.iter
        (fun ch ->
          Array.iteri
            (fun s _ ->
              let sides =
                Scan.side_pins c config ~chain:ch.Scan.index ~segment:s
              in
              if List.exists (fun (_, _, side) -> cone.(side)) sides then
                let key = (ch.Scan.index, s) in
                Hashtbl.replace seg_hits key
                  ((src, kind)
                   :: (try Hashtbl.find seg_hits key with Not_found -> [])))
            ch.Scan.segments)
        config.Scan.chains)
    x_sources;
  Array.iter
    (fun ch ->
      Array.iteri
        (fun s (seg : Scan.segment) ->
          let chain = ch.Scan.index in
          List.iter
            (fun (node, _pin, side) ->
              if depth.(side) >= 3 then
                add
                  (warning ctx ~rule:"W-SCAN-SE-DATA" ~chain ~segment:s side
                     "scan-enable reaches side input %S of %S through %d \
                      logic levels: mission logic mixes scan control into \
                      the chain data path"
                     (name ctx side) (name ctx node) depth.(side)))
            (Scan.side_pins c config ~chain ~segment:s);
          match Hashtbl.find_opt seg_hits (chain, s) with
          | None -> ()
          | Some hits ->
            let hits = List.sort Stdlib.compare (List.rev hits) in
            let show (src, kind) =
              Printf.sprintf "%s %S" kind (name ctx src)
            in
            let shown = List.filteri (fun i _ -> i < 3) hits in
            let suffix =
              if List.length hits > 3 then
                Printf.sprintf " and %d more" (List.length hits - 3)
              else ""
            in
            add
              (warning ctx ~rule:"W-SCAN-X" ~chain ~segment:s
                 seg.Scan.dst_ff
                 "%d X-source(s) structurally reach the side inputs of \
                  segment %d of chain %d (%s%s): category-2 hotspot — a \
                  fault in these cones can feed X into the shift path"
                 (List.length hits) s chain
                 (String.concat ", " (List.map show shown))
                 suffix))
        ch.Scan.segments)
    config.Scan.chains;
  !diags

(* --- static-analysis lint ------------------------------------------------ *)

(* Findings of the phase-0 static analysis ({!Fst_sca.Sca}) under the
   scan-mode constants: gate nets proven constant (the downstream logic
   never sees them toggle) and collapsed faults with machine-checked
   untestability proofs (patterns targeting them are redundant). Both are
   capped like the testability rules, with an overflow summary line. *)
let sca ctx ~limits (config : Scan.config) =
  let module Sca = Fst_sca.Sca in
  let module Fault = Fst_fault.Fault in
  let c = ctx.c in
  let view = View.scan_mode c ~constraints:config.Scan.constraints () in
  let faults = Fault.collapse c (Fault.universe c) in
  let t = Sca.analyze view ~faults in
  let cap = limits.max_testability_reports in
  let capped ~rule ~severity ~more all =
    let shown = List.filteri (fun k _ -> k < cap) all in
    if List.length all > cap then
      shown
      @ [
          D.make ~rule ~severity
            (Printf.sprintf "...and %d more %s" (List.length all - cap) more);
        ]
    else shown
  in
  let reason_text = function
    | Some Sca.Tied -> "tied source"
    | Some (Sca.Forward n) ->
      Printf.sprintf "implied by the fanins of %S" (name ctx n)
    | Some (Sca.Backward { node; pin }) ->
      Printf.sprintf "justified from the output of %S (pin %d)"
        (name ctx node) pin
    | Some (Sca.Learned n) ->
      Printf.sprintf "common consequence of every justification of %S"
        (name ctx n)
    | Some Sca.Assumed | None -> "constant propagation"
  in
  let consts = ref [] in
  for i = Circuit.num_nets c - 1 downto 0 do
    match Circuit.node c i with
    | Circuit.Gate _ when V3.is_binary t.Sca.base.(i) ->
      consts :=
        info ctx ~rule:"I-CONST-NET" i
          "gate net %S is constant %c under the scan-mode constants (%s)"
          (name ctx i)
          (V3.to_char t.Sca.base.(i))
          (reason_text t.Sca.base_reason.(i))
        :: !consts
    | Circuit.Gate _ | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
  done;
  let proof_text = function
    | Sca.Unexcitable -> "unexcitable: the site cannot take the opposite value"
    | Sca.Unobservable blockers ->
      Printf.sprintf
        "unobservable: every propagation path crosses one of %d blocked \
         gate(s)"
        (List.length blockers)
    | Sca.Fire { m; _ } ->
      Printf.sprintf "detection is blocked under both values of net %S"
        (name ctx m)
    | Sca.Requires { net; value; _ } ->
      Printf.sprintf "detection requires %S = %c, which is refuted"
        (name ctx net) (V3.to_char value)
    | Sca.Dominated f ->
      Printf.sprintf "dominated by proven-untestable %s" (Fault.to_string c f)
  in
  let redundant =
    List.map
      (fun (u : Sca.untestable) ->
        warning ctx ~rule:"W-TEST-REDUNDANT"
          (Fault.site_net c u.Sca.fault)
          "fault %s is statically proven untestable (%s); test patterns \
           targeting it are redundant"
          (Fault.to_string c u.Sca.fault)
          (proof_text u.Sca.proof))
      t.Sca.untestable
  in
  capped ~rule:"W-TEST-REDUNDANT" ~severity:D.Warning
    ~more:"statically untestable faults" redundant
  @ capped ~rule:"I-CONST-NET" ~severity:D.Info ~more:"constant gate nets"
      !consts

(* --- testability lint ---------------------------------------------------- *)

(* SCOAP thresholds over the unconstrained combinational view (all primary
   inputs and flip-flop outputs free): flags regions that are intrinsically
   hard to control or observe, independent of any scan configuration. *)
let testability ctx ~limits =
  let c = ctx.c in
  let view = View.scan_mode c ~constraints:[] () in
  let scoap = Fst_testability.Scoap.compute view in
  let gates = ref [] in
  for i = Circuit.num_nets c - 1 downto 0 do
    match Circuit.node c i with
    | Circuit.Gate _ -> gates := i :: !gates
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
  done;
  let open Fst_testability in
  let flag ~rule ~measure ~limit ~describe =
    let bad =
      List.filter_map
        (fun i ->
          let m = measure i in
          if m >= limit then Some (i, m) else None)
        !gates
      |> List.sort (fun (i, m) (j, m') ->
             if m <> m' then Stdlib.compare m' m else Stdlib.compare i j)
    in
    let cap = limits.max_testability_reports in
    let shown = List.filteri (fun k _ -> k < cap) bad in
    let out =
      List.map (fun (i, m) -> warning ctx ~rule i "%s" (describe i m)) shown
    in
    if List.length bad > cap then
      out
      @ [
          D.make ~rule ~severity:D.Warning
            (Printf.sprintf "...and %d more nets at or above the threshold"
               (List.length bad - cap));
        ]
    else out
  in
  let show_cost m =
    if m >= Scoap.infinite then "unreachable" else string_of_int m
  in
  flag ~rule:"W-TEST-CC"
    ~measure:(fun i -> max scoap.Scoap.cc0.(i) scoap.Scoap.cc1.(i))
    ~limit:limits.cc_limit
    ~describe:(fun i _ ->
      Printf.sprintf
        "net %S is hard to control (SCOAP cc0=%s cc1=%s, limit %d)"
        (name ctx i)
        (show_cost scoap.Scoap.cc0.(i))
        (show_cost scoap.Scoap.cc1.(i))
        limits.cc_limit)
  @ flag ~rule:"W-TEST-OBS"
      ~measure:(fun i -> scoap.Scoap.obs.(i))
      ~limit:limits.obs_limit
      ~describe:(fun i _ ->
        Printf.sprintf
          "net %S is hard to observe (SCOAP obs=%s, limit %d)" (name ctx i)
          (show_cost scoap.Scoap.obs.(i))
          limits.obs_limit)
