(** Lint driver: run the {!Rules} passes, order and de-duplicate the
    findings, apply waivers, render text or JSON, and gate an exit status.

    A lint run is a pure observer: it never modifies the circuit or the
    scan configuration it is given. *)

open Fst_netlist
open Fst_tpi

(** A waiver (baseline) file: a set of {!Diagnostic.key} strings. Matching
    diagnostics are moved aside instead of counted, so known findings can
    be frozen while new ones still gate CI. *)
module Waiver : sig
  type t

  val empty : t

  (** One key per line; blank lines and [#] comments ignored. *)
  val of_string : string -> t

  (** [load path] reads a waiver file; a missing file is the empty set. *)
  val load : string -> t

  val covers : t -> Diagnostic.t -> bool

  (** [save path diags] writes a waiver file covering [diags], each key
      annotated with its message as a comment. *)
  val save : string -> Diagnostic.t list -> unit
end

type report = {
  circuit : string;
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
  waived : Diagnostic.t list;  (** findings suppressed by the waiver set *)
  errors : int;  (** error count among [diagnostics] *)
  warnings : int;  (** warning count among [diagnostics] *)
  infos : int;  (** info count among [diagnostics]; never gates CI *)
}

(** [run c] lints an elaborated circuit: structural DRC, plus — when
    [config] is given — the scan-DFT rules and the {!Rules.sca} static
    analysis ([W-TEST-REDUNDANT]/[I-CONST-NET]), plus the SCOAP
    testability rules. [dynamic:true] additionally runs {!Fst_tpi.Scan.verify_shift}
    and renders its failures as [E-SCAN-SHIFT] diagnostics, cross-checking
    the static sensitization analysis. [lines]/[file] locate findings in
    the netlist source (see {!Fst_netlist.Netfile.parse_file_loc}). *)
val run :
  ?limits:Rules.limits ->
  ?lines:int array ->
  ?file:string ->
  ?config:Scan.config ->
  ?dynamic:bool ->
  ?waivers:Waiver.t ->
  Circuit.t ->
  report

(** [run_raw raw] lints a pre-elaboration parse: duplicate definitions and
    combinational cycles, each reported exhaustively where elaboration
    would abort on the first. *)
val run_raw :
  ?limits:Rules.limits -> ?waivers:Waiver.t -> Netfile.raw -> report

type fail_on = Fail_error | Fail_warning | Fail_never

(** [gate ~fail_on report] is [false] when the report should fail CI. *)
val gate : fail_on:fail_on -> report -> bool

(** [render report] is the text rendering: one compiler-style line per
    diagnostic plus a summary line. *)
val render : report -> string

val to_json : report -> Fst_obs.Json.t

(** The rule catalogue: [(rule id, severity, one-line description)],
    in catalogue order. *)
val catalogue : (string * Diagnostic.severity * string) list
