(** Severity-ranked, source-located lint diagnostics.

    Every finding carries a stable rule id ([E-NET-*], [E-SCAN-*],
    [W-TEST-*], ...), a location (net, source line, chain/segment when the
    finding is about a scan path) and a one-line message. Ordering is total
    and deterministic, so a lint run renders identically across runs and
    machines — a requirement for CI gating and baseline files. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

type location = {
  file : string option;  (** source file, when the netlist came from one *)
  line : int option;  (** 1-based definition line of [net] *)
  net : int option;  (** net id in the analyzed circuit *)
  net_name : string option;
  chain : int option;  (** scan-chain index *)
  segment : int option;  (** segment index within [chain] *)
}

val no_loc : location

(** [at c net] locates a diagnostic on a net of circuit [c], picking up the
    net name and, when a line table is given, the source line. *)
val at :
  ?lines:int array -> ?file:string -> Fst_netlist.Circuit.t -> int -> location

type t = {
  rule : string;  (** stable id, e.g. ["E-SCAN-SENS"] *)
  severity : severity;
  loc : location;
  message : string;
}

val make :
  rule:string -> severity:severity -> ?loc:location -> string -> t

(** Total deterministic order: errors first, then warnings, then infos,
    then by rule id, chain, segment, net, line, message. *)
val compare : t -> t -> int

(** [key d] is the stable waiver/baseline key:
    [RULE@net-name[@chain.segment]]. It omits line numbers so a waiver
    survives unrelated edits above the definition. *)
val key : t -> string

(** [to_string d] renders one line, compiler-style:
    [file:line: error RULE: message] (location pieces omitted when
    absent). *)
val to_string : t -> string

val to_json : t -> Fst_obs.Json.t

(** [of_shift_error c e] renders a dynamic {!Fst_tpi.Scan.verify_shift}
    failure as an [E-SCAN-SHIFT] diagnostic, so the CLI reports static and
    dynamic scan-chain findings uniformly. *)
val of_shift_error :
  ?lines:int array -> ?file:string ->
  Fst_netlist.Circuit.t -> Fst_tpi.Scan.shift_error -> t
