(** The lint rule passes.

    Three families, each a pure function from circuit (plus optional scan
    configuration / raw parse) to diagnostics:

    - {!structural} / {!raw_structural}: netlist DRC ([E-NET-*],
      [W-NET-*]);
    - {!scan}: scan-DFT rules on a {!Fst_tpi.Scan.config} ([E-SCAN-*],
      [W-SCAN-*]) — including the static complement of
      {!Fst_tpi.Scan.verify_shift};
    - {!sca}: static-analysis findings from {!Fst_sca.Sca}
      ([W-TEST-REDUNDANT], [I-CONST-NET]);
    - {!testability}: SCOAP threshold lint ([W-TEST-*]).

    All passes only read their inputs; diagnostics are returned unsorted
    (the {!Lint} driver orders and de-duplicates them). *)

open Fst_netlist
open Fst_tpi

(** Tunable thresholds for the warning-class rules. *)
type limits = {
  max_segment_delay : int;
      (** [W-SCAN-DEPTH]: flag segments whose path delay exceeds this *)
  delay_model : Timing.model;  (** delay model for [W-SCAN-DEPTH] *)
  cc_limit : int;
      (** [W-TEST-CC]: flag gate nets with [max cc0 cc1 >= cc_limit] *)
  obs_limit : int;  (** [W-TEST-OBS]: flag gate nets with [obs >= obs_limit] *)
  max_testability_reports : int;
      (** cap per testability rule; a summary line reports the overflow *)
}

(** [max_segment_delay = 24] (unit delays), SCOAP limits at
    {!Fst_testability.Scoap.infinite} (only unreachable nets flagged), 10
    reports per testability rule. *)
val default_limits : limits

(** Location context threaded through a lint run: the circuit plus the
    optional net→source-line table and file name from
    {!Fst_netlist.Netfile.parse_file_loc}. *)
type ctx

val ctx : ?lines:int array -> ?file:string -> Circuit.t -> ctx

val structural : ctx -> Diagnostic.t list

(** Rules only expressible before elaboration: every duplicate definition
    ([E-NET-DUP], citing both lines) and every combinational cycle
    ([E-NET-CYCLE], with the full loop path). *)
val raw_structural : Netfile.raw -> Diagnostic.t list

val scan : ctx -> limits:limits -> Scan.config -> Diagnostic.t list

(** [sca ctx ~limits config] runs the {!Fst_sca.Sca} static analysis on
    the scan-mode view under [config]'s constraints, over the collapsed
    fault universe: every statically proven untestable fault becomes a
    [W-TEST-REDUNDANT] warning (with its proof summarized), every gate
    net proven constant an [I-CONST-NET] info (with its derivation). Both
    are capped by [limits.max_testability_reports]. *)
val sca : ctx -> limits:limits -> Scan.config -> Diagnostic.t list

val testability : ctx -> limits:limits -> Diagnostic.t list
