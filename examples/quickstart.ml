(* Quickstart: the paper's Figure 2 in twenty lines.

   Builds a tiny sequential circuit, lets TPI establish a functional scan
   chain through its AND gate, and shows why the traditional alternating
   sequence is not enough: a stuck-at fault on the gate's side input
   changes the chain's behaviour in a way the 0011 pattern can miss, while
   the three-step flow finds a test for every such fault.

   Run with:  dune exec examples/quickstart.exe *)

open Fst_logic
open Fst_netlist
open Fst_tpi
open Fst_core

let build_circuit () =
  let b = Builder.create ~name:"figure2" () in
  let pi = Builder.add_input ~name:"pi" b in
  let ff0 = Builder.add_dff_placeholder ~name:"ff0" b in
  let ff1 = Builder.add_dff_placeholder ~name:"ff1" b in
  let ff2 = Builder.add_dff_placeholder ~name:"ff2" b in
  (* Functional logic between the flip-flops. *)
  let g0 = Builder.add_gate ~name:"g0" b Gate.And [ pi; ff0 ] in
  let g1 = Builder.add_gate ~name:"g1" b Gate.Nand [ g0; ff2 ] in
  let po = Builder.add_gate ~name:"po" b Gate.Not [ ff2 ] in
  Builder.connect_dff b ~ff:ff1 ~data:g0;
  Builder.connect_dff b ~ff:ff2 ~data:g1;
  Builder.connect_dff b ~ff:ff0 ~data:po;
  Builder.mark_output b po;
  Builder.freeze b

let () =
  let circuit = build_circuit () in
  Format.printf "Mission circuit:   %a@." Circuit.pp_stats circuit;

  (* Step 0: test point insertion establishes a functional scan chain. *)
  let scanned, config = Tpi.insert circuit in
  Format.printf "After TPI:         %a@." Circuit.pp_stats scanned;
  Format.printf "%a@." (Scan.pp_config scanned) config;
  (match Scan.verify_shift_msg scanned config with
   | Ok () -> print_endline "Scan chain shifts correctly in scan mode."
   | Error e -> failwith e);

  (* The complete functional scan chain testing flow. *)
  let r = Flow.run scanned config in
  let total = Flow.total_faults r in
  Printf.printf "\nFault universe: %d collapsed stuck-at faults\n" total;
  Printf.printf "  category 1 (alternating sequence catches them): %d\n"
    (Array.length r.Flow.classify.Classify.easy);
  Printf.printf "  category 2 (hard — may escape the alternating sequence): %d\n"
    (Array.length r.Flow.classify.Classify.hard);
  Printf.printf "  category 3 (chain untouched): %d\n"
    (total - r.Flow.classify.Classify.affecting);

  Printf.printf "\nStep 2 — combinational ATPG + sequential fault simulation:\n";
  Printf.printf "  %d detected, %d proven untestable, %d left for step 3\n"
    r.Flow.step2.Flow.detected r.Flow.step2.Flow.untestable
    r.Flow.step2.Flow.undetected;

  Printf.printf "Step 3 — sequential ATPG on chain-aware reduced models:\n";
  Printf.printf "  %d detected, %d proven untestable, %d undetected\n"
    r.Flow.step3.Flow.detected r.Flow.step3.Flow.untestable
    r.Flow.step3.Flow.undetected;

  Printf.printf "\nFinal undetected chain-affecting faults: %d of %d (%.3f%%)\n"
    (List.length r.Flow.undetected)
    (Flow.affecting r)
    (100.0
    *. float_of_int (List.length r.Flow.undetected)
    /. float_of_int (max 1 (Flow.affecting r)));
  List.iter
    (fun f -> Printf.printf "  undetected: %s\n" (Fst_fault.Fault.to_string scanned f))
    r.Flow.undetected
