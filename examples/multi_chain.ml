(* Multiple scan chains: larger designs split their flip-flops over several
   chains to keep shift time down. A fault can then touch one chain, or
   several; faults touching more than one chain always get an individual
   sequential-ATPG model (paper, section 5), while the rest are grouped by
   the distance parameters.

   This example builds a four-chain design, classifies its faults, and
   prints the chain-location footprints and grouping statistics that drive
   step 3.

   Run with:  dune exec examples/multi_chain.exe *)

open Fst_netlist
open Fst_tpi
open Fst_core
module Table = Fst_report.Table

let profile =
  {
    Fst_gen.Gen.name = "datapath";
    gates = 1400;
    ffs = 96;
    pis = 24;
    pos = 16;
    seed = 77L;
  }

let () =
  let circuit = Fst_gen.Gen.generate profile in
  let scanned, config = Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 4; justify_depth = 4 } circuit in
  Format.printf "%a@.%a@.@." Circuit.pp_stats scanned (Scan.pp_config scanned) config;

  let faults = Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned) in
  let cls = Classify.run scanned config faults in

  (* Footprints of the hard faults. *)
  let footprints =
    Array.to_list cls.Classify.hard
    |> List.mapi (fun k i ->
           let info = cls.Classify.infos.(i) in
           Group.footprint_of ~index:k
             ~locations:
               (List.map (fun (c, s, _) -> (c, s)) info.Classify.locations))
  in
  let multi_chain, single_chain =
    List.partition (fun fp -> List.length fp.Group.spans > 1) footprints
  in
  Printf.printf "%d hard faults: %d touch a single chain, %d touch several chains\n"
    (List.length footprints) (List.length single_chain)
    (List.length multi_chain);

  (* Per-chain fault pressure. *)
  let t =
    Table.create ~title:"Chain-affecting faults per chain"
      [ ("chain", Table.Right); ("length", Table.Right); ("#hard touching it", Table.Right) ]
  in
  Array.iter
    (fun ch ->
      let touching =
        List.length
          (List.filter
             (fun fp -> List.mem_assoc ch.Scan.index fp.Group.spans)
             footprints)
      in
      Table.row t
        [
          Table.cell_int ch.Scan.index;
          Table.cell_int (Array.length ch.Scan.ffs);
          Table.cell_int touching;
        ])
    config.Scan.chains;
  Table.print t;

  (* Grouping with the paper's distance parameters. *)
  let maxsize = Sequences.max_chain_length config in
  let dist = Group.paper_params ~maxsize ~floor_scale:0.1 in
  let groups = Group.make dist footprints in
  let solos, shareds, clusters =
    List.fold_left
      (fun (s, h, c) g ->
        match g with
        | Group.Solo _ -> (s + 1, h, c)
        | Group.Shared _ -> (s, h + 1, c)
        | Group.Cluster _ -> (s, h, c + 1))
      (0, 0, 0) groups
  in
  Printf.printf
    "\nGrouping (LARGE=%d MED=%d DIST=%d): %d solo models, %d shared models, %d clusters\n"
    dist.Group.large dist.Group.med dist.Group.dist solos shareds clusters;

  (* Run the flow end to end. *)
  let r =
    Flow.run
      ~config:Config.(default |> with_dist_floor_scale 0.1)
      scanned config
  in
  Printf.printf
    "\nFlow: step2 detected %d / untestable %d; step3 detected %d / untestable %d; undetected %d\n"
    r.Flow.step2.Flow.detected r.Flow.step2.Flow.untestable
    r.Flow.step3.Flow.detected r.Flow.step3.Flow.untestable
    (List.length r.Flow.undetected)
