# Convenience targets for local development and CI.

.PHONY: all build test check static-check lint-smoke bench-smoke \
  perf-smoke degradation-smoke resume-smoke obs-smoke noop-sink-smoke \
  engine-matrix chaos-smoke analyze-smoke sca-smoke serve-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full local gate: compile everything (all warnings fatal in dev, see the
# root dune env stanza), run the test suite, then smoke-run the micro
# benchmark at a tiny scale so bench/ rot is caught early, lint every
# example netlist, and exercise the budget-degradation, checkpoint/resume,
# and observability CLI paths.
check: static-check build test lint-smoke bench-smoke perf-smoke \
  degradation-smoke resume-smoke obs-smoke noop-sink-smoke engine-matrix \
  chaos-smoke analyze-smoke sca-smoke serve-smoke

# Type-check every library and executable (including ones @default would
# skip); the dev env stanza promotes warnings to errors.
static-check:
	dune build @check

# `fst lint` over every example netlist with scan insertion must be clean
# at error level; a seeded-defect netlist must fail; the --json rendering
# must machine-validate with `fst jsonlint`.
lint-smoke: build
	@for f in examples/data/*.net; do \
	  $(FST_EXE) lint $$f -c 1 --fail-on error > /dev/null || \
	    { echo "lint-smoke: $$f not clean at error level"; exit 1; }; \
	  echo "lint-smoke: $$f clean"; \
	done; \
	tmp=`mktemp -d`; \
	printf 'INPUT(a)\nOUTPUT(y)\ny = AND(a, b)\nb = OR(y, a)\n' \
	  > $$tmp/seeded.net; \
	if $(FST_EXE) lint $$tmp/seeded.net --no-scan --fail-on error \
	  > /dev/null 2>&1; \
	then echo "lint-smoke: seeded defect not caught"; rm -rf $$tmp; exit 1; \
	fi; \
	$(FST_EXE) lint examples/data/gray3.net -c 1 --json > $$tmp/lint.json; \
	$(FST_EXE) jsonlint $$tmp/lint.json --expect '"version"' \
	  --expect '"diagnostics"' --expect '"errors":0' || \
	  { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "lint-smoke: OK"

bench-smoke:
	FST_SCALE=0.02 dune exec -- bench/main.exe micro

# Scaled-down fault-sim perf gate: re-measures the engine columns and
# fails if bit-parallel is ever slower than serial on the same faults
# (the committed BENCH_fsim.json is generated at a larger scale, so the
# >20% regression comparison only arms when scales match — here the
# structural invariants still hold and bench/ rot is caught).
perf-smoke:
	FST_SCALE=0.02 dune exec -- bench/main.exe fsim --check

FST_EXE := ./_build/default/bin/fst.exe
SMOKE_FLOW := flow -n s1423 --scale 0.25 -j 1
# Multicore variant for the observability smoke: per-domain pool metrics
# only exist when the pool actually spins up helper domains.
SMOKE_FLOW_MT := flow -n s1423 --scale 0.25 -j 2

# A near-zero wall-clock budget must exit cleanly with non-zero abort
# accounting (greppable `aborts:` lines), never crash or hang.
degradation-smoke: build
	@out=`$(FST_EXE) $(SMOKE_FLOW) --time-budget 0.001` || \
	  { echo "degradation-smoke: flow exited non-zero"; exit 1; }; \
	echo "$$out" | grep -q "budget_exhausted=true" || \
	  { echo "degradation-smoke: budget not reported exhausted"; exit 1; }; \
	echo "$$out" | grep -Eq "aborted_faults=[1-9]" || \
	  { echo "degradation-smoke: no aborted faults reported"; exit 1; }; \
	echo "degradation-smoke: OK"

# A checkpointed run resumed from its file must print the same report as a
# fresh uninterrupted run (timing lines filtered out).
resume-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) $(SMOKE_FLOW) | grep -v "CPU" > $$tmp/fresh.txt; \
	$(FST_EXE) $(SMOKE_FLOW) --checkpoint $$tmp/ck > /dev/null; \
	$(FST_EXE) $(SMOKE_FLOW) --checkpoint $$tmp/ck --resume \
	  | grep -v "CPU" > $$tmp/resumed.txt; \
	diff $$tmp/fresh.txt $$tmp/resumed.txt || \
	  { echo "resume-smoke: resumed report differs"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "resume-smoke: OK"

# The full observability path: trace + metrics + events + heartbeat on a
# small flow, then machine-validate every artifact with `fst jsonlint`.
obs-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) $(SMOKE_FLOW_MT) --trace $$tmp/trace.json \
	  --metrics $$tmp/metrics.json --events $$tmp/events.jsonl \
	  --progress > /dev/null 2> $$tmp/stderr.txt || \
	  { echo "obs-smoke: flow exited non-zero"; rm -rf $$tmp; exit 1; }; \
	grep -q "^\[flow\]" $$tmp/stderr.txt || \
	  { echo "obs-smoke: no heartbeat on stderr"; rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) jsonlint $$tmp/trace.json --expect traceEvents \
	  --expect '"cat":"phase"' || { rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) jsonlint $$tmp/metrics.json \
	  --expect atpg.podem.backtracks --expect busy_frac || \
	  { rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) jsonlint $$tmp/events.jsonl --expect phase_start \
	  --expect phase_end || { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "obs-smoke: OK"

# Observability must be a pure observer: the report of an instrumented
# jobs=1 run is identical to the plain run (timing lines filtered, like
# resume-smoke).
noop-sink-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) $(SMOKE_FLOW) | grep -v "CPU" > $$tmp/plain.txt; \
	$(FST_EXE) $(SMOKE_FLOW) --trace $$tmp/t.json --metrics $$tmp/m.json \
	  --events $$tmp/e.jsonl 2> /dev/null | grep -v "CPU" > $$tmp/obs.txt; \
	diff $$tmp/plain.txt $$tmp/obs.txt || \
	  { echo "noop-sink-smoke: instrumented report differs"; \
	    rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "noop-sink-smoke: OK"

# Every fault-simulation back-end must print the identical flow report
# (timing lines filtered) on a real example and on a generated mid-size
# circuit: the engine selector is a pure performance knob.
engine-matrix: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) gen --gates 400 --ffs 24 -o $$tmp/gen.net > /dev/null; \
	for f in examples/data/counter4.net $$tmp/gen.net; do \
	  for e in serial parallel event auto; do \
	    $(FST_EXE) flow $$f -c 1 -j 1 --engine $$e | grep -v "CPU" \
	      > $$tmp/`basename $$f`.$$e.txt || \
	      { echo "engine-matrix: $$f --engine $$e failed"; \
	        rm -rf $$tmp; exit 1; }; \
	  done; \
	  for e in parallel event auto; do \
	    diff $$tmp/`basename $$f`.serial.txt $$tmp/`basename $$f`.$$e.txt || \
	      { echo "engine-matrix: $$f: $$e differs from serial"; \
	        rm -rf $$tmp; exit 1; }; \
	  done; \
	  echo "engine-matrix: `basename $$f` identical across engines"; \
	done; \
	rm -rf $$tmp; echo "engine-matrix: OK"

# Seeded chaos injection under --keep-going must still produce a full
# report whose buckets partition the hard faults (the flow self-checks
# and prints `chaos: invariant ok`), on a real example and a generated
# circuit, and the structured event log must stay machine-valid.
chaos-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) gen --gates 300 --ffs 16 -o $$tmp/gen.net > /dev/null; \
	for f in examples/data/counter4.net $$tmp/gen.net; do \
	  for seed in 3 7; do \
	    out=`$(FST_EXE) flow $$f -c 1 -j 1 --keep-going \
	      --chaos $$seed --chaos-p 0.08 \
	      --events $$tmp/events.jsonl 2> /dev/null` || \
	      { echo "chaos-smoke: $$f seed=$$seed exited non-zero"; \
	        rm -rf $$tmp; exit 1; }; \
	    echo "$$out" | grep -q "chaos: invariant ok" || \
	      { echo "chaos-smoke: $$f seed=$$seed invariant violated"; \
	        rm -rf $$tmp; exit 1; }; \
	    $(FST_EXE) jsonlint $$tmp/events.jsonl --expect phase_start \
	      --expect phase_end || { rm -rf $$tmp; exit 1; }; \
	  done; \
	  echo "chaos-smoke: `basename $$f` OK"; \
	done; \
	rm -rf $$tmp; echo "chaos-smoke: OK"

# The run-artifact round trip: `fst flow --obs-dir` must emit a
# machine-valid artifact set (run.json schema + OpenMetrics exposition
# checked by jsonlint), `fst analyze` must render the report and pass
# the regression gate against an identical baseline, and a baseline
# doctored to make the current run look slower must fail it.
analyze-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) gen --gates 400 --ffs 24 -o $$tmp/gen.net > /dev/null; \
	for f in examples/data/counter4.net $$tmp/gen.net; do \
	  rm -rf $$tmp/obs $$tmp/base; \
	  $(FST_EXE) flow $$f -c 1 -j 2 --obs-dir $$tmp/obs \
	    > /dev/null 2> /dev/null || \
	    { echo "analyze-smoke: flow --obs-dir failed on $$f"; \
	      rm -rf $$tmp; exit 1; }; \
	  $(FST_EXE) jsonlint $$tmp/obs/run.json --expect fst-run/1 \
	    --expect '"phases"' --expect '"timeline"' || \
	    { rm -rf $$tmp; exit 1; }; \
	  $(FST_EXE) jsonlint $$tmp/obs/metrics.prom --expect '# EOF' \
	    --expect atpg_podem_runs_total || { rm -rf $$tmp; exit 1; }; \
	  $(FST_EXE) jsonlint $$tmp/obs/events.jsonl --expect phase_start || \
	    { rm -rf $$tmp; exit 1; }; \
	  $(FST_EXE) analyze $$tmp/obs > /dev/null || \
	    { echo "analyze-smoke: report failed on $$f"; rm -rf $$tmp; exit 1; }; \
	  cp -r $$tmp/obs $$tmp/base; \
	  $(FST_EXE) analyze $$tmp/obs --baseline $$tmp/base > /dev/null || \
	    { echo "analyze-smoke: self-diff reported a regression on $$f"; \
	      rm -rf $$tmp; exit 1; }; \
	  sed -E 's/"wall_s":[0-9.eE+-]+/"wall_s":1e-9/' \
	    $$tmp/base/run.json > $$tmp/base/run.json.tmp && \
	    mv $$tmp/base/run.json.tmp $$tmp/base/run.json; \
	  if $(FST_EXE) analyze $$tmp/obs --baseline $$tmp/base > /dev/null; \
	  then echo "analyze-smoke: doctored baseline not caught on $$f"; \
	    rm -rf $$tmp; exit 1; \
	  fi; \
	  echo "analyze-smoke: `basename $$f` OK"; \
	done; \
	rm -rf $$tmp; echo "analyze-smoke: OK"

# `fst sca` over every example netlist must exit 0 (the command re-checks
# every emitted proof and fails on any mismatch); a seeded-redundancy
# netlist must yield at least one proven-untestable fault; the --json
# rendering must machine-validate with `fst jsonlint`.
sca-smoke: build
	@for f in examples/data/*.net; do \
	  $(FST_EXE) sca $$f -c 1 > /dev/null || \
	    { echo "sca-smoke: $$f proofs failed re-checking"; exit 1; }; \
	  echo "sca-smoke: $$f OK"; \
	done; \
	tmp=`mktemp -d`; \
	printf 'INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nt = OR(a, na)\nq = DFF(y)\ny = AND(t, b)\n' \
	  > $$tmp/redundant.net; \
	$(FST_EXE) sca $$tmp/redundant.net -c 1 > $$tmp/sca.txt || \
	  { echo "sca-smoke: seeded netlist proofs failed re-checking"; \
	    rm -rf $$tmp; exit 1; }; \
	grep -q "^untestable:" $$tmp/sca.txt || \
	  { echo "sca-smoke: seeded redundancy not proven untestable"; \
	    rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) sca $$tmp/redundant.net -c 1 --json > $$tmp/sca.json; \
	$(FST_EXE) jsonlint $$tmp/sca.json --expect '"version"' \
	  --expect '"untestable"' --expect '"proof"' || \
	  { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "sca-smoke: OK"

# The service round trip: start a daemon on a Unix socket, submit the same
# netlist twice (the second must be a cache hit with a bit-identical
# report), machine-validate the streamed event log, then shut the daemon
# down over the protocol and require a clean exit.
serve-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) serve --socket $$tmp/sock --log $$tmp/serve.jsonl \
	  2> $$tmp/serve.err & pid=$$!; \
	for i in `seq 1 100`; do [ -S $$tmp/sock ] && break; sleep 0.05; done; \
	[ -S $$tmp/sock ] || \
	  { echo "serve-smoke: daemon never bound its socket"; \
	    cat $$tmp/serve.err; rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) submit --socket $$tmp/sock examples/data/counter4.net \
	  -c 1 -j 1 --events $$tmp/events.jsonl \
	  > $$tmp/cold.txt 2> $$tmp/cold.err || \
	  { echo "serve-smoke: cold submit failed"; rm -rf $$tmp; exit 1; }; \
	grep -q "cached=false" $$tmp/cold.err || \
	  { echo "serve-smoke: cold submit unexpectedly cached"; \
	    rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) submit --socket $$tmp/sock examples/data/counter4.net \
	  -c 1 -j 1 > $$tmp/warm.txt 2> $$tmp/warm.err || \
	  { echo "serve-smoke: warm submit failed"; rm -rf $$tmp; exit 1; }; \
	grep -q "cached=true" $$tmp/warm.err || \
	  { echo "serve-smoke: identical resubmit not served from cache"; \
	    rm -rf $$tmp; exit 1; }; \
	diff $$tmp/cold.txt $$tmp/warm.txt || \
	  { echo "serve-smoke: cache hit report not bit-identical"; \
	    rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) jsonlint $$tmp/events.jsonl --expect phase_start \
	  --expect phase_end || { rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) jsonlint $$tmp/serve.jsonl --expect job_submitted \
	  --expect job_done --expect cache_hit || { rm -rf $$tmp; exit 1; }; \
	$(FST_EXE) submit --socket $$tmp/sock --shutdown > /dev/null || \
	  { echo "serve-smoke: shutdown request failed"; rm -rf $$tmp; exit 1; }; \
	wait $$pid || { echo "serve-smoke: daemon exited non-zero"; \
	  rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "serve-smoke: OK"

clean:
	dune clean
