# Convenience targets for local development and CI.

.PHONY: all build test check bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full local gate: compile everything, run the test suite, then smoke-run
# the micro benchmark at a tiny scale so bench/ rot is caught early.
check: build test bench-smoke

bench-smoke:
	FST_SCALE=0.02 dune exec -- bench/main.exe micro

clean:
	dune clean
