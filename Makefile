# Convenience targets for local development and CI.

.PHONY: all build test check bench-smoke degradation-smoke resume-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full local gate: compile everything, run the test suite, then smoke-run
# the micro benchmark at a tiny scale so bench/ rot is caught early, and
# exercise the budget-degradation and checkpoint/resume CLI paths.
check: build test bench-smoke degradation-smoke resume-smoke

bench-smoke:
	FST_SCALE=0.02 dune exec -- bench/main.exe micro

FST_EXE := ./_build/default/bin/fst.exe
SMOKE_FLOW := flow -n s1423 --scale 0.25 -j 1

# A near-zero wall-clock budget must exit cleanly with non-zero abort
# accounting (greppable `aborts:` lines), never crash or hang.
degradation-smoke: build
	@out=`$(FST_EXE) $(SMOKE_FLOW) --time-budget 0.001` || \
	  { echo "degradation-smoke: flow exited non-zero"; exit 1; }; \
	echo "$$out" | grep -q "budget_exhausted=true" || \
	  { echo "degradation-smoke: budget not reported exhausted"; exit 1; }; \
	echo "$$out" | grep -Eq "aborted_faults=[1-9]" || \
	  { echo "degradation-smoke: no aborted faults reported"; exit 1; }; \
	echo "degradation-smoke: OK"

# A checkpointed run resumed from its file must print the same report as a
# fresh uninterrupted run (timing lines filtered out).
resume-smoke: build
	@tmp=`mktemp -d`; \
	$(FST_EXE) $(SMOKE_FLOW) | grep -v "CPU" > $$tmp/fresh.txt; \
	$(FST_EXE) $(SMOKE_FLOW) --checkpoint $$tmp/ck > /dev/null; \
	$(FST_EXE) $(SMOKE_FLOW) --checkpoint $$tmp/ck --resume \
	  | grep -v "CPU" > $$tmp/resumed.txt; \
	diff $$tmp/fresh.txt $$tmp/resumed.txt || \
	  { echo "resume-smoke: resumed report differs"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; echo "resume-smoke: OK"

clean:
	dune clean
