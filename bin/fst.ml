(* fst — functional scan chain testing driver.

   Every subcommand lives in lib/cli (one Fst_cli.Cmd_* module each,
   described by a Fst_cli.Spec flag table that also generates its
   --help); this file only dispatches. *)

let () = exit (Fst_cli.Cli.main ())
