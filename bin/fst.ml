(* fst — functional scan chain testing driver.

   Subcommands:
     gen    generate a benchmark circuit and write it as a netlist file
     stats  print circuit statistics
     tpi    insert functional scan chains and write the scanned netlist
     opt    netlist clean-up passes (fold, bypass, sweep, refanin)
     sca    static analysis: constants, implications, untestability proofs
     flow   run the complete scan-chain-testing flow and print the report
     alt    classification only: the easy/hard split of Table 2
     diag   inject a chain defect and run scan-chain diagnosis *)

open Fst_netlist
open Fst_tpi
open Fst_core
module Table = Fst_report.Table

let read_circuit path =
  try Ok (Netfile.parse_file path) with
  | Netfile.Parse_error { file; line; message } ->
    Error
      (Printf.sprintf "%s:%d: %s" (Option.value ~default:path file) line message)
  | Circuit.Malformed message | Circuit.Combinational_cycle message ->
    Error (Printf.sprintf "%s: %s" path message)
  | Sys_error e -> Error e

let load ~name ~scale ~file =
  match file, name with
  | Some path, _ -> read_circuit path
  | None, Some n -> (
    match Fst_gen.Suite.find ~scale n with
    | entry -> Ok (Fst_gen.Gen.generate entry.Fst_gen.Suite.profile)
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown suite circuit %S (see `fst gen --list`)" n))
  | None, None -> Error "pass a netlist FILE or --name CIRCUIT"

let insert_chains circuit chains =
  let scanned, config =
    Tpi.insert ~options:{ Tpi.default_options with Tpi.chains } circuit
  in
  match Scan.verify_shift scanned config with
  | Ok () -> Ok (scanned, config)
  | Error errs ->
    (* Render dynamic shift failures through the lint diagnostic machinery,
       one compiler-style line each, same as `fst lint` output. *)
    List.iter
      (fun e ->
        prerr_endline
          (Fst_lint.Diagnostic.to_string
             (Fst_lint.Diagnostic.of_shift_error scanned e)))
      errs;
    Error
      (Printf.sprintf "scan chain verification failed (%d position(s))"
         (List.length errs))

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline ("fst: " ^ e);
    exit 1

(* --- gen ---------------------------------------------------------- *)

let run_gen name scale out list_only gates ffs pis pos seed =
  if list_only then begin
    List.iter
      (fun e ->
        let p = e.Fst_gen.Suite.profile in
        Printf.printf "%-8s %6d gates %5d FFs %3d PIs %3d POs %d chain(s)\n"
          p.Fst_gen.Gen.name p.Fst_gen.Gen.gates p.Fst_gen.Gen.ffs
          p.Fst_gen.Gen.pis p.Fst_gen.Gen.pos e.Fst_gen.Suite.chains)
      (Fst_gen.Suite.suite ~scale ());
    0
  end
  else begin
    let circuit =
      match gates with
      | Some g ->
        Fst_gen.Gen.generate
          {
            Fst_gen.Gen.name = Option.value ~default:"custom" name;
            gates = g;
            ffs;
            pis;
            pos;
            seed = Int64.of_int seed;
          }
      | None ->
        or_die (load ~name ~scale ~file:None)
    in
    (match out with
     | Some path -> Netfile.write_file circuit path
     | None -> print_string (Netfile.to_string circuit));
    Format.eprintf "%a@." Circuit.pp_stats circuit;
    0
  end

(* --- stats -------------------------------------------------------- *)

let run_stats file =
  let circuit = or_die (read_circuit file) in
  Format.printf "%a@." Circuit.pp_stats circuit;
  Printf.printf "collapsed faults: %d\n"
    (Array.length (Fst_fault.Fault.collapse circuit (Fst_fault.Fault.universe circuit)));
  0

(* --- tpi ---------------------------------------------------------- *)

let run_tpi file chains out =
  let circuit = or_die (read_circuit file) in
  let scanned, config = or_die (insert_chains circuit chains) in
  Format.printf "%a@.%a@." Circuit.pp_stats scanned
    (Scan.pp_config scanned) config;
  let oh = Tpi.overhead scanned config ~before:circuit in
  Printf.printf
    "overhead: %d extra gates, %d dedicated routes, %d functional segments\n"
    oh.Tpi.extra_gates oh.Tpi.dedicated_routes oh.Tpi.functional_segments;
  (match out with
   | Some path ->
     Netfile.write_file scanned path;
     Printf.printf "scanned netlist written to %s\n" path
   | None -> ());
  0

(* --- opt ---------------------------------------------------------- *)

let run_opt file out =
  let circuit = or_die (read_circuit file) in
  let optimized, stats = Opt.optimize circuit in
  Format.printf "before: %a@.after:  %a@.%a@." Circuit.pp_stats circuit
    Circuit.pp_stats optimized Opt.pp_stats stats;
  (match out with
   | Some path ->
     Netfile.write_file optimized path;
     Printf.printf "optimized netlist written to %s\n" path
   | None -> ());
  0

(* --- lint --------------------------------------------------------- *)

module Lint = Fst_lint.Lint
module Diagnostic = Fst_lint.Diagnostic

let print_lint_report ~json report =
  if json then (
    Fst_obs.Json.to_channel stdout (Lint.to_json report);
    print_newline ())
  else print_string (Lint.render report)

(* Lint a netlist file: raw-parse first so duplicate definitions and
   combinational cycles are all reported (elaboration would abort on the
   first); when the raw netlist is clean, elaborate, optionally insert the
   scan chains, and run the full rule set with the dynamic shift check
   cross-checking the static sensitization analysis. *)
let run_lint file chains no_scan json fail_on waiver_path update_waiver
    list_rules =
  if list_rules then begin
    List.iter
      (fun (rule, severity, desc) ->
        Printf.printf "%-18s %-8s %s\n" rule
          (Diagnostic.severity_to_string severity)
          desc)
      Lint.catalogue;
    0
  end
  else begin
    let path =
      match file with
      | Some p -> p
      | None -> or_die (Error "pass a netlist FILE (or --rules)")
    in
    let waivers =
      match waiver_path with
      | Some p -> Lint.Waiver.load p
      | None -> Lint.Waiver.empty
    in
    let parse_diag message =
      Diagnostic.make ~rule:"E-NET-PARSE" ~severity:Diagnostic.Error
        ~loc:{ Diagnostic.no_loc with Diagnostic.file = Some path }
        message
    in
    let report =
      match
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Netfile.parse_raw
          ~name:Filename.(remove_extension (basename path))
          ~file:path text
      with
      | exception Sys_error e ->
        { Lint.circuit = path; diagnostics = [ parse_diag e ]; waived = [];
          errors = 1; warnings = 0; infos = 0 }
      | exception Netfile.Parse_error { file = _; line; message } ->
        let d =
          Diagnostic.make ~rule:"E-NET-PARSE" ~severity:Diagnostic.Error
            ~loc:{ Diagnostic.no_loc with Diagnostic.file = Some path;
                   line = Some line }
            message
        in
        { Lint.circuit = path; diagnostics = [ d ]; waived = [];
          errors = 1; warnings = 0; infos = 0 }
      | raw ->
        let pre = Lint.run_raw ~waivers raw in
        if pre.Lint.errors > 0 then pre
        else begin
          match Netfile.elaborate raw with
          | exception Circuit.Malformed message ->
            { Lint.circuit = raw.Netfile.raw_name;
              diagnostics = [ parse_diag message ]; waived = [];
              errors = 1; warnings = 0; infos = 0 }
          | circuit ->
            let lines = raw.Netfile.raw_lines in
            if no_scan then
              Lint.run ~lines ~file:path ~waivers circuit
            else
              let scanned, config =
                Tpi.insert
                  ~options:{ Tpi.default_options with Tpi.chains }
                  circuit
              in
              Lint.run ~lines ~file:path ~config ~dynamic:true ~waivers
                scanned
        end
    in
    match update_waiver, waiver_path with
    | true, Some p ->
      Lint.Waiver.save p (report.Lint.diagnostics @ report.Lint.waived);
      Printf.printf "waiver file %s updated (%d key(s))\n" p
        (List.length report.Lint.diagnostics
         + List.length report.Lint.waived);
      0
    | true, None -> or_die (Error "--update-waiver requires --waiver PATH")
    | false, _ ->
      print_lint_report ~json report;
      if Lint.gate ~fail_on report then 0 else 1
  end

(* --- flow --------------------------------------------------------- *)

let print_flow_report r =
  let cls = r.Flow.classify in
  let total = Flow.total_faults r in
  let t =
    Table.create ~title:"Functional scan chain testing report"
      [ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.row t [ "total collapsed faults"; Table.cell_int total ];
  Table.row t
    [ "affecting the chain"; Table.cell_int_pct (Flow.affecting r) ~of_:total ];
  Table.row t
    [ "  category 1 (easy)"; Table.cell_int (Array.length cls.Classify.easy) ];
  Table.row t
    [ "  category 2 (hard)"; Table.cell_int (Array.length cls.Classify.hard) ];
  Table.rule t;
  Table.row t
    [
      "statically untestable";
      Table.cell_int (List.length r.Flow.untestable_static);
    ];
  Table.row t [ "step 2 detected"; Table.cell_int r.Flow.step2.Flow.detected ];
  Table.row t [ "step 2 untestable"; Table.cell_int r.Flow.step2.Flow.untestable ];
  Table.row t [ "step 2 vectors"; Table.cell_int r.Flow.step2.Flow.vectors ];
  Table.row t
    [
      "step 2 CPU";
      Table.cell_seconds
        (r.Flow.step2.Flow.atpg_seconds +. r.Flow.step2.Flow.fsim_seconds);
    ];
  Table.rule t;
  Table.row t [ "step 3 detected"; Table.cell_int r.Flow.step3.Flow.detected ];
  Table.row t [ "step 3 untestable"; Table.cell_int r.Flow.step3.Flow.untestable ];
  Table.row t
    [
      "step 3 circuits";
      Printf.sprintf "%d+%d" r.Flow.step3.Flow.group_circuits
        r.Flow.step3.Flow.final_circuits;
    ];
  Table.row t [ "step 3 CPU"; Table.cell_seconds r.Flow.step3.Flow.seconds ];
  Table.rule t;
  (* Aggregate ATPG engine statistics — previously computed and thrown
     away by the call sites. *)
  let a = r.Flow.atpg in
  Table.row t [ "PODEM runs"; Table.cell_int a.Flow.podem_runs ];
  Table.row t [ "PODEM backtracks"; Table.cell_int a.Flow.podem_backtracks ];
  Table.row t [ "PODEM decisions"; Table.cell_int a.Flow.podem_decisions ];
  Table.row t [ "PODEM implications"; Table.cell_int a.Flow.podem_implications ];
  Table.row t
    [
      "PODEM aborts (limit/deadline)";
      Printf.sprintf "%d/%d" a.Flow.podem_aborted_limit
        a.Flow.podem_aborted_deadline;
    ];
  Table.row t [ "seq ATPG runs"; Table.cell_int a.Flow.seq_runs ];
  Table.row t [ "seq ATPG backtracks"; Table.cell_int a.Flow.seq_backtracks ];
  Table.rule t;
  Table.row t
    [ "undetected"; Table.cell_int_pct (List.length r.Flow.undetected) ~of_:total ];
  (if Flow.budget_exhausted r.Flow.aborts then begin
     Table.rule t;
     Table.row t
       [ "aborted (budget)"; Table.cell_int r.Flow.aborts.Flow.aborted_faults ];
     Table.row t
       [ "ATPG aborts"; Table.cell_int (Flow.atpg_aborts r.Flow.aborts) ];
     Table.row t
       [ "cancelled groups"; Table.cell_int (Flow.cancelled_groups r.Flow.aborts) ]
   end);
  (if r.Flow.aborts.Flow.failed_faults > 0 then begin
     Table.rule t;
     Table.row t
       [ "failed (quarantined)"; Table.cell_int r.Flow.aborts.Flow.failed_faults ]
   end);
  Table.print t;
  (* One greppable line per phase for scripts and the degradation smoke. *)
  List.iter
    (fun p ->
      if p.Flow.budget_exhausted || p.Flow.atpg_aborts > 0
         || p.Flow.cancelled_groups > 0 || p.Flow.failed > 0 then
        Printf.printf
          "aborts: phase=%s budget_exhausted=%b atpg_aborts=%d \
           cancelled_groups=%d failed=%d\n"
          p.Flow.phase p.Flow.budget_exhausted p.Flow.atpg_aborts
          p.Flow.cancelled_groups p.Flow.failed)
    r.Flow.aborts.Flow.phases;
  if r.Flow.aborts.Flow.aborted_faults > 0 then
    Printf.printf "aborts: aborted_faults=%d\n" r.Flow.aborts.Flow.aborted_faults;
  if r.Flow.aborts.Flow.failed_faults > 0 then
    Printf.printf "aborts: failed_faults=%d\n" r.Flow.aborts.Flow.failed_faults;
  List.iter
    (fun f ->
      Printf.printf "undetected: %s\n" (Fst_fault.Fault.to_string r.Flow.scanned f))
    r.Flow.undetected;
  List.iter
    (fun f ->
      Printf.printf "failed: %s\n" (Fst_fault.Fault.to_string r.Flow.scanned f))
    r.Flow.failed

(* Builds the observability sink requested on the command line, plus the
   action that writes the collected data out once the flow is done. With
   no observability flag the null sink is installed and the run stays
   bit-identical to an uninstrumented one. *)
let make_sink ~trace ~metrics ~events ~progress =
  if trace = None && metrics = None && events = None && not progress then
    (Fst_obs.Sink.null, fun () -> ())
  else begin
    let tr =
      match trace with Some _ -> Some (Fst_obs.Trace.create ()) | None -> None
    in
    let ev_oc = Option.map (fun path -> (path, open_out path)) events in
    let ev = Option.map (fun (_, oc) -> Fst_obs.Events.to_channel oc) ev_oc in
    let pr = if progress then Some (Fst_obs.Progress.create ()) else None in
    let sink = Fst_obs.Sink.create ?trace:tr ?events:ev ?progress:pr () in
    let finish () =
      (match trace, tr with
       | Some path, Some tr ->
         let oc = open_out path in
         Fst_obs.Json.to_channel oc (Fst_obs.Trace.to_json tr);
         close_out oc;
         Printf.eprintf "trace: %d events written to %s\n%!"
           (Fst_obs.Trace.event_count tr)
           path
       | _ -> ());
      (match metrics with
       | Some path ->
         let oc = open_out path in
         Fst_obs.Json.to_channel oc
           (Fst_obs.Metrics.to_json sink.Fst_obs.Sink.metrics);
         close_out oc;
         Printf.eprintf "metrics: written to %s\n%!" path
       | None -> ());
      match ev_oc with
      | Some (path, oc) ->
        close_out oc;
        Printf.eprintf "events: written to %s\n%!" path
      | None -> ()
    in
    (sink, finish)
  end

(* The flow's fault accounting as JSON, appended to run.json so the
   analyzer can attribute aborts/failures per phase cohort. *)
let flow_accounting r =
  let module J = Fst_obs.Json in
  let a = r.Flow.aborts in
  J.Obj
    [
      ( "detected",
        J.Int (r.Flow.step2.Flow.detected + r.Flow.step3.Flow.detected) );
      ("undetected", J.Int (List.length r.Flow.undetected));
      ("untestable", J.Int (List.length r.Flow.untestable_faults));
      ("untestable_static", J.Int (List.length r.Flow.untestable_static));
      ("aborted_faults", J.Int a.Flow.aborted_faults);
      ("failed_faults", J.Int a.Flow.failed_faults);
      ( "phases",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("phase", J.String p.Flow.phase);
                   ("budget_exhausted", J.Bool p.Flow.budget_exhausted);
                   ("atpg_aborts", J.Int p.Flow.atpg_aborts);
                   ("cancelled_groups", J.Int p.Flow.cancelled_groups);
                   ("failed", J.Int p.Flow.failed);
                 ])
             a.Flow.phases) );
    ]

(* One line on stderr saying exactly where a --resume run's state came
   from — primary checkpoint, the .prev last-good rotation, or (with the
   precise reason) nowhere. *)
let print_resume = function
  | `Loaded Fst_core.Checkpoint.Primary ->
    Printf.eprintf "resume: loaded checkpoint\n%!"
  | `Loaded Fst_core.Checkpoint.Recovered ->
    Printf.eprintf "resume: primary checkpoint unusable, recovered from \
                    .prev\n%!"
  | `Failed err ->
    Printf.eprintf "resume: starting fresh (%s)\n%!"
      (Fst_core.Checkpoint.error_to_string err)

let run_flow name scale file chains engine jobs time_budget keep_going
    fail_fast chaos chaos_p checkpoint resume trace metrics events progress
    preflight obs_dir no_sca =
  let circuit = or_die (load ~name ~scale ~file) in
  let scanned, config = or_die (insert_chains circuit chains) in
  let artifacts =
    match obs_dir with
    | Some dir ->
      if trace <> None || metrics <> None || events <> None then
        or_die
          (Error
             "--obs-dir already writes trace.json/metrics.prom/events.jsonl; \
              drop --trace/--metrics/--events");
      Some (Fst_obs.Artifacts.create ~dir)
    | None -> None
  in
  let sink, finish_obs =
    match artifacts with
    | Some a ->
      let pr = if progress then Some (Fst_obs.Progress.create ()) else None in
      (Fst_obs.Artifacts.sink ?progress:pr a, fun () -> ())
    | None -> make_sink ~trace ~metrics ~events ~progress
  in
  let on_error =
    match keep_going, fail_fast with
    | true, true -> or_die (Error "--keep-going and --fail-fast conflict")
    | true, false -> Some `Keep_going
    | false, true -> Some `Fail_fast
    | false, false -> None
  in
  let cfg =
    or_die
      (Fst_core.Config.of_cli ~engine ~jobs ~scale ?time_budget ?on_error
         ~preflight ~sink ())
  in
  let cfg =
    if no_sca then
      Fst_core.Config.(cfg |> with_sca_prune false |> with_sca_implications false)
    else cfg
  in
  if resume && checkpoint = None then
    or_die (Error "--resume requires --checkpoint PATH");
  (match chaos with
   | Some seed ->
     let plan = Fst_exec.Chaos.plan_of_seed ~p:chaos_p seed in
     Fst_exec.Chaos.install plan;
     Printf.eprintf "chaos: seed=%d p=%g injections=%d\n%!" seed chaos_p
       (List.length plan)
   | None -> ());
  let r =
    Flow.run ~config:cfg ?checkpoint ~resume ~on_resume:print_resume scanned
      config
  in
  Fst_exec.Chaos.clear ();
  print_flow_report r;
  (* Under chaos the run's one obligation is the partition invariant:
     every hard fault is accounted for exactly once. *)
  if chaos <> None then begin
    let hard = Array.length r.Flow.classify.Fst_core.Classify.hard in
    let accounted =
      r.Flow.step2.Flow.detected + r.Flow.step3.Flow.detected
      + List.length r.Flow.untestable_faults
      + List.length r.Flow.untestable_static
      + List.length r.Flow.undetected
      + List.length r.Flow.aborted + List.length r.Flow.failed
    in
    if accounted = hard then Printf.printf "chaos: invariant ok\n"
    else
      or_die
        (Error
           (Printf.sprintf
              "chaos: invariant violated (%d accounted of %d hard faults)"
              accounted hard))
  end;
  (match artifacts, obs_dir with
   | Some a, Some dir ->
     let module J = Fst_obs.Json in
     let config_json =
       let head =
         [
           ("circuit", J.String scanned.Circuit.name);
           ( "jobs_effective",
             J.Int
               (Fst_exec.Pool.effective_jobs ~jobs:cfg.Fst_core.Config.jobs
                  max_int) );
         ]
       in
       match Fst_core.Config.to_json cfg with
       | J.Obj kvs -> J.Obj (head @ kvs)
       | j -> j
     in
     Fst_obs.Artifacts.write ~config:config_json
       ~extra:[ ("flow", flow_accounting r) ]
       a;
     Printf.eprintf "obs: artifacts written to %s\n%!" dir
   | _ -> finish_obs ());
  0

(* --- jsonlint ----------------------------------------------------- *)

(* Validation helper for the make-check smokes: parse each file as JSON
   (or, for .jsonl files, as one JSON object per line), validate the
   run-artifact formats structurally (.prom via the OpenMetrics checker,
   run.json via its schema check), and optionally require substrings,
   e.g. metric names that must be present. *)
let run_jsonlint files expects =
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let lint path =
    let text = try Ok (read_all path) with Sys_error e -> Error e in
    match text with
    | Error e -> Error e
    | Ok text ->
      let parse () =
        if Filename.check_suffix path ".prom" then
          match Fst_obs.Openmetrics.validate text with
          | Ok () -> ()
          | Error m -> failwith m
        else if Filename.check_suffix path ".jsonl" then
          String.split_on_char '\n' text
          |> List.iteri (fun i line ->
                 if String.trim line <> "" then
                   try ignore (Fst_obs.Json.of_string line)
                   with Fst_obs.Json.Parse_error m ->
                     failwith (Printf.sprintf "line %d: %s" (i + 1) m))
        else begin
          let j = Fst_obs.Json.of_string text in
          if Filename.basename path = "run.json" then
            match Fst_obs.Artifacts.validate_run j with
            | Ok () -> ()
            | Error m -> failwith m
        end
      in
      (match parse () with
       | () ->
         let missing =
           List.filter
             (fun needle ->
               (* substring search *)
               let nl = String.length needle and tl = String.length text in
               let rec at i =
                 if i + nl > tl then true
                 else if String.sub text i nl = needle then false
                 else at (i + 1)
               in
               at 0)
             expects
         in
         if missing = [] then Ok ()
         else
           Error
             (Printf.sprintf "missing expected content: %s"
                (String.concat ", " missing))
       | exception Fst_obs.Json.Parse_error m -> Error m
       | exception Failure m -> Error m)
  in
  let failures =
    List.filter_map
      (fun path ->
        match lint path with
        | Ok () ->
          Printf.printf "jsonlint: %s OK\n" path;
          None
        | Error e ->
          Printf.eprintf "jsonlint: %s: %s\n" path e;
          Some path)
      files
  in
  if failures = [] then 0 else 1

(* --- analyze ------------------------------------------------------ *)

module Analyze = Fst_obs.Analyze

(* A baseline argument can be an artifact directory, a run.json file, or
   a BENCH_flow.json (whose circuit is picked to match the current run's
   config, multicore variant preferred, overridable with --circuit). *)
let load_baseline path ~circuit ~(cur : Analyze.run) =
  if Sys.file_exists path && Sys.is_directory path then
    Result.map fst (Analyze.load_dir path)
  else
    match Analyze.load_run path with
    | Ok r -> Ok r
    | Error run_err -> (
      match Analyze.load_bench path with
      | Error _ -> Error run_err
      | Ok runs -> (
        let name =
          match circuit with
          | Some c -> Some c
          | None -> (
            match Fst_obs.Json.member "circuit" cur.Analyze.config with
            | Some (Fst_obs.Json.String c) -> Some c
            | _ -> None)
        in
        match name with
        | None ->
          Error
            (path
             ^ ": bench baseline needs --circuit NAME (current run.json \
                names no circuit)")
        | Some c -> (
          match
            ( List.assoc_opt (c ^ "/multicore") runs,
              List.assoc_opt (c ^ "/serial") runs )
          with
          | Some r, _ | None, Some r -> Ok r
          | None, None ->
            Error
              (Printf.sprintf "%s: no circuit %S in bench baseline (have: %s)"
                 path c
                 (String.concat ", " (List.map fst runs))))))

let run_analyze dir baseline circuit json_out threshold top =
  let cur, spans = or_die (Analyze.load_dir dir) in
  match baseline with
  | None ->
    if json_out then (
      Fst_obs.Json.to_channel stdout (Analyze.diff_to_json []);
      print_newline ())
    else print_string (Analyze.render_report ~k:top cur spans);
    0
  | Some b ->
    let base = or_die (load_baseline b ~circuit ~cur) in
    let entries = Analyze.diff ~threshold:(threshold /. 100.0) base cur in
    if json_out then (
      Fst_obs.Json.to_channel stdout (Analyze.diff_to_json entries);
      print_newline ())
    else begin
      print_string (Analyze.render_report ~k:top cur spans);
      Printf.printf "\ndiff vs %s (threshold %g%%):\n" b threshold;
      print_string (Analyze.render_diff entries)
    end;
    if Analyze.regressions entries = [] then 0 else 1

(* --- alt ---------------------------------------------------------- *)

let run_alt name scale file chains =
  let circuit = or_die (load ~name ~scale ~file) in
  let scanned, config = or_die (insert_chains circuit chains) in
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let cls = Classify.run scanned config faults in
  let total = Array.length faults in
  Printf.printf
    "%d faults; %d affect the chain (%.1f%%): %d easy (alternating sequence), %d hard\n"
    total cls.Classify.affecting
    (100.0 *. float_of_int cls.Classify.affecting /. float_of_int total)
    (Array.length cls.Classify.easy)
    (Array.length cls.Classify.hard);
  0

(* --- sca ---------------------------------------------------------- *)

(* The flow's phase-0 static analysis, standalone: build the scan-mode
   view, run constant propagation, the implication engine and the
   untestability prover over the collapsed fault universe, and print the
   statistics plus one greppable line per proven fault. Every shipped
   proof is re-checked; a mismatch fails the exit status, so the
   make-check smoke gates soundness too. *)
let run_sca name scale file chains json =
  let circuit = or_die (load ~name ~scale ~file) in
  let scanned, config = or_die (insert_chains circuit chains) in
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let view =
    View.scan_mode scanned ~constraints:config.Scan.constraints ()
  in
  let t = Fst_sca.Sca.analyze view ~faults in
  let s = t.Fst_sca.Sca.stats in
  if json then begin
    Fst_obs.Json.to_channel stdout (Fst_sca.Sca.to_json t);
    print_newline ()
  end
  else begin
    let tbl =
      Table.create ~title:"Static circuit analysis"
        [ ("metric", Table.Left); ("value", Table.Right) ]
    in
    Table.row tbl [ "nets"; Table.cell_int s.Fst_sca.Sca.nets ];
    Table.row tbl [ "target faults"; Table.cell_int s.Fst_sca.Sca.targets ];
    Table.row tbl
      [ "constant gate nets"; Table.cell_int s.Fst_sca.Sca.constants ];
    Table.row tbl
      [ "implication edges"; Table.cell_int s.Fst_sca.Sca.implications ];
    Table.row tbl [ "  learned"; Table.cell_int s.Fst_sca.Sca.learned ];
    Table.row tbl
      [ "impossible literals"; Table.cell_int s.Fst_sca.Sca.impossible ];
    Table.row tbl
      [ "dominance edges"; Table.cell_int s.Fst_sca.Sca.dominance_edges ];
    Table.row tbl
      [
        "proven untestable";
        Table.cell_int_pct s.Fst_sca.Sca.untestable ~of_:s.Fst_sca.Sca.targets;
      ];
    Table.row tbl [ "CPU"; Table.cell_seconds s.Fst_sca.Sca.seconds ];
    Table.print tbl;
    List.iter
      (fun (u : Fst_sca.Sca.untestable) ->
        let kind =
          match u.Fst_sca.Sca.proof with
          | Fst_sca.Sca.Unexcitable -> "unexcitable"
          | Fst_sca.Sca.Unobservable _ -> "unobservable"
          | Fst_sca.Sca.Fire _ -> "fire-split"
          | Fst_sca.Sca.Requires _ -> "requires-literal"
          | Fst_sca.Sca.Dominated _ -> "dominated"
        in
        Printf.printf "untestable: %s (%s)\n"
          (Fst_fault.Fault.to_string scanned u.Fst_sca.Sca.fault)
          kind)
      t.Fst_sca.Sca.untestable
  end;
  let bad =
    List.filter
      (fun u -> not (Fst_sca.Sca.check t u))
      t.Fst_sca.Sca.untestable
  in
  if bad = [] then 0
  else begin
    Printf.eprintf "fst: %d untestability proof(s) failed re-checking\n"
      (List.length bad);
    1
  end

(* --- diag --------------------------------------------------------- *)

let run_diag name scale file chains position =
  let circuit = or_die (load ~name ~scale ~file) in
  let scanned, config = or_die (insert_chains circuit chains) in
  let ch = config.Scan.chains.(0) in
  let len = Array.length ch.Scan.ffs in
  let pos = if position < 0 || position >= len then len / 2 else position in
  let fault =
    { Fst_fault.Fault.site = Fst_fault.Fault.Stem ch.Scan.ffs.(pos);
      stuck = true }
  in
  Printf.printf "injected %s at chain 0 position %d\n"
    (Fst_fault.Fault.to_string scanned fault)
    pos;
  (match Diagnose.diagnose_fault scanned config fault with
   | [] -> print_endline "chain test passes; nothing to diagnose"
   | verdicts ->
     List.iteri
       (fun i v ->
         if i < 5 then Format.printf "#%d %a@." (i + 1) Diagnose.pp_verdict v)
       verdicts);
  0

(* --- command line ------------------------------------------------- *)

open Cmdliner

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S"
         ~doc:"Scale factor for suite circuit sizes (1.0 = published sizes).")

let name_arg =
  Arg.(value & opt (some string) None & info [ "n"; "name" ] ~docv:"NAME"
         ~doc:"Suite circuit name (e.g. s5378).")

let file_pos =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Netlist file (ISCAS'89-like syntax).")

let chains_arg =
  Arg.(value & opt int 1 & info [ "c"; "chains" ] ~docv:"N"
         ~doc:"Number of scan chains to build.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output netlist file.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domains for fault simulation and grouped sequential ATPG \
               (0 = one per recommended core; 1 = single-core flow).")

let gen_cmd =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the benchmark suite.")
  in
  let gates = Arg.(value & opt (some int) None & info [ "gates" ] ~docv:"N") in
  let ffs = Arg.(value & opt int 16 & info [ "ffs" ] ~docv:"N") in
  let pis = Arg.(value & opt int 8 & info [ "pis" ] ~docv:"N") in
  let pos = Arg.(value & opt int 4 & info [ "pos" ] ~docv:"N") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a benchmark circuit")
    Term.(
      const run_gen $ name_arg $ scale_arg $ out_arg $ list_arg $ gates $ ffs
      $ pis $ pos $ seed)

let stats_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print circuit statistics")
    Term.(const run_stats $ file)

let tpi_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v (Cmd.info "tpi" ~doc:"Insert functional scan chains (TPI)")
    Term.(const run_tpi $ file $ chains_arg $ out_arg)

let opt_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Clean up a netlist (fold, bypass, sweep, refanin)")
    Term.(const run_opt $ file $ out_arg)

let engine_arg =
  let names =
    List.map (fun s -> (s, s)) Fst_core.Config.engine_names
  in
  Arg.(
    value
    & opt (enum names) "auto"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Fault-simulation engine: $(b,serial) (one faulty machine at a \
           time), $(b,parallel) (62-way bit-parallel), $(b,event) \
           (event-driven incremental on a shared good trace), or \
           $(b,auto) (per fault by static fanout-cone size). Every choice \
           computes identical results.")

let flow_cmd =
  let time_budget =
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"S"
           ~doc:"Wall-clock budget for the whole flow, in seconds. When a \
                 phase overruns its share the remaining work is cancelled \
                 cooperatively and reported in the abort accounting.")
  in
  let keep_going =
    Arg.(value & flag & info [ "keep-going" ]
           ~doc:"Contain failures instead of dying on the first exception: \
                 transient errors are retried, poison tasks are \
                 quarantined into a $(b,failed) bucket, and the flow \
                 always produces a report. The default for budgeted runs \
                 (--time-budget).")
  in
  let fail_fast =
    Arg.(value & flag & info [ "fail-fast" ]
           ~doc:"Propagate the first failure immediately (the default for \
                 unbudgeted runs). Conflicts with --keep-going.")
  in
  let chaos =
    Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED"
           ~doc:"Arm the deterministic chaos harness with the plan derived \
                 from $(docv): seeded exception/delay/cancel injections at \
                 pool-task, engine and checkpoint boundaries. Same seed, \
                 same injections. Robustness testing only.")
  in
  let chaos_p =
    Arg.(value & opt float 0.02 & info [ "chaos-p" ] ~docv:"P"
           ~doc:"Per-site injection probability for --chaos (default \
                 0.02).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH"
           ~doc:"Persist flow progress to $(docv) after every phase and \
                 every step-3 wave (atomic rewrite, with the previous good \
                 file kept as $(docv).prev).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume from the --checkpoint file if it matches this \
                 circuit, configuration and parameter set.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON file (open in Perfetto or \
                 chrome://tracing): spans for every phase, step-3 \
                 wave/group, per-domain pool chunk, and each ATPG call \
                 over 1ms.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a JSON metrics snapshot (counters, gauges, \
                 histograms): ATPG totals, per-domain busy fractions, \
                 fault-simulation counts.")
  in
  let events =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Write a JSONL structured event log: phase start/end, \
                 checkpoint writes, budget trips, abort records.")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"Print a one-line heartbeat to stderr (phase, faults \
                 done/total, detected, ETA).")
  in
  let preflight =
    Arg.(value & flag & info [ "preflight" ]
           ~doc:"Run the static scan-DFT analyzer before phase 1 and abort \
                 on any error-severity finding, so a broken configuration \
                 fails fast instead of consuming the ATPG budget.")
  in
  let obs_dir =
    Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR"
           ~doc:"Write the full run-artifact set to $(docv): trace.json \
                 (Perfetto), events.jsonl, metrics.prom (OpenMetrics), and \
                 run.json (per-phase wall, histogram quantiles, per-domain \
                 timelines, abort accounting) for $(b,fst analyze). \
                 Subsumes --trace/--metrics/--events.")
  in
  let no_sca =
    Arg.(value & flag & info [ "no-sca" ]
           ~doc:"Disable phase-0 static analysis: no statically-proven \
                 untestable bucket and no implication hints for PODEM. \
                 Every hard fault goes through ATPG, as in the seed flow.")
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Run the complete functional scan chain testing flow")
    Term.(
      const run_flow $ name_arg $ scale_arg $ file_pos $ chains_arg
      $ engine_arg $ jobs_arg $ time_budget $ keep_going $ fail_fast $ chaos
      $ chaos_p $ checkpoint $ resume $ trace $ metrics $ events $ progress
      $ preflight $ obs_dir $ no_sca)

let lint_cmd =
  let no_scan =
    Arg.(value & flag & info [ "no-scan" ]
           ~doc:"Structural and testability rules only; skip TPI insertion \
                 and the scan-DFT rules.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as JSON instead of text.")
  in
  let fail_on =
    let sev =
      Arg.enum
        [ ("error", Lint.Fail_error); ("warning", Lint.Fail_warning);
          ("none", Lint.Fail_never) ]
    in
    Arg.(value & opt sev Lint.Fail_error & info [ "fail-on" ] ~docv:"SEV"
           ~doc:"Exit nonzero when findings of severity $(docv) or worse \
                 remain after waivers: $(b,error) (default), $(b,warning), \
                 or $(b,none).")
  in
  let waiver =
    Arg.(value & opt (some string) None & info [ "waiver" ] ~docv:"PATH"
           ~doc:"Waiver (baseline) file: one diagnostic key per line, '#' \
                 comments. Matching findings are reported as waived and do \
                 not gate the exit status.")
  in
  let update_waiver =
    Arg.(value & flag & info [ "update-waiver" ]
           ~doc:"Rewrite the --waiver file to cover every current finding, \
                 then exit 0.")
  in
  let rules =
    Arg.(value & flag & info [ "rules" ] ~doc:"List the rule catalogue.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze a netlist and its scan-DFT configuration")
    Term.(
      const run_lint $ file_pos $ chains_arg $ no_scan $ json $ fail_on
      $ waiver $ update_waiver $ rules)

let jsonlint_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"JSON file (or .jsonl: one JSON object per line).")
  in
  let expects =
    Arg.(value & opt_all string [] & info [ "expect" ] ~docv:"TEXT"
           ~doc:"Fail unless the file contains $(docv) (repeatable).")
  in
  Cmd.v
    (Cmd.info "jsonlint"
       ~doc:"Validate JSON/JSONL files written by --trace/--metrics/--events")
    Term.(const run_jsonlint $ files $ expects)

let analyze_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Artifact directory written by $(b,fst flow --obs-dir).")
  in
  let baseline =
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"PATH"
           ~doc:"Compare against $(docv): another --obs-dir directory, a \
                 run.json file, or a BENCH_flow.json (picks the circuit \
                 matching the current run; see --circuit). Exits 1 when \
                 any gated metric regresses past the threshold.")
  in
  let circuit =
    Arg.(value & opt (some string) None & info [ "circuit" ] ~docv:"NAME"
           ~doc:"Circuit to select from a BENCH_flow.json baseline \
                 (default: the current run's circuit).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the diff as JSON instead of the human report.")
  in
  let threshold =
    Arg.(value & opt float 20.0 & info [ "fail-on-regression" ] ~docv:"PCT"
           ~doc:"Relative regression threshold in percent (default 20): a \
                 gated time metric more than $(docv)%% slower than the \
                 baseline is a regression and fails the exit status.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
           ~doc:"Rows in the hotspot and critical-path tables (default 10).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze a run-artifact directory: critical path, per-domain \
             utilization, hotspots, and baseline regression gating")
    Term.(
      const run_analyze $ dir $ baseline $ circuit $ json $ threshold $ top)

let diag_cmd =
  let position =
    Arg.(value & opt int (-1) & info [ "position" ] ~docv:"P"
           ~doc:"Chain position of the injected defect (default: middle).")
  in
  Cmd.v
    (Cmd.info "diag"
       ~doc:"Inject a chain defect and run scan-chain diagnosis")
    Term.(const run_diag $ name_arg $ scale_arg $ file_pos $ chains_arg $ position)

let alt_cmd =
  Cmd.v
    (Cmd.info "alt"
       ~doc:"Classify faults: the easy/hard split of the paper's Table 2")
    Term.(const run_alt $ name_arg $ scale_arg $ file_pos $ chains_arg)

let sca_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the full report (derivation traces, proof objects) \
                 as JSON.")
  in
  Cmd.v
    (Cmd.info "sca"
       ~doc:"Static analysis: scan-mode constants, implications, and \
             fault untestability proofs")
    Term.(const run_sca $ name_arg $ scale_arg $ file_pos $ chains_arg $ json)

let () =
  let doc = "functional scan chain testing (DATE'98 reproduction)" in
  let info = Cmd.info "fst" ~version:"1.0.0" ~doc in
  (* Netlist errors escaping a deeper pass (TPI, generation) still exit
     with a one-line diagnostic instead of a backtrace. *)
  let code =
    try
      Cmd.eval' (Cmd.group info
           [ gen_cmd; stats_cmd; tpi_cmd; opt_cmd; lint_cmd; sca_cmd;
             flow_cmd; alt_cmd; diag_cmd; jsonlint_cmd; analyze_cmd ])
    with
    | Flow.Preflight_failed diags ->
      List.iter (fun d -> prerr_endline (Diagnostic.to_string d)) diags;
      prerr_endline
        (Printf.sprintf "fst: preflight failed with %d error(s)"
           (List.length diags));
      1
    | Netfile.Parse_error { file; line; message } ->
      let where =
        match file with
        | Some f -> Printf.sprintf "%s:%d" f line
        | None -> Printf.sprintf "line %d" line
      in
      prerr_endline (Printf.sprintf "fst: %s: %s" where message);
      1
    | Circuit.Malformed message | Circuit.Combinational_cycle message ->
      prerr_endline ("fst: " ^ message);
      1
  in
  exit code
