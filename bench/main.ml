(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DATE'98, "Functional Scan Chain Testing") on the synthetic
   ISCAS'89-like suite, plus the ablations listed in DESIGN.md and a set of
   Bechamel micro-benchmarks.

   Usage:  main.exe [table1|table2|table3|fig5|ablate-alt|ablate-dist|
                     ablate-trunc|ablate-order|ablate-compact|ablate-rtpg|
                     coverage|fsim|flow|sca|micro|all]
   The suite size is controlled by FST_SCALE (default 0.10; 1.0 =
   published circuit sizes). *)

open Fst_netlist
open Fst_tpi
open Fst_core
module Table = Fst_report.Table

type prepared = {
  entry : Fst_gen.Suite.entry;
  before : Circuit.t;
  scanned : Circuit.t;
  config : Scan.config;
}

type completed = { prep : prepared; flow : Flow.result }

let scale = Fst_gen.Suite.scale_from_env ()
let flow_config = Config.(default |> with_dist_floor_scale scale)

(* [--engine NAME] after the subcommand picks the fault-sim engine for the
   multicore benchmark columns (and is stamped into the BENCH_*.json docs). *)
let bench_engine =
  lazy
    (let rec find i =
       if i >= Array.length Sys.argv - 1 then None
       else if Sys.argv.(i) = "--engine" then Some Sys.argv.(i + 1)
       else find (i + 1)
     in
     match find 1 with
     | None -> `Auto
     | Some name -> (
       match Config.engine_of_string name with
       | Some e -> e
       | None ->
         failwith
           (Printf.sprintf "unknown engine %S (expected one of %s)" name
              (String.concat "|" Config.engine_names))))

let prepare (entry : Fst_gen.Suite.entry) =
  let before = Fst_gen.Gen.generate entry.Fst_gen.Suite.profile in
  let scanned, config =
    Tpi.insert
      ~options:{ Tpi.default_options with Tpi.chains = entry.Fst_gen.Suite.chains }
      before
  in
  (match Scan.verify_shift_msg scanned config with
   | Ok () -> ()
   | Error e ->
     failwith
       (Printf.sprintf "%s: scan chain broken after TPI: %s"
          entry.Fst_gen.Suite.profile.Fst_gen.Gen.name e));
  { entry; before; scanned; config }

let prepared_suite = lazy (List.map prepare (Fst_gen.Suite.suite ~scale ()))

let completed_suite =
  lazy
    (List.map
       (fun prep ->
         let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
         Printf.eprintf "[flow] %s...\n%!" name;
         let flow = Flow.run ~config:flow_config prep.scanned prep.config in
         { prep; flow })
       (Lazy.force prepared_suite))

let largest () =
  let all = Lazy.force completed_suite in
  List.fold_left
    (fun best c ->
      if Circuit.gate_count c.prep.before > Circuit.gate_count best.prep.before
      then c
      else best)
    (List.hd all) all

(* ------------------------------------------------------------------ *)
(* Table 1: the test suite.                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Table 1: Test suite (scale %.2f; faults counted after TPI)"
           scale)
      [
        ("name", Table.Left);
        ("#gates", Table.Right);
        ("#FFs", Table.Right);
        ("#faults", Table.Right);
        ("#chains", Table.Right);
        ("#test points", Table.Right);
        ("#mux segs", Table.Right);
      ]
  in
  let tg = ref 0 and tf = ref 0 and tfl = ref 0 and tc = ref 0 in
  List.iter
    (fun { prep; flow } ->
      let faults = Array.length flow.Flow.faults in
      tg := !tg + Circuit.gate_count prep.before;
      tf := !tf + Circuit.dff_count prep.before;
      tfl := !tfl + faults;
      tc := !tc + Array.length prep.config.Scan.chains;
      Table.row t
        [
          prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name;
          Table.cell_int (Circuit.gate_count prep.before);
          Table.cell_int (Circuit.dff_count prep.before);
          Table.cell_int faults;
          Table.cell_int (Array.length prep.config.Scan.chains);
          Table.cell_int prep.config.Scan.test_points;
          Table.cell_int prep.config.Scan.mux_segments;
        ])
    (Lazy.force completed_suite);
  Table.rule t;
  Table.row t
    [
      "total";
      Table.cell_int !tg;
      Table.cell_int !tf;
      Table.cell_int !tfl;
      Table.cell_int !tc;
      "";
      "";
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 2: finding easy and hard faults.                              *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let t =
    Table.create
      ~title:
        "Table 2: Faults affecting the scan chain (easy = category 1, hard = category 2)"
      [
        ("name", Table.Left);
        ("#easy (%)", Table.Right);
        ("#hard (%)", Table.Right);
        ("CPU", Table.Right);
      ]
  in
  let te = ref 0 and th = ref 0 and tot = ref 0 and secs = ref 0.0 in
  List.iter
    (fun { prep; flow } ->
      let total = Array.length flow.Flow.faults in
      let easy = Array.length flow.Flow.classify.Classify.easy in
      let hard = Array.length flow.Flow.classify.Classify.hard in
      te := !te + easy;
      th := !th + hard;
      tot := !tot + total;
      secs := !secs +. flow.Flow.classify_seconds;
      Table.row t
        [
          prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name;
          Table.cell_int_pct easy ~of_:total;
          Table.cell_int_pct hard ~of_:total;
          Table.cell_seconds flow.Flow.classify_seconds;
        ])
    (Lazy.force completed_suite);
  Table.rule t;
  Table.row t
    [
      "total";
      Table.cell_int_pct !te ~of_:!tot;
      Table.cell_int_pct !th ~of_:!tot;
      Table.cell_seconds !secs;
    ];
  Table.print t;
  Printf.printf
    "\n%.1f%% of all faults affect the scan chain; %.1f%% may escape the alternating sequence.\n"
    (100.0 *. float_of_int (!te + !th) /. float_of_int !tot)
    (100.0 *. float_of_int !th /. float_of_int !tot)

(* ------------------------------------------------------------------ *)
(* Table 3: detecting the hard faults.                                 *)
(* ------------------------------------------------------------------ *)

let table3 () =
  let t =
    Table.create
      ~title:
        "Table 3: Detecting the hard faults (comb ATPG + seq fault sim, then sequential ATPG)"
      [
        ("name", Table.Left);
        ("s2 #det", Table.Right);
        ("s2 #unt", Table.Right);
        ("s2 #und", Table.Right);
        ("s2 CPU", Table.Right);
        ("#circ", Table.Right);
        ("s3 #det", Table.Right);
        ("s3 #unt", Table.Right);
        ("s3 #und", Table.Right);
        ("s3 CPU", Table.Right);
      ]
  in
  let sums = Array.make 6 0 in
  let cpu2 = ref 0.0 and cpu3 = ref 0.0 in
  let tot_faults = ref 0 and tot_affect = ref 0 in
  List.iter
    (fun { prep; flow } ->
      let s2 = flow.Flow.step2 and s3 = flow.Flow.step3 in
      sums.(0) <- sums.(0) + s2.Flow.detected;
      sums.(1) <- sums.(1) + s2.Flow.untestable;
      sums.(2) <- sums.(2) + s2.Flow.undetected;
      sums.(3) <- sums.(3) + s3.Flow.detected;
      sums.(4) <- sums.(4) + s3.Flow.untestable;
      sums.(5) <- sums.(5) + s3.Flow.undetected;
      cpu2 := !cpu2 +. s2.Flow.atpg_seconds +. s2.Flow.fsim_seconds;
      cpu3 := !cpu3 +. s3.Flow.seconds;
      tot_faults := !tot_faults + Flow.total_faults flow;
      tot_affect := !tot_affect + Flow.affecting flow;
      Table.row t
        [
          prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name;
          Table.cell_int s2.Flow.detected;
          Table.cell_int s2.Flow.untestable;
          Table.cell_int s2.Flow.undetected;
          Table.cell_seconds (s2.Flow.atpg_seconds +. s2.Flow.fsim_seconds);
          Printf.sprintf "%d+%d" s3.Flow.group_circuits s3.Flow.final_circuits;
          Table.cell_int s3.Flow.detected;
          Table.cell_int s3.Flow.untestable;
          Table.cell_int s3.Flow.undetected;
          Table.cell_seconds s3.Flow.seconds;
        ])
    (Lazy.force completed_suite);
  Table.rule t;
  Table.row t
    [
      "total";
      Table.cell_int sums.(0);
      Table.cell_int sums.(1);
      Table.cell_int sums.(2);
      Table.cell_seconds !cpu2;
      "";
      Table.cell_int sums.(3);
      Table.cell_int sums.(4);
      Table.cell_int sums.(5);
      Table.cell_seconds !cpu3;
    ];
  Table.print t;
  let undet = sums.(5) in
  Printf.printf
    "\nAfter step 2 the undetected faults are %d = %.3f%% of all faults (%.3f%% of chain-affecting).\n"
    sums.(2)
    (100.0 *. float_of_int sums.(2) /. float_of_int !tot_faults)
    (100.0 *. float_of_int sums.(2) /. float_of_int !tot_affect);
  Printf.printf
    "After sequential ATPG the undetected faults are %d = %.3f%% of all faults (%.3f%% of chain-affecting).\n"
    undet
    (100.0 *. float_of_int undet /. float_of_int !tot_faults)
    (100.0 *. float_of_int undet /. float_of_int !tot_affect);
  Printf.printf
    "(Paper, full-size suite: 0.006%% of all faults, 0.022%% of chain-affecting.)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: detected faults versus simulated vectors.                 *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  let c = largest () in
  let name = c.prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
  let curve = c.flow.Flow.step2.Flow.curve in
  let n = Array.length curve in
  if n = 0 then print_endline "fig5: no curve captured"
  else begin
    let t =
      Table.create
        ~title:
          (Printf.sprintf
             "Figure 5: simulated test vectors vs detected faults (%s)" name)
        [ ("#vectors", Table.Right); ("#detected", Table.Right); ("", Table.Left) ]
    in
    let final = snd curve.(n - 1) in
    let points = 20 in
    let bar d = if final = 0 then "" else String.make (d * 40 / max 1 final) '#' in
    for k = 0 to points do
      let i = k * (n - 1) / points in
      let v, d = curve.(i) in
      Table.row t [ Table.cell_int v; Table.cell_int d; bar d ]
    done;
    Table.print t;
    if final > 0 then begin
      let quantile q =
        let i = ref (n - 1) in
        (try
           Array.iteri
             (fun k (_, d) ->
               if d * 100 >= final * q then begin
                 i := k;
                 raise Exit
               end)
             curve
         with Exit -> ());
        !i
      in
      let i50 = quantile 50 and i90 = quantile 90 in
      Printf.printf
        "\nHalf the detections land in the first %d of %d vectors (%.0f%%), 90%% within %d (%.0f%%):\nthe test set can be truncated cheaply (quantified in Ablation C).\n"
        i50 (n - 1)
        (100.0 *. float_of_int i50 /. float_of_int (max 1 (n - 1)))
        i90
        (100.0 *. float_of_int i90 /. float_of_int (max 1 (n - 1)))
    end
  end

(* ------------------------------------------------------------------ *)
(* Ablation A: alternating-only testing versus the full flow.          *)
(* ------------------------------------------------------------------ *)

let ablate_alt () =
  let t =
    Table.create
      ~title:
        "Ablation A: alternating sequence alone vs the full flow (simulated detections among chain-affecting faults)"
      [
        ("name", Table.Left);
        ("affecting", Table.Right);
        ("alt detects", Table.Right);
        ("alt escapes", Table.Right);
        ("flow leaves", Table.Right);
      ]
  in
  let smallest =
    List.sort
      (fun a b ->
        Int.compare
          (Circuit.gate_count a.prep.before)
          (Circuit.gate_count b.prep.before))
      (Lazy.force completed_suite)
    |> List.filteri (fun i _ -> i < 3)
  in
  List.iter
    (fun { prep; flow } ->
      let cls = flow.Flow.classify in
      let affecting_faults =
        Array.append
          (Array.map (fun i -> flow.Flow.faults.(i)) cls.Classify.easy)
          (Array.map (fun i -> flow.Flow.faults.(i)) cls.Classify.hard)
      in
      let stim = Sequences.alternating prep.scanned prep.config ~repeats:3 in
      let out =
        Fst_fsim.Fsim.Parallel.detect_all prep.scanned ~faults:affecting_faults
          ~observe:prep.scanned.Circuit.outputs stim
      in
      let det = Array.fold_left (fun a o -> if o = None then a else a + 1) 0 out in
      Table.row t
        [
          prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name;
          Table.cell_int (Array.length affecting_faults);
          Table.cell_int det;
          Table.cell_int (Array.length affecting_faults - det);
          Table.cell_int (List.length flow.Flow.undetected);
        ])
    smallest;
  Table.print t;
  print_endline
    "\nThe alternating sequence alone misses the escaped category-2 faults;\nthe three-step flow reduces the residue to (near) zero."

(* ------------------------------------------------------------------ *)
(* Ablation B: the grouping distance parameters.                       *)
(* ------------------------------------------------------------------ *)

let ablate_dist () =
  let mid = List.nth (Lazy.force prepared_suite) 5 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation B: distance-parameter sweep on %s (floors scaled by f)"
           mid.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name)
      [
        ("f", Table.Right);
        ("#circuits", Table.Right);
        ("s3 detected", Table.Right);
        ("s3 undetected", Table.Right);
        ("s3 CPU", Table.Right);
      ]
  in
  List.iter
    (fun f ->
      let cfg = Config.(flow_config |> with_dist_floor_scale (f *. scale)) in
      let flow = Flow.run ~config:cfg mid.scanned mid.config in
      Table.row t
        [
          Printf.sprintf "%.2f" f;
          Printf.sprintf "%d+%d" flow.Flow.step3.Flow.group_circuits
            flow.Flow.step3.Flow.final_circuits;
          Table.cell_int flow.Flow.step3.Flow.detected;
          Table.cell_int flow.Flow.step3.Flow.undetected;
          Table.cell_seconds flow.Flow.step3.Flow.seconds;
        ])
    [ 0.25; 0.5; 1.0; 2.0 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablation C: truncating the step-2 test set (Figure 5's point).      *)
(* ------------------------------------------------------------------ *)

let ablate_trunc () =
  let mid = List.nth (Lazy.force prepared_suite) 5 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Ablation C: step-2 test-set truncation on %s"
           mid.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name)
      [
        ("kept fraction", Table.Right);
        ("vectors", Table.Right);
        ("s2 undetected", Table.Right);
        ("fsim CPU", Table.Right);
      ]
  in
  List.iter
    (fun frac ->
      let cfg =
        Config.(
          flow_config
          |> with_truncate_blocks (if frac >= 1.0 then None else Some frac))
      in
      let flow = Flow.run ~config:cfg mid.scanned mid.config in
      Table.row t
        [
          Printf.sprintf "%.2f" frac;
          Table.cell_int flow.Flow.step2.Flow.vectors;
          Table.cell_int flow.Flow.step2.Flow.undetected;
          Table.cell_seconds flow.Flow.step2.Flow.fsim_seconds;
        ])
    [ 1.0; 0.5; 0.25; 0.1 ];
  Table.print t;
  print_endline
    "\nMost faults are caught by the beginning of the test set (Figure 5), so the\nsimulation cost can be cut with only a small increase in undetected faults."

(* ------------------------------------------------------------------ *)
(* Coverage: the subsequent logic-test phase the chain test enables.   *)
(* ------------------------------------------------------------------ *)

let coverage_table () =
  let t =
    Table.create
      ~title:
        "Two-phase coverage: chain test (this paper) + standard scan test of the logic"
      [
        ("name", Table.Left);
        ("faults", Table.Right);
        ("chain det", Table.Right);
        ("scan det", Table.Right);
        ("untestable", Table.Right);
        ("undetected", Table.Right);
        ("coverage", Table.Right);
        ("testable cov", Table.Right);
      ]
  in
  (* The full-ATPG phase is the expensive classic problem; run it on the
     smaller half of the suite. *)
  let subset =
    List.filter
      (fun c -> Circuit.gate_count c.prep.before < 500)
      (Lazy.force completed_suite)
  in
  List.iter
    (fun { prep; flow } ->
      let already = Flow.chain_detected_faults flow in
      let r = Scan_atpg.run prep.scanned prep.config ~already_detected:already in
      let total = Flow.total_faults flow in
      let chain_detected = List.length already in
      Table.row t
        [
          prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name;
          Table.cell_int total;
          Table.cell_int chain_detected;
          Table.cell_int r.Scan_atpg.detected;
          Table.cell_int r.Scan_atpg.untestable;
          Table.cell_int r.Scan_atpg.undetected;
          Table.cell_pct (100.0 *. Scan_atpg.coverage ~chain_detected ~result:r ~total);
          Table.cell_pct
            (100.0 *. Scan_atpg.testable_coverage ~chain_detected ~result:r ~total);
        ])
    subset;
  Table.print t;
  print_endline
    "\nThe chain test makes the load/unload trustworthy; the scan test then covers\nthe functional logic. Chain-only faults (scan-mode logic) can only come from\nthe first phase -- the paper's motivation, end to end."

(* ------------------------------------------------------------------ *)
(* Ablation D: chain ordering (the flexibility the paper leaves to the *)
(* designer).                                                          *)
(* ------------------------------------------------------------------ *)

let ablate_order () =
  let entry = List.nth (Fst_gen.Suite.suite ~scale ()) 5 in
  let before = Fst_gen.Gen.generate entry.Fst_gen.Suite.profile in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation D: chain ordering on %s (functional reuse and fault locations)"
           entry.Fst_gen.Suite.profile.Fst_gen.Gen.name)
      [
        ("ordering", Table.Left);
        ("functional segs", Table.Right);
        ("test points", Table.Right);
        ("affecting faults", Table.Right);
        ("hard faults", Table.Right);
      ]
  in
  List.iter
    (fun (name, ordering) ->
      let scanned, config =
        Tpi.insert
          ~options:
            {
              Tpi.default_options with
              Tpi.chains = entry.Fst_gen.Suite.chains;
              ordering;
            }
          before
      in
      let faults =
        Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
      in
      let cls = Classify.run scanned config faults in
      let functional =
        Array.fold_left
          (fun acc ch ->
            Array.fold_left
              (fun acc (s : Scan.segment) ->
                if s.Scan.via_mux then acc else acc + 1)
              acc ch.Scan.segments)
          0 config.Scan.chains
      in
      Table.row t
        [
          name;
          Table.cell_int functional;
          Table.cell_int config.Scan.test_points;
          Table.cell_int cls.Classify.affecting;
          Table.cell_int (Array.length cls.Classify.hard);
        ])
    [
      ("greedy functional", Tpi.Greedy_functional);
      ("natural", Tpi.Natural);
      ("shuffled(1)", Tpi.Shuffled 1L);
      ("shuffled(2)", Tpi.Shuffled 2L);
    ];
  Table.print t;
  print_endline
    "\nOrdering moves fault locations and trades functional reuse against test\npoints; the paper leaves this freedom to the designer."

(* ------------------------------------------------------------------ *)
(* Ablation E: static compaction of the step-2 test set.               *)
(* ------------------------------------------------------------------ *)

let ablate_compact () =
  let prep = List.nth (Lazy.force prepared_suite) 5 in
  let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
  (* Rebuild the step-2 style test set: ATPG blocks + random blocks. *)
  let faults =
    Fst_fault.Fault.collapse prep.scanned (Fst_fault.Fault.universe prep.scanned)
  in
  let cls = Classify.run prep.scanned prep.config faults in
  let view =
    View.scan_mode prep.scanned ~constraints:prep.config.Scan.constraints ()
  in
  let scoap = Fst_testability.Scoap.compute view in
  let blocks = ref [] in
  Array.iter
    (fun i ->
      match
        Fst_atpg.Podem.run ~backtrack_limit:200 ~scoap view
          ~faults:[ faults.(i) ]
      with
      | Fst_atpg.Podem.Test assignment, _ ->
        let ff_values, pi_values =
          List.partition
            (fun (net, _) -> Circuit.is_dff prep.scanned net)
            assignment
        in
        blocks :=
          Sequences.of_comb_test prep.scanned prep.config ~ff_values ~pi_values
          :: !blocks
      | (Fst_atpg.Podem.Untestable | Fst_atpg.Podem.Aborted), _ -> ())
    cls.Classify.hard;
  let blocks = List.rev !blocks in
  let hard_faults = Array.map (fun i -> faults.(i)) cls.Classify.hard in
  let observe = prep.scanned.Circuit.outputs in
  let before_cov =
    Compact.coverage prep.scanned ~faults:hard_faults ~observe ~blocks
  in
  let t0 = Sys.time () in
  let kept, credited =
    Compact.reverse_order prep.scanned ~faults:hard_faults ~observe ~blocks
  in
  let seconds = Sys.time () -. t0 in
  let t =
    Table.create
      ~title:(Printf.sprintf "Ablation E: reverse-order compaction on %s" name)
      [ ("", Table.Left); ("sequences", Table.Right); ("faults detected", Table.Right) ]
  in
  Table.row t
    [ "full step-2 set"; Table.cell_int (List.length blocks);
      Table.cell_int before_cov ];
  Table.row t
    [ "compacted"; Table.cell_int (List.length kept); Table.cell_int credited ];
  Table.print t;
  Printf.printf
    "\nCompaction kept %.0f%% of the sequences with identical coverage (%.2fs).\n"
    (100.0
    *. float_of_int (List.length kept)
    /. float_of_int (max 1 (List.length blocks)))
    seconds

(* ------------------------------------------------------------------ *)
(* Ablation F: uniform vs weighted random tests (the paper's random-   *)
(* vector option for partial scan).                                    *)
(* ------------------------------------------------------------------ *)

let ablate_rtpg () =
  let prep = List.nth (Lazy.force prepared_suite) 5 in
  let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
  let faults =
    Fst_fault.Fault.collapse prep.scanned (Fst_fault.Fault.universe prep.scanned)
  in
  let cls = Classify.run prep.scanned prep.config faults in
  let hard_faults = Array.map (fun i -> faults.(i)) cls.Classify.hard in
  let view =
    View.scan_mode prep.scanned ~constraints:prep.config.Scan.constraints ()
  in
  let blocks_of generator n =
    let rng = Fst_gen.Rng.create 0xABCDL in
    List.init n (fun _ ->
        let ff_values, pi_values =
          List.partition
            (fun (net, _) -> Circuit.is_dff prep.scanned net)
            (generator rng view)
        in
        Sequences.of_comb_test prep.scanned prep.config ~ff_values ~pi_values)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation F: random-only chain testing on %s (%d hard faults)"
           name (Array.length hard_faults))
      [ ("generator", Table.Left); ("blocks", Table.Right); ("hard faults detected", Table.Right) ]
  in
  List.iter
    (fun (gname, gen) ->
      List.iter
        (fun n ->
          let blocks = blocks_of gen n in
          let det =
            Compact.coverage prep.scanned ~faults:hard_faults
              ~observe:prep.scanned.Circuit.outputs ~blocks
          in
          Table.row t [ gname; Table.cell_int n; Table.cell_int det ])
        [ 16; 64 ])
    [ ("uniform", Fst_atpg.Rtpg.uniform); ("weighted", Fst_atpg.Rtpg.weighted) ];
  Table.print t;
  print_endline
    "\nRandom vectors alone (the paper's partial-scan option) reach most but not\nall hard faults; deterministic ATPG closes the gap."

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)
(* Fault-simulation engine comparison, recorded as BENCH_fsim.json so  *)
(* the perf trajectory is tracked across PRs. serial/event/parallel    *)
(* are timed on the SAME one-group fault subset at jobs=1 — so         *)
(* parallel_s <= serial_s is an apples-to-apples invariant — while the *)
(* Auto engine runs the full collapsed fault set at jobs=1 and jobs=N. *)
(* [fsim --check] re-measures and fails on a >20% serial/event         *)
(* regression against the committed file or any parallel_s > serial_s. *)
(* ------------------------------------------------------------------ *)

let fsim_jobs () =
  match Sys.getenv_opt "FST_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> max 1 n
      | None -> failwith (Printf.sprintf "FST_JOBS=%S is not an integer" s))
  | None -> Fst_exec.Pool.default_jobs ()

type fsim_row = {
  fr_name : string;
  fr_faults : int;
  fr_serial_faults : int;
  fr_cycles : int;
  fr_serial_s : float;
  fr_event_s : float;
  fr_parallel_s : float;
  fr_auto1_s : float; (* negative when the Auto columns were skipped *)
  fr_autoj_s : float;
}

(* Serial wall extrapolated from its one-group subset to the full fault
   set, over the jobs=N Auto wall on that full set. *)
let fsim_speedup r =
  if r.fr_autoj_s <= 0.0 then 0.0
  else
    r.fr_serial_s
    *. float_of_int r.fr_faults
    /. float_of_int (max 1 r.fr_serial_faults)
    /. r.fr_autoj_s

(* A step-2-shaped workload: the alternating chain test plus random
   scan-mode blocks, simulated with cross-block dropping. *)
let fsim_workload prep =
  let view =
    View.scan_mode prep.scanned ~constraints:prep.config.Scan.constraints ()
  in
  let rng = Fst_gen.Rng.create 0xBE5CL in
  let random_block () =
    let ff_values, pi_values =
      List.partition
        (fun (net, _) -> Circuit.is_dff prep.scanned net)
        (Fst_atpg.Rtpg.uniform rng view)
    in
    Sequences.of_comb_test prep.scanned prep.config ~ff_values ~pi_values
  in
  Sequences.alternating prep.scanned prep.config ~repeats:2
  :: List.init 8 (fun _ -> random_block ())

let fsim_measure ~jobs ~with_auto =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun prep ->
        let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
        Printf.eprintf "[fsim] %s...\n%!" name;
        let faults =
          Fst_fault.Fault.collapse prep.scanned
            (Fst_fault.Fault.universe prep.scanned)
        in
        let stimuli = fsim_workload prep in
        let cycles =
          List.fold_left (fun a s -> a + Array.length s) 0 stimuli
        in
        let observe = prep.scanned.Circuit.outputs in
        let module F = Fst_fsim.Fsim in
        (* Serial is ~62x the work per fault: time the single-machine
           engine columns on one group's worth of faults so they stay
           affordable at every scale and comparable across engines. *)
        let serial_faults =
          Array.sub faults 0 (min (Array.length faults) F.Parallel.max_group)
        in
        let one engine =
          wall (fun () ->
              F.Engine.detect_dropping ~engine ~jobs:1 prep.scanned
                ~faults:serial_faults ~observe ~stimuli)
        in
        let rs, serial_s = one `Serial in
        let re, event_s = one `Event in
        if rs <> re then failwith (name ^ ": event fsim diverged from serial");
        let rp, parallel_s = one `Parallel in
        if rs <> rp then
          failwith (name ^ ": parallel fsim diverged from serial");
        let auto1_s, autoj_s =
          if not with_auto then (-1.0, -1.0)
          else begin
            let full j =
              wall (fun () ->
                  F.Engine.detect_dropping
                    ~engine:(Lazy.force bench_engine) ~jobs:j prep.scanned
                    ~faults ~observe ~stimuli)
            in
            let r1, auto1_s = full 1 in
            let rn, autoj_s = full jobs in
            if r1 <> rn then
              failwith (name ^ ": multicore fsim diverged from single-core");
            (auto1_s, autoj_s)
          end
        in
        {
          fr_name = name;
          fr_faults = Array.length faults;
          fr_serial_faults = Array.length serial_faults;
          fr_cycles = cycles;
          fr_serial_s = serial_s;
          fr_event_s = event_s;
          fr_parallel_s = parallel_s;
          fr_auto1_s = auto1_s;
          fr_autoj_s = autoj_s;
        })
      (Lazy.force prepared_suite)
  in
  (* The event engine's home turf: the largest circuit with the faults
     whose static cones are shortest, so nearly every cycle is quiescent
     for the faulty machine. Serial still walks the whole circuit each
     cycle; event only touches the cone. *)
  let low_activity =
    let prep =
      List.fold_left
        (fun best p ->
          if Circuit.gate_count p.before > Circuit.gate_count best.before then p
          else best)
        (List.hd (Lazy.force prepared_suite))
        (Lazy.force prepared_suite)
    in
    let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
    Printf.eprintf "[fsim] low-activity workload on %s...\n%!" name;
    let faults =
      Fst_fault.Fault.collapse prep.scanned
        (Fst_fault.Fault.universe prep.scanned)
    in
    let sizes = Fst_fault.Fault.cone_sizes prep.scanned faults in
    let order = Array.init (Array.length faults) (fun i -> i) in
    Array.sort (fun a b -> Int.compare sizes.(a) sizes.(b)) order;
    let n = min (Array.length faults) Fst_fsim.Fsim.Parallel.max_group in
    let short = Array.map (fun i -> faults.(i)) (Array.sub order 0 n) in
    let max_cone = if n = 0 then 0 else sizes.(order.(n - 1)) in
    let stimuli = fsim_workload prep in
    let observe = prep.scanned.Circuit.outputs in
    let rs, ser =
      wall (fun () ->
          Fst_fsim.Fsim.Engine.detect_dropping ~engine:`Serial ~jobs:1
            prep.scanned ~faults:short ~observe ~stimuli)
    in
    let re, ev =
      wall (fun () ->
          Fst_fsim.Fsim.Engine.detect_dropping ~engine:`Event ~jobs:1
            prep.scanned ~faults:short ~observe ~stimuli)
    in
    if rs <> re then failwith (name ^ ": event fsim diverged from serial");
    (name, n, max_cone, ser, ev)
  in
  (rows, low_activity)

let fsim_bench () =
  let jobs = fsim_jobs () in
  let rows, low_activity = fsim_measure ~jobs ~with_auto:true in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Fault-simulation engines (engine=%s; serial/event/parallel on \
            one 62-fault group at jobs=1, auto on the full set)"
           (Config.engine_to_string (Lazy.force bench_engine)))
      [
        ("name", Table.Left);
        ("#faults", Table.Right);
        ("cycles", Table.Right);
        ("serial", Table.Right);
        ("event", Table.Right);
        ("parallel", Table.Right);
        ("auto j=1", Table.Right);
        (Printf.sprintf "auto j=%d" jobs, Table.Right);
        ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.row t
        [
          r.fr_name;
          Table.cell_int r.fr_faults;
          Table.cell_int r.fr_cycles;
          Table.cell_seconds r.fr_serial_s;
          Table.cell_seconds r.fr_event_s;
          Table.cell_seconds r.fr_parallel_s;
          Table.cell_seconds r.fr_auto1_s;
          Table.cell_seconds r.fr_autoj_s;
          Printf.sprintf "%.2fx" (fsim_speedup r);
        ])
    rows;
  Table.print t;
  let la_name, la_n, la_cone, la_ser, la_ev = low_activity in
  Printf.printf
    "low-activity workload (%s, %d short-cone faults, cone <= %d nets): \
     serial %.3fs, event %.3fs (%.2fx)\n"
    la_name la_n la_cone la_ser la_ev
    (la_ser /. Float.max 1e-9 la_ev);
  let oc = open_out "BENCH_fsim.json" in
  Printf.fprintf oc
    "{\n  \"scale\": %.3f,\n  \"jobs\": %d,\n  \"engine\": %S,\n  \"circuits\": ["
    scale jobs
    (Config.engine_to_string (Lazy.force bench_engine));
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "%s\n    { \"name\": %S, \"faults\": %d, \"serial_faults\": %d, \
         \"cycles\": %d, \"serial_s\": %.6f, \"event_s\": %.6f, \
         \"parallel_s\": %.6f, \"auto1_s\": %.6f, \"auto_jobs_s\": %.6f, \
         \"auto_speedup\": %.3f }"
        (if i = 0 then "" else ",")
        r.fr_name r.fr_faults r.fr_serial_faults r.fr_cycles r.fr_serial_s
        r.fr_event_s r.fr_parallel_s r.fr_auto1_s r.fr_autoj_s
        (fsim_speedup r))
    rows;
  Printf.fprintf oc
    "\n  ],\n  \"low_activity\": { \"name\": %S, \"faults\": %d, \
     \"max_cone\": %d, \"serial_s\": %.6f, \"event_s\": %.6f, \
     \"event_speedup\": %.3f }\n}\n"
    la_name la_n la_cone la_ser la_ev
    (la_ser /. Float.max 1e-9 la_ev);
  close_out oc;
  Printf.printf "wrote BENCH_fsim.json (%d circuits, jobs=%d)\n"
    (List.length rows) jobs

(* [fsim --check]: re-measure the per-engine columns (the full-set Auto
   columns are skipped — the gate is about engine regressions, not
   wall-clock on the whole fault set) and fail when bit-parallel is
   slower than serial on the same faults, or when serial/event regressed
   more than 20% against the committed BENCH_fsim.json. The numeric
   comparison only applies when the committed scale and jobs match this
   run's; the parallel-never-slower invariant is checked always, on both
   the fresh and the committed numbers. *)
let fsim_check () =
  let jobs = fsim_jobs () in
  let rows, _ = fsim_measure ~jobs ~with_auto:false in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun r ->
      if r.fr_parallel_s > r.fr_serial_s then
        err "%s: parallel %.6fs > serial %.6fs on the same %d faults"
          r.fr_name r.fr_parallel_s r.fr_serial_s r.fr_serial_faults)
    rows;
  let module J = Fst_obs.Json in
  let fnum = function
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> Float.nan
  in
  (match
     let ic = open_in "BENCH_fsim.json" in
     let s = really_input_string ic (in_channel_length ic) in
     close_in ic;
     J.of_string s
   with
   | exception Sys_error e -> err "committed BENCH_fsim.json unreadable: %s" e
   | exception J.Parse_error e ->
     err "committed BENCH_fsim.json malformed: %s" e
   | doc ->
     let circuits =
       match J.member "circuits" doc with Some (J.List l) -> l | _ -> []
     in
     if circuits = [] then err "committed BENCH_fsim.json has no circuits";
     List.iter
       (fun c ->
         let name =
           match J.member "name" c with Some (J.String s) -> s | _ -> "?"
         in
         let ser = fnum (J.member "serial_s" c)
         and par = fnum (J.member "parallel_s" c) in
         if par > ser then
           err "committed %s: parallel_s %.6f > serial_s %.6f" name par ser)
       circuits;
     let cscale = fnum (J.member "scale" doc) in
     let cjobs = int_of_float (fnum (J.member "jobs" doc)) in
     if Float.abs (cscale -. scale) < 1e-6 && cjobs = jobs then
       List.iter
         (fun r ->
           match
             List.find_opt
               (fun c -> J.member "name" c = Some (J.String r.fr_name))
               circuits
           with
           | None ->
             err "%s: missing from committed BENCH_fsim.json" r.fr_name
           | Some c ->
             (* The >20% comparison goes through Analyze.diff — the same
                relative-threshold verdict machinery `fst analyze
                --baseline` gates on — instead of an ad-hoc check. The
                committed and fresh times become the phases of two
                synthetic runs; 100µs floor keeps degenerate sub-µs
                circuits from producing noise verdicts. *)
             let module A = Fst_obs.Analyze in
             let committed_ser = fnum (J.member "serial_s" c)
             and committed_ev = fnum (J.member "event_s" c) in
             if Float.is_nan committed_ser then
               err "%s: committed serial_s missing" r.fr_name;
             if Float.is_nan committed_ev then
               err "%s: committed event_s missing" r.fr_name;
             if not (Float.is_nan committed_ser || Float.is_nan committed_ev)
             then begin
               let mk ser ev =
                 {
                   A.wall_s = 0.0;
                   phases = [ ("serial", ser); ("event", ev) ];
                   counters = [];
                   gauges = [];
                   histograms = [];
                   domains = [];
                   segs = [];
                   config = J.Null;
                 }
               in
               let entries =
                 A.diff ~threshold:0.20 ~min_s:1e-4
                   (mk committed_ser committed_ev)
                   (mk r.fr_serial_s r.fr_event_s)
               in
               List.iter
                 (fun (e : A.diff_entry) ->
                   err "%s: %s regressed %.6fs -> %.6fs (%+.0f%% > 20%%)"
                     r.fr_name e.A.d_key e.A.d_base e.A.d_cur
                     (e.A.d_delta_frac *. 100.0))
                 (A.regressions entries)
             end)
         rows
     else
       Printf.printf
         "note: committed scale=%.3f jobs=%d vs run scale=%.3f jobs=%d — \
          invariants only, no numeric comparison\n"
         cscale cjobs scale jobs);
  match List.rev !errors with
  | [] ->
    Printf.printf "fsim --check OK (%d circuits, scale=%.3f)\n"
      (List.length rows) scale
  | es ->
    List.iter (fun e -> Printf.eprintf "fsim --check FAIL: %s\n" e) es;
    exit 1

(* ------------------------------------------------------------------ *)
(* Whole-flow benchmark: per-phase wall clock and key counters per      *)
(* circuit, serial vs jobs=N, read off a live metrics sink and written  *)
(* to BENCH_flow.json so the perf trajectory is tracked across PRs.     *)
(* ------------------------------------------------------------------ *)

let flow_bench () =
  let jobs =
    match Sys.getenv_opt "FST_JOBS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> max 1 n
        | None -> failwith (Printf.sprintf "FST_JOBS=%S is not an integer" s))
    | None -> Fst_exec.Pool.default_jobs ()
  in
  let module J = Fst_obs.Json in
  let module M = Fst_obs.Metrics in
  let phases = [ "classify"; "step2-atpg"; "step2-fsim"; "step3" ] in
  (* One instrumented run: a metrics-only sink (no trace buffer, no event
     log), so everything reported here comes off the registry snapshot. *)
  let variant ~jobs prep =
    let metrics = M.create () in
    let sink = Fst_obs.Sink.create ~metrics () in
    let cfg =
      Config.(
        flow_config |> with_jobs jobs |> with_sink sink
        |> with_engine (Lazy.force bench_engine))
    in
    let t0 = Unix.gettimeofday () in
    let flow = Flow.run ~config:cfg prep.scanned prep.config in
    let wall = Unix.gettimeofday () -. t0 in
    let gauge name = M.Gauge.value (M.gauge metrics name) in
    let count name = M.Counter.value (M.counter metrics name) in
    let a = flow.Flow.atpg in
    (* busy_frac is reported per *effective* domain slot. Requesting
       jobs=8 on a single-core machine runs every dispatch in-caller
       (Pool.effective_jobs clamps to the hardware core count), so
       domain slots 1..7 never exist; enumerating the requested count
       auto-created their gauges at 0.0 and produced the misleading
       [1,0,...,0] shape this replaces. *)
    let jobs_effective = Fst_exec.Pool.effective_jobs ~jobs max_int in
    let json =
      J.Obj
        [
          ("jobs", J.Int jobs);
          ("jobs_effective", J.Int jobs_effective);
          ("wall_s", J.Float wall);
          ( "phases",
            J.Obj
              (List.map
                 (fun p -> (p, J.Float (gauge ("flow." ^ p ^ ".wall_s"))))
                 phases) );
          (* Canonical registry names, so Analyze.diff lines these up
             against run.json counters without a rename table. *)
          ( "counters",
            J.Obj
              [
                ("atpg.podem.runs", J.Int a.Flow.podem_runs);
                ("atpg.podem.backtracks", J.Int a.Flow.podem_backtracks);
                ("atpg.podem.decisions", J.Int a.Flow.podem_decisions);
                ("atpg.podem.implications", J.Int a.Flow.podem_implications);
                ("atpg.seq.runs", J.Int a.Flow.seq_runs);
                ("atpg.seq.backtracks", J.Int a.Flow.seq_backtracks);
                ("fsim.detect_all.calls", J.Int (count "fsim.detect_all.calls"));
                ("fsim.detect_all.faults", J.Int (count "fsim.detect_all.faults"));
                ("flow.step2.blocks", J.Int (count "flow.step2.blocks"));
              ] );
          ( "busy_frac",
            J.List
              (List.init jobs_effective (fun k ->
                   J.Float
                     (gauge (Printf.sprintf "pool.domain%d.busy_frac" k)))) );
          ( "detected",
            J.Int (flow.Flow.step2.Flow.detected + flow.Flow.step3.Flow.detected)
          );
        ]
    in
    (wall, json)
  in
  let rows =
    List.map
      (fun prep ->
        let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
        Printf.eprintf "[flow-bench] %s...\n%!" name;
        let serial_wall, serial_json = variant ~jobs:1 prep in
        let multi_wall, multi_json = variant ~jobs prep in
        (name, serial_wall, multi_wall, serial_json, multi_json))
      (Lazy.force prepared_suite)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Whole-flow wall clock, serial vs jobs=%d" jobs)
      [
        ("name", Table.Left);
        ("serial", Table.Right);
        ("multicore", Table.Right);
        ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun (name, ser, mc, _, _) ->
      Table.row t
        [
          name;
          Table.cell_seconds ser;
          Table.cell_seconds mc;
          Printf.sprintf "%.2fx" (ser /. Float.max 1e-9 mc);
        ])
    rows;
  Table.print t;
  let doc =
    J.Obj
      [
        ("scale", J.Float scale);
        ("jobs", J.Int jobs);
        ("engine", J.String (Config.engine_to_string (Lazy.force bench_engine)));
        ( "circuits",
          J.List
            (List.map
               (fun (name, ser, mc, sj, mj) ->
                 J.Obj
                   [
                     ("name", J.String name);
                     ("serial", sj);
                     ("multicore", mj);
                     ("speedup", J.Float (ser /. Float.max 1e-9 mc));
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_flow.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_flow.json (%d circuits, jobs=%d)\n"
    (List.length rows) jobs

(* ------------------------------------------------------------------ *)
(* Static analysis: prune ratio against PODEM-proven untestables, and  *)
(* the backtrack reduction from feeding the implication graph to PODEM *)
(* as pruning hints. Recorded as BENCH_sca.json.                       *)
(* ------------------------------------------------------------------ *)

let sca_bench () =
  let module J = Fst_obs.Json in
  let module Sca = Fst_sca.Sca in
  let backtrack_limit = Config.default.Config.comb_backtrack in
  let rows =
    List.map
      (fun prep ->
        let name = prep.entry.Fst_gen.Suite.profile.Fst_gen.Gen.name in
        Printf.eprintf "[sca-bench] %s...\n%!" name;
        let scanned = prep.scanned and config = prep.config in
        let faults =
          Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
        in
        let cls = Classify.run scanned config faults in
        let hard = Array.map (fun i -> faults.(i)) cls.Classify.hard in
        let view =
          View.scan_mode scanned ~constraints:config.Scan.constraints ()
        in
        let t = Sca.analyze view ~faults:hard in
        let proven = Hashtbl.create 64 in
        List.iter
          (fun (u : Sca.untestable) -> Hashtbl.replace proven u.Sca.fault ())
          t.Sca.untestable;
        let scoap = Fst_testability.Scoap.compute view in
        (* Baseline: one plain PODEM run per hard fault; its Untestable
           verdicts are the denominator of the prune ratio. *)
        let podem_untestable = ref 0 and backtracks_plain = ref 0 in
        Array.iter
          (fun f ->
            let result, stats =
              Fst_atpg.Podem.run ~backtrack_limit ~scoap view ~faults:[ f ]
            in
            backtracks_plain :=
              !backtracks_plain + stats.Fst_atpg.Podem.backtracks;
            match result with
            | Fst_atpg.Podem.Untestable -> incr podem_untestable
            | Fst_atpg.Podem.Test _ | Fst_atpg.Podem.Aborted -> ())
          hard;
        (* Pruned: statically proven faults are skipped outright (that is
           the flow's phase-0 contract), the rest run with the implication
           hints. *)
        let backtracks_pruned = ref 0 in
        Array.iter
          (fun f ->
            if not (Hashtbl.mem proven f) then begin
              let _, stats =
                Fst_atpg.Podem.run ~backtrack_limit ~scoap
                  ~impossible:(Sca.impossible t) view ~faults:[ f ]
              in
              backtracks_pruned :=
                !backtracks_pruned + stats.Fst_atpg.Podem.backtracks
            end)
          hard;
        let s = t.Sca.stats in
        let prune_ratio =
          float_of_int s.Sca.untestable
          /. float_of_int (max 1 !podem_untestable)
        in
        ( name,
          Array.length hard,
          s,
          !podem_untestable,
          prune_ratio,
          !backtracks_plain,
          !backtracks_pruned ))
      (Lazy.force prepared_suite)
  in
  let t =
    Table.create ~title:"Static analysis vs PODEM over the hard faults"
      [
        ("name", Table.Left);
        ("hard", Table.Right);
        ("static", Table.Right);
        ("podem", Table.Right);
        ("prune", Table.Right);
        ("implications", Table.Right);
        ("bt plain", Table.Right);
        ("bt pruned", Table.Right);
        ("sca CPU", Table.Right);
      ]
  in
  List.iter
    (fun (name, hard, (s : Sca.stats), pu, ratio, btp, btr) ->
      Table.row t
        [
          name;
          Table.cell_int hard;
          Table.cell_int s.Sca.untestable;
          Table.cell_int pu;
          Printf.sprintf "%.0f%%" (100.0 *. ratio);
          Table.cell_int s.Sca.implications;
          Table.cell_int btp;
          Table.cell_int btr;
          Table.cell_seconds s.Sca.seconds;
        ])
    rows;
  Table.print t;
  let doc =
    J.Obj
      [
        ("scale", J.Float scale);
        ( "circuits",
          J.List
            (List.map
               (fun (name, hard, (s : Sca.stats), pu, ratio, btp, btr) ->
                 J.Obj
                   [
                     ("name", J.String name);
                     ("hard_faults", J.Int hard);
                     ("static_untestable", J.Int s.Sca.untestable);
                     ("podem_untestable", J.Int pu);
                     ("prune_ratio", J.Float ratio);
                     ("implications", J.Int s.Sca.implications);
                     ("learned", J.Int s.Sca.learned);
                     ("impossible_literals", J.Int s.Sca.impossible);
                     ("dominance_edges", J.Int s.Sca.dominance_edges);
                     ("sca_wall_s", J.Float s.Sca.seconds);
                     ("podem_backtracks_plain", J.Int btp);
                     ("podem_backtracks_pruned", J.Int btr);
                     ("podem_backtrack_delta", J.Int (btp - btr));
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_sca.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_sca.json (%d circuits)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the per-table kernels.                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let prep = prepare (Fst_gen.Suite.find ~scale:(min scale 0.1) "s1423") in
  let faults =
    Fst_fault.Fault.collapse prep.scanned (Fst_fault.Fault.universe prep.scanned)
  in
  let some_fault = faults.(Array.length faults / 2) in
  let stim = Sequences.alternating prep.scanned prep.config ~repeats:2 in
  let chunk = Array.sub faults 0 (min 62 (Array.length faults)) in
  let view =
    View.scan_mode prep.scanned ~constraints:prep.config.Scan.constraints ()
  in
  let scoap = Fst_testability.Scoap.compute view in
  let live_sink = Fst_obs.Sink.create ~metrics:(Fst_obs.Metrics.create ()) () in
  let tests =
    [
      Test.make ~name:"table2/classify-universe"
        (Staged.stage (fun () ->
             ignore (Classify.run prep.scanned prep.config faults)));
      Test.make ~name:"table3/podem-one-fault"
        (Staged.stage (fun () ->
             ignore
               (Fst_atpg.Podem.run ~backtrack_limit:200 ~scoap view
                  ~faults:[ some_fault ])));
      Test.make ~name:"table3/fsim-parallel-62"
        (Staged.stage (fun () ->
             ignore
               (Fst_fsim.Fsim.Parallel.detect_all prep.scanned ~faults:chunk
                  ~observe:prep.scanned.Circuit.outputs stim)));
      (* The observability overhead pair: the Engine entry point with the
         default null sink must cost the same as the raw backend (a single
         branch); a live metrics sink adds a couple of counters per call. *)
      Test.make ~name:"obs/fsim-engine-nullsink-62"
        (Staged.stage (fun () ->
             ignore
               (Fst_fsim.Fsim.Engine.detect_all ~jobs:1 prep.scanned
                  ~faults:chunk ~observe:prep.scanned.Circuit.outputs stim)));
      Test.make ~name:"obs/fsim-engine-livesink-62"
        (Staged.stage (fun () ->
             ignore
               (Fst_fsim.Fsim.Engine.detect_all ~obs:live_sink ~jobs:1
                  prep.scanned ~faults:chunk
                  ~observe:prep.scanned.Circuit.outputs stim)));
      Test.make ~name:"table3/fsim-serial-1"
        (Staged.stage (fun () ->
             ignore
               (Fst_fsim.Fsim.Serial.detect prep.scanned ~fault:some_fault
                  ~observe:prep.scanned.Circuit.outputs stim)));
      Test.make ~name:"table1/tpi-insert"
        (Staged.stage (fun () -> ignore (Tpi.insert prep.before)));
      Test.make ~name:"fig5/realize-comb-test"
        (Staged.stage (fun () ->
             ignore
               (Sequences.of_comb_test prep.scanned prep.config ~ff_values:[]
                  ~pi_values:[])));
    ]
  in
  let t =
    Table.create ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
      [ ("kernel", Table.Left); ("time/run", Table.Right) ]
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let cfg =
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
      in
      let results =
        Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          let cell =
            match Analyze.OLS.estimates result with
            | Some [ ns ] ->
              estimates := (name, ns) :: !estimates;
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            | Some _ | None -> "n/a"
          in
          Table.row t [ name; cell ])
        analysis)
    tests;
  Table.print t;
  (match
     ( List.assoc_opt "table3/fsim-parallel-62" !estimates,
       List.assoc_opt "obs/fsim-engine-nullsink-62" !estimates,
       List.assoc_opt "obs/fsim-engine-livesink-62" !estimates )
   with
  | Some raw, Some null_s, Some live when raw > 0.0 ->
    Printf.printf
      "\nobs overhead vs raw backend: null sink %+.2f%%, live metrics sink %+.2f%%\n"
      (100.0 *. (null_s -. raw) /. raw)
      (100.0 *. (live -. raw) /. raw)
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Service benchmark: an in-process fst serve daemon hammered by        *)
(* concurrent clients, cold (real flows) then warm (cache hits).        *)
(* Recorded as BENCH_serve.json.                                        *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))

let serve_bench () =
  let module J = Fst_obs.Json in
  let module Protocol = Fst_serve.Protocol in
  let module Client = Fst_serve.Client in
  let module Server = Fst_serve.Server in
  let n_clients = 8 and rounds = 3 in
  (* Eight distinct small circuits: enough that the cold phase runs real
     flows, small enough that the benchmark stays in seconds. *)
  let profiles =
    List.init 8 (fun i ->
        {
          Fst_gen.Gen.name = Printf.sprintf "svc%d" i;
          gates = 400 + (60 * i);
          ffs = 10 + (2 * i);
          pis = 8;
          pos = 6;
          seed = Int64.of_int (1000 + (7 * i));
        })
  in
  let quick_config =
    Config.(
      default |> with_jobs 1 |> with_comb_backtrack 100
      |> with_seq_backtrack 200 |> with_final_backtrack 500
      |> with_frames [ 1; 2 ]
      |> with_final_frames [ 1; 2; 4 ]
      |> to_json)
  in
  let submits =
    List.map
      (fun p ->
        {
          Protocol.kind = Protocol.Flow;
          netlist = Netfile.to_string (Fst_gen.Gen.generate p);
          name = p.Fst_gen.Gen.name;
          chains = 1;
          config = quick_config;
          wait = true;
          tenant = "bench";
        })
      profiles
  in
  let dir = Filename.temp_file "fst-bench-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let addr = Protocol.Unix_sock (Filename.concat dir "sock") in
  let server = Server.create ~workers:2 ~jobs_cap:1 ~addr () in
  let thread = Server.start server in
  let connect_retry () =
    let rec go n =
      match Client.connect addr with
      | c -> c
      | exception Unix.Unix_error _ when n > 0 ->
        Thread.delay 0.05;
        go (n - 1)
    in
    go 100
  in
  let timed c s =
    let t0 = Unix.gettimeofday () in
    match Client.submit c s with
    | Ok o -> (Unix.gettimeofday () -. t0, o.Client.cached)
    | Error e -> failwith ("serve bench submit: " ^ e)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      (* Cold: each circuit once, from one client — these are real flow
         runs and populate the cache. *)
      let c0 = connect_retry () in
      let cold =
        List.map
          (fun s ->
            let dt, cached = timed c0 s in
            assert (not cached);
            dt)
          submits
      in
      Client.close c0;
      (* Warm: n_clients concurrent clients replay the whole set rounds
         times; every submit must be served from the cache. *)
      let latencies = Array.make n_clients [] in
      let wall0 = Unix.gettimeofday () in
      let clients =
        List.init n_clients (fun i ->
            Thread.create
              (fun i ->
                let c = connect_retry () in
                for _ = 1 to rounds do
                  List.iter
                    (fun s ->
                      let dt, cached = timed c s in
                      if not cached then failwith "warm submit missed cache";
                      latencies.(i) <- dt :: latencies.(i))
                    submits
                done;
                Client.close c)
              i)
      in
      List.iter Thread.join clients;
      let warm_wall = Unix.gettimeofday () -. wall0 in
      let warm = Array.to_list latencies |> List.concat in
      let stats l =
        let a = Array.of_list l in
        Array.sort compare a;
        (percentile a 50.0, percentile a 99.0, Array.length a)
      in
      let cold_p50, cold_p99, cold_n = stats cold in
      let warm_p50, warm_p99, warm_n = stats warm in
      let jobs_per_s = float_of_int warm_n /. warm_wall in
      let speedup = cold_p50 /. warm_p50 in
      let t =
        Table.create ~title:"fst serve: concurrent clients vs the artifact cache"
          [ ("metric", Table.Left); ("value", Table.Right) ]
      in
      Table.row t [ "clients"; Table.cell_int n_clients ];
      Table.row t [ "cold submits"; Table.cell_int cold_n ];
      Table.row t [ "warm submits"; Table.cell_int warm_n ];
      Table.rule t;
      Table.row t [ "cold p50"; Printf.sprintf "%.1fms" (1e3 *. cold_p50) ];
      Table.row t [ "cold p99"; Printf.sprintf "%.1fms" (1e3 *. cold_p99) ];
      Table.row t [ "warm p50"; Printf.sprintf "%.2fms" (1e3 *. warm_p50) ];
      Table.row t [ "warm p99"; Printf.sprintf "%.2fms" (1e3 *. warm_p99) ];
      Table.rule t;
      Table.row t [ "warm jobs/sec"; Printf.sprintf "%.0f" jobs_per_s ];
      Table.row t [ "p50 speedup (cold/warm)"; Printf.sprintf "%.0fx" speedup ];
      Table.print t;
      if speedup < 10.0 then
        Printf.printf "WARNING: warm p50 is only %.1fx the cold p50\n" speedup;
      let doc =
        J.Obj
          [
            ("clients", J.Int n_clients);
            ("circuits", J.Int (List.length submits));
            ("rounds", J.Int rounds);
            ( "cold",
              J.Obj
                [
                  ("n", J.Int cold_n);
                  ("p50_ms", J.Float (1e3 *. cold_p50));
                  ("p99_ms", J.Float (1e3 *. cold_p99));
                ] );
            ( "warm",
              J.Obj
                [
                  ("n", J.Int warm_n);
                  ("p50_ms", J.Float (1e3 *. warm_p50));
                  ("p99_ms", J.Float (1e3 *. warm_p99));
                ] );
            ("warm_jobs_per_s", J.Float jobs_per_s);
            ("p50_speedup", J.Float speedup);
            ("cache", Fst_serve.Cache.stats_to_json
                        (Fst_serve.Cache.stats (Server.cache server)));
          ]
      in
      let oc = open_out "BENCH_serve.json" in
      J.to_channel oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote BENCH_serve.json (%d clients, %d warm submits)\n"
        n_clients warm_n)

let usage () =
  print_endline
    "usage: main.exe \
     [table1|table2|table3|fig5|ablate-alt|ablate-dist|ablate-trunc|ablate-order|ablate-compact|ablate-rtpg|coverage|fsim|flow|sca|serve|micro|all] \
     [--engine NAME] [fsim --check]"

let () =
  let target = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Printf.printf "functional-scan-chain-testing benchmarks (FST_SCALE=%.2f)\n%!"
    scale;
  match target with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "fig5" -> fig5 ()
  | "ablate-alt" -> ablate_alt ()
  | "ablate-dist" -> ablate_dist ()
  | "ablate-trunc" -> ablate_trunc ()
  | "ablate-order" -> ablate_order ()
  | "ablate-compact" -> ablate_compact ()
  | "ablate-rtpg" -> ablate_rtpg ()
  | "coverage" -> coverage_table ()
  | "fsim" ->
    if Array.exists (fun a -> a = "--check") Sys.argv then fsim_check ()
    else fsim_bench ()
  | "flow" -> flow_bench ()
  | "sca" -> sca_bench ()
  | "serve" -> serve_bench ()
  | "micro" -> micro ()
  | "all" ->
    table1 ();
    table2 ();
    table3 ();
    fig5 ();
    ablate_alt ();
    ablate_dist ();
    ablate_trunc ();
    ablate_order ();
    ablate_compact ();
    ablate_rtpg ();
    coverage_table ();
    fsim_bench ();
    flow_bench ();
    sca_bench ();
    serve_bench ();
    micro ()
  | _ -> usage ()
