open Fst_logic
open Fst_netlist
open Fst_tpi
open Fst_core
module Sca = Fst_sca.Sca
module Fault = Fst_fault.Fault
module Q = QCheck

(* The textbook redundant circuit: r = AND(a, NOT a) is constant 0, so
   r s-a-0 is unexcitable. *)
let redundant_circuit () =
  let b = Builder.create ~name:"redundant" () in
  let a = Builder.add_input ~name:"a" b in
  let na = Builder.add_gate ~name:"na" b Gate.Not [ a ] in
  let r = Builder.add_gate ~name:"r" b Gate.And [ a; na ] in
  Builder.mark_output b r;
  (Builder.freeze b, a, na, r)

(* Analyze over the uncollapsed universe, so every fault is its own
   target (collapsing would fold [r s-a-0] into its class
   representative). *)
let analyze_all c ~constraints =
  let view = View.scan_mode c ~constraints () in
  let faults = Fault.universe c in
  (Sca.analyze view ~faults, faults)

let scan_small ?(gates = 120) ?(ffs = 8) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 1 } c

let scan_view scanned (config : Scan.config) =
  View.scan_mode scanned ~constraints:config.Scan.constraints ()

let test_redundant_proven () =
  let c, _, _, r = redundant_circuit () in
  let t, _ = analyze_all c ~constraints:[] in
  (* Ternary propagation alone cannot decide r = AND(a, NOT a); the case
     split on [a] proves the literal r=1 impossible instead. *)
  Alcotest.(check bool) "r=1 proven impossible" true
    (Sca.impossible t r V3.One);
  let proven f =
    List.exists (fun (u : Sca.untestable) -> Fault.equal u.Sca.fault f)
      t.Sca.untestable
  in
  Alcotest.(check bool) "r s-a-0 proven" true
    (proven { Fault.site = Fault.Stem r; stuck = false });
  Alcotest.(check int) "stats.untestable matches" t.Sca.stats.Sca.untestable
    (List.length t.Sca.untestable)

let test_impossible_literals () =
  let c, _, _, r = redundant_circuit () in
  let t, _ = analyze_all c ~constraints:[] in
  Alcotest.(check bool) "r=1 impossible" true (Sca.impossible t r V3.One);
  Alcotest.(check bool) "r=0 possible" false (Sca.impossible t r V3.Zero);
  Alcotest.(check bool) "X never impossible" false (Sca.impossible t r V3.X)

let test_constrained_constants () =
  (* Pinning the input decides the whole circuit. *)
  let c, a, na, r = redundant_circuit () in
  let t, _ = analyze_all c ~constraints:[ (a, V3.One) ] in
  Helpers.check_v3 "na" V3.Zero t.Sca.base.(na);
  Helpers.check_v3 "r" V3.Zero t.Sca.base.(r);
  Alcotest.(check bool) "a=0 impossible" true (Sca.impossible t a V3.Zero)

let test_proofs_check () =
  (* Every shipped proof re-derives on a scanned generated circuit. *)
  let scanned, config = scan_small 3L in
  let view = scan_view scanned config in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let t = Sca.analyze view ~faults in
  Alcotest.(check bool) "some faults proven" true (t.Sca.untestable <> []);
  List.iter
    (fun (u : Sca.untestable) ->
      if not (Sca.check t u) then
        Alcotest.failf "proof of %s failed re-checking"
          (Fault.to_string scanned u.Sca.fault))
    t.Sca.untestable

let test_json_round_trip () =
  let scanned, config = scan_small 5L in
  let view = scan_view scanned config in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let t = Sca.analyze view ~faults in
  let s = Fst_obs.Json.to_string (Sca.to_json t) in
  match Fst_obs.Json.of_string s with
  | Fst_obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "sca report is not a JSON object"

let test_collapse_deterministic () =
  (* Representatives do not depend on the input order of the fault set:
     a reversed universe collapses to the same representative set. *)
  let scanned, _ = scan_small 7L in
  let universe = Fault.universe scanned in
  let reversed =
    Array.init (Array.length universe) (fun i ->
        universe.(Array.length universe - 1 - i))
  in
  let reps1, _ = Fault.collapse_classes scanned universe in
  let reps2, _ = Fault.collapse_classes scanned reversed in
  let sorted a =
    let a = Array.copy a in
    Array.sort Fault.compare a;
    a
  in
  let s1 = sorted reps1 and s2 = sorted reps2 in
  Alcotest.(check int) "same class count" (Array.length s1) (Array.length s2);
  Array.iteri
    (fun i f ->
      if not (Fault.equal f s2.(i)) then
        Alcotest.failf "representative %d differs: %s vs %s" i
          (Fault.to_string scanned f)
          (Fault.to_string scanned s2.(i)))
    s1

let seeds = Q.map Int64.of_int (Q.int_bound 100000)

(* Soundness: every statically proven fault is PODEM-untestable on the
   same view (or aborted — never given a test). *)
let prop_proven_is_podem_untestable =
  Q.Test.make ~name:"statically proven faults have no PODEM test" ~count:8
    seeds
    (fun seed ->
      let scanned, config = scan_small seed in
      let view = scan_view scanned config in
      let faults = Fault.collapse scanned (Fault.universe scanned) in
      let t = Sca.analyze view ~faults in
      let scoap = Fst_testability.Scoap.compute view in
      List.for_all
        (fun (u : Sca.untestable) ->
          match Fst_atpg.Podem.run ~scoap view ~faults:[ u.Sca.fault ] with
          | Fst_atpg.Podem.Test _, _ -> false
          | (Fst_atpg.Podem.Untestable | Fst_atpg.Podem.Aborted), _ -> true)
        t.Sca.untestable)

(* The phase-0 prune is a pure observer: it moves faults between the
   untestable buckets but never changes what the flow detects. *)
let prop_prune_pure_observer =
  let quick =
    Config.(
      default |> with_comb_backtrack 100 |> with_seq_backtrack 200
      |> with_final_backtrack 500 |> with_frames [ 1; 2 ]
      |> with_final_frames [ 1; 2; 4 ])
  in
  Q.Test.make ~name:"sca prune never changes the detected set" ~count:4 seeds
    (fun seed ->
      let scanned, config = scan_small ~gates:150 ~ffs:10 seed in
      let on = Flow.run ~config:Config.(quick |> with_sca_prune true) scanned config in
      let off =
        Flow.run ~config:Config.(quick |> with_sca_prune false) scanned config
      in
      let sorted l = List.sort Fault.compare l in
      on.Flow.step2.Flow.detected = off.Flow.step2.Flow.detected
      && on.Flow.step3.Flow.detected = off.Flow.step3.Flow.detected
      && sorted on.Flow.undetected = sorted off.Flow.undetected
      && sorted (on.Flow.untestable_faults @ on.Flow.untestable_static)
         = sorted (off.Flow.untestable_faults @ off.Flow.untestable_static))

(* Consistency: the propagation closure of any non-impossible literal never
   implies both values of one net. *)
let prop_implications_conflict_free =
  Q.Test.make ~name:"implication closure is conflict-free" ~count:8 seeds
    (fun seed ->
      let scanned, config = scan_small seed in
      let view = scan_view scanned config in
      let faults = Fault.collapse scanned (Fault.universe scanned) in
      let t = Sca.analyze view ~faults in
      let n = Array.length t.Sca.base in
      let ok = ref true in
      for net = 0 to n - 1 do
        List.iter
          (fun value ->
            if not (Sca.impossible t net (V3.of_bool value)) then begin
              let seen = Hashtbl.create 16 in
              List.iter
                (fun (m, v) ->
                  match Hashtbl.find_opt seen m with
                  | Some v' when v' <> v -> ok := false
                  | Some _ -> ()
                  | None -> Hashtbl.add seen m v)
                (Sca.implied t ~net ~value)
            end)
          [ false; true ]
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "redundant fault proven" `Quick test_redundant_proven;
    Alcotest.test_case "impossible literals" `Quick test_impossible_literals;
    Alcotest.test_case "constrained constants" `Quick
      test_constrained_constants;
    Alcotest.test_case "proofs re-check" `Quick test_proofs_check;
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "collapse representatives deterministic" `Quick
      test_collapse_deterministic;
    Helpers.qcheck prop_proven_is_podem_untestable;
    Helpers.qcheck prop_prune_pure_observer;
    Helpers.qcheck prop_implications_conflict_free;
  ]
