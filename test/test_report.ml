open Fst_report

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let test_render () =
  let t =
    Table.create ~title:"Table X"
      [ ("name", Table.Left); ("count", Table.Right) ]
  in
  Table.row t [ "alpha"; "10" ];
  Table.row t [ "b"; "2000" ];
  Table.rule t;
  Table.row t [ "total"; "2010" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (contains ~needle:"Table X" out);
  Alcotest.(check bool) "right-aligned count" true
    (contains ~needle:"   10" out);
  Alcotest.(check bool) "has rule" true (contains ~needle:"---" out)

let test_row_arity_checked () =
  let t = Table.create ~title:"t" [ ("a", Table.Left) ] in
  match Table.row t [ "x"; "y" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 12.5);
  Alcotest.(check string) "int pct" "5 (50.0%)" (Table.cell_int_pct 5 ~of_:10);
  Alcotest.(check string) "int pct zero" "5" (Table.cell_int_pct 5 ~of_:0);
  Alcotest.(check string) "seconds" "1.50s" (Table.cell_seconds 1.5)

(* --- Flow_report: the report as a first-class value --------------------- *)

let sample_report : Flow_report.t =
  {
    Flow_report.circuit = "s_demo";
    total = 120;
    affecting = 90;
    easy = 60;
    hard = 30;
    untestable_static = 3;
    step2_detected = 20;
    step2_untestable = 2;
    step2_vectors = 44;
    step2_cpu_s = 0.25;
    step3_detected = 4;
    step3_untestable = 1;
    step3_group_circuits = 5;
    step3_final_circuits = 2;
    step3_cpu_s = 0.5;
    podem_runs = 200;
    podem_backtracks = 77;
    podem_decisions = 500;
    podem_implications = 4000;
    podem_aborted_limit = 1;
    podem_aborted_deadline = 0;
    seq_runs = 30;
    seq_backtracks = 12;
    undetected = [ "g7/Q stuck-at-1"; "g9/D stuck-at-0" ];
    failed = [];
    aborted_faults = 1;
    failed_faults = 0;
    phases =
      [
        {
          Flow_report.phase = "step2";
          budget_exhausted = false;
          atpg_aborts = 1;
          cancelled_groups = 0;
          failed = 0;
        };
        {
          Flow_report.phase = "step3";
          budget_exhausted = true;
          atpg_aborts = 0;
          cancelled_groups = 2;
          failed = 0;
        };
      ];
  }

let test_flow_report_json_round_trip () =
  match Flow_report.of_json (Flow_report.to_json sample_report) with
  | Ok r ->
    Alcotest.(check bool) "round-trips structurally" true (r = sample_report);
    (* The bit-identical cache-hit contract: same value, same bytes. *)
    Alcotest.(check string) "re-rendered text identical"
      (Flow_report.to_text sample_report)
      (Flow_report.to_text r)
  | Error e -> Alcotest.failf "of_json rejected its own echo: %s" e

let test_flow_report_text_shape () =
  let out = Flow_report.to_text sample_report in
  Alcotest.(check bool) "has the report title" true
    (contains ~needle:"Functional scan chain testing report" out);
  (* The greppable lines the Makefile smokes rely on. *)
  Alcotest.(check bool) "aborts line" true (contains ~needle:"aborts:" out);
  Alcotest.(check bool) "budget_exhausted surfaced" true
    (contains ~needle:"budget_exhausted=true" out);
  Alcotest.(check bool) "undetected lines" true
    (contains ~needle:"undetected: g7/Q stuck-at-1" out);
  Alcotest.(check bool) "ends with newline" true
    (String.length out > 0 && out.[String.length out - 1] = '\n')

let test_flow_report_aggregates () =
  Alcotest.(check bool) "budget_exhausted ors the phases" true
    (Flow_report.budget_exhausted sample_report);
  Alcotest.(check int) "atpg aborts summed" 1
    (Flow_report.atpg_aborts sample_report);
  Alcotest.(check int) "cancelled groups summed" 2
    (Flow_report.cancelled_groups sample_report)

let test_flow_report_of_json_errors () =
  (match Flow_report.of_json (Fst_obs.Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty object accepted");
  match Flow_report.of_json (Fst_obs.Json.String "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object accepted"

let suite =
  [
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "row arity" `Quick test_row_arity_checked;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "flow report JSON round-trip" `Quick
      test_flow_report_json_round_trip;
    Alcotest.test_case "flow report text shape" `Quick
      test_flow_report_text_shape;
    Alcotest.test_case "flow report aggregates" `Quick
      test_flow_report_aggregates;
    Alcotest.test_case "flow report of_json rejects" `Quick
      test_flow_report_of_json_errors;
  ]
