(* The static analyzer: structural DRC, scan-DFT rules, waivers, and the
   qcheck seeded-defect properties (inject one known defect, lint must
   report exactly that rule at that location; clean circuits lint with zero
   errors; a lint run is a pure observer). *)

open Fst_logic
open Fst_netlist
open Fst_tpi
module D = Fst_lint.Diagnostic
module L = Fst_lint.Lint
module R = Fst_lint.Rules

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Diagnostics of [rule] in [r], optionally filtered by location pieces. *)
let find ?chain ?segment ?net ?line rule (r : L.report) =
  List.filter
    (fun d ->
      d.D.rule = rule
      && (match chain with None -> true | Some c -> d.D.loc.D.chain = Some c)
      && (match segment with
          | None -> true
          | Some s -> d.D.loc.D.segment = Some s)
      && (match net with None -> true | Some n -> d.D.loc.D.net = Some n)
      && match line with None -> true | Some l -> d.D.loc.D.line = Some l)
    r.L.diagnostics

let has ?chain ?segment ?net ?line rule r =
  find ?chain ?segment ?net ?line rule r <> []

(* Rebuild a circuit with net [i]'s driver replaced. *)
let with_node (c : Circuit.t) i node =
  let nodes = Array.copy c.Circuit.nodes in
  nodes.(i) <- node;
  Circuit.make ~name:c.Circuit.name ~nodes
    ~net_names:(Array.copy c.Circuit.net_names)
    ~outputs:(Array.copy c.Circuit.outputs)

(* Rebuild a circuit with one appended (non-output) node; returns the new
   circuit and the injected net id. *)
let append_node (c : Circuit.t) node name =
  let inj = Array.length c.Circuit.nodes in
  let nodes = Array.append c.Circuit.nodes [| node |] in
  let net_names = Array.append c.Circuit.net_names [| name |] in
  ( Circuit.make ~name:c.Circuit.name ~nodes ~net_names
      ~outputs:(Array.copy c.Circuit.outputs),
    inj )

let scanned_circuit ?(gates = 80) ?(ffs = 8) seed =
  Tpi.insert ~options:Tpi.default_options
    (Helpers.small_seq_circuit ~gates ~ffs (Int64.of_int seed))

(* Side-pin injection sites: [(chain, segment, path node, side net)] where
   the side net is gate-driven, appears on exactly one side pin overall
   (so the defect maps to one location), and is not itself part of any
   chain bookkeeping. [need_controlling] restricts to path gates with a
   controlling value (and/nand/or/nor). *)
let sens_candidates ?(need_controlling = true) c (config : Scan.config) =
  let excluded = Hashtbl.create 64 in
  Hashtbl.replace excluded config.Scan.scan_mode ();
  Array.iter
    (fun ch ->
      Hashtbl.replace excluded ch.Scan.scan_in ();
      Array.iter (fun f -> Hashtbl.replace excluded f ()) ch.Scan.ffs;
      Array.iter
        (fun (seg : Scan.segment) ->
          Array.iter (fun p -> Hashtbl.replace excluded p ()) seg.Scan.path)
        ch.Scan.segments)
    config.Scan.chains;
  let count = Hashtbl.create 64 in
  let triples = ref [] in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun s _ ->
          List.iter
            (fun (node, _pin, side) ->
              Hashtbl.replace count side
                (1 + (try Hashtbl.find count side with Not_found -> 0));
              triples := (ch.Scan.index, s, node, side) :: !triples)
            (Scan.side_pins c config ~chain:ch.Scan.index ~segment:s))
        ch.Scan.segments)
    config.Scan.chains;
  List.filter
    (fun (_, _, node, side) ->
      Hashtbl.find count side = 1
      && (not (Hashtbl.mem excluded side))
      && (match Circuit.node c side with
          | Circuit.Gate _ -> true
          | _ -> false)
      &&
      match Circuit.node c node with
      | Circuit.Gate (g, _) ->
        (not need_controlling) || Gate.controlling g <> None
      | _ -> false)
    (List.rev !triples)

(* --- structural rules ---------------------------------------------------- *)

let clean_net = "INPUT(a)\nINPUT(b)\nOUTPUT(q)\ng = AND(a, b)\nq = DFF(g)\n"

let warn_net =
  "INPUT(a)\nINPUT(b)\nINPUT(unused)\nOUTPUT(y)\ny = AND(a, b)\n\
   dead = OR(a, b)\nxsrc = CONSTX\nq = DFF(q)\n"

let test_structural_clean () =
  let c, lines = Netfile.parse_string_loc clean_net in
  let r = L.run ~lines c in
  check_int "errors" 0 r.L.errors;
  check_int "warnings" 0 r.L.warnings

let test_structural_warnings () =
  let c, lines = Netfile.parse_string_loc ~file:"warn.net" warn_net in
  let r = L.run ~lines ~file:"warn.net" c in
  check_int "errors" 0 r.L.errors;
  check "unused PI (line 3)" true (has ~line:3 "W-NET-UNUSED-PI" r);
  check "dead gate (line 6)" true (has ~line:6 "W-NET-DEAD" r);
  check "constx (line 7)" true (has ~line:7 "W-NET-CONSTX" r);
  check "ff self-loop (line 8)" true (has ~line:8 "W-NET-FF-SELFLOOP" r);
  let d = List.hd (find "W-NET-DEAD" r) in
  check "file in location" true (d.D.loc.D.file = Some "warn.net");
  check "key shape" true (D.key d = "W-NET-DEAD@dead")

let test_raw_dups_and_cycles () =
  (* Two duplicate definitions and two independent combinational cycles:
     elaboration would abort on the first of each; the raw pass reports
     all of them. *)
  let text =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n\
     l1 = AND(l2, a)\nl2 = OR(l1, b)\n\
     m1 = NAND(m2, a)\nm2 = NOR(m1, b)\n\
     y = OR(a, b)\nl1 = XOR(a, b)\n"
  in
  let raw = Netfile.parse_raw ~name:"rawlint" text in
  let r = L.run_raw raw in
  check_int "duplicates" 2 (List.length (find "E-NET-DUP" r));
  check_int "cycles" 2 (List.length (find "E-NET-CYCLE" r));
  let dup = List.hd (find "E-NET-DUP" r) in
  check "dup cites first line" true
    (Helpers.contains_substring ~needle:"first defined at line"
       dup.D.message);
  let cyc = List.hd (find "E-NET-CYCLE" r) in
  check "cycle path rendered" true
    (Helpers.contains_substring ~needle:" -> " cyc.D.message);
  check "raw errors gate" false (L.gate ~fail_on:L.Fail_error r)

(* --- scan-DFT rules ------------------------------------------------------ *)

let tamper_chain (config : Scan.config) f =
  let chains = Array.copy config.Scan.chains in
  chains.(0) <- f chains.(0);
  { config with Scan.chains }

let test_scan_clean () =
  let scanned, config = scanned_circuit 7 in
  let r = L.run ~config ~dynamic:true scanned in
  check_int "errors" 0 r.L.errors

let test_scan_parity () =
  let scanned, config = scanned_circuit 7 in
  let bad =
    tamper_chain config (fun ch ->
        let segments = Array.copy ch.Scan.segments in
        segments.(0) <-
          { segments.(0) with Scan.invert = not segments.(0).Scan.invert };
        { ch with Scan.segments = segments })
  in
  let r = L.run ~config:bad scanned in
  check "parity error at chain 0 segment 0" true
    (has ~chain:0 ~segment:0 "E-SCAN-PARITY" r);
  (* The same bookkeeping lie makes the dynamic shift check fail, with the
     structured error locating the same chain. *)
  match Scan.verify_shift scanned bad with
  | Ok () -> Alcotest.fail "verify_shift accepted a wrong parity"
  | Error (e :: _) ->
    check_int "chain" 0 e.Scan.se_chain;
    let d = D.of_shift_error scanned e in
    check "E-SCAN-SHIFT diagnostic" true (d.D.rule = "E-SCAN-SHIFT");
    check "chain in location" true (d.D.loc.D.chain = Some 0)
  | Error [] -> Alcotest.fail "empty shift-error list"

let test_scan_mode_constraint () =
  let scanned, config = scanned_circuit 7 in
  let bad =
    { config with
      Scan.constraints =
        List.remove_assoc config.Scan.scan_mode config.Scan.constraints }
  in
  check "missing scan-enable constraint" true
    (has "E-SCAN-MODE" (L.run ~config:bad scanned))

let test_scan_shape_and_so () =
  let scanned, config = scanned_circuit 7 in
  let truncated =
    tamper_chain config (fun ch ->
        { ch with
          Scan.ffs = Array.sub ch.Scan.ffs 0 (Array.length ch.Scan.ffs - 1)
        })
  in
  check "ff/segment count mismatch" true
    (has ~chain:0 "E-SCAN-SHAPE" (L.run ~config:truncated scanned));
  let bad_so =
    tamper_chain config (fun ch -> { ch with Scan.scan_out = ch.Scan.ffs.(0) })
  in
  check "scan-out not last flip-flop" true
    (has ~chain:0 "E-SCAN-SO" (L.run ~config:bad_so scanned))

let test_scan_dup_ff () =
  let scanned, config = scanned_circuit 7 in
  let bad =
    tamper_chain config (fun ch ->
        let ffs = Array.copy ch.Scan.ffs in
        ffs.(1) <- ffs.(0);
        { ch with Scan.ffs = ffs })
  in
  check "duplicated chain flip-flop" true
    (has "E-SCAN-DUP-FF" (L.run ~config:bad scanned))

let test_scan_nochain () =
  let scanned, config = scanned_circuit 7 in
  let c', inj =
    append_node scanned
      (Circuit.Dff scanned.Circuit.inputs.(0))
      "__lint_offchain"
  in
  check "off-chain flip-flop" true
    (has ~net:inj "W-SCAN-NOCHAIN" (L.run ~config c'))

let test_scan_depth () =
  let scanned, config = scanned_circuit 7 in
  let has_gate_path =
    Array.exists
      (fun ch ->
        Array.exists
          (fun (seg : Scan.segment) -> Array.length seg.Scan.path > 1)
          ch.Scan.segments)
      config.Scan.chains
  in
  check "fixture has a multi-gate segment" true has_gate_path;
  let limits = { R.default_limits with R.max_segment_delay = 0 } in
  check "depth warning under a zero budget" true
    (has "W-SCAN-DEPTH" (L.run ~limits ~config scanned))

(* --- waivers, gating, rendering ------------------------------------------ *)

let test_waivers () =
  let c, lines = Netfile.parse_string_loc warn_net in
  let r = L.run ~lines c in
  check "warnings gate when asked" false (L.gate ~fail_on:L.Fail_warning r);
  check "warnings pass at error level" true (L.gate ~fail_on:L.Fail_error r);
  check "never fails" true (L.gate ~fail_on:L.Fail_never r);
  let keys = List.map D.key r.L.diagnostics in
  let waivers =
    L.Waiver.of_string
      ("# a comment\n\n"
       ^ String.concat "\n" (List.map (fun k -> k ^ "  # inline") keys))
  in
  let r' = L.run ~lines ~waivers c in
  check_int "all findings waived" 0
    (r'.L.errors + r'.L.warnings + List.length r'.L.diagnostics);
  check_int "waived count" (List.length keys) (List.length r'.L.waived);
  check "waived report passes" true (L.gate ~fail_on:L.Fail_warning r')

let test_json_and_catalogue () =
  let c, lines = Netfile.parse_string_loc warn_net in
  let r = L.run ~lines c in
  let json = Fst_obs.Json.to_string (L.to_json r) in
  (match Fst_obs.Json.of_string json with
   | Fst_obs.Json.Obj fields ->
     check "version field" true (List.mem_assoc "version" fields);
     check "diagnostics field" true (List.mem_assoc "diagnostics" fields)
   | _ -> Alcotest.fail "lint JSON is not an object");
  let known = List.map (fun (rule, _, _) -> rule) L.catalogue in
  let scanned, config = scanned_circuit 7 in
  let r2 = L.run ~config ~dynamic:true scanned in
  List.iter
    (fun d ->
      check (Printf.sprintf "rule %s catalogued" d.D.rule) true
        (List.mem d.D.rule known))
    (r.L.diagnostics @ r2.L.diagnostics)

(* --- the flow pre-flight ------------------------------------------------- *)

let test_preflight () =
  let scanned, config = scanned_circuit ~gates:50 ~ffs:4 11 in
  let cfg =
    Fst_core.Config.(default |> with_preflight true |> with_jobs 1)
  in
  let bad =
    tamper_chain config (fun ch ->
        let segments = Array.copy ch.Scan.segments in
        segments.(0) <-
          { segments.(0) with Scan.invert = not segments.(0).Scan.invert };
        { ch with Scan.segments = segments })
  in
  (match Fst_core.Flow.run ~config:cfg scanned bad with
   | _ -> Alcotest.fail "preflight accepted a broken configuration"
   | exception Fst_core.Flow.Preflight_failed diags ->
     check "parity error surfaced" true
       (List.exists (fun d -> d.D.rule = "E-SCAN-PARITY") diags));
  let r = Fst_core.Flow.run ~config:cfg scanned config in
  check "clean configuration still runs" true
    (Fst_core.Flow.total_faults r > 0)

(* --- qcheck seeded-defect properties ------------------------------------- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 999)

(* Clean generated circuits with TPI-inserted chains lint with zero errors
   (the static sensitization analysis agrees with the dynamic shift check
   TPI already passed); the run is deterministic and a pure observer. *)
let prop_clean_deterministic_pure =
  QCheck.Test.make ~count:15 ~name:"clean scanned circuits lint clean"
    seed_arb (fun seed ->
      let scanned, config = scanned_circuit seed in
      let before_net = Netfile.to_string scanned in
      let before_cfg : Scan.config =
        Marshal.from_string (Marshal.to_string config []) 0
      in
      let r = L.run ~config ~dynamic:true scanned in
      let r' = L.run ~config ~dynamic:true scanned in
      r.L.errors = 0
      && r = r'
      && Netfile.to_string scanned = before_net
      && config = before_cfg)

(* Appending one dead gate yields exactly one W-NET-DEAD, located at the
   injected net. *)
let prop_dead_gate =
  QCheck.Test.make ~count:15 ~name:"injected dead gate -> W-NET-DEAD there"
    seed_arb (fun seed ->
      let scanned, config = scanned_circuit seed in
      let c', inj =
        append_node scanned
          (Circuit.Gate (Gate.Buf, [| scanned.Circuit.inputs.(0) |]))
          "__lint_dead"
      in
      let r = L.run ~config c' in
      List.length (find ~net:inj "W-NET-DEAD" r) = 1
      && r.L.errors = (L.run ~config scanned).L.errors)

(* Forcing one side input to its gate's controlling value yields exactly
   one E-SCAN-SENS at that (chain, segment, net) — and the dynamic shift
   check fails on the same circuit, confirming the static rule is the
   static complement of [verify_shift]. *)
let prop_side_controlling =
  QCheck.Test.make ~count:15
    ~name:"forced controlling side input -> E-SCAN-SENS there" seed_arb
    (fun seed ->
      let scanned, config = scanned_circuit seed in
      match sens_candidates scanned config with
      | [] -> true (* no injectable site in this circuit: vacuous *)
      | (chain, segment, node, side) :: _ ->
        let ctrl =
          match Circuit.node scanned node with
          | Circuit.Gate (g, _) -> Option.get (Gate.controlling g)
          | _ -> assert false
        in
        let c' = with_node scanned side (Circuit.Const ctrl) in
        let r = L.run ~config c' in
        List.length (find ~chain ~segment ~net:side "E-SCAN-SENS" r) = 1
        && find ~chain ~segment ~net:side "E-SCAN-SENS"
             (L.run ~config scanned)
           = []
        && (match Scan.verify_shift c' config with
            | Error _ -> true
            | Ok () -> false))

(* Driving one side input from an explicit X source yields E-SCAN-SENS at
   that location, W-NET-CONSTX at the injected net, and a W-SCAN-X
   category-2-hotspot warning on the segment whose side cone it enters. *)
let prop_side_constx =
  QCheck.Test.make ~count:15 ~name:"CONSTX into side cone -> X-path rules"
    seed_arb (fun seed ->
      let scanned, config = scanned_circuit seed in
      match sens_candidates ~need_controlling:false scanned config with
      | [] -> true
      | (chain, segment, _node, side) :: _ ->
        let c' = with_node scanned side (Circuit.Const V3.X) in
        let r = L.run ~config c' in
        List.length (find ~chain ~segment ~net:side "E-SCAN-SENS" r) = 1
        && has ~net:side "W-NET-CONSTX" r
        && has ~chain ~segment "W-SCAN-X" r)

let suite =
  [
    Alcotest.test_case "structural: clean netlist" `Quick
      test_structural_clean;
    Alcotest.test_case "structural: located warnings" `Quick
      test_structural_warnings;
    Alcotest.test_case "raw: all duplicates and cycles" `Quick
      test_raw_dups_and_cycles;
    Alcotest.test_case "scan: clean TPI output" `Quick test_scan_clean;
    Alcotest.test_case "scan: parity static+dynamic" `Quick test_scan_parity;
    Alcotest.test_case "scan: scan-enable constraint" `Quick
      test_scan_mode_constraint;
    Alcotest.test_case "scan: shape and scan-out" `Quick
      test_scan_shape_and_so;
    Alcotest.test_case "scan: duplicated flip-flop" `Quick test_scan_dup_ff;
    Alcotest.test_case "scan: off-chain flip-flop" `Quick test_scan_nochain;
    Alcotest.test_case "scan: segment depth" `Quick test_scan_depth;
    Alcotest.test_case "waivers and gating" `Quick test_waivers;
    Alcotest.test_case "json and rule catalogue" `Quick
      test_json_and_catalogue;
    Alcotest.test_case "flow preflight" `Quick test_preflight;
    Helpers.qcheck prop_clean_deterministic_pure;
    Helpers.qcheck prop_dead_gate;
    Helpers.qcheck prop_side_controlling;
    Helpers.qcheck prop_side_constx;
  ]
