open Fst_core

(* The unified Config surface: defaults, setters, the engine selector's
   CLI spellings, the CLI constructor and the JSON echo. *)

let test_defaults_match_legacy () =
  (* Config.default must describe the same flow the historical
     [Flow.default_params] did, with [`Auto] engine selection on top. *)
  let c = Config.default in
  Alcotest.(check string) "engine" "auto" (Config.engine_to_string c.Config.engine);
  Alcotest.(check int) "comb_backtrack" 200 c.Config.comb_backtrack;
  Alcotest.(check int) "seq_backtrack" 400 c.Config.seq_backtrack;
  Alcotest.(check int) "final_backtrack" 2000 c.Config.final_backtrack;
  Alcotest.(check (list int)) "frames" [ 1; 2; 4 ] c.Config.frames;
  Alcotest.(check (list int)) "final_frames" [ 1; 2; 4; 8 ] c.Config.final_frames;
  Alcotest.(check int) "random_blocks" 32 c.Config.random_blocks;
  Alcotest.(check int) "scan_backtrack" 200 c.Config.scan_backtrack;
  Alcotest.(check bool) "no budget" true (c.Config.time_budget = None);
  Alcotest.(check bool) "no preflight" false c.Config.preflight

let test_setters () =
  let c =
    Config.(
      default |> with_engine `Event |> with_jobs 3
      |> with_comb_backtrack 7 |> with_time_budget (Some 1.5)
      |> with_preflight true)
  in
  Alcotest.(check string) "engine" "event" (Config.engine_to_string c.Config.engine);
  Alcotest.(check int) "jobs" 3 c.Config.jobs;
  Alcotest.(check int) "comb_backtrack" 7 c.Config.comb_backtrack;
  Alcotest.(check bool) "budget" true (c.Config.time_budget = Some 1.5);
  Alcotest.(check bool) "preflight" true c.Config.preflight;
  (* Setters are functional: default is untouched. *)
  Alcotest.(check int) "default comb" 200 Config.default.Config.comb_backtrack;
  (* jobs clamps to at least one domain. *)
  Alcotest.(check int) "jobs clamp" 1 (Config.with_jobs 0 c).Config.jobs

let test_engine_names_round_trip () =
  List.iter
    (fun name ->
      match Config.engine_of_string name with
      | Some e -> Alcotest.(check string) name name (Config.engine_to_string e)
      | None -> Alcotest.failf "engine name %s did not parse" name)
    Config.engine_names;
  Alcotest.(check bool) "unknown rejected" true
    (Config.engine_of_string "warp" = None)

let test_of_cli () =
  (match Config.of_cli ~engine:"event" ~jobs:2 ~scale:0.5 ~preflight:true () with
   | Ok c ->
     Alcotest.(check string) "engine" "event"
       (Config.engine_to_string c.Config.engine);
     Alcotest.(check int) "jobs" 2 c.Config.jobs;
     Alcotest.(check bool) "scale" true (c.Config.dist_floor_scale = 0.5);
     Alcotest.(check bool) "preflight" true c.Config.preflight
   | Error e -> Alcotest.failf "of_cli rejected valid input: %s" e);
  (* jobs <= 0 means all cores. *)
  (match Config.of_cli ~jobs:0 () with
   | Ok c -> Alcotest.(check bool) "jobs defaulted" true (c.Config.jobs >= 1)
   | Error e -> Alcotest.failf "of_cli rejected valid input: %s" e);
  match Config.of_cli ~engine:"warp" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown engine accepted"

let test_to_json () =
  let j =
    Config.to_json
      Config.(default |> with_engine `Serial |> with_time_budget (Some 2.0))
  in
  let s = Fst_obs.Json.to_string j in
  (* Round-trips through the strict parser and carries the key fields. *)
  ignore (Fst_obs.Json.of_string s);
  let member k =
    match Fst_obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "missing config key %s" k
  in
  Alcotest.(check bool) "engine" true
    (member "engine" = Fst_obs.Json.String "serial");
  Alcotest.(check bool) "budget" true
    (member "time_budget" = Fst_obs.Json.Float 2.0);
  Alcotest.(check bool) "frames present" true (member "frames" <> Fst_obs.Json.Null)

(* The deprecated record constructors must keep compiling (shielded from
   the dev -warn-error wall here only) and behave exactly like the Config
   path: the whole one-release compatibility contract. *)
let test_legacy_params_still_work () =
  let scanned, config =
    let c = Helpers.small_seq_circuit ~gates:80 ~ffs:6 23L in
    Fst_tpi.Tpi.insert
      ~options:
        { Fst_tpi.Tpi.default_options with Fst_tpi.Tpi.chains = 1;
          justify_depth = 4 }
      c
  in
  let legacy =
    (let open Flow in
     { (default_params [@alert "-deprecated"]) with
       comb_backtrack = 100; seq_backtrack = 200; final_backtrack = 500;
       frames = [ 1; 2 ]; final_frames = [ 1; 2 ]; jobs = 1 })
  in
  let via_params = Flow.run ~params:legacy scanned config in
  let via_config =
    Flow.run
      ~config:
        Config.(
          default |> with_comb_backtrack 100 |> with_seq_backtrack 200
          |> with_final_backtrack 500 |> with_frames [ 1; 2 ]
          |> with_final_frames [ 1; 2 ] |> with_jobs 1)
      scanned config
  in
  Alcotest.(check int) "step2 detected" via_config.Flow.step2.Flow.detected
    via_params.Flow.step2.Flow.detected;
  Alcotest.(check int) "step3 detected" via_config.Flow.step3.Flow.detected
    via_params.Flow.step3.Flow.detected;
  Alcotest.(check bool) "undetected identical" true
    (via_params.Flow.undetected = via_config.Flow.undetected);
  (* Same contract for the scan-ATPG phase. *)
  let already_detected = Flow.chain_detected_faults via_params in
  let scan_legacy =
    (let open Scan_atpg in
     { (default_params [@alert "-deprecated"]) with
       backtrack = 50; random_blocks = 4; jobs = 1 })
  in
  let r_params = Scan_atpg.run ~params:scan_legacy scanned config ~already_detected in
  let r_config =
    Scan_atpg.run
      ~config:
        Config.(
          default |> with_scan_backtrack 50 |> with_scan_random_blocks 4
          |> with_jobs 1)
      scanned config ~already_detected
  in
  Alcotest.(check int) "scan detected" r_config.Scan_atpg.detected
    r_params.Scan_atpg.detected;
  Alcotest.(check int) "scan untestable" r_config.Scan_atpg.untestable
    r_params.Scan_atpg.untestable

let suite =
  [
    Alcotest.test_case "defaults match the legacy params" `Quick
      test_defaults_match_legacy;
    Alcotest.test_case "functional setters" `Quick test_setters;
    Alcotest.test_case "engine names round-trip" `Quick
      test_engine_names_round_trip;
    Alcotest.test_case "of_cli" `Quick test_of_cli;
    Alcotest.test_case "to_json round-trips" `Quick test_to_json;
    Alcotest.test_case "legacy params wrappers behave like Config" `Slow
      test_legacy_params_still_work;
  ]
