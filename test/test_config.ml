open Fst_core

(* The unified Config surface: defaults, setters, the engine selector's
   CLI spellings, the CLI constructor and the JSON echo. *)

let test_defaults () =
  (* Config.default must describe the same flow the historical defaults
     did, with [`Auto] engine selection on top. *)
  let c = Config.default in
  Alcotest.(check string) "engine" "auto" (Config.engine_to_string c.Config.engine);
  Alcotest.(check int) "comb_backtrack" 200 c.Config.comb_backtrack;
  Alcotest.(check int) "seq_backtrack" 400 c.Config.seq_backtrack;
  Alcotest.(check int) "final_backtrack" 2000 c.Config.final_backtrack;
  Alcotest.(check (list int)) "frames" [ 1; 2; 4 ] c.Config.frames;
  Alcotest.(check (list int)) "final_frames" [ 1; 2; 4; 8 ] c.Config.final_frames;
  Alcotest.(check int) "random_blocks" 32 c.Config.random_blocks;
  Alcotest.(check int) "scan_backtrack" 200 c.Config.scan_backtrack;
  Alcotest.(check bool) "no budget" true (c.Config.time_budget = None);
  Alcotest.(check bool) "no preflight" false c.Config.preflight;
  Alcotest.(check bool) "sca prune on" true c.Config.sca_prune;
  Alcotest.(check bool) "sca implications off" false c.Config.sca_implications

let test_setters () =
  let c =
    Config.(
      default |> with_engine `Event |> with_jobs 3
      |> with_comb_backtrack 7 |> with_time_budget (Some 1.5)
      |> with_preflight true)
  in
  Alcotest.(check string) "engine" "event" (Config.engine_to_string c.Config.engine);
  Alcotest.(check int) "jobs" 3 c.Config.jobs;
  Alcotest.(check int) "comb_backtrack" 7 c.Config.comb_backtrack;
  Alcotest.(check bool) "budget" true (c.Config.time_budget = Some 1.5);
  Alcotest.(check bool) "preflight" true c.Config.preflight;
  Alcotest.(check bool) "sca prune off" false
    (Config.with_sca_prune false c).Config.sca_prune;
  Alcotest.(check bool) "sca implications on" true
    (Config.with_sca_implications true c).Config.sca_implications;
  (* Setters are functional: default is untouched. *)
  Alcotest.(check int) "default comb" 200 Config.default.Config.comb_backtrack;
  (* jobs clamps to at least one domain. *)
  Alcotest.(check int) "jobs clamp" 1 (Config.with_jobs 0 c).Config.jobs

let test_engine_names_round_trip () =
  List.iter
    (fun name ->
      match Config.engine_of_string name with
      | Some e -> Alcotest.(check string) name name (Config.engine_to_string e)
      | None -> Alcotest.failf "engine name %s did not parse" name)
    Config.engine_names;
  Alcotest.(check bool) "unknown rejected" true
    (Config.engine_of_string "warp" = None)

let test_of_cli () =
  (match Config.of_cli ~engine:"event" ~jobs:2 ~scale:0.5 ~preflight:true () with
   | Ok c ->
     Alcotest.(check string) "engine" "event"
       (Config.engine_to_string c.Config.engine);
     Alcotest.(check int) "jobs" 2 c.Config.jobs;
     Alcotest.(check bool) "scale" true (c.Config.dist_floor_scale = 0.5);
     Alcotest.(check bool) "preflight" true c.Config.preflight
   | Error e -> Alcotest.failf "of_cli rejected valid input: %s" e);
  (* jobs <= 0 means all cores. *)
  (match Config.of_cli ~jobs:0 () with
   | Ok c -> Alcotest.(check bool) "jobs defaulted" true (c.Config.jobs >= 1)
   | Error e -> Alcotest.failf "of_cli rejected valid input: %s" e);
  match Config.of_cli ~engine:"warp" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown engine accepted"

let test_to_json () =
  let j =
    Config.to_json
      Config.(default |> with_engine `Serial |> with_time_budget (Some 2.0))
  in
  let s = Fst_obs.Json.to_string j in
  (* Round-trips through the strict parser and carries the key fields. *)
  ignore (Fst_obs.Json.of_string s);
  let member k =
    match Fst_obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "missing config key %s" k
  in
  Alcotest.(check bool) "engine" true
    (member "engine" = Fst_obs.Json.String "serial");
  Alcotest.(check bool) "budget" true
    (member "time_budget" = Fst_obs.Json.Float 2.0);
  Alcotest.(check bool) "frames present" true (member "frames" <> Fst_obs.Json.Null);
  Alcotest.(check bool) "sca_prune present" true
    (member "sca_prune" = Fst_obs.Json.Bool true);
  Alcotest.(check bool) "sca_implications present" true
    (member "sca_implications" = Fst_obs.Json.Bool false)

(* --- of_json: the exact inverse of to_json ----------------------------- *)

module Q = QCheck

(* An arbitrary semantic config: every field to_json serializes gets a
   chance to take a non-default value. *)
let gen_config =
  let open Q.Gen in
  let engine =
    oneofl (List.filter_map Config.engine_of_string Config.engine_names)
  in
  let frames = list_size (int_range 1 4) (int_range 1 16) in
  let seed = map Int64.of_int (int_range 0 0x3FFFFFFF) in
  let budget = opt (map (fun i -> float_of_int i /. 4.0) (int_range 1 400)) in
  engine >>= fun engine ->
  int_range 1 8 >>= fun jobs ->
  int_range 1 5000 >>= fun comb ->
  int_range 1 5000 >>= fun seq ->
  int_range 1 5000 >>= fun final ->
  frames >>= fun fr ->
  frames >>= fun ffr ->
  budget >>= fun trunc ->
  bool >>= fun curve ->
  int_range 0 64 >>= fun rb ->
  seed >>= fun rs ->
  bool >>= fun wr ->
  seed >>= fun srs ->
  bool >>= fun prune ->
  bool >>= fun implications ->
  budget >>= fun tb ->
  oneofl [ `Fail_fast; `Keep_going ] >>= fun on_error ->
  bool >>= fun preflight ->
  return
    Config.(
      default |> with_engine engine |> with_jobs jobs
      |> with_comb_backtrack comb |> with_seq_backtrack seq
      |> with_final_backtrack final |> with_frames fr
      |> with_final_frames ffr |> with_truncate_blocks trunc
      |> with_capture_curve curve |> with_random_blocks rb
      |> with_random_seed rs |> with_weighted_random wr
      |> with_scan_random_seed srs |> with_sca_prune prune
      |> with_sca_implications implications |> with_time_budget tb
      |> with_on_error on_error |> with_preflight preflight)

let prop_of_json_round_trip =
  Q.Test.make ~count:200 ~name:"of_json (to_json c) = c"
    (Q.make gen_config) (fun c ->
      match Config.of_json (Config.to_json c) with
      | Ok c' ->
        Config.equal_semantic c c'
        && c.Config.engine = c'.Config.engine
        && c.Config.jobs = c'.Config.jobs
        && c.Config.time_budget = c'.Config.time_budget
        && c.Config.on_error = c'.Config.on_error
        && c.Config.preflight = c'.Config.preflight
      | Error e -> Q.Test.fail_report ("of_json rejected its own echo: " ^ e))

let test_of_json_errors () =
  let rejected label j =
    match Config.of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": accepted")
  in
  rejected "unknown key" (Fst_obs.Json.Obj [ ("warp_factor", Fst_obs.Json.Int 9) ]);
  rejected "wrong type" (Fst_obs.Json.Obj [ ("jobs", Fst_obs.Json.String "two") ]);
  rejected "unknown engine"
    (Fst_obs.Json.Obj [ ("engine", Fst_obs.Json.String "warp") ]);
  rejected "not an object" (Fst_obs.Json.List []);
  (* Absent fields keep their defaults: an empty object is Config.default. *)
  match Config.of_json (Fst_obs.Json.Obj []) with
  | Ok c ->
    Alcotest.(check bool) "empty object is default" true
      (Config.equal_semantic c Config.default)
  | Error e -> Alcotest.failf "empty object rejected: %s" e

let test_of_json_accepts_ints () =
  (* Hand-written submit payloads spell whole-number floats as ints. *)
  match
    Config.of_json
      (Fst_obs.Json.Obj
         [
           ("time_budget", Fst_obs.Json.Int 5);
           ("dist_floor_scale", Fst_obs.Json.Int 1);
           ("random_seed", Fst_obs.Json.Int 42);
         ])
  with
  | Ok c ->
    Alcotest.(check bool) "budget" true (c.Config.time_budget = Some 5.0);
    Alcotest.(check bool) "seed" true (c.Config.random_seed = 42L)
  | Error e -> Alcotest.failf "int spellings rejected: %s" e

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "functional setters" `Quick test_setters;
    Alcotest.test_case "engine names round-trip" `Quick
      test_engine_names_round_trip;
    Alcotest.test_case "of_cli" `Quick test_of_cli;
    Alcotest.test_case "to_json round-trips" `Quick test_to_json;
    Helpers.qcheck prop_of_json_round_trip;
    Alcotest.test_case "of_json rejects malformed" `Quick test_of_json_errors;
    Alcotest.test_case "of_json accepts int spellings" `Quick
      test_of_json_accepts_ints;
  ]
