open Fst_core
module Protocol = Fst_serve.Protocol
module Cache = Fst_serve.Cache
module Server = Fst_serve.Server
module Client = Fst_serve.Client
module Json = Fst_obs.Json

(* --- cache-key semantics ------------------------------------------------ *)

(* The semantic fingerprint is the cache's notion of "same run": knobs
   that change only how the flow executes (engine, parallelism, sinks,
   budgets, error policy, preflight) must not move it; knobs that change
   what the flow computes must. *)
let test_fingerprint_invariant () =
  let base = Config.fingerprint Config.default in
  let same label cfg =
    Alcotest.(check string) label base (Config.fingerprint cfg)
  in
  same "jobs excluded" Config.(default |> with_jobs 7);
  same "time_budget excluded" Config.(default |> with_time_budget (Some 5.0));
  same "preflight excluded" Config.(default |> with_preflight false);
  same "sink excluded" Config.(default |> with_sink Fst_obs.Sink.null);
  (match Config.on_error_of_string "keep-going" with
  | Some p -> same "on_error excluded" Config.(default |> with_on_error p)
  | None -> Alcotest.fail "on_error_of_string keep-going");
  List.iter
    (fun name ->
      match Config.engine_of_string name with
      | Some e -> same ("engine excluded: " ^ name)
          Config.(default |> with_engine e)
      | None -> Alcotest.fail ("engine_of_string " ^ name))
    Config.engine_names

let test_fingerprint_sensitive () =
  let base = Config.fingerprint Config.default in
  let differs label cfg =
    if Config.fingerprint cfg = base then
      Alcotest.fail (label ^ ": fingerprint did not change")
  in
  differs "comb_backtrack" Config.(default |> with_comb_backtrack 1);
  differs "frames" Config.(default |> with_frames [ 9 ]);
  differs "random_seed" Config.(default |> with_random_seed 99L);
  differs "truncate_blocks"
    Config.(default |> with_truncate_blocks (Some 0.5));
  differs "sca_prune"
    Config.(default |> with_sca_prune (not Config.default.Config.sca_prune))

let test_netlist_hash () =
  let a =
    Fst_netlist.Netfile.parse_string ~name:"c"
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
  in
  let b =
    Fst_netlist.Netfile.parse_string ~name:"c"
      "# a comment\nINPUT(a)\n\nOUTPUT(y)\n   y = NOT( a )\n"
  in
  let c =
    Fst_netlist.Netfile.parse_string ~name:"c"
      "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n"
  in
  Alcotest.(check string)
    "comments/whitespace do not move the hash" (Cache.netlist_hash a)
    (Cache.netlist_hash b);
  if Cache.netlist_hash a = Cache.netlist_hash c then
    Alcotest.fail "distinct gates must hash differently"

let test_cache_key () =
  let k = Cache.key ~kind:"flow" ~netlist:"nh" ~chains:1 ~config_fp:"fp" in
  Alcotest.(check string) "deterministic" k
    (Cache.key ~kind:"flow" ~netlist:"nh" ~chains:1 ~config_fp:"fp");
  let distinct label k' =
    if k = k' then Alcotest.fail (label ^ ": key collision")
  in
  distinct "kind" (Cache.key ~kind:"lint" ~netlist:"nh" ~chains:1 ~config_fp:"fp");
  distinct "netlist" (Cache.key ~kind:"flow" ~netlist:"nh2" ~chains:1 ~config_fp:"fp");
  distinct "chains" (Cache.key ~kind:"flow" ~netlist:"nh" ~chains:2 ~config_fp:"fp");
  distinct "config" (Cache.key ~kind:"flow" ~netlist:"nh" ~chains:1 ~config_fp:"fp2")

let test_cache_lru () =
  let c = Cache.create ~max_entries:2 () in
  Cache.add c "k1" (Json.Int 1);
  Cache.add c "k2" (Json.Int 2);
  (* Touch k1 so k2 is the least-recently-used entry. *)
  ignore (Cache.find c "k1");
  Cache.add c "k3" (Json.Int 3);
  Alcotest.(check bool) "k2 evicted" true (Cache.find c "k2" = None);
  Alcotest.(check bool) "k1 kept" true (Cache.find c "k1" = Some (Json.Int 1));
  Alcotest.(check bool) "k3 kept" true (Cache.find c "k3" = Some (Json.Int 3));
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "entries" 2 s.Cache.entries

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let test_cache_disk () =
  let dir = temp_dir "fst-cache" in
  let c1 = Cache.create ~dir () in
  Cache.add c1 "deadbeef" (Json.Obj [ ("x", Json.Int 42) ]);
  (* A fresh cache over the same directory starts cold in memory but
     warm on disk: the find must fall through and count as a hit. *)
  let c2 = Cache.create ~dir () in
  (match Cache.find c2 "deadbeef" with
  | Some (Json.Obj [ ("x", Json.Int 42) ]) -> ()
  | _ -> Alcotest.fail "disk fallback did not replay the artifact");
  let s = Cache.stats c2 in
  Alcotest.(check int) "disk fallback is a hit" 1 s.Cache.hits;
  Alcotest.(check bool) "miss not counted" true (s.Cache.misses = 0)

(* --- protocol ----------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let submit =
    {
      Protocol.kind = Protocol.Flow;
      netlist = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
      name = "tiny";
      chains = 2;
      config = Json.Obj [ ("jobs", Json.Int 1) ];
      wait = false;
      tenant = "alice";
    }
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' ->
        Alcotest.(check bool) "request round-trips" true (req = req')
      | Error e -> Alcotest.fail ("round-trip: " ^ e))
    [
      Protocol.Submit submit;
      Protocol.Status "job-1";
      Protocol.Cancel "job-1";
      Protocol.Result "job-1";
      Protocol.Stats;
      Protocol.Ping;
      Protocol.Shutdown;
    ]

let test_protocol_rejects () =
  let bad label j =
    match Protocol.request_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": accepted a malformed request")
  in
  bad "wrong version"
    (Json.Obj [ ("v", Json.Int 99); ("cmd", Json.String "ping") ]);
  bad "unknown command"
    (Json.Obj
       [ ("v", Json.Int Protocol.version); ("cmd", Json.String "frobnicate") ]);
  bad "missing cmd" (Json.Obj [ ("v", Json.Int Protocol.version) ]);
  bad "not an object" (Json.String "ping");
  (* Every documented command name must be accepted (with its required
     arguments) — the doc table and the validator are the same table. *)
  Alcotest.(check bool) "submit documented" true
    (List.mem_assoc "submit" Protocol.commands)

(* --- end-to-end: in-process daemon over a unix socket ------------------- *)

let quick_config_json =
  Config.(
    default |> with_jobs 1 |> with_comb_backtrack 100
    |> with_seq_backtrack 200 |> with_final_backtrack 500
    |> with_frames [ 1; 2 ]
    |> with_final_frames [ 1; 2; 4 ]
    |> to_json)

let connect_retry addr =
  let rec go n =
    match Client.connect addr with
    | c -> c
    | exception Unix.Unix_error _ when n > 0 ->
      Thread.delay 0.05;
      go (n - 1)
  in
  go 100

let test_serve_end_to_end () =
  let dir = temp_dir "fst-serve" in
  let addr = Protocol.Unix_sock (Filename.concat dir "sock") in
  let server = Server.create ~workers:1 ~jobs_cap:1 ~addr () in
  let thread = Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      let netlist =
        Fst_netlist.Netfile.to_string
          (Helpers.small_seq_circuit ~gates:40 ~ffs:4 3L)
      in
      let submit =
        {
          Protocol.kind = Protocol.Flow;
          netlist;
          name = "small";
          chains = 1;
          config = quick_config_json;
          wait = true;
          tenant = "t1";
        }
      in
      let c = connect_retry addr in
      (match Client.request c Protocol.Ping with
      | Ok (Json.Obj kvs) ->
        Alcotest.(check bool) "pong" true
          (List.assoc_opt "kind" kvs = Some (Json.String "pong"))
      | Ok _ | Error _ -> Alcotest.fail "ping failed");
      let cold =
        match Client.submit c submit with
        | Ok o -> o
        | Error e -> Alcotest.fail ("cold submit: " ^ e)
      in
      Alcotest.(check bool) "cold run is uncached" false cold.Client.cached;
      Alcotest.(check bool) "cold run streamed events" true
        (cold.Client.events <> []);
      (* The identical resubmit must come from the cache, bit-identical. *)
      let warm =
        match Client.submit c submit with
        | Ok o -> o
        | Error e -> Alcotest.fail ("warm submit: " ^ e)
      in
      Alcotest.(check bool) "warm run is cached" true warm.Client.cached;
      Alcotest.(check string) "cache hit is bit-identical"
        (Json.to_string cold.Client.payload)
        (Json.to_string warm.Client.payload);
      (* Execution knobs must not defeat the cache: same semantics under
         a different jobs setting is still a hit. *)
      let retuned =
        {
          submit with
          Protocol.config =
            (match quick_config_json with
            | Json.Obj kvs ->
              Json.Obj
                (List.map
                   (function
                     | "jobs", _ -> ("jobs", Json.Int 4)
                     | kv -> kv)
                   kvs)
            | j -> j);
        }
      in
      (match Client.submit c retuned with
      | Ok o -> Alcotest.(check bool) "jobs knob is not semantic" true
          o.Client.cached
      | Error e -> Alcotest.fail ("retuned submit: " ^ e));
      (* A semantic edit must miss. *)
      let reseeded =
        {
          submit with
          Protocol.config =
            (match quick_config_json with
            | Json.Obj kvs ->
              Json.Obj
                (List.map
                   (function
                     | "random_seed", _ ->
                       ("random_seed", Json.String "0x2a")
                     | kv -> kv)
                   kvs)
            | j -> j);
        }
      in
      (match Client.submit c reseeded with
      | Ok o ->
        Alcotest.(check bool) "random_seed is semantic" false o.Client.cached
      | Error e -> Alcotest.fail ("reseeded submit: " ^ e));
      (match Client.request c Protocol.Stats with
      | Ok (Json.Obj kvs) -> (
        match List.assoc_opt "cache" kvs with
        | Some (Json.Obj ckvs) ->
          Alcotest.(check bool) "stats count hits" true
            (match List.assoc_opt "hits" ckvs with
            | Some (Json.Int n) -> n >= 2
            | _ -> false)
        | _ -> Alcotest.fail "stats: no cache block")
      | Ok _ | Error _ -> Alcotest.fail "stats failed");
      (* Unknown job ids are protocol errors, not crashes. *)
      (match Client.request c (Protocol.Status "no-such-job") with
      | Error _ -> ()
      | Ok j -> (
        match j with
        | Json.Obj kvs
          when List.assoc_opt "kind" kvs = Some (Json.String "error") ->
          ()
        | _ -> Alcotest.fail "status on unknown job must error"));
      Client.close c)

let test_serve_cancel () =
  let dir = temp_dir "fst-cancel" in
  let addr = Protocol.Unix_sock (Filename.concat dir "sock") in
  let server = Server.create ~workers:1 ~jobs_cap:1 ~addr () in
  let thread = Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () ->
      let netlist =
        Fst_netlist.Netfile.to_string
          (Helpers.small_seq_circuit ~gates:200 ~ffs:12 9L)
      in
      let submit =
        {
          Protocol.kind = Protocol.Flow;
          netlist;
          name = "cancelme";
          chains = 1;
          config = quick_config_json;
          wait = false;
          tenant = "t1";
        }
      in
      let c = connect_retry addr in
      let job =
        match Client.submit c submit with
        | Ok o -> o.Client.job
        | Error e -> Alcotest.fail ("submit: " ^ e)
      in
      (match Client.request c (Protocol.Cancel job) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("cancel: " ^ e));
      (* Result blocks until the job reaches a terminal state; a
         cancelled job answers with either a partial result (if it was
         already running) or an error frame — never a hang. *)
      (match Client.request c (Protocol.Result job) with
      | Ok _ | Error _ -> ());
      (match Client.request c (Protocol.Status job) with
      | Ok (Json.Obj kvs) ->
        let terminal =
          match List.assoc_opt "state" kvs with
          | Some (Json.String ("done" | "failed" | "cancelled")) -> true
          | _ -> false
        in
        Alcotest.(check bool) "cancelled job reaches a terminal state" true
          terminal
      | Ok _ | Error _ -> Alcotest.fail "status after cancel failed");
      Client.close c)

let suite =
  [
    Alcotest.test_case "fingerprint ignores execution knobs" `Quick
      test_fingerprint_invariant;
    Alcotest.test_case "fingerprint tracks semantic knobs" `Quick
      test_fingerprint_sensitive;
    Alcotest.test_case "netlist hash is canonical" `Quick test_netlist_hash;
    Alcotest.test_case "cache key separates inputs" `Quick test_cache_key;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache disk fallback" `Quick test_cache_disk;
    Alcotest.test_case "protocol round-trips" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects malformed" `Quick
      test_protocol_rejects;
    Alcotest.test_case "serve end-to-end with cache hits" `Quick
      test_serve_end_to_end;
    Alcotest.test_case "serve cancel" `Quick test_serve_cancel;
  ]
