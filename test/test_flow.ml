open Fst_netlist
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(gates = 150) ?(ffs = 10) ?(chains = 2) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains; justify_depth = 4 } c

let quick_config =
  Config.(
    default |> with_comb_backtrack 100 |> with_seq_backtrack 200
    |> with_final_backtrack 500 |> with_frames [ 1; 2 ]
    |> with_final_frames [ 1; 2; 4 ])

(* Multicore dispatch: step 2 is bit-identical for any [jobs]; step 3's
   wave scheduling may only move credit between buckets, never lose
   faults. *)
let test_flow_jobs () =
  let scanned, config = scan_small 11L in
  let r1 = Flow.run ~config:Config.(quick_config |> with_jobs 1) scanned config in
  let r3 = Flow.run ~config:Config.(quick_config |> with_jobs 3) scanned config in
  Alcotest.(check int) "step2 detected" r1.Flow.step2.Flow.detected
    r3.Flow.step2.Flow.detected;
  Alcotest.(check int) "step2 untestable" r1.Flow.step2.Flow.untestable
    r3.Flow.step2.Flow.untestable;
  Alcotest.(check int) "step2 undetected" r1.Flow.step2.Flow.undetected
    r3.Flow.step2.Flow.undetected;
  Alcotest.(check int) "step2 vectors" r1.Flow.step2.Flow.vectors
    r3.Flow.step2.Flow.vectors;
  Alcotest.(check int) "step3 partition" r3.Flow.step2.Flow.undetected
    (r3.Flow.step3.Flow.detected + r3.Flow.step3.Flow.untestable
   + r3.Flow.step3.Flow.undetected);
  Alcotest.(check int) "undetected list matches" r3.Flow.step3.Flow.undetected
    (List.length r3.Flow.undetected)

let test_flow_bookkeeping () =
  let scanned, config = scan_small 7L in
  let r = Flow.run ~config:quick_config scanned config in
  let hard = Array.length r.Flow.classify.Classify.hard in
  (* Step-2 buckets partition the hard faults. *)
  Alcotest.(check int) "step2 partition" hard
    (r.Flow.step2.Flow.detected + r.Flow.step2.Flow.untestable
   + r.Flow.step2.Flow.undetected);
  (* Step-3 buckets partition the step-2 undetected. *)
  Alcotest.(check int) "step3 partition" r.Flow.step2.Flow.undetected
    (r.Flow.step3.Flow.detected + r.Flow.step3.Flow.untestable
   + r.Flow.step3.Flow.undetected);
  Alcotest.(check int) "undetected list" r.Flow.step3.Flow.undetected
    (List.length r.Flow.undetected);
  Alcotest.(check int) "affecting accessor" r.Flow.classify.Classify.affecting
    (Flow.affecting r);
  Alcotest.(check int) "total accessor" (Array.length r.Flow.faults)
    (Flow.total_faults r)

(* The headline property: across small random instances, the flow leaves at
   most a tiny residue of the chain-affecting faults undetected. *)
let prop_flow_coverage =
  Q.Test.make ~name:"flow detects almost all hard faults" ~count:5
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:200 ~ffs:12 seed in
      let r = Flow.run ~config:quick_config scanned config in
      let hard = Array.length r.Flow.classify.Classify.hard in
      (* Allow a small residue: aborts are possible with the tight budgets
         used here, and a handful of scan-enable-network faults are only
         potentially detectable (see EXPERIMENTS.md). *)
      hard = 0
      || float_of_int (List.length r.Flow.undetected)
         <= Float.max 3.0 (0.15 *. float_of_int hard))

(* Figure 5's shape: the detection curve is monotone and most detections
   happen early. *)
let test_curve_monotone () =
  let scanned, config = scan_small ~gates:250 ~ffs:14 9L in
  let r = Flow.run ~config:quick_config scanned config in
  let curve = r.Flow.step2.Flow.curve in
  Alcotest.(check bool) "curve captured" true (Array.length curve > 0);
  let mono = ref true in
  for i = 1 to Array.length curve - 1 do
    if snd curve.(i) < snd curve.(i - 1) then mono := false;
    if fst curve.(i) <> i then mono := false
  done;
  Alcotest.(check bool) "monotone" true !mono;
  Alcotest.(check int) "final point is the detected count"
    r.Flow.step2.Flow.detected
    (snd curve.(Array.length curve - 1))

let test_truncation_reduces_vectors () =
  let scanned, config = scan_small ~gates:250 ~ffs:14 9L in
  let full = Flow.run ~config:quick_config scanned config in
  let truncated =
    Flow.run
      ~config:Config.(quick_config |> with_truncate_blocks (Some 0.5))
      scanned config
  in
  Alcotest.(check bool) "fewer vectors" true
    (truncated.Flow.step2.Flow.vectors <= full.Flow.step2.Flow.vectors);
  Alcotest.(check bool) "not fewer undetected after step2" true
    (truncated.Flow.step2.Flow.undetected >= full.Flow.step2.Flow.undetected)

(* Every fault the flow reports as undetectable really resists a pile of
   random scan-mode test sequences. *)
let prop_untestable_resists_random =
  Q.Test.make ~name:"untestable verdicts resist random sequences" ~count:4
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:150 ~ffs:8 seed in
      let r = Flow.run ~config:quick_config scanned config in
      Alcotest.(check int)
        "untestable counts match list"
        (r.Flow.step2.Flow.untestable + r.Flow.step3.Flow.untestable)
        (List.length r.Flow.untestable_faults);
      let rng = Fst_gen.Rng.create (Int64.add seed 77L) in
      let free =
        Array.to_list scanned.Circuit.inputs
        |> List.filter (fun i -> not (List.mem_assoc i config.Scan.constraints))
      in
      let random_block () =
        let ff_values =
          Array.to_list scanned.Circuit.dffs
          |> List.map (fun ff ->
                 (ff, Fst_logic.V3.of_bool (Fst_gen.Rng.bool rng)))
        in
        let pi_values =
          List.map
            (fun pi -> (pi, Fst_logic.V3.of_bool (Fst_gen.Rng.bool rng)))
            free
        in
        Sequences.of_comb_test scanned config ~ff_values ~pi_values
      in
      let stim =
        Sequences.concat (List.init 30 (fun _ -> random_block ()))
      in
      List.for_all
        (fun fault ->
          Fst_fsim.Fsim.Serial.detect scanned ~fault
            ~observe:scanned.Circuit.outputs stim
          = None)
        r.Flow.untestable_faults)

(* --- wall-clock budgets and checkpoint/resume --------------------------- *)

(* A near-zero budget must degrade cleanly: no exception, and every hard
   fault accounted for exactly once across detected / untestable /
   undetected / aborted. *)
let test_zero_budget_accounting () =
  let scanned, config = scan_small 7L in
  let r =
    Flow.run ~config:quick_config
      ~budget:(Fst_exec.Budget.of_seconds 0.0)
      scanned config
  in
  let hard = Array.length r.Flow.classify.Classify.hard in
  Alcotest.(check int) "identity over hard faults" hard
    (r.Flow.step2.Flow.detected + r.Flow.step2.Flow.untestable
   + r.Flow.step3.Flow.detected + r.Flow.step3.Flow.untestable
   + List.length r.Flow.undetected
   + List.length r.Flow.aborted);
  Alcotest.(check bool) "budget reported exhausted" true
    (Flow.budget_exhausted r.Flow.aborts);
  Alcotest.(check int) "aborted count matches list"
    (List.length r.Flow.aborted)
    r.Flow.aborts.Flow.aborted_faults;
  Alcotest.(check bool) "something was actually denied" true
    (hard = 0 || r.Flow.aborts.Flow.aborted_faults > 0)

(* An unlimited budget must report no aborts at all in the accounting. *)
let test_unlimited_budget_clean_accounting () =
  let scanned, config = scan_small 7L in
  let r = Flow.run ~config:quick_config scanned config in
  Alcotest.(check bool) "no phase exhausted" false
    (Flow.budget_exhausted r.Flow.aborts);
  Alcotest.(check int) "no aborted faults" 0
    r.Flow.aborts.Flow.aborted_faults;
  Alcotest.(check (list string)) "aborted list empty" []
    (List.map (Fst_fault.Fault.to_string scanned) r.Flow.aborted)

exception Killed

let counts r =
  ( r.Flow.step2.Flow.detected,
    r.Flow.step2.Flow.untestable,
    r.Flow.step2.Flow.vectors,
    r.Flow.step3.Flow.detected,
    r.Flow.step3.Flow.untestable,
    r.Flow.step3.Flow.group_circuits,
    r.Flow.step3.Flow.final_circuits )

let fault_names scanned fs =
  List.map (Fst_fault.Fault.to_string scanned) fs

(* Kill-and-resume round trip: interrupt the flow right after each stage's
   checkpoint lands, resume from the file, and require the resumed jobs=1
   run to reproduce the uninterrupted one bit for bit. *)
let test_kill_and_resume_round_trip () =
  let scanned, config = scan_small 7L in
  (* Cripple step 2 so that survivors reach the step-3 waves (otherwise
     there is no "step3-wave" checkpoint to interrupt). *)
  let config_q =
    Config.(
      quick_config |> with_jobs 1 |> with_comb_backtrack 1
      |> with_random_blocks 2)
  in
  let reference = Flow.run ~config:config_q scanned config in
  List.iter
    (fun stage ->
      let path = Filename.temp_file "fst-ckpt" ".bin" in
      let killed = ref false in
      (try
         ignore
           (Flow.run ~config:config_q ~checkpoint:path
              ~on_checkpoint:(fun s ->
                if s = stage && not !killed then begin
                  killed := true;
                  raise Killed
                end)
              scanned config)
       with Killed -> ());
      Alcotest.(check bool) (stage ^ " reached") true !killed;
      let resumed =
        Flow.run ~config:config_q ~checkpoint:path ~resume:true scanned
          config
      in
      Sys.remove path;
      Alcotest.(check bool)
        (stage ^ ": counts identical")
        true
        (counts resumed = counts reference);
      Alcotest.(check (list string))
        (stage ^ ": undetected identical")
        (fault_names scanned reference.Flow.undetected)
        (fault_names scanned resumed.Flow.undetected);
      Alcotest.(check (list string))
        (stage ^ ": untestable identical")
        (fault_names scanned reference.Flow.untestable_faults)
        (fault_names scanned resumed.Flow.untestable_faults);
      Alcotest.(check bool)
        (stage ^ ": curve identical")
        true
        (resumed.Flow.step2.Flow.curve = reference.Flow.step2.Flow.curve))
    [ "classify"; "step2-atpg"; "step2-fsim"; "step3-wave" ]

(* A checkpoint written for one circuit must be ignored when resuming on
   another: the run falls back to a fresh flow instead of mixing state. *)
let test_checkpoint_fingerprint_mismatch () =
  let scanned_a, config_a = scan_small 7L in
  let scanned_b, config_b = scan_small 11L in
  let config_q = Config.(quick_config |> with_jobs 1) in
  let path = Filename.temp_file "fst-ckpt" ".bin" in
  ignore (Flow.run ~config:config_q ~checkpoint:path scanned_a config_a);
  let fresh = Flow.run ~config:config_q scanned_b config_b in
  let resumed =
    Flow.run ~config:config_q ~checkpoint:path ~resume:true scanned_b
      config_b
  in
  Sys.remove path;
  Alcotest.(check bool) "mismatched checkpoint ignored" true
    (counts resumed = counts fresh)

let suite =
  [
    Alcotest.test_case "flow bookkeeping" `Quick test_flow_bookkeeping;
    Alcotest.test_case "multicore jobs invariants" `Quick test_flow_jobs;
    Helpers.qcheck prop_flow_coverage;
    Alcotest.test_case "figure-5 curve monotone" `Quick test_curve_monotone;
    Alcotest.test_case "truncation reduces vectors" `Quick test_truncation_reduces_vectors;
    Helpers.qcheck prop_untestable_resists_random;
    Alcotest.test_case "near-zero budget degrades cleanly" `Quick
      test_zero_budget_accounting;
    Alcotest.test_case "unlimited budget reports no aborts" `Quick
      test_unlimited_budget_clean_accounting;
    Alcotest.test_case "kill-and-resume round trip" `Quick
      test_kill_and_resume_round_trip;
    Alcotest.test_case "checkpoint fingerprint mismatch ignored" `Quick
      test_checkpoint_fingerprint_mismatch;
  ]
