open Fst_netlist
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(gates = 150) ?(ffs = 10) ?(chains = 2) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains; justify_depth = 4 } c

let quick_config =
  Config.(
    default |> with_comb_backtrack 100 |> with_seq_backtrack 200
    |> with_final_backtrack 500 |> with_frames [ 1; 2 ]
    |> with_final_frames [ 1; 2; 4 ])

(* Multicore dispatch: step 2 is bit-identical for any [jobs]; step 3's
   wave scheduling may only move credit between buckets, never lose
   faults. *)
let test_flow_jobs () =
  let scanned, config = scan_small 11L in
  let r1 = Flow.run ~config:Config.(quick_config |> with_jobs 1) scanned config in
  let r3 = Flow.run ~config:Config.(quick_config |> with_jobs 3) scanned config in
  Alcotest.(check int) "step2 detected" r1.Flow.step2.Flow.detected
    r3.Flow.step2.Flow.detected;
  Alcotest.(check int) "step2 untestable" r1.Flow.step2.Flow.untestable
    r3.Flow.step2.Flow.untestable;
  Alcotest.(check int) "step2 undetected" r1.Flow.step2.Flow.undetected
    r3.Flow.step2.Flow.undetected;
  Alcotest.(check int) "step2 vectors" r1.Flow.step2.Flow.vectors
    r3.Flow.step2.Flow.vectors;
  Alcotest.(check int) "step3 partition" r3.Flow.step2.Flow.undetected
    (r3.Flow.step3.Flow.detected + r3.Flow.step3.Flow.untestable
   + r3.Flow.step3.Flow.undetected);
  Alcotest.(check int) "undetected list matches" r3.Flow.step3.Flow.undetected
    (List.length r3.Flow.undetected)

let test_flow_bookkeeping () =
  let scanned, config = scan_small 7L in
  let r = Flow.run ~config:quick_config scanned config in
  let hard = Array.length r.Flow.classify.Classify.hard in
  (* Step-2 buckets plus the phase-0 static bucket partition the hard
     faults. *)
  Alcotest.(check int) "step2 partition" hard
    (r.Flow.step2.Flow.detected + r.Flow.step2.Flow.untestable
   + r.Flow.step2.Flow.undetected
    + List.length r.Flow.untestable_static);
  (* Step-3 buckets partition the step-2 undetected. *)
  Alcotest.(check int) "step3 partition" r.Flow.step2.Flow.undetected
    (r.Flow.step3.Flow.detected + r.Flow.step3.Flow.untestable
   + r.Flow.step3.Flow.undetected);
  Alcotest.(check int) "undetected list" r.Flow.step3.Flow.undetected
    (List.length r.Flow.undetected);
  Alcotest.(check int) "affecting accessor" r.Flow.classify.Classify.affecting
    (Flow.affecting r);
  Alcotest.(check int) "total accessor" (Array.length r.Flow.faults)
    (Flow.total_faults r)

(* The headline property: across small random instances, the flow leaves at
   most a tiny residue of the chain-affecting faults undetected. *)
let prop_flow_coverage =
  Q.Test.make ~name:"flow detects almost all hard faults" ~count:5
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:200 ~ffs:12 seed in
      let r = Flow.run ~config:quick_config scanned config in
      let hard = Array.length r.Flow.classify.Classify.hard in
      (* Allow a small residue: aborts are possible with the tight budgets
         used here, and a handful of scan-enable-network faults are only
         potentially detectable (see EXPERIMENTS.md). *)
      hard = 0
      || float_of_int (List.length r.Flow.undetected)
         <= Float.max 3.0 (0.15 *. float_of_int hard))

(* Figure 5's shape: the detection curve is monotone and most detections
   happen early. *)
let test_curve_monotone () =
  let scanned, config = scan_small ~gates:250 ~ffs:14 9L in
  let r = Flow.run ~config:quick_config scanned config in
  let curve = r.Flow.step2.Flow.curve in
  Alcotest.(check bool) "curve captured" true (Array.length curve > 0);
  let mono = ref true in
  for i = 1 to Array.length curve - 1 do
    if snd curve.(i) < snd curve.(i - 1) then mono := false;
    if fst curve.(i) <> i then mono := false
  done;
  Alcotest.(check bool) "monotone" true !mono;
  Alcotest.(check int) "final point is the detected count"
    r.Flow.step2.Flow.detected
    (snd curve.(Array.length curve - 1))

let test_truncation_reduces_vectors () =
  let scanned, config = scan_small ~gates:250 ~ffs:14 9L in
  let full = Flow.run ~config:quick_config scanned config in
  let truncated =
    Flow.run
      ~config:Config.(quick_config |> with_truncate_blocks (Some 0.5))
      scanned config
  in
  Alcotest.(check bool) "fewer vectors" true
    (truncated.Flow.step2.Flow.vectors <= full.Flow.step2.Flow.vectors);
  Alcotest.(check bool) "not fewer undetected after step2" true
    (truncated.Flow.step2.Flow.undetected >= full.Flow.step2.Flow.undetected)

(* Every fault the flow reports as undetectable really resists a pile of
   random scan-mode test sequences. *)
let prop_untestable_resists_random =
  Q.Test.make ~name:"untestable verdicts resist random sequences" ~count:4
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:150 ~ffs:8 seed in
      let r = Flow.run ~config:quick_config scanned config in
      Alcotest.(check int)
        "untestable counts match list"
        (r.Flow.step2.Flow.untestable + r.Flow.step3.Flow.untestable)
        (List.length r.Flow.untestable_faults);
      let rng = Fst_gen.Rng.create (Int64.add seed 77L) in
      let free =
        Array.to_list scanned.Circuit.inputs
        |> List.filter (fun i -> not (List.mem_assoc i config.Scan.constraints))
      in
      let random_block () =
        let ff_values =
          Array.to_list scanned.Circuit.dffs
          |> List.map (fun ff ->
                 (ff, Fst_logic.V3.of_bool (Fst_gen.Rng.bool rng)))
        in
        let pi_values =
          List.map
            (fun pi -> (pi, Fst_logic.V3.of_bool (Fst_gen.Rng.bool rng)))
            free
        in
        Sequences.of_comb_test scanned config ~ff_values ~pi_values
      in
      let stim =
        Sequences.concat (List.init 30 (fun _ -> random_block ()))
      in
      List.for_all
        (fun fault ->
          Fst_fsim.Fsim.Serial.detect scanned ~fault
            ~observe:scanned.Circuit.outputs stim
          = None)
        r.Flow.untestable_faults)

(* --- wall-clock budgets and checkpoint/resume --------------------------- *)

(* A near-zero budget must degrade cleanly: no exception, and every hard
   fault accounted for exactly once across detected / untestable /
   undetected / aborted. *)
let test_zero_budget_accounting () =
  let scanned, config = scan_small 7L in
  let r =
    Flow.run ~config:quick_config
      ~budget:(Fst_exec.Budget.of_seconds 0.0)
      scanned config
  in
  let hard = Array.length r.Flow.classify.Classify.hard in
  Alcotest.(check int) "identity over hard faults" hard
    (r.Flow.step2.Flow.detected + r.Flow.step2.Flow.untestable
   + r.Flow.step3.Flow.detected + r.Flow.step3.Flow.untestable
   + List.length r.Flow.untestable_static
   + List.length r.Flow.undetected
   + List.length r.Flow.aborted);
  Alcotest.(check bool) "budget reported exhausted" true
    (Flow.budget_exhausted r.Flow.aborts);
  Alcotest.(check int) "aborted count matches list"
    (List.length r.Flow.aborted)
    r.Flow.aborts.Flow.aborted_faults;
  Alcotest.(check bool) "something was actually denied" true
    (hard = 0 || r.Flow.aborts.Flow.aborted_faults > 0)

(* An unlimited budget must report no aborts at all in the accounting. *)
let test_unlimited_budget_clean_accounting () =
  let scanned, config = scan_small 7L in
  let r = Flow.run ~config:quick_config scanned config in
  Alcotest.(check bool) "no phase exhausted" false
    (Flow.budget_exhausted r.Flow.aborts);
  Alcotest.(check int) "no aborted faults" 0
    r.Flow.aborts.Flow.aborted_faults;
  Alcotest.(check (list string)) "aborted list empty" []
    (List.map (Fst_fault.Fault.to_string scanned) r.Flow.aborted)

exception Killed

let counts r =
  ( r.Flow.step2.Flow.detected,
    r.Flow.step2.Flow.untestable,
    r.Flow.step2.Flow.vectors,
    r.Flow.step3.Flow.detected,
    r.Flow.step3.Flow.untestable,
    r.Flow.step3.Flow.group_circuits,
    r.Flow.step3.Flow.final_circuits )

let fault_names scanned fs =
  List.map (Fst_fault.Fault.to_string scanned) fs

(* Kill-and-resume round trip: interrupt the flow right after each stage's
   checkpoint lands, resume from the file, and require the resumed jobs=1
   run to reproduce the uninterrupted one bit for bit. *)
let test_kill_and_resume_round_trip () =
  let scanned, config = scan_small 7L in
  (* Cripple step 2 so that survivors reach the step-3 waves (otherwise
     there is no "step3-wave" checkpoint to interrupt). *)
  let config_q =
    Config.(
      quick_config |> with_jobs 1 |> with_comb_backtrack 1
      |> with_random_blocks 2)
  in
  let reference = Flow.run ~config:config_q scanned config in
  List.iter
    (fun stage ->
      let path = Filename.temp_file "fst-ckpt" ".bin" in
      let killed = ref false in
      (try
         ignore
           (Flow.run ~config:config_q ~checkpoint:path
              ~on_checkpoint:(fun s ->
                if s = stage && not !killed then begin
                  killed := true;
                  raise Killed
                end)
              scanned config)
       with Killed -> ());
      Alcotest.(check bool) (stage ^ " reached") true !killed;
      let resumed =
        Flow.run ~config:config_q ~checkpoint:path ~resume:true scanned
          config
      in
      Sys.remove path;
      Alcotest.(check bool)
        (stage ^ ": counts identical")
        true
        (counts resumed = counts reference);
      Alcotest.(check (list string))
        (stage ^ ": undetected identical")
        (fault_names scanned reference.Flow.undetected)
        (fault_names scanned resumed.Flow.undetected);
      Alcotest.(check (list string))
        (stage ^ ": untestable identical")
        (fault_names scanned reference.Flow.untestable_faults)
        (fault_names scanned resumed.Flow.untestable_faults);
      Alcotest.(check bool)
        (stage ^ ": curve identical")
        true
        (resumed.Flow.step2.Flow.curve = reference.Flow.step2.Flow.curve))
    [ "classify"; "step2-atpg"; "step2-fsim"; "step3-wave" ]

(* A checkpoint written for one circuit must be ignored when resuming on
   another: the run falls back to a fresh flow instead of mixing state. *)
let test_checkpoint_fingerprint_mismatch () =
  let scanned_a, config_a = scan_small 7L in
  let scanned_b, config_b = scan_small 11L in
  let config_q = Config.(quick_config |> with_jobs 1) in
  let path = Filename.temp_file "fst-ckpt" ".bin" in
  ignore (Flow.run ~config:config_q ~checkpoint:path scanned_a config_a);
  let fresh = Flow.run ~config:config_q scanned_b config_b in
  let resumed =
    Flow.run ~config:config_q ~checkpoint:path ~resume:true scanned_b
      config_b
  in
  Sys.remove path;
  Alcotest.(check bool) "mismatched checkpoint ignored" true
    (counts resumed = counts fresh)

(* --- keep-going containment and the chaos harness ----------------------- *)

module Chaos = Fst_exec.Chaos

let keep_going_config = Config.(quick_config |> with_jobs 1 |> with_on_error `Keep_going)

(* Buckets over the whole flow, as name sets. *)
let bucket_names r =
  let scanned = r.Flow.scanned in
  let detected =
    let excluded = Hashtbl.create 64 in
    List.iter
      (fun f -> Hashtbl.replace excluded (Fst_fault.Fault.to_string scanned f) ())
      (r.Flow.undetected @ r.Flow.untestable_faults @ r.Flow.aborted
     @ r.Flow.failed);
    Array.to_list r.Flow.classify.Classify.hard
    |> List.map (fun i ->
           Fst_fault.Fault.to_string scanned
             r.Flow.classify.Classify.infos.(i).Classify.fault)
    |> List.filter (fun nm -> not (Hashtbl.mem excluded nm))
  in
  ( detected,
    fault_names scanned r.Flow.failed,
    fault_names scanned r.Flow.aborted )

let partition_holds r =
  Array.length r.Flow.classify.Classify.hard
  = r.Flow.step2.Flow.detected + r.Flow.step3.Flow.detected
    + List.length r.Flow.untestable_faults
    + List.length r.Flow.untestable_static
    + List.length r.Flow.undetected
    + List.length r.Flow.aborted + List.length r.Flow.failed

(* With chaos off, [`Keep_going] at jobs=1 is bit-identical to the
   fail-fast seed path: the wave-structured step 3 commits exactly the
   same stimuli, it only isolates differently on failure. *)
let test_keep_going_chaos_off_identical () =
  let scanned, config = scan_small 7L in
  let ff = Flow.run ~config:Config.(quick_config |> with_jobs 1) scanned config in
  let kg = Flow.run ~config:keep_going_config scanned config in
  Alcotest.(check bool) "counts identical" true (counts kg = counts ff);
  Alcotest.(check (list string)) "undetected identical"
    (fault_names scanned ff.Flow.undetected)
    (fault_names scanned kg.Flow.undetected);
  Alcotest.(check (list string)) "untestable identical"
    (fault_names scanned ff.Flow.untestable_faults)
    (fault_names scanned kg.Flow.untestable_faults);
  Alcotest.(check (list string)) "no failed bucket" []
    (fault_names scanned kg.Flow.failed);
  Alcotest.(check int) "accounting agrees" 0 kg.Flow.aborts.Flow.failed_faults

(* QCheck generator for chaos plans, with free shrinking to a minimal
   failing injection set via the list shrinker. *)
let plan_arb =
  let open Q.Gen in
  let inj =
    oneofl [ Chaos.Pool_task; Chaos.Engine; Chaos.Ckpt_save; Chaos.Ckpt_load ]
    >>= fun site ->
    int_bound 40 >>= fun at ->
    frequency
      [
        (6, return Chaos.Raise);
        (2, return (Chaos.Delay 0.001));
        (2, return Chaos.Cancel);
      ]
    >>= fun action -> return { Chaos.site; at; action }
  in
  Q.make
    ~print:(fun p -> "[" ^ Chaos.pp_plan p ^ "]")
    ~shrink:Q.Shrink.list
    (Q.Gen.list_size (Q.Gen.int_bound 10) inj)

let chaos_reference =
  lazy
    (let scanned, config = scan_small 7L in
     (scanned, config, Flow.run ~config:keep_going_config scanned config))

(* The headline robustness properties: under any injection plan with
   [`Keep_going], (a) every hard fault is accounted for exactly once,
   and (b) the injected run agrees with the clean run wherever it did
   not fail — its detections are a subset of the clean ones, and every
   clean detection it misses is explained by the failed/aborted
   buckets. *)
let prop_chaos_invariant_and_agreement =
  Q.Test.make ~name:"chaos keep-going: partition invariant and agreement"
    ~count:25 plan_arb
    (fun plan ->
      let scanned, config, clean = Lazy.force chaos_reference in
      let r =
        Chaos.install plan;
        Fun.protect ~finally:Chaos.clear (fun () ->
            Flow.run ~config:keep_going_config scanned config)
      in
      let detected, failed, aborted = bucket_names r in
      let clean_detected, _, _ = bucket_names clean in
      partition_holds r
      && List.for_all (fun nm -> List.mem nm clean_detected) detected
      && List.for_all
           (fun nm ->
             List.mem nm detected || List.mem nm failed
             || List.mem nm aborted)
           clean_detected)

(* Kill-and-resume with a corrupted checkpoint: whatever damage hits the
   primary file (truncation, bit flips, a stale fingerprint), the .prev
   last-good rotation brings the resumed jobs=1 run back bit-identical
   to the uninterrupted one. *)
let test_corrupt_checkpoint_resume () =
  let scanned, config = scan_small 7L in
  let config_q =
    Config.(
      quick_config |> with_jobs 1 |> with_comb_backtrack 1
      |> with_random_blocks 2)
  in
  let reference = Flow.run ~config:config_q scanned config in
  let corrupt_truncate path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic (n / 2) in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let corrupt_flip path =
    let ic = open_in_bin path in
    let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
    close_in ic;
    let k = Bytes.length s - 2 in
    Bytes.set s k (Char.chr (Char.code (Bytes.get s k) lxor 0x55));
    let oc = open_out_bin path in
    output_string oc (Bytes.to_string s);
    close_out oc
  in
  let corrupt_fingerprint path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let nl = String.index s '\n' in
    let header = String.sub s 0 nl in
    let rest = String.sub s nl (String.length s - nl) in
    let header' =
      match String.split_on_char ' ' header with
      | [ m; v; _fp; sum ] -> String.concat " " [ m; v; "stale"; sum ]
      | _ -> Alcotest.fail "unexpected checkpoint header"
    in
    let oc = open_out_bin path in
    output_string oc (header' ^ rest);
    close_out oc
  in
  List.iter
    (fun (what, corrupt) ->
      let path = Filename.temp_file "fst-ckpt" ".bin" in
      let killed = ref false in
      (try
         ignore
           (Flow.run ~config:config_q ~checkpoint:path
              ~on_checkpoint:(fun s ->
                if s = "step3-wave" && not !killed then begin
                  killed := true;
                  raise Killed
                end)
              scanned config)
       with Killed -> ());
      Alcotest.(check bool) (what ^ ": killed mid-step3") true !killed;
      Alcotest.(check bool)
        (what ^ ": .prev rotation exists")
        true
        (Sys.file_exists (Checkpoint.prev_path path));
      corrupt path;
      let recovered = ref false in
      let resumed =
        Flow.run ~config:config_q ~checkpoint:path ~resume:true
          ~on_resume:(fun o -> recovered := o = `Loaded Checkpoint.Recovered)
          scanned config
      in
      (try Sys.remove path with Sys_error _ -> ());
      (try Sys.remove (Checkpoint.prev_path path) with Sys_error _ -> ());
      Alcotest.(check bool) (what ^ ": recovered from .prev") true !recovered;
      Alcotest.(check bool)
        (what ^ ": counts identical")
        true
        (counts resumed = counts reference);
      Alcotest.(check (list string))
        (what ^ ": undetected identical")
        (fault_names scanned reference.Flow.undetected)
        (fault_names scanned resumed.Flow.undetected))
    [
      ("truncate", corrupt_truncate);
      ("bit-flip", corrupt_flip);
      ("stale-fingerprint", corrupt_fingerprint);
    ]

(* Chaos + kill + corrupt + resume: the persisted injection counters make
   the interrupted-and-resumed chaos run replay the exact injection
   sequence, so it stays bit-identical to the uninterrupted injected
   run. *)
let test_chaos_kill_and_resume_deterministic () =
  let scanned, config = scan_small 7L in
  let config_q =
    Config.(
      keep_going_config |> with_comb_backtrack 1 |> with_random_blocks 2)
  in
  let plan = Chaos.plan_of_seed ~p:0.01 ~span:300 1234 in
  let run_with_chaos f =
    Chaos.install plan;
    Fun.protect ~finally:Chaos.clear f
  in
  let reference = run_with_chaos (fun () -> Flow.run ~config:config_q scanned config) in
  let path = Filename.temp_file "fst-ckpt" ".bin" in
  let killed = ref false in
  (try
     run_with_chaos (fun () ->
         ignore
           (Flow.run ~config:config_q ~checkpoint:path
              ~on_checkpoint:(fun s ->
                if s = "step3-wave" && not !killed then begin
                  killed := true;
                  raise Killed
                end)
              scanned config))
   with Killed -> ());
  Alcotest.(check bool) "killed mid-step3" true !killed;
  (* Damage the primary on top of the kill: recovery restores the .prev
     snapshot's injection counters and the replayed segment consumes the
     same sequence numbers the first attempt did. *)
  (let ic = open_in_bin path in
   let n = in_channel_length ic in
   let s = really_input_string ic (max 1 (n / 2)) in
   close_in ic;
   let oc = open_out_bin path in
   output_string oc s;
   close_out oc);
  let resumed =
    run_with_chaos (fun () ->
        Flow.run ~config:config_q ~checkpoint:path ~resume:true scanned
          config)
  in
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (Checkpoint.prev_path path) with Sys_error _ -> ());
  Alcotest.(check bool) "partition holds" true (partition_holds resumed);
  Alcotest.(check bool) "counts identical" true
    (counts resumed = counts reference);
  Alcotest.(check (list string)) "failed bucket identical"
    (fault_names scanned reference.Flow.failed)
    (fault_names scanned resumed.Flow.failed);
  Alcotest.(check (list string)) "undetected identical"
    (fault_names scanned reference.Flow.undetected)
    (fault_names scanned resumed.Flow.undetected)

let suite =
  [
    Alcotest.test_case "flow bookkeeping" `Quick test_flow_bookkeeping;
    Alcotest.test_case "multicore jobs invariants" `Quick test_flow_jobs;
    Helpers.qcheck prop_flow_coverage;
    Alcotest.test_case "figure-5 curve monotone" `Quick test_curve_monotone;
    Alcotest.test_case "truncation reduces vectors" `Quick test_truncation_reduces_vectors;
    Helpers.qcheck prop_untestable_resists_random;
    Alcotest.test_case "near-zero budget degrades cleanly" `Quick
      test_zero_budget_accounting;
    Alcotest.test_case "unlimited budget reports no aborts" `Quick
      test_unlimited_budget_clean_accounting;
    Alcotest.test_case "kill-and-resume round trip" `Quick
      test_kill_and_resume_round_trip;
    Alcotest.test_case "checkpoint fingerprint mismatch ignored" `Quick
      test_checkpoint_fingerprint_mismatch;
    Alcotest.test_case "keep-going without chaos is bit-identical" `Quick
      test_keep_going_chaos_off_identical;
    Helpers.qcheck prop_chaos_invariant_and_agreement;
    Alcotest.test_case "corrupt-checkpoint resume recovers via .prev" `Quick
      test_corrupt_checkpoint_resume;
    Alcotest.test_case "chaos kill/corrupt/resume is deterministic" `Quick
      test_chaos_kill_and_resume_deterministic;
  ]
