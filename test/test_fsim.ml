open Fst_logic
open Fst_netlist
open Fst_fault
open Fst_fsim
module Q = QCheck

(* si -> ff0 -> ff1 -> po shift pair with an AND gate in between. *)
let small_chain () =
  let b = Builder.create () in
  let si = Builder.add_input ~name:"si" b in
  let en = Builder.add_input ~name:"en" b in
  let ff0 = Builder.add_dff ~name:"ff0" b ~data:si in
  let g = Builder.add_gate ~name:"g" b Gate.And [ ff0; en ] in
  let ff1 = Builder.add_dff ~name:"ff1" b ~data:g in
  Builder.mark_output b ff1;
  (Builder.freeze b, si, en, ff0, g, ff1)

let alternating_stim si en cycles =
  Array.init cycles (fun t ->
      let base = if t = 0 then [ (en, V3.One) ] else [] in
      (si, V3.of_bool (t / 2 mod 2 = 1)) :: base)

let test_serial_detects_stuck_chain () =
  let c, si, en, ff0, _g, _ff1 = small_chain () in
  let stim = alternating_stim si en 12 in
  let fault = { Fault.site = Fault.Stem ff0; stuck = false } in
  (match Fsim.Serial.detect c ~fault ~observe:c.Circuit.outputs stim with
   | Some _ -> ()
   | None -> Alcotest.fail "stuck chain flip-flop not detected");
  (* en stuck at 1 is redundant under this stimulus: en is applied as 1. *)
  let fault2 = { Fault.site = Fault.Stem en; stuck = true } in
  (match Fsim.Serial.detect c ~fault:fault2 ~observe:c.Circuit.outputs stim with
   | None -> ()
   | Some _ -> Alcotest.fail "en s-a-1 cannot be seen when en is driven to 1")

let test_detection_requires_binary_good () =
  (* With the side input en left at X, the good machine output is X and
     nothing may be reported detected. *)
  let c, si, _en, _ff0, _g, _ff1 = small_chain () in
  let stim =
    Array.init 10 (fun t -> [ (si, V3.of_bool (t mod 2 = 0)) ])
  in
  let fault = { Fault.site = Fault.Stem si; stuck = true } in
  match Fsim.Serial.detect c ~fault ~observe:c.Circuit.outputs stim with
  | None -> ()
  | Some _ -> Alcotest.fail "detected through an unknown good value"

let test_branch_fault_detection () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let y1 = Builder.add_gate ~name:"y1" b Gate.Buf [ a ] in
  let y2 = Builder.add_gate ~name:"y2" b Gate.Not [ a ] in
  Builder.mark_output b y1;
  Builder.mark_output b y2;
  let c = Builder.freeze b in
  let fault = { Fault.site = Fault.Branch { node = y1; pin = 0 }; stuck = true } in
  let stim = [| [ (a, V3.Zero) ] |] in
  (* The branch fault flips y1 only; y2 stays correct. *)
  (match Fsim.Serial.detect c ~fault ~observe:[| y1 |] stim with
   | Some 0 -> ()
   | Some _ | None -> Alcotest.fail "branch fault must show at y1");
  match Fsim.Serial.detect c ~fault ~observe:[| y2 |] stim with
  | None -> ()
  | Some _ -> Alcotest.fail "branch fault must not show at y2"

(* Serial and parallel fault simulation agree on random circuits, random
   faults and random stimuli. *)
let prop_serial_parallel_agree =
  Q.Test.make ~name:"serial and parallel fault simulation agree" ~count:25
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:60 ~ffs:6 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 7L) in
      let faults = Fault.universe c in
      let chosen =
        Array.init (min 100 (Array.length faults)) (fun _ ->
            Fst_gen.Rng.pick rng faults)
      in
      let cycles = 12 in
      let stim =
        Array.init cycles (fun _ ->
            Array.to_list c.Circuit.inputs
            |> List.map (fun pi ->
                   ( pi,
                     match Fst_gen.Rng.int rng 4 with
                     | 0 -> V3.X
                     | 1 -> V3.Zero
                     | _ -> V3.One )))
      in
      let par =
        Fsim.Parallel.detect_all c ~faults:chosen ~observe:c.Circuit.outputs
          stim
      in
      let ok = ref true in
      Array.iteri
        (fun i fault ->
          let ser =
            Fsim.Serial.detect c ~fault ~observe:c.Circuit.outputs stim
          in
          if ser <> par.(i) then ok := false)
        chosen;
      !ok)

(* One random workload reused by the engine-interface properties. *)
let random_workload seed =
  let c = Helpers.small_seq_circuit ~gates:60 ~ffs:6 seed in
  let rng = Fst_gen.Rng.create (Int64.add seed 7L) in
  let faults = Fault.universe c in
  let chosen =
    Array.init (min 100 (Array.length faults)) (fun _ ->
        Fst_gen.Rng.pick rng faults)
  in
  let block () =
    Array.init 12 (fun _ ->
        Array.to_list c.Circuit.inputs
        |> List.map (fun pi ->
               ( pi,
                 match Fst_gen.Rng.int rng 4 with
                 | 0 -> V3.X
                 | 1 -> V3.Zero
                 | _ -> V3.One )))
  in
  (c, chosen, List.init 3 (fun _ -> block ()))

(* Every back-end implements the same ENGINE semantics: identical
   per-fault detection cycles and drop blocks/cycles on both engine
   operations. [Event] must be bit-identical to [Serial], including where
   (block, cycle) each fault drops. *)
let prop_engines_agree =
  Q.Test.make ~name:"serial, bit-parallel and event engines agree" ~count:15
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let c, chosen, stimuli = random_workload seed in
      let observe = c.Circuit.outputs in
      let stim = List.hd stimuli in
      let ser_all = Fsim.Serial.detect_all c ~faults:chosen ~observe stim in
      let ser_drop =
        Fsim.Serial.detect_dropping c ~faults:chosen ~observe ~stimuli
      in
      ser_all = Fsim.Parallel.detect_all c ~faults:chosen ~observe stim
      && ser_all = Fsim.Event.detect_all c ~faults:chosen ~observe stim
      && ser_drop
         = Fsim.Parallel.detect_dropping c ~faults:chosen ~observe ~stimuli
      && ser_drop
         = Fsim.Event.detect_dropping c ~faults:chosen ~observe ~stimuli)

(* Cone soundness: under any fault, a net outside the fault's static
   fanout cone never diverges from the fault-free machine — the envelope
   the event-driven back-end relies on to skip work. *)
let prop_cone_soundness =
  Q.Test.make ~name:"nets outside the static cone never diverge" ~count:15
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let c, chosen, stimuli = random_workload seed in
      let all_nets = Array.init (Circuit.num_nets c) (fun i -> i) in
      let stim = List.hd stimuli in
      let good = Fsim.Serial.trace c ~fault:None ~observe:all_nets stim in
      Array.for_all
        (fun fault ->
          let cone = Fault.cone c fault in
          let in_cone = Array.make (Circuit.num_nets c) false in
          Array.iter (fun n -> in_cone.(n) <- true) cone;
          let bad =
            Fsim.Serial.trace c ~fault:(Some fault) ~observe:all_nets stim
          in
          let ok = ref true in
          Array.iteri
            (fun t row ->
              Array.iteri
                (fun n v ->
                  if (not in_cone.(n)) && not (V3.equal v bad.(t).(n)) then
                    ok := false)
                row)
            good;
          !ok)
        chosen)

(* Multicore dispatch and engine selection are invisible: any [jobs]
   value gives the single-core result, for every selector (including
   [`Auto]'s per-fault split) and both engine operations. *)
let prop_jobs_invariant =
  Q.Test.make ~name:"engine jobs>1 agrees with jobs=1" ~count:15
    (Q.pair
       (Q.map Int64.of_int (Q.int_bound 100000))
       (Q.int_range 2 6))
    (fun (seed, jobs) ->
      let c, chosen, stimuli = random_workload seed in
      let observe = c.Circuit.outputs in
      let stim = List.hd stimuli in
      List.for_all
        (fun engine ->
          Fsim.Engine.detect_all ~engine ~jobs:1 c ~faults:chosen ~observe
            stim
          = Fsim.Engine.detect_all ~engine ~jobs c ~faults:chosen ~observe
              stim
          && Fsim.Engine.detect_dropping ~engine ~jobs:1 c ~faults:chosen
               ~observe ~stimuli
             = Fsim.Engine.detect_dropping ~engine ~jobs c ~faults:chosen
                 ~observe ~stimuli)
        [ `Serial; `Parallel; `Event; `Auto ])

(* The pattern-parallel packed dropping path (lanes = stimulus blocks)
   returns exactly the serial block-scan answer: the lowest detecting
   block and its first cycle, per fault. *)
let prop_packed_dropping_agrees =
  Q.Test.make ~name:"pattern-packed dropping agrees with serial" ~count:15
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let c, chosen, stimuli = random_workload seed in
      let observe = c.Circuit.outputs in
      Fsim.Serial.detect_dropping c ~faults:chosen ~observe ~stimuli
      = Fsim.Parallel.detect_dropping_packed c ~faults:chosen ~observe
          ~stimuli)

(* The [`Auto] plan's serial guard: whatever the workload, no decision's
   modeled cost may exceed running the same faults serially, and the
   decisions partition the fault list. Checked on the s38417 suite
   profile (scaled), whose mix of huge and tiny cones exercises both
   partitions, and on a tiny workload where the guard must demote the
   bit-parallel partition to serial. *)
let test_plan_serial_guard () =
  let entry = Fst_gen.Suite.find ~scale:0.02 "s38417" in
  let c = Fst_gen.Gen.generate entry.Fst_gen.Suite.profile in
  let faults = Fault.collapse c (Fault.universe c) in
  let cycles = 200 in
  let check_plan c ~faults ~cycles =
    let ds = Fsim.Engine.plan c ~faults ~cycles in
    let serial_of n = n * max 1 (Circuit.gate_count c) * cycles in
    let seen = Array.make (Array.length faults) 0 in
    List.iter
      (fun d ->
        Array.iter (fun i -> seen.(i) <- seen.(i) + 1) d.Fsim.Engine.indices;
        Alcotest.(check bool)
          (Printf.sprintf "units %d <= serial %d" d.Fsim.Engine.units
             (serial_of (Array.length d.Fsim.Engine.indices)))
          true
          (d.Fsim.Engine.units
           <= serial_of (Array.length d.Fsim.Engine.indices)))
      ds;
    Alcotest.(check bool) "decisions partition the faults" true
      (Array.for_all (fun n -> n = 1) seen);
    ds
  in
  let ds = check_plan c ~faults ~cycles in
  Alcotest.(check bool) "s38417 profile plans at least one decision" true
    (List.length ds >= 1);
  (* A couple of large-cone faults on a small circuit: a 62-lane group
     would cost more than two serial passes, so the guard must demote
     that partition to [`Serial]. *)
  let c2 = Helpers.small_seq_circuit ~gates:60 ~ffs:6 11L in
  let sizes = Fault.cone_sizes c2 (Fault.universe c2) in
  let big = ref [] in
  Array.iteri
    (fun i s ->
      if s > max 8 (Circuit.num_nets c2 / 16) && List.length !big < 2 then
        big := (Fault.universe c2).(i) :: !big)
    sizes;
  match !big with
  | [] -> () (* no large cones in this circuit: nothing to demote *)
  | faults2 ->
    let ds2 = check_plan c2 ~faults:(Array.of_list faults2) ~cycles:10 in
    List.iter
      (fun d ->
        Alcotest.(check bool) "tiny workload never picks parallel" true
          (d.Fsim.Engine.backend <> `Parallel))
      ds2

let test_detect_dropping_blocks () =
  let c, si, en, ff0, _g, _ff1 = small_chain () in
  let faults =
    [|
      { Fault.site = Fault.Stem ff0; stuck = false };
      { Fault.site = Fault.Stem si; stuck = true };
    |]
  in
  let blank = Array.init 6 (fun _ -> [ (si, V3.X) ]) in
  let active = alternating_stim si en 12 in
  let out =
    Fsim.Parallel.detect_dropping c ~faults ~observe:c.Circuit.outputs
      ~stimuli:[ blank; active ]
  in
  (match out.(0) with
   | Some (1, _) -> ()
   | Some (b, _) -> Alcotest.failf "detected in wrong block %d" b
   | None -> Alcotest.fail "chain fault missed");
  match out.(1) with
  | Some (1, _) -> ()
  | Some _ | None -> Alcotest.fail "si stuck-at-1 should be caught in block 1"

let suite =
  [
    Alcotest.test_case "serial detects stuck chain" `Quick test_serial_detects_stuck_chain;
    Alcotest.test_case "no detection through X good" `Quick test_detection_requires_binary_good;
    Alcotest.test_case "branch fault locality" `Quick test_branch_fault_detection;
    Helpers.qcheck prop_serial_parallel_agree;
    Helpers.qcheck prop_engines_agree;
    Helpers.qcheck prop_cone_soundness;
    Helpers.qcheck prop_jobs_invariant;
    Helpers.qcheck prop_packed_dropping_agrees;
    Alcotest.test_case "auto plan never beats itself with serial" `Quick
      test_plan_serial_guard;
    Alcotest.test_case "dropping across blocks" `Quick test_detect_dropping_blocks;
  ]
