(* The deterministic chaos-injection harness: plan semantics, counter
   snapshot/restore, and its interaction with Retry and the isolated
   pool maps. Every test clears the global harness on exit — a leaked
   plan would poison unrelated suites. *)

module Chaos = Fst_exec.Chaos
module Retry = Fst_exec.Retry
module Pool = Fst_exec.Pool

let with_plan plan f =
  Chaos.install plan;
  Fun.protect ~finally:Chaos.clear f

(* Retry policy for tests: same classification, no real sleeping. *)
let fast_retry = { Retry.default with Retry.sleep = (fun _ -> ()) }

let test_disarmed_noop () =
  Chaos.clear ();
  Alcotest.(check bool) "inactive" false (Chaos.active ());
  Alcotest.(check bool) "point is Ok" true (Chaos.point Chaos.Engine = `Ok);
  Alcotest.(check bool) "snapshot empty" true (Chaos.snapshot () = [||])

let test_plan_of_seed_deterministic () =
  let p1 = Chaos.plan_of_seed ~p:0.2 ~span:100 42 in
  let p2 = Chaos.plan_of_seed ~p:0.2 ~span:100 42 in
  let p3 = Chaos.plan_of_seed ~p:0.2 ~span:100 43 in
  Alcotest.(check string) "same seed, same plan" (Chaos.pp_plan p1)
    (Chaos.pp_plan p2);
  Alcotest.(check bool) "plan is non-trivial" true (List.length p1 > 0);
  Alcotest.(check bool) "different seed, different plan" true
    (Chaos.pp_plan p1 <> Chaos.pp_plan p3)

let test_point_fires_at_sequence () =
  with_plan
    [ { Chaos.site = Chaos.Engine; at = 2; action = Chaos.Raise } ]
    (fun () ->
      Alcotest.(check bool) "hit 0 clean" true (Chaos.point Chaos.Engine = `Ok);
      Alcotest.(check bool) "hit 1 clean" true (Chaos.point Chaos.Engine = `Ok);
      (match Chaos.point Chaos.Engine with
       | exception Chaos.Injected why ->
         Alcotest.(check string) "payload names site#at" "engine#2" why
       | _ -> Alcotest.fail "hit 2 should raise");
      Alcotest.(check bool) "hit 3 clean" true (Chaos.point Chaos.Engine = `Ok);
      (* Other sites keep independent counters. *)
      Alcotest.(check bool) "other site untouched" true
        (Chaos.point Chaos.Pool_task = `Ok))

let test_cancel_and_delay () =
  with_plan
    [
      { Chaos.site = Chaos.Pool_task; at = 0; action = Chaos.Cancel };
      (* An absurd delay must be clamped to [max_delay]. *)
      { Chaos.site = Chaos.Pool_task; at = 1; action = Chaos.Delay 1000.0 };
    ]
    (fun () ->
      Alcotest.(check bool) "cancel surfaces" true
        (Chaos.point Chaos.Pool_task = `Cancel);
      let t0 = Fst_exec.Clock.now () in
      Alcotest.(check bool) "delay returns Ok" true
        (Chaos.point Chaos.Pool_task = `Ok);
      Alcotest.(check bool) "delay clamped" true
        (Fst_exec.Clock.now () -. t0 < 10.0 *. Chaos.max_delay +. 0.5))

let test_snapshot_restore () =
  with_plan
    [ { Chaos.site = Chaos.Engine; at = 1; action = Chaos.Raise } ]
    (fun () ->
      ignore (Chaos.point Chaos.Engine);
      let snap = Chaos.snapshot () in
      (match Chaos.point Chaos.Engine with
       | exception Chaos.Injected _ -> ()
       | _ -> Alcotest.fail "hit 1 should raise");
      (* Restoring rewinds the counters: the same injection replays. *)
      Chaos.restore snap;
      match Chaos.point Chaos.Engine with
      | exception Chaos.Injected _ -> ()
      | _ -> Alcotest.fail "restored hit 1 should raise again")

let test_injected_is_transient () =
  Alcotest.(check bool) "is_injected" true
    (Chaos.is_injected (Chaos.Injected "engine#0"));
  Alcotest.(check bool) "other exceptions are not" false
    (Chaos.is_injected Exit);
  Alcotest.(check bool) "Retry classifies it transient" true
    (Retry.default.Retry.transient (Chaos.Injected "engine#0"))

(* A one-shot injection at the pool-task site is absorbed by the retry;
   the map still returns all-Ok. *)
let test_pool_retry_absorbs_one_shot () =
  with_plan
    [ { Chaos.site = Chaos.Pool_task; at = 1; action = Chaos.Raise } ]
    (fun () ->
      let got =
        Pool.map_isolated ~jobs:1 ~retry:fast_retry Fun.id [| 0; 1; 2; 3 |]
      in
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "slot %d ok" i)
            true
            (o = Pool.Task.Ok i))
        got)

(* A plan that keeps firing defeats the retries: every task is
   quarantined with the injected exception, none of them drains the
   queue. *)
let test_pool_repeated_injection_quarantines () =
  with_plan
    (List.init 32 (fun at ->
         { Chaos.site = Chaos.Pool_task; at; action = Chaos.Raise }))
    (fun () ->
      let got =
        Pool.map_isolated ~jobs:1 ~retry:fast_retry Fun.id [| 0; 1; 2 |]
      in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Task.Failed (e, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "slot %d injected" i)
              true (Chaos.is_injected e)
          | _ -> Alcotest.failf "slot %d should be quarantined" i)
        got)

let test_site_names_and_pp () =
  Alcotest.(check string) "pool-task" "pool-task"
    (Chaos.site_name Chaos.Pool_task);
  Alcotest.(check string) "engine" "engine" (Chaos.site_name Chaos.Engine);
  Alcotest.(check string) "ckpt-save" "ckpt-save"
    (Chaos.site_name Chaos.Ckpt_save);
  Alcotest.(check string) "ckpt-load" "ckpt-load"
    (Chaos.site_name Chaos.Ckpt_load);
  let s =
    Chaos.pp_plan [ { Chaos.site = Chaos.Engine; at = 3; action = Chaos.Raise } ]
  in
  Alcotest.(check bool) "pp mentions the site" true
    (String.length s > 0 && String.sub s 0 6 = "engine")

let suite =
  [
    Alcotest.test_case "disarmed harness is a no-op" `Quick test_disarmed_noop;
    Alcotest.test_case "plan_of_seed deterministic" `Quick
      test_plan_of_seed_deterministic;
    Alcotest.test_case "point fires at planned sequence" `Quick
      test_point_fires_at_sequence;
    Alcotest.test_case "cancel and clamped delay" `Quick test_cancel_and_delay;
    Alcotest.test_case "snapshot/restore replays" `Quick test_snapshot_restore;
    Alcotest.test_case "Injected is transient" `Quick test_injected_is_transient;
    Alcotest.test_case "retry absorbs one-shot injection" `Quick
      test_pool_retry_absorbs_one_shot;
    Alcotest.test_case "repeated injection quarantines" `Quick
      test_pool_repeated_injection_quarantines;
    Alcotest.test_case "site names and plan printing" `Quick
      test_site_names_and_pp;
  ]
