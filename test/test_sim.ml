open Fst_logic
open Fst_netlist
open Fst_sim
module Q = QCheck

(* A 3-stage plain shift register: si -> ff0 -> ff1 -> ff2 (po). *)
let shift3 () =
  let b = Builder.create ~name:"shift3" () in
  let si = Builder.add_input ~name:"si" b in
  let ff0 = Builder.add_dff ~name:"ff0" b ~data:si in
  let ff1 = Builder.add_dff ~name:"ff1" b ~data:ff0 in
  let ff2 = Builder.add_dff ~name:"ff2" b ~data:ff1 in
  Builder.mark_output b ff2;
  (Builder.freeze b, si, ff2)

let test_shift_register () =
  let c, si, ff2 = shift3 () in
  let observed = ref [] in
  let pattern = [| V3.One; V3.Zero; V3.Zero; V3.One; V3.One; V3.X |] in
  Sim.run c ~cycles:(Array.length pattern)
    ~stimulus:(fun t -> [ (si, pattern.(t)) ])
    ~observe:(fun _ st -> observed := Sim.value st ff2 :: !observed);
  let got = Array.of_list (List.rev !observed) in
  (* Output lags input by three cycles; initial state is X. *)
  Helpers.check_v3 "t0" V3.X got.(0);
  Helpers.check_v3 "t3" V3.One got.(3);
  Helpers.check_v3 "t4" V3.Zero got.(4);
  Helpers.check_v3 "t5" V3.Zero got.(5)

let test_comb_eval () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let bb = Builder.add_input ~name:"b" b in
  let y = Builder.add_gate ~name:"y" b Gate.Nand [ a; bb ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let st = Sim.create c in
  Sim.set_input c st a V3.One;
  Sim.set_input c st bb V3.One;
  Sim.eval_comb c st;
  Helpers.check_v3 "nand(1,1)" V3.Zero (Sim.value st y)

let test_const_nets () =
  let b = Builder.create () in
  let k = Builder.add_const ~name:"k1" b V3.One in
  let a = Builder.add_input ~name:"a" b in
  let y = Builder.add_gate ~name:"y" b Gate.And [ k; a ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let st = Sim.create c in
  Sim.set_input c st a V3.Zero;
  Sim.eval_comb c st;
  Helpers.check_v3 "and(1,0)" V3.Zero (Sim.value st y)

let test_set_input_guard () =
  let c, _si, ff2 = shift3 () in
  let st = Sim.create c in
  match Sim.set_input c st ff2 V3.One with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_simultaneous_latch () =
  (* A two-stage swap: ff0 <- ff1, ff1 <- ff0. After one clock the values
     must exchange (not cascade), proving the latch is simultaneous. *)
  let b = Builder.create () in
  let ff0 = Builder.add_dff_placeholder ~name:"f0" b in
  let ff1 = Builder.add_dff_placeholder ~name:"f1" b in
  Builder.connect_dff b ~ff:ff0 ~data:ff1;
  Builder.connect_dff b ~ff:ff1 ~data:ff0;
  Builder.mark_output b ff0;
  let c = Builder.freeze b in
  let st = Sim.create c in
  Sim.set_ff c st ff0 V3.One;
  Sim.set_ff c st ff1 V3.Zero;
  Sim.eval_comb c st;
  Sim.clock c st;
  Helpers.check_v3 "ff0 got old ff1" V3.Zero (Sim.value st ff0);
  Helpers.check_v3 "ff1 got old ff0" V3.One (Sim.value st ff1)

(* Monotonicity: refining an X primary input to a binary value never
   changes an output that was already binary. *)
let prop_monotone =
  Q.Test.make ~name:"3-valued simulation is monotone" ~count:60
    (Q.pair (Q.map Int64.of_int (Q.int_bound 10000)) (Q.int_bound 1000))
    (fun (seed, salt) ->
      let c = Helpers.small_seq_circuit seed in
      let rng = Fst_gen.Rng.create (Int64.of_int (salt + 17)) in
      let base =
        Array.map
          (fun pi ->
            ( pi,
              match Fst_gen.Rng.int rng 3 with
              | 0 -> V3.Zero
              | 1 -> V3.One
              | _ -> V3.X ))
          c.Circuit.inputs
      in
      let refined =
        Array.map
          (fun (pi, v) ->
            ( pi,
              if V3.equal v V3.X && Fst_gen.Rng.bool rng then
                V3.of_bool (Fst_gen.Rng.bool rng)
              else v ))
          base
      in
      let out values =
        let st = Sim.create c in
        Array.iter (fun (pi, v) -> Sim.set_input c st pi v) values;
        Sim.eval_comb c st;
        Sim.outputs c st
      in
      let before = out base and after = out refined in
      Array.for_all2 (fun a b -> V3.refines a b) after before)

(* The event-driven engine matches the sweep engine cycle for cycle on
   random circuits and stimuli. *)
let prop_event_sim_equivalent =
  Q.Test.make ~name:"event-driven simulation matches sweep simulation" ~count:25
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:120 ~ffs:8 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 5L) in
      let sweep = Sim.create c in
      let ev = Event_sim.create c in
      let ok = ref true in
      for _ = 1 to 12 do
        Array.iter
          (fun pi ->
            let v =
              match Fst_gen.Rng.int rng 3 with
              | 0 -> V3.Zero
              | 1 -> V3.One
              | _ -> V3.X
            in
            Sim.set_input c sweep pi v;
            Event_sim.set_input ev pi v)
          c.Circuit.inputs;
        Sim.eval_comb c sweep;
        Event_sim.settle ev;
        for net = 0 to Circuit.num_nets c - 1 do
          if not (V3.equal (Sim.value sweep net) (Event_sim.value ev net)) then
            ok := false
        done;
        Sim.clock c sweep;
        Event_sim.clock ev
      done;
      !ok)

(* A random stimulus of [cycles] cycles over the primary inputs. *)
let random_stim rng (c : Circuit.t) cycles =
  Array.init cycles (fun _ ->
      Array.to_list c.Circuit.inputs
      |> List.map (fun pi ->
             ( pi,
               match Fst_gen.Rng.int rng 4 with
               | 0 -> V3.X
               | 1 -> V3.Zero
               | _ -> V3.One )))

(* The interpreted machine's trace for cross-checking: per cycle, the
   post-settle value of every net. *)
let interpreted_trace (c : Circuit.t) stim =
  let st = Sim.create c in
  let rows = ref [] in
  Array.iter
    (fun assigns ->
      List.iter (fun (pi, v) -> Sim.set_input c st pi v) assigns;
      Sim.eval_comb c st;
      rows := Array.copy (Sim.values st) :: !rows;
      Sim.clock c st)
    stim;
  Array.of_list (List.rev !rows)

(* The compiled levelized kernel is bit-identical to the interpreted
   [Sim] machine: same value on every net of every cycle. *)
let prop_compiled_equals_interpreted =
  Q.Test.make ~name:"compiled kernel matches interpreted machine" ~count:40
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:100 ~ffs:8 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 11L) in
      let stim = random_stim rng c 10 in
      let want = interpreted_trace c stim in
      let cc = Compiled.of_circuit c in
      let rows = Compiled.trace cc (Compiled.compile_stim cc stim) in
      let ok = ref true in
      Array.iteri
        (fun t row ->
          for net = 0 to Circuit.num_nets c - 1 do
            let got = V3b.to_v3 (Compiled.get rows.(t) cc.Compiled.perm.(net)) in
            if not (V3.equal got row.(net)) then ok := false
          done)
        want;
      !ok)

(* The pattern-packed plane trace agrees lane by lane with the scalar
   compiled trace of each stimulus block. *)
let prop_packed_trace_matches_scalar =
  Q.Test.make ~name:"packed plane trace matches per-block scalar trace"
    ~count:25
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:80 ~ffs:6 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 23L) in
      let blocks =
        Array.init 5 (fun b -> random_stim rng c (4 + (b mod 3) * 3))
      in
      let cc = Compiled.of_circuit c in
      let packed = Compiled.Planes.trace_packed cc blocks in
      let ok = ref true in
      Array.iteri
        (fun b stim ->
          let rows = Compiled.trace cc (Compiled.compile_stim cc stim) in
          let bit = 1 lsl b in
          Array.iteri
            (fun t row ->
              for s = 0 to cc.Compiled.n_slots - 1 do
                let o = packed.Compiled.Planes.rows1.(t).(s) land bit <> 0 in
                let z = packed.Compiled.Planes.rows0.(t).(s) land bit <> 0 in
                let code =
                  if o then V3b.one else if z then V3b.zero else V3b.x
                in
                if code <> Compiled.get row s then ok := false
              done)
            rows)
        blocks;
      !ok)

let test_event_sim_activity () =
  (* A stable circuit processes no events once settled. *)
  let c, si, _ = shift3 () in
  let ev = Event_sim.create c in
  Event_sim.set_input ev si V3.One;
  Event_sim.settle ev;
  let before = Event_sim.events ev in
  Event_sim.set_input ev si V3.One (* no change *);
  Event_sim.settle ev;
  Alcotest.(check int) "no new events" before (Event_sim.events ev)

let suite =
  [
    Alcotest.test_case "shift register" `Quick test_shift_register;
    Helpers.qcheck prop_event_sim_equivalent;
    Helpers.qcheck prop_compiled_equals_interpreted;
    Helpers.qcheck prop_packed_trace_matches_scalar;
    Alcotest.test_case "event-driven activity" `Quick test_event_sim_activity;
    Alcotest.test_case "comb eval" `Quick test_comb_eval;
    Alcotest.test_case "const nets" `Quick test_const_nets;
    Alcotest.test_case "set_input guard" `Quick test_set_input_guard;
    Alcotest.test_case "simultaneous latch" `Quick test_simultaneous_latch;
    Helpers.qcheck prop_monotone;
  ]
