open Fst_logic
open Fst_netlist
open Fst_fault
open Fst_atpg
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(gates = 120) ?(ffs = 8) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:Tpi.default_options c

(* Sequential tests produced on the scan-mode model must be confirmed by
   fault simulation of their realized scan sequences. *)
let prop_seq_tests_are_real =
  Q.Test.make ~name:"sequential ATPG tests confirmed by fault simulation"
    ~count:8
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let scanned, config = scan_small seed in
      let faults =
        Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
      in
      let cls = Classify.run scanned config faults in
      let positions = Hashtbl.create 16 in
      Array.iter
        (fun ch ->
          Array.iteri
            (fun pos ff -> Hashtbl.replace positions ff (ch.Scan.index, pos))
            ch.Scan.ffs)
        config.Scan.chains;
      let checked = ref 0 and confirmed = ref 0 in
      Array.iter
        (fun i ->
          if !checked < 6 then begin
            let info = cls.Classify.infos.(i) in
            let fault = info.Classify.fault in
            (* Chain-aware controllability/observability from the fault's
               locations, as the flow derives them. *)
            let fp =
              Group.footprint_of ~index:0
                ~locations:
                  (List.map (fun (ch, s, _) -> (ch, s)) info.Classify.locations)
            in
            let bounds = fp.Group.spans in
            let controllable ff =
              match Hashtbl.find_opt positions ff with
              | None -> false
              | Some (chain, pos) -> (
                match List.assoc_opt chain bounds with
                | None -> true
                | Some (m, _) -> pos < m)
            in
            let observable ff =
              match Hashtbl.find_opt positions ff with
              | None -> false
              | Some (chain, pos) -> (
                match List.assoc_opt chain bounds with
                | None -> true
                | Some (_, o) -> pos >= o)
            in
            match
              Seq.run scanned ~constraints:config.Scan.constraints
                ~controllable_ff:controllable ~observable_ff:observable ~fault
                ~frames_list:[ 1; 2; 4 ] ~backtrack_limit:300
            with
            | Seq.Seq_test test, _ ->
              incr checked;
              let stim = Sequences.of_seq_test scanned config test in
              (match
                 Fst_fsim.Fsim.Serial.detect scanned ~fault
                   ~observe:scanned.Circuit.outputs stim
               with
               | Some _ -> incr confirmed
               | None -> ())
            | Seq.Seq_aborted, _ -> ()
          end)
        cls.Classify.hard;
      (* Every found test must confirm. (No test found at all is fine —
         budgets are small here.) *)
      !confirmed = !checked)

let test_seq_finds_shift_register_fault () =
  (* In a plain shift register scanned by TPI, any chain fault has an easy
     sequential test when the whole chain is controllable/observable. *)
  let b = Builder.create ~name:"sr" () in
  let si = Builder.add_input ~name:"d" b in
  let f0 = Builder.add_dff ~name:"f0" b ~data:si in
  let f1 = Builder.add_dff ~name:"f1" b ~data:f0 in
  let po = Builder.add_gate ~name:"po" b Gate.Not [ f1 ] in
  Builder.mark_output b po;
  let c = Builder.freeze b in
  let scanned, config = Tpi.insert c in
  let fault = { Fault.site = Fault.Stem f0; stuck = true } in
  match
    Seq.run scanned ~constraints:config.Scan.constraints
      ~controllable_ff:(fun _ -> true)
      ~observable_ff:(fun _ -> true)
      ~fault ~frames_list:[ 1; 2 ] ~backtrack_limit:200
  with
  | Seq.Seq_test test, stats ->
    Alcotest.(check bool) "at least one run" true (stats.Seq.runs >= 1);
    let stim = Sequences.of_seq_test scanned config test in
    (match
       Fst_fsim.Fsim.Serial.detect scanned ~fault
         ~observe:scanned.Circuit.outputs stim
     with
     | Some _ -> ()
     | None -> Alcotest.fail "sequential test did not confirm")
  | Seq.Seq_aborted, _ -> Alcotest.fail "expected a test"

let test_deadline_aborts () =
  let scanned, config = scan_small 3L in
  let fault =
    { Fault.site = Fault.Stem config.Scan.chains.(0).Scan.ffs.(0); stuck = true }
  in
  (* An already-tripped abort hook (e.g. an expired wall-clock deadline)
     aborts immediately without any run. *)
  match
    Seq.run ~should_abort:(fun () -> true) scanned
      ~constraints:config.Scan.constraints
      ~controllable_ff:(fun _ -> true)
      ~observable_ff:(fun _ -> true)
      ~fault ~frames_list:[ 1; 2; 4 ] ~backtrack_limit:200
  with
  | Seq.Seq_aborted, stats -> Alcotest.(check int) "no runs" 0 stats.Seq.runs
  | Seq.Seq_test _, _ -> Alcotest.fail "deadline ignored"

let suite =
  [
    Helpers.qcheck prop_seq_tests_are_real;
    Alcotest.test_case "shift-register fault" `Quick test_seq_finds_shift_register_fault;
    Alcotest.test_case "deadline aborts" `Quick test_deadline_aborts;
  ]
