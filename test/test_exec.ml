module Pool = Fst_exec.Pool
module Q = QCheck

exception Boom of int

let squares n = Array.init n (fun i -> i)

let test_deterministic_order () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let xs = squares n in
          let expect = Array.map (fun x -> x * x) xs in
          let got = Pool.map_array ~jobs (fun x -> x * x) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            expect got)
        [ 0; 1; 2; 3; 7; 63; 200 ])
    [ 1; 2; 4; 8 ]

let test_map_list () =
  Alcotest.(check (list int))
    "map_list" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty" [] (Pool.map_list ~jobs:4 Fun.id [])

let test_mapi () =
  let got = Pool.mapi_array ~jobs:3 (fun i x -> (i * 10) + x) [| 5; 6; 7 |] in
  Alcotest.(check (array int)) "mapi" [| 5; 16; 27 |] got

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.map_array ~jobs
          (fun x -> if x mod 5 = 3 then raise (Boom x) else x)
          (squares 40)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      (* The lowest failing index wins deterministically. *)
      | exception Boom v -> Alcotest.(check int) "first failure" 3 v)
    [ 1; 2; 8 ]

let test_chunk_override () =
  let xs = squares 17 in
  let got = Pool.map_array ~chunk:1 ~jobs:4 (fun x -> x + 1) xs in
  Alcotest.(check (array int)) "chunk=1" (Array.map (fun x -> x + 1) xs) got;
  let got = Pool.map_array ~chunk:100 ~jobs:4 (fun x -> x + 1) xs in
  Alcotest.(check (array int))
    "chunk>n" (Array.map (fun x -> x + 1) xs) got

(* Tasks run with real shared-memory parallelism yet results land in input
   order even when early tasks finish last. *)
let test_order_independent_of_duration () =
  let n = 24 in
  let got =
    Pool.map_array ~jobs:4
      (fun i ->
        (* Earlier indices spin longer, so completion order is reversed. *)
        let spin = (n - i) * 2000 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := !acc + k
        done;
        ignore !acc;
        i)
      (squares n)
  in
  Alcotest.(check (array int)) "input order" (squares n) got

let prop_matches_sequential =
  Q.Test.make ~name:"pool map_array = Array.map for any jobs" ~count:50
    Q.(pair (int_bound 7) (list_of_size (Gen.int_bound 50) small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * 31) lxor 5 in
      Pool.map_array ~jobs:(jobs + 1) f xs = Array.map f xs)

let suite =
  [
    Alcotest.test_case "deterministic merge order" `Quick
      test_deterministic_order;
    Alcotest.test_case "map_list" `Quick test_map_list;
    Alcotest.test_case "mapi_array" `Quick test_mapi;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagates;
    Alcotest.test_case "chunk override" `Quick test_chunk_override;
    Alcotest.test_case "order independent of task duration" `Quick
      test_order_independent_of_duration;
    Helpers.qcheck prop_matches_sequential;
  ]
