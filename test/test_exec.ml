module Pool = Fst_exec.Pool
module Clock = Fst_exec.Clock
module Q = QCheck

exception Boom of int

let squares n = Array.init n (fun i -> i)

let test_deterministic_order () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let xs = squares n in
          let expect = Array.map (fun x -> x * x) xs in
          let got = Pool.map_array ~jobs (fun x -> x * x) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            expect got)
        [ 0; 1; 2; 3; 7; 63; 200 ])
    [ 1; 2; 4; 8 ]

let test_map_list () =
  Alcotest.(check (list int))
    "map_list" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty" [] (Pool.map_list ~jobs:4 Fun.id [])

let test_mapi () =
  let got = Pool.mapi_array ~jobs:3 (fun i x -> (i * 10) + x) [| 5; 6; 7 |] in
  Alcotest.(check (array int)) "mapi" [| 5; 16; 27 |] got

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.map_array ~jobs
          (fun x -> if x mod 5 = 3 then raise (Boom x) else x)
          (squares 40)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      (* The lowest failing index wins deterministically. *)
      | exception Boom v -> Alcotest.(check int) "first failure" 3 v)
    [ 1; 2; 8 ]

let test_chunk_override () =
  let xs = squares 17 in
  let got = Pool.map_array ~chunk:1 ~jobs:4 (fun x -> x + 1) xs in
  Alcotest.(check (array int)) "chunk=1" (Array.map (fun x -> x + 1) xs) got;
  let got = Pool.map_array ~chunk:100 ~jobs:4 (fun x -> x + 1) xs in
  Alcotest.(check (array int))
    "chunk>n" (Array.map (fun x -> x + 1) xs) got

(* Tasks run with real shared-memory parallelism yet results land in input
   order even when early tasks finish last. *)
let test_order_independent_of_duration () =
  let n = 24 in
  let got =
    Pool.map_array ~jobs:4
      (fun i ->
        (* Earlier indices spin longer, so completion order is reversed. *)
        let spin = (n - i) * 2000 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := !acc + k
        done;
        ignore !acc;
        i)
      (squares n)
  in
  Alcotest.(check (array int)) "input order" (squares n) got

let prop_matches_sequential =
  Q.Test.make ~name:"pool map_array = Array.map for any jobs" ~count:50
    Q.(pair (int_bound 7) (list_of_size (Gen.int_bound 50) small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * 31) lxor 5 in
      Pool.map_array ~jobs:(jobs + 1) f xs = Array.map f xs)

(* --- work stealing, min-work fallback, per-domain contexts ------------- *)

(* Tests that need two domains to actually run concurrently are skipped
   on single-core machines, where the pool (correctly) clamps the worker
   count to one and the cross-domain rendezvous below would spin
   forever. *)
let multicore = Pool.default_jobs () >= 2

(* Worker 0's first task blocks until its range's second task has run —
   which only a thief (worker 1, done with its own range) can reach,
   since worker 0 is stuck. Progress therefore proves stealing works;
   the [pool.steal.steals] counter proves it was counted. *)
let test_steal_unblocks_stuck_owner () =
  if not multicore then ()
  else begin
  let metrics = Fst_obs.Metrics.create () in
  let obs = Fst_obs.Sink.create ~metrics () in
  let flag = Atomic.make false in
  let got =
    Pool.map_array ~obs ~label:"steal" ~jobs:2 ~chunk:1
      (fun x ->
        if x = 0 then
          while not (Atomic.get flag) do
            Domain.cpu_relax ()
          done
        else if x = 1 then Atomic.set flag true;
        x * 7)
      (squares 4)
  in
  Alcotest.(check (array int))
    "results in input order"
    (Array.map (fun x -> x * 7) (squares 4))
    got;
  let steals =
    Fst_obs.Metrics.Counter.value
      (Fst_obs.Metrics.counter metrics "pool.steal.steals")
  in
  Alcotest.(check bool) "at least one steal counted" true (steals >= 1)
  end

(* A workload whose estimated [work] is under the threshold runs on the
   calling domain no matter what [jobs] says. *)
let test_min_work_runs_in_caller () =
  let self = Domain.self () in
  let ran_here = ref true in
  let got =
    Pool.map_array ~jobs:8 ~work:(Pool.min_work - 1)
      (fun x ->
        if Domain.self () <> self then ran_here := false;
        x + 1)
      (squares 32)
  in
  Alcotest.(check (array int))
    "results" (Array.map (fun x -> x + 1) (squares 32)) got;
  Alcotest.(check bool) "all tasks ran on the caller" true !ran_here;
  (* At or above the threshold the pool spawns (when the machine has
     cores to spawn onto). Every task waits until two distinct domains
     have participated (with a deadline escape), so a second domain is
     guaranteed to have claimed work — a fast caller cannot race through
     the whole queue alone. *)
  if multicore then begin
    let two_seen = Atomic.make false in
    let first = Atomic.make None in
    let deadline = Clock.after 10.0 in
    ignore
      (Pool.map_array ~jobs:4 ~chunk:1 ~work:Pool.min_work
         (fun x ->
           let me = Domain.self () in
           (match Atomic.get first with
            | None -> ignore (Atomic.compare_and_set first None (Some me))
            | Some d -> if d <> me then Atomic.set two_seen true);
           while not (Atomic.get two_seen || Clock.expired deadline) do
             Domain.cpu_relax ()
           done;
           x)
         (squares 64));
    Alcotest.(check bool) "above threshold spawns domains" true
      (Atomic.get two_seen)
  end

(* [jobs] beyond the hardware core count is clamped: no matter how large
   the request, at most [default_jobs ()] distinct domains ever
   participate (oversubscribed domains only thrash the minor-GC
   barrier). *)
let test_jobs_clamped_to_cores () =
  let seen = Atomic.make [] in
  let rec note me =
    let ds = Atomic.get seen in
    if (not (List.mem me ds)) && not (Atomic.compare_and_set seen ds (me :: ds))
    then note me
  in
  let got =
    Pool.map_array ~jobs:64 ~chunk:1
      (fun x ->
        note (Domain.self ());
        x + 3)
      (squares 128)
  in
  Alcotest.(check (array int))
    "results" (Array.map (fun x -> x + 3) (squares 128)) got;
  let distinct = List.length (Atomic.get seen) in
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct domains <= %d cores" distinct
       (Pool.default_jobs ()))
    true
    (distinct >= 1 && distinct <= Pool.default_jobs ())

(* [init] runs at most once per participating domain, and every task sees
   its own domain's context. *)
let test_map_array_init_context_per_domain () =
  let next = Atomic.make 0 in
  let jobs = 3 in
  let got =
    Pool.map_array_init ~jobs
      ~init:(fun () -> (Domain.self (), Atomic.fetch_and_add next 1))
      (fun (dom, _id) x ->
        Alcotest.(check bool) "context belongs to this domain" true
          (Domain.self () = dom);
        x * 2)
      (squares 100)
  in
  Alcotest.(check (array int))
    "results" (Array.map (fun x -> x * 2) (squares 100)) got;
  let inits = Atomic.get next in
  Alcotest.(check bool)
    (Printf.sprintf "1 <= %d inits <= jobs" inits)
    true
    (inits >= 1 && inits <= jobs);
  (* Sequential path: exactly one context, created lazily. *)
  let count = ref 0 in
  ignore
    (Pool.map_array_init ~jobs:1
       ~init:(fun () -> incr count)
       (fun () x -> x)
       (squares 5));
  Alcotest.(check int) "jobs=1 creates one context" 1 !count

(* --- cooperative cancellation ------------------------------------------ *)

let test_cancellable_no_stop () =
  List.iter
    (fun jobs ->
      let got = Pool.map_cancellable ~jobs (fun x -> x * x) (squares 30) in
      Alcotest.(check (array int))
        (Printf.sprintf "all done jobs=%d" jobs)
        (Array.map (fun x -> x * x) (squares 30))
        (Array.map
           (function Pool.Done y -> y | Pool.Cancelled -> -1)
           got))
    [ 1; 4 ]

(* Sequential path: the stop flag is checked between tasks, so the [Done]
   prefix is exactly the tasks that ran before the cancel. *)
let test_cancel_exact_prefix () =
  let tok = Pool.token () in
  let got =
    Pool.map_cancellable ~jobs:1 ~token:tok
      (fun x ->
        if x = 5 then Pool.cancel tok;
        x * 2)
      (squares 12)
  in
  Array.iteri
    (fun i o ->
      let expect = if i <= 5 then Pool.Done (i * 2) else Pool.Cancelled in
      Alcotest.(check bool) (Printf.sprintf "slot %d" i) true (o = expect))
    got

let test_expired_deadline_drains_everything () =
  List.iter
    (fun jobs ->
      let got =
        Pool.map_cancellable ~jobs ~deadline:(Clock.after (-1.0))
          (fun x -> x)
          (squares 20)
      in
      Alcotest.(check bool)
        (Printf.sprintf "all cancelled jobs=%d" jobs)
        true
        (Array.for_all (fun o -> o = Pool.Cancelled) got))
    [ 1; 2; 4 ]

(* Tasks that block until the deadline expires: the claimed ones finish,
   and everything behind them in the queue comes back [Cancelled]. *)
let test_blocking_tasks_respect_deadline () =
  let deadline = Clock.after 0.05 in
  let got =
    Pool.map_cancellable ~jobs:2 ~chunk:1 ~deadline
      (fun x ->
        while not (Clock.expired deadline) do
          Domain.cpu_relax ()
        done;
        x)
      (squares 6)
  in
  let done_count =
    Array.fold_left
      (fun n o -> match o with Pool.Done _ -> n + 1 | Pool.Cancelled -> n)
      0 got
  in
  (* Only the tasks claimed before the deadline ran (at most one per
     domain, since each blocks until expiry). Each worker owns a
     contiguous range of the index space and claims its own range first,
     so the finished slots can only be the heads of the two worker
     ranges; everything else drained [Cancelled]. *)
  Alcotest.(check bool) "some but not all tasks ran" true
    (done_count >= 1 && done_count <= 2);
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v ->
        Alcotest.(check int) (Printf.sprintf "slot %d value" i) i v;
        Alcotest.(check bool)
          (Printf.sprintf "slot %d is a range head" i)
          true
          (i = 0 || i = 3)
      | Pool.Cancelled -> ())
    got

(* A raising task cancels the shared token (draining the queue) and its
   exception is re-raised after the join, wrapped in [Task_failed] with
   the failing task's input index. *)
let test_failing_task_cancels_token () =
  List.iter
    (fun jobs ->
      let tok = Pool.token () in
      (match
         Pool.map_cancellable ~jobs ~chunk:1 ~token:tok
           (fun x -> if x = 7 then raise (Boom x) else x)
           (squares 40)
       with
       | _ -> Alcotest.failf "jobs=%d: expected Task_failed" jobs
       | exception Pool.Task_failed (i, Boom v) ->
         Alcotest.(check int) "failure index" 7 i;
         Alcotest.(check int) "failure payload" 7 v);
      Alcotest.(check bool)
        (Printf.sprintf "token tripped jobs=%d" jobs)
        true (Pool.cancelled tok))
    [ 1; 2; 8 ]

(* Fault injection: wherever the cancel lands and whatever [jobs] is, every
   [Done] slot carries the result for its own input (partial results are in
   input order), and the task that tripped the token always completed. *)
let prop_cancel_partial_results_ordered =
  Q.Test.make ~name:"cancellation keeps partial results in input order"
    ~count:100
    Q.(triple (int_bound 7) (int_bound 60) (int_bound 60))
    (fun (jobs, n, cancel_at) ->
      let jobs = jobs + 1 and n = n + 1 in
      let cancel_at = cancel_at mod n in
      let tok = Pool.token () in
      let got =
        Pool.map_cancellable ~jobs ~token:tok
          (fun x ->
            if x = cancel_at then Pool.cancel tok;
            (x * 13) lxor 3)
          (squares n)
      in
      let ok =
        ref
          (Array.length got = n
          && got.(cancel_at) = Pool.Done ((cancel_at * 13) lxor 3))
      in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Done y -> if y <> (i * 13) lxor 3 then ok := false
          | Pool.Cancelled -> ())
        got;
      !ok)

(* Fault injection: a raising task at a random position always surfaces its
   own exception, and the sequential path records the exact prefix. *)
let prop_raise_drains_queue =
  Q.Test.make ~name:"raising task drains the queue deterministically"
    ~count:100
    Q.(pair (int_bound 40) (int_bound 40))
    (fun (n, boom_at) ->
      let n = n + 1 in
      let boom_at = boom_at mod n in
      match
        Pool.map_cancellable ~jobs:1
          (fun x -> if x = boom_at then raise (Boom x) else x)
          (squares n)
      with
      | _ -> false
      | exception Pool.Task_failed (i, Boom v) -> i = boom_at && v = boom_at)

(* --- fault-isolated maps ------------------------------------------------ *)

module Retry = Fst_exec.Retry

(* Test policy: identical semantics, no real backoff sleeping. *)
let fast_retry = { Retry.default with Retry.sleep = (fun _ -> ()) }

let test_isolated_all_ok () =
  List.iter
    (fun jobs ->
      let got = Pool.map_isolated ~jobs (fun x -> x * x) (squares 20) in
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d slot %d" jobs i)
            true
            (o = Pool.Task.Ok (i * i)))
        got)
    [ 1; 4 ]

(* The whole point of isolation: a poison task lands in its own slot as
   [Failed] and its siblings still complete. *)
let test_isolated_poison_quarantined () =
  List.iter
    (fun jobs ->
      let got =
        Pool.map_isolated ~jobs ~retry:Retry.no_retry
          (fun x -> if x mod 7 = 3 then raise (Boom x) else x)
          (squares 20)
      in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Task.Ok v ->
            Alcotest.(check int) (Printf.sprintf "slot %d value" i) i v;
            Alcotest.(check bool)
              (Printf.sprintf "slot %d should have failed" i)
              false (i mod 7 = 3)
          | Pool.Task.Failed (Boom v, _) ->
            Alcotest.(check int) (Printf.sprintf "slot %d payload" i) i v;
            Alcotest.(check bool)
              (Printf.sprintf "slot %d should have succeeded" i)
              true (i mod 7 = 3)
          | _ -> Alcotest.failf "slot %d unexpected outcome" i)
        got)
    [ 1; 4 ]

(* A transient failure is retried within the bounded attempt budget and
   the task still comes back [Ok]; clean tasks run exactly once. *)
let test_isolated_retry_transient () =
  let tries = Array.make 10 0 in
  let policy =
    { fast_retry with Retry.attempts = 3; transient = (fun _ -> true) }
  in
  let got =
    Pool.map_isolated ~jobs:1 ~retry:policy
      (fun x ->
        tries.(x) <- tries.(x) + 1;
        if x = 4 && tries.(x) < 3 then raise (Boom x) else x)
      (squares 10)
  in
  Array.iteri
    (fun i o ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d ok" i)
        true
        (o = Pool.Task.Ok i))
    got;
  Alcotest.(check int) "flaky task used its attempts" 3 tries.(4);
  Alcotest.(check int) "clean task ran once" 1 tries.(0)

let test_isolated_retry_exhausted () =
  let tries = ref 0 in
  let policy =
    { fast_retry with Retry.attempts = 2; transient = (fun _ -> true) }
  in
  let got =
    Pool.map_isolated ~jobs:1 ~retry:policy
      (fun x ->
        if x = 2 then begin
          incr tries;
          raise (Boom x)
        end
        else x)
      (squares 5)
  in
  Alcotest.(check int) "attempts bounded" 2 !tries;
  Array.iteri
    (fun i o ->
      if i = 2 then
        match o with
        | Pool.Task.Failed (Boom 2, _) -> ()
        | _ -> Alcotest.fail "poison slot should be Failed (Boom 2)"
      else
        Alcotest.(check bool)
          (Printf.sprintf "slot %d ok" i)
          true
          (o = Pool.Task.Ok i))
    got

let test_isolated_expired_deadline_cancels () =
  List.iter
    (fun jobs ->
      let got =
        Pool.map_cancellable_isolated ~jobs ~deadline:(Clock.after (-1.0))
          (fun x -> x)
          (squares 12)
      in
      Alcotest.(check bool)
        (Printf.sprintf "all cancelled jobs=%d" jobs)
        true
        (Array.for_all (fun o -> o = Pool.Task.Cancelled) got))
    [ 1; 4 ]

(* Outcomes are merged in input order regardless of jobs, and for a pure
   function the isolated map agrees with the plain one. *)
let prop_isolated_matches_map =
  Q.Test.make ~name:"isolated map matches plain map for pure tasks"
    ~count:100
    Q.(pair (int_bound 7) (int_bound 80))
    (fun (jobs, n) ->
      let jobs = jobs + 1 in
      let xs = squares n in
      let expect = Array.map (fun x -> (x * 31) lxor 5) xs in
      let got = Pool.map_isolated ~jobs (fun x -> (x * 31) lxor 5) xs in
      Array.length got = n
      && Array.for_all2 (fun o e -> o = Pool.Task.Ok e) got expect)

(* Fault injection over random poison sets: every poison index is
   [Failed] with its own exception, everything else is [Ok] — no
   cross-contamination at any [jobs]. *)
let prop_isolated_poison_set =
  Q.Test.make ~name:"isolated map quarantines exactly the poison set"
    ~count:100
    Q.(triple (int_bound 7) (int_bound 40) (int_bound 1000))
    (fun (jobs, n, mask) ->
      let jobs = jobs + 1 and n = n + 1 in
      let poison i = (mask lsr (i mod 10)) land 1 = 1 in
      let got =
        Pool.map_isolated ~jobs ~retry:Retry.no_retry
          (fun x -> if poison x then raise (Boom x) else x)
          (squares n)
      in
      Array.length got = n
      && Array.for_all
           (fun o ->
             match o with
             | Pool.Task.Ok v -> not (poison v)
             | Pool.Task.Failed (Boom v, _) -> poison v
             | _ -> false)
           got)

let suite =
  [
    Alcotest.test_case "deterministic merge order" `Quick
      test_deterministic_order;
    Alcotest.test_case "map_list" `Quick test_map_list;
    Alcotest.test_case "mapi_array" `Quick test_mapi;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagates;
    Alcotest.test_case "chunk override" `Quick test_chunk_override;
    Alcotest.test_case "order independent of task duration" `Quick
      test_order_independent_of_duration;
    Helpers.qcheck prop_matches_sequential;
    Alcotest.test_case "stealing unblocks a stuck owner" `Quick
      test_steal_unblocks_stuck_owner;
    Alcotest.test_case "min-work fallback runs in caller" `Quick
      test_min_work_runs_in_caller;
    Alcotest.test_case "jobs clamped to core count" `Quick
      test_jobs_clamped_to_cores;
    Alcotest.test_case "map_array_init context per domain" `Quick
      test_map_array_init_context_per_domain;
    Alcotest.test_case "cancellable without stop = map" `Quick
      test_cancellable_no_stop;
    Alcotest.test_case "cancel gives exact sequential prefix" `Quick
      test_cancel_exact_prefix;
    Alcotest.test_case "expired deadline drains everything" `Quick
      test_expired_deadline_drains_everything;
    Alcotest.test_case "blocking tasks respect deadline" `Quick
      test_blocking_tasks_respect_deadline;
    Alcotest.test_case "failing task cancels token" `Quick
      test_failing_task_cancels_token;
    Helpers.qcheck prop_cancel_partial_results_ordered;
    Helpers.qcheck prop_raise_drains_queue;
    Alcotest.test_case "isolated map all ok" `Quick test_isolated_all_ok;
    Alcotest.test_case "isolated map quarantines poison" `Quick
      test_isolated_poison_quarantined;
    Alcotest.test_case "isolated map retries transients" `Quick
      test_isolated_retry_transient;
    Alcotest.test_case "isolated map bounds retry attempts" `Quick
      test_isolated_retry_exhausted;
    Alcotest.test_case "isolated map honors deadline" `Quick
      test_isolated_expired_deadline_cancels;
    Helpers.qcheck prop_isolated_matches_map;
    Helpers.qcheck prop_isolated_poison_set;
  ]
