open Fst_logic
open Fst_netlist
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(gates = 150) ?(ffs = 10) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 2 } c

let test_capture_sequence_shape () =
  let scanned, config = scan_small 3L in
  let l = Sequences.max_chain_length config in
  let stim = Sequences.of_capture_test scanned config ~ff_values:[] ~pi_values:[] in
  Alcotest.(check int) "length = load + capture + unload" ((2 * l) + 2)
    (Array.length stim);
  (* Scan-enable is low exactly at the capture cycle. *)
  (match List.assoc_opt config.Scan.scan_mode stim.(l) with
   | Some V3.Zero -> ()
   | _ -> Alcotest.fail "capture cycle must drop scan-enable");
  match List.assoc_opt config.Scan.scan_mode stim.(l + 1) with
  | Some V3.One -> ()
  | _ -> Alcotest.fail "unload must re-enter scan mode"

let test_capture_loads_and_captures () =
  let scanned, config = scan_small 5L in
  let rng = Fst_gen.Rng.create 9L in
  let ff_values =
    Array.to_list scanned.Circuit.dffs
    |> List.map (fun ff -> (ff, V3.of_bool (Fst_gen.Rng.bool rng)))
  in
  let stim = Sequences.of_capture_test scanned config ~ff_values ~pi_values:[] in
  let l = Sequences.max_chain_length config in
  let st = Fst_sim.Sim.create scanned in
  Array.iteri
    (fun t assigns ->
      List.iter (fun (n, v) -> Fst_sim.Sim.set_input scanned st n v) assigns;
      Fst_sim.Sim.eval_comb scanned st;
      if t = l then
        (* The loaded state is in place at the capture cycle. *)
        List.iter
          (fun (ff, v) ->
            Helpers.check_v3 "state loaded" v (Fst_sim.Sim.value st ff))
          ff_values;
      Fst_sim.Sim.clock scanned st)
    stim

(* End-to-end: chain test first, then the logic test; combined coverage is
   high and bookkeeping is consistent. *)
let prop_two_phase_coverage =
  Q.Test.make ~name:"chain test + scan test covers the circuit" ~count:4
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:120 ~ffs:8 seed in
      let flow =
        Flow.run ~config:Config.(default |> with_frames [ 1; 2 ]) scanned
          config
      in
      let already_detected = Flow.chain_detected_faults flow in
      let r = Scan_atpg.run scanned config ~already_detected in
      let total = Flow.total_faults flow in
      let cov =
        Scan_atpg.testable_coverage
          ~chain_detected:(List.length already_detected)
          ~result:r ~total
      in
      (* Bookkeeping. *)
      r.Scan_atpg.targeted = total - List.length already_detected
      && r.Scan_atpg.detected + r.Scan_atpg.untestable + r.Scan_atpg.undetected
         = r.Scan_atpg.targeted
      (* The whole point: nearly all testable faults are now covered
         (random synthetic logic at this size carries real redundancy,
         which the untestable bucket absorbs). *)
      && cov > 0.9)

let suite =
  [
    Alcotest.test_case "capture sequence shape" `Quick test_capture_sequence_shape;
    Alcotest.test_case "capture loads state" `Quick test_capture_loads_and_captures;
    Helpers.qcheck prop_two_phase_coverage;
  ]
