(* The observability library: registry semantics, exact histogram merge
   across Pool domains, trace JSON shape, the JSONL event log, and the
   headline contract — a live sink never changes what the flow computes. *)

module M = Fst_obs.Metrics
module Json = Fst_obs.Json
module Trace = Fst_obs.Trace
module Events = Fst_obs.Events
module Sink = Fst_obs.Sink
module Pool = Fst_exec.Pool
module Q = QCheck
open Fst_tpi
open Fst_core

(* --- registry ---------------------------------------------------------- *)

let test_counters () =
  let r = M.create () in
  let c = M.counter r "a.count" in
  M.Counter.incr c;
  M.Counter.add c 41;
  Alcotest.(check int) "value" 42 (M.Counter.value c);
  (* Get-or-create: the same name yields the same cell. *)
  M.Counter.incr (M.counter r "a.count");
  Alcotest.(check int) "shared cell" 43 (M.Counter.value c);
  (match M.gauge r "a.count" with
  | _ -> Alcotest.fail "wrong-type lookup should raise"
  | exception Invalid_argument _ -> ())

let test_gauges_fcounters () =
  let r = M.create () in
  let g = M.gauge r "g" in
  M.Gauge.set g 1.5;
  M.Gauge.set g 2.25;
  Alcotest.(check (float 0.0)) "last write wins" 2.25 (M.Gauge.value g);
  let f = M.fcounter r "f" in
  M.Fcounter.add f 0.5;
  M.Fcounter.add f 0.25;
  Alcotest.(check (float 1e-12)) "fcounter sums" 0.75 (M.Fcounter.value f)

let test_histogram_basic () =
  let h = M.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (M.Histogram.count h);
  Alcotest.(check bool) "empty min" true (M.Histogram.min_value h = infinity);
  Alcotest.(check bool) "empty max" true
    (M.Histogram.max_value h = neg_infinity);
  List.iter (M.Histogram.observe h) [ 0.001; 0.5; 0.5; 3.0; 1024.0 ];
  Alcotest.(check int) "count" 5 (M.Histogram.count h);
  Alcotest.(check (float 0.0)) "min" 0.001 (M.Histogram.min_value h);
  Alcotest.(check (float 0.0)) "max" 1024.0 (M.Histogram.max_value h);
  let total =
    List.fold_left (fun a (_, n) -> a + n) 0 (M.Histogram.buckets h)
  in
  Alcotest.(check int) "buckets sum to count" 5 total

let hist_fingerprint h =
  ( M.Histogram.count h,
    M.Histogram.buckets h,
    M.Histogram.min_value h,
    M.Histogram.max_value h )

let test_histogram_merge () =
  let all = M.Histogram.create () in
  let a = M.Histogram.create () and b = M.Histogram.create () in
  let xs = [ 0.1; 0.2; 7.0 ] and ys = [ 0.15; 100.0 ] in
  List.iter (M.Histogram.observe all) (xs @ ys);
  List.iter (M.Histogram.observe a) xs;
  List.iter (M.Histogram.observe b) ys;
  let m = M.Histogram.create () in
  M.Histogram.merge_into ~dst:m ~src:a;
  M.Histogram.merge_into ~dst:m ~src:b;
  Alcotest.(check bool) "merge = concat" true
    (hist_fingerprint m = hist_fingerprint all)

(* Counter updates from real Pool domains commute exactly. *)
let test_counter_parallel_exact () =
  let r = M.create () in
  let c = M.counter r "hits" in
  ignore
    (Pool.map_array ~jobs:8
       (fun k ->
         for _ = 1 to k do
           M.Counter.incr c
         done;
         k)
       (Array.init 100 (fun i -> i)));
  Alcotest.(check int) "sum" (100 * 99 / 2) (M.Counter.value c)

(* The multicore accounting pattern used by Pool/Fsim: per-domain local
   histograms merged after the join are bit-identical to one serial
   histogram, whatever the partition, job count, or merge order. *)
let prop_histogram_merge_order_independent =
  Q.Test.make
    ~name:"per-domain histogram merge = serial histogram (any order)"
    ~count:100
    Q.(
      triple (int_bound 6) (int_bound 9)
        (list_of_size (Gen.int_bound 80) (int_bound 100_000)))
    (fun (jobs, chunk, ints) ->
      let jobs = jobs + 1 and chunk = chunk + 1 in
      let values = List.map (fun i -> float_of_int i /. 7.0) ints in
      let serial = M.Histogram.create () in
      List.iter (M.Histogram.observe serial) values;
      let chunks =
        let rec take k l =
          if k = 0 then ([], l)
          else
            match l with
            | [] -> ([], [])
            | x :: tl ->
              let a, b = take (k - 1) tl in
              (x :: a, b)
        in
        let rec go acc = function
          | [] -> List.rev acc
          | l ->
            let c, rest = take chunk l in
            go (c :: acc) rest
        in
        Array.of_list (go [] values)
      in
      let locals =
        Pool.map_array ~jobs
          (fun vs ->
            let h = M.Histogram.create () in
            List.iter (M.Histogram.observe h) vs;
            h)
          chunks
      in
      let merge order =
        let m = M.Histogram.create () in
        Array.iter (fun src -> M.Histogram.merge_into ~dst:m ~src) order;
        hist_fingerprint m
      in
      let n = Array.length locals in
      let rev = Array.init n (fun i -> locals.(n - 1 - i)) in
      merge locals = hist_fingerprint serial
      && merge rev = hist_fingerprint serial)

(* A single shared registry histogram hammered from several domains ends
   up identical to the serial fill (integer buckets + CAS extremes). *)
let test_histogram_shared_parallel () =
  let values = Array.init 500 (fun i -> float_of_int (i * i mod 997) /. 13.0) in
  let serial = M.Histogram.create () in
  Array.iter (M.Histogram.observe serial) values;
  let r = M.create () in
  let h = M.histogram r "shared" in
  ignore (Pool.map_array ~jobs:8 (fun v -> M.Histogram.observe h v) values);
  Alcotest.(check bool) "shared = serial" true
    (hist_fingerprint h = hist_fingerprint serial)

(* --- metrics snapshot round-trip --------------------------------------- *)

let test_snapshot_json () =
  let r = M.create () in
  M.Counter.add (M.counter r "c") 7;
  M.Gauge.set (M.gauge r "g") 0.5;
  M.Histogram.observe (M.histogram r "h") 1.0;
  let j = Json.of_string (Json.to_string (M.to_json r)) in
  (match Json.member "counters" j with
  | Some (Json.Obj [ ("c", Json.Int 7) ]) -> ()
  | _ -> Alcotest.fail "counters snapshot");
  (match Json.member "histograms" j with
  | Some (Json.Obj [ ("h", h) ]) ->
    Alcotest.(check bool) "histogram count" true
      (Json.member "count" h = Some (Json.Int 1))
  | _ -> Alcotest.fail "histograms snapshot");
  Alcotest.(check bool) "text snapshot mentions metric" true
    (Helpers.contains_substring ~needle:"c 7" (M.to_text r))

(* --- trace ------------------------------------------------------------- *)

let field name ev =
  match Json.member name ev with
  | Some v -> v
  | None -> Alcotest.failf "trace event missing %S" name

let num = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> Alcotest.fail "expected number"

let test_trace_json_shape () =
  let t = Trace.create () in
  Trace.with_span t ~name:"outer" ~cat:"phase" (fun () ->
      Trace.with_span t ~name:"inner1" ~cat:"work" (fun () -> ());
      Trace.instant t ~name:"mark" ~cat:"work";
      Trace.with_span t ~name:"inner2" ~cat:"work" (fun () -> ()));
  Alcotest.(check int) "event count" 4 (Trace.event_count t);
  (* Round-trip through the emitted text, exactly like a consumer would. *)
  let j = Json.of_string (Json.to_string (Trace.to_json t)) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check int) "all events exported" 4 (List.length events);
  List.iter
    (fun ev ->
      Alcotest.(check bool) "pid" true (field "pid" ev = Json.Int 1);
      ignore (num (field "ts" ev));
      (match field "ph" ev with
      | Json.String "X" -> ignore (num (field "dur" ev))
      | Json.String "i" -> ()
      | _ -> Alcotest.fail "unexpected phase");
      match (field "name" ev, field "cat" ev, field "tid" ev) with
      | Json.String _, Json.String _, Json.Int _ -> ()
      | _ -> Alcotest.fail "name/cat/tid types")
    events;
  (* Spans nest: both inner complete events sit inside the outer one. *)
  let span name =
    let ev =
      List.find (fun ev -> field "name" ev = Json.String name) events
    in
    let ts = num (field "ts" ev) in
    (ts, ts +. num (field "dur" ev))
  in
  let o0, o1 = span "outer" in
  List.iter
    (fun n ->
      let i0, i1 = span n in
      Alcotest.(check bool) (n ^ " starts inside") true (i0 >= o0);
      Alcotest.(check bool) (n ^ " ends inside") true (i1 <= o1 +. 1e-6))
    [ "inner1"; "inner2" ]

(* --- events ------------------------------------------------------------ *)

let test_events_jsonl () =
  let buf = Buffer.create 256 in
  let log = Events.to_buffer buf in
  Events.emit log ~kind:"phase_start" [ ("phase", Json.String "step2") ];
  Events.emit log ~kind:"aborts" [ ("count", Json.Int 3) ];
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      let j = Json.of_string line in
      (match Json.member "ts" j with
      | Some (Json.Float _) | Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "ts missing");
      match Json.member "kind" j with
      | Some (Json.String _) -> ()
      | _ -> Alcotest.fail "kind missing")
    lines;
  Alcotest.(check bool) "fields survive" true
    (Helpers.contains_substring ~needle:"\"phase\":\"step2\""
       (Buffer.contents buf))

(* --- the sink contract ------------------------------------------------- *)

let scan_small ?(gates = 150) ?(ffs = 10) ?(chains = 2) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert
    ~options:{ Tpi.default_options with Tpi.chains; justify_depth = 4 }
    c

let quick_config =
  Config.(
    default |> with_comb_backtrack 100 |> with_seq_backtrack 200
    |> with_final_backtrack 500 |> with_frames [ 1; 2 ]
    |> with_final_frames [ 1; 2; 4 ])

(* A live sink observes the run without changing it: every result bucket,
   the undetected fault list, and the ATPG totals match the null-sink run
   exactly — and the instrumented run really did record something. *)
let test_live_sink_is_pure_observer () =
  let scanned, config = scan_small 11L in
  let quiet =
    Flow.run ~config:Config.(quick_config |> with_jobs 1) scanned config
  in
  let metrics = M.create () in
  let trace = Trace.create () in
  let buf = Buffer.create 1024 in
  let sink =
    Sink.create ~metrics ~trace ~events:(Events.to_buffer buf)
      ~atpg_span_s:0.0 ()
  in
  let loud =
    Flow.run
      ~config:Config.(quick_config |> with_jobs 1 |> with_sink sink)
      scanned config
  in
  Alcotest.(check int) "step2 detected" quiet.Flow.step2.Flow.detected
    loud.Flow.step2.Flow.detected;
  Alcotest.(check int) "step2 vectors" quiet.Flow.step2.Flow.vectors
    loud.Flow.step2.Flow.vectors;
  Alcotest.(check int) "step3 detected" quiet.Flow.step3.Flow.detected
    loud.Flow.step3.Flow.detected;
  Alcotest.(check int) "step3 undetected" quiet.Flow.step3.Flow.undetected
    loud.Flow.step3.Flow.undetected;
  Alcotest.(check bool) "undetected faults identical" true
    (quiet.Flow.undetected = loud.Flow.undetected);
  Alcotest.(check bool) "atpg stats identical" true
    (quiet.Flow.atpg = loud.Flow.atpg);
  (* ...and the sink was actually fed. *)
  Alcotest.(check bool) "trace recorded spans" true (Trace.event_count trace > 0);
  Alcotest.(check int) "podem counter matches report"
    loud.Flow.atpg.Flow.podem_runs
    (M.Counter.value (M.counter metrics "atpg.podem.runs"));
  Alcotest.(check bool) "event log has phase markers" true
    (Helpers.contains_substring ~needle:"\"kind\":\"phase_start\""
       (Buffer.contents buf))

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "gauges and fcounters" `Quick test_gauges_fcounters;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basic;
    Alcotest.test_case "histogram merge = concat" `Quick test_histogram_merge;
    Alcotest.test_case "parallel counter exact" `Quick
      test_counter_parallel_exact;
    Helpers.qcheck prop_histogram_merge_order_independent;
    Alcotest.test_case "shared histogram under domains" `Quick
      test_histogram_shared_parallel;
    Alcotest.test_case "snapshot json round-trip" `Quick test_snapshot_json;
    Alcotest.test_case "trace json shape and nesting" `Quick
      test_trace_json_shape;
    Alcotest.test_case "events jsonl" `Quick test_events_jsonl;
    Alcotest.test_case "live sink is a pure observer" `Quick
      test_live_sink_is_pure_observer;
  ]
