(* Checkpoint hardening: checksummed headers, .prev last-good rotation,
   and recovery classification (missing / corrupt / fingerprint mismatch /
   version mismatch). *)

module Ck = Fst_core.Checkpoint

let with_tmp f =
  let path = Filename.temp_file "fst-ckpt" ".bin" in
  (* temp_file creates an empty file; start from a clean slate so the
     first save does not rotate that empty stub into [.prev]. *)
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (Ck.prev_path path) with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let check_load name path ~fingerprint ~version expect =
  let got : (string * Ck.source, Ck.error) result =
    Ck.load ~path ~fingerprint ~version
  in
  Alcotest.(check bool) name true (got = expect)

let test_roundtrip () =
  with_tmp (fun path ->
      Ck.save ~path ~fingerprint:"fp" ~version:3 "payload-1";
      check_load "primary roundtrip" path ~fingerprint:"fp" ~version:3
        (Ok ("payload-1", Ck.Primary));
      Alcotest.(check bool) "no .prev after first save" false
        (Sys.file_exists (Ck.prev_path path)))

let test_rotation () =
  with_tmp (fun path ->
      Ck.save ~path ~fingerprint:"fp" ~version:3 "one";
      Ck.save ~path ~fingerprint:"fp" ~version:3 "two";
      check_load "latest wins" path ~fingerprint:"fp" ~version:3
        (Ok ("two", Ck.Primary));
      Alcotest.(check bool) ".prev exists" true
        (Sys.file_exists (Ck.prev_path path));
      (* The rotation keeps the previous good payload verbatim. *)
      check_load ".prev holds the previous payload" (Ck.prev_path path)
        ~fingerprint:"fp" ~version:3
        (Ok ("one", Ck.Primary)))

let test_truncated_recovers () =
  with_tmp (fun path ->
      Ck.save ~path ~fingerprint:"fp" ~version:3 "one";
      Ck.save ~path ~fingerprint:"fp" ~version:3 "two";
      let bytes = read_file path in
      write_file path (String.sub bytes 0 (String.length bytes - 5));
      check_load "truncated primary falls back to .prev" path
        ~fingerprint:"fp" ~version:3
        (Ok ("one", Ck.Recovered)))

let test_bitflip_recovers () =
  with_tmp (fun path ->
      Ck.save ~path ~fingerprint:"fp" ~version:3 "one";
      Ck.save ~path ~fingerprint:"fp" ~version:3 "two";
      let bytes = Bytes.of_string (read_file path) in
      let k = Bytes.length bytes - 3 in
      Bytes.set bytes k (Char.chr (Char.code (Bytes.get bytes k) lxor 0xff));
      write_file path (Bytes.to_string bytes);
      check_load "checksum mismatch falls back to .prev" path
        ~fingerprint:"fp" ~version:3
        (Ok ("one", Ck.Recovered)))

let test_stale_fingerprint_recovers () =
  with_tmp (fun path ->
      Ck.save ~path ~fingerprint:"good" ~version:3 "one";
      Ck.save ~path ~fingerprint:"good" ~version:3 "two";
      (* Rewrite only the header's fingerprint field: the payload and its
         checksum stay valid, so this is precisely the stale-fingerprint
         case rather than generic corruption. *)
      let bytes = read_file path in
      let nl = String.index bytes '\n' in
      let header = String.sub bytes 0 nl in
      let rest = String.sub bytes nl (String.length bytes - nl) in
      let header' =
        match String.split_on_char ' ' header with
        | [ m; v; _fp; sum ] -> String.concat " " [ m; v; "stale"; sum ]
        | _ -> Alcotest.fail "unexpected header layout"
      in
      write_file path (header' ^ rest);
      check_load "stale fingerprint falls back to .prev" path
        ~fingerprint:"good" ~version:3
        (Ok ("one", Ck.Recovered)))

let test_error_classification () =
  with_tmp (fun path ->
      check_load "missing" path ~fingerprint:"fp" ~version:3
        (Error Ck.Missing);
      Ck.save ~path ~fingerprint:"other" ~version:3 "one";
      check_load "fingerprint mismatch with no good .prev" path
        ~fingerprint:"fp" ~version:3
        (Error Ck.Fingerprint_mismatch);
      Ck.save ~path ~fingerprint:"fp" ~version:2 "one";
      (try Sys.remove (Ck.prev_path path) with Sys_error _ -> ());
      check_load "version mismatch" path ~fingerprint:"fp" ~version:3
        (Error (Ck.Version_mismatch { expected = 3; found = 2 }));
      (* Pre-checksum header layout (three fields) classifies as a version
         mismatch, not corruption. *)
      write_file path "FST-CHECKPOINT 2 fp\ngarbage";
      check_load "legacy three-field header" path ~fingerprint:"fp"
        ~version:3
        (Error (Ck.Version_mismatch { expected = 3; found = 2 }));
      write_file path "";
      (match Ck.load ~path ~fingerprint:"fp" ~version:3 with
       | (Error (Ck.Corrupt _) : (string * Ck.source, Ck.error) result) -> ()
       | _ -> Alcotest.fail "empty file should be Corrupt");
      write_file path "not a checkpoint at all";
      match Ck.load ~path ~fingerprint:"fp" ~version:3 with
      | (Error (Ck.Corrupt _) : (string * Ck.source, Ck.error) result) -> ()
      | _ -> Alcotest.fail "bad header should be Corrupt")

let test_error_to_string () =
  Alcotest.(check string) "missing" "missing" (Ck.error_to_string Ck.Missing);
  Alcotest.(check bool) "corrupt mentions reason" true
    (Ck.error_to_string (Ck.Corrupt "checksum mismatch")
     |> String.split_on_char '('
     |> List.length > 1);
  Alcotest.(check bool) "version mentions both numbers" true
    (let s = Ck.error_to_string (Ck.Version_mismatch { expected = 3; found = 1 }) in
     String.length s > 0)

let suite =
  [
    Alcotest.test_case "save/load roundtrip" `Quick test_roundtrip;
    Alcotest.test_case ".prev rotation" `Quick test_rotation;
    Alcotest.test_case "truncated primary recovers" `Quick
      test_truncated_recovers;
    Alcotest.test_case "bit-flipped primary recovers" `Quick
      test_bitflip_recovers;
    Alcotest.test_case "stale fingerprint recovers" `Quick
      test_stale_fingerprint_recovers;
    Alcotest.test_case "error classification" `Quick test_error_classification;
    Alcotest.test_case "error_to_string" `Quick test_error_to_string;
  ]
