open Fst_logic
open Fst_netlist
module Q = QCheck

let test_build_and_stats () =
  let c, _pi0, _ff0, _ff1, _g0 = Helpers.figure2_circuit () in
  Alcotest.(check int) "nets" 5 (Circuit.num_nets c);
  Alcotest.(check int) "gates" 2 (Circuit.gate_count c);
  Alcotest.(check int) "dffs" 2 (Circuit.dff_count c);
  Alcotest.(check int) "inputs" 1 (Circuit.input_count c);
  Alcotest.(check int) "outputs" 1 (Array.length c.Circuit.outputs)

let test_topo_order () =
  let c, _, _, _, _ = Helpers.figure2_circuit () in
  let pos = Array.make (Circuit.num_nets c) 0 in
  Array.iteri (fun k i -> pos.(i) <- k) c.Circuit.topo;
  Array.iteri
    (fun i nd ->
      match nd with
      | Circuit.Gate (_, fi) ->
        Array.iter
          (fun f ->
            match Circuit.node c f with
            | Circuit.Gate _ ->
              Alcotest.(check bool) "fanin before gate" true (pos.(f) < pos.(i))
            | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
          fi
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
    c.Circuit.nodes

let test_comb_cycle_rejected () =
  let b = Builder.create ~name:"cyclic" () in
  let i = Builder.add_input b in
  (* g0 and g1 form a combinational loop. *)
  let g0 = Builder.add_gate b Gate.And [ i; i ] in
  let g1 = Builder.add_gate b Gate.Or [ g0; i ] in
  Builder.rewire_fanin b ~node:g0 ~pin:1 ~net:g1;
  (* The message names the circuit and one representative cycle path. *)
  (match Builder.freeze b with
   | _ -> Alcotest.fail "cycle accepted"
   | exception Circuit.Combinational_cycle msg ->
     Alcotest.(check bool) "names the circuit" true
       (Helpers.contains_substring ~needle:"cyclic" msg);
     Alcotest.(check bool) "lists a cycle path" true
       (Helpers.contains_substring ~needle:" -> " msg))

let test_dff_loop_allowed () =
  let b = Builder.create ~name:"dffloop" () in
  let ff = Builder.add_dff_placeholder b in
  let g = Builder.add_gate b Gate.Not [ ff ] in
  Builder.connect_dff b ~ff ~data:g;
  Builder.mark_output b g;
  let c = Builder.freeze b in
  Alcotest.(check int) "nets" 2 (Circuit.num_nets c)

let test_unconnected_dff_rejected () =
  let b = Builder.create () in
  let _ff = Builder.add_dff_placeholder b in
  (match Builder.freeze b with
   | exception Circuit.Malformed _ -> ()
   | _ -> Alcotest.fail "expected Malformed")

let test_duplicate_name_rejected () =
  let b = Builder.create () in
  let _ = Builder.add_input ~name:"a" b in
  (match Builder.add_input ~name:"a" b with
   | exception Circuit.Malformed _ -> ()
   | _ -> Alcotest.fail "expected Malformed")

let test_fanout () =
  let c, pi0, ff0, _ff1, g0 = Helpers.figure2_circuit () in
  let consumers n = Array.to_list c.Circuit.fanout.(n) |> List.sort compare in
  Alcotest.(check (list int)) "pi0 feeds g0" [ g0 ] (consumers pi0);
  Alcotest.(check (list int)) "ff0 feeds g0" [ g0 ] (consumers ff0)

let test_levels () =
  let c, pi0, _ff0, _ff1, g0 = Helpers.figure2_circuit () in
  Alcotest.(check int) "pi level 0" 0 c.Circuit.level.(pi0);
  Alcotest.(check int) "gate level 1" 1 c.Circuit.level.(g0)

let test_find_net () =
  let c, pi0, _, _, _ = Helpers.figure2_circuit () in
  Alcotest.(check int) "find pi0" pi0 (Circuit.find_net c "pi0");
  (match Circuit.find_net c "nosuch" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found")

(* Netfile round trip: parse(print(c)) must be structurally identical. *)
let circuits_equal a b =
  Circuit.num_nets a = Circuit.num_nets b
  && a.Circuit.outputs
     = Array.map (fun o -> Circuit.find_net a (Circuit.net_name b o)) b.Circuit.outputs
  &&
  let ok = ref true in
  Array.iteri
    (fun i nd ->
      let i' = Circuit.find_net b (Circuit.net_name a i) in
      let nd' = Circuit.node b i' in
      let same =
        match nd, nd' with
        | Circuit.Input, Circuit.Input -> true
        | Circuit.Const v, Circuit.Const v' -> V3.equal v v'
        | Circuit.Dff d, Circuit.Dff d' ->
          Circuit.net_name a d = Circuit.net_name b d'
        | Circuit.Gate (g, fi), Circuit.Gate (g', fi') ->
          Gate.equal g g'
          && Array.length fi = Array.length fi'
          && Array.for_all2
               (fun x y -> Circuit.net_name a x = Circuit.net_name b y)
               fi fi'
        | (Circuit.Input | Circuit.Const _ | Circuit.Dff _ | Circuit.Gate _), _
          -> false
      in
      if not same then ok := false)
    a.Circuit.nodes;
  !ok

let prop_netfile_roundtrip =
  Q.Test.make ~name:"netfile roundtrip" ~count:30
    (Q.map
       (fun seed -> Int64.of_int seed)
       Q.(int_bound 100000))
    (fun seed ->
      let c = Helpers.small_seq_circuit seed in
      let c' = Netfile.parse_string ~name:c.Circuit.name (Netfile.to_string c) in
      circuits_equal c c')

let test_parse_errors () =
  let expect_error text =
    match Netfile.parse_string text with
    | exception Netfile.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for: " ^ text)
  in
  expect_error "garbage line";
  expect_error "a = FROB(b)";
  expect_error "INPUT(a)\na = AND(a, a)";
  expect_error "INPUT(a)\nb = AND(a, nosuch)";
  expect_error "INPUT(a)\nb = DFF(a, a)"

let test_parse_const_and_comment () =
  let c =
    Netfile.parse_string
      "# a comment\nINPUT(a)\nOUTPUT(y)\nk = CONST1\ny = AND(a, k)\n"
  in
  Alcotest.(check int) "nets" 3 (Circuit.num_nets c);
  match Circuit.node c (Circuit.find_net c "k") with
  | Circuit.Const V3.One -> ()
  | _ -> Alcotest.fail "expected CONST1"

let suite =
  [
    Alcotest.test_case "build and stats" `Quick test_build_and_stats;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "combinational cycle rejected" `Quick test_comb_cycle_rejected;
    Alcotest.test_case "dff loop allowed" `Quick test_dff_loop_allowed;
    Alcotest.test_case "unconnected dff rejected" `Quick test_unconnected_dff_rejected;
    Alcotest.test_case "duplicate name rejected" `Quick test_duplicate_name_rejected;
    Alcotest.test_case "fanout" `Quick test_fanout;
    Alcotest.test_case "levels" `Quick test_levels;
    Alcotest.test_case "find net" `Quick test_find_net;
    Helpers.qcheck prop_netfile_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "const and comments" `Quick test_parse_const_and_comment;
  ]
