let () =
  Alcotest.run "fst"
    [
      ("logic", Test_logic.suite);
      ("netlist", Test_netlist.suite);
      ("opt", Test_opt.suite);
      ("view", Test_view.suite);
      ("timing", Test_timing.suite);
      ("sim", Test_sim.suite);
      ("exec", Test_exec.suite);
      ("chaos", Test_chaos.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("obs", Test_obs.suite);
      ("analyze", Test_analyze.suite);
      ("vcd", Test_vcd.suite);
      ("fault", Test_fault.suite);
      ("fsim", Test_fsim.suite);
      ("scoap", Test_scoap.suite);
      ("podem", Test_podem.suite);
      ("unroll", Test_unroll.suite);
      ("seq", Test_seq.suite);
      ("rtpg", Test_rtpg.suite);
      ("tpi", Test_tpi.suite);
      ("lint", Test_lint.suite);
      ("classify", Test_classify.suite);
      ("sequences", Test_sequences.suite);
      ("group", Test_group.suite);
      ("config", Test_config.suite);
      ("flow", Test_flow.suite);
      ("scan_atpg", Test_scan_atpg.suite);
      ("gen", Test_gen.suite);
      ("report", Test_report.suite);
      ("compact", Test_compact.suite);
      ("diagnose", Test_diagnose.suite);
      ("dictionary", Test_dictionary.suite);
      ("sca", Test_sca.suite);
      ("serve", Test_serve.suite);
    ]
