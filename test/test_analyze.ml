(* The run-artifact analysis layer: critical path, quantiles, diff
   gating, OpenMetrics validation, and the --obs-dir pure-observer
   contract. *)

open Fst_tpi
open Fst_core
module Q = QCheck
module M = Fst_obs.Metrics
module Json = Fst_obs.Json
module A = Fst_obs.Analyze
module Artifacts = Fst_obs.Artifacts
module Openmetrics = Fst_obs.Openmetrics
module Timeline = Fst_obs.Timeline
module Pool = Fst_exec.Pool

let eps = 1e-9

(* --- critical path ----------------------------------------------------- *)

let span name tid t0 t1 = { A.name; cat = "t"; tid; t0; t1 }

let test_critical_path_chain () =
  (* a(0..2) then b(3..5.5) form the chain; c(0..4) overlaps both. *)
  let spans = [ span "a" 0 0.0 2.0; span "b" 0 3.0 5.5; span "c" 1 0.0 4.0 ] in
  let cp = A.critical_path spans in
  Alcotest.(check (float eps)) "length" 4.5 cp.A.cp_length_s;
  Alcotest.(check (float eps)) "total" 8.5 cp.A.cp_total_s;
  Alcotest.(check (float eps)) "window" 5.5 cp.A.cp_window_s;
  Alcotest.(check (list string)) "chain" [ "a"; "b" ]
    (List.map (fun s -> s.A.name) cp.A.cp_chain);
  Alcotest.(check (float eps)) "amdahl" (8.5 /. 4.5) cp.A.cp_amdahl

let test_critical_path_empty () =
  let cp = A.critical_path [] in
  Alcotest.(check (float eps)) "empty length" 0.0 cp.A.cp_length_s;
  Alcotest.(check (float eps)) "empty amdahl" 1.0 cp.A.cp_amdahl

(* Random span soups: the critical path can never exceed the observation
   window (a chain of non-overlapping spans fits inside it) nor the
   total span time (it is a subset of the spans). *)
let prop_critical_path_bounds =
  Q.Test.make ~name:"critical path <= window and <= total" ~count:200
    Q.(
      list_of_size
        Gen.(1 -- 40)
        (triple (float_range 0.0 100.0) (float_range 0.0 5.0) (int_bound 3)))
    (fun raw ->
      let spans =
        List.mapi
          (fun i (t0, dur, tid) ->
            span (Printf.sprintf "s%d" i) tid t0 (t0 +. Float.abs dur))
          raw
      in
      let cp = A.critical_path spans in
      cp.A.cp_length_s <= cp.A.cp_window_s +. eps
      && cp.A.cp_length_s <= cp.A.cp_total_s +. eps
      && cp.A.cp_amdahl >= 1.0 -. eps)

(* --- quantiles --------------------------------------------------------- *)

(* The log-bucket estimate brackets the exact sample quantile within one
   power-of-two bucket: exact < estimate <= 2 * exact. *)
let prop_quantile_one_log_bucket =
  Q.Test.make ~name:"quantile within one log-bucket of exact" ~count:300
    Q.(
      pair
        (list_of_size Gen.(1 -- 200) (float_range 1e-5 1e6))
        (float_range 0.01 1.0))
    (fun (values, q) ->
      let h = M.Histogram.create () in
      List.iter (M.Histogram.observe h) values;
      let est = M.Histogram.quantile h q in
      let n = List.length values in
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let exact = List.nth (List.sort Float.compare values) (rank - 1) in
      exact < est && est <= 2.0 *. exact +. eps)

let test_quantile_empty_and_sum () =
  let h = M.Histogram.create () in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (M.Histogram.quantile h 0.5));
  M.Histogram.observe h 1.5;
  M.Histogram.observe h 2.5;
  Alcotest.(check (float 1e-12)) "sum" 4.0 (M.Histogram.sum h)

(* Artifacts.quantile_of_buckets is the same estimator, over the
   serialized bucket list. *)
let test_quantile_of_buckets_matches () =
  let h = M.Histogram.create () in
  List.iter (M.Histogram.observe h) [ 0.1; 0.4; 1.7; 3.0; 9.9 ];
  let buckets = M.Histogram.buckets h in
  let n = M.Histogram.count h in
  List.iter
    (fun q ->
      Alcotest.(check (float eps))
        (Printf.sprintf "q=%g" q)
        (M.Histogram.quantile h q)
        (Artifacts.quantile_of_buckets buckets n q))
    [ 0.5; 0.9; 0.99 ]

(* --- diff -------------------------------------------------------------- *)

let mk_run ?(wall = 1.0) ?(phases = []) ?(counters = []) () =
  {
    A.wall_s = wall;
    phases;
    counters;
    gauges = [];
    histograms = [];
    domains = [];
    segs = [];
    config = Json.Null;
  }

let prop_diff_symmetric_zero =
  Q.Test.make ~name:"diff r r is all-zero with no regressions" ~count:100
    Q.(
      pair (float_range 0.0001 100.0)
        (list_of_size
           Gen.(0 -- 6)
           (pair (string_of_size Gen.(1 -- 8)) (float_range 0.0001 10.0))))
    (fun (wall, phases) ->
      let r = mk_run ~wall ~phases () in
      let entries = A.diff r r in
      A.regressions entries = []
      && List.for_all (fun e -> e.A.d_delta_frac = 0.0) entries)

let test_diff_regression_gate () =
  let base = mk_run ~wall:1.0 ~phases:[ ("step3", 0.5) ] () in
  let slow = mk_run ~wall:1.0 ~phases:[ ("step3", 0.65) ] () in
  let entries = A.diff ~threshold:0.20 base slow in
  (match A.regressions entries with
  | [ e ] ->
    Alcotest.(check string) "regressed key" "phase:step3" e.A.d_key;
    Alcotest.(check (float 1e-6)) "delta" 0.3 e.A.d_delta_frac
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* faster is an improvement, never a regression *)
  Alcotest.(check (list string)) "no regression when faster" []
    (List.map (fun e -> e.A.d_key) (A.regressions (A.diff ~threshold:0.20 slow base)));
  (* sub-floor pairs never gate *)
  let tiny_a = mk_run ~wall:0.0002 () and tiny_b = mk_run ~wall:0.0009 () in
  Alcotest.(check int) "sub-floor is unchanged" 0
    (List.length (A.regressions (A.diff tiny_a tiny_b)))

let test_counters_informational () =
  let base = mk_run ~counters:[ ("atpg.podem.runs", 10) ] () in
  let cur = mk_run ~counters:[ ("atpg.podem.runs", 100) ] () in
  let entries = A.diff base cur in
  Alcotest.(check int) "counter change never gates" 0
    (List.length (A.regressions entries));
  let e = List.find (fun e -> e.A.d_key = "counter:atpg.podem.runs") entries in
  Alcotest.(check bool) "counter not gated" false e.A.d_gated

(* --- bench baselines --------------------------------------------------- *)

let test_runs_of_bench_aliases () =
  let doc =
    Json.of_string
      {|{"circuits":[{"name":"s1423",
          "serial":{"wall_s":1.0,
            "phases":{"step3":0.5},
            "counters":{"podem_runs":7,"fsim_calls":3}},
          "multicore":{"wall_s":0.8,
            "phases":{"step3":0.4},
            "counters":{"atpg.podem.runs":7}}}]}|}
  in
  let runs = A.runs_of_bench doc in
  Alcotest.(check int) "two variants" 2 (List.length runs);
  let ser = List.assoc "s1423/serial" runs in
  Alcotest.(check (option int)) "legacy name mapped" (Some 7)
    (List.assoc_opt "atpg.podem.runs" ser.A.counters);
  Alcotest.(check (option int)) "fsim alias mapped" (Some 3)
    (List.assoc_opt "fsim.detect_all.calls" ser.A.counters);
  let mc = List.assoc "s1423/multicore" runs in
  Alcotest.(check (option int)) "canonical name kept" (Some 7)
    (List.assoc_opt "atpg.podem.runs" mc.A.counters)

(* --- utilization & self time ------------------------------------------- *)

let seg wid t0 t1 stolen = { Timeline.wid; label = "w"; t0; t1; stolen }

let test_utilization_gaps () =
  let segs =
    [ seg 0 0.0 1.0 false; seg 0 3.0 4.0 false; seg 1 0.0 4.0 true ]
  in
  match A.utilization ~gap_s:0.5 segs with
  | [ u0; u1 ] ->
    Alcotest.(check int) "wid order" 0 u0.A.u_wid;
    Alcotest.(check (float eps)) "busy0" 2.0 u0.A.u_busy_s;
    Alcotest.(check (float eps)) "frac0" 0.5 u0.A.u_busy_frac;
    Alcotest.(check int) "one idle gap" 1 (List.length u0.A.u_gaps);
    Alcotest.(check int) "steal count" 1 u1.A.u_steals;
    Alcotest.(check int) "no gaps on busy worker" 0 (List.length u1.A.u_gaps)
  | l -> Alcotest.failf "expected 2 workers, got %d" (List.length l)

let test_self_times_nesting () =
  let spans =
    [ span "parent" 0 0.0 10.0; span "child" 0 2.0 8.0; span "other" 1 0.0 3.0 ]
  in
  let stats = A.self_times spans in
  let find n = List.find (fun s -> s.A.ns_name = n) stats in
  Alcotest.(check (float eps)) "parent self" 4.0 (find "parent").A.ns_self_s;
  Alcotest.(check (float eps)) "child self" 6.0 (find "child").A.ns_self_s;
  Alcotest.(check (float eps)) "other self" 3.0 (find "other").A.ns_self_s;
  Alcotest.(check string) "hotspot order" "child"
    (List.hd (A.hotspots ~k:1 spans)).A.ns_name

(* --- OpenMetrics -------------------------------------------------------- *)

let test_openmetrics_round_trip () =
  let r = M.create () in
  M.Counter.add (M.counter r "flow.total") 3;
  M.Gauge.set (M.gauge r "pool.domain0.busy_frac") 0.75;
  M.Fcounter.add (M.fcounter r "pool.domain0.busy_s") 1.5;
  let h = M.histogram r "fsim.call_s" in
  List.iter (M.Histogram.observe h) [ 0.001; 0.004; 0.3 ];
  let text = Openmetrics.expose r in
  (match Openmetrics.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exposition did not validate: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Helpers.contains_substring ~needle text))
    [
      "# TYPE flow_total counter"; "flow_total_total 3";
      "pool_domain0_busy_frac 0.75"; "# TYPE fsim_call_s histogram";
      "fsim_call_s_count 3"; "le=\"+Inf\"} 3"; "# EOF";
    ]

let test_openmetrics_rejects () =
  let bad monotone =
    "# TYPE h histogram\n" ^ "h_bucket{le=\"0.5\"} 5\n"
    ^ (if monotone then "h_bucket{le=\"1\"} 7\n" else "h_bucket{le=\"1\"} 3\n")
    ^ "# EOF\n"
  in
  (match Openmetrics.validate (bad true) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "monotone buckets rejected: %s" e);
  (match Openmetrics.validate (bad false) with
  | Ok () -> Alcotest.fail "non-monotone buckets accepted"
  | Error _ -> ());
  (match Openmetrics.validate "x 1\n" with
  | Ok () -> Alcotest.fail "missing # EOF accepted"
  | Error _ -> ());
  match Openmetrics.validate "# TYPE h rainbow\nh 1\n# EOF\n" with
  | Ok () -> Alcotest.fail "unknown type accepted"
  | Error _ -> ()

(* --- artifacts round trip ---------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fst-analyze-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let test_artifacts_round_trip () =
  with_temp_dir (fun dir ->
      let a = Artifacts.create ~dir in
      let sink = Artifacts.sink a in
      (* Feed every channel: a pool map (timeline + domain gauges), a
         phase gauge, an event. *)
      let xs = Array.init 50 (fun i -> i) in
      let r =
        Pool.map_array ~obs:sink ~label:"sq" ~jobs:2 (fun x -> x * x) xs
      in
      Alcotest.(check int) "pool result intact" 2401 r.(49);
      M.Gauge.set (M.gauge sink.Fst_obs.Sink.metrics "flow.step3.wall_s") 0.25;
      Fst_obs.Sink.event sink ~kind:"phase_start"
        [ ("phase", Json.String "step3") ];
      Artifacts.write ~config:(Json.Obj [ ("circuit", Json.String "t") ]) a;
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " exists") true
            (Sys.file_exists (Filename.concat dir f)))
        [ "run.json"; "trace.json"; "events.jsonl"; "metrics.prom" ];
      match A.load_dir dir with
      | Error e -> Alcotest.failf "load_dir: %s" e
      | Ok (run, _spans) ->
        Alcotest.(check (option (float eps))) "phase survives" (Some 0.25)
          (List.assoc_opt "step3" run.A.phases);
        Alcotest.(check bool) "timeline recorded" true (run.A.segs <> []);
        Alcotest.(check bool) "utilization derivable" true
          (A.utilization run.A.segs <> []);
        (* and the self-diff is clean *)
        Alcotest.(check int) "self-diff has no regressions" 0
          (List.length (A.regressions (A.diff run run))))

let test_validate_run_rejects () =
  (match Artifacts.validate_run (Json.Obj [ ("schema", Json.String "x") ]) with
  | Ok () -> Alcotest.fail "bad schema accepted"
  | Error _ -> ());
  match Artifacts.validate_run (Json.List []) with
  | Ok () -> Alcotest.fail "non-object accepted"
  | Error _ -> ()

(* --- the pure-observer contract ---------------------------------------- *)

let quick_config =
  Config.(
    default |> with_comb_backtrack 100 |> with_seq_backtrack 200
    |> with_final_backtrack 500 |> with_frames [ 1; 2 ]
    |> with_final_frames [ 1; 2; 4 ])

(* A full --obs-dir artifact sink observes the flow without changing it:
   every result bucket matches the null-sink run exactly. *)
let prop_obs_dir_pure_observer =
  Q.Test.make ~name:"--obs-dir flow result = null-sink flow result" ~count:3
    Q.(int_range 1 1000)
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:120 ~ffs:8 (Int64.of_int seed) in
      let scanned, config =
        Tpi.insert
          ~options:{ Tpi.default_options with Tpi.chains = 2; justify_depth = 4 }
          c
      in
      let quiet =
        Flow.run ~config:Config.(quick_config |> with_jobs 1) scanned config
      in
      with_temp_dir (fun dir ->
          let a = Artifacts.create ~dir in
          let loud =
            Flow.run
              ~config:
                Config.(
                  quick_config |> with_jobs 1 |> with_sink (Artifacts.sink a))
              scanned config
          in
          Artifacts.write a;
          quiet.Flow.step2.Flow.detected = loud.Flow.step2.Flow.detected
          && quiet.Flow.step2.Flow.vectors = loud.Flow.step2.Flow.vectors
          && quiet.Flow.step3.Flow.detected = loud.Flow.step3.Flow.detected
          && quiet.Flow.undetected = loud.Flow.undetected
          && quiet.Flow.untestable_faults = loud.Flow.untestable_faults
          && quiet.Flow.atpg = loud.Flow.atpg))

let suite =
  [
    Alcotest.test_case "critical path chain" `Quick test_critical_path_chain;
    Alcotest.test_case "critical path empty" `Quick test_critical_path_empty;
    Helpers.qcheck prop_critical_path_bounds;
    Helpers.qcheck prop_quantile_one_log_bucket;
    Alcotest.test_case "quantile empty + sum" `Quick test_quantile_empty_and_sum;
    Alcotest.test_case "quantile of serialized buckets" `Quick
      test_quantile_of_buckets_matches;
    Helpers.qcheck prop_diff_symmetric_zero;
    Alcotest.test_case "diff regression gate" `Quick test_diff_regression_gate;
    Alcotest.test_case "counters are informational" `Quick
      test_counters_informational;
    Alcotest.test_case "bench baseline aliases" `Quick test_runs_of_bench_aliases;
    Alcotest.test_case "utilization and idle gaps" `Quick test_utilization_gaps;
    Alcotest.test_case "self time nesting" `Quick test_self_times_nesting;
    Alcotest.test_case "openmetrics round trip" `Quick
      test_openmetrics_round_trip;
    Alcotest.test_case "openmetrics rejects malformed" `Quick
      test_openmetrics_rejects;
    Alcotest.test_case "artifacts round trip" `Quick test_artifacts_round_trip;
    Alcotest.test_case "validate_run rejects" `Quick test_validate_run_rejects;
    Helpers.qcheck prop_obs_dir_pure_observer;
  ]
